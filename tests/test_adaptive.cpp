// The §6.2 unknown-bounds variant: safety under the same adversarial
// workloads as the known-bounds algorithm, plus its specific mechanisms
// (participation reveal, snapshot competition, power-of-two padding).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "wfl/wfl.hpp"

namespace wfl {
namespace {

using ASpace = AdaptiveLockSpace<SimPlat>;

struct AdaptiveWorkload {
  int procs = 4;
  int locks = 2;
  int attempts_per_proc = 40;
  std::uint64_t seed = 1;
  std::uint64_t total_wins = 0;

  template <typename Sched>
  void run(Sched& sched, std::uint64_t max_slots) {
    auto space = std::make_unique<ASpace>(procs, locks);
    std::vector<std::unique_ptr<Cell<SimPlat>>> busy, count;
    for (int i = 0; i < locks; ++i) {
      busy.push_back(std::make_unique<Cell<SimPlat>>(0u));
      count.push_back(std::make_unique<Cell<SimPlat>>(0u));
    }
    std::vector<std::uint64_t> violations(static_cast<std::size_t>(locks), 0);
    std::vector<std::uint64_t> wins_on(static_cast<std::size_t>(locks), 0);

    Simulator sim(seed);
    for (int p = 0; p < procs; ++p) {
      sim.add_process([&, p] {
        auto proc = space->register_process();
        Xoshiro256 rng(seed + static_cast<std::uint64_t>(p) * 17);
        for (int a = 0; a < attempts_per_proc; ++a) {
          const std::uint32_t r =
              static_cast<std::uint32_t>(rng.next_below(locks));
          const std::uint32_t r2 =
              static_cast<std::uint32_t>((r + 1) % locks);
          std::uint32_t ids_arr[2] = {r, r2};
          const std::uint32_t n = (locks >= 2) ? 2u : 1u;
          Cell<SimPlat>& flag = *busy[r];
          Cell<SimPlat>& cnt = *count[r];
          std::uint64_t* viol = &violations[r];
          const bool won = space->try_locks(
              proc, {ids_arr, n},
              [&flag, &cnt, viol](IdemCtx<SimPlat>& m) {
                if (m.load(flag) != 0) ++*viol;
                m.store(flag, 1);
                m.store(cnt, m.load(cnt) + 1);
                m.store(flag, 0);
              });
          if (won) {
            ++wins_on[r];
            ++total_wins;
          }
        }
      });
    }
    ASSERT_TRUE(sim.run(sched, 2'000'000'000ull));
    for (int r = 0; r < locks; ++r) {
      EXPECT_EQ(violations[static_cast<std::size_t>(r)], 0u)
          << "overlapping critical sections on resource " << r;
      EXPECT_EQ(count[static_cast<std::size_t>(r)]->peek(),
                wins_on[static_cast<std::size_t>(r)])
          << "lost updates on resource " << r;
    }
  }
};

TEST(Adaptive, MutualExclusionUniform) {
  AdaptiveWorkload w;
  UniformSchedule sched(w.procs, 5);
  w.run(sched, 2'000'000'000ull);
  EXPECT_GT(w.total_wins, 0u);
}

TEST(Adaptive, MutualExclusionSkewed) {
  AdaptiveWorkload w;
  w.attempts_per_proc = 15;
  WeightedSchedule sched({1.0, 1.0, 0.01, 1.0}, 7);
  w.run(sched, 2'000'000'000ull);
  EXPECT_GT(w.total_wins, 0u);
}

TEST(Adaptive, MutualExclusionStallBursts) {
  AdaptiveWorkload w;
  w.procs = 6;
  w.locks = 3;
  w.attempts_per_proc = 20;
  StallBurstSchedule sched(w.procs, 11, 512);
  w.run(sched, 2'000'000'000ull);
  EXPECT_GT(w.total_wins, 0u);
}

TEST(Adaptive, SucceedsAloneQuickly) {
  ASpace space(2, 2);
  Cell<SimPlat> c{0};
  Simulator sim(3);
  bool won = false;
  sim.add_process([&] {
    auto proc = space.register_process();
    const std::uint32_t ids[] = {0, 1};
    won = space.try_locks(proc, ids, [&c](IdemCtx<SimPlat>& m) {
      m.store(c, 1);
    });
  });
  RoundRobinSchedule rr(1);
  ASSERT_TRUE(sim.run(rr, 1'000'000));
  EXPECT_TRUE(won);
  EXPECT_EQ(c.peek(), 1u);
  // Uncontended attempt: pre-participation work is small, so the padded
  // total must stay small too (the whole point of adaptivity: cost scales
  // with true contention, not with declared worst cases).
  EXPECT_LT(sim.steps_of(0), 4096u);
}

TEST(Adaptive, FairnessStaysWithinLogFactorOfKnownBounds) {
  // Clique of 4 on 2 locks: known-bounds floor is 1/8; the adaptive variant
  // is allowed a log(κLT) haircut. Assert it keeps at least 1/(8·log2(16)).
  const int procs = 4, locks = 2, attempts = 120;
  auto space = std::make_unique<ASpace>(procs, locks);
  SuccessRate rate;
  std::vector<SuccessRate> per(static_cast<std::size_t>(procs));
  Simulator sim(21);
  for (int p = 0; p < procs; ++p) {
    sim.add_process([&, p] {
      auto proc = space->register_process();
      const std::uint32_t ids[] = {0, 1};
      for (int a = 0; a < attempts; ++a) {
        per[static_cast<std::size_t>(p)].add(
            space->try_locks(proc, ids, typename ASpace::Thunk{}));
      }
    });
  }
  UniformSchedule sched(procs, 1212);
  ASSERT_TRUE(sim.run(sched, 2'000'000'000ull));
  for (auto& pr : per) rate.merge(pr);
  const double floor = 1.0 / (8.0 * 4.0);  // log2(κLT=16)=4
  EXPECT_GE(rate.rate(), floor)
      << "adaptive success rate " << rate.rate()
      << " fell below the Theorem 6.10 band";
  for (const auto& pr : per) {
    EXPECT_GT(pr.successes(), 0u) << "a process starved";
  }
}

TEST(Adaptive, RetryUntilSuccessBounded) {
  ASpace space(3, 2);
  Simulator sim(31);
  for (int p = 0; p < 3; ++p) {
    sim.add_process([&] {
      auto proc = space.register_process();
      const std::uint32_t ids[] = {0, 1};
      for (int wins = 0; wins < 8; ++wins) {
        int tries = 0;
        while (!space.try_locks(proc, ids, typename ASpace::Thunk{})) {
          ASSERT_LT(++tries, 500);
        }
      }
    });
  }
  UniformSchedule sched(3, 77);
  ASSERT_TRUE(sim.run(sched, 2'000'000'000ull));
}

}  // namespace
}  // namespace wfl
