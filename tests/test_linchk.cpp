// Linearizability checker: self-tests, then the real cargo — recorded
// histories of idempotence-simulated memory operations (Theorem 4.2(3)).
//
// Recording uses the simulator's global slot clock (slots_used), which
// totally orders all shared-memory steps of a run; an operation's interval
// is [clock at its first step, clock at its first completed run]. For a
// helped thunk the logical operation is the agreement across runs, so the
// interval aggregates min-invoke / min-completion over all runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "wfl/check/linchk.hpp"
#include "wfl/idem/cell.hpp"
#include "wfl/idem/idem.hpp"
#include "wfl/platform/sim.hpp"
#include "wfl/sim/sim.hpp"
#include "wfl/util/rng.hpp"

namespace wfl {
namespace {

using RM = RegisterModel;

LinOp load_op(std::uint64_t inv, std::uint64_t rsp, std::uint32_t ret) {
  LinOp op;
  op.kind = RM::kLoad;
  op.invoke = inv;
  op.response = rsp;
  op.ret = ret;
  return op;
}

LinOp store_op(std::uint64_t inv, std::uint64_t rsp, std::uint32_t v) {
  LinOp op;
  op.kind = RM::kStore;
  op.invoke = inv;
  op.response = rsp;
  op.arg = v;
  return op;
}

LinOp cas_op(std::uint64_t inv, std::uint64_t rsp, std::uint32_t exp,
             std::uint32_t des, bool ok) {
  LinOp op;
  op.kind = RM::kCas;
  op.invoke = inv;
  op.response = rsp;
  op.arg = exp;
  op.arg2 = des;
  op.ret = ok ? 1 : 0;
  return op;
}

// --- checker self-tests on hand-built histories ---

TEST(LinChk, EmptyAndSequentialHistoriesAccepted) {
  EXPECT_TRUE(linearizable<RM>({}));
  EXPECT_TRUE(linearizable<RM>({
      store_op(0, 1, 7),
      load_op(2, 3, 7),
      cas_op(4, 5, 7, 9, true),
      load_op(6, 7, 9),
  }));
}

TEST(LinChk, StaleReadAfterCompletedStoreRejected) {
  // store(2) finished strictly before the load began, yet the load saw the
  // older value — the canonical non-linearizable register history.
  EXPECT_FALSE(linearizable<RM>({
      store_op(0, 1, 1),
      store_op(2, 3, 2),
      load_op(4, 5, 1),
  }));
}

TEST(LinChk, OverlappingReadMaySeeEitherValue) {
  // The load overlaps store(2): both return values are linearizable.
  EXPECT_TRUE(linearizable<RM>({
      store_op(0, 1, 1),
      store_op(2, 6, 2),
      load_op(3, 5, 1),
  }));
  EXPECT_TRUE(linearizable<RM>({
      store_op(0, 1, 1),
      store_op(2, 6, 2),
      load_op(3, 5, 2),
  }));
}

TEST(LinChk, CasOutcomesMustMatchSomeOrder) {
  // Two concurrent CAS(0 -> x): exactly one may succeed.
  EXPECT_TRUE(linearizable<RM>({
      cas_op(0, 5, 0, 1, true),
      cas_op(1, 6, 0, 2, false),
  }));
  EXPECT_FALSE(linearizable<RM>({
      cas_op(0, 5, 0, 1, true),
      cas_op(1, 6, 0, 2, true),
  }));
  // A successful CAS completed before a load: the load must see its value.
  EXPECT_FALSE(linearizable<RM>({
      cas_op(0, 1, 0, 5, true),
      load_op(2, 3, 0),
  }));
}

TEST(LinChk, NonZeroInitialState) {
  EXPECT_TRUE(linearizable<RM>({load_op(0, 1, 42)}, RM::initial(42)));
  EXPECT_FALSE(linearizable<RM>({load_op(0, 1, 0)}, RM::initial(42)));
}

TEST(LinChk, FullyConcurrentBatchTerminatesWithinBudget) {
  // Ten mutually overlapping ops: worst case for the DFS; must stay well
  // inside the node budget thanks to memoization.
  std::vector<LinOp> hist;
  for (std::uint32_t i = 0; i < 5; ++i) hist.push_back(store_op(0, 100, i));
  for (std::uint32_t i = 0; i < 5; ++i) hist.push_back(load_op(0, 100, 4));
  LinChecker<RM> chk;
  EXPECT_TRUE(chk.check(hist));
  EXPECT_LT(chk.nodes_explored(), 1u << 20);
}

// Randomized positive generator: pick linearization points in order, wrap
// each in a random enclosing interval. Any such history must be accepted.
class LinChkRandomized : public ::testing::TestWithParam<int> {};

TEST_P(LinChkRandomized, GeneratedValidHistoriesAccepted) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  RM::State st = RM::initial();
  std::vector<LinOp> hist;
  const int n = 14;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t point = static_cast<std::uint64_t>(10 * (i + 1));
    const std::uint64_t inv = point - rng.next_below(10);
    const std::uint64_t rsp = point + rng.next_below(40);
    LinOp op;
    switch (rng.next_below(3)) {
      case 0:
        op = load_op(inv, rsp, st.value);
        break;
      case 1:
        op = store_op(inv, rsp, static_cast<std::uint32_t>(rng.next_below(8)));
        break;
      default: {
        const auto exp = static_cast<std::uint32_t>(rng.next_below(8));
        const auto des = static_cast<std::uint32_t>(rng.next_below(8));
        op = cas_op(inv, rsp, exp, des, st.value == exp);
        break;
      }
    }
    st = *RM::apply(st, op);
    hist.push_back(op);
  }
  EXPECT_TRUE(linearizable<RM>(hist));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinChkRandomized, ::testing::Range(1, 13));

// --- Theorem 4.2(3): idempotent operations are linearizable ---

std::uint64_t now() {
  Simulator* sim = Simulator::current();
  return sim != nullptr ? sim->slots_used() : 0;
}

// N processes each run their own single-run thunk performing random
// instrumented ops on a few shared cells; every op's interval and result is
// recorded. Per-cell histories (locality!) must be linearizable.
//
// This is the paper's *racy* ("group-locking") regime: distinct thunks
// write the same cells concurrently. A single-shot idempotent store may
// then be physically superseded by a concurrent write — which linearizes
// the store immediately before its overwriter, and is legal precisely
// because the interfering write changes the value. To keep "changes the
// value" guaranteed, each process draws its stored/CAS values from a
// disjoint alphabet (value ≡ pid mod kProcs); without this, an interferer
// re-writing the *same* value could make a CAS fail while the cell never
// left its expected value — a genuine non-linearizable outcome that the
// paper's regime excludes via the locks.
class IdemOpsLinearizable : public ::testing::TestWithParam<int> {};

TEST_P(IdemOpsLinearizable, CrossProcessHistories) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  constexpr int kProcs = 4;
  constexpr int kCells = 3;
  constexpr int kOpsPerProc = 12;

  std::vector<std::unique_ptr<Cell<SimPlat>>> cells;
  for (int c = 0; c < kCells; ++c) {
    cells.push_back(std::make_unique<Cell<SimPlat>>(0u));
  }
  // One thunk log per process: each process's op sequence is one run.
  std::vector<std::unique_ptr<ThunkLog<SimPlat>>> logs;
  for (int p = 0; p < kProcs; ++p) {
    logs.push_back(std::make_unique<ThunkLog<SimPlat>>());
  }
  std::vector<std::vector<LinOp>> per_cell(kCells);

  Simulator sim(seed);
  for (int p = 0; p < kProcs; ++p) {
    sim.add_process([&, p] {
      IdemCtx<SimPlat> ctx(*logs[static_cast<std::size_t>(p)],
                           static_cast<std::uint32_t>(p) * kMaxThunkOps);
      Xoshiro256 rng(seed * 101 + static_cast<std::uint64_t>(p));
      // Disjoint write alphabet: value ≡ p (mod kProcs). See class comment.
      auto own_value = [&rng, p] {
        return static_cast<std::uint32_t>(p + kProcs * rng.next_below(4));
      };
      for (int i = 0; i < kOpsPerProc; ++i) {
        const int c = static_cast<int>(rng.next_below(kCells));
        Cell<SimPlat>& cell = *cells[static_cast<std::size_t>(c)];
        LinOp op;
        op.proc = p;
        op.invoke = now();
        switch (rng.next_below(3)) {
          case 0:
            op.kind = RM::kLoad;
            op.ret = ctx.load(cell);
            break;
          case 1: {
            op.kind = RM::kStore;
            op.arg = own_value();
            ctx.store(cell, static_cast<std::uint32_t>(op.arg));
            break;
          }
          default: {
            op.kind = RM::kCas;
            op.arg = own_value();
            op.arg2 = own_value();
            op.ret = ctx.cas(cell, static_cast<std::uint32_t>(op.arg),
                             static_cast<std::uint32_t>(op.arg2))
                         ? 1
                         : 0;
            break;
          }
        }
        op.response = now();
        // Single OS thread under sim: plain push_back is race-free.
        per_cell[static_cast<std::size_t>(c)].push_back(op);
      }
    });
  }
  UniformSchedule sched(kProcs, seed ^ 0xFACE);
  ASSERT_TRUE(sim.run(sched, 10'000'000));

  for (int c = 0; c < kCells; ++c) {
    EXPECT_TRUE(linearizable<RM>(per_cell[static_cast<std::size_t>(c)]))
        << "cell " << c << " history not linearizable (seed " << seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdemOpsLinearizable, ::testing::Range(1, 11));

// The helped case: H runs of the *same* thunk race; per program-order op we
// aggregate min(invoke)/min(first completion) across runs. The logical ops
// must agree on results across runs and be linearizable; the final cell
// states must match a sequential execution of the program.
class HelpedThunkLinearizable : public ::testing::TestWithParam<int> {};

TEST_P(HelpedThunkLinearizable, AggregatedLogicalHistory) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  constexpr int kRuns = 4;
  constexpr int kCells = 2;
  constexpr int kProgLen = 10;

  std::vector<std::unique_ptr<Cell<SimPlat>>> cells;
  for (int c = 0; c < kCells; ++c) {
    cells.push_back(std::make_unique<Cell<SimPlat>>(0u));
  }
  ThunkLog<SimPlat> log;

  // The program is a pure function of the seed: (opcode, cell, args) per
  // program-order index — every run executes the same instruction stream.
  struct Ins {
    int kind;
    int cell;
    std::uint32_t a, b;
  };
  std::vector<Ins> prog;
  {
    Xoshiro256 prng(seed * 31337);
    for (int i = 0; i < kProgLen; ++i) {
      prog.push_back({static_cast<int>(prng.next_below(3)),
                      static_cast<int>(prng.next_below(kCells)),
                      static_cast<std::uint32_t>(prng.next_below(8)),
                      static_cast<std::uint32_t>(prng.next_below(8))});
    }
  }

  constexpr std::uint64_t kUnset = ~0ull;
  std::vector<std::uint64_t> min_invoke(kProgLen, kUnset);
  std::vector<std::uint64_t> min_response(kProgLen, kUnset);
  std::vector<std::uint64_t> agreed_ret(kProgLen, kUnset);
  bool ret_mismatch = false;

  Simulator sim(seed);
  for (int r = 0; r < kRuns; ++r) {
    sim.add_process([&] {
      IdemCtx<SimPlat> ctx(log, 0);
      for (int i = 0; i < kProgLen; ++i) {
        const Ins& ins = prog[static_cast<std::size_t>(i)];
        Cell<SimPlat>& cell = *cells[static_cast<std::size_t>(ins.cell)];
        const std::uint64_t inv = now();
        std::uint64_t ret = 0;
        switch (ins.kind) {
          case RM::kLoad:
            ret = ctx.load(cell);
            break;
          case RM::kStore:
            ctx.store(cell, ins.a);
            break;
          default:
            ret = ctx.cas(cell, ins.a, ins.b) ? 1 : 0;
            break;
        }
        const std::uint64_t rsp = now();
        auto& mi = min_invoke[static_cast<std::size_t>(i)];
        auto& mr = min_response[static_cast<std::size_t>(i)];
        auto& ar = agreed_ret[static_cast<std::size_t>(i)];
        mi = std::min(mi, inv);
        mr = std::min(mr, rsp);
        if (ar == kUnset) {
          ar = ret;
        } else if (ar != ret) {
          ret_mismatch = true;  // runs must agree (Definition 4.1)
        }
      }
    });
  }
  StallBurstSchedule sched(kRuns, seed ^ 0xBEEF, 64);
  ASSERT_TRUE(sim.run(sched, 10'000'000));
  EXPECT_FALSE(ret_mismatch) << "helper runs disagreed on an op result";

  // Build the logical per-cell histories and check them.
  std::vector<std::vector<LinOp>> per_cell(kCells);
  for (int i = 0; i < kProgLen; ++i) {
    const Ins& ins = prog[static_cast<std::size_t>(i)];
    LinOp op;
    op.kind = ins.kind;
    op.arg = ins.a;
    op.arg2 = ins.b;
    op.ret = agreed_ret[static_cast<std::size_t>(i)];
    op.invoke = min_invoke[static_cast<std::size_t>(i)];
    op.response = min_response[static_cast<std::size_t>(i)];
    per_cell[static_cast<std::size_t>(ins.cell)].push_back(op);
  }
  for (int c = 0; c < kCells; ++c) {
    EXPECT_TRUE(linearizable<RM>(per_cell[static_cast<std::size_t>(c)]))
        << "helped thunk: cell " << c << " (seed " << seed << ")";
  }

  // And the combination of all runs equals exactly one sequential run
  // (Definition 4.1): replay the program on plain integers.
  std::vector<std::uint32_t> ref(kCells, 0);
  for (const Ins& ins : prog) {
    auto& v = ref[static_cast<std::size_t>(ins.cell)];
    if (ins.kind == RM::kStore) {
      v = ins.a;
    } else if (ins.kind == RM::kCas && v == ins.a) {
      v = ins.b;
    }
  }
  for (int c = 0; c < kCells; ++c) {
    EXPECT_EQ(cells[static_cast<std::size_t>(c)]->peek(),
              ref[static_cast<std::size_t>(c)])
        << "final state diverged from the single sequential run";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HelpedThunkLinearizable,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace wfl
