// The sharded LockTable layer: shard routing, striped statistics, and
// process-handle behaviour across shards.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "wfl/wfl.hpp"

#include "test_plat.hpp"

namespace wfl {

using test::TestPlat;
namespace {

using Table = LockTable<RealPlat>;

LockConfig cfg_for(int procs, std::uint32_t max_locks = 2,
                   std::uint32_t thunk_steps = 8) {
  LockConfig cfg;
  cfg.kappa = static_cast<std::uint32_t>(procs);
  cfg.max_locks = max_locks;
  cfg.max_thunk_steps = thunk_steps;
  cfg.delay_mode = DelayMode::kOff;
  return cfg;
}

TEST(LockTable, AutoShardHeuristics) {
  // Never more shards than processes or locks; capped at kMaxShards.
  EXPECT_EQ(Table(cfg_for(1), 1, 64).num_shards(), 1u);
  EXPECT_EQ(Table(cfg_for(2), 2, 64).num_shards(), 2u);
  EXPECT_EQ(Table(cfg_for(8), 8, 64).num_shards(), 8u);
  EXPECT_EQ(Table(cfg_for(8), 8, 3).num_shards(), 2u);   // lock-bound
  EXPECT_EQ(Table(cfg_for(64), 64, 1024).num_shards(), kMaxShards);
}

TEST(LockTable, ShardOfIsMaskRouting) {
  Table t(cfg_for(4), 4, 64, SpaceSizing{.shards = 4});
  ASSERT_EQ(t.num_shards(), 4u);
  for (std::uint32_t id = 0; id < 64; ++id) {
    EXPECT_EQ(t.shard_of(id), id % 4);
  }
}

// A workload of exclusively single-lock attempts on shard 0's locks must
// leave every other shard's pools untouched: all their slots stay free and
// no growth happens. This is the observable face of "a single-lock attempt
// performs no writes to another shard's cachelines".
TEST(LockTable, SingleLockAttemptsStayShardLocal) {
  Table t(cfg_for(2, 1), 2, 16, SpaceSizing{.shards = 4});
  ASSERT_EQ(t.num_shards(), 4u);
  auto proc = t.register_process();
  Cell<RealPlat> c{0};
  std::uint32_t wins = 0;
  for (int a = 0; a < 500; ++a) {
    // Locks 0, 4, 8, 12 — all shard 0 under mask routing.
    const std::uint32_t ids[] = {static_cast<std::uint32_t>((a % 4) * 4)};
    wins += t.try_locks(proc, ids, [&c](IdemCtx<RealPlat>& m) {
      m.store(c, m.load(c) + 1);
    });
  }
  EXPECT_EQ(wins, 500u);  // uncontended: every attempt wins
  for (std::uint32_t s = 1; s < 4; ++s) {
    EXPECT_EQ(t.shard_desc_free(s), t.shard_desc_capacity(s))
        << "shard " << s << " descriptor pool was touched";
    EXPECT_EQ(t.shard_snap_free(s), t.shard_snap_capacity(s))
        << "shard " << s << " snapshot pool was touched";
  }
  // ... while shard 0 clearly worked.
  EXPECT_EQ(t.stats().wins, 500u);
}

// Cross-shard multi-lock attempts must still mutually exclude: the same
// lost-update + in-CS-flag detectors as the monolith stress tests, with the
// lock pair deliberately straddling two shards.
TEST(LockTable, CrossShardMultiLockMutualExclusion) {
  const int threads = 4;
  const int attempts = 300;
  auto t = std::make_unique<Table>(cfg_for(threads), threads, 8,
                                   SpaceSizing{.shards = 4});
  ASSERT_EQ(t->num_shards(), 4u);
  Cell<RealPlat> flag{0};
  Cell<RealPlat> count{0};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> wins{0};
  std::vector<std::thread> ts;
  for (int k = 0; k < threads; ++k) {
    ts.emplace_back([&, k] {
      RealPlat::seed_rng(0xFACE + static_cast<std::uint64_t>(k));
      auto proc = t->register_process();
      // Locks 1 and 2 live in shards 1 and 2.
      const std::uint32_t ids[] = {1, 2};
      for (int a = 0; a < attempts; ++a) {
        const bool won =
            t->try_locks(proc, ids, [&](IdemCtx<RealPlat>& m) {
              if (m.load(flag) != 0) {
                violations.fetch_add(1, std::memory_order_relaxed);
              }
              m.store(flag, 1);
              m.store(count, m.load(count) + 1);
              m.store(flag, 0);
            });
        if (won) wins.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(violations.load(), 0u) << "overlapping critical sections";
  EXPECT_EQ(count.peek(), wins.load()) << "lost updates across shards";
  EXPECT_GT(wins.load(), 0u);
}

// stats() must aggregate the striped per-process slabs to the same totals
// the callers observed first-hand.
//
// The exactly-once audit uses PER-LOCK counter cells (count[r] is touched
// only by attempts holding lock r): a single global cell would assert a
// property the locks do not grant — attempts on DISJOINT lock sets (e.g.
// {0,1} and {5,6}) may legitimately run their thunks concurrently, and
// under a scheduler skewed enough to overlap them (TSan slowdown) a
// shared unguarded cell loses updates by design, not by bug. (This test
// asserted exactly that for several PRs and was latently flaky under
// TSan.)
TEST(LockTable, StripedStatsMatchPerAttemptGroundTruth) {
  const int threads = 4;
  const int attempts = 250;
  constexpr std::uint32_t kLocks = 16;
  auto t = std::make_unique<Table>(cfg_for(threads), threads,
                                   static_cast<int>(kLocks),
                                   SpaceSizing{.shards = 4});
  std::vector<std::unique_ptr<Cell<RealPlat>>> count;
  for (std::uint32_t i = 0; i < kLocks; ++i) {
    count.push_back(std::make_unique<Cell<RealPlat>>(0u));
  }
  std::atomic<std::uint64_t> true_attempts{0};
  std::atomic<std::uint64_t> true_wins{0};
  std::vector<std::thread> ts;
  for (int k = 0; k < threads; ++k) {
    ts.emplace_back([&, k] {
      RealPlat::seed_rng(0xD00D + static_cast<std::uint64_t>(k));
      auto proc = t->register_process();
      Xoshiro256 rng(991 + static_cast<std::uint64_t>(k));
      for (int a = 0; a < attempts; ++a) {
        const auto r = static_cast<std::uint32_t>(rng.next_below(15));
        const std::uint32_t ids[] = {r, r + 1};
        Cell<RealPlat>* cell = count[r].get();
        true_attempts.fetch_add(1, std::memory_order_relaxed);
        if (t->try_locks(proc, ids, [cell](IdemCtx<RealPlat>& m) {
              m.store(*cell, m.load(*cell) + 1);
            })) {
          true_wins.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  const LockStats s = t->stats();
  EXPECT_EQ(s.attempts, true_attempts.load());
  EXPECT_EQ(s.wins, true_wins.load());
  // Every win was celebrated at least once (possibly more, by helpers).
  EXPECT_GE(s.thunk_runs, s.wins);
  // Delays are off, so the overrun counters must never fire.
  EXPECT_EQ(s.t0_overruns, 0u);
  EXPECT_EQ(s.t1_overruns, 0u);
  // The won thunks all executed exactly once logically.
  std::uint64_t sum = 0;
  for (const auto& cell : count) sum += cell->peek();
  EXPECT_EQ(sum, true_wins.load());
}

// One registered handle serves locks in every shard, its serial blocks keep
// tag spaces disjoint between processes, and the inspector guard is
// re-entrant (depth-counted) across the whole table.
TEST(LockTable, HandleWorksAcrossShardsAndGuardsAreReentrant) {
  Table t(cfg_for(2, 1), 2, 8, SpaceSizing{.shards = 4});
  auto p0 = t.register_process();
  auto p1 = t.register_process();
  EXPECT_EQ(p0.ebr_pid, 0);
  EXPECT_EQ(p1.ebr_pid, 1);

  Cell<RealPlat> c{0};
  for (std::uint32_t id = 0; id < 8; ++id) {
    const std::uint32_t ids[] = {id};
    EXPECT_TRUE(t.try_locks(p0, ids, [&c](IdemCtx<RealPlat>& m) {
      m.store(c, m.load(c) + 1);
    }));
    EXPECT_TRUE(t.try_locks(p1, ids, [&c](IdemCtx<RealPlat>& m) {
      m.store(c, m.load(c) + 1);
    }));
  }
  EXPECT_EQ(c.peek(), 16u);
  EXPECT_EQ(t.stats().attempts, 16u);
  EXPECT_EQ(t.stats().wins, 16u);

  // Nested inspector guards: the raw EbrDomain forbids re-entry, the
  // table's depth counters allow it (the engine relies on this when a
  // helped descriptor's lock set overlaps shards the helper already holds).
  t.ebr_enter(p0);
  t.ebr_enter(p0);
  const auto* snap = t.lock_set(3).get_set();
  EXPECT_EQ(snap->count, 0u);  // quiescent: nothing inserted
  t.ebr_exit(p0);
  t.ebr_exit(p0);
}

// The facade still composes with everything that now takes the table layer:
// a LockSpace flows into substrate constructors, txn and retry unchanged.
TEST(LockTable, FacadeConvertsToTable) {
  LockSpace<RealPlat> space(cfg_for(1, 2, 24), 1, 8);
  EXPECT_EQ(space.num_shards(), 1u);
  Table& t = space;  // implicit conversion
  EXPECT_EQ(t.num_locks(), 8);

  auto proc = space.register_process();
  auto cell = std::make_unique<Cell<RealPlat>>(0u);
  Cell<RealPlat>* cp = cell.get();
  TxnBuilder<RealPlat> b;
  const std::uint32_t ids[] = {0, 1};
  b.op(ids, [cp](IdemCtx<RealPlat>& m) { m.store(*cp, m.load(*cp) + 1); });
  auto txn = std::move(b).build();
  const RetryStats rs = txn.run(space, proc);
  EXPECT_TRUE(rs.success);
  EXPECT_EQ(cell->peek(), 1u);

  const std::uint32_t one[] = {2};
  const RetryStats rr = retry_until_success<RealPlat>(
      space, proc, one, [cp](IdemCtx<RealPlat>& m) {
        m.store(*cp, m.load(*cp) + 1);
      });
  EXPECT_TRUE(rr.success);
  EXPECT_EQ(cell->peek(), 2u);
}

// Allocation locality: once the per-process slot caches and the EBR
// pipeline are warm, a steady-state uncontended single-lock workload must
// perform ZERO shared-freelist transactions — descriptor and snapshot
// slots circulate entirely through the owner's caches (alloc pops the
// cache, the EBR deleters push expired slots back).
TEST(LockTable, SteadyStateUncontendedTouchesNoSharedFreelist) {
  // This test exercises the DESCRIPTOR path's cache circulation, so the
  // thin-word fast path (which skips descriptor allocation entirely and
  // would make the assertion vacuous) is disabled. test_fastpath covers
  // the fast path's own zero-pool-traffic property.
  LockConfig cfg = cfg_for(2, 1);
  cfg.fast_path = false;
  Table t(cfg, 2, 16, SpaceSizing{.shards = 4});
  auto proc = t.register_process();
  Cell<RealPlat> c{0};
  auto attempt = [&] {
    const std::uint32_t ids[] = {0};
    ASSERT_TRUE(t.try_locks(proc, ids, [&c](IdemCtx<RealPlat>& m) {
      m.store(c, m.load(c) + 1);
    }));
  };
  // Warm-up: fill the caches, let grace periods start recycling.
  for (int a = 0; a < 600; ++a) attempt();
  const std::uint64_t ops_before = t.freelist_ops();
  for (int a = 0; a < 400; ++a) attempt();
  EXPECT_EQ(t.freelist_ops(), ops_before)
      << "steady-state uncontended attempts hit the shared freelist";
  // The lazy log reset is also visible here: a 2-op thunk consumes 4 log
  // slots, so reinit must re-init ~4 per attempt, not kThunkLogCap.
  const LockStats s = t.stats();
  EXPECT_GT(s.attempts, 0u);
  EXPECT_LE(s.log_slot_resets, s.attempts * 4)
      << "lazy reset regressed towards O(kThunkLogCap)";
}

// Cached slots must never leak: an orderly session release AND a
// crash-abandoned process (released while parked inside a guard) both
// spill their caches back to the shared pools.
TEST(LockTable, CachedSlotsSpillOnRelease) {
  // Descriptor-path machinery under test: disable the fast path so
  // single-lock attempts actually populate the slot caches.
  LockConfig cfg = cfg_for(2, 1);
  cfg.fast_path = false;
  Table t(cfg, 2, 16, SpaceSizing{.shards = 4});
  Cell<RealPlat> c{0};

  // Orderly: run enough attempts to populate the caches, then release.
  auto p0 = t.register_process();
  for (int a = 0; a < 300; ++a) {
    const std::uint32_t ids[] = {0};
    t.try_locks(p0, ids, [&c](IdemCtx<RealPlat>& m) {
      m.store(c, m.load(c) + 1);
    });
  }
  EXPECT_GT(t.cached_slots(p0), 0u) << "caches never engaged";
  t.release_process(p0);
  EXPECT_EQ(t.cached_slots(p0), 0u) << "orderly release leaked cached slots";

  // Crash-abandoned: reuse the freed slot, warm it up again, then release
  // while an inspector guard is held — the parked path must spill too,
  // because the pid is retired forever and nothing could ever reuse the
  // cache. (A parked pid is not recycled: the next registration under a
  // 2-process table must fail-loudly only on the THIRD slot, so we just
  // check the spill here.)
  auto p1 = t.register_process();
  for (int a = 0; a < 300; ++a) {
    const std::uint32_t ids[] = {4};
    t.try_locks(p1, ids, [&c](IdemCtx<RealPlat>& m) {
      m.store(c, m.load(c) + 1);
    });
  }
  EXPECT_GT(t.cached_slots(p1), 0u);
  t.ebr_enter(p1);  // leaves guard depth nonzero: the crash-parked shape
  t.release_process(p1);
  EXPECT_EQ(t.cached_slots(p1), 0u)
      << "crash-abandoned release leaked cached slots";
}

// Sharding must not perturb the simulator's determinism: identical seeds
// give identical outcomes with a multi-shard table.
TEST(LockTable, DeterministicUnderSimWithShards) {
  auto once = [] {
    LockConfig cfg;
    cfg.kappa = 4;
    cfg.max_locks = 2;
    cfg.max_thunk_steps = 8;
    cfg.c0 = 8.0;
    cfg.c1 = 8.0;
    auto space = std::make_unique<LockTable<TestPlat>>(
        cfg, 4, 4, SpaceSizing{.shards = 4});
    auto counter = std::make_unique<Cell<TestPlat>>(0u);
    Cell<TestPlat>* cp = counter.get();
    std::uint64_t wins = 0;
    Simulator sim(42);
    for (int p = 0; p < 4; ++p) {
      sim.add_process([&, p] {
        auto proc = space->register_process();
        for (int a = 0; a < 12; ++a) {
          const std::uint32_t ids[] = {static_cast<std::uint32_t>(p % 4),
                                       static_cast<std::uint32_t>((p + 1) % 4)};
          if (space->try_locks(proc, ids, [cp](IdemCtx<TestPlat>& m) {
                m.store(*cp, m.load(*cp) + 1);
              })) {
            ++wins;
          }
        }
      });
    }
    UniformSchedule sched(4, 42);
    EXPECT_TRUE(sim.run(sched, 200'000'000));
    return std::make_pair(wins, counter->peek());
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_EQ(a.first, a.second);  // exactly-once
}

}  // namespace
}  // namespace wfl
