// Cross-module integration: multiple application substrates sharing one
// lock space, mixed sim workloads, and end-to-end scenario sweeps.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "wfl/wfl.hpp"

namespace wfl {
namespace {

// Bank accounts and a locked list sharing ONE lock space: lock ids
// [0, accounts) guard balances, [accounts, accounts+list_cap) guard list
// nodes. Operations that touch both (an "audit trail" insert per transfer)
// exercise disjoint lock-set attempts interleaving in the same space.
TEST(Integration, BankAndListShareALockSpace) {
  using Plat = RealPlat;
  const int threads = 3;
  // Up to 3*200 audit entries and no node recycling: size the list
  // pool (= its lock count) for the whole workload.
  const std::uint32_t accounts = 4, list_cap = 1024;
  LockConfig cfg;
  cfg.kappa = threads + 1;
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 8;
  cfg.delay_mode = DelayMode::kOff;
  LockSpace<Plat> space(cfg, threads, static_cast<int>(accounts + list_cap));

  Bank<Plat> bank(space, accounts, 100);

  // The list gets its own space (its lock ids are node indices); sharing
  // ids with the bank would alias locks.
  LockSpace<Plat> list_space(cfg, threads, static_cast<int>(list_cap));
  LockedList<Plat> list(list_space, list_cap);

  std::vector<std::thread> ts;
  std::atomic<std::uint32_t> audit_key{1};
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      Plat::seed_rng(600 + static_cast<std::uint64_t>(t));
      BasicSession bproc(space.table());
      BasicSession lproc(list_space.table());
      Xoshiro256 rng(t * 5 + 1);
      for (int i = 0; i < 200; ++i) {
        const auto a = static_cast<std::uint32_t>(rng.next_below(accounts));
        auto b = static_cast<std::uint32_t>(rng.next_below(accounts));
        if (b == a) b = (b + 1) % accounts;
        if (bank.try_transfer(bproc, a, b, 1)) {
          // Record an audit entry with a globally unique key.
          const std::uint32_t key = audit_key.fetch_add(1);
          ASSERT_TRUE(list.insert(lproc, key));
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(bank.total_balance(), bank.expected_total());
  // Audit log: exactly one entry per successful transfer, all distinct.
  const auto keys = list.keys();
  EXPECT_EQ(keys.size(), static_cast<std::size_t>(audit_key.load() - 1));
}

// The known-bounds and adaptive spaces produce identical application-level
// results on the same deterministic workload (different fairness, same
// safety). Both run through the one generic session/submit path — the
// executor's whole point.
TEST(Integration, KnownAndAdaptiveAgreeOnOutcomeInvariants) {
  auto run_with = [](auto& space) {
    Cell<SimPlat> counter{0};
    Simulator sim(55);
    std::uint64_t wins = 0;
    for (int p = 0; p < 3; ++p) {
      sim.add_process([&, p] {
        BasicSession session(space);
        (void)p;
        const StaticLockSet<2> locks{0, 1};
        for (int a = 0; a < 30; ++a) {
          if (submit(session, locks, [&counter](IdemCtx<SimPlat>& m) {
                m.store(counter, m.load(counter) + 1);
              }).won) {
            ++wins;
          }
        }
      });
    }
    UniformSchedule sched(3, 555);
    EXPECT_TRUE(sim.run(sched, 4'000'000'000ull));
    return std::make_pair(wins, counter.peek());
  };

  LockConfig cfg;
  cfg.kappa = 3;
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 4;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  LockSpace<SimPlat> known(cfg, 3, 2);
  auto [kw, kc] = run_with(known.table());
  EXPECT_EQ(kw, kc);  // every win incremented exactly once

  AdaptiveLockSpace<SimPlat> adaptive(3, 2);
  auto [aw, ac] = run_with(adaptive);
  EXPECT_EQ(aw, ac);
}

// Philosophers harness over three different lock providers, same topology,
// in one binary — the experiment code path end to end, tiny sizes.
TEST(Integration, PhilosopherHarnessAcrossProviders) {
  const int n = 4, meals = 5;

  {  // wflock
    LockConfig cfg;
    cfg.kappa = 2;
    cfg.max_locks = 2;
    cfg.max_thunk_steps = 2;
    cfg.c0 = 8.0;
    cfg.c1 = 8.0;
    auto space = std::make_unique<LockSpace<SimPlat>>(cfg, n, n);
    std::vector<PhilosopherReport> reports(n);
    Simulator sim(66);
    for (int p = 0; p < n; ++p) {
      sim.add_process([&, p] {
        BasicSession session(space->table());
        const auto [l, r] = forks_of(p, n);
        const StaticLockSet<2> forks{l, r};
        run_philosopher_episodes<SimPlat>(
            p, meals, 16, 800 + p,
            [&](int) {
              return submit(session, forks, [](IdemCtx<SimPlat>&) {}).won;
            },
            reports[static_cast<std::size_t>(p)]);
      });
    }
    UniformSchedule sched(n, 7);
    ASSERT_TRUE(sim.run(sched, 2'000'000'000ull));
    for (const auto& r : reports) EXPECT_EQ(r.meals, meals);
  }
  {  // blocking spin 2PL (in sim; schedule is fair so no livelock)
    auto locks = std::make_unique<Spin2PL<SimPlat>>(n);
    std::vector<PhilosopherReport> reports(n);
    Simulator sim(67);
    for (int p = 0; p < n; ++p) {
      sim.add_process([&, p] {
        const auto [l, r] = forks_of(p, n);
        run_philosopher_episodes<SimPlat>(
            p, meals, 16, 900 + p,
            [&](int) {
              const std::uint32_t ids[] = {l, r};
              return locks->try_locked(ids, [] {});
            },
            reports[static_cast<std::size_t>(p)]);
      });
    }
    UniformSchedule sched(n, 8);
    ASSERT_TRUE(sim.run(sched, 2'000'000'000ull));
    for (const auto& r : reports) EXPECT_EQ(r.meals, meals);
  }
  {  // Lehmann–Rabin
    LehmannRabinTable<SimPlat> table(n);
    std::vector<PhilosopherReport> reports(n);
    Simulator sim(68);
    for (int p = 0; p < n; ++p) {
      sim.add_process([&, p] {
        run_philosopher_episodes<SimPlat>(
            p, meals, 16, 1000 + p,
            [&](int pid) {
              table.dine(pid, 1'000'000);
              return true;  // blocking: an attempt is a meal
            },
            reports[static_cast<std::size_t>(p)]);
      });
    }
    UniformSchedule sched(n, 9);
    ASSERT_TRUE(sim.run(sched, 2'000'000'000ull));
    for (const auto& r : reports) EXPECT_EQ(r.meals, meals);
  }
}

// Stress the whole stack with the simulator's nastiest schedule shape:
// repeated long stall bursts while three substrates churn.
TEST(Integration, StallBurstTortureEndToEnd) {
  const int procs = 4;
  LockConfig cfg;
  cfg.kappa = procs;
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 8;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  LockSpace<SimPlat> space(cfg, procs, 8);
  Bank<SimPlat> bank(space, 8, 250);
  Simulator sim(77);
  for (int p = 0; p < procs; ++p) {
    sim.add_process([&, p] {
      BasicSession proc(space.table());
      Xoshiro256 rng(p * 11 + 3);
      for (int i = 0; i < 20; ++i) {
        const auto a = static_cast<std::uint32_t>(rng.next_below(8));
        auto b = static_cast<std::uint32_t>(rng.next_below(8));
        if (b == a) b = (b + 1) % 8;
        bank.try_transfer(proc, a, b,
                          static_cast<std::uint32_t>(rng.next_below(5)));
      }
    });
  }
  StallBurstSchedule sched(procs, 31, 8192);
  ASSERT_TRUE(sim.run(sched, 4'000'000'000ull));
  EXPECT_EQ(bank.total_balance(), bank.expected_total());
  EXPECT_EQ(space.stats().t0_overruns, 0u);
}

}  // namespace
}  // namespace wfl
