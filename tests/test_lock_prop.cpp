// Property sweep: mutual exclusion + exactly-once execution must hold for
// every combination of (process count, lock count, schedule family, seed).
// One TEST_P instantiation = one deterministic adversarial universe.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "wfl/wfl.hpp"

namespace wfl {
namespace {

using Space = LockSpace<SimPlat>;

enum class SchedKind { kRoundRobin, kUniform, kWeighted, kStallBurst };

std::string sched_name(SchedKind k) {
  switch (k) {
    case SchedKind::kRoundRobin: return "rr";
    case SchedKind::kUniform: return "uni";
    case SchedKind::kWeighted: return "wgt";
    case SchedKind::kStallBurst: return "stall";
  }
  return "?";
}

std::unique_ptr<Schedule> make_sched(SchedKind k, int n, std::uint64_t seed) {
  switch (k) {
    case SchedKind::kRoundRobin:
      return std::make_unique<RoundRobinSchedule>(n);
    case SchedKind::kUniform:
      return std::make_unique<UniformSchedule>(n, seed);
    case SchedKind::kWeighted: {
      std::vector<double> w(static_cast<std::size_t>(n), 1.0);
      w[0] = 0.02;  // one slow process
      if (n > 1) w[static_cast<std::size_t>(n - 1)] = 5.0;  // one fast
      return std::make_unique<WeightedSchedule>(w, seed);
    }
    case SchedKind::kStallBurst:
      return std::make_unique<StallBurstSchedule>(n, seed, 1500);
  }
  return nullptr;
}

using Param = std::tuple<int /*procs*/, int /*locks*/, SchedKind,
                         std::uint64_t /*seed*/>;

class LockProperty : public ::testing::TestWithParam<Param> {};

TEST_P(LockProperty, MutualExclusionAndExactlyOnce) {
  const auto [procs, locks, kind, seed] = GetParam();
  LockConfig cfg;
  cfg.kappa = static_cast<std::uint32_t>(procs);
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 8;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  auto space = std::make_unique<Space>(cfg, procs, locks);

  std::vector<std::unique_ptr<Cell<SimPlat>>> busy, count;
  for (int i = 0; i < locks; ++i) {
    busy.push_back(std::make_unique<Cell<SimPlat>>(0u));
    count.push_back(std::make_unique<Cell<SimPlat>>(0u));
  }
  std::vector<std::uint64_t> violations(static_cast<std::size_t>(locks), 0);
  std::vector<std::uint64_t> wins_on(static_cast<std::size_t>(locks), 0);

  const int attempts = 18;
  Simulator sim(seed);
  for (int p = 0; p < procs; ++p) {
    sim.add_process([&, p] {
      auto proc = space->register_process();
      Xoshiro256 rng(seed * 131 + static_cast<std::uint64_t>(p));
      for (int a = 0; a < attempts; ++a) {
        const auto r = static_cast<std::uint32_t>(rng.next_below(locks));
        const auto r2 = static_cast<std::uint32_t>((r + 1) % locks);
        std::uint32_t ids_arr[2] = {r, r2};
        const std::uint32_t n = locks >= 2 ? 2u : 1u;
        Cell<SimPlat>& flag = *busy[r];
        Cell<SimPlat>& cnt = *count[r];
        std::uint64_t* viol = &violations[r];
        if (space->try_locks(proc, {ids_arr, n},
                             [&flag, &cnt, viol](IdemCtx<SimPlat>& m) {
                               if (m.load(flag) != 0) ++*viol;
                               m.store(flag, 1);
                               m.store(cnt, m.load(cnt) + 1);
                               m.store(flag, 0);
                             })) {
          ++wins_on[r];
        }
      }
    });
  }
  auto sched = make_sched(kind, procs, seed ^ 0xACE);
  ASSERT_TRUE(sim.run(*sched, 4'000'000'000ull)) << "slot budget exhausted";
  for (int r = 0; r < locks; ++r) {
    EXPECT_EQ(violations[static_cast<std::size_t>(r)], 0u)
        << "CS overlap on lock " << r << " (" << sched_name(kind) << ")";
    EXPECT_EQ(count[static_cast<std::size_t>(r)]->peek(),
              wins_on[static_cast<std::size_t>(r)])
        << "lost/duplicated CS on lock " << r;
  }
  EXPECT_EQ(space->stats().t0_overruns, 0u);
  EXPECT_EQ(space->stats().t1_overruns, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LockProperty,
    ::testing::Combine(
        ::testing::Values(2, 3, 5),
        ::testing::Values(2, 4),
        ::testing::Values(SchedKind::kRoundRobin, SchedKind::kUniform,
                          SchedKind::kWeighted, SchedKind::kStallBurst),
        ::testing::Values(std::uint64_t{1}, std::uint64_t{99})),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_l" +
             std::to_string(std::get<1>(info.param)) + "_" +
             sched_name(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

// Adaptive variant under the same sweep (lighter: fewer combos — its
// attempts are longer because of the power-of-two padding).
class AdaptiveProperty : public ::testing::TestWithParam<Param> {};

TEST_P(AdaptiveProperty, MutualExclusionAndExactlyOnce) {
  const auto [procs, locks, kind, seed] = GetParam();
  auto space = std::make_unique<AdaptiveLockSpace<SimPlat>>(procs, locks);

  std::vector<std::unique_ptr<Cell<SimPlat>>> busy, count;
  for (int i = 0; i < locks; ++i) {
    busy.push_back(std::make_unique<Cell<SimPlat>>(0u));
    count.push_back(std::make_unique<Cell<SimPlat>>(0u));
  }
  std::vector<std::uint64_t> violations(static_cast<std::size_t>(locks), 0);
  std::vector<std::uint64_t> wins_on(static_cast<std::size_t>(locks), 0);

  Simulator sim(seed);
  for (int p = 0; p < procs; ++p) {
    sim.add_process([&, p] {
      auto proc = space->register_process();
      Xoshiro256 rng(seed * 17 + static_cast<std::uint64_t>(p));
      for (int a = 0; a < 12; ++a) {
        const auto r = static_cast<std::uint32_t>(rng.next_below(locks));
        const auto r2 = static_cast<std::uint32_t>((r + 1) % locks);
        std::uint32_t ids_arr[2] = {r, r2};
        const std::uint32_t n = locks >= 2 ? 2u : 1u;
        Cell<SimPlat>& flag = *busy[r];
        Cell<SimPlat>& cnt = *count[r];
        std::uint64_t* viol = &violations[r];
        if (space->try_locks(proc, {ids_arr, n},
                             [&flag, &cnt, viol](IdemCtx<SimPlat>& m) {
                               if (m.load(flag) != 0) ++*viol;
                               m.store(flag, 1);
                               m.store(cnt, m.load(cnt) + 1);
                               m.store(flag, 0);
                             })) {
          ++wins_on[r];
        }
      }
    });
  }
  auto sched = make_sched(kind, procs, seed ^ 0xBEE);
  ASSERT_TRUE(sim.run(*sched, 4'000'000'000ull));
  for (int r = 0; r < locks; ++r) {
    EXPECT_EQ(violations[static_cast<std::size_t>(r)], 0u);
    EXPECT_EQ(count[static_cast<std::size_t>(r)]->peek(),
              wins_on[static_cast<std::size_t>(r)]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdaptiveProperty,
    ::testing::Combine(
        ::testing::Values(2, 4),
        ::testing::Values(2, 3),
        ::testing::Values(SchedKind::kUniform, SchedKind::kStallBurst),
        ::testing::Values(std::uint64_t{5}, std::uint64_t{55})),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_l" +
             std::to_string(std::get<1>(info.param)) + "_" +
             sched_name(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace wfl
