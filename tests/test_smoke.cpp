// Smoke: the whole stack compiles and a single-threaded attempt works on
// both platforms.
#include <gtest/gtest.h>

#include "wfl/wfl.hpp"

namespace wfl {
namespace {

TEST(Smoke, SingleAttemptRealPlat) {
  LockConfig cfg;
  cfg.kappa = 2;
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 4;
  cfg.delay_mode = DelayMode::kOff;
  LockSpace<RealPlat> space(cfg, /*max_procs=*/2, /*num_locks=*/4);
  auto proc = space.register_process();

  Cell<RealPlat> counter{10};
  const std::uint32_t ids[] = {0, 2};
  const bool won = space.try_locks(proc, ids, [&](IdemCtx<RealPlat>& m) {
    m.store(counter, m.load(counter) + 5);
  });
  EXPECT_TRUE(won);
  EXPECT_EQ(counter.peek(), 15u);
  EXPECT_EQ(space.stats().wins, 1u);
}

TEST(Smoke, SingleAttemptSimPlat) {
  LockConfig cfg;
  cfg.kappa = 2;
  cfg.max_locks = 1;
  cfg.max_thunk_steps = 4;
  LockSpace<SimPlat> space(cfg, 2, 2);
  auto proc = space.register_process();
  Cell<SimPlat> counter{0};

  Simulator sim(42);
  bool won = false;
  sim.add_process([&] {
    const std::uint32_t ids[] = {1};
    won = space.try_locks(proc, ids, [&](IdemCtx<SimPlat>& m) {
      m.store(counter, m.load(counter) + 1);
    });
  });
  RoundRobinSchedule rr(1);
  ASSERT_TRUE(sim.run(rr, 1'000'000));
  EXPECT_TRUE(won);
  EXPECT_EQ(counter.peek(), 1u);
}

TEST(Smoke, EmptyLockSetRunsThunkImmediately) {
  LockConfig cfg;
  cfg.delay_mode = DelayMode::kOff;
  LockSpace<RealPlat> space(cfg, 1, 1);
  auto proc = space.register_process();
  Cell<RealPlat> c{0};
  EXPECT_TRUE(space.try_locks(proc, {}, [&](IdemCtx<RealPlat>& m) {
    m.store(c, 7);
  }));
  EXPECT_EQ(c.peek(), 7u);
}

}  // namespace
}  // namespace wfl
