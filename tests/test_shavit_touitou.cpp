// Shavit–Touitou selfish-helping STM baseline: exactly-once application,
// conservation under churn, help-committed vs abort-acquiring behavior.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "wfl/baseline/shavit_touitou.hpp"
#include "wfl/idem/cell.hpp"
#include "wfl/platform/real.hpp"
#include "wfl/platform/sim.hpp"
#include "wfl/sim/sim.hpp"

namespace wfl {
namespace {

TEST(ShavitTouitou, AppliesExactlyOnceSingleThread) {
  ShavitTouitouSpace<RealPlat> space(2, 4);
  auto proc = space.register_process();
  Cell<RealPlat> c{5};
  const std::uint32_t ids[] = {1, 2};
  space.apply(proc, ids, [&c](IdemCtx<RealPlat>& m) {
    m.store(c, m.load(c) * 2);
  });
  EXPECT_EQ(c.peek(), 10u);
  EXPECT_EQ(space.aborts(), 0u);
}

TEST(ShavitTouitou, ConcurrentTransfersConserveTotal) {
  ShavitTouitouSpace<RealPlat> space(4, 8);
  std::vector<std::unique_ptr<Cell<RealPlat>>> accounts;
  for (int i = 0; i < 8; ++i) {
    accounts.push_back(std::make_unique<Cell<RealPlat>>(100u));
  }
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&, t] {
      auto proc = space.register_process();
      Xoshiro256 rng(91 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 1500; ++i) {
        const auto a = static_cast<std::uint32_t>(rng.next_below(8));
        auto b = static_cast<std::uint32_t>(rng.next_below(8));
        if (b == a) b = (b + 1) % 8;
        Cell<RealPlat>& src = *accounts[a];
        Cell<RealPlat>& dst = *accounts[b];
        const std::uint32_t ids[] = {a, b};
        space.apply(proc, ids, [&src, &dst](IdemCtx<RealPlat>& m) {
          const std::uint32_t s = m.load(src);
          if (s >= 1) {
            m.store(src, s - 1);
            m.store(dst, m.load(dst) + 1);
          }
        });
      }
    });
  }
  for (auto& th : ts) th.join();
  std::uint64_t total = 0;
  for (const auto& a : accounts) total += a->peek();
  EXPECT_EQ(total, 800u);
}

TEST(ShavitTouitou, AbortsAreCountedUnderContention) {
  // Under a sim schedule that interleaves two acquiring transactions on the
  // same locks, at least one abort must occur eventually (the selfish
  // scheme aborts rather than helps acquiring owners).
  ShavitTouitouSpace<SimPlat> space(2, 2);
  Cell<SimPlat> c{0};
  Simulator sim(19);
  for (int p = 0; p < 2; ++p) {
    sim.add_process([&, p] {
      auto proc = space.register_process();
      (void)p;
      const std::uint32_t ids[] = {0, 1};
      for (int i = 0; i < 30; ++i) {
        space.apply(proc, ids, [&c](IdemCtx<SimPlat>& m) {
          m.store(c, m.load(c) + 1);
        });
      }
    });
  }
  UniformSchedule sched(2, 123);
  ASSERT_TRUE(sim.run(sched, 500'000'000));
  EXPECT_EQ(c.peek(), 60u);  // exactly once each, despite aborts
  EXPECT_GT(space.aborts(), 0u);
}

TEST(ShavitTouitou, StarvedCommittedOwnerIsHelpedThrough) {
  // Process 0 commits then stalls; process 1 must finish its own operation
  // by helping the committed owner (the one case ST helps).
  ShavitTouitouSpace<SimPlat> space(2, 2);
  Cell<SimPlat> c{0};
  Simulator sim(29);
  int done = 0;
  for (int p = 0; p < 2; ++p) {
    sim.add_process([&, p] {
      auto proc = space.register_process();
      (void)p;
      const std::uint32_t ids[] = {0, 1};
      for (int i = 0; i < 4; ++i) {
        space.apply(proc, ids, [&c](IdemCtx<SimPlat>& m) {
          m.store(c, m.load(c) + 1);
        });
      }
      ++done;
    });
  }
  WeightedSchedule sched({0.02, 1.0}, 31);
  ASSERT_TRUE(sim.run(sched, 500'000'000));
  EXPECT_EQ(done, 2);
  EXPECT_EQ(c.peek(), 8u);
}

}  // namespace
}  // namespace wfl
