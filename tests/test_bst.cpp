// LockedBst: external search tree over wait-free tryLocks — sequential
// set semantics against a reference model, structural audits, concurrent
// churn on real threads, and deterministic adversarial interleavings under
// the simulator (including the insert-vs-erase interposition race the
// erase thunk's p_child validation exists for).
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "wfl/wfl.hpp"

namespace wfl {
namespace {

LockConfig bst_cfg(int procs) {
  LockConfig cfg;
  cfg.kappa = static_cast<std::uint32_t>(procs) + 1;
  cfg.max_locks = 3;
  cfg.max_thunk_steps = 16;
  cfg.delay_mode = DelayMode::kOff;
  return cfg;
}

TEST(Bst, EmptyTreeBasics) {
  LockSpace<RealPlat> space(bst_cfg(1), 1, 64);
  LockedBst<RealPlat> bst(space, 64);
  BasicSession proc(space.table());
  EXPECT_FALSE(bst.contains(7));
  EXPECT_FALSE(bst.erase(proc, 7));
  EXPECT_TRUE(bst.keys().empty());
  bst.check_structure();
}

TEST(Bst, InsertThenFind) {
  LockSpace<RealPlat> space(bst_cfg(1), 1, 64);
  LockedBst<RealPlat> bst(space, 64);
  BasicSession proc(space.table());
  EXPECT_TRUE(bst.insert(proc, 10));
  EXPECT_TRUE(bst.insert(proc, 5));
  EXPECT_TRUE(bst.insert(proc, 20));
  EXPECT_FALSE(bst.insert(proc, 10));  // duplicate
  EXPECT_TRUE(bst.contains(5));
  EXPECT_TRUE(bst.contains(10));
  EXPECT_TRUE(bst.contains(20));
  EXPECT_FALSE(bst.contains(6));
  EXPECT_EQ(bst.keys(), (std::vector<std::uint32_t>{5, 10, 20}));
  bst.check_structure();
}

TEST(Bst, EraseLeafAndReinsert) {
  LockSpace<RealPlat> space(bst_cfg(1), 1, 64);
  LockedBst<RealPlat> bst(space, 64);
  BasicSession proc(space.table());
  EXPECT_TRUE(bst.insert(proc, 8));
  EXPECT_TRUE(bst.insert(proc, 4));
  EXPECT_TRUE(bst.insert(proc, 12));
  EXPECT_TRUE(bst.erase(proc, 4));
  EXPECT_FALSE(bst.erase(proc, 4));
  EXPECT_FALSE(bst.contains(4));
  EXPECT_EQ(bst.keys(), (std::vector<std::uint32_t>{8, 12}));
  EXPECT_TRUE(bst.insert(proc, 4));
  EXPECT_EQ(bst.keys(), (std::vector<std::uint32_t>{4, 8, 12}));
  bst.check_structure();
}

TEST(Bst, EraseSoleKeyLeavesEmptyTree) {
  LockSpace<RealPlat> space(bst_cfg(1), 1, 32);
  LockedBst<RealPlat> bst(space, 32);
  BasicSession proc(space.table());
  EXPECT_TRUE(bst.insert(proc, 42));
  EXPECT_TRUE(bst.erase(proc, 42));
  EXPECT_TRUE(bst.keys().empty());
  bst.check_structure();
  EXPECT_TRUE(bst.insert(proc, 42));
  EXPECT_EQ(bst.keys(), (std::vector<std::uint32_t>{42}));
}

TEST(Bst, AscendingAndDescendingInsertionsStaySorted) {
  LockSpace<RealPlat> space(bst_cfg(1), 1, 256);
  LockedBst<RealPlat> bst(space, 256);
  BasicSession proc(space.table());
  for (std::uint32_t k = 1; k <= 30; ++k) EXPECT_TRUE(bst.insert(proc, k));
  for (std::uint32_t k = 100; k >= 71; --k) EXPECT_TRUE(bst.insert(proc, k));
  const auto keys = bst.keys();
  ASSERT_EQ(keys.size(), 60u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  bst.check_structure();
}

TEST(Bst, RandomizedAgainstReferenceModel) {
  LockSpace<RealPlat> space(bst_cfg(1), 1, 1024);
  LockedBst<RealPlat> bst(space, 1024);
  BasicSession proc(space.table());
  std::set<std::uint32_t> model;
  Xoshiro256 rng(1234);
  for (int i = 0; i < 600; ++i) {
    const std::uint32_t key =
        static_cast<std::uint32_t>(1 + rng.next_below(50));
    switch (rng.next_below(3)) {
      case 0:
        EXPECT_EQ(bst.insert(proc, key), model.insert(key).second);
        break;
      case 1:
        EXPECT_EQ(bst.erase(proc, key), model.erase(key) > 0);
        break;
      default:
        EXPECT_EQ(bst.contains(key), model.count(key) > 0);
    }
  }
  std::vector<std::uint32_t> expect(model.begin(), model.end());
  EXPECT_EQ(bst.keys(), expect);
  bst.check_structure();
}

TEST(Bst, ConcurrentInsertsDisjointRanges) {
  const int threads = 4;
  LockSpace<RealPlat> space(bst_cfg(threads), threads, 2048);
  LockedBst<RealPlat> bst(space, 2048);
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      RealPlat::seed_rng(91 + static_cast<std::uint64_t>(t));
      BasicSession proc(space.table());
      for (std::uint32_t i = 1; i <= 60; ++i) {
        EXPECT_TRUE(bst.insert(proc, static_cast<std::uint32_t>(t) * 100 + i));
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(bst.keys().size(), 4u * 60u);
  bst.check_structure();
}

TEST(Bst, ConcurrentChurnMatchesPerKeyAccounting) {
  // Each thread owns a disjoint key range and performs a deterministic
  // insert/erase sequence; the final membership per range must match the
  // thread's own accounting even though neighbourhood locks overlap at the
  // range boundaries through shared routers.
  const int threads = 4;
  LockSpace<RealPlat> space(bst_cfg(threads), threads, 4096);
  LockedBst<RealPlat> bst(space, 4096);
  std::vector<std::set<std::uint32_t>> finals(threads);
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      RealPlat::seed_rng(7 + static_cast<std::uint64_t>(t));
      BasicSession proc(space.table());
      Xoshiro256 rng(t * 17 + 3);
      std::set<std::uint32_t>& model = finals[static_cast<std::size_t>(t)];
      for (int i = 0; i < 400; ++i) {
        const std::uint32_t key = static_cast<std::uint32_t>(
            t * 1000 + 1 + static_cast<int>(rng.next_below(30)));
        if (rng.next_below(2) == 0) {
          EXPECT_EQ(bst.insert(proc, key), model.insert(key).second);
        } else {
          EXPECT_EQ(bst.erase(proc, key), model.erase(key) > 0);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  std::vector<std::uint32_t> expect;
  for (auto& m : finals) expect.insert(expect.end(), m.begin(), m.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(bst.keys(), expect);
  bst.check_structure();
}

TEST(Bst, ConcurrentSharedKeysNoLostStructure) {
  // All threads hammer the same small key set: maximum neighbourhood
  // contention. The final set must be *some* subset of the key universe
  // with intact structure (exact membership depends on interleaving).
  const int threads = 4;
  LockSpace<RealPlat> space(bst_cfg(threads), threads, 4096);
  LockedBst<RealPlat> bst(space, 4096);
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      RealPlat::seed_rng(55 + static_cast<std::uint64_t>(t));
      BasicSession proc(space.table());
      Xoshiro256 rng(t * 31 + 5);
      for (int i = 0; i < 300; ++i) {
        const std::uint32_t key =
            static_cast<std::uint32_t>(1 + rng.next_below(8));
        if (rng.next_below(2) == 0) {
          bst.insert(proc, key);
        } else {
          bst.erase(proc, key);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  const auto keys = bst.keys();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  for (const std::uint32_t k : keys) {
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 8u);
  }
  bst.check_structure();
}

// --- deterministic interleavings under the simulator --------------------

TEST(BstSim, AdjacentKeyChurnUnderSkewedSchedule) {
  const int procs = 4;
  LockConfig cfg = bst_cfg(procs);
  LockSpace<SimPlat> space(cfg, procs, 1024);
  LockedBst<SimPlat> bst(space, 1024);
  Simulator sim(11);
  std::vector<std::set<std::uint32_t>> finals(procs);
  for (int p = 0; p < procs; ++p) {
    sim.add_process([&, p] {
      BasicSession proc(space.table());
      Xoshiro256 rng(p * 7 + 1);
      std::set<std::uint32_t>& model = finals[static_cast<std::size_t>(p)];
      for (int i = 0; i < 40; ++i) {
        // Adjacent disjoint ranges => constant boundary conflicts.
        const std::uint32_t key = static_cast<std::uint32_t>(
            p * 10 + 1 + static_cast<int>(rng.next_below(10)));
        if (rng.next_below(2) == 0) {
          EXPECT_EQ(bst.insert(proc, key), model.insert(key).second);
        } else {
          EXPECT_EQ(bst.erase(proc, key), model.erase(key) > 0);
        }
      }
    });
  }
  WeightedSchedule sched({1.0, 0.02, 0.5, 1.0}, 23);
  ASSERT_TRUE(sim.run(sched, 2'000'000'000ull));
  std::vector<std::uint32_t> expect;
  for (auto& m : finals) expect.insert(expect.end(), m.begin(), m.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(bst.keys(), expect);
  bst.check_structure();
}

struct BstSimParam {
  std::uint64_t sim_seed;
  std::uint64_t sched_seed;
  int procs;
};

class BstSimSweep : public ::testing::TestWithParam<BstSimParam> {};

TEST_P(BstSimSweep, SharedUniverseChurnKeepsStructure) {
  const BstSimParam prm = GetParam();
  LockConfig cfg = bst_cfg(prm.procs);
  LockSpace<SimPlat> space(cfg, prm.procs, 1024);
  LockedBst<SimPlat> bst(space, 1024);
  Simulator sim(prm.sim_seed);
  for (int p = 0; p < prm.procs; ++p) {
    sim.add_process([&, p] {
      BasicSession proc(space.table());
      Xoshiro256 rng(static_cast<std::uint64_t>(p) * 13 + prm.sim_seed);
      for (int i = 0; i < 30; ++i) {
        const std::uint32_t key =
            static_cast<std::uint32_t>(1 + rng.next_below(6));
        if (rng.next_below(2) == 0) {
          bst.insert(proc, key);
        } else {
          bst.erase(proc, key);
        }
      }
    });
  }
  UniformSchedule sched(prm.procs, prm.sched_seed);
  ASSERT_TRUE(sim.run(sched, 2'000'000'000ull));
  const auto keys = bst.keys();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  bst.check_structure();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, BstSimSweep,
    ::testing::Values(BstSimParam{1, 101, 2}, BstSimParam{2, 102, 3},
                      BstSimParam{3, 103, 4}, BstSimParam{4, 104, 4},
                      BstSimParam{5, 105, 5}, BstSimParam{6, 106, 6}),
    [](const ::testing::TestParamInfo<BstSimParam>& info) {
      return "seed" + std::to_string(info.param.sim_seed) + "procs" +
             std::to_string(info.param.procs);
    });

TEST(BstSim, DeterministicReplay) {
  auto run_once = [] {
    const int procs = 3;
    LockConfig cfg = bst_cfg(procs);
    LockSpace<SimPlat> space(cfg, procs, 512);
    LockedBst<SimPlat> bst(space, 512);
    Simulator sim(77);
    for (int p = 0; p < procs; ++p) {
      sim.add_process([&, p] {
        BasicSession proc(space.table());
        Xoshiro256 rng(p + 1);
        for (int i = 0; i < 25; ++i) {
          const std::uint32_t key =
              static_cast<std::uint32_t>(1 + rng.next_below(12));
          if (rng.next_below(2) == 0) {
            bst.insert(proc, key);
          } else {
            bst.erase(proc, key);
          }
        }
      });
    }
    UniformSchedule sched(procs, 99);
    EXPECT_TRUE(sim.run(sched, 2'000'000'000ull));
    return bst.keys();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace wfl
