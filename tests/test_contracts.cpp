// Contract enforcement: the library's capacity/usage contracts must fail
// loudly (WFL_CHECK), never corrupt silently.
#include <gtest/gtest.h>

#include "wfl/wfl.hpp"

namespace wfl {
namespace {

using Space = LockSpace<RealPlat>;

LockConfig tiny_cfg() {
  LockConfig cfg;
  cfg.kappa = 2;
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 4;
  cfg.delay_mode = DelayMode::kOff;
  return cfg;
}

// The raw-span overload's O(L²) duplicate scan is demoted to a debug
// assertion (LockSetView/StaticLockSet construction is the validated
// path), so the release-build duplicate contract lives in the view layer:
// StaticLockSet collapses duplicates before the budget check (see
// test_session's LockSet suite), and a view over a genuinely malformed
// span is the caller's contract violation. In debug builds the raw-span
// scan still dies loudly.
TEST(Contracts, DuplicateLockIdsRejected) {
#ifndef NDEBUG
  Space space(tiny_cfg(), 1, 4);
  auto proc = space.register_process();
  const std::uint32_t ids[] = {1, 1};
  EXPECT_DEATH(space.try_locks(proc, ids, typename Space::Thunk{}), "");
#else
  // Release: duplicates collapse in the owning set type instead of
  // aborting the attempt path.
  StaticLockSet<4> set({1, 1});
  EXPECT_EQ(set.size(), 1u);
#endif
}

TEST(Contracts, LockSetBeyondLRejected) {
  Space space(tiny_cfg(), 1, 4);
  auto proc = space.register_process();
  const std::uint32_t ids[] = {0, 1, 2};
  EXPECT_DEATH(space.try_locks(proc, ids, typename Space::Thunk{}),
               "exceeds the configured L bound");
}

TEST(Contracts, OutOfRangeLockIdRejected) {
  Space space(tiny_cfg(), 1, 4);
  auto proc = space.register_process();
  const std::uint32_t ids[] = {99};
  EXPECT_DEATH(space.try_locks(proc, ids, typename Space::Thunk{}), "");
}

TEST(Contracts, ThunkOpBudgetEnforced) {
  Space space(tiny_cfg(), 1, 2);
  auto proc = space.register_process();
  Cell<RealPlat> c{0};
  const std::uint32_t ids[] = {0};
  EXPECT_DEATH(space.try_locks(proc, ids,
                               [&c](IdemCtx<RealPlat>& m) {
                                 for (int i = 0; i < 100; ++i) {
                                   m.store(c, static_cast<std::uint32_t>(i));
                                 }
                               }),
               "kMaxThunkOps");
}

TEST(Contracts, ConfigValidationCatchesZeros) {
  LockConfig cfg = tiny_cfg();
  cfg.kappa = 0;
  EXPECT_DEATH((Space{cfg, 1, 1}), "");
}

TEST(Contracts, UnregisteredProcessRejected) {
  Space space(tiny_cfg(), 1, 2);
  typename Space::Process bogus;  // ebr_pid == -1
  const std::uint32_t ids[] = {0};
  EXPECT_DEATH(space.try_locks(bogus, ids, typename Space::Thunk{}), "");
}

TEST(Contracts, EbrParticipantCapacityEnforced) {
  EbrDomain dom(1);
  (void)dom.register_participant();
  EXPECT_DEATH((void)dom.register_participant(), "participant capacity");
}

TEST(Contracts, EbrDoubleEnterCaught) {
  EbrDomain dom(2);
  const int p = dom.register_participant();
  dom.enter(p);
  EXPECT_DEATH(dom.enter(p), "already in a critical region");
  dom.exit(p);
}

TEST(Contracts, ActiveSetOverContentionIsLoud) {
  // Capacity-2 active set; inserting three concurrent members violates the
  // κ contract and must abort rather than loop or corrupt.
  IndexPool<SetSnap<int*>> pool(1024);
  EbrDomain ebr(2);
  SetMem<int*> mem{pool, ebr};
  ActiveSet<RealPlat, int*> set(2, mem);
  const int pid = ebr.register_participant();
  int a = 0, b = 0, c = 0;
  EbrDomain::Guard g(ebr, pid);
  set.insert(&a, pid);
  set.insert(&b, pid);
  EXPECT_DEATH(set.insert(&c, pid), "point contention");
}

}  // namespace
}  // namespace wfl
