// Session / StaticLockSet / executor: the unified submission API.
//
//   * Session RAII — registration on construction, slot release on
//     destruction (a released pid is reused by the next session, so
//     bounded max_procs serves unbounded session generations), move-only
//     ownership;
//   * EbrGuard — scoped, re-entrant inspection guards, including around a
//     whole submit() (the attempt path shares the depth counters);
//   * StaticLockSet — sort + dedup + budget checks at construction;
//   * Policy equivalence — submit() one-shot reproduces try_locks'
//     AttemptInfo accounting exactly, and Policy::retry() reproduces
//     retry_until_success's RetryStats accounting exactly, step for step,
//     under the deterministic sim platform.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "wfl/wfl.hpp"

namespace wfl {
namespace {

LockConfig practical_cfg(int procs) {
  LockConfig cfg;
  cfg.kappa = static_cast<std::uint32_t>(procs) + 1;
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 8;
  cfg.delay_mode = DelayMode::kOff;
  return cfg;
}

// --- Session RAII lifecycle ----------------------------------------------

TEST(Session, ReleasedSlotIsReusedByTheNextSession) {
  LockSpace<RealPlat> space(practical_cfg(2), 2, 4);
  int first_pid = -1;
  {
    Session<RealPlat> s(space);
    first_pid = s.pid();
    EXPECT_GE(first_pid, 0);
  }
  // The destructor released the slot: a fresh session gets the same pid.
  Session<RealPlat> s2(space);
  EXPECT_EQ(s2.pid(), first_pid);
}

TEST(Session, BoundedProcsServeUnboundedSessionGenerations) {
  // max_procs = 1: without slot reuse the second registration would blow
  // the EBR participant capacity. Sequential sessions must keep working.
  LockSpace<RealPlat> space(practical_cfg(1), 1, 2);
  Cell<RealPlat> x{0};
  for (int gen = 0; gen < 8; ++gen) {
    Session<RealPlat> s(space);
    const StaticLockSet<1> locks{0};
    EXPECT_TRUE(
        submit(s, locks, [&x](IdemCtx<RealPlat>& m) {
          m.store(x, m.load(x) + 1);
        }).won);
  }
  EXPECT_EQ(x.peek(), 8u);
  // Table-level stats survive across generations (handles are reused,
  // not reset): 8 attempts, 8 wins.
  EXPECT_EQ(space.stats().attempts, 8u);
  EXPECT_EQ(space.stats().wins, 8u);
}

TEST(Session, MoveTransfersOwnershipOfTheRegistration) {
  LockSpace<RealPlat> space(practical_cfg(2), 2, 4);
  Session<RealPlat> a(space);
  const int pid = a.pid();
  Session<RealPlat> b(std::move(a));
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): probed API
  EXPECT_TRUE(b.active());
  EXPECT_EQ(b.pid(), pid);
  {
    // The moved-from shell's destruction must NOT release the slot...
    Session<RealPlat> shell(std::move(b));
    EXPECT_FALSE(b.active());  // NOLINT(bugprone-use-after-move)
    // ...but the owning shell's does.
  }
  Session<RealPlat> c(space);
  EXPECT_EQ(c.pid(), pid);
}

TEST(Session, WorksOverTableFacadeAndAdaptiveSpace) {
  // The same BasicSession shape serves all three space types.
  LockSpace<RealPlat> space(practical_cfg(2), 2, 2);
  Session<RealPlat> via_facade(space);           // implicit conversion
  BasicSession via_table(space.table());         // CTAD on the table
  static_assert(std::is_same_v<decltype(via_table), Session<RealPlat>>);

  AdaptiveLockSpace<RealPlat> adaptive(2, 2);
  {
    AdaptiveSession<RealPlat> s(adaptive);
    Cell<RealPlat> x{0};
    const StaticLockSet<1> locks{1};
    const Outcome o = submit(
        s, locks, [&x](IdemCtx<RealPlat>& m) { m.store(x, 7); },
        Policy::retry());
    EXPECT_TRUE(o.won);
    EXPECT_EQ(x.peek(), 7u);
    const int pid = s.pid();
    // Adaptive slots recycle the same way.
    AdaptiveSession<RealPlat> t(adaptive);
    EXPECT_NE(t.pid(), pid);
  }
  // Both released (t with pid 1 first, then s with pid 0); the free list
  // is LIFO, so the next session reuses s's slot 0.
  AdaptiveSession<RealPlat> u(adaptive);
  EXPECT_EQ(u.pid(), 0);
}

// A process crash-parked mid-attempt (CrashSchedule) dies holding EBR
// guards at many slots; destroying its Session must fall back to abandon
// semantics — force-drop the guards, retire the slot — instead of
// aborting, and must never hand the poisoned slot to a new session. The
// slot sweep covers parks inside both guarded work segments and the
// unguarded delay segments.
TEST(Session, CrashParkedSessionIsAbandonedNotRecycled) {
  for (const std::uint64_t crash_slot :
       {50ull, 100ull, 700ull, 900ull, 2'000ull, 10'000ull}) {
    LockConfig cfg;  // theory mode: attempts spend most slots in delays,
    cfg.kappa = 2;   // but the guarded work segments are hit often enough
    cfg.max_locks = 1;
    cfg.max_thunk_steps = 4;
    cfg.c0 = 8.0;
    cfg.c1 = 8.0;
    LockSpace<SimPlat> space(cfg, 3, 1);
    Simulator sim(crash_slot + 7);
    int victim_pid = -1;
    bool victim_finished = false;
    {
      std::vector<Session<SimPlat>> sessions;
      for (int p = 0; p < 2; ++p) sessions.emplace_back(space);
      victim_pid = sessions[0].pid();
      for (int p = 0; p < 2; ++p) {
        sim.add_process([&sessions, p] {
          Session<SimPlat>& s = sessions[static_cast<std::size_t>(p)];
          const StaticLockSet<1> locks{0};
          for (int a = 0; a < 40; ++a) {
            submit(s, locks, [](IdemCtx<SimPlat>&) {});
          }
        });
      }
      UniformSchedule inner(2, 11);
      CrashSchedule sched(inner, 2, {{0, crash_slot}}, 13);
      // The survivor must finish despite the crash (wait-freedom).
      ASSERT_TRUE(sim.run(sched, 4'000'000'000ull,
                          /*required_finishers=*/1))
          << "crash slot " << crash_slot;
      victim_finished = sim.is_finished(0);
      // Sessions die here — the victim's possibly mid-guard. No abort.
    }
    // The victim may have been parked in a guarded segment; its slot is
    // only recyclable when it provably ended orderly. Either way a fresh
    // session must register cleanly and new attempts must work (SimPlat
    // steps only advance inside a running simulator, so the attempt runs
    // under a second sim).
    Session<SimPlat> fresh(space);
    EXPECT_GE(fresh.pid(), 0);
    bool fresh_won = false;
    Simulator sim2(crash_slot + 99);
    sim2.add_process([&fresh, &fresh_won] {
      const StaticLockSet<1> locks{0};
      fresh_won =
          submit(fresh, locks, [](IdemCtx<SimPlat>&) {}, Policy::retry())
              .won;
    });
    UniformSchedule solo(1, 5);
    ASSERT_TRUE(sim2.run(solo, 1'000'000'000ull));
    EXPECT_TRUE(fresh_won) << "crash slot " << crash_slot;
    (void)victim_pid;
    (void)victim_finished;
  }
}

// --- EbrGuard -------------------------------------------------------------

TEST(Session, EbrGuardNestsAndWrapsAttempts) {
  LockSpace<RealPlat> space(practical_cfg(1), 1, 4);
  Session<RealPlat> s(space);
  Cell<RealPlat> x{0};
  const StaticLockSet<2> locks{0, 1};
  {
    auto outer = s.guard();
    {
      auto inner = s.guard();  // re-entrant: depth 2 on every shard
      // Inspection under the guard is legal...
      (void)space.lock_set(0).get_set();
    }
    // ...and so is a whole attempt while the outer guard is held (the
    // attempt path re-enters through the same depth counters).
    EXPECT_TRUE(submit(s, locks, [&x](IdemCtx<RealPlat>& m) {
      m.store(x, 5);
    }).won);
  }
  EXPECT_EQ(x.peek(), 5u);
  // Guards fully released: a fresh attempt still works.
  EXPECT_TRUE(submit(s, locks, [&x](IdemCtx<RealPlat>& m) {
    m.store(x, 6);
  }).won);
  EXPECT_EQ(x.peek(), 6u);
}

// --- StaticLockSet --------------------------------------------------------

TEST(LockSet, SortsAndDeduplicatesOnConstruction) {
  const std::uint32_t raw[] = {5, 2, 5, 7, 2};
  const StaticLockSet<8> set{std::span<const std::uint32_t>(raw)};
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set[0], 2u);
  EXPECT_EQ(set[1], 5u);
  EXPECT_EQ(set[2], 7u);
  const LockSetView v = set;
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], 5u);
}

TEST(LockSet, InsertKeepsOrderAndIgnoresDuplicates) {
  StaticLockSet<4> set;
  set.insert(9);
  set.insert(3);
  set.insert(9);  // duplicate: no-op
  set.insert(6);
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set[0], 3u);
  EXPECT_EQ(set[1], 6u);
  EXPECT_EQ(set[2], 9u);
}

TEST(LockSet, BudgetCheckedAgainstConfigAtConstruction) {
  LockConfig cfg = practical_cfg(1);
  cfg.max_locks = 2;
  const StaticLockSet<4> ok({3, 1}, cfg);  // at the budget: fine
  EXPECT_EQ(ok.size(), 2u);
  // Duplicates collapse BEFORE the check: {1, 1, 3} is two locks.
  const StaticLockSet<4> deduped({1, 1, 3}, cfg);
  EXPECT_EQ(deduped.size(), 2u);
}

// Death tests ride in the "Contracts" suite so the TSan CI job's
// GTEST_FILTER exclusion covers them (death tests fork; TSan dislikes it).
TEST(Contracts, LockSetOverflowFailsLoudly) {
  const std::uint32_t raw[] = {1, 2, 3, 4, 5};
  EXPECT_DEATH((StaticLockSet<4>{std::span<const std::uint32_t>(raw)}),
               "capacity");
}

TEST(Contracts, LockSetOverLBudgetFailsLoudly) {
  LockConfig cfg = practical_cfg(1);
  cfg.max_locks = 2;
  EXPECT_DEATH((StaticLockSet<4>{{1, 2, 3}, cfg}), "L bound");
}

TEST(Contracts, SubmitChecksTheLBudgetOnce) {
  LockSpace<RealPlat> space(practical_cfg(1), 1, 8);
  Session<RealPlat> s(space);
  // A capacity-4 set of 3 locks against max_locks = 2: the view carries 3
  // ids, and submit's single boundary check must reject it.
  const StaticLockSet<4> too_many{1, 2, 3};
  EXPECT_DEATH(submit(s, too_many, [](IdemCtx<RealPlat>&) {}), "L bound");
}

// --- Policy equivalence under the deterministic simulator -----------------

// Contended single-lock arena in theory mode: every process's attempt
// sequence (wins, losses, step counts) is a pure function of the seeds.
LockConfig sim_cfg(int procs) {
  LockConfig cfg;
  cfg.kappa = static_cast<std::uint32_t>(procs);
  cfg.max_locks = 1;
  cfg.max_thunk_steps = 4;
  cfg.delay_mode = DelayMode::kTheory;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  return cfg;
}

// submit(Policy::one_shot()) must fill Outcome exactly as try_locks fills
// AttemptInfo — same wins, same work segments, same totals, attempt for
// attempt, when driven by the identical deterministic schedule.
TEST(PolicyEquivalence, OneShotReproducesTryLocksAccounting) {
  const int procs = 3;
  const int attempts_each = 12;

  // Arm A: the raw veneer, recording AttemptInfo per attempt.
  std::vector<std::vector<AttemptInfo>> infos(procs);
  {
    LockSpace<SimPlat> space(sim_cfg(procs), procs, 1);
    Simulator sim(91);
    for (int p = 0; p < procs; ++p) {
      sim.add_process([&, p] {
        auto proc = space.register_process();
        const std::uint32_t ids[] = {0};
        auto x = std::make_shared<Cell<SimPlat>>(0u);
        for (int a = 0; a < attempts_each; ++a) {
          AttemptInfo info;
          Cell<SimPlat>* xp = x.get();
          space.try_locks(
              proc, ids,
              [xp](IdemCtx<SimPlat>& m) { m.store(*xp, m.load(*xp) + 1); },
              &info);
          infos[static_cast<std::size_t>(p)].push_back(info);
        }
      });
    }
    UniformSchedule sched(procs, 17);
    ASSERT_TRUE(sim.run(sched, 4'000'000'000ull));
  }

  // Arm B: identical seeds and schedule, through Session + submit().
  std::vector<std::vector<Outcome>> outcomes(procs);
  {
    LockSpace<SimPlat> space(sim_cfg(procs), procs, 1);
    Simulator sim(91);
    for (int p = 0; p < procs; ++p) {
      sim.add_process([&, p] {
        Session<SimPlat> session(space);
        const StaticLockSet<1> locks{0};
        auto x = std::make_shared<Cell<SimPlat>>(0u);
        for (int a = 0; a < attempts_each; ++a) {
          Cell<SimPlat>* xp = x.get();
          outcomes[static_cast<std::size_t>(p)].push_back(submit(
              session, locks,
              [xp](IdemCtx<SimPlat>& m) { m.store(*xp, m.load(*xp) + 1); }));
        }
      });
    }
    UniformSchedule sched(procs, 17);
    ASSERT_TRUE(sim.run(sched, 4'000'000'000ull));
  }

  std::uint64_t total_wins = 0;
  for (int p = 0; p < procs; ++p) {
    const auto& ia = infos[static_cast<std::size_t>(p)];
    const auto& ob = outcomes[static_cast<std::size_t>(p)];
    ASSERT_EQ(ia.size(), ob.size());
    for (std::size_t k = 0; k < ia.size(); ++k) {
      EXPECT_EQ(ob[k].won, ia[k].won) << "proc " << p << " attempt " << k;
      EXPECT_EQ(ob[k].attempts, 1u);
      EXPECT_EQ(ob[k].total_steps, ia[k].total_steps);
      EXPECT_EQ(ob[k].pre_reveal_work, ia[k].pre_reveal_work);
      EXPECT_EQ(ob[k].post_reveal_work, ia[k].post_reveal_work);
      EXPECT_EQ(ob[k].backoff_steps, 0u);
      total_wins += ob[k].won ? 1 : 0;
    }
  }
  EXPECT_GT(total_wins, 0u);
}

// submit(Policy::retry()) must reproduce retry_until_success — same
// attempt counts, same summed steps, call for call.
TEST(PolicyEquivalence, RetryReproducesRetryUntilSuccessAccounting) {
  const int procs = 3;
  const int calls_each = 8;

  std::vector<std::vector<RetryStats>> stats(procs);
  {
    LockSpace<SimPlat> space(sim_cfg(procs), procs, 1);
    Simulator sim(137);
    for (int p = 0; p < procs; ++p) {
      sim.add_process([&, p] {
        auto proc = space.register_process();
        const std::uint32_t ids[] = {0};
        auto x = std::make_shared<Cell<SimPlat>>(0u);
        for (int c = 0; c < calls_each; ++c) {
          Cell<SimPlat>* xp = x.get();
          stats[static_cast<std::size_t>(p)].push_back(
              retry_until_success<SimPlat>(
                  space, proc, ids, [xp](IdemCtx<SimPlat>& m) {
                    m.store(*xp, m.load(*xp) + 1);
                  }));
        }
      });
    }
    UniformSchedule sched(procs, 29);
    ASSERT_TRUE(sim.run(sched, 4'000'000'000ull));
  }

  std::vector<std::vector<Outcome>> outcomes(procs);
  {
    LockSpace<SimPlat> space(sim_cfg(procs), procs, 1);
    Simulator sim(137);
    for (int p = 0; p < procs; ++p) {
      sim.add_process([&, p] {
        Session<SimPlat> session(space);
        const StaticLockSet<1> locks{0};
        auto x = std::make_shared<Cell<SimPlat>>(0u);
        for (int c = 0; c < calls_each; ++c) {
          Cell<SimPlat>* xp = x.get();
          outcomes[static_cast<std::size_t>(p)].push_back(submit(
              session, locks,
              [xp](IdemCtx<SimPlat>& m) { m.store(*xp, m.load(*xp) + 1); },
              Policy::retry()));
        }
      });
    }
    UniformSchedule sched(procs, 29);
    ASSERT_TRUE(sim.run(sched, 4'000'000'000ull));
  }

  std::uint64_t multi_attempt_calls = 0;
  for (int p = 0; p < procs; ++p) {
    const auto& ra = stats[static_cast<std::size_t>(p)];
    const auto& ob = outcomes[static_cast<std::size_t>(p)];
    ASSERT_EQ(ra.size(), ob.size());
    for (std::size_t k = 0; k < ra.size(); ++k) {
      EXPECT_EQ(ob[k].won, ra[k].success) << "proc " << p << " call " << k;
      EXPECT_EQ(ob[k].attempts, ra[k].attempts);
      EXPECT_EQ(ob[k].total_steps, ra[k].total_steps);
      multi_attempt_calls += ob[k].attempts > 1 ? 1 : 0;
    }
  }
  // The arena is contended: the equivalence must have been exercised on
  // genuinely retried calls, not only trivial first-attempt wins.
  EXPECT_GT(multi_attempt_calls, 0u);
}

// The backoff knob burns own steps between failed attempts in kOff mode
// and is inert under the paper's fixed delays.
TEST(PolicyEquivalence, BackoffOnlyAppliesWithDelaysOff) {
  const int procs = 3;
  auto run_once = [&](DelayMode mode) {
    std::uint64_t backoff_total = 0;
    std::uint64_t retried_calls = 0;
    LockConfig cfg = sim_cfg(procs);
    cfg.delay_mode = mode;
    LockSpace<SimPlat> space(cfg, procs, 1);
    Simulator sim(53);
    for (int p = 0; p < procs; ++p) {
      sim.add_process([&, p] {
        (void)p;
        Session<SimPlat> session(space);
        const StaticLockSet<1> locks{0};
        for (int c = 0; c < 10; ++c) {
          const Outcome o =
              submit(session, locks, [](IdemCtx<SimPlat>&) {},
                     Policy::retry().with_backoff(8, 64));
          backoff_total += o.backoff_steps;
          retried_calls += o.attempts > 1 ? 1 : 0;
          EXPECT_TRUE(o.won);
        }
      });
    }
    UniformSchedule sched(procs, 71);
    EXPECT_TRUE(sim.run(sched, 4'000'000'000ull));
    return std::make_pair(backoff_total, retried_calls);
  };

  const auto [off_backoff, off_retries] = run_once(DelayMode::kOff);
  ASSERT_GT(off_retries, 0u) << "arena not contended; test is vacuous";
  EXPECT_GT(off_backoff, 0u);

  const auto [theory_backoff, theory_retries] = run_once(DelayMode::kTheory);
  (void)theory_retries;
  EXPECT_EQ(theory_backoff, 0u);  // theory mode owns the timing
}

// The defaulted cap is 1024x the base, SATURATING: `base << 10` silently
// overflowed for base >= 2^54, producing a cap smaller than the base (or
// zero — i.e. uncapped growth, the opposite of what the default promises).
TEST(Policy, WithBackoffDefaultCapSaturatesInsteadOfOverflowing) {
  constexpr std::uint64_t kMax = ~std::uint64_t{0};

  // Normal range: cap = base << 10.
  EXPECT_EQ(Policy::retry().with_backoff(8).backoff_cap,
            std::uint64_t{8} << 10);
  // Largest base whose 1024x still fits.
  EXPECT_EQ(Policy::retry().with_backoff(kMax >> 10).backoff_cap,
            (kMax >> 10) << 10);
  // One past it — and the extreme — must clamp to the maximum, never
  // wrap below the base.
  const std::uint64_t big = (kMax >> 10) + 1;
  EXPECT_EQ(Policy::retry().with_backoff(big).backoff_cap, kMax);
  EXPECT_EQ(Policy::retry().with_backoff(kMax).backoff_cap, kMax);
  EXPECT_GE(Policy::retry().with_backoff(std::uint64_t{1} << 60).backoff_cap,
            std::uint64_t{1} << 60);

  // An explicit cap is always taken verbatim.
  EXPECT_EQ(Policy::retry().with_backoff(8, 5).backoff_cap, 5u);
}

}  // namespace
}  // namespace wfl
