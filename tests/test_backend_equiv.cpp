// Backend equivalence: the same substrate code, driven through every
// simulator-capable LockBackend with the same seeds, must implement the
// same abstract object.
//
// Three layers of evidence, per backend (WFL, Turek, Spin2PL — the
// SimBackends registry):
//   1. deterministic single-process scenarios: the exact same op sequence
//      must produce the exact same final state on every backend (bank
//      balances, list keys) — semantics, not just invariants;
//   2. concurrent SimPlat scenarios under a skewed schedule: the global
//      invariants (conservation, set semantics) must hold — interleavings
//      differ across backends, so final states legitimately may too;
//   3. a recorded concurrent history on one shared cell must pass the
//      Wing&Gong linearizability checker for every backend, discharging
//      the "critical sections look atomic" claim uniformly.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "wfl/check/linchk.hpp"
#include "wfl/wfl.hpp"

namespace wfl {
namespace {

BackendConfig sim_cfg(int procs, std::uint32_t max_locks, std::uint32_t steps,
                      int num_locks) {
  BackendConfig bc;
  bc.lock.kappa = static_cast<std::uint32_t>(procs) + 1;
  bc.lock.max_locks = max_locks;
  bc.lock.max_thunk_steps = steps;
  bc.lock.delay_mode = DelayMode::kOff;
  bc.max_procs = procs;
  bc.num_locks = num_locks;
  return bc;
}

// --- 1. deterministic sequential equivalence ------------------------------

template <typename B>
std::vector<std::uint32_t> bank_balances_after_script(std::uint64_t seed) {
  constexpr int kAccounts = 6;
  auto space = B::make_space(sim_cfg(1, 2, 8, kAccounts));
  Bank<B> bank(*space, kAccounts, 100);
  typename B::Session session(*space);
  Xoshiro256 rng(seed);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(kAccounts));
    auto b = static_cast<std::uint32_t>(rng.next_below(kAccounts));
    if (b == a) b = (b + 1) % kAccounts;
    const Outcome o =
        bank.transfer(session, a, b,
                      static_cast<std::uint32_t>(rng.next_below(40)),
                      Policy::retry());
    EXPECT_TRUE(o.won);
  }
  EXPECT_EQ(bank.total_balance(), bank.expected_total());
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < kAccounts; ++i) out.push_back(bank.balance(i));
  return out;
}

TEST(BackendEquiv, SequentialBankScriptIdenticalAcrossBackends) {
  for (const std::uint64_t seed : {7ull, 21ull, 1002ull}) {
    const auto reference =
        bank_balances_after_script<WflBackend<SimPlat>>(seed);
    SimBackends<SimPlat>::for_each([&](auto tag) {
      using B = typename decltype(tag)::type;
      EXPECT_EQ(bank_balances_after_script<B>(seed), reference)
          << "backend " << B::name() << ", seed " << seed;
    });
  }
}

template <typename B>
std::vector<std::uint32_t> list_keys_after_script(std::uint64_t seed) {
  auto space = B::make_space(sim_cfg(1, 2, 8, 128));
  LockedList<B> list(*space, 128);
  typename B::Session session(*space);
  std::set<std::uint32_t> model;
  Xoshiro256 rng(seed);
  for (int i = 0; i < 300; ++i) {
    const std::uint32_t key =
        static_cast<std::uint32_t>(1 + rng.next_below(30));
    if (rng.next_below(2) == 0) {
      EXPECT_EQ(list.insert(session, key), model.insert(key).second);
    } else {
      EXPECT_EQ(list.erase(session, key), model.erase(key) > 0);
    }
  }
  return list.keys();
}

TEST(BackendEquiv, SequentialListScriptIdenticalAcrossBackends) {
  const auto reference = list_keys_after_script<WflBackend<SimPlat>>(5);
  SimBackends<SimPlat>::for_each([&](auto tag) {
    using B = typename decltype(tag)::type;
    EXPECT_EQ(list_keys_after_script<B>(5), reference)
        << "backend " << B::name();
  });
}

// --- 2. concurrent invariants under a skewed schedule ---------------------

template <typename B>
void run_concurrent_bank(std::uint64_t seed) {
  constexpr int kProcs = 4;
  constexpr int kAccounts = 5;
  auto space = B::make_space(sim_cfg(kProcs, 2, 8, kAccounts));
  Bank<B> bank(*space, kAccounts, 500);
  Simulator sim(seed);
  std::vector<typename B::Session> sessions;
  sessions.reserve(kProcs);
  for (int p = 0; p < kProcs; ++p) sessions.emplace_back(*space);
  for (int p = 0; p < kProcs; ++p) {
    sim.add_process([&, p] {
      Xoshiro256 rng(seed * 31 + static_cast<std::uint64_t>(p));
      for (int i = 0; i < 25; ++i) {
        const auto a = static_cast<std::uint32_t>(rng.next_below(kAccounts));
        auto b = static_cast<std::uint32_t>(rng.next_below(kAccounts));
        if (b == a) b = (b + 1) % kAccounts;
        bank.transfer(sessions[static_cast<std::size_t>(p)], a, b, 5,
                      Policy::retry());
      }
    });
  }
  WeightedSchedule sched({1.0, 0.05, 1.0, 0.3}, seed + 19);
  ASSERT_TRUE(sim.run(sched, 4'000'000'000ull)) << B::name();
  EXPECT_EQ(bank.total_balance(), bank.expected_total()) << B::name();
}

TEST(BackendEquiv, ConcurrentBankConservesTotalOnEveryBackend) {
  SimBackends<SimPlat>::for_each([](auto tag) {
    using B = typename decltype(tag)::type;
    for (const std::uint64_t seed : {3ull, 11ull}) {
      run_concurrent_bank<B>(seed);
    }
  });
}

template <typename B>
void run_concurrent_list(std::uint64_t seed) {
  constexpr int kProcs = 3;
  auto space = B::make_space(sim_cfg(kProcs, 2, 8, 128));
  LockedList<B> list(*space, 128);
  Simulator sim(seed);
  std::vector<typename B::Session> sessions;
  sessions.reserve(kProcs);
  for (int p = 0; p < kProcs; ++p) sessions.emplace_back(*space);
  for (int p = 0; p < kProcs; ++p) {
    sim.add_process([&, p] {
      for (int k = 0; k < 12; ++k) {
        list.insert(sessions[static_cast<std::size_t>(p)],
                    static_cast<std::uint32_t>(1 + k * kProcs + p));
      }
      for (int k = 0; k < 12; k += 2) {
        list.erase(sessions[static_cast<std::size_t>(p)],
                   static_cast<std::uint32_t>(1 + k * kProcs + p));
      }
    });
  }
  StallBurstSchedule sched(kProcs, seed * 13 + 1, 512);
  ASSERT_TRUE(sim.run(sched, 4'000'000'000ull)) << B::name();
  // Disjoint key ranges: each process's surviving keys are exactly its odd
  // insert indices — checkable per backend even though interleavings (and
  // node indices) differ.
  EXPECT_EQ(list.keys().size(), static_cast<std::size_t>(kProcs) * 6)
      << B::name();
}

TEST(BackendEquiv, ConcurrentListSetSemanticsOnEveryBackend) {
  SimBackends<SimPlat>::for_each([](auto tag) {
    using B = typename decltype(tag)::type;
    run_concurrent_list<B>(29);
  });
}

// --- 3. linearizability of the simulated critical sections ----------------

std::uint64_t now_slot() {
  Simulator* sim = Simulator::current();
  return sim != nullptr ? sim->slots_used() : 0;
}

// Concurrent read-modify-write ops on one cell under one lock; the
// recorded (invoke, response, value-read, value-written) history must
// linearize against the register model for every backend.
template <typename B>
void run_linearizability_history(std::uint64_t seed) {
  constexpr int kProcs = 3;
  constexpr int kOpsPerProc = 6;
  auto space = B::make_space(sim_cfg(kProcs, 1, 4, 2));
  auto cell = std::make_unique<Cell<SimPlat>>(0u);
  Cell<SimPlat>* c = cell.get();
  // Per-(proc, op) stable scratch for what the thunk observed/installed:
  // helpers may replay, so agreement makes all runs record one outcome.
  struct Obs {
    std::unique_ptr<Cell<SimPlat>> seen =
        std::make_unique<Cell<SimPlat>>(0u);
  };
  std::vector<std::vector<Obs>> obs(kProcs);
  for (auto& per : obs) per.resize(kOpsPerProc);

  Simulator sim(seed);
  std::vector<typename B::Session> sessions;
  sessions.reserve(kProcs);
  for (int p = 0; p < kProcs; ++p) sessions.emplace_back(*space);
  std::vector<std::vector<LinOp>> history(kProcs);
  for (int p = 0; p < kProcs; ++p) {
    sim.add_process([&, p] {
      const StaticLockSet<1> locks{0};
      for (int i = 0; i < kOpsPerProc; ++i) {
        // Written value encodes (proc, op) uniquely so a linearization
        // order is fully determined by the observed reads.
        const std::uint32_t mine =
            static_cast<std::uint32_t>(1 + p * kOpsPerProc + i);
        Cell<SimPlat>* seen =
            obs[static_cast<std::size_t>(p)][static_cast<std::size_t>(i)]
                .seen.get();
        LinOp op;
        op.proc = p;
        op.invoke = now_slot();
        const Outcome o = B::submit(
            sessions[static_cast<std::size_t>(p)], locks,
            [c, seen, mine](IdemCtx<SimPlat>& m) {
              m.store(*seen, m.load(*c));
              m.store(*c, mine);
            },
            Policy::retry());
        op.response = now_slot();
        ASSERT_TRUE(o.won);
        // One submission = one atomic swap(mine) observing `seen`.
        op.kind = RegisterModel::kCas;  // modeled as unconditional below
        op.arg = seen->peek();          // expected (observed) value
        op.arg2 = mine;                 // installed value
        op.ret = 1;
        history[static_cast<std::size_t>(p)].push_back(op);
      }
    });
  }
  UniformSchedule sched(kProcs, seed);
  ASSERT_TRUE(sim.run(sched, 4'000'000'000ull)) << B::name();

  std::vector<LinOp> hist;
  for (const auto& per : history) {
    hist.insert(hist.end(), per.begin(), per.end());
  }
  ASSERT_EQ(hist.size(),
            static_cast<std::size_t>(kProcs) * kOpsPerProc);
  EXPECT_TRUE(linearizable<RegisterModel>(hist, RegisterModel::initial()))
      << "history not linearizable on backend " << B::name();
}

TEST(BackendEquiv, CriticalSectionsLinearizableOnEveryBackend) {
  SimBackends<SimPlat>::for_each([](auto tag) {
    using B = typename decltype(tag)::type;
    run_linearizability_history<B>(41);
  });
}

// --- registry/session plumbing sanity -------------------------------------

TEST(BackendEquiv, OutcomeAccountingMatchesDiscipline) {
  SimBackends<SimPlat>::for_each([](auto tag) {
    using B = typename decltype(tag)::type;
    auto space = B::make_space(sim_cfg(1, 2, 4, 4));
    typename B::Session s(*space);
    auto cell = std::make_unique<Cell<SimPlat>>(0u);
    Cell<SimPlat>* c = cell.get();
    const StaticLockSet<2> locks{0, 1};
    const Outcome o = B::submit(
        s, locks, [c](IdemCtx<SimPlat>& m) { m.store(*c, 7u); },
        Policy::retry());
    EXPECT_TRUE(o.won) << B::name();
    EXPECT_EQ(o.attempts, 1u) << B::name();  // uncontended: first try wins
    EXPECT_EQ(cell->peek(), 7u) << B::name();
  });
}

TEST(BackendEquiv, SessionSlotsRecycleAcrossGenerations) {
  SimBackends<SimPlat>::for_each([](auto tag) {
    using B = typename decltype(tag)::type;
    auto space = B::make_space(sim_cfg(2, 2, 4, 4));
    // Far more session generations than max_procs: slots must recycle.
    for (int gen = 0; gen < 20; ++gen) {
      typename B::Session a(*space);
      typename B::Session b(*space);
      EXPECT_GE(a.pid(), 0);
      EXPECT_LT(a.pid(), 2);
      EXPECT_NE(a.pid(), b.pid());
    }
  });
}

// The §6.2 unknown-bounds variant satisfies the same concept; the same
// deterministic script must land in the same final state. Unlike the
// known-bounds backends it has no delays-off mode, so its SimPlat
// instantiation must run inside a simulation for steps to advance.
TEST(BackendEquiv, AdaptiveBackendMatchesSequentialBankScript) {
  const std::uint64_t seed = 7;
  const auto reference = bank_balances_after_script<WflBackend<SimPlat>>(seed);

  using B = AdaptiveWflBackend<SimPlat>;
  constexpr int kAccounts = 6;
  auto space = B::make_space(sim_cfg(1, 2, 8, kAccounts));
  Bank<B> bank(*space, kAccounts, 100);
  Simulator sim(seed);
  typename B::Session session(*space);
  sim.add_process([&] {
    Xoshiro256 rng(seed);
    for (int i = 0; i < 200; ++i) {
      const auto a = static_cast<std::uint32_t>(rng.next_below(kAccounts));
      auto b = static_cast<std::uint32_t>(rng.next_below(kAccounts));
      if (b == a) b = (b + 1) % kAccounts;
      const Outcome o =
          bank.transfer(session, a, b,
                        static_cast<std::uint32_t>(rng.next_below(40)),
                        Policy::retry());
      EXPECT_TRUE(o.won);
    }
  });
  UniformSchedule sched(1, seed);
  ASSERT_TRUE(sim.run(sched, 4'000'000'000ull));
  EXPECT_EQ(bank.total_balance(), bank.expected_total());
  std::vector<std::uint32_t> balances;
  for (std::uint32_t i = 0; i < kAccounts; ++i) {
    balances.push_back(bank.balance(i));
  }
  EXPECT_EQ(balances, reference);
}

// Contracts suite: death tests, excluded from the TSan CI job by filter.
TEST(Contracts, BackendLockBudgetEnforcedUniformly) {
  // All backends share kMaxLocksPerAttempt-derived budgets and enforce the
  // configured L bound at submit time.
  SimBackends<SimPlat>::for_each([](auto tag) {
    using B = typename decltype(tag)::type;
    auto space = B::make_space(sim_cfg(1, 2, 4, 8));
    typename B::Session s(*space);
    const StaticLockSet<3> locks{0, 1, 2};  // exceeds the configured L = 2
    EXPECT_DEATH(
        {
          B::submit(
              s, locks, [](IdemCtx<SimPlat>&) {}, Policy::one_shot());
        },
        "L bound")
        << B::name();
  });
}

}  // namespace
}  // namespace wfl
