// Chaos sweep: random multi-lock workloads under every schedule family and
// every ablation mode, audited by MutexAudit.
//
// Safety (Definition 4.3) must be schedule- and mode-independent: the
// delays and the help phase buy *fairness*, never correctness. So the
// sweep crosses:
//   lock-set size L ∈ {1, 2, 3}   (random sorted distinct sets per attempt)
//   schedule ∈ {round-robin, uniform, stall-burst, weighted-starvation}
//   mode ∈ {theory, delays-off, help-off, both-off}
// and asserts, for every cell of that grid:
//   * every process finishes every attempt (wait-freedom),
//   * no busy-flag collision and exact win accounting (MutexAudit),
//   * zero delay overruns in theory mode (Observation 6.7's precondition).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "wfl/check/mutex_audit.hpp"
#include "wfl/wfl.hpp"

namespace wfl {
namespace {

using Space = LockSpace<SimPlat>;

enum class SchedKind { kRoundRobin, kUniform, kStallBurst, kWeighted };
enum class Mode { kTheory, kNoDelays, kNoHelp, kBare };

const char* sched_name(SchedKind k) {
  switch (k) {
    case SchedKind::kRoundRobin: return "rr";
    case SchedKind::kUniform: return "uni";
    case SchedKind::kStallBurst: return "stall";
    case SchedKind::kWeighted: return "weighted";
  }
  return "?";
}

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kTheory: return "theory";
    case Mode::kNoDelays: return "nodelay";
    case Mode::kNoHelp: return "nohelp";
    case Mode::kBare: return "bare";
  }
  return "?";
}

std::unique_ptr<Schedule> make_sched(SchedKind k, int procs,
                                     std::uint64_t seed) {
  switch (k) {
    case SchedKind::kRoundRobin:
      return std::make_unique<RoundRobinSchedule>(procs);
    case SchedKind::kUniform:
      return std::make_unique<UniformSchedule>(procs, seed);
    case SchedKind::kStallBurst:
      return std::make_unique<StallBurstSchedule>(procs, seed, 1'500);
    case SchedKind::kWeighted: {
      std::vector<double> w(static_cast<std::size_t>(procs), 1.0);
      w.back() = 0.01;  // one process runs 100x slower
      return std::make_unique<WeightedSchedule>(std::move(w), seed);
    }
  }
  return nullptr;
}

using ChaosParam = std::tuple<int /*L*/, SchedKind, Mode>;

class ChaosSweep : public ::testing::TestWithParam<ChaosParam> {};

TEST_P(ChaosSweep, SafetyHoldsEverywhere) {
  const auto [max_locks, sched_kind, mode] = GetParam();
  constexpr int kProcs = 5;
  constexpr int kLocks = 6;
  constexpr int kAttempts = 6;
  const std::uint64_t seed = 0x5EED0 + static_cast<std::uint64_t>(max_locks);

  LockConfig cfg;
  cfg.kappa = kProcs;  // any lock may be wanted by everyone at once
  cfg.max_locks = static_cast<std::uint32_t>(max_locks);
  cfg.max_thunk_steps =
      MutexAudit<SimPlat>::thunk_ops(static_cast<std::uint32_t>(max_locks));
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  cfg.delay_mode = (mode == Mode::kNoDelays || mode == Mode::kBare)
                       ? DelayMode::kOff
                       : DelayMode::kTheory;
  cfg.help_phase = !(mode == Mode::kNoHelp || mode == Mode::kBare);

  Space space(cfg, kProcs, kLocks);
  MutexAudit<SimPlat> audit(kLocks);
  std::vector<std::uint64_t> wins_by_first_lock(kLocks, 0);
  std::uint64_t total_wins = 0;

  Simulator sim(seed);
  for (int p = 0; p < kProcs; ++p) {
    sim.add_process([&, p] {
      auto proc = space.register_process();
      Xoshiro256 rng(seed * 613 + static_cast<std::uint64_t>(p));
      for (int a = 0; a < kAttempts; ++a) {
        // Random sorted distinct lock set of exactly max_locks ids. The
        // thunk captures the ids *by value*: an EBR-protected straggler may
        // replay it after try_locks returns, so it must not reference
        // storage this loop reuses. (Replayed loads return logged values,
        // but a replayed first-write against a fresh cell still holding the
        // initial word could land — by-value capture removes the hazard.)
        std::array<std::uint32_t, 3> ids{};
        const auto want = static_cast<std::size_t>(max_locks);
        std::size_t n = 0;
        while (n < want) {
          const auto c = static_cast<std::uint32_t>(rng.next_below(kLocks));
          if (std::find(ids.begin(), ids.begin() + n, c) == ids.begin() + n) {
            ids[n++] = c;
          }
        }
        std::sort(ids.begin(), ids.begin() + want);
        MutexAudit<SimPlat>* aud = &audit;
        const bool won = space.try_locks(
            proc, std::span<const std::uint32_t>(ids.data(), want),
            [aud, ids, want](IdemCtx<SimPlat>& m) {
              aud->guard(m, std::span<const std::uint32_t>(ids.data(), want));
            });
        if (won) {
          ++wins_by_first_lock[ids[0]];
          ++total_wins;
        }
      }
    });
  }

  auto sched = make_sched(sched_kind, kProcs, seed ^ 0xACE);
  ASSERT_TRUE(sim.run(*sched, 900'000'000))
      << "a process failed to finish: wait-freedom broken in mode "
      << mode_name(mode);

  const auto report = audit.audit(wins_by_first_lock);
  EXPECT_EQ(report.flag_violations, 0u)
      << "overlapping critical sections (" << mode_name(mode) << ", "
      << sched_name(sched_kind) << ")";
  EXPECT_EQ(report.lost_updates, 0u);
  EXPECT_EQ(report.duplicated_runs, 0u);
  EXPECT_GT(total_wins, 0u) << "nobody ever won";

  const LockStats s = space.stats();
  if (cfg.delay_mode == DelayMode::kTheory) {
    EXPECT_EQ(s.t0_overruns, 0u);
    EXPECT_EQ(s.t1_overruns, 0u);
  }
  EXPECT_EQ(s.attempts, static_cast<std::uint64_t>(kProcs) * kAttempts);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ChaosSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(SchedKind::kRoundRobin,
                                         SchedKind::kUniform,
                                         SchedKind::kStallBurst,
                                         SchedKind::kWeighted),
                       ::testing::Values(Mode::kTheory, Mode::kNoDelays,
                                         Mode::kNoHelp, Mode::kBare)),
    [](const ::testing::TestParamInfo<ChaosParam>& info) {
      return "L" + std::to_string(std::get<0>(info.param)) + "_" +
             sched_name(std::get<1>(info.param)) + "_" +
             mode_name(std::get<2>(info.param));
    });

// Crash chaos: same grid shrunk to the interesting corners, with the last
// process crashed mid-run. Survivors must finish; accounting gets one
// attempt of slack for the victim's in-flight attempt.
class ChaosCrash : public ::testing::TestWithParam<std::tuple<int, Mode>> {};

TEST_P(ChaosCrash, SafetySurvivesACrash) {
  const auto [max_locks, mode] = GetParam();
  constexpr int kProcs = 4;
  constexpr int kLocks = 4;
  constexpr int kAttempts = 8;
  const std::uint64_t seed = 0xC0DE + static_cast<std::uint64_t>(max_locks);

  LockConfig cfg;
  cfg.kappa = kProcs;
  cfg.max_locks = static_cast<std::uint32_t>(max_locks);
  cfg.max_thunk_steps =
      MutexAudit<SimPlat>::thunk_ops(static_cast<std::uint32_t>(max_locks));
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  cfg.delay_mode = (mode == Mode::kNoDelays || mode == Mode::kBare)
                       ? DelayMode::kOff
                       : DelayMode::kTheory;
  cfg.help_phase = !(mode == Mode::kNoHelp || mode == Mode::kBare);

  Space space(cfg, kProcs, kLocks);
  MutexAudit<SimPlat> audit(kLocks);
  std::vector<std::uint64_t> wins_by_first_lock(kLocks, 0);
  Space::Process victim_proc{};

  Simulator sim(seed);
  for (int p = 0; p < kProcs; ++p) {
    sim.add_process([&, p] {
      auto proc = space.register_process();
      if (p == kProcs - 1) victim_proc = proc;
      Xoshiro256 rng(seed * 389 + static_cast<std::uint64_t>(p));
      for (int a = 0; a < kAttempts; ++a) {
        std::array<std::uint32_t, 3> ids{};  // by-value capture, see above
        const auto want = static_cast<std::size_t>(max_locks);
        std::size_t n = 0;
        while (n < want) {
          const auto c = static_cast<std::uint32_t>(rng.next_below(kLocks));
          if (std::find(ids.begin(), ids.begin() + n, c) == ids.begin() + n) {
            ids[n++] = c;
          }
        }
        std::sort(ids.begin(), ids.begin() + want);
        MutexAudit<SimPlat>* aud = &audit;
        const bool won = space.try_locks(
            proc, std::span<const std::uint32_t>(ids.data(), want),
            [aud, ids, want](IdemCtx<SimPlat>& m) {
              aud->guard(m, std::span<const std::uint32_t>(ids.data(), want));
            });
        // Runs atomically with try_locks' return under the simulator.
        if (won) ++wins_by_first_lock[ids[0]];
      }
    });
  }

  UniformSchedule inner(kProcs, seed ^ 0xACE);
  CrashSchedule sched(inner, kProcs, {{kProcs - 1, 20'000}}, seed ^ 0xFEED);
  // Run until all *survivors* finish (the victim may finish pre-crash and
  // count as a finisher), then drop the parked victim's EBR guard so the
  // space can be torn down.
  for (;;) {
    bool survivors_done = true;
    for (int p = 0; p < kProcs - 1; ++p) {
      if (!sim.is_finished(p)) survivors_done = false;
    }
    if (survivors_done) break;
    ASSERT_TRUE(sim.run(sched, 900'000'000, sim.finished_count() + 1));
  }
  if (victim_proc.ebr_pid >= 0 && !sim.is_finished(kProcs - 1)) {
    space.abandon_process(victim_proc);
  }

  const auto report =
      audit.audit(wins_by_first_lock, /*slack=*/1,
                  /*allow_inflight_flags=*/true);
  EXPECT_EQ(report.flag_violations, 0u);
  EXPECT_EQ(report.lost_updates, 0u);
  EXPECT_EQ(report.duplicated_runs, 0u);
  // At most the victim's single in-flight section can be left open.
  EXPECT_LE(report.raised_flags, static_cast<std::uint64_t>(max_locks));
}

INSTANTIATE_TEST_SUITE_P(
    Corners, ChaosCrash,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(Mode::kTheory, Mode::kBare)),
    [](const ::testing::TestParamInfo<std::tuple<int, Mode>>& info) {
      return "L" + std::to_string(std::get<0>(info.param)) + "_" +
             mode_name(std::get<1>(info.param));
    });

}  // namespace
}  // namespace wfl
