// PlayerObserver: the adaptive-player harness sees exactly what the model
// grants the player adversary — membership, statuses, revealed priorities —
// and nothing stale. Also pins the priority_top_fraction helper.
#include <gtest/gtest.h>

#include <cstdint>

#include "wfl/sim/player.hpp"
#include "wfl/wfl.hpp"

namespace wfl {
namespace {

using Space = LockSpace<SimPlat>;

LockConfig obs_cfg() {
  LockConfig cfg;
  cfg.kappa = 3;
  cfg.max_locks = 1;
  cfg.max_thunk_steps = 2;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  return cfg;
}

TEST(Player, TopFractionThresholds) {
  EXPECT_EQ(priority_top_fraction(0.0), static_cast<std::int64_t>(1) << 62);
  EXPECT_EQ(priority_top_fraction(1.0), 0);
  // Top 12.5% == 7/8 of the range — the exp_ablation constant.
  EXPECT_EQ(priority_top_fraction(0.125),
            static_cast<std::int64_t>((1ull << 62) / 8 * 7));
}

TEST(Player, ObserverSeesQuiescentEmptyField) {
  Space space(obs_cfg(), 2, 1);
  Simulator sim(5);
  sim.add_process([&] {
    Session<SimPlat> session(space);
    PlayerObserver<SimPlat> spy(session);
    const FieldView v = spy.observe(0);
    EXPECT_EQ(v.active_members, 0);
    EXPECT_EQ(v.revealed_members, 0);
    EXPECT_EQ(v.strongest_priority, -1);
  });
  RoundRobinSchedule rr(1);
  ASSERT_TRUE(sim.run(rr, 1'000'000));
}

// While a rival's attempt is mid-flight, the observer must (eventually)
// see it: first as an active member, then — after its reveal step — with a
// positive priority. wait_for() polls exactly that way.
TEST(Player, ObserverSeesRevealedRival) {
  Space space(obs_cfg(), 2, 1);
  Simulator sim(9);
  bool rival_started = false;
  bool saw_revealed = false;
  bool stop = false;

  sim.add_process([&] {  // rival: attempts in a loop until told to stop
    Session<SimPlat> session(space);
    const StaticLockSet<1> locks{0};
    rival_started = true;
    while (!stop) {
      submit(session, locks, [](IdemCtx<SimPlat>&) {});
    }
  });
  sim.add_process([&] {  // spy
    Session<SimPlat> session(space);
    PlayerObserver<SimPlat> spy(session);
    while (!rival_started) SimPlat::step();
    saw_revealed = spy.wait_for(0, 200'000, [](const FieldView& v) {
      return v.revealed_members > 0 && v.strongest_priority > 0;
    });
    stop = true;
  });
  UniformSchedule sched(2, 9);
  ASSERT_TRUE(sim.run(sched, 200'000'000));
  EXPECT_TRUE(saw_revealed)
      << "a continuously-attempting rival never appeared revealed";
}

// The wait_for budget is honored: with no rival, the predicate never fires
// and the call returns false after exactly `budget` polls.
TEST(Player, WaitForRespectsBudget) {
  Space space(obs_cfg(), 2, 1);
  Simulator sim(13);
  sim.add_process([&] {
    Session<SimPlat> session(space);
    PlayerObserver<SimPlat> spy(session);
    int polls = 0;
    const bool fired = spy.wait_for(0, 50, [&](const FieldView&) {
      ++polls;
      return false;
    });
    EXPECT_FALSE(fired);
    EXPECT_EQ(polls, 50);
  });
  RoundRobinSchedule rr(1);
  ASSERT_TRUE(sim.run(rr, 10'000'000));
}

}  // namespace
}  // namespace wfl
