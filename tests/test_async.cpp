// AsyncExecutor (core/async_executor.hpp): fiber-multiplexed submission.
//
// Covers the subsystem's four load-bearing claims:
//   * equivalence — an uncontended inline async_submit is step-identical
//     to submit() under the simulator, and contended runs are
//     deterministic and conserve critical sections;
//   * park/wake — contended RealPlat runs complete every submission with
//     ZERO backoff spin steps (parking replaces idling), events are never
//     lost (no wedged waiters);
//   * cancellation — a crashed client's pending ops complete as
//     cancelled; other clients' waiters on the same locks are untouched;
//   * fiber economy — quanta run on pooled, reused stacks.
//
// The guard-drop rule (no EBR guard held across a park point) is
// enforced by a WFL_CHECK on every cycle of every test here — a
// violation aborts the run rather than failing an EXPECT.
#include <gtest/gtest.h>

#include <vector>

#include "wfl/wfl.hpp"

#include "test_plat.hpp"

namespace wfl {

using test::TestPlat;
namespace {

LockConfig off_cfg() {
  LockConfig cfg;
  cfg.kappa = 4;
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 8;
  cfg.delay_mode = DelayMode::kOff;
  return cfg;
}

// --- equivalence (TestPlat, inline mode) ------------------------------------

// One process, no contention: run the same single submission through
// submit() and through async_submit()+wait() in two identically-seeded
// simulations. Inline mode runs the cycle on the driving fiber under the
// client's own session, and the executor's plumbing takes no model steps,
// so the Outcomes must match field for field.
Outcome run_uncontended_sim(bool use_async) {
  const LockConfig cfg = off_cfg();
  LockTable<TestPlat> space(cfg, 2, 4);
  AsyncExecutor<TestPlat> exec(space, {.workers = 0});
  Cell<TestPlat> cell{0};
  Outcome out;

  Simulator sim(7);
  sim.add_process([&] {
    Session<TestPlat> s(space);
    StaticLockSet<2> locks({1, 2}, cfg);
    auto thunk = [&cell](IdemCtx<TestPlat>& m) {
      m.store(cell, m.load(cell) + 1);
    };
    if (use_async) {
      AsyncClient<TestPlat> client(s);
      auto t = exec.async_submit(client, locks, thunk, Policy::retry());
      out = t.wait();
    } else {
      out = submit(s, locks, thunk, Policy::retry());
    }
  });
  RoundRobinSchedule rr(1);
  EXPECT_TRUE(sim.run(rr, 1'000'000));
  EXPECT_EQ(cell.peek(), 1u);
  EXPECT_EQ(exec.in_flight(), 0u);
  return out;
}

TEST(Async, InlineUncontendedIsStepIdenticalToSubmit) {
  const Outcome sync = run_uncontended_sim(false);
  const Outcome async = run_uncontended_sim(true);
  EXPECT_TRUE(sync.won);
  EXPECT_TRUE(async.won);
  EXPECT_EQ(sync.attempts, async.attempts);
  EXPECT_EQ(sync.total_steps, async.total_steps);
  EXPECT_EQ(sync.pre_reveal_work, async.pre_reveal_work);
  EXPECT_EQ(sync.post_reveal_work, async.post_reveal_work);
  EXPECT_EQ(async.backoff_steps, 0u);
}

// --- determinism + conservation (TestPlat, inline, contended) ---------------

struct SimRunTotals {
  std::uint64_t wins = 0;
  std::uint64_t attempts = 0;
  std::uint64_t steps = 0;
  std::uint64_t parks = 0;
  std::uint64_t wakes = 0;
  std::uint64_t signals = 0;

  bool operator==(const SimRunTotals&) const = default;
};

// Four sim processes pipeline async submissions over two hot locks; every
// ticket is awaited inside the simulation. Critical sections must conserve
// (counter == wins == ops) and the whole run — including the executor's
// park/wake/signal traffic — must be a pure function of the seed.
SimRunTotals run_contended_sim(std::uint64_t seed) {
  const LockConfig cfg = off_cfg();
  LockTable<TestPlat> space(cfg, 8, 4);
  AsyncExecutor<TestPlat> exec(space, {.workers = 0});
  Cell<TestPlat> counter{0};

  constexpr int kProcs = 4;
  constexpr int kRounds = 4;
  constexpr int kPipeline = 3;  // tickets in flight per process per round

  SimRunTotals totals;
  Simulator sim(seed);
  for (int p = 0; p < kProcs; ++p) {
    sim.add_process([&, p] {
      Session<TestPlat> s(space);
      AsyncClient<TestPlat> client(s);
      StaticLockSet<2> both({0, 1}, cfg);
      StaticLockSet<1> one({0}, cfg);
      auto thunk = [&counter](IdemCtx<TestPlat>& m) {
        m.store(counter, m.load(counter) + 1);
      };
      for (int r = 0; r < kRounds; ++r) {
        AsyncExecutor<TestPlat>::Ticket tickets[kPipeline];
        for (int i = 0; i < kPipeline; ++i) {
          const LockSetView view =
              (p + r + i) % 2 == 0 ? LockSetView(both) : LockSetView(one);
          tickets[i] = exec.async_submit(client, view, thunk,
                                         Policy::retry());
        }
        for (int i = 0; i < kPipeline; ++i) {
          const Outcome& o = tickets[i].wait();
          EXPECT_TRUE(o.won);
          EXPECT_EQ(o.backoff_steps, 0u);
          totals.wins += o.won ? 1 : 0;
          totals.attempts += o.attempts;
          totals.steps += o.total_steps;
        }
      }
    });
  }
  RoundRobinSchedule rr(kProcs);
  EXPECT_TRUE(sim.run(rr, 50'000'000));

  constexpr std::uint64_t kOps = std::uint64_t{kProcs} * kRounds * kPipeline;
  EXPECT_EQ(totals.wins, kOps);
  EXPECT_EQ(counter.peek(), kOps) << "lost or duplicated critical sections";
  EXPECT_EQ(exec.in_flight(), 0u);
  EXPECT_EQ(exec.completed(), kOps);
  totals.parks = exec.parks();
  totals.wakes = exec.wakes();
  totals.signals = exec.signals();
  return totals;
}

TEST(Async, InlineContendedConservesAndIsDeterministic) {
  const SimRunTotals a = run_contended_sim(42);
  const SimRunTotals b = run_contended_sim(42);
  EXPECT_TRUE(a == b) << "same seed must reproduce the run bit-for-bit";
}

// --- park/wake under real contention (RealPlat, worker pool) ---------------

TEST(Async, WorkerPoolContendedCompletesWithZeroBackoffSpin) {
  const LockConfig cfg = off_cfg();
  LockTable<RealPlat> space(cfg, 8, 4);
  AsyncExecutor<RealPlat> exec(space, {.workers = 2});
  Session<RealPlat> s(space);
  AsyncClient<RealPlat> client(s);
  Cell<RealPlat> counter{0};

  // Far more in-flight submissions than workers (or cores): every op
  // fights over lock 0, so losers park and release events chain the
  // wakes. Each outcome must report zero backoff spin — parking IS the
  // backoff.
  constexpr int kOps = 500;
  StaticLockSet<1> locks({0}, cfg);
  std::vector<AsyncExecutor<RealPlat>::Ticket> tickets;
  tickets.reserve(kOps);
  for (int i = 0; i < kOps; ++i) {
    tickets.push_back(exec.async_submit(
        client, locks,
        [&counter](IdemCtx<RealPlat>& m) {
          m.store(counter, m.load(counter) + 1);
        },
        Policy::retry()));
  }
  std::uint64_t wins = 0;
  for (auto& t : tickets) {
    const Outcome& o = t.wait();
    EXPECT_TRUE(o.won);
    EXPECT_EQ(o.backoff_steps, 0u);
    wins += o.won ? 1 : 0;
  }
  EXPECT_EQ(wins, static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(counter.peek(), static_cast<std::uint32_t>(kOps));
  EXPECT_EQ(exec.in_flight(), 0u);
  EXPECT_EQ(exec.completed(), static_cast<std::uint64_t>(kOps));
}

// --- cancellation ----------------------------------------------------------

TEST(Async, CancelledClientOpCompletesAsCancelled) {
  const LockConfig cfg = off_cfg();
  LockTable<RealPlat> space(cfg, 4, 4);
  AsyncExecutor<RealPlat> exec(space, {.workers = 0});
  Session<RealPlat> s(space);
  AsyncClient<RealPlat> client(s);
  Cell<RealPlat> cell{0};

  StaticLockSet<1> locks({0}, cfg);
  auto t = exec.async_submit(
      client, locks,
      [&cell](IdemCtx<RealPlat>& m) { m.store(cell, 1); },
      Policy::retry());
  // Crash before any cycle runs: the op must complete without running
  // its thunk, reported as a loss.
  exec.cancel_client(client);
  exec.run_ready();
  const Outcome* o = t.poll();
  ASSERT_NE(o, nullptr);
  EXPECT_FALSE(o->won);
  EXPECT_EQ(cell.peek(), 0u);
  EXPECT_EQ(exec.in_flight(), 0u);
}

TEST(Async, CrashedClientDoesNotWedgeOtherWaiters) {
  const LockConfig cfg = off_cfg();
  LockTable<RealPlat> space(cfg, 8, 4);
  AsyncExecutor<RealPlat> exec(space, {.workers = 2});
  Session<RealPlat> sa(space);
  Session<RealPlat> sb(space);
  AsyncClient<RealPlat> a(sa);
  AsyncClient<RealPlat> b(sb);
  Cell<RealPlat> counter{0};

  // Both clients pile onto one lock; A is crashed mid-stream. Every one
  // of B's submissions must still win (parked B ops keep getting woken —
  // cancellation neither consumes release events nor corrupts the wait
  // lists), and every A ticket must complete rather than wedge.
  constexpr int kOps = 200;
  StaticLockSet<1> locks({0}, cfg);
  auto thunk = [&counter](IdemCtx<RealPlat>& m) {
    m.store(counter, m.load(counter) + 1);
  };
  std::vector<AsyncExecutor<RealPlat>::Ticket> ta;
  std::vector<AsyncExecutor<RealPlat>::Ticket> tb;
  for (int i = 0; i < kOps; ++i) {
    ta.push_back(exec.async_submit(a, locks, thunk, Policy::retry()));
    tb.push_back(exec.async_submit(b, locks, thunk, Policy::retry()));
  }
  exec.cancel_client(a);

  std::uint64_t b_wins = 0;
  for (auto& t : tb) b_wins += t.wait().won ? 1 : 0;
  EXPECT_EQ(b_wins, static_cast<std::uint64_t>(kOps));

  std::uint64_t a_wins = 0;
  for (auto& t : ta) {
    const Outcome& o = t.wait();  // completes: won or cancelled, never hangs
    a_wins += o.won ? 1 : 0;
  }
  // Exactly the won thunks ran, from both clients.
  EXPECT_EQ(counter.peek(), static_cast<std::uint32_t>(kOps) +
                                static_cast<std::uint32_t>(a_wins));
  EXPECT_EQ(exec.in_flight(), 0u);
}

// --- shutdown --------------------------------------------------------------

TEST(Async, ShutdownWithInFlightOpsDrainsAndJoins) {
  const LockConfig cfg = off_cfg();
  LockTable<RealPlat> space(cfg, 8, 4);
  Session<RealPlat> s(space);
  Cell<RealPlat> counter{0};

  // Pile contended submissions up, wait for only ONE, and destroy the
  // executor: most ops are still queued or parked when shutdown starts.
  // Workers must stay alive until shutdown's sweep has pushed every
  // remaining op through a final (cancelling) cycle — a worker that
  // exits on "queues momentarily empty" while in_flight > 0 strands the
  // swept ops and wedges the drain loop forever (regression: the
  // destructor used to hang here).
  constexpr int kOps = 300;
  {
    AsyncExecutor<RealPlat> exec(space, {.workers = 2});
    AsyncClient<RealPlat> client(s);
    StaticLockSet<1> locks({0}, cfg);
    std::vector<AsyncExecutor<RealPlat>::Ticket> tickets;
    tickets.reserve(kOps);
    for (int i = 0; i < kOps; ++i) {
      tickets.push_back(exec.async_submit(
          client, locks,
          [&counter](IdemCtx<RealPlat>& m) {
            m.store(counter, m.load(counter) + 1);
          },
          Policy::retry()));
    }
    EXPECT_TRUE(tickets.front().wait().won);
    // Tickets (declared after exec) are destroyed first, then ~exec
    // drains the remaining in-flight ops and joins the pool.
  }
  // Every thunk that won ran exactly once; cancelled ones not at all.
  EXPECT_GE(counter.peek(), 1u);
  EXPECT_LE(counter.peek(), static_cast<std::uint32_t>(kOps));
}

// --- fiber pool economy ----------------------------------------------------

TEST(Async, WorkerQuantaReuseStacksFromTheFiberPool) {
  const LockConfig cfg = off_cfg();
  LockTable<RealPlat> space(cfg, 4, 4);
  AsyncExecutor<RealPlat> exec(space, {.workers = 1});
  Session<RealPlat> s(space);
  AsyncClient<RealPlat> client(s);
  Cell<RealPlat> cell{0};

  StaticLockSet<1> locks({2}, cfg);
  constexpr int kOps = 50;
  for (int i = 0; i < kOps; ++i) {
    auto t = exec.async_submit(
        client, locks,
        [&cell](IdemCtx<RealPlat>& m) { m.store(cell, m.load(cell) + 1); },
        Policy::retry());
    EXPECT_TRUE(t.wait().won);
  }
  EXPECT_EQ(cell.peek(), static_cast<std::uint32_t>(kOps));
  // Sequential quanta on one worker: the pool should allocate a couple
  // of stacks at most and recycle them for everything else.
  EXPECT_LE(exec.fibers_created(), 5u);
  EXPECT_GE(exec.fibers_reused(), static_cast<std::uint64_t>(kOps) - 10);
}

TEST(FiberPool, AcquireReusesReleasedStacksAndCapsIdle) {
  FiberPool pool(/*stack_bytes=*/64 * 1024, /*max_idle=*/2);
  int runs = 0;
  auto make_body = [&runs] { return Fiber::Body([&runs] { ++runs; }); };

  auto f1 = pool.acquire(make_body());
  f1->resume();
  ASSERT_TRUE(f1->finished());
  pool.release(std::move(f1));
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.idle(), 1u);

  auto f2 = pool.acquire(make_body());
  EXPECT_EQ(pool.reused(), 1u);
  EXPECT_EQ(pool.idle(), 0u);
  f2->resume();
  pool.release(std::move(f2));

  // Idle cap: releasing more finished fibers than max_idle destroys the
  // overflow instead of hoarding stacks.
  auto g1 = pool.acquire(make_body());
  auto g2 = pool.acquire(make_body());
  auto g3 = pool.acquire(make_body());
  g1->resume();
  g2->resume();
  g3->resume();
  pool.release(std::move(g1));
  pool.release(std::move(g2));
  pool.release(std::move(g3));
  EXPECT_EQ(pool.idle(), 2u);
  EXPECT_EQ(runs, 5);
}

}  // namespace
}  // namespace wfl
