// TxnBuilder / PreparedTxn: static-transaction composition (lock-set
// dedup, sequential sub-thunks over one shared log, per-op step budgets)
// through the unified session/executor API, plus the submit() retry
// policies that subsume the retry_until_success helper.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "wfl/wfl.hpp"

namespace wfl {
namespace {

LockConfig txn_cfg(int procs, std::uint32_t max_locks) {
  LockConfig cfg;
  cfg.kappa = static_cast<std::uint32_t>(procs) + 1;
  cfg.max_locks = max_locks;
  cfg.max_thunk_steps = 24;
  cfg.delay_mode = DelayMode::kOff;
  return cfg;
}

TEST(Txn, SingleOpRunsLikePlainTryLocks) {
  LockSpace<RealPlat> space(txn_cfg(1, 2), 1, 8);
  Session<RealPlat> session(space);
  Cell<RealPlat> x{10};
  const std::uint32_t ids[] = {3};
  auto txn = [&] {
    TxnBuilder<RealPlat> b;
    b.op(ids, [&x](IdemCtx<RealPlat>& m) { m.store(x, m.load(x) + 5); },
         /*step_budget=*/2);
    return std::move(b).build();
  }();
  EXPECT_EQ(txn.lock_set().size(), 1u);
  EXPECT_EQ(txn.step_budget(), 2u);
  const Outcome o = txn.submit(session, Policy::retry());
  EXPECT_TRUE(o.won);
  EXPECT_EQ(o.attempts, 1u);  // uncontended first attempt must win
  EXPECT_GT(o.total_steps, 0u);
  EXPECT_EQ(x.peek(), 15u);
}

TEST(Txn, LockSetsAreDedupedAndSorted) {
  TxnBuilder<RealPlat> b;
  Cell<RealPlat> x{0};
  const std::uint32_t ids1[] = {5, 2};
  const std::uint32_t ids2[] = {2, 7};
  b.op(ids1, [&x](IdemCtx<RealPlat>& m) { m.store(x, 1); });
  b.op(ids2, [&x](IdemCtx<RealPlat>& m) { m.store(x, 2); });
  b.touch(5);
  auto txn = std::move(b).build();
  const auto ls = txn.lock_set();
  ASSERT_EQ(ls.size(), 3u);
  EXPECT_EQ(ls[0], 2u);
  EXPECT_EQ(ls[1], 5u);
  EXPECT_EQ(ls[2], 7u);
  EXPECT_EQ(txn.op_count(), 2u);
}

TEST(Txn, SubThunksRunInOrderOverSharedLog) {
  LockSpace<RealPlat> space(txn_cfg(1, 3), 1, 8);
  Session<RealPlat> session(space);
  Cell<RealPlat> x{0};
  Cell<RealPlat> y{0};
  TxnBuilder<RealPlat> b;
  const std::uint32_t ids1[] = {0};
  const std::uint32_t ids2[] = {1};
  const std::uint32_t ids3[] = {2};
  b.op(ids1, [&x](IdemCtx<RealPlat>& m) { m.store(x, 7); });
  b.op(ids2, [&x, &y](IdemCtx<RealPlat>& m) {
    m.store(y, m.load(x) * 2);  // sees the first op's write
  });
  b.op(ids3, [&x, &y](IdemCtx<RealPlat>& m) {
    m.store(x, m.load(y) + 1);
  });
  auto txn = std::move(b).build();
  EXPECT_TRUE(txn.submit(session, Policy::retry()).won);
  EXPECT_EQ(y.peek(), 14u);
  EXPECT_EQ(x.peek(), 15u);
}

TEST(Txn, IsReusableAndCopyable) {
  LockSpace<RealPlat> space(txn_cfg(1, 1), 1, 4);
  Session<RealPlat> session(space);
  Cell<RealPlat> x{0};
  TxnBuilder<RealPlat> b;
  const std::uint32_t ids[] = {0};
  b.op(ids, [&x](IdemCtx<RealPlat>& m) { m.store(x, m.load(x) + 1); });
  auto txn = std::move(b).build();
  PreparedTxn<RealPlat> copy = txn;  // copies share the program
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(txn.submit(session, Policy::retry()).won);
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(copy.submit(session, Policy::retry()).won);
  }
  EXPECT_EQ(x.peek(), 10u);
}

// The compatibility veneer (raw table + process) still runs the same
// transaction — out-of-tree callers keep compiling and agreeing.
TEST(Txn, TableProcessVeneerStillRuns) {
  LockSpace<RealPlat> space(txn_cfg(1, 1), 1, 4);
  auto proc = space.register_process();
  Cell<RealPlat> x{0};
  TxnBuilder<RealPlat> b;
  const std::uint32_t ids[] = {0};
  b.op(ids, [&x](IdemCtx<RealPlat>& m) { m.store(x, m.load(x) + 1); });
  auto txn = std::move(b).build();
  AttemptInfo info;
  EXPECT_TRUE(txn.try_run(space, proc, &info));
  EXPECT_TRUE(info.won);
  const RetryStats rs = txn.run(space, proc);
  EXPECT_TRUE(rs.success);
  EXPECT_EQ(x.peek(), 2u);
}

TEST(Txn, ComposedTransferPairAcrossFourAccounts) {
  // Two transfers composed into one atomic transaction: either both legs
  // happen or neither (here: both, uncontended).
  LockSpace<RealPlat> space(txn_cfg(1, 4), 1, 8);
  Session<RealPlat> session(space);
  std::vector<std::unique_ptr<Cell<RealPlat>>> acct;
  for (int i = 0; i < 4; ++i) {
    acct.push_back(std::make_unique<Cell<RealPlat>>(100u));
  }
  TxnBuilder<RealPlat> b;
  const std::uint32_t leg1[] = {0, 1};
  const std::uint32_t leg2[] = {2, 3};
  Cell<RealPlat>* a0 = acct[0].get();
  Cell<RealPlat>* a1 = acct[1].get();
  Cell<RealPlat>* a2 = acct[2].get();
  Cell<RealPlat>* a3 = acct[3].get();
  b.op(leg1, [a0, a1](IdemCtx<RealPlat>& m) {
    const std::uint32_t v = m.load(*a0);
    m.store(*a0, v - 30);
    m.store(*a1, m.load(*a1) + 30);
  }, /*step_budget=*/4);
  b.op(leg2, [a2, a3](IdemCtx<RealPlat>& m) {
    const std::uint32_t v = m.load(*a2);
    m.store(*a2, v - 10);
    m.store(*a3, m.load(*a3) + 10);
  }, /*step_budget=*/4);
  auto txn = std::move(b).build();
  EXPECT_EQ(txn.lock_set().size(), 4u);
  EXPECT_EQ(txn.step_budget(), 8u);
  EXPECT_TRUE(txn.submit(session, Policy::retry()).won);
  EXPECT_EQ(acct[0]->peek(), 70u);
  EXPECT_EQ(acct[1]->peek(), 130u);
  EXPECT_EQ(acct[2]->peek(), 90u);
  EXPECT_EQ(acct[3]->peek(), 110u);
}

TEST(Txn, ConcurrentComposedTransfersConserveTotal) {
  const int threads = 4;
  const int accounts = 8;
  LockSpace<RealPlat> space(txn_cfg(threads, 4), threads, accounts);
  std::vector<std::unique_ptr<Cell<RealPlat>>> acct;
  for (int i = 0; i < accounts; ++i) {
    acct.push_back(std::make_unique<Cell<RealPlat>>(1000u));
  }
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      RealPlat::seed_rng(401 + static_cast<std::uint64_t>(t));
      Session<RealPlat> session(space);
      Xoshiro256 rng(t * 3 + 7);
      for (int i = 0; i < 250; ++i) {
        std::uint32_t a = static_cast<std::uint32_t>(rng.next_below(accounts));
        std::uint32_t bIdx =
            static_cast<std::uint32_t>(rng.next_below(accounts));
        if (bIdx == a) bIdx = (bIdx + 1) % accounts;
        Cell<RealPlat>* src = acct[a].get();
        Cell<RealPlat>* dst = acct[bIdx].get();
        TxnBuilder<RealPlat> b;
        const std::uint32_t ids[] = {a, bIdx};
        b.op(ids, [src, dst](IdemCtx<RealPlat>& m) {
          const std::uint32_t v = m.load(*src);
          if (v >= 5) {
            m.store(*src, v - 5);
            m.store(*dst, m.load(*dst) + 5);
          }
        }, /*step_budget=*/4);
        std::move(b).build().submit(session, Policy::retry());
      }
    });
  }
  for (auto& th : ts) th.join();
  std::uint64_t total = 0;
  for (auto& c : acct) total += c->peek();
  EXPECT_EQ(total, static_cast<std::uint64_t>(accounts) * 1000u);
}

// --- the two budget/lifecycle bugfixes ------------------------------------

// Death tests ride in the "Contracts" suite so the TSan CI job's
// GTEST_FILTER exclusion covers them (death tests fork; TSan dislikes it).

// check_budgets must validate the summed per-op step budgets against the
// configured T bound, not just the lock count against L.
TEST(Contracts, TxnOverTStepBudgetFailsLoudly) {
  LockSpace<RealPlat> space(txn_cfg(1, 4), 1, 8);
  Session<RealPlat> session(space);
  Cell<RealPlat> x{0};
  TxnBuilder<RealPlat> b;
  const std::uint32_t ids[] = {0};
  // One op claiming a 25-step budget against max_thunk_steps = 24.
  b.op(ids, [&x](IdemCtx<RealPlat>& m) { m.store(x, 1); },
       /*step_budget=*/25);
  auto txn = std::move(b).build();
  EXPECT_DEATH(txn.submit(session), "step budget exceeds");
}

// touch() on a consumed builder must fail loudly, exactly like op() does.
TEST(Contracts, TxnTouchAfterBuildFailsLoudly) {
  TxnBuilder<RealPlat> b;
  Cell<RealPlat> x{0};
  const std::uint32_t ids[] = {0};
  b.op(ids, [&x](IdemCtx<RealPlat>& m) { m.store(x, 1); });
  auto txn = std::move(b).build();
  (void)txn;
  EXPECT_DEATH(b.touch(3), "already consumed");
}

// --- retry policies through submit() --------------------------------------

TEST(Retry, UncontendedSucceedsFirstAttempt) {
  LockSpace<RealPlat> space(txn_cfg(1, 2), 1, 4);
  Session<RealPlat> session(space);
  Cell<RealPlat> x{0};
  const StaticLockSet<2> locks{0, 1};
  const Outcome o =
      submit(session, locks,
             [&x](IdemCtx<RealPlat>& m) { m.store(x, 1); }, Policy::retry());
  EXPECT_TRUE(o.won);
  EXPECT_EQ(o.attempts, 1u);
  EXPECT_GT(o.total_steps, 0u);
  EXPECT_EQ(o.backoff_steps, 0u);
  EXPECT_EQ(x.peek(), 1u);
}

TEST(Retry, MaxAttemptsBoundsTheLoop) {
  // Policy::attempts(3) with an uncontended lock still succeeds on attempt
  // 1; the bound only matters under contention, but the accounting must be
  // exact either way.
  LockSpace<RealPlat> space(txn_cfg(1, 1), 1, 2);
  Session<RealPlat> session(space);
  Cell<RealPlat> x{0};
  const StaticLockSet<1> locks{0};
  const Outcome o = submit(session, locks,
                           [&x](IdemCtx<RealPlat>& m) { m.store(x, 2); },
                           Policy::attempts(3));
  EXPECT_TRUE(o.won);
  EXPECT_LE(o.attempts, 3u);
  EXPECT_EQ(x.peek(), 2u);
}

TEST(RetrySim, ContendedAttemptsFollowFairnessBound) {
  // Under symmetric contention on one lock with κ processes, each attempt
  // wins w.p. >= 1/κ, so mean attempts-to-success <= κ (with slack for
  // small-sample noise). This is Corollary C1 in miniature; exp_retry
  // does the full sweep.
  const int procs = 4;
  LockConfig cfg = txn_cfg(procs, 1);
  cfg.delay_mode = DelayMode::kTheory;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  LockSpace<SimPlat> space(cfg, procs, 1);
  Simulator sim(21);
  std::vector<std::uint64_t> attempts(procs, 0);
  auto x_owner = std::make_unique<Cell<SimPlat>>(0u);
  Cell<SimPlat>* x = x_owner.get();
  for (int p = 0; p < procs; ++p) {
    sim.add_process([&, p] {
      Session<SimPlat> session(space);
      const StaticLockSet<1> locks{0};
      for (int i = 0; i < 20; ++i) {
        const Outcome o = submit(
            session, locks,
            [x](IdemCtx<SimPlat>& m) { m.store(*x, m.load(*x) + 1); },
            Policy::retry());
        EXPECT_TRUE(o.won);
        attempts[static_cast<std::size_t>(p)] += o.attempts;
      }
    });
  }
  UniformSchedule sched(procs, 55);
  ASSERT_TRUE(sim.run(sched, 4'000'000'000ull));
  EXPECT_EQ(x->peek(), static_cast<std::uint32_t>(procs) * 20u);
  for (int p = 0; p < procs; ++p) {
    const double mean =
        static_cast<double>(attempts[static_cast<std::size_t>(p)]) / 20.0;
    EXPECT_LE(mean, 4.0 * procs) << "process " << p
                                 << " needed far more attempts than κ";
  }
}

}  // namespace
}  // namespace wfl
