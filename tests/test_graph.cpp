// LockedGraph: topology generators, the neighbourhood-locking apply
// operation, and the greedy-colouring / averaging updates — including the
// paper's headline use case: concurrent local updates on a graph yield a
// proper colouring because adjacent applies are serialized by their
// shared locks.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "wfl/wfl.hpp"

namespace wfl {
namespace {

LockConfig graph_cfg(int procs, std::uint32_t max_deg) {
  LockConfig cfg;
  cfg.kappa = static_cast<std::uint32_t>(procs) + 1;
  cfg.max_locks = max_deg + 1;
  cfg.max_thunk_steps = LockedGraph<RealPlat>::thunk_step_budget(max_deg);
  cfg.delay_mode = DelayMode::kOff;
  return cfg;
}

TEST(GraphTopology, RingIsSymmetricDegreeTwo) {
  const auto adj = LockedGraph<RealPlat>::ring(12);
  ASSERT_EQ(adj.size(), 12u);
  for (std::uint32_t v = 0; v < 12; ++v) {
    EXPECT_EQ(adj[v].size(), 2u);
    for (std::uint32_t u : adj[v]) {
      EXPECT_NE(u, v);
      EXPECT_NE(std::find(adj[u].begin(), adj[u].end(), v), adj[u].end());
    }
  }
}

TEST(GraphTopology, TorusIsSymmetricDegreeFour) {
  const auto adj = LockedGraph<RealPlat>::torus(4, 5);
  ASSERT_EQ(adj.size(), 20u);
  for (std::uint32_t v = 0; v < 20; ++v) {
    EXPECT_EQ(adj[v].size(), 4u);
    for (std::uint32_t u : adj[v]) {
      EXPECT_NE(std::find(adj[u].begin(), adj[u].end(), v), adj[u].end());
    }
  }
}

TEST(GraphTopology, RandomRegularRespectsDegreeCapAndSymmetry) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto adj = LockedGraph<RealPlat>::random_regular(40, 4, seed);
    for (std::uint32_t v = 0; v < 40; ++v) {
      EXPECT_LE(adj[v].size() + 1, kMaxLocksPerAttempt);
      for (std::uint32_t u : adj[v]) {
        EXPECT_NE(u, v);
        EXPECT_NE(std::find(adj[u].begin(), adj[u].end(), v), adj[u].end());
        // No duplicate edges.
        EXPECT_EQ(std::count(adj[v].begin(), adj[v].end(), u), 1);
      }
    }
  }
}

TEST(Graph, SequentialColouringIsProper) {
  LockSpace<RealPlat> space(graph_cfg(1, 2), 1, 12);
  LockedGraph<RealPlat> g(space, LockedGraph<RealPlat>::ring(12));
  BasicSession proc(space.table());
  for (std::uint32_t v = 0; v < 12; ++v) g.colour_vertex(proc, v);
  EXPECT_TRUE(g.properly_coloured());
  // A ring needs at most 3 colours under greedy.
  for (std::uint32_t v = 0; v < 12; ++v) EXPECT_LE(g.value(v), 3u);
}

TEST(Graph, ApplyRunsExactlyOncePerWin) {
  LockSpace<RealPlat> space(graph_cfg(1, 2), 1, 8);
  LockedGraph<RealPlat> g(space, LockedGraph<RealPlat>::ring(8));
  BasicSession proc(space.table());
  for (int round = 0; round < 10; ++round) {
    g.apply(proc, 3, [](IdemCtx<RealPlat>& m, LockedGraph<RealPlat>::View nb) {
      m.store(*nb.centre, m.load(*nb.centre) + 1);
    });
  }
  EXPECT_EQ(g.value(3), 10u);
}

TEST(Graph, ConcurrentColouringOnRingIsProper) {
  const int threads = 4;
  const std::uint32_t n = 32;
  LockSpace<RealPlat> space(graph_cfg(threads, 2), threads,
                            static_cast<int>(n));
  LockedGraph<RealPlat> g(space, LockedGraph<RealPlat>::ring(n));
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      RealPlat::seed_rng(17 + static_cast<std::uint64_t>(t));
      BasicSession proc(space.table());
      // Interleaved vertex ownership maximizes boundary conflicts.
      for (std::uint32_t v = static_cast<std::uint32_t>(t); v < n;
           v += static_cast<std::uint32_t>(threads)) {
        g.colour_vertex(proc, v);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_TRUE(g.properly_coloured());
}

TEST(Graph, ConcurrentColouringOnTorusIsProper) {
  const int threads = 4;
  LockSpace<RealPlat> space(graph_cfg(threads, 4), threads, 36);
  LockedGraph<RealPlat> g(space, LockedGraph<RealPlat>::torus(6, 6));
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      RealPlat::seed_rng(29 + static_cast<std::uint64_t>(t));
      BasicSession proc(space.table());
      for (std::uint32_t v = static_cast<std::uint32_t>(t); v < 36;
           v += static_cast<std::uint32_t>(threads)) {
        g.colour_vertex(proc, v);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_TRUE(g.properly_coloured());
}

TEST(Graph, AveragingConvergesTowardsConsensus) {
  LockSpace<RealPlat> space(graph_cfg(1, 2), 1, 10);
  LockedGraph<RealPlat> g(space, LockedGraph<RealPlat>::ring(10));
  BasicSession proc(space.table());
  for (std::uint32_t v = 0; v < 10; ++v) g.set_value(v, v * 100);
  for (int round = 0; round < 50; ++round) {
    for (std::uint32_t v = 0; v < 10; ++v) g.average_vertex(proc, v);
  }
  std::uint32_t lo = 0xFFFFFFFFu, hi = 0;
  for (std::uint32_t v = 0; v < 10; ++v) {
    lo = std::min(lo, g.value(v));
    hi = std::max(hi, g.value(v));
  }
  // Integer averaging contracts the range; after 50 sweeps on a 10-ring
  // the spread must have collapsed to a narrow band.
  EXPECT_LE(hi - lo, 5u);
}

TEST(GraphSim, ConcurrentColouringUnderAdversarialSchedule) {
  const int procs = 4;
  const std::uint32_t n = 16;
  LockConfig cfg = graph_cfg(procs, 2);
  LockSpace<SimPlat> space(cfg, procs, static_cast<int>(n));
  LockedGraph<SimPlat> g(space, LockedGraph<SimPlat>::ring(n));
  Simulator sim(13);
  for (int p = 0; p < procs; ++p) {
    sim.add_process([&, p] {
      BasicSession proc(space.table());
      for (std::uint32_t v = static_cast<std::uint32_t>(p); v < n;
           v += static_cast<std::uint32_t>(procs)) {
        g.colour_vertex(proc, v);
      }
    });
  }
  WeightedSchedule sched({1.0, 0.05, 1.0, 0.2}, 37);
  ASSERT_TRUE(sim.run(sched, 2'000'000'000ull));
  EXPECT_TRUE(g.properly_coloured());
}

TEST(GraphSim, DeterministicReplay) {
  auto run_once = [] {
    const int procs = 3;
    const std::uint32_t n = 9;
    LockConfig cfg = graph_cfg(procs, 2);
    LockSpace<SimPlat> space(cfg, procs, static_cast<int>(n));
    LockedGraph<SimPlat> g(space, LockedGraph<SimPlat>::ring(n));
    Simulator sim(3);
    for (int p = 0; p < procs; ++p) {
      sim.add_process([&, p] {
        BasicSession proc(space.table());
        for (std::uint32_t v = static_cast<std::uint32_t>(p); v < n;
             v += static_cast<std::uint32_t>(procs)) {
          g.colour_vertex(proc, v);
        }
      });
    }
    UniformSchedule sched(procs, 71);
    EXPECT_TRUE(sim.run(sched, 2'000'000'000ull));
    std::vector<std::uint32_t> colours;
    for (std::uint32_t v = 0; v < n; ++v) colours.push_back(g.value(v));
    return colours;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace wfl
