// Fairness (Theorem 6.9): every attempt succeeds with probability at least
// 1/C_p, C_p = Σ_{ℓ in lock set} κ_ℓ, against an oblivious scheduler.
// These tests check loose empirical versions (Wilson 99% bounds with slack)
// so they are not flaky; bench/exp_fairness.cpp reports the precise values.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "wfl/wfl.hpp"

namespace wfl {
namespace {

using Space = LockSpace<SimPlat>;

struct FairnessResult {
  SuccessRate overall;
  std::vector<SuccessRate> per_proc;
  LockStats stats;
};

// All `procs` processes repeatedly attempt the same `L` locks.
FairnessResult run_clique(int procs, int locks_per_attempt, int attempts,
                          std::uint64_t seed) {
  LockConfig cfg;
  cfg.kappa = static_cast<std::uint32_t>(procs);
  cfg.max_locks = static_cast<std::uint32_t>(locks_per_attempt);
  cfg.max_thunk_steps = 2;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  auto space =
      std::make_unique<Space>(cfg, procs, locks_per_attempt);

  FairnessResult res;
  res.per_proc.resize(static_cast<std::size_t>(procs));
  Simulator sim(seed);
  for (int p = 0; p < procs; ++p) {
    sim.add_process([&, p] {
      auto proc = space->register_process();
      std::vector<std::uint32_t> ids;
      for (int l = 0; l < locks_per_attempt; ++l) {
        ids.push_back(static_cast<std::uint32_t>(l));
      }
      for (int a = 0; a < attempts; ++a) {
        const bool won =
            space->try_locks(proc, ids, typename Space::Thunk{});
        res.per_proc[static_cast<std::size_t>(p)].add(won);
      }
    });
  }
  UniformSchedule sched(procs, seed ^ 0xF00D);
  EXPECT_TRUE(sim.run(sched, 2'000'000'000ull));
  for (const auto& pr : res.per_proc) res.overall.merge(pr);
  res.stats = space->stats();
  return res;
}

TEST(Fairness, CliqueFourProcsTwoLocks) {
  // C_p = L * κ = 2 * 4 = 8; theorem floor is 1/8. The clique's true rate
  // is ~1/P since the competitor *sets* coincide; we assert the theorem
  // floor with slack against sampling noise.
  const auto res = run_clique(4, 2, 150, 11);
  const double floor = 1.0 / 8.0;
  EXPECT_GE(res.overall.wilson_upper(), floor);
  EXPECT_GE(res.overall.rate(), floor * 0.85)
      << "rate " << res.overall.rate() << " below theorem floor " << floor;
  EXPECT_EQ(res.stats.t0_overruns, 0u);
}

TEST(Fairness, CliqueEightProcsSingleLock) {
  const auto res = run_clique(8, 1, 80, 17);
  const double floor = 1.0 / 8.0;  // C_p = 1 * 8
  EXPECT_GE(res.overall.rate(), floor * 0.85);
}

TEST(Fairness, PerProcessRatesAreBalanced) {
  const auto res = run_clique(4, 2, 150, 23);
  double lo = 1.0, hi = 0.0;
  for (const auto& pr : res.per_proc) {
    lo = std::min(lo, pr.rate());
    hi = std::max(hi, pr.rate());
  }
  // Everybody competes under identical conditions; rates should cluster.
  EXPECT_GT(lo, 0.0) << "a process never succeeded: starvation";
  EXPECT_LT(hi / lo, 4.0) << "success rates wildly unbalanced: " << lo
                          << " vs " << hi;
}

// The dining philosophers special case (§1): κ = L = 2, so each attempt to
// eat succeeds with probability >= 1/4, independent of the ring size.
TEST(Fairness, DiningPhilosophersQuarterBound) {
  const int n = 6;
  const int meals_attempts = 60;
  LockConfig cfg;
  cfg.kappa = 2;
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 2;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  auto space = std::make_unique<Space>(cfg, n, n);

  SuccessRate overall;
  std::vector<SuccessRate> per(static_cast<std::size_t>(n));
  Simulator sim(29);
  for (int p = 0; p < n; ++p) {
    sim.add_process([&, p] {
      auto proc = space->register_process();
      Xoshiro256 rng(1000 + static_cast<std::uint64_t>(p));
      const std::uint32_t left = static_cast<std::uint32_t>(p);
      const std::uint32_t right = static_cast<std::uint32_t>((p + 1) % n);
      const std::uint32_t ids[] = {left, right};
      for (int a = 0; a < meals_attempts; ++a) {
        const bool ate = space->try_locks(proc, ids, typename Space::Thunk{});
        per[static_cast<std::size_t>(p)].add(ate);
        // Think for a random while (own steps), as the problem statement
        // demands — thinking is what keeps contention at the κ=2 bound.
        const std::uint64_t think = rng.next_below(64);
        for (std::uint64_t s = 0; s < think; ++s) SimPlat::step();
      }
    });
  }
  UniformSchedule sched(n, 31337);
  ASSERT_TRUE(sim.run(sched, 2'000'000'000ull));
  for (const auto& pr : per) overall.merge(pr);
  EXPECT_GE(overall.rate(), 0.25 * 0.9)
      << "philosopher eat rate " << overall.rate() << " below 1/4";
  for (int p = 0; p < n; ++p) {
    EXPECT_GT(per[static_cast<std::size_t>(p)].successes(), 0u)
        << "philosopher " << p << " starved";
  }
  EXPECT_EQ(space->stats().t0_overruns, 0u);
}

// Independence across retries (the corollary to Theorem 1.1): retrying
// until success needs ~ C_p attempts in expectation; no process should need
// wildly more than the geometric expectation.
TEST(Fairness, RetryUntilSuccessTerminatesFast) {
  const int procs = 4;
  LockConfig cfg;
  cfg.kappa = 4;
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 2;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  auto space = std::make_unique<Space>(cfg, procs, 2);
  std::vector<std::uint64_t> attempts_needed(procs, 0);
  Simulator sim(43);
  for (int p = 0; p < procs; ++p) {
    sim.add_process([&, p] {
      auto proc = space->register_process();
      const std::uint32_t ids[] = {0, 1};
      for (int wins = 0; wins < 10; ++wins) {
        std::uint64_t tries = 0;
        for (;;) {
          ++tries;
          if (space->try_locks(proc, ids, typename Space::Thunk{})) break;
          // Wait-freedom bound: P = 4 competitors, success >= 1/8 each try;
          // 400 consecutive failures has probability ~1e-23.
          ASSERT_LT(tries, 400u);
        }
        attempts_needed[static_cast<std::size_t>(p)] += tries;
      }
    });
  }
  UniformSchedule sched(procs, 99);
  ASSERT_TRUE(sim.run(sched, 2'000'000'000ull));
  for (int p = 0; p < procs; ++p) {
    // 10 wins each; mean tries/win should be around C_p=8, certainly < 40.
    EXPECT_LT(attempts_needed[static_cast<std::size_t>(p)], 400u);
  }
}

}  // namespace
}  // namespace wfl
