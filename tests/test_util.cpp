// Unit tests for the utility layer: PRNGs, statistics, FixedFunction.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "wfl/util/fixed_function.hpp"
#include "wfl/util/rng.hpp"
#include "wfl/util/stats.hpp"

namespace wfl {
namespace {

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroDifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowIsInRange) {
  Xoshiro256 r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Xoshiro256 r(13);
  const int buckets = 8;
  const int n = 80000;
  std::vector<int> c(buckets, 0);
  for (int i = 0; i < n; ++i) ++c[r.next_below(buckets)];
  for (int b = 0; b < buckets; ++b) {
    EXPECT_NEAR(c[b], n / buckets, n / buckets * 0.1);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 r(99);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Stats, RunningStatMeanVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(Stats, RunningStatMergeMatchesCombined) {
  Xoshiro256 r(5);
  RunningStat a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double() * 10;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(Stats, HistogramPercentiles) {
  Histogram h(100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.1);
  EXPECT_NEAR(h.percentile(50), 50.0, 2.0);
  EXPECT_NEAR(h.percentile(90), 90.0, 2.0);
  EXPECT_EQ(h.overflow(), 0u);
  h.add(1e9);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Stats, WilsonBoundsBracketRate) {
  SuccessRate s;
  for (int i = 0; i < 1000; ++i) s.add(i % 4 == 0);  // rate 0.25
  EXPECT_NEAR(s.rate(), 0.25, 1e-9);
  EXPECT_LT(s.wilson_lower(), 0.25);
  EXPECT_GT(s.wilson_upper(), 0.25);
  EXPECT_GT(s.wilson_lower(), 0.2);  // 1000 trials: tight-ish
  EXPECT_LT(s.wilson_upper(), 0.3);
}

TEST(Stats, WilsonDegenerateCases) {
  SuccessRate empty;
  EXPECT_EQ(empty.wilson_lower(), 0.0);
  EXPECT_EQ(empty.wilson_upper(), 1.0);
  SuccessRate all;
  for (int i = 0; i < 50; ++i) all.add(true);
  // Wilson 99% lower bound for 50/50 is ~0.883 — comfortably below 1 but
  // far above a coin flip.
  EXPECT_GT(all.wilson_lower(), 0.85);
  EXPECT_EQ(all.rate(), 1.0);
}

TEST(Stats, LogLogSlopeRecoversExponent) {
  std::vector<double> xs, ys;
  for (double x : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * x * x);  // y = 3x^2
  }
  EXPECT_NEAR(fit_log_log_slope(xs, ys), 2.0, 1e-9);
}

TEST(FixedFunction, CallsStoredLambda) {
  int hits = 0;
  FixedFunction<void(int)> f([&](int k) { hits += k; });
  f(3);
  f(4);
  EXPECT_EQ(hits, 7);
}

TEST(FixedFunction, EmptyIsFalsey) {
  FixedFunction<void()> f;
  EXPECT_FALSE(static_cast<bool>(f));
  f = [] {};
  EXPECT_TRUE(static_cast<bool>(f));
}

TEST(FixedFunction, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  FixedFunction<void()> f([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  FixedFunction<void()> g(std::move(f));
  EXPECT_FALSE(static_cast<bool>(f));
  g();
  EXPECT_EQ(*counter, 1);
  g.reset();
  EXPECT_EQ(counter.use_count(), 1);  // destroyed with the callable
}

TEST(FixedFunction, ReturnsValues) {
  FixedFunction<int(int, int)> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(20, 22), 42);
}

TEST(FixedFunction, DestructorRunsOnce) {
  auto token = std::make_shared<int>(7);
  {
    FixedFunction<void()> f([token] {});
    FixedFunction<void()> g = std::move(f);
    FixedFunction<void()> h = std::move(g);
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

}  // namespace
}  // namespace wfl
