// LockedSkipList: sequential semantics against std::set, structural tower
// invariants, concurrent linearization under sim schedules, and a real-
// thread stress run. The skip list is the repo's only substrate whose lock
// sets grow past two and overlap partially — the stress case for multi-lock
// attempts.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "wfl/apps/skiplist.hpp"
#include "wfl/platform/real.hpp"
#include "wfl/platform/sim.hpp"
#include "wfl/sim/sim.hpp"
#include "wfl/util/rng.hpp"
#include "wfl/wfl.hpp"

namespace wfl {
namespace {

LockConfig skip_cfg(std::uint32_t kappa) {
  LockConfig cfg;
  cfg.kappa = kappa;
  cfg.max_locks = kSkipMaxLevel + 1;
  cfg.max_thunk_steps = 16;  // erase worst case: 3+3·2+3+1 = 13 ops
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  return cfg;
}

// --- sequential semantics (single process under sim) ---

TEST(SkipList, SequentialInsertEraseContains) {
  using Space = LockSpace<SimPlat>;
  Space space(skip_cfg(1), 1, 64);
  LockedSkipList<SimPlat> sl(space, 64);
  Simulator sim(3);
  sim.add_process([&] {
    BasicSession proc(space.table());
    EXPECT_TRUE(sl.insert(proc, 10, 1));
    EXPECT_TRUE(sl.insert(proc, 5, 2));
    EXPECT_TRUE(sl.insert(proc, 20, 3));
    EXPECT_FALSE(sl.insert(proc, 10, 1)) << "duplicate accepted";
    EXPECT_TRUE(sl.contains(10));
    EXPECT_TRUE(sl.contains(5));
    EXPECT_FALSE(sl.contains(7));
    EXPECT_TRUE(sl.erase(proc, 10));
    EXPECT_FALSE(sl.erase(proc, 10)) << "double erase succeeded";
    EXPECT_FALSE(sl.contains(10));
    EXPECT_TRUE(sl.insert(proc, 10, 2)) << "re-insert after erase failed";
  });
  RoundRobinSchedule sched(1);
  ASSERT_TRUE(sim.run(sched, 100'000'000));
  EXPECT_EQ(sl.keys(), (std::vector<std::uint32_t>{5, 10, 20}));
}

class SkipListRandomized : public ::testing::TestWithParam<int> {};

TEST_P(SkipListRandomized, MatchesStdSetSequentially) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  using Space = LockSpace<SimPlat>;
  Space space(skip_cfg(1), 1, 256);
  LockedSkipList<SimPlat> sl(space, 256);
  Simulator sim(seed);
  sim.add_process([&] {
    BasicSession proc(space.table());
    Xoshiro256 rng(seed * 77);
    std::set<std::uint32_t> ref;
    for (int i = 0; i < 200; ++i) {
      const auto key = static_cast<std::uint32_t>(1 + rng.next_below(40));
      if (rng.next_below(3) != 0) {
        const std::uint32_t lvl = LockedSkipList<SimPlat>::draw_level(rng);
        EXPECT_EQ(sl.insert(proc, key, lvl), ref.insert(key).second);
      } else {
        EXPECT_EQ(sl.erase(proc, key), ref.erase(key) == 1);
      }
      if (i % 50 == 0) {
        for (std::uint32_t k = 1; k <= 40; ++k) {
          EXPECT_EQ(sl.contains(k), ref.count(k) == 1) << "key " << k;
        }
      }
    }
    std::vector<std::uint32_t> expect(ref.begin(), ref.end());
    EXPECT_EQ(sl.keys(), expect);  // keys() also checks tower invariants
  });
  RoundRobinSchedule sched(1);
  ASSERT_TRUE(sim.run(sched, 1'000'000'000));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkipListRandomized, ::testing::Range(1, 7));

// --- concurrent: net-membership accounting under adversarial schedules ---
//
// Each process performs random inserts/erases; per key, the successful
// operations must alternate insert/erase (the locks linearize them), so
// net(key) = inserts - erases ∈ {0, 1} and final membership == net.
class SkipListConcurrent : public ::testing::TestWithParam<int> {};

TEST_P(SkipListConcurrent, NetMembershipConsistent) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  constexpr int kProcs = 4;
  constexpr int kKeys = 12;
  using Space = LockSpace<SimPlat>;
  Space space(skip_cfg(kProcs), kProcs, 256);
  LockedSkipList<SimPlat> sl(space, 256);

  std::vector<std::vector<std::int64_t>> net(
      kProcs, std::vector<std::int64_t>(kKeys + 1, 0));

  Simulator sim(seed);
  for (int p = 0; p < kProcs; ++p) {
    sim.add_process([&, p] {
      BasicSession proc(space.table());
      Xoshiro256 rng(seed * 1009 + static_cast<std::uint64_t>(p));
      for (int i = 0; i < 25; ++i) {
        const auto key = static_cast<std::uint32_t>(1 + rng.next_below(kKeys));
        if (rng.next_below(2) == 0) {
          const std::uint32_t lvl = LockedSkipList<SimPlat>::draw_level(rng);
          if (sl.insert(proc, key, lvl)) {
            ++net[static_cast<std::size_t>(p)][key];
          }
        } else {
          if (sl.erase(proc, key)) --net[static_cast<std::size_t>(p)][key];
        }
      }
    });
  }
  StallBurstSchedule sched(kProcs, seed ^ 0x51, 1'000);
  ASSERT_TRUE(sim.run(sched, 2'000'000'000));

  const std::vector<std::uint32_t> final_keys = sl.keys();
  for (std::uint32_t k = 1; k <= kKeys; ++k) {
    std::int64_t total = 0;
    for (int p = 0; p < kProcs; ++p) {
      total += net[static_cast<std::size_t>(p)][k];
    }
    EXPECT_GE(total, 0) << "key " << k << ": erase succeeded while absent";
    EXPECT_LE(total, 1) << "key " << k << ": double insert";
    const bool present =
        std::find(final_keys.begin(), final_keys.end(), k) != final_keys.end();
    EXPECT_EQ(present, total == 1) << "key " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkipListConcurrent, ::testing::Range(1, 6));

// --- real threads: the same accounting, plus structural validation ---

TEST(SkipList, RealThreadStress) {
  constexpr int kThreads = 4;
  constexpr int kKeys = 32;
  constexpr int kOpsPerThread = 400;
  using Space = LockSpace<RealPlat>;
  LockConfig cfg = skip_cfg(kThreads);
  cfg.delay_mode = DelayMode::kOff;  // throughput mode; safety unaffected
  Space space(cfg, kThreads, 1024);
  LockedSkipList<RealPlat> sl(space, 1024);

  std::vector<std::vector<std::int64_t>> net(
      kThreads, std::vector<std::int64_t>(kKeys + 1, 0));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      BasicSession proc(space.table());
      Xoshiro256 rng(0xABCD + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto key = static_cast<std::uint32_t>(1 + rng.next_below(kKeys));
        if (rng.next_below(2) == 0) {
          const std::uint32_t lvl = LockedSkipList<RealPlat>::draw_level(rng);
          if (sl.insert(proc, key, lvl)) {
            ++net[static_cast<std::size_t>(t)][key];
          }
        } else {
          if (sl.erase(proc, key)) --net[static_cast<std::size_t>(t)][key];
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const std::vector<std::uint32_t> final_keys = sl.keys();
  for (std::uint32_t k = 1; k <= kKeys; ++k) {
    std::int64_t total = 0;
    for (int t = 0; t < kThreads; ++t) {
      total += net[static_cast<std::size_t>(t)][k];
    }
    ASSERT_GE(total, 0) << "key " << k;
    ASSERT_LE(total, 1) << "key " << k;
    const bool present =
        std::find(final_keys.begin(), final_keys.end(), k) != final_keys.end();
    EXPECT_EQ(present, total == 1) << "key " << k;
  }
}

}  // namespace
}  // namespace wfl
