// Baseline comparators: correctness of Spin2PL, Mutex2PL, Turek-style
// lock-free locks, and the Lehmann–Rabin philosophers protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "wfl/baseline/lehmann_rabin.hpp"
#include "wfl/baseline/mutex2pl.hpp"
#include "wfl/baseline/spin2pl.hpp"
#include "wfl/baseline/turek.hpp"
#include "wfl/idem/cell.hpp"
#include "wfl/platform/real.hpp"
#include "wfl/platform/sim.hpp"
#include "wfl/sim/sim.hpp"

namespace wfl {
namespace {

TEST(Spin2PL, LockedRunsExclusively) {
  Spin2PL<RealPlat> locks(4);
  std::uint64_t counter = 0;  // plain: protected by the locks
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      const std::uint32_t ids[] = {1, 3};
      for (int i = 0; i < 5000; ++i) {
        locks.locked(ids, [&] { ++counter; });
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(counter, 20000u);
}

TEST(Spin2PL, TryLockedBacksOff) {
  Spin2PL<RealPlat> locks(2);
  const std::uint32_t ids[] = {0, 1};
  // Hold lock 1 on this thread through the raw interface: try must fail.
  const std::uint32_t hold[] = {1};
  bool inner_ran = false;
  locks.locked(hold, [&] {
    EXPECT_FALSE(locks.try_locked(ids, [&] { inner_ran = true; }));
  });
  EXPECT_FALSE(inner_ran);
  EXPECT_TRUE(locks.try_locked(ids, [&] { inner_ran = true; }));
  EXPECT_TRUE(inner_ran);
}

TEST(Mutex2PL, LockedRunsExclusively) {
  Mutex2PL locks(4);
  std::uint64_t counter = 0;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      const std::uint32_t ids[] = {0, 2};
      for (int i = 0; i < 5000; ++i) {
        locks.locked(ids, [&] { ++counter; });
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(counter, 20000u);
}

TEST(Turek, AppliesExactlyOnceSingleThread) {
  TurekLockSpace<RealPlat> space(2, 4);
  auto proc = space.register_process();
  Cell<RealPlat> c{0};
  const std::uint32_t ids[] = {0, 3};
  space.apply(proc, ids, [&c](IdemCtx<RealPlat>& m) {
    m.store(c, m.load(c) + 1);
  });
  EXPECT_EQ(c.peek(), 1u);
}

TEST(Turek, ConcurrentTransfersConserveTotal) {
  TurekLockSpace<RealPlat> space(4, 8);
  std::vector<std::unique_ptr<Cell<RealPlat>>> accounts;
  for (int i = 0; i < 8; ++i) {
    accounts.push_back(std::make_unique<Cell<RealPlat>>(100u));
  }
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&, t] {
      auto proc = space.register_process();
      Xoshiro256 rng(55 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 2000; ++i) {
        const std::uint32_t a = static_cast<std::uint32_t>(rng.next_below(8));
        const std::uint32_t b = static_cast<std::uint32_t>((a + 1 +
            rng.next_below(7)) % 8);
        Cell<RealPlat>& src = *accounts[a];
        Cell<RealPlat>& dst = *accounts[b];
        const std::uint32_t ids[] = {a, b};
        space.apply(proc, ids, [&src, &dst](IdemCtx<RealPlat>& m) {
          const std::uint32_t s = m.load(src);
          if (s >= 1) {
            m.store(src, s - 1);
            m.store(dst, m.load(dst) + 1);
          }
        });
      }
    });
  }
  for (auto& th : ts) th.join();
  std::uint64_t total = 0;
  for (const auto& a : accounts) total += a->peek();
  EXPECT_EQ(total, 800u);
}

TEST(Turek, HelpingHappensUnderSimStarvation) {
  // Process 0 grabs locks and is then starved; process 1 must finish *its
  // own* operation anyway by helping process 0 through — the property that
  // distinguishes lock-free locks from blocking 2PL.
  TurekLockSpace<SimPlat> space(2, 2);
  Cell<SimPlat> c{0};
  Simulator sim(17);
  int completed = 0;
  for (int p = 0; p < 2; ++p) {
    sim.add_process([&, p] {
      auto proc = space.register_process();
      const std::uint32_t ids[] = {0, 1};
      for (int i = 0; i < 5; ++i) {
        space.apply(proc, ids, [&c](IdemCtx<SimPlat>& m) {
          m.store(c, m.load(c) + 1);
        });
      }
      (void)p;
      ++completed;
    });
  }
  // Process 0 gets very few slots: its operations complete via helping.
  WeightedSchedule sched({0.02, 1.0}, 23);
  ASSERT_TRUE(sim.run(sched, 500'000'000));
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(c.peek(), 10u);
}

TEST(LehmannRabin, EveryPhilosopherEventuallyEats) {
  const int n = 5;
  LehmannRabinTable<SimPlat> table(n);
  std::vector<std::uint64_t> rounds(static_cast<std::size_t>(n), 0);
  Simulator sim(41);
  for (int p = 0; p < n; ++p) {
    sim.add_process([&, p] {
      for (int meal = 0; meal < 10; ++meal) {
        rounds[static_cast<std::size_t>(p)] +=
            table.dine(p, /*max_rounds=*/1'000'000);
      }
    });
  }
  UniformSchedule sched(n, 4242);
  ASSERT_TRUE(sim.run(sched, 500'000'000));
  for (int p = 0; p < n; ++p) {
    EXPECT_GE(rounds[static_cast<std::size_t>(p)], 10u);  // >=1 round/meal
  }
}

TEST(LehmannRabin, RealThreadsSmoke) {
  const int n = 4;
  LehmannRabinTable<RealPlat> table(n);
  std::vector<std::thread> ts;
  std::atomic<std::uint64_t> meals{0};
  for (int p = 0; p < n; ++p) {
    ts.emplace_back([&, p] {
      RealPlat::seed_rng(900 + static_cast<std::uint64_t>(p));
      for (int meal = 0; meal < 200; ++meal) {
        table.dine(p);
        meals.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(meals.load(), static_cast<std::uint64_t>(n) * 200);
}

}  // namespace
}  // namespace wfl
