// Unit tests for the memory substrate: IndexPool and EbrDomain.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "wfl/mem/arena.hpp"
#include "wfl/mem/ebr.hpp"

namespace wfl {
namespace {

TEST(IndexPool, AllocatesDistinctIndices) {
  IndexPool<int> pool(16);
  const std::uint32_t cap = pool.capacity();
  std::set<std::uint32_t> seen;
  for (std::uint32_t i = 0; i < cap; ++i) {
    const std::uint32_t idx = pool.alloc();
    EXPECT_TRUE(seen.insert(idx).second);
    pool.at(idx) = static_cast<int>(i);
  }
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(IndexPool, FreeMakesSlotReusable) {
  IndexPool<int> pool(2);
  const std::uint32_t a = pool.alloc();
  const std::uint32_t b = pool.alloc();
  const std::uint32_t before = pool.free_count();
  pool.free(a);
  const std::uint32_t c = pool.alloc();
  EXPECT_EQ(c, a);  // LIFO freelist
  pool.free(b);
  pool.free(c);
  EXPECT_EQ(pool.free_count(), before + 2);
}

TEST(IndexPool, GrowsOnDemandWithStableAddresses) {
  IndexPool<int> pool(256, /*max_capacity=*/4096);
  std::vector<std::uint32_t> held;
  std::vector<int*> addrs;
  // Exhaust the initial capacity and keep going: the pool must grow, and
  // previously handed-out addresses must not move.
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t idx = pool.alloc();
    pool.at(idx) = i;
    held.push_back(idx);
    addrs.push_back(pool.ptr(idx));
  }
  EXPECT_GE(pool.capacity(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(pool.ptr(held[static_cast<std::size_t>(i)]),
              addrs[static_cast<std::size_t>(i)]);
    EXPECT_EQ(pool.at(held[static_cast<std::size_t>(i)]), i);
  }
  for (const auto idx : held) pool.free(idx);
}

TEST(IndexPool, MaxCapacityIsALoudFailure) {
  IndexPool<int> pool(256, /*max_capacity=*/256);
  for (int i = 0; i < 256; ++i) (void)pool.alloc();
  EXPECT_DEATH((void)pool.alloc(), "max_capacity");
}

TEST(IndexPool, ConcurrentAllocFreeKeepsSlotsUnique) {
  // 4 threads churn alloc/free; at no instant may two threads hold the same
  // index. Detected by stamping ownership into the slot.
  IndexPool<std::atomic<int>> pool(64);
  std::atomic<bool> failed{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < 20000; ++i) {
        const std::uint32_t idx = pool.alloc();
        int expected = 0;
        if (!pool.at(idx).compare_exchange_strong(expected, t + 1)) {
          failed.store(true);
        }
        pool.at(idx).store(0);
        pool.free(idx);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_FALSE(failed.load()) << "two threads held the same pool slot";
  EXPECT_EQ(pool.free_count(), pool.capacity());
}

struct FreeLog {
  std::vector<std::uint32_t> freed;
  static void deleter(void* ctx, std::uint32_t h) {
    static_cast<FreeLog*>(ctx)->freed.push_back(h);
  }
};

// Regression: the constructor must pre-size to the requested capacity even
// though each grown segment refills the freelist (an early-return on
// "free slots exist" here once livelocked every LockSpace construction).
TEST(IndexPool, ConstructorPreSizesPastOneSegment) {
  IndexPool<int> pool(4096);  // many segments of 256
  EXPECT_GE(pool.capacity(), 4096u);
  EXPECT_GE(pool.free_count(), 4096u);
}

// Regression: allocation hands out *low* indices first. Applications use
// pool indices as lock ids ("node i is protected by lock i") and size
// their lock spaces accordingly; a pool that popped from the top of each
// fresh segment would hand index 255 to the first caller.
TEST(IndexPool, FreshPoolAllocatesLowIndicesFirst) {
  IndexPool<int> pool(64);
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(pool.alloc(), i);
  }
}

// abandon() drops a guard on behalf of a participant that provably takes
// no further steps, letting reclamation (and teardown) proceed.
TEST(Ebr, AbandonReleasesACrashedParticipantsGuard) {
  std::atomic<int> freed{0};
  auto deleter = +[](void* ctx, std::uint32_t) {
    static_cast<std::atomic<int>*>(ctx)->fetch_add(1);
  };
  {
    EbrDomain ebr(2);
    const int crashed = ebr.register_participant();
    const int live = ebr.register_participant();
    ebr.enter(crashed);  // "crashes" here, never exits
    ebr.retire(live, &freed, 1, deleter);
    // The stuck guard pins the epoch: repeated collects free nothing.
    for (int i = 0; i < 8; ++i) ebr.collect(live);
    EXPECT_EQ(freed.load(), 0);
    ebr.abandon(crashed);
    for (int i = 0; i < 8; ++i) ebr.collect(live);
    EXPECT_EQ(freed.load(), 1) << "reclamation still stalled after abandon";
  }  // destructor must not fire the held-guard check either
}

TEST(Ebr, NothingFreedWhileGuardCouldHoldReference) {
  EbrDomain dom(2);
  const int p0 = dom.register_participant();
  const int p1 = dom.register_participant();
  FreeLog log;

  dom.enter(p0);  // reader enters before the retire
  dom.enter(p1);
  dom.retire(p1, &log, 7, &FreeLog::deleter);
  dom.exit(p1);
  // p0 still inside: epoch can't advance twice; nothing may be freed.
  for (int i = 0; i < 10; ++i) dom.collect(p1);
  EXPECT_TRUE(log.freed.empty());
  dom.exit(p0);
  // Now quiescent: a few collects must advance twice and free.
  for (int i = 0; i < 10; ++i) dom.collect(p1);
  ASSERT_EQ(log.freed.size(), 1u);
  EXPECT_EQ(log.freed[0], 7u);
}

TEST(Ebr, GuardRaiiEntersAndExits) {
  EbrDomain dom(1);
  const int p = dom.register_participant();
  {
    EbrDomain::Guard g(dom, p);
    // Nested enter would abort (checked); we just verify scoping compiles
    // and exits cleanly.
  }
  {
    EbrDomain::Guard g(dom, p);
  }
}

TEST(Ebr, DrainsOnDestruction) {
  FreeLog log;
  {
    EbrDomain dom(1);
    const int p = dom.register_participant();
    dom.retire(p, &log, 1, &FreeLog::deleter);
    dom.retire(p, &log, 2, &FreeLog::deleter);
  }
  EXPECT_EQ(log.freed.size(), 2u);
}

TEST(Ebr, EpochAdvancesWhenAllQuiescent) {
  EbrDomain dom(3);
  const int p0 = dom.register_participant();
  (void)dom.register_participant();
  const std::uint64_t before = dom.epoch();
  dom.collect(p0);
  dom.collect(p0);
  EXPECT_GE(dom.epoch(), before + 2);
}

TEST(Ebr, ConcurrentChurnNeverFreesHeldObjects) {
  // Writers retire tokens; a reader under guard records the tokens it can
  // see; retired tokens must never be freed while the observing guard that
  // could reach them is active. We model "reachability" with a shared slot.
  // The pool must absorb the writer's entire churn: on a single core a
  // preempted reader can pin the epoch for a full scheduling quantum, so no
  // upper bound below "everything" is safe to assert here. The pool is
  // declared before the domain because the domain's destructor drains
  // retired objects back into it.
  IndexPool<std::atomic<std::uint64_t>> pool(32768);
  EbrDomain dom(4);
  struct Ctx {
    IndexPool<std::atomic<std::uint64_t>>* pool;
    static void deleter(void* c, std::uint32_t h) {
      auto* ctx = static_cast<Ctx*>(c);
      ctx->pool->at(h).store(0xDEAD);  // poison on free
      ctx->pool->free(h);
    }
  } ctx{&pool};

  std::atomic<std::uint32_t> shared{pool.alloc()};
  pool.at(shared.load()).store(1);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};

  std::vector<std::thread> ts;
  for (int t = 0; t < 2; ++t) {
    ts.emplace_back([&, t] {
      const int pid = dom.register_participant();
      (void)t;
      while (!stop.load(std::memory_order_relaxed)) {
        dom.enter(pid);
        const std::uint32_t idx = shared.load(std::memory_order_seq_cst);
        if (pool.at(idx).load() == 0xDEAD) bad.fetch_add(1);
        dom.exit(pid);
      }
    });
  }
  ts.emplace_back([&] {
    const int pid = dom.register_participant();
    for (int i = 0; i < 30000; ++i) {
      const std::uint32_t fresh = pool.alloc();
      pool.at(fresh).store(1);
      const std::uint32_t old = shared.exchange(fresh);
      dom.retire(pid, &ctx, old, &Ctx::deleter);
    }
    stop.store(true);
  });
  for (auto& th : ts) th.join();
  EXPECT_EQ(bad.load(), 0u) << "a guarded reader saw a freed object";
}

}  // namespace
}  // namespace wfl
