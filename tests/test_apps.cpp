// Application substrates: the bank and the fine-grained locked list, on
// both platforms, with their global invariants audited after the dust
// settles.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "wfl/wfl.hpp"

namespace wfl {
namespace {

LockConfig bank_cfg(int procs) {
  LockConfig cfg;
  cfg.kappa = static_cast<std::uint32_t>(procs);
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 8;
  cfg.delay_mode = DelayMode::kOff;
  return cfg;
}

TEST(Bank, SingleTransferMovesMoney) {
  LockSpace<RealPlat> space(bank_cfg(1), 1, 4);
  Bank<RealPlat> bank(space, 4, 100);
  BasicSession proc(space.table());
  bool denied = false;
  EXPECT_TRUE(bank.try_transfer(proc, 0, 1, 30, &denied));
  EXPECT_FALSE(denied);
  EXPECT_EQ(bank.balance(0), 70u);
  EXPECT_EQ(bank.balance(1), 130u);
  EXPECT_EQ(bank.total_balance(), bank.expected_total());
}

TEST(Bank, InsufficientFundsDeniedNotLost) {
  LockSpace<RealPlat> space(bank_cfg(1), 1, 2);
  Bank<RealPlat> bank(space, 2, 10);
  BasicSession proc(space.table());
  bool denied = false;
  EXPECT_TRUE(bank.try_transfer(proc, 0, 1, 50, &denied));
  EXPECT_TRUE(denied);
  EXPECT_EQ(bank.balance(0), 10u);
  EXPECT_EQ(bank.total_balance(), 20u);
}

TEST(Bank, ConcurrentChurnConservesTotal) {
  const int threads = 4, accounts = 8;
  LockSpace<RealPlat> space(bank_cfg(threads), threads, accounts);
  Bank<RealPlat> bank(space, accounts, 1000);
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      RealPlat::seed_rng(77 + static_cast<std::uint64_t>(t));
      BasicSession proc(space.table());
      Xoshiro256 rng(t + 1);
      for (int i = 0; i < 1500; ++i) {
        const auto a = static_cast<std::uint32_t>(rng.next_below(accounts));
        auto b = static_cast<std::uint32_t>(rng.next_below(accounts));
        if (b == a) b = (b + 1) % accounts;
        bank.try_transfer(proc, a, b,
                          static_cast<std::uint32_t>(rng.next_below(20)));
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(bank.total_balance(), bank.expected_total());
}

TEST(Bank, SimConservesTotalUnderSkew) {
  const int procs = 4, accounts = 4;
  LockConfig cfg = bank_cfg(procs);
  cfg.delay_mode = DelayMode::kTheory;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  LockSpace<SimPlat> space(cfg, procs, accounts);
  Bank<SimPlat> bank(space, accounts, 500);
  Simulator sim(3);
  for (int p = 0; p < procs; ++p) {
    sim.add_process([&, p] {
      BasicSession proc(space.table());
      Xoshiro256 rng(p * 3 + 1);
      for (int i = 0; i < 25; ++i) {
        const auto a = static_cast<std::uint32_t>(rng.next_below(accounts));
        auto b = static_cast<std::uint32_t>(rng.next_below(accounts));
        if (b == a) b = (b + 1) % accounts;
        bank.try_transfer(proc, a, b, 5);
      }
    });
  }
  WeightedSchedule sched({1.0, 0.05, 1.0, 0.3}, 19);
  ASSERT_TRUE(sim.run(sched, 2'000'000'000ull));
  EXPECT_EQ(bank.total_balance(), bank.expected_total());
}

LockConfig list_cfg(int procs) {
  LockConfig cfg;
  cfg.kappa = static_cast<std::uint32_t>(procs) + 1;
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 8;
  cfg.delay_mode = DelayMode::kOff;
  return cfg;
}

TEST(LockedList, SequentialSetSemantics) {
  LockSpace<RealPlat> space(list_cfg(1), 1, 64);
  LockedList<RealPlat> list(space, 64);
  BasicSession proc(space.table());
  EXPECT_TRUE(list.insert(proc, 5));
  EXPECT_TRUE(list.insert(proc, 3));
  EXPECT_TRUE(list.insert(proc, 9));
  EXPECT_FALSE(list.insert(proc, 5));  // duplicate
  EXPECT_TRUE(list.contains(3));
  EXPECT_FALSE(list.contains(4));
  EXPECT_EQ(list.keys(), (std::vector<std::uint32_t>{3, 5, 9}));
  EXPECT_TRUE(list.erase(proc, 5));
  EXPECT_FALSE(list.erase(proc, 5));
  EXPECT_EQ(list.keys(), (std::vector<std::uint32_t>{3, 9}));
}

TEST(LockedList, InsertEraseInterleavedSequential) {
  LockSpace<RealPlat> space(list_cfg(1), 1, 128);
  LockedList<RealPlat> list(space, 128);
  BasicSession proc(space.table());
  std::set<std::uint32_t> model;
  Xoshiro256 rng(8);
  for (int i = 0; i < 300; ++i) {
    const std::uint32_t key =
        static_cast<std::uint32_t>(1 + rng.next_below(40));
    if (rng.next_below(2) == 0) {
      EXPECT_EQ(list.insert(proc, key), model.insert(key).second);
    } else {
      EXPECT_EQ(list.erase(proc, key), model.erase(key) > 0);
    }
  }
  std::vector<std::uint32_t> expect(model.begin(), model.end());
  EXPECT_EQ(list.keys(), expect);
}

// quiescent_recycle makes the list usable indefinitely on a bounded pool:
// far more insert/erase cycles than the pool holds, with periodic
// recycling at quiescent points, and exact set semantics throughout.
TEST(LockedList, QuiescentRecycleSupportsUnboundedChurn) {
  constexpr std::uint32_t kCapacity = 32;
  LockSpace<RealPlat> space(list_cfg(1), 1, kCapacity);
  LockedList<RealPlat> list(space, kCapacity);
  BasicSession proc(space.table());
  std::set<std::uint32_t> model;
  Xoshiro256 rng(99);
  std::uint64_t recycled = 0;
  for (int i = 0; i < 1'000; ++i) {  // ~30x the pool capacity in churn
    const std::uint32_t key =
        static_cast<std::uint32_t>(1 + rng.next_below(12));
    if (rng.next_below(2) == 0) {
      EXPECT_EQ(list.insert(proc, key), model.insert(key).second);
    } else {
      EXPECT_EQ(list.erase(proc, key), model.erase(key) > 0);
    }
    if (i % 8 == 0) recycled += list.quiescent_recycle();
  }
  recycled += list.quiescent_recycle();
  EXPECT_GT(recycled, static_cast<std::uint64_t>(kCapacity))
      << "recycling never exceeded the pool: churn was not unbounded";
  std::vector<std::uint32_t> expect(model.begin(), model.end());
  EXPECT_EQ(list.keys(), expect);
}

// Recycling with nothing retired is a no-op.
TEST(LockedList, RecycleOnEmptyRetireListIsNoop) {
  LockSpace<RealPlat> space(list_cfg(1), 1, 16);
  LockedList<RealPlat> list(space, 16);
  BasicSession proc(space.table());
  EXPECT_EQ(list.quiescent_recycle(), 0u);
  EXPECT_TRUE(list.insert(proc, 7));
  EXPECT_EQ(list.quiescent_recycle(), 0u);  // inserts retire nothing
  EXPECT_TRUE(list.erase(proc, 7));
  EXPECT_EQ(list.quiescent_recycle(), 1u);
}

TEST(LockedList, ConcurrentDisjointKeyRanges) {
  // Each thread owns a key range; all ranges interleave positionally in the
  // list, so neighbors' lock sets collide constantly.
  const int threads = 4;
  LockSpace<RealPlat> space(list_cfg(threads), threads, 512);
  LockedList<RealPlat> list(space, 512);
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      RealPlat::seed_rng(31 + static_cast<std::uint64_t>(t));
      BasicSession proc(space.table());
      for (int k = 0; k < 60; ++k) {
        ASSERT_TRUE(list.insert(
            proc, static_cast<std::uint32_t>(1 + k * threads + t)));
      }
      for (int k = 0; k < 60; k += 2) {
        ASSERT_TRUE(list.erase(
            proc, static_cast<std::uint32_t>(1 + k * threads + t)));
      }
    });
  }
  for (auto& th : ts) th.join();
  const auto keys = list.keys();
  EXPECT_EQ(keys.size(), static_cast<std::size_t>(threads) * 30);
}

TEST(LockedList, ConcurrentSameKeysLastWriterConsistent) {
  const int threads = 4;
  // ~800 successful inserts and no node recycling (documented trade-off):
  // the pool must cover every allocation the workload ever makes.
  LockSpace<RealPlat> space(list_cfg(threads), threads, 2048);
  LockedList<RealPlat> list(space, 2048);
  std::atomic<int> net[40] = {};
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      RealPlat::seed_rng(71 + static_cast<std::uint64_t>(t));
      BasicSession proc(space.table());
      Xoshiro256 rng(t * 9 + 2);
      for (int i = 0; i < 400; ++i) {
        const std::uint32_t key =
            static_cast<std::uint32_t>(1 + rng.next_below(40));
        if (rng.next_below(2) == 0) {
          if (list.insert(proc, key)) net[key - 1].fetch_add(1);
        } else {
          if (list.erase(proc, key)) net[key - 1].fetch_sub(1);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  // Net insertions per key must equal final membership (0 or 1).
  const auto keys = list.keys();
  for (std::uint32_t k = 1; k <= 40; ++k) {
    const bool present =
        std::find(keys.begin(), keys.end(), k) != keys.end();
    EXPECT_EQ(net[k - 1].load(), present ? 1 : 0) << "key " << k;
  }
}

TEST(LockedList, SimWorkloadUnderAdversarialSchedule) {
  const int procs = 3;
  LockConfig cfg = list_cfg(procs);
  cfg.delay_mode = DelayMode::kTheory;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  LockSpace<SimPlat> space(cfg, procs, 128);
  LockedList<SimPlat> list(space, 128);
  Simulator sim(4);
  for (int p = 0; p < procs; ++p) {
    sim.add_process([&, p] {
      BasicSession proc(space.table());
      for (int k = 0; k < 12; ++k) {
        list.insert(proc,
                    static_cast<std::uint32_t>(1 + k * procs + p));
      }
      for (int k = 0; k < 12; k += 2) {
        list.erase(proc, static_cast<std::uint32_t>(1 + k * procs + p));
      }
    });
  }
  StallBurstSchedule sched(procs, 13, 1024);
  ASSERT_TRUE(sim.run(sched, 2'000'000'000ull));
  EXPECT_EQ(list.keys().size(), static_cast<std::size_t>(procs) * 6);
}

}  // namespace
}  // namespace wfl
