// Algorithm 3 under the deterministic simulator: safety (mutual exclusion
// with idempotence), step accounting (no delay overruns), determinism, and
// progress under starving (but oblivious) schedules.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "wfl/wfl.hpp"

#include "test_plat.hpp"

namespace wfl {

using test::TestPlat;
namespace {

using Space = LockSpace<TestPlat>;

struct SimWorkload {
  // Each process repeatedly tryLocks a lock set chosen by `pick` and runs a
  // thunk that (a) checks a per-resource in-critical-section flag and
  // (b) increments a per-resource counter with a read-modify-write. Both
  // detect mutual-exclusion violations: (a) directly, (b) via lost updates.
  LockConfig cfg;
  int procs = 4;
  int locks = 4;
  int attempts_per_proc = 50;
  std::uint64_t seed = 1;

  // Results
  std::uint64_t total_wins = 0;
  std::vector<std::uint64_t> wins_per_resource;
  std::vector<std::uint64_t> flag_violations;

  // pick(pid, round, rng) -> lock ids
  template <typename Pick, typename Sched>
  LockStats run(Pick pick, Sched& sched, std::uint64_t max_slots) {
    auto space = std::make_unique<Space>(cfg, procs, locks);
    std::vector<std::unique_ptr<Cell<TestPlat>>> busy;   // in-CS flags
    std::vector<std::unique_ptr<Cell<TestPlat>>> count;  // per-resource counts
    for (int i = 0; i < locks; ++i) {
      busy.push_back(std::make_unique<Cell<TestPlat>>(0u));
      count.push_back(std::make_unique<Cell<TestPlat>>(0u));
    }
    wins_per_resource.assign(static_cast<std::size_t>(locks), 0);
    flag_violations.assign(static_cast<std::size_t>(locks), 0);
    std::vector<std::uint64_t> violations(static_cast<std::size_t>(locks), 0);

    Simulator sim(seed);
    std::vector<std::vector<std::uint64_t>> local_wins(
        static_cast<std::size_t>(procs),
        std::vector<std::uint64_t>(static_cast<std::size_t>(locks), 0));
    for (int p = 0; p < procs; ++p) {
      sim.add_process([&, p] {
        auto proc = space->register_process();
        Xoshiro256 rng(seed * 1000003 + static_cast<std::uint64_t>(p));
        for (int a = 0; a < attempts_per_proc; ++a) {
          std::vector<std::uint32_t> ids = pick(p, a, rng);
          // The first lock id doubles as the "resource" the thunk touches.
          const std::uint32_t r = ids[0];
          Cell<TestPlat>& flag = *busy[r];
          Cell<TestPlat>& cnt = *count[r];
          std::uint64_t* viol = &violations[r];
          const bool won = space->try_locks(
              proc, ids, [&flag, &cnt, viol](IdemCtx<TestPlat>& m) {
                if (m.load(flag) != 0) ++*viol;  // someone else inside
                m.store(flag, 1);
                const std::uint32_t v = m.load(cnt);
                m.store(cnt, v + 1);
                m.store(flag, 0);
              });
          if (won) ++local_wins[static_cast<std::size_t>(p)][r];
        }
      });
    }
    const bool all_done = sim.run(sched, max_slots);
    EXPECT_TRUE(all_done) << "slots exhausted: " << sim.slots_used();

    total_wins = 0;
    for (int p = 0; p < procs; ++p) {
      for (int r = 0; r < locks; ++r) {
        wins_per_resource[static_cast<std::size_t>(r)] +=
            local_wins[static_cast<std::size_t>(p)][static_cast<std::size_t>(r)];
        total_wins +=
            local_wins[static_cast<std::size_t>(p)][static_cast<std::size_t>(r)];
      }
    }
    for (int r = 0; r < locks; ++r) {
      flag_violations[static_cast<std::size_t>(r)] =
          violations[static_cast<std::size_t>(r)];
      // Lost-update check: the counter must equal the number of wins that
      // touched this resource — each won thunk logically runs exactly once.
      EXPECT_EQ(count[static_cast<std::size_t>(r)]->peek(),
                wins_per_resource[static_cast<std::size_t>(r)])
          << "resource " << r << ": lost or duplicated critical sections";
      EXPECT_EQ(flag_violations[static_cast<std::size_t>(r)], 0u)
          << "resource " << r << ": overlapping critical sections observed";
    }
    return space->stats();
  }
};

LockConfig small_cfg() {
  LockConfig cfg;
  cfg.kappa = 4;
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 8;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  return cfg;
}

// All processes fight over the same pair of locks.
std::vector<std::uint32_t> pick_clique(int, int, Xoshiro256&) {
  return {0, 1};
}

TEST(LockSim, MutualExclusionRoundRobin) {
  SimWorkload w;
  w.cfg = small_cfg();
  w.procs = 4;
  w.locks = 2;
  w.attempts_per_proc = 30;
  RoundRobinSchedule sched(w.procs);
  const LockStats s = w.run(pick_clique, sched, 50'000'000);
  EXPECT_EQ(s.t0_overruns, 0u);
  EXPECT_EQ(s.t1_overruns, 0u);
  EXPECT_GT(w.total_wins, 0u);
}

TEST(LockSim, MutualExclusionUniformRandom) {
  SimWorkload w;
  w.cfg = small_cfg();
  w.procs = 4;
  w.locks = 2;
  w.attempts_per_proc = 30;
  UniformSchedule sched(w.procs, 77);
  const LockStats s = w.run(pick_clique, sched, 50'000'000);
  EXPECT_EQ(s.t0_overruns, 0u);
  EXPECT_EQ(s.t1_overruns, 0u);
  EXPECT_GT(w.total_wins, 0u);
}

TEST(LockSim, MutualExclusionHeavilySkewedSchedule) {
  SimWorkload w;
  w.cfg = small_cfg();
  w.procs = 4;
  w.locks = 2;
  w.attempts_per_proc = 10;
  // One process gets 1000x fewer steps: it must still finish (wait-freedom
  // cannot depend on the schedule), and safety must hold throughout.
  WeightedSchedule sched({1.0, 1.0, 1.0, 0.001}, 5);
  const LockStats s = w.run(pick_clique, sched, 400'000'000);
  EXPECT_EQ(s.t0_overruns, 0u);
  EXPECT_GT(w.total_wins, 0u);
}

TEST(LockSim, MutualExclusionStallBursts) {
  SimWorkload w;
  w.cfg = small_cfg();
  w.procs = 6;
  w.cfg.kappa = 6;
  w.locks = 3;
  w.attempts_per_proc = 15;
  StallBurstSchedule sched(w.procs, 99, 2000);
  auto pick = [](int p, int a, Xoshiro256&) -> std::vector<std::uint32_t> {
    // Random-ish overlapping pairs on a 3-cycle of locks.
    const std::uint32_t first = static_cast<std::uint32_t>((p + a) % 3);
    return {first, (first + 1) % 3};
  };
  const LockStats s = w.run(pick, sched, 400'000'000);
  EXPECT_EQ(s.t0_overruns, 0u);
  EXPECT_GT(w.total_wins, 0u);
}

TEST(LockSim, RandomSingleLockWorkload) {
  SimWorkload w;
  w.cfg = small_cfg();
  w.cfg.max_locks = 1;
  w.procs = 5;
  w.cfg.kappa = 5;
  w.locks = 4;
  w.attempts_per_proc = 40;
  UniformSchedule sched(w.procs, 31);
  auto pick = [](int, int, Xoshiro256& rng) -> std::vector<std::uint32_t> {
    return {static_cast<std::uint32_t>(rng.next_below(4))};
  };
  w.run(pick, sched, 100'000'000);
  EXPECT_GT(w.total_wins, 0u);
}

// Two identical simulations must produce bit-identical outcomes: the whole
// point of the simulator is replayable schedules.
TEST(LockSim, DeterministicReplay) {
  auto once = [] {
    SimWorkload w;
    w.cfg = small_cfg();
    w.procs = 4;
    w.locks = 2;
    w.attempts_per_proc = 20;
    w.seed = 123;
    UniformSchedule sched(w.procs, 123);
    w.run(pick_clique, sched, 50'000'000);
    return std::make_pair(w.total_wins, w.wins_per_resource);
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// Delay accounting: under kTheory every attempt's own-step length between
// start and reveal is exactly T0 (+1 for the reveal store); overruns are
// zero with the default constants.
TEST(LockSim, PreRevealWorkFitsUnderT0) {
  LockConfig cfg = small_cfg();
  Space space(cfg, 4, 2);
  Simulator sim(7);
  std::vector<AttemptInfo> infos;
  std::vector<std::vector<AttemptInfo>> per_proc(4);
  for (int p = 0; p < 4; ++p) {
    sim.add_process([&, p] {
      auto proc = space.register_process();
      const std::uint32_t ids[] = {0, 1};
      for (int a = 0; a < 20; ++a) {
        AttemptInfo info;
        space.try_locks(proc, ids, typename Space::Thunk{}, &info);
        per_proc[static_cast<std::size_t>(p)].push_back(info);
      }
    });
  }
  UniformSchedule sched(4, 7);
  ASSERT_TRUE(sim.run(sched, 100'000'000));
  for (auto& v : per_proc) {
    for (const AttemptInfo& i : v) {
      EXPECT_LE(i.pre_reveal_work, cfg.t0_steps());
      EXPECT_LE(i.post_reveal_work, cfg.t1_steps());
      // Total own-steps is the fixed T0 + T1 plus the reveal store and a
      // few boundary steps — the step bound of Theorem 6.1 in the flesh.
      EXPECT_LE(i.total_steps, cfg.t0_steps() + cfg.t1_steps() + 4);
    }
  }
  EXPECT_EQ(space.stats().t0_overruns, 0u);
  EXPECT_EQ(space.stats().t1_overruns, 0u);
}

}  // namespace
}  // namespace wfl
