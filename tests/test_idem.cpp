// Idempotence construction (Theorem 4.2): any number of interleaved runs of
// a thunk must look like exactly one run — same values observed by every
// run, same final memory as a single sequential execution.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "wfl/idem/cell.hpp"
#include "wfl/idem/idem.hpp"
#include "wfl/platform/real.hpp"
#include "wfl/platform/sim.hpp"
#include "wfl/sim/sim.hpp"
#include "wfl/util/rng.hpp"

namespace wfl {
namespace {

TEST(CellPacking, RoundTrips) {
  const std::uint64_t w = cell_pack(0xABCD1234u, 0x99u);
  EXPECT_EQ(cell_value(w), 0xABCD1234u);
  EXPECT_EQ(cell_tag(w), 0x99u);
}

TEST(IdemSequential, LoadStoreCas) {
  Cell<RealPlat> c{5};
  ThunkLog<RealPlat> log;
  IdemCtx<RealPlat> m(log, 100);
  EXPECT_EQ(m.load(c), 5u);
  m.store(c, 9);
  EXPECT_EQ(m.load(c), 9u);
  EXPECT_TRUE(m.cas(c, 9, 11));
  EXPECT_FALSE(m.cas(c, 9, 13));  // expected stale
  EXPECT_EQ(m.load(c), 11u);
  EXPECT_EQ(c.peek(), 11u);
}

TEST(IdemSequential, ReplayIsANoOpAndSeesSameValues) {
  Cell<RealPlat> c{1};
  ThunkLog<RealPlat> log;
  auto run = [&](std::vector<std::uint32_t>& seen) {
    IdemCtx<RealPlat> m(log, 200);
    seen.push_back(m.load(c));
    m.store(c, seen.back() + 10);
    seen.push_back(m.load(c));
    EXPECT_TRUE(m.cas(c, seen.back(), 42));
  };
  std::vector<std::uint32_t> first, second;
  run(first);
  const std::uint32_t after_once = c.peek();
  run(second);  // full replay against the same log
  EXPECT_EQ(first, second);
  EXPECT_EQ(c.peek(), after_once);
  EXPECT_EQ(c.peek(), 42u);
}

TEST(IdemSequential, OnceAgreesOnFirstValue) {
  ThunkLog<RealPlat> log;
  IdemCtx<RealPlat> a(log, 0);
  IdemCtx<RealPlat> b(log, 0);
  EXPECT_EQ(a.once(111), 111u);
  EXPECT_EQ(b.once(999), 111u);  // second run adopts the first run's draw
}

TEST(IdemSequential, StoreRacySucceedsWithoutInterference) {
  Cell<RealPlat> c{0};
  ThunkLog<RealPlat> log;
  IdemCtx<RealPlat> m(log, 300);
  EXPECT_TRUE(m.store_racy(c, 77, 4));
  EXPECT_EQ(c.peek(), 77u);
}

// Footnote 1 of the paper allows *racy* critical sections ("group-locking
// mechanisms"): thunks with disjoint lock sets writing the same cells.
// store_racy is the bounded-retry variant for that regime: under sustained
// interference from other instrumented writers it must still land within
// max_rounds > the number of writes that can interfere (every failed round
// implies a foreign write landed in its window), and every run of the same
// thunk must agree on which round landed.
TEST(IdemRacy, StoreRacyLandsUnderCrossThunkInterference) {
  const auto seed = std::uint64_t{17};
  Cell<SimPlat> shared{0};
  constexpr int kWriters = 3;
  constexpr int kStoresEach = 3;
  constexpr int kRounds = (kWriters - 1) * kStoresEach + 1;
  std::vector<std::unique_ptr<ThunkLog<SimPlat>>> logs;
  for (int w = 0; w < kWriters; ++w) {
    logs.push_back(std::make_unique<ThunkLog<SimPlat>>());
  }
  bool landed[kWriters] = {};

  Simulator sim(seed);
  for (int w = 0; w < kWriters; ++w) {
    sim.add_process([&, w] {
      IdemCtx<SimPlat> m(*logs[static_cast<std::size_t>(w)],
                         static_cast<std::uint32_t>(w) * kMaxThunkOps);
      for (int i = 0; i < kStoresEach; ++i) {
        landed[w] = m.store_racy(shared, static_cast<std::uint32_t>(100 + w),
                                 kRounds);
        if (!landed[w]) return;
      }
    });
  }
  UniformSchedule sched(kWriters, seed);
  ASSERT_TRUE(sim.run(sched, 10'000'000));
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_TRUE(landed[w]) << "writer " << w << " exceeded its round budget";
  }
  // The final value is one of the written values (no torn/foreign word).
  const std::uint32_t v = shared.peek();
  EXPECT_TRUE(v == 100 || v == 101 || v == 102) << v;
}

// A helped (replayed) racy store must not double-apply: the straggler's
// rounds agree with the first run's log and its physical CASes target
// superseded words.
TEST(IdemRacy, HelpedStoreRacyIsExactlyOnce) {
  Cell<RealPlat> c{0};
  Cell<RealPlat> probe{0};
  ThunkLog<RealPlat> log;
  IdemCtx<RealPlat> run1(log, 500);
  EXPECT_TRUE(run1.store_racy(c, 9, 2));
  const std::uint64_t after_first = c.raw_load();
  // Interference after the first run finished: an independent instrumented
  // writer moves the cell on.
  ThunkLog<RealPlat> other_log;
  IdemCtx<RealPlat> other(other_log, 600);
  other.store(c, 42);
  // The straggler replays the same thunk: agreement makes its store a
  // no-op; the interferer's value must survive.
  IdemCtx<RealPlat> run2(log, 500);
  EXPECT_TRUE(run2.store_racy(c, 9, 2));
  EXPECT_EQ(cell_value(c.raw_load()), 42u);
  EXPECT_NE(c.raw_load(), after_first);
  (void)probe;
}

// The idempotence-tag map (idem.hpp). The old map,
// uint32(serial)*kMaxThunkOps + op + 1, silently recycled the whole tag
// space every 2^26 serials — and worse, near each wrap it emitted tag
// 0 == kCellInitTag (serial = k*2^26 - 1, op = kMaxThunkOps - 1),
// colliding with the initial word of every fresh cell. The modular map
// must cross those boundaries with distinct, never-zero tags.
TEST(IdemTags, SurviveTheOldWrapBoundary) {
  constexpr std::uint64_t kOldWrap = 1ull << 26;  // 2^32 / kMaxThunkOps

  // The old map's wrap collision pair: same op, serials 2^26 apart.
  for (std::uint64_t base : {std::uint64_t{1}, kOldWrap - 7, 3 * kOldWrap}) {
    for (std::uint32_t op : {0u, 1u, kMaxThunkOps - 1}) {
      const std::uint32_t t_lo = idem_tag(idem_tag_base(base), op);
      const std::uint32_t t_hi = idem_tag(idem_tag_base(base + kOldWrap), op);
      EXPECT_NE(t_lo, t_hi) << "tag recycled at old wrap: serial " << base;
    }
  }

  // The old map's tag-0 emission points: serial = k*2^26 - 1, op = 63.
  // (Old: tag_base = 2^32 - 64, tag = tag_base + 63 + 1 = 0 mod 2^32.)
  for (std::uint64_t k : {std::uint64_t{1}, std::uint64_t{2},
                          std::uint64_t{1000}}) {
    const std::uint64_t serial = k * kOldWrap - 1;
    for (std::uint32_t op = 0; op < kMaxThunkOps; ++op) {
      EXPECT_NE(idem_tag(idem_tag_base(serial), op), kCellInitTag)
          << "tag 0 emitted at serial " << serial << " op " << op;
    }
  }

  // Injectivity across a shrunk-width window straddling the boundary:
  // flatten (serial, op) and require all tags distinct while the window is
  // narrower than the 2^32-1 modulus. 64 serials x 64 ops around the wrap.
  std::vector<std::uint32_t> tags;
  for (std::uint64_t s = kOldWrap - 32; s < kOldWrap + 32; ++s) {
    for (std::uint32_t op = 0; op < kMaxThunkOps; ++op) {
      tags.push_back(idem_tag(idem_tag_base(s), op));
    }
  }
  std::sort(tags.begin(), tags.end());
  EXPECT_TRUE(std::adjacent_find(tags.begin(), tags.end()) == tags.end())
      << "tag collision inside a window far below the modulus";
}

// Behavioral face of the same bug: two thunk instances whose serials sit
// exactly one old-wrap apart write the same value to the same cell. Under
// the old map their installed words were IDENTICAL (same value, same
// tag), breaking word uniqueness; now the second store must install a
// distinct word.
TEST(IdemTags, OldWrapPairInstallsDistinctWords) {
  constexpr std::uint64_t kOldWrap = 1ull << 26;
  Cell<RealPlat> c{0};

  ThunkLog<RealPlat> log_a;
  IdemCtx<RealPlat> a(log_a, idem_tag_base(5));
  a.store(c, 42);
  const std::uint64_t word_a = c.raw_load();

  ThunkLog<RealPlat> log_b;
  IdemCtx<RealPlat> b(log_b, idem_tag_base(5 + kOldWrap));
  b.store(c, 42);
  const std::uint64_t word_b = c.raw_load();

  EXPECT_EQ(cell_value(word_a), 42u);
  EXPECT_EQ(cell_value(word_b), 42u);
  EXPECT_NE(word_a, word_b) << "old-wrap serial pair reinstalled the same "
                               "(value, tag) word";
}

// The lazy reset contract: a completed run records its op high-water mark,
// reset_used() re-inits exactly the consumed slots (and only those), and a
// replay against the lazily-reset log behaves like one against a fresh
// log.
TEST(IdemSequential, LazyResetClearsExactlyTheConsumedSlots) {
  ThunkLog<RealPlat> log;
  Cell<RealPlat> c{0};
  {
    IdemCtx<RealPlat> m(log, idem_tag_base(1));
    m.store(c, 1);
    m.store(c, 2);  // 2 ops -> slots 0..3 at most
    log.note_used(m.ops_used());
  }
  EXPECT_EQ(log.reset_used(), 4u);
  // After the lazy reset the log must be indistinguishable from fresh:
  // a new 2-op thunk agrees on new values, not stale ones.
  {
    IdemCtx<RealPlat> m(log, idem_tag_base(2));
    EXPECT_EQ(m.load(c), 2u);
    m.store(c, 7);
    log.note_used(m.ops_used());
  }
  EXPECT_EQ(c.peek(), 7u);
  EXPECT_EQ(log.reset_used(), 4u);  // 1 load op + 1 store op -> 4 slots
  // An untouched log resets nothing.
  EXPECT_EQ(log.reset_used(), 0u);
}

TEST(IdemSequential, TagsMakeWordsUnique) {
  Cell<RealPlat> c{3};
  ThunkLog<RealPlat> log;
  IdemCtx<RealPlat> m(log, 400);
  const std::uint64_t w0 = c.raw_load();
  m.store(c, 3);  // same value, new tag: raw word must change
  const std::uint64_t w1 = c.raw_load();
  EXPECT_EQ(cell_value(w0), cell_value(w1));
  EXPECT_NE(w0, w1);
}

// ---------------------------------------------------------------------------
// Property sweep: random straight-line programs over a few cells, executed
// by several interleaved helper runs under the simulator, must leave memory
// exactly as one sequential execution, and every run must observe the
// sequential run's values.
// ---------------------------------------------------------------------------

struct OpSpec {
  enum Kind { kLoad, kStore, kCas, kOnce } kind;
  int cell;
  std::uint32_t a, b;
};

std::vector<OpSpec> random_program(std::uint64_t seed, int len, int cells) {
  Xoshiro256 rng(seed);
  std::vector<OpSpec> prog;
  for (int i = 0; i < len; ++i) {
    OpSpec op;
    op.kind = static_cast<OpSpec::Kind>(rng.next_below(4));
    op.cell = static_cast<int>(rng.next_below(cells));
    op.a = static_cast<std::uint32_t>(rng.next_below(4));
    op.b = static_cast<std::uint32_t>(rng.next_below(4));
    prog.push_back(op);
  }
  return prog;
}

// Sequential reference: plain values, and the trace a single run would see.
std::vector<std::uint32_t> reference(const std::vector<OpSpec>& prog,
                                     std::vector<std::uint32_t>& mem) {
  std::vector<std::uint32_t> trace;
  for (const OpSpec& op : prog) {
    switch (op.kind) {
      case OpSpec::kLoad:
        trace.push_back(mem[static_cast<std::size_t>(op.cell)]);
        break;
      case OpSpec::kStore:
        mem[static_cast<std::size_t>(op.cell)] = op.a;
        trace.push_back(op.a);
        break;
      case OpSpec::kCas: {
        std::uint32_t& v = mem[static_cast<std::size_t>(op.cell)];
        const bool ok = v == op.a;
        if (ok) v = op.b;
        trace.push_back(ok ? 1 : 0);
        break;
      }
      case OpSpec::kOnce:
        trace.push_back(op.a);  // first run's draw wins; all runs use op.a
        break;
    }
  }
  return trace;
}

void interpret(const std::vector<OpSpec>& prog,
               std::vector<std::unique_ptr<Cell<SimPlat>>>& cells,
               IdemCtx<SimPlat>& m, std::vector<std::uint32_t>& trace) {
  for (const OpSpec& op : prog) {
    Cell<SimPlat>& c = *cells[static_cast<std::size_t>(op.cell)];
    switch (op.kind) {
      case OpSpec::kLoad:
        trace.push_back(m.load(c));
        break;
      case OpSpec::kStore:
        m.store(c, op.a);
        trace.push_back(op.a);
        break;
      case OpSpec::kCas:
        trace.push_back(m.cas(c, op.a, op.b) ? 1 : 0);
        break;
      case OpSpec::kOnce:
        // Every run proposes its own draw; agreement must make them all
        // adopt the first proposal. The reference models the first-run draw
        // as op.a, so helper h proposes op.a + h (only h=0 can win... but
        // scheduling decides who is first). To keep the reference exact we
        // have all runs propose the same op.a and separately assert the
        // disagreement case in OnceAgreesOnFirstValue above.
        trace.push_back(
            static_cast<std::uint32_t>(m.once(op.a)));
        break;
    }
  }
}

class IdemProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IdemProperty, HelpersMatchSequentialReference) {
  const std::uint64_t seed = GetParam();
  const int kCells = 3;
  const int kLen = 12;
  const int kHelpers = 4;
  const auto prog = random_program(seed, kLen, kCells);

  std::vector<std::uint32_t> ref_mem(kCells, 0);
  const auto ref_trace = reference(prog, ref_mem);

  std::vector<std::unique_ptr<Cell<SimPlat>>> cells;
  for (int i = 0; i < kCells; ++i) {
    cells.push_back(std::make_unique<Cell<SimPlat>>(0u));
  }
  ThunkLog<SimPlat> log;
  std::vector<std::vector<std::uint32_t>> traces(
      static_cast<std::size_t>(kHelpers));

  Simulator sim(seed ^ 0x1234);
  for (int h = 0; h < kHelpers; ++h) {
    sim.add_process([&, h] {
      IdemCtx<SimPlat> m(log, /*tag_base=*/700);  // same for all runs
      interpret(prog, cells, m, traces[static_cast<std::size_t>(h)]);
    });
  }
  UniformSchedule sched(kHelpers, seed * 31 + 7);
  ASSERT_TRUE(sim.run(sched, 10'000'000));

  for (int h = 0; h < kHelpers; ++h) {
    EXPECT_EQ(traces[static_cast<std::size_t>(h)], ref_trace)
        << "helper " << h << " diverged from the sequential reference (seed "
        << seed << ")";
  }
  for (int c = 0; c < kCells; ++c) {
    EXPECT_EQ(cells[static_cast<std::size_t>(c)]->peek(),
              ref_mem[static_cast<std::size_t>(c)])
        << "cell " << c << " final value diverged (seed " << seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdemProperty,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{41}));

}  // namespace
}  // namespace wfl
