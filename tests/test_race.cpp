// Detector self-tests for the vector-clock race & ordering-audit engine
// (check/race.hpp). Two obligations:
//
//   1. Soundness on the clean tree: running the real lock algorithm under
//      CheckedPlat across many seeds — theory mode and the fast path —
//      produces ZERO findings while processing a nontrivial event stream.
//   2. Sensitivity: seeded *model* mutations (the engine pretends a fence
//      was deleted, or an order was weakened — see RaceEngine::Mutation)
//      and one genuine out-of-band write are each caught, with a printed
//      seed+slot reproducer, deterministically.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "wfl/wfl.hpp"

namespace wfl {
namespace {

using race::RaceEngine;
using Mutation = RaceEngine::Mutation;
using Space = LockSpace<CheckedPlat>;

// A small contended workload: every process hammers the same lock set and
// bumps a per-resource counter through the idempotent cell — enough traffic
// to exercise descriptors, helping, EBR reclamation and (in kOff mode) the
// thin-word fast path.
struct CheckedWorkload {
  LockConfig cfg;
  int procs = 4;
  int locks = 2;
  int attempts = 10;
  std::uint64_t seed = 1;
  bool single_lock = false;  // per-attempt single-lock picks (fast path)

  void run() {
    cfg.kappa = procs;
    cfg.max_thunk_steps = 8;
    cfg.c0 = 8.0;
    cfg.c1 = 8.0;
    auto space = std::make_unique<Space>(cfg, procs, locks);
    std::vector<std::unique_ptr<Cell<CheckedPlat>>> count;
    for (int i = 0; i < locks; ++i) {
      count.push_back(std::make_unique<Cell<CheckedPlat>>(0u));
    }
    Simulator sim(seed);
    for (int p = 0; p < procs; ++p) {
      sim.add_process([&, p] {
        auto proc = space->register_process();
        for (int a = 0; a < attempts; ++a) {
          std::vector<std::uint32_t> ids;
          if (single_lock) {
            ids = {static_cast<std::uint32_t>((p + a) % locks)};
          } else {
            ids = {0u, 1u};
          }
          Cell<CheckedPlat>& cnt = *count[ids[0]];
          space->try_locks(proc, ids, [&cnt](IdemCtx<CheckedPlat>& m) {
            const std::uint32_t v = m.load(cnt);
            m.store(cnt, v + 1);
          });
        }
      });
    }
    UniformSchedule sched(procs, seed);
    ASSERT_TRUE(sim.run(sched, 200'000'000))
        << "slots exhausted: " << sim.slots_used();
  }
};

CheckedWorkload theory_clique(std::uint64_t seed) {
  CheckedWorkload w;
  w.cfg.max_locks = 2;
  w.seed = seed;
  return w;
}

CheckedWorkload fastpath_contended(std::uint64_t seed) {
  CheckedWorkload w;
  w.cfg.delay_mode = DelayMode::kOff;
  w.cfg.max_locks = 1;
  w.single_lock = true;
  w.seed = seed;
  return w;
}

std::size_t count_kind(const RaceEngine& eng, const char* kind) {
  std::size_t n = 0;
  for (const race::Finding& f : eng.findings()) {
    if (std::strcmp(f.kind, kind) == 0) ++n;
  }
  return n;
}

std::string dump(const RaceEngine& eng) {
  std::ostringstream os;
  eng.report(os);
  return os.str();
}

// --- 1. Clean tree: zero findings across >= 20 seeds, both modes. ---

TEST(Race, CleanTreeZeroFindingsAcrossSeeds) {
  RaceEngine eng;
  eng.install();
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    CheckedWorkload w = theory_clique(seed);
    w.run();
    EXPECT_TRUE(eng.findings().empty())
        << "theory-mode seed " << seed << ":\n" << dump(eng);
    eng.clear_findings();
  }
  for (std::uint64_t seed = 13; seed <= 24; ++seed) {
    CheckedWorkload w = fastpath_contended(seed);
    w.run();
    EXPECT_TRUE(eng.findings().empty())
        << "fast-path seed " << seed << ":\n" << dump(eng);
    eng.clear_findings();
  }
  // The pass must be vacuous-proof: the hooks really fed the model.
  EXPECT_GT(eng.events(), 100'000u);
}

// --- 2. Mutation: delete the EBR publication-point fence. ---
//
// The engine's structural Dekker check (announce store ... seq_cst fence
// ... verify load) must flag the unfenced window at the verify load.

TEST(Race, DropPublishFenceCaught) {
  RaceEngine eng;
  eng.install();
  eng.set_mutation({Mutation::Kind::kDropFence, race::Site::kEbrPublishFence,
                    std::memory_order_relaxed});
  CheckedWorkload w = theory_clique(42);
  w.run();
  ASSERT_GE(count_kind(eng, "unfenced-announce"), 1u) << dump(eng);
  bool has_repro = false;
  for (const race::Finding& f : eng.findings()) {
    if (f.message.find("seed=42") != std::string::npos) has_repro = true;
  }
  EXPECT_TRUE(has_repro) << dump(eng);
}

// --- 3. Mutation: weaken the thin-word publish CAS to relaxed. ---
//
// thin.publish is the Dekker partner of the slow path's set insert
// (DESIGN.md §5.1); its contract is kSeqCstOnly. A relaxed publish must
// trip the ordering audit on the first fast-path attempt.

TEST(Race, ThinPublishDowngradeCaught) {
  RaceEngine eng;
  eng.install();
  eng.set_mutation({Mutation::Kind::kDowngradeOrder, race::Site::kThinPublish,
                    std::memory_order_relaxed});
  CheckedWorkload w = fastpath_contended(7);
  w.run();
  ASSERT_GE(count_kind(eng, "contract"), 1u) << dump(eng);
  bool named = false;
  for (const race::Finding& f : eng.findings()) {
    if (f.message.find("thin.publish") != std::string::npos &&
        f.message.find("seed=7") != std::string::npos) {
      named = true;
    }
  }
  EXPECT_TRUE(named) << dump(eng);
}

// --- 4. Mutation: weaken the EBR guard-exit store to relaxed. ---
//
// ebr.exit publishes the guard's critical-section reads to the collector
// scan (contract kReleaseStore); relaxed must be flagged on every exit.

TEST(Race, EbrExitDowngradeCaught) {
  RaceEngine eng;
  eng.install();
  eng.set_mutation({Mutation::Kind::kDowngradeOrder, race::Site::kEbrExit,
                    std::memory_order_relaxed});
  CheckedWorkload w = theory_clique(9);
  w.run();
  ASSERT_GE(count_kind(eng, "contract"), 1u) << dump(eng);
  bool named = false;
  for (const race::Finding& f : eng.findings()) {
    if (f.message.find("ebr.exit") != std::string::npos) named = true;
  }
  EXPECT_TRUE(named) << dump(eng);
}

// --- 5. A genuine un-instrumented write: the shadow check. ---
//
// Poke a descriptor-log slot's storage behind the platform's back (a
// stray memcpy over a live thunk log); the next hooked load must report
// a shadow mismatch.

TEST(Race, OutOfBandDescriptorLogWriteCaught) {
  RaceEngine eng;
  eng.install();
  Simulator sim(11);
  sim.add_process([] {
    ThunkLog<CheckedPlat> log;
    ASSERT_EQ(log.agree(0, 5), 5u);  // installs 5, seeds the slot's shadow
    // slots_ is the log's first member and CheckedPlat::Atomic adds no
    // state, so the log's address is slot 0's std::atomic storage.
    static_assert(sizeof(typename CheckedPlat::template Atomic<std::uint64_t>)
                      == sizeof(std::atomic<std::uint64_t>),
                  "poke below assumes the wrapper adds no state");
    auto* rogue = reinterpret_cast<std::atomic<std::uint64_t>*>(&log);
    rogue->store(0xDEADBEEFull, std::memory_order_relaxed);  // bypasses hooks
    (void)log.agree(0, 5);  // replay: the agreement load sees the rogue value
  });
  RoundRobinSchedule sched(1);
  ASSERT_TRUE(sim.run(sched, 1'000'000));
  ASSERT_EQ(count_kind(eng, "shadow"), 1u) << dump(eng);
  EXPECT_NE(eng.findings()[0].message.find("0xdeadbeef"), std::string::npos)
      << dump(eng);
}

// --- 6. Reproducers are deterministic and printed. ---

TEST(Race, DeterministicReproducer) {
  auto once = [] {
    RaceEngine eng;
    eng.install();
    eng.set_mutation({Mutation::Kind::kDropFence,
                      race::Site::kEbrPublishFence,
                      std::memory_order_relaxed});
    CheckedWorkload w = theory_clique(123);
    w.run();
    std::vector<std::string> msgs;
    for (const race::Finding& f : eng.findings()) msgs.push_back(f.message);
    return std::make_pair(msgs, dump(eng));
  };
  const auto a = once();
  const auto b = once();
  ASSERT_FALSE(a.first.empty());
  EXPECT_EQ(a.first, b.first) << "same seed, different findings";
  EXPECT_NE(a.second.find("reproducer: seed=123"), std::string::npos)
      << a.second;
}

}  // namespace
}  // namespace wfl
