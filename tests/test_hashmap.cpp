// LockedHashMap: per-bucket locking semantics against a reference model,
// chain-cap behaviour, the two-bucket atomic swap's invariants under
// contention, and deterministic simulator interleavings.
#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "wfl/wfl.hpp"

namespace wfl {
namespace {

LockConfig map_cfg(int procs) {
  LockConfig cfg;
  cfg.kappa = static_cast<std::uint32_t>(procs) + 1;
  cfg.max_locks = 2;
  cfg.max_thunk_steps = LockedHashMap<RealPlat>::thunk_step_budget();
  cfg.delay_mode = DelayMode::kOff;
  return cfg;
}

TEST(HashMap, PutGetEraseBasics) {
  LockSpace<RealPlat> space(map_cfg(1), 1, 16);
  LockedHashMap<RealPlat> map(space, 16, 256);
  BasicSession proc(space.table());
  EXPECT_EQ(map.put(proc, 1, 100), kMapOk);
  EXPECT_EQ(map.put(proc, 2, 200), kMapOk);
  std::uint32_t v = 0;
  EXPECT_TRUE(map.get(1, &v));
  EXPECT_EQ(v, 100u);
  EXPECT_EQ(map.get_locked(proc, 2, &v), kMapOk);
  EXPECT_EQ(v, 200u);
  EXPECT_EQ(map.get_locked(proc, 3, &v), kMapAbsent);
  EXPECT_EQ(map.put(proc, 1, 111), kMapExists);  // upsert
  EXPECT_TRUE(map.get(1, &v));
  EXPECT_EQ(v, 111u);
  EXPECT_EQ(map.erase(proc, 1), kMapOk);
  EXPECT_EQ(map.erase(proc, 1), kMapAbsent);
  EXPECT_FALSE(map.get(1, &v));
  EXPECT_EQ(map.size(), 1u);
}

TEST(HashMap, SingleBucketChainFillsToCapThenRejects) {
  // One bucket forces all keys into one chain.
  LockSpace<RealPlat> space(map_cfg(1), 1, 1);
  LockedHashMap<RealPlat> map(space, 1, 64);
  BasicSession proc(space.table());
  for (std::uint64_t k = 1; k <= kMaxChain; ++k) {
    EXPECT_EQ(map.put(proc, k, static_cast<std::uint32_t>(k)), kMapOk);
  }
  EXPECT_EQ(map.put(proc, 999, 1), kMapFull);
  // Updating an existing key in a full chain still works.
  EXPECT_EQ(map.put(proc, 3, 33), kMapExists);
  // Erasing one frees a slot for the rejected key.
  EXPECT_EQ(map.erase(proc, 5), kMapOk);
  EXPECT_EQ(map.put(proc, 999, 1), kMapOk);
  EXPECT_EQ(map.size(), kMaxChain);
}

TEST(HashMap, SwapExchangesValues) {
  LockSpace<RealPlat> space(map_cfg(1), 1, 32);
  LockedHashMap<RealPlat> map(space, 32, 64);
  BasicSession proc(space.table());
  ASSERT_EQ(map.put(proc, 10, 1), kMapOk);
  ASSERT_EQ(map.put(proc, 20, 2), kMapOk);
  EXPECT_EQ(map.swap(proc, 10, 20), kMapOk);
  std::uint32_t v = 0;
  EXPECT_TRUE(map.get(10, &v));
  EXPECT_EQ(v, 2u);
  EXPECT_TRUE(map.get(20, &v));
  EXPECT_EQ(v, 1u);
  // Missing keys: no effect, reported absent.
  EXPECT_EQ(map.swap(proc, 10, 99), kMapAbsent);
  EXPECT_TRUE(map.get(10, &v));
  EXPECT_EQ(v, 2u);
  // Self-swap (same key twice) is rejected as n1 == n2.
  EXPECT_EQ(map.swap(proc, 10, 10), kMapAbsent);
}

TEST(HashMap, RandomizedAgainstReferenceModel) {
  LockSpace<RealPlat> space(map_cfg(1), 1, 16);
  LockedHashMap<RealPlat> map(space, 16, 512);
  BasicSession proc(space.table());
  std::map<std::uint64_t, std::uint32_t> model;
  Xoshiro256 rng(42);
  for (int i = 0; i < 800; ++i) {
    const std::uint64_t key = 1 + rng.next_below(60);
    const auto val = static_cast<std::uint32_t>(rng.next_below(1000));
    switch (rng.next_below(3)) {
      case 0: {
        const std::uint32_t r = map.put(proc, key, val);
        if (r == kMapOk) {
          EXPECT_EQ(model.count(key), 0u);
          model[key] = val;
        } else if (r == kMapExists) {
          EXPECT_EQ(model.count(key), 1u);
          model[key] = val;
        }  // kMapFull: model unchanged
        break;
      }
      case 1: {
        const std::uint32_t r = map.erase(proc, key);
        EXPECT_EQ(r == kMapOk, model.erase(key) > 0);
        break;
      }
      default: {
        std::uint32_t v = 0;
        const std::uint32_t r = map.get_locked(proc, key, &v);
        if (model.count(key)) {
          EXPECT_EQ(r, kMapOk);
          EXPECT_EQ(v, model[key]);
        } else {
          EXPECT_EQ(r, kMapAbsent);
        }
      }
    }
  }
  EXPECT_EQ(map.size(), model.size());
  for (const auto& [k, v] : model) {
    std::uint32_t got = 0;
    EXPECT_TRUE(map.get(k, &got));
    EXPECT_EQ(got, v);
  }
}

TEST(HashMap, ConcurrentDisjointKeysAllLand) {
  const int threads = 4;
  // 400 keys over 256 buckets: deterministic max chain for these keys is
  // 6, comfortably under kMaxChain (64 buckets reaches 13 and trips the
  // documented chain cap).
  LockSpace<RealPlat> space(map_cfg(threads), threads, 256);
  LockedHashMap<RealPlat> map(space, 256, 2048);
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      RealPlat::seed_rng(31 + static_cast<std::uint64_t>(t));
      BasicSession proc(space.table());
      for (std::uint64_t i = 0; i < 100; ++i) {
        EXPECT_EQ(map.put(proc, static_cast<std::uint64_t>(t) * 1000 + i,
                          static_cast<std::uint32_t>(i)),
                  kMapOk);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(map.size(), 400u);
}

TEST(HashMap, ConcurrentSwapsConserveValueMultiset) {
  // Swaps permute values among keys; the multiset of values is invariant.
  // Any torn swap (one side applied) would break the permutation.
  const int threads = 4;
  const std::uint64_t nkeys = 16;
  // threads workers + 1 setup process register with the space.
  LockSpace<RealPlat> space(map_cfg(threads + 1), threads + 1, 64);
  LockedHashMap<RealPlat> map(space, 64, 256);
  {
    BasicSession proc(space.table());
    for (std::uint64_t k = 0; k < nkeys; ++k) {
      ASSERT_EQ(map.put(proc, k + 1, static_cast<std::uint32_t>(k + 1)),
                kMapOk);
    }
  }
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      RealPlat::seed_rng(63 + static_cast<std::uint64_t>(t));
      BasicSession proc(space.table());
      Xoshiro256 rng(t * 11 + 1);
      for (int i = 0; i < 400; ++i) {
        const std::uint64_t a = 1 + rng.next_below(nkeys);
        std::uint64_t b = 1 + rng.next_below(nkeys);
        if (b == a) b = 1 + (b % nkeys);
        EXPECT_EQ(map.swap(proc, a, b), a == b ? kMapAbsent : kMapOk);
      }
    });
  }
  for (auto& th : ts) th.join();
  std::vector<std::uint32_t> values;
  for (std::uint64_t k = 1; k <= nkeys; ++k) {
    std::uint32_t v = 0;
    ASSERT_TRUE(map.get(k, &v));
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  for (std::uint64_t k = 0; k < nkeys; ++k) {
    EXPECT_EQ(values[k], static_cast<std::uint32_t>(k + 1));
  }
}

TEST(HashMapSim, MixedChurnUnderStallBurstSchedule) {
  const int procs = 4;
  LockConfig cfg = map_cfg(procs);
  cfg.delay_mode = DelayMode::kTheory;
  cfg.c0 = 4.0;  // small constants keep the sim run short; overruns are
  cfg.c1 = 4.0;  // harmless for this safety-only test
  LockSpace<SimPlat> space(cfg, procs, 8);
  LockedHashMap<SimPlat> map(space, 8, 512);
  Simulator sim(5);
  std::vector<std::map<std::uint64_t, std::uint32_t>> finals(procs);
  for (int p = 0; p < procs; ++p) {
    sim.add_process([&, p] {
      BasicSession proc(space.table());
      Xoshiro256 rng(p * 9 + 2);
      auto& model = finals[static_cast<std::size_t>(p)];
      for (int i = 0; i < 25; ++i) {
        // Disjoint per-process key ranges but shared buckets (8 buckets,
        // many keys): bucket-level contention without key-level races.
        const std::uint64_t key = static_cast<std::uint64_t>(p) * 100 + 1 +
                                  rng.next_below(20);
        if (rng.next_below(2) == 0) {
          const std::uint32_t r =
              map.put(proc, key, static_cast<std::uint32_t>(i));
          if (r != kMapFull) model[key] = static_cast<std::uint32_t>(i);
        } else {
          const std::uint32_t r = map.erase(proc, key);
          EXPECT_EQ(r == kMapOk, model.erase(key) > 0);
        }
      }
    });
  }
  StallBurstSchedule sched(procs, 31, 4000);
  ASSERT_TRUE(sim.run(sched, 2'000'000'000ull));
  std::size_t expect_size = 0;
  for (auto& m : finals) {
    expect_size += m.size();
    for (const auto& [k, v] : m) {
      std::uint32_t got = 0;
      EXPECT_TRUE(map.get(k, &got));
      EXPECT_EQ(got, v);
    }
  }
  EXPECT_EQ(map.size(), expect_size);
}

}  // namespace
}  // namespace wfl
