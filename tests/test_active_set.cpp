// Algorithm 1 (active set) and Algorithm 2 (multi active set).
//
// The linearizability-shaped checks exploit the simulator: because all
// fibers share one thread, plain C++ event logs give a total order of
// invocations/responses, against which we verify the containment rules that
// linearizability (active set) and set regularity (multi set) demand.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "wfl/active/active_set.hpp"
#include "wfl/active/multi_set.hpp"
#include "wfl/platform/real.hpp"
#include "wfl/platform/sim.hpp"
#include "wfl/sim/sim.hpp"

namespace wfl {
namespace {

// A trivially flaggable item for multi-set tests.
struct Item {
  std::uint64_t id = 0;
  RealPlat::Atomic<int> flagged{0};
  bool flag() { return flagged.load() != 0; }
  void set_flag() { flagged.store(1); }
  void clear_flag() { flagged.store(0); }
};

struct SimItem {
  std::uint64_t id = 0;
  SimPlat::Atomic<int> flagged{0};
  bool flag() { return flagged.load() != 0; }
  void set_flag() { flagged.store(1); }
  void clear_flag() { flagged.store(0); }
};

template <typename T>
struct Harness {
  IndexPool<SetSnap<T*>> pool{4096};
  EbrDomain ebr{8};
  SetMem<T*> mem{pool, ebr};
};

TEST(ActiveSet, InsertGetRemoveSequential) {
  Harness<Item> h;
  ActiveSet<RealPlat, Item*> set(4, h.mem);
  const int pid = h.ebr.register_participant();
  Item a, b;

  EbrDomain::Guard g(h.ebr, pid);
  EXPECT_EQ(set.get_set()->count, 0u);
  const int sa = set.insert(&a, pid);
  EXPECT_TRUE(set.get_set()->contains(&a));
  const int sb = set.insert(&b, pid);
  EXPECT_TRUE(set.get_set()->contains(&a));
  EXPECT_TRUE(set.get_set()->contains(&b));
  EXPECT_EQ(set.get_set()->count, 2u);
  set.remove(sa, pid);
  EXPECT_FALSE(set.get_set()->contains(&a));
  EXPECT_TRUE(set.get_set()->contains(&b));
  set.remove(sb, pid);
  EXPECT_EQ(set.get_set()->count, 0u);
}

TEST(ActiveSet, ReinsertAfterRemoveReusesCapacity) {
  Harness<Item> h;
  ActiveSet<RealPlat, Item*> set(2, h.mem);
  const int pid = h.ebr.register_participant();
  Item a, b;
  EbrDomain::Guard g(h.ebr, pid);
  for (int round = 0; round < 50; ++round) {
    const int sa = set.insert(&a, pid);
    const int sb = set.insert(&b, pid);
    set.remove(sa, pid);
    set.remove(sb, pid);
  }
  EXPECT_EQ(set.get_set()->count, 0u);
}

TEST(ActiveSet, TopSlotDrainsViaSentinel) {
  // Regression for the pseudocode's j == C corner case: removing the item
  // in the *top* slot must actually drain it from the snapshots.
  Harness<Item> h;
  ActiveSet<RealPlat, Item*> set(2, h.mem);
  const int pid = h.ebr.register_participant();
  Item a, b;
  EbrDomain::Guard g(h.ebr, pid);
  const int sa = set.insert(&a, pid);  // slot 0
  const int sb = set.insert(&b, pid);  // slot 1 == top
  EXPECT_EQ(sa, 0);
  EXPECT_EQ(sb, 1);
  set.remove(sb, pid);
  EXPECT_FALSE(set.get_set()->contains(&b));
  set.remove(sa, pid);
  EXPECT_EQ(set.get_set()->count, 0u);
}

TEST(ActiveSet, GetSetIsConstantStepCount) {
  Harness<Item> h;
  ActiveSet<SimPlat, Item*> set_unused(2, h.mem);  // silence template
  (void)set_unused;

  // Count steps of get_set under sim with k resident members: must not grow.
  IndexPool<SetSnap<SimItem*>> pool{4096};
  EbrDomain ebr{4};
  SetMem<SimItem*> mem{pool, ebr};
  std::vector<std::uint64_t> costs;
  for (std::uint32_t k : {1u, 4u, 16u}) {
    ActiveSet<SimPlat, SimItem*> set(16, mem);
    const int pid = ebr.register_participant();
    std::vector<std::unique_ptr<SimItem>> items;
    for (std::uint32_t i = 0; i < k; ++i) {
      items.push_back(std::make_unique<SimItem>());
    }
    Simulator sim(1);
    std::uint64_t cost = 0;
    sim.add_process([&] {
      EbrDomain::Guard g(ebr, pid);
      for (std::uint32_t i = 0; i < k; ++i) set.insert(items[i].get(), pid);
      const std::uint64_t before = SimPlat::steps();
      (void)set.get_set();
      cost = SimPlat::steps() - before;
    });
    RoundRobinSchedule rr(1);
    ASSERT_TRUE(sim.run(rr, 1'000'000));
    costs.push_back(cost);
  }
  EXPECT_EQ(costs[0], costs[1]);
  EXPECT_EQ(costs[1], costs[2]);  // O(1) getSet, Theorem 5.2
}

TEST(ActiveSetSim, LinearizabilityContainmentUnderInterleaving) {
  // Workers churn insert/remove on a shared set; a monitor getSets. Using
  // the sim's total order we check:
  //  * items whose insert responded before the getSet and whose remove had
  //    not been invoked must appear;
  //  * items whose remove responded before the getSet must not appear;
  //  * items never inserted must not appear.
  const int kWorkers = 3;
  IndexPool<SetSnap<SimItem*>> pool{65536};
  EbrDomain ebr{8};
  SetMem<SimItem*> mem{pool, ebr};
  ActiveSet<SimPlat, SimItem*> set(kWorkers, mem);

  struct State {
    bool insert_responded = false;
    bool remove_invoked = false;
    bool remove_responded = false;
  };
  std::vector<std::unique_ptr<SimItem>> items(
      static_cast<std::size_t>(kWorkers));
  std::vector<State> state(static_cast<std::size_t>(kWorkers));
  for (auto& it : items) it = std::make_unique<SimItem>();

  Simulator sim(77);
  for (int w = 0; w < kWorkers; ++w) {
    sim.add_process([&, w] {
      const int pid = ebr.register_participant();
      for (int round = 0; round < 30; ++round) {
        EbrDomain::Guard g(ebr, pid);
        State& st = state[static_cast<std::size_t>(w)];
        st.remove_invoked = st.remove_responded = false;
        st.insert_responded = false;
        const int slot = set.insert(items[static_cast<std::size_t>(w)].get(),
                                    pid);
        st.insert_responded = true;
        // hold membership for a few steps
        for (int s = 0; s < 5; ++s) SimPlat::step();
        st.remove_invoked = true;
        set.remove(slot, pid);
        st.remove_responded = true;
      }
    });
  }
  int violations = 0;
  sim.add_process([&] {
    const int pid = ebr.register_participant();
    for (int q = 0; q < 200; ++q) {
      EbrDomain::Guard g(ebr, pid);
      // Capture pre-invocation state (plain reads are safe: one OS thread).
      std::vector<State> pre = state;
      const auto* snap = set.get_set();
      for (int w = 0; w < kWorkers; ++w) {
        const bool present =
            snap->contains(items[static_cast<std::size_t>(w)].get());
        const State& st = pre[static_cast<std::size_t>(w)];
        if (st.insert_responded && !st.remove_invoked && !present) {
          ++violations;  // must have been visible
        }
        if (st.remove_responded && !st.insert_responded && present) {
          ++violations;  // must have been gone
        }
      }
      SimPlat::step();
    }
  });
  UniformSchedule sched(kWorkers + 1, 555);
  ASSERT_TRUE(sim.run(sched, 50'000'000));
  EXPECT_EQ(violations, 0);
}

TEST(MultiActiveSet, FlagGatesVisibility) {
  Harness<Item> h;
  ActiveSet<RealPlat, Item*> s0(4, h.mem), s1(4, h.mem);
  ActiveSet<RealPlat, Item*>* sets[] = {&s0, &s1};
  const int pid = h.ebr.register_participant();
  Item a;
  a.id = 1;
  int slots[2];

  EbrDomain::Guard g(h.ebr, pid);
  // Manually do the multiInsert steps to observe the intermediate state:
  a.clear_flag();
  slots[0] = s0.insert(&a, pid);
  slots[1] = s1.insert(&a, pid);
  MemberList<Item*> out;
  multi_get_set<RealPlat>(s0, out);
  EXPECT_EQ(out.count, 0u) << "unflagged item visible";
  a.set_flag();
  multi_get_set<RealPlat>(s0, out);
  ASSERT_EQ(out.count, 1u);
  EXPECT_EQ(out.items[0], &a);
  multi_get_set<RealPlat>(s1, out);
  ASSERT_EQ(out.count, 1u);

  multi_remove<RealPlat>(&a, sets, slots, 2, pid);
  multi_get_set<RealPlat>(s0, out);
  EXPECT_EQ(out.count, 0u);
  multi_get_set<RealPlat>(s1, out);
  EXPECT_EQ(out.count, 0u);
}

TEST(MultiActiveSet, MultiInsertHelperApi) {
  Harness<Item> h;
  ActiveSet<RealPlat, Item*> s0(4, h.mem), s1(4, h.mem), s2(4, h.mem);
  ActiveSet<RealPlat, Item*>* sets[] = {&s0, &s1, &s2};
  const int pid = h.ebr.register_participant();
  Item a;
  int slots[3];
  EbrDomain::Guard g(h.ebr, pid);
  multi_insert<RealPlat>(&a, sets, slots, 3, pid);
  EXPECT_TRUE(a.flag());
  MemberList<Item*> out;
  for (auto* s : sets) {
    multi_get_set<RealPlat>(*s, out);
    ASSERT_EQ(out.count, 1u);
  }
  multi_remove<RealPlat>(&a, sets, slots, 3, pid);
  EXPECT_FALSE(a.flag());
}

TEST(MultiActiveSetSim, SetRegularity) {
  // Set regularity (Theorem 5.1): a getSet invoked after a multiInsert's
  // flag-set must see the item; one responding before the multiInsert began
  // must not. Overlapping calls may go either way — not checked.
  IndexPool<SetSnap<SimItem*>> pool{65536};
  EbrDomain ebr{4};
  SetMem<SimItem*> mem{pool, ebr};
  ActiveSet<SimPlat, SimItem*> s0(2, mem), s1(2, mem);
  ActiveSet<SimPlat, SimItem*>* sets[] = {&s0, &s1};

  SimItem a;
  enum Phase { kOut, kInserting, kIn, kRemoving };
  Phase phase = kOut;
  int violations = 0;

  Simulator sim(9);
  sim.add_process([&] {
    const int pid = ebr.register_participant();
    int slots[2];
    for (int r = 0; r < 40; ++r) {
      EbrDomain::Guard g(ebr, pid);
      phase = kInserting;
      multi_insert<SimPlat>(&a, sets, slots, 2, pid);
      phase = kIn;
      for (int s = 0; s < 6; ++s) SimPlat::step();
      phase = kRemoving;
      multi_remove<SimPlat>(&a, sets, slots, 2, pid);
      phase = kOut;
      for (int s = 0; s < 6; ++s) SimPlat::step();
    }
  });
  sim.add_process([&] {
    const int pid = ebr.register_participant();
    MemberList<SimItem*> out;
    for (int q = 0; q < 300; ++q) {
      EbrDomain::Guard g(ebr, pid);
      const Phase pre = phase;
      multi_get_set<SimPlat>(s0, out);
      const Phase post = phase;
      bool present = false;
      for (auto* it : out) present |= (it == &a);
      if (pre == kIn && post == kIn && !present) ++violations;
      if (pre == kOut && post == kOut && present) ++violations;
    }
  });
  UniformSchedule sched(2, 1234);
  ASSERT_TRUE(sim.run(sched, 50'000'000));
  EXPECT_EQ(violations, 0);
}

}  // namespace
}  // namespace wfl
