// Algorithm 3 on real OS threads (RealPlat): the same templates that were
// proven out under the simulator, now racing for real. Mutual exclusion is
// checked through lost-update detection and in-CS flags.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "wfl/wfl.hpp"

namespace wfl {
namespace {

using Space = LockSpace<RealPlat>;

struct RealStress {
  int threads = 4;
  int locks = 4;
  int attempts = 300;
  DelayMode delay_mode = DelayMode::kOff;

  void run() {
    LockConfig cfg;
    cfg.kappa = static_cast<std::uint32_t>(threads);
    cfg.max_locks = 2;
    cfg.max_thunk_steps = 8;
    cfg.delay_mode = delay_mode;
    cfg.c0 = 4.0;
    cfg.c1 = 4.0;
    auto space = std::make_unique<Space>(cfg, threads, locks);

    std::vector<std::unique_ptr<Cell<RealPlat>>> busy;
    std::vector<std::unique_ptr<Cell<RealPlat>>> count;
    for (int i = 0; i < locks; ++i) {
      busy.push_back(std::make_unique<Cell<RealPlat>>(0u));
      count.push_back(std::make_unique<Cell<RealPlat>>(0u));
    }
    std::vector<std::atomic<std::uint64_t>> wins_on(
        static_cast<std::size_t>(locks));
    for (auto& w : wins_on) w.store(0);
    std::atomic<std::uint64_t> violations{0};

    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
      ts.emplace_back([&, t] {
        RealPlat::seed_rng(0xBEEF + static_cast<std::uint64_t>(t));
        auto proc = space->register_process();
        Xoshiro256 rng(123 + static_cast<std::uint64_t>(t));
        for (int a = 0; a < attempts; ++a) {
          const std::uint32_t r =
              static_cast<std::uint32_t>(rng.next_below(locks));
          const std::uint32_t r2 =
              static_cast<std::uint32_t>((r + 1) % locks);
          std::uint32_t ids[2] = {std::min(r, r2), std::max(r, r2)};
          Cell<RealPlat>& flag = *busy[r];
          Cell<RealPlat>& cnt = *count[r];
          const bool won = space->try_locks(
              proc, ids, [&flag, &cnt, &violations](IdemCtx<RealPlat>& m) {
                if (m.load(flag) != 0) {
                  violations.fetch_add(1, std::memory_order_relaxed);
                }
                m.store(flag, 1);
                m.store(cnt, m.load(cnt) + 1);
                m.store(flag, 0);
              });
          if (won) {
            wins_on[r].fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& th : ts) th.join();

    EXPECT_EQ(violations.load(), 0u) << "overlapping critical sections";
    for (int r = 0; r < locks; ++r) {
      EXPECT_EQ(count[static_cast<std::size_t>(r)]->peek(),
                wins_on[static_cast<std::size_t>(r)].load())
          << "resource " << r << " lost updates";
    }
    const LockStats s = space->stats();
    EXPECT_EQ(s.attempts,
              static_cast<std::uint64_t>(threads) * attempts);
    EXPECT_GT(s.wins, 0u);
  }
};

TEST(LockReal, StressFourThreadsDelaysOff) {
  RealStress s;
  s.threads = 4;
  s.attempts = 400;
  s.delay_mode = DelayMode::kOff;
  s.run();
}

TEST(LockReal, StressEightThreadsDelaysOff) {
  RealStress s;
  s.threads = 8;
  s.attempts = 150;
  s.delay_mode = DelayMode::kOff;
  s.run();
}

TEST(LockReal, StressWithTheoryDelays) {
  RealStress s;
  s.threads = 4;
  s.attempts = 60;
  s.delay_mode = DelayMode::kTheory;
  s.run();
}

// Wait-freedom smoke on real threads: retry-until-success with a paranoid
// upper bound on retries.
TEST(LockReal, RetryUntilSuccessAllThreadsComplete) {
  LockConfig cfg;
  cfg.kappa = 4;
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 4;
  cfg.delay_mode = DelayMode::kOff;
  auto space = std::make_unique<Space>(cfg, 4, 2);
  Cell<RealPlat> total{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&, t] {
      RealPlat::seed_rng(0xABC + static_cast<std::uint64_t>(t));
      auto proc = space->register_process();
      const std::uint32_t ids[] = {0, 1};
      for (int wins = 0; wins < 50; ++wins) {
        int tries = 0;
        while (!space->try_locks(proc, ids, [&](IdemCtx<RealPlat>& m) {
          m.store(total, m.load(total) + 1);
        })) {
          ASSERT_LT(++tries, 100000);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(total.peek(), 200u);  // 4 threads x 50 wins, exactly once each
}

}  // namespace
}  // namespace wfl
