// Schedule-fuzzing infrastructure tests.
//
// The campaign's headline guarantees are determinism guarantees: a mutant
// is a pure function of (parent, seed), a minimized reproducer is a pure
// function of the failing trace, and a Trace replays bit-identically —
// including when the grant stream is first recorded from a live run and
// materialized into an explicit prefix. These tests pin each property
// directly, plus the on-disk corpus round-trip and the wedge watchdog's
// bounded-failure behavior.
//
// tests/fuzz_corpus/ holds one minimized reproducer per seeded fault the
// campaign is gated on (bench/fuzz_sched.cpp --fault=...). The regression
// tests replay each: the trace must still fail with its fault armed, and
// the SAME schedule must pass with the fault stripped — pinning that the
// finding is caused by the seeded fault, not by the schedule or an oracle
// misfire.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "wfl/fuzz/campaign.hpp"
#include "wfl/fuzz/corpus.hpp"
#include "wfl/fuzz/mutate.hpp"
#include "wfl/fuzz/shrink.hpp"
#include "wfl/fuzz/trace.hpp"
#include "wfl/fuzz/workload.hpp"

#include "test_plat.hpp"

namespace wfl::fuzz {
namespace {

Trace base_trace(WorkloadKind wk) {
  Trace t;
  t.workload = wk;
  t.procs = 4;
  t.locks = 2;
  t.seed = 3;
  t.tail_seed = 0x9E3779B97F4A7C15ULL;
  t.slot_cap = 30000;
  return t;
}

// --- mutator ---------------------------------------------------------------

TEST(FuzzMutate, PureFunctionOfParentAndSeed) {
  Trace parent = base_trace(WorkloadKind::kAsync);
  for (int i = 0; i < 16; ++i) {
    parent.grants.push_back(static_cast<std::uint16_t>(i % 4));
  }
  parent.crashes.push_back({2, 120});
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const Trace a = mutate(parent, seed);
    const Trace b = mutate(parent, seed);
    ASSERT_EQ(a.save_string(), b.save_string()) << "seed " << seed;
  }
}

TEST(FuzzMutate, MutantsStayWellFormed) {
  Trace parent = base_trace(WorkloadKind::kEngine);
  Trace t = parent;
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    t = mutate(t, seed);  // generational chain, not just first-order
    EXPECT_LT(t.crashes.size(), static_cast<std::size_t>(t.procs));
    for (std::uint16_t g : t.grants) EXPECT_LT(g, t.procs);
    for (const auto& c : t.crashes) {
      EXPECT_GE(c.pid, 0);
      EXPECT_LT(c.pid, t.procs);
    }
    // Serialization round-trips every mutant (the corpus relies on the
    // canonical form for dedup).
    Trace back;
    ASSERT_TRUE(back.load_string(t.save_string()));
    EXPECT_TRUE(back == t);
  }
}

TEST(FuzzMutate, FuzzScheduleMatchesExplicitMutate) {
  Trace parent = base_trace(WorkloadKind::kAsync);
  for (int i = 0; i < 32; ++i) {
    parent.grants.push_back(static_cast<std::uint16_t>((i * 7) % 4));
  }
  const std::uint64_t seed = 42;
  FuzzSchedule sched(parent, seed);
  const Trace expect = mutate(parent, seed);
  EXPECT_EQ(sched.trace().save_string(), expect.save_string());
  TraceSchedule ref(expect);
  for (int i = 0; i < 2000; ++i) ASSERT_EQ(sched.next(), ref.next());
}

// --- shrinker --------------------------------------------------------------

TEST(FuzzShrink, DeterministicAndMinimalOnMonotonePredicate) {
  Trace failing = base_trace(WorkloadKind::kEngine);
  for (int i = 0; i < 64; ++i) {
    failing.grants.push_back(static_cast<std::uint16_t>(i % 4));
  }
  failing.crashes.push_back({1, 500});
  failing.crashes.push_back({3, 900});
  // Monotone synthetic predicate (no simulation): "still fails" while the
  // prefix keeps >= 8 grants and >= 1 crash. ddmin over a monotone
  // predicate must reach the boundary exactly.
  const FailPredicate pred = [](const Trace& c) {
    return c.grants.size() >= 8 && !c.crashes.empty();
  };
  ShrinkStats st1, st2;
  const Trace a = shrink(failing, pred, 400, &st1);
  const Trace b = shrink(failing, pred, 400, &st2);
  EXPECT_EQ(a.save_string(), b.save_string());
  EXPECT_EQ(st1.evals, st2.evals);
  EXPECT_EQ(a.grants.size(), 8u);
  EXPECT_EQ(a.crashes.size(), 1u);
}

TEST(FuzzShrink, RespectsBudgetAndSlotCapGate) {
  Trace failing = base_trace(WorkloadKind::kEngine);
  for (int i = 0; i < 64; ++i) failing.grants.push_back(0);
  const FailPredicate always = [](const Trace&) { return true; };
  ShrinkStats st;
  const Trace capped =
      shrink(failing, always, /*budget=*/10, &st, /*shrink_slot_cap=*/true);
  EXPECT_LE(st.evals, 10);
  // With the gate off (wedge findings), the replay budget must survive
  // untouched no matter what the predicate accepts.
  const Trace wedge = shrink(failing, always, 400, nullptr,
                             /*shrink_slot_cap=*/false);
  EXPECT_EQ(wedge.slot_cap, failing.slot_cap);
  (void)capped;
}

// --- record -> replay bit-identity -----------------------------------------

// Materializing a run's recorded grant stream into an explicit prefix
// replays bit-identically: same slot count, same oracle verdict, same
// feature vector (site counters included). Runs on TestPlat, so the
// _checked twin pins the identity under the race auditor as well.
TEST(FuzzTrace, RecordedGrantsReplayBitIdentically) {
  for (const WorkloadKind wk : {WorkloadKind::kEngine, WorkloadKind::kAsync}) {
    const Trace uniform = base_trace(wk);
    Trace materialized = uniform;
    Xoshiro256 tail(uniform.tail_seed);
    for (int i = 0; i < 33000; ++i) {  // past any live run's slot count
      materialized.grants.push_back(static_cast<std::uint16_t>(
          tail.next_below(static_cast<std::uint64_t>(uniform.procs))));
    }
    const RunResult a = run_trace<test::TestPlat>(uniform);
    const RunResult b = run_trace<test::TestPlat>(materialized);
    EXPECT_TRUE(a.ok) << a.failure;
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.slots, b.slots) << workload_name(wk);
    EXPECT_EQ(a.features, b.features) << workload_name(wk);
    ASSERT_LT(a.slots, 33000u);  // the materialized prefix really covered it
  }
}

TEST(FuzzTrace, RecorderCapturesReplayableStream) {
  Trace t = base_trace(WorkloadKind::kEngine);
  t.crashes.push_back({2, 300});
  TraceSchedule inner(t);
  TraceRecorder rec(inner);
  std::vector<int> first;
  for (int i = 0; i < 4000; ++i) first.push_back(rec.next());
  // Recorded grants are post-crash-filter pids, so replaying them through
  // the filter again is the identity: a recorded pid is never a crashed
  // pid at its slot.
  Trace replayed = t;
  replayed.grants.assign(rec.grants().begin(), rec.grants().end());
  TraceSchedule again(replayed);
  for (int i = 0; i < 4000; ++i) ASSERT_EQ(again.next(), first[i]) << i;
}

// --- corpus ----------------------------------------------------------------

TEST(FuzzCorpus, OnDiskRoundTripAndDedup) {
  Corpus c;
  Trace t1 = base_trace(WorkloadKind::kEngine);
  Trace t2 = base_trace(WorkloadKind::kAsync);
  t2.fault = "lost_wake";
  t2.grants = {0, 1, 2, 3, 3, 1};
  t2.crashes.push_back({1, 77});
  EXPECT_TRUE(c.add(t1));
  EXPECT_TRUE(c.add(t2));
  EXPECT_FALSE(c.add(t1));  // canonical-form dedup
  ASSERT_EQ(c.size(), 2u);

  const auto dir = std::filesystem::temp_directory_path() /
                   "wfl_test_fuzz_corpus";
  std::filesystem::remove_all(dir);
  ASSERT_EQ(c.save_dir(dir), 2u);
  Corpus back;
  ASSERT_EQ(back.load_dir(dir), 2u);
  // Order-insensitive equality via the canonical serialized forms.
  std::vector<std::string> want = {t1.save_string(), t2.save_string()};
  std::vector<std::string> got = {back.at(0).save_string(),
                                  back.at(1).save_string()};
  std::sort(want.begin(), want.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(want, got);
  std::filesystem::remove_all(dir);
}

// --- watchdog --------------------------------------------------------------

// A replay that cannot finish within the trace's slot cap must come back
// as a bounded wedge finding — failure text carries the watchdog dump,
// the run stops at the cap (no runaway), and the harness still tears the
// executor down (this test returning is the proof).
// In the _checked twin the globally-installed auditor also observes the
// explicit run_trace<SimPlat> replays below — but its happens-before
// model is only sound over CheckedPlat replays (SimPlat runs emit an
// incomplete event stream, so the audit reports phantom races). Discard
// anything it accumulated across a SimPlat replay; the audited claims in
// this file go through run_trace_checked / TestPlat, which manage the
// engine themselves.
void discard_unaudited_findings() {
  if (race::RaceEngine* eng = race::engine()) eng->clear_findings();
}

TEST(FuzzWorkload, WedgeWatchdogBoundsTheRun) {
  Trace t = base_trace(WorkloadKind::kAsync);
  t.slot_cap = 3000;  // far below the ~8k slots the workload needs
  const RunResult r = run_trace<SimPlat>(t);
  discard_unaudited_findings();
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.wedged);
  EXPECT_EQ(r.failure.rfind("wedge", 0), 0u) << r.failure;
  EXPECT_NE(r.failure.find("watchdog"), std::string::npos) << r.failure;
  EXPECT_EQ(r.slots, t.slot_cap);
}

// --- checked-in reproducer regressions -------------------------------------

std::filesystem::path corpus_dir() {
#ifdef WFL_FUZZ_CORPUS_DIR
  return WFL_FUZZ_CORPUS_DIR;
#else
  return std::filesystem::path("tests") / "fuzz_corpus";
#endif
}

// Every checked-in reproducer must (a) still fail with its recorded fault
// armed — on the plain replay or the checked (race-audited) one, matching
// how the campaign found it — and (b) pass with the fault stripped: the
// schedule alone is innocent.
TEST(FuzzReproducers, EachCorpusTraceStillReproduces) {
  const auto dir = corpus_dir();
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  int seen = 0;
  for (const auto& ent : std::filesystem::directory_iterator(dir)) {
    if (ent.path().extension() != ".trace") continue;
    ++seen;
    const std::string name = ent.path().filename().string();
    Trace t;
    std::ifstream is(ent.path());
    ASSERT_TRUE(t.load(is)) << name;
    ASSERT_FALSE(t.fault.empty()) << name;

    const RunResult plain = run_trace<SimPlat>(t);
    discard_unaudited_findings();
    bool detected = !plain.ok;
    if (!detected) {
      const RunResult checked = run_trace_checked(t);
      detected = !checked.ok;
    }
    EXPECT_TRUE(detected) << name << ": reproducer no longer fails";

    Trace clean = t;
    clean.fault.clear();
    const RunResult ok_run = run_trace<SimPlat>(clean);
    discard_unaudited_findings();
    EXPECT_TRUE(ok_run.ok)
        << name << ": schedule fails even without the fault: "
        << ok_run.failure;
    // The audited form of the same claim: the bit-identical CheckedPlat
    // replay of the fault-stripped schedule is clean under the race
    // engine too.
    const RunResult audited = run_trace_checked(clean);
    EXPECT_TRUE(audited.ok)
        << name << ": audited fault-free replay fails: " << audited.failure;
  }
  EXPECT_GE(seen, 5) << "fuzz corpus went missing from " << dir;
}

}  // namespace
}  // namespace wfl::fuzz
