// Unit tests for the deterministic simulator: fibers, schedules, step
// accounting, replay determinism, and the oblivious-scheduler semantics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "wfl/platform/sim.hpp"
#include "wfl/sim/fiber.hpp"
#include "wfl/sim/sim.hpp"

namespace wfl {
namespace {

TEST(Fiber, RunsYieldsAndResumes) {
  std::string trace;
  Fiber f([&] {
    trace += "a";
    Fiber::yield();
    trace += "b";
    Fiber::yield();
    trace += "c";
  });
  f.resume();
  trace += "1";
  f.resume();
  trace += "2";
  f.resume();
  EXPECT_EQ(trace, "a1b2c");
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, NestedFibersKeepCurrentStraight) {
  std::vector<const Fiber*> seen;
  Fiber inner([&] { seen.push_back(Fiber::current()); });
  Fiber outer([&] {
    seen.push_back(Fiber::current());
    inner.resume();  // resume another fiber from inside a fiber
    seen.push_back(Fiber::current());
  });
  outer.resume();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], seen[2]);  // outer restored as current
  EXPECT_NE(seen[0], seen[1]);
}

TEST(Schedule, RoundRobinCycles) {
  RoundRobinSchedule s(3);
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) order.push_back(s.next());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(Schedule, UniformIsSeedDeterministic) {
  UniformSchedule a(4, 9), b(4, 9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Schedule, WeightedRespectsWeights) {
  WeightedSchedule s({9.0, 1.0}, 3);
  int c0 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (s.next() == 0) ++c0;
  }
  EXPECT_NEAR(static_cast<double>(c0) / n, 0.9, 0.02);
}

TEST(Schedule, StallBurstExcludesVictimWithinBurst) {
  const int procs = 4;
  StallBurstSchedule s(procs, 5, 50);
  // Within any window of 50 draws starting at a burst boundary, exactly one
  // pid must be absent. We verify the weaker invariant that every pid is
  // still scheduled overall (no permanent starvation by construction).
  std::vector<int> counts(procs, 0);
  for (int i = 0; i < 5000; ++i) ++counts[s.next()];
  for (int p = 0; p < procs; ++p) EXPECT_GT(counts[p], 0);
}

TEST(Simulator, CountsStepsPerProcess) {
  Simulator sim(1);
  SimPlat::Atomic<int> x{0};
  sim.add_process([&] {
    for (int i = 0; i < 3; ++i) x.store(i);
  });
  sim.add_process([&] {
    for (int i = 0; i < 5; ++i) (void)x.load();
  });
  RoundRobinSchedule rr(2);
  ASSERT_TRUE(sim.run(rr, 1000));
  EXPECT_EQ(sim.steps_of(0), 3u);
  EXPECT_EQ(sim.steps_of(1), 5u);
}

TEST(Simulator, ObliviousSlotsWastedOnFinishedProcesses) {
  Simulator sim(1);
  SimPlat::Atomic<int> x{0};
  sim.add_process([&] { x.store(1); });                       // 1 step
  sim.add_process([&] { for (int i = 0; i < 9; ++i) x.store(i); });
  RoundRobinSchedule rr(2);
  ASSERT_TRUE(sim.run(rr, 1000));
  // Process 0 finished early; round-robin keeps granting it slots that are
  // wasted, so total slots > total steps.
  EXPECT_GT(sim.slots_used(), sim.steps_of(0) + sim.steps_of(1));
}

TEST(Simulator, MaxSlotsStopsRunaway) {
  Simulator sim(1);
  SimPlat::Atomic<int> x{0};
  sim.add_process([&] {
    for (;;) x.store(1);  // never terminates
  });
  RoundRobinSchedule rr(1);
  EXPECT_FALSE(sim.run(rr, 5000));
  EXPECT_EQ(sim.slots_used(), 5000u);
}

TEST(Simulator, InterleavingFollowsSchedule) {
  // Two processes append their id at every step; the observed interleaving
  // must match the schedule exactly (restricted to live processes).
  Simulator sim(1);
  std::string log;
  SimPlat::Atomic<int> dummy{0};
  for (int p = 0; p < 2; ++p) {
    sim.add_process([&, p] {
      for (int i = 0; i < 4; ++i) {
        dummy.store(0);  // yields before the store executes
        log += static_cast<char>('A' + p);
      }
    });
  }
  RoundRobinSchedule rr(2);
  ASSERT_TRUE(sim.run(rr, 1000));
  EXPECT_EQ(log, "ABABABAB");
}

TEST(Simulator, PerProcessRngIsSeedStable) {
  auto draw = [](std::uint64_t seed) {
    Simulator sim(seed);
    std::vector<std::uint64_t> vals;
    sim.add_process([&] { vals.push_back(SimPlat::rand_u64()); });
    sim.add_process([&] { vals.push_back(SimPlat::rand_u64()); });
    RoundRobinSchedule rr(2);
    EXPECT_TRUE(sim.run(rr, 100));
    return vals;
  };
  const auto a = draw(5);
  const auto b = draw(5);
  const auto c = draw(6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a[0], a[1]);  // distinct processes draw distinct streams
}

TEST(Simulator, StepsApiVisibleInsideProcess) {
  Simulator sim(2);
  std::vector<std::uint64_t> observed;
  SimPlat::Atomic<int> x{0};
  sim.add_process([&] {
    observed.push_back(SimPlat::steps());
    x.store(1);
    x.store(2);
    observed.push_back(SimPlat::steps());
  });
  RoundRobinSchedule rr(1);
  ASSERT_TRUE(sim.run(rr, 100));
  EXPECT_EQ(observed[0], 0u);
  EXPECT_EQ(observed[1], 2u);
}

TEST(Simulator, ExplicitStepConsumesSlot) {
  Simulator sim(3);
  sim.add_process([&] {
    for (int i = 0; i < 10; ++i) SimPlat::step();  // pure delay steps
  });
  RoundRobinSchedule rr(1);
  ASSERT_TRUE(sim.run(rr, 100));
  EXPECT_EQ(sim.steps_of(0), 10u);
}

}  // namespace
}  // namespace wfl
