// Unit, simulator-audit, and stress coverage for the lock-free scheduler
// core (util/work_queue.hpp): the Chase–Lev deque and the MPSC injector.
//
// Four layers:
//   * plain unit tests — owner/thief semantics, capacity growth, and the
//     injector's FIFO + node-recycling (ABA) discipline;
//   * deterministic simulator workloads with fiber yields between queue
//     operations — in the `_checked` twin these run under the global
//     race/ordering engine, so every annotated site in work_queue.hpp is
//     audited against check/ordering_contracts.hpp across seeds (zero
//     findings is enforced by the RaceListener);
//   * a seeded-mutation test, test_race-style: downgrading the steal-top
//     CAS (wq.top_cas, contract kSeqCstOnly) in the engine's model must
//     be flagged with a printed seed reproducer;
//   * real-thread stress sweeps for the TSan job (owner + thieves on a
//     deque, many producers + one consumer on an injector).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "test_plat.hpp"
#include "wfl/check/race.hpp"
#include "wfl/sim/sim.hpp"
#include "wfl/util/work_queue.hpp"

namespace wfl {
namespace {

using test::TestPlat;

struct Item {
  explicit Item(int value) : v(value) {}
  int v;
};

struct Node {
  std::atomic<Node*> q_next{nullptr};
  int v = 0;
};

// --- Chase–Lev deque: plain unit tests ---

TEST(WorkQueue, EmptySteal) {
  ChaseLevDeque<Item*> q;
  EXPECT_EQ(q.steal(), nullptr);
  EXPECT_EQ(q.take(), nullptr);
  Item a(1);
  q.push(&a);
  EXPECT_EQ(q.take(), &a);
  // The drained deque is empty again for both ends.
  EXPECT_EQ(q.take(), nullptr);
  EXPECT_EQ(q.steal(), nullptr);
}

TEST(WorkQueue, OwnerLifoThiefFifo) {
  ChaseLevDeque<Item*> q;
  std::vector<Item> items;
  items.reserve(4);
  for (int i = 0; i < 4; ++i) items.emplace_back(i);
  for (Item& it : items) q.push(&it);
  // The owner takes the newest (bottom), thieves the oldest (top).
  EXPECT_EQ(q.take()->v, 3);
  EXPECT_EQ(q.steal()->v, 0);
  EXPECT_EQ(q.steal()->v, 1);
  EXPECT_EQ(q.take()->v, 2);
  EXPECT_EQ(q.take(), nullptr);
}

TEST(WorkQueue, CapacityGrowth) {
  ChaseLevDeque<Item*> q(2);
  const int kN = 300;
  std::vector<Item> items;
  items.reserve(kN);
  for (int i = 0; i < kN; ++i) items.emplace_back(i);
  // Interleave pushes with a few steals so the live window straddles
  // ring boundaries while it grows.
  int stolen = 0;
  for (int i = 0; i < kN; ++i) {
    q.push(&items[static_cast<std::size_t>(i)]);
    if (i % 7 == 0) stolen += (q.steal() != nullptr) ? 1 : 0;
  }
  EXPECT_GE(q.grows(), 5u);
  EXPECT_GE(q.capacity(), 256u);
  std::vector<bool> seen(kN, false);
  int taken = 0;
  for (Item* it = q.take(); it != nullptr; it = q.take()) {
    ASSERT_FALSE(seen[static_cast<std::size_t>(it->v)]) << it->v;
    seen[static_cast<std::size_t>(it->v)] = true;
    ++taken;
  }
  // Every element surfaced exactly once across both ends.
  EXPECT_EQ(taken + stolen, kN);
}

// --- MPSC injector: plain unit tests ---

TEST(Injector, FifoWithinBatch) {
  MpscInjector<Node> inj;
  Node n[3];
  for (int i = 0; i < 3; ++i) {
    n[i].v = i;
    inj.push(&n[i]);
  }
  EXPECT_FALSE(inj.empty());
  // One producer's pushes come back in push order (stack reversed).
  EXPECT_EQ(inj.pop()->v, 0);
  EXPECT_EQ(inj.pop()->v, 1);
  EXPECT_EQ(inj.pop()->v, 2);
  EXPECT_EQ(inj.pop(), nullptr);
  EXPECT_TRUE(inj.empty());
}

// The classic Treiber-pop ABA: consumer reads head A and A->next, is
// delayed; A is popped, recycled, and pushed back over a new head; the
// consumer's stale CAS(A -> old next) then corrupts the list. This
// injector's consumer NEVER CASes an observed head — it exchanges the
// whole batch out — so recycling nodes through the stack at any rate
// cannot corrupt it. This test churns a tiny arena of recycled nodes
// through many push/pop rounds and checks nothing is lost, duplicated,
// or cycled.
TEST(Injector, RecycledNodeChurnHasNoAbaWindow) {
  MpscInjector<Node> inj;
  Node arena[4];
  for (int i = 0; i < 4; ++i) arena[i].v = i;
  int counts[4] = {0, 0, 0, 0};
  // Keep a rotating subset inside the stack so pushes repeatedly land a
  // recycled node on top of a head that once WAS that node.
  for (Node* n : {&arena[0], &arena[1]}) inj.push(n);
  std::vector<Node*> out;
  int next_in = 2;
  for (int round = 0; round < 1000; ++round) {
    Node* n = inj.pop();
    ASSERT_NE(n, nullptr) << "stack lost a node at round " << round;
    ++counts[n->v];
    inj.push(&arena[static_cast<std::size_t>(next_in)]);
    next_in = n->v;  // the node we just popped is recycled next round
  }
  // Drain: exactly two distinct nodes remain.
  Node* a = inj.pop();
  Node* b = inj.pop();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(inj.pop(), nullptr);
  int total = 2;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 1002);  // conservation: every push popped exactly once
}

// --- Simulator workloads (audited in the _checked twin) ---

// Owner and one thief race for a single element, yielding to the
// deterministic scheduler between every queue operation. Exactly one
// side must win, on every seed.
TEST(WorkQueueSim, LastElementRaceIsExclusive) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ChaseLevDeque<Item*> q;
    Item only(7);
    Item* got_owner = nullptr;
    Item* got_thief = nullptr;
    Simulator sim(seed);
    sim.add_process([&] {
      q.push(&only);
      TestPlat::step();
      got_owner = q.take();
    });
    sim.add_process([&] {
      TestPlat::step();
      // A lost CAS means the element went somewhere; retry until the
      // deque is settled-empty or we won it.
      for (int tries = 0; tries < 4 && got_thief == nullptr; ++tries) {
        got_thief = q.steal();
        TestPlat::step();
      }
    });
    UniformSchedule sched(2, seed);
    ASSERT_TRUE(sim.run(sched, 1'000'000));
    const int winners =
        (got_owner != nullptr ? 1 : 0) + (got_thief != nullptr ? 1 : 0);
    ASSERT_EQ(winners, 1) << "seed " << seed;
    EXPECT_EQ((got_owner != nullptr ? got_owner : got_thief)->v, 7);
  }
}

// Contended churn: one owner pushing/taking, two thieves stealing, a
// small ring so growth happens mid-run, fiber yields between every
// operation. Conservation: every pushed element is harvested exactly
// once. In the _checked twin this is the clean-tree audit of every
// annotated site in work_queue.hpp.
TEST(WorkQueueSim, ContendedChurnConservesElements) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    constexpr int kN = 48;
    ChaseLevDeque<Item*> q(2);
    std::vector<Item> items;
    items.reserve(kN);
    for (int i = 0; i < kN; ++i) items.emplace_back(i);
    std::vector<int> harvested;
    bool done = false;
    Simulator sim(seed);
    sim.add_process([&] {
      for (int i = 0; i < kN; ++i) {
        q.push(&items[static_cast<std::size_t>(i)]);
        TestPlat::step();
        if (i % 3 == 0) {
          Item* it = q.take();
          if (it != nullptr) harvested.push_back(it->v);
          TestPlat::step();
        }
      }
      for (Item* it = q.take(); it != nullptr; it = q.take()) {
        harvested.push_back(it->v);
        TestPlat::step();
      }
      done = true;
    });
    for (int t = 0; t < 2; ++t) {
      sim.add_process([&] {
        while (!done) {
          Item* it = q.steal();
          if (it != nullptr) harvested.push_back(it->v);
          TestPlat::step();
        }
      });
    }
    UniformSchedule sched(3, seed);
    ASSERT_TRUE(sim.run(sched, 10'000'000)) << "seed " << seed;
    // done was set with the deque empty and thieves exit only after it;
    // late in-flight steals (post-owner-drain) can still land, so drain
    // once more for stragglers the owner missed.
    for (Item* it = q.steal(); it != nullptr; it = q.steal()) {
      harvested.push_back(it->v);
    }
    std::sort(harvested.begin(), harvested.end());
    ASSERT_EQ(harvested.size(), static_cast<std::size_t>(kN))
        << "seed " << seed;
    for (int i = 0; i < kN; ++i) {
      ASSERT_EQ(harvested[static_cast<std::size_t>(i)], i)
          << "lost or duplicated element, seed " << seed;
    }
  }
}

// MPSC injector under the simulator: several producer fibers, one
// consumer fiber, yields between operations; FIFO per producer and
// conservation overall.
TEST(WorkQueueSim, InjectorMpscConservesAndOrders) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    constexpr int kProducers = 3;
    constexpr int kPer = 16;
    MpscInjector<Node> inj;
    std::vector<Node> nodes(kProducers * kPer);
    int produced = 0;
    std::vector<int> got;
    Simulator sim(seed);
    for (int p = 0; p < kProducers; ++p) {
      sim.add_process([&, p] {
        for (int i = 0; i < kPer; ++i) {
          Node& n = nodes[static_cast<std::size_t>(p * kPer + i)];
          n.v = p * kPer + i;
          inj.push(&n);
          ++produced;
          TestPlat::step();
        }
      });
    }
    sim.add_process([&] {
      while (got.size() < static_cast<std::size_t>(kProducers * kPer)) {
        Node* n = inj.pop();
        if (n != nullptr) got.push_back(n->v);
        TestPlat::step();
      }
    });
    UniformSchedule sched(kProducers + 1, seed);
    ASSERT_TRUE(sim.run(sched, 10'000'000)) << "seed " << seed;
    ASSERT_EQ(produced, kProducers * kPer);
    // FIFO per producer: each producer's values appear in push order.
    for (int p = 0; p < kProducers; ++p) {
      int last = -1;
      for (int v : got) {
        if (v / kPer != p) continue;
        ASSERT_GT(v, last) << "producer " << p << " reordered, seed "
                           << seed;
        last = v;
      }
    }
    std::vector<int> sorted = got;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < kProducers * kPer; ++i) {
      ASSERT_EQ(sorted[static_cast<std::size_t>(i)], i) << "seed " << seed;
    }
  }
}

// --- Seeded mutation: the audit must catch a weakened steal CAS ---
//
// Only in the plain build: the _checked twin owns the global engine and
// a second install is not supported (test_race runs the same pattern as
// its own binary for the lock-engine sites).
#if !defined(WFL_TEST_CHECKED_PLAT)

std::size_t count_kind(const race::RaceEngine& eng, const char* kind) {
  std::size_t n = 0;
  for (const race::Finding& f : eng.findings()) {
    if (std::string(f.kind) == kind) ++n;
  }
  return n;
}

TEST(WorkQueueMutation, StealTopCasDowngradeCaught) {
  race::RaceEngine eng;
  eng.install();
  eng.set_mutation({race::RaceEngine::Mutation::Kind::kDowngradeOrder,
                    race::Site::kWqTopCas, std::memory_order_relaxed});
  Simulator sim(5);
  sim.add_process([] {
    ChaseLevDeque<Item*> q;
    Item a(1);
    Item b(2);
    Item c(3);
    q.push(&a);
    q.push(&b);
    q.push(&c);
    TestPlat::step();
    EXPECT_NE(q.steal(), nullptr);  // the top CAS the mutation weakens
    EXPECT_NE(q.take(), nullptr);
    EXPECT_NE(q.take(), nullptr);  // last element: take's top CAS too
  });
  RoundRobinSchedule sched(1);
  ASSERT_TRUE(sim.run(sched, 1'000'000));
  ASSERT_GE(count_kind(eng, "contract"), 1u);
  bool named = false;
  for (const race::Finding& f : eng.findings()) {
    if (f.message.find("wq.top_cas") != std::string::npos &&
        f.message.find("seed=5") != std::string::npos) {
      named = true;
    }
  }
  EXPECT_TRUE(named) << "finding must name the site and the seed";
}

#endif  // !WFL_TEST_CHECKED_PLAT

// --- Real-thread stress (the TSan job's target) ---
//
// In the _checked twin these threads are "foreign" to the engine and
// only poison locations (no findings) — cross-thread interleavings are
// TSan's job, which is exactly what this sweep feeds.

TEST(WorkQueueStress, OwnerAndThievesTsanSweep) {
  constexpr int kThieves = 3;
  constexpr int kN = 20000;
  ChaseLevDeque<Item*> q(8);
  std::vector<Item> items;
  items.reserve(kN);
  for (int i = 0; i < kN; ++i) items.emplace_back(i);
  std::atomic<std::uint64_t> harvested_sum{0};
  std::atomic<int> harvested_n{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        Item* it = q.steal();
        if (it != nullptr) {
          harvested_sum.fetch_add(static_cast<std::uint64_t>(it->v),
                                  std::memory_order_relaxed);
          harvested_n.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::uint64_t own_sum = 0;
  int own_n = 0;
  for (int i = 0; i < kN; ++i) {
    q.push(&items[static_cast<std::size_t>(i)]);
    if ((i & 3) == 0) {
      Item* it = q.take();
      if (it != nullptr) {
        own_sum += static_cast<std::uint64_t>(it->v);
        ++own_n;
      }
    }
  }
  for (Item* it = q.take(); it != nullptr; it = q.take()) {
    own_sum += static_cast<std::uint64_t>(it->v);
    ++own_n;
  }
  // The deque looked empty to the owner; straggler thieves may still
  // hold just-stolen items — join first, then reconcile.
  done.store(true, std::memory_order_release);
  for (std::thread& t : thieves) t.join();
  for (Item* it = q.steal(); it != nullptr; it = q.steal()) {
    own_sum += static_cast<std::uint64_t>(it->v);
    ++own_n;
  }
  EXPECT_EQ(own_n + harvested_n.load(), kN);
  EXPECT_EQ(own_sum + harvested_sum.load(),
            static_cast<std::uint64_t>(kN) * (kN - 1) / 2);
}

// drain_all unit semantics: any thread may exchange the shared chain
// out; the owner's private FIFO cache is untouched, so items the owner
// already batched keep coming back in order while the drained chain
// (newest-first) belongs to the drainer.
TEST(Injector, DrainAllTakesSharedChainNotOwnerCache) {
  MpscInjector<Node> inj;
  Node n[4];
  for (int i = 0; i < 4; ++i) n[i].v = i;
  inj.push(&n[0]);
  inj.push(&n[1]);
  ASSERT_EQ(inj.pop()->v, 0);  // reverses {0,1} into the owner cache
  inj.push(&n[2]);
  inj.push(&n[3]);
  // Foreign drain takes ONLY the shared stack: {3 -> 2}, newest first.
  Node* chain = inj.drain_all();
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->v, 3);
  Node* second = chain->q_next.load();
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->v, 2);
  EXPECT_EQ(second->q_next.load(), nullptr);
  // The owner still holds its cached batch, in FIFO order.
  EXPECT_EQ(inj.pop()->v, 1);
  EXPECT_EQ(inj.pop(), nullptr);
  EXPECT_TRUE(inj.empty());
  EXPECT_EQ(inj.drain_all(), nullptr);
}

// Producers vs. a popping owner vs. a foreign drainer (the inbox-steal
// shape from the executor): rival exchanges must get disjoint chains and
// conservation must hold. TSan sweeps the cross-thread interleavings.
TEST(WorkQueueStress, InjectorForeignDrainTsanSweep) {
  constexpr int kProducers = 3;
  constexpr int kPer = 10000;
  MpscInjector<Node> inj;
  std::vector<Node> nodes(kProducers * kPer);
  std::atomic<int> got{0};
  std::vector<bool> owner_seen(kProducers * kPer, false);
  std::vector<bool> thief_seen(kProducers * kPer, false);
  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPer; ++i) {
        Node& n = nodes[static_cast<std::size_t>(p * kPer + i)];
        n.v = p * kPer + i;
        inj.push(&n);
      }
    });
  }
  std::thread thief([&] {
    while (!done.load(std::memory_order_acquire)) {
      Node* chain = inj.drain_all();
      while (chain != nullptr) {
        Node* next = chain->q_next.load(std::memory_order_relaxed);
        ASSERT_FALSE(thief_seen[static_cast<std::size_t>(chain->v)]);
        thief_seen[static_cast<std::size_t>(chain->v)] = true;
        got.fetch_add(1, std::memory_order_relaxed);
        chain = next;
      }
      std::this_thread::yield();
    }
  });
  while (got.load(std::memory_order_relaxed) < kProducers * kPer) {
    Node* n = inj.pop();
    if (n == nullptr) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_FALSE(owner_seen[static_cast<std::size_t>(n->v)]) << n->v;
    owner_seen[static_cast<std::size_t>(n->v)] = true;
    got.fetch_add(1, std::memory_order_relaxed);
  }
  done.store(true, std::memory_order_release);
  thief.join();
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(inj.pop(), nullptr);
  // Disjointness: nothing surfaced on both sides; conservation: all did.
  int total = 0;
  for (int i = 0; i < kProducers * kPer; ++i) {
    const bool o = owner_seen[static_cast<std::size_t>(i)];
    const bool t = thief_seen[static_cast<std::size_t>(i)];
    ASSERT_FALSE(o && t) << "node " << i << " surfaced twice";
    ASSERT_TRUE(o || t) << "node " << i << " lost";
    ++total;
  }
  EXPECT_EQ(total, kProducers * kPer);
}

TEST(WorkQueueStress, InjectorMpscTsanSweep) {
  constexpr int kProducers = 4;
  constexpr int kPer = 10000;
  MpscInjector<Node> inj;
  std::vector<Node> nodes(kProducers * kPer);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPer; ++i) {
        Node& n = nodes[static_cast<std::size_t>(p * kPer + i)];
        n.v = p * kPer + i;
        inj.push(&n);
      }
    });
  }
  std::vector<bool> seen(kProducers * kPer, false);
  int got = 0;
  while (got < kProducers * kPer) {
    Node* n = inj.pop();
    if (n == nullptr) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_FALSE(seen[static_cast<std::size_t>(n->v)]) << n->v;
    seen[static_cast<std::size_t>(n->v)] = true;
    ++got;
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(inj.pop(), nullptr);
}

}  // namespace
}  // namespace wfl
