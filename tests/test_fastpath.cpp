// The contended-path optimizations (DESIGN.md §5): thin-word fast path,
// cooperative helping, and batched submission.
//
// Safety-critical interleavings run under the deterministic simulator —
// revocation races (a thin-word owner crashing at swept slots while a
// contender revokes and helps), help-claim expiry (a crashed claimer must
// not wedge anyone), and the step-for-step equivalence of submit_batch
// against a loop of single submits. The RealPlat tests pin the observable
// contracts: a warm uncontended single-lock attempt decides entirely
// through the thin word (zero descriptor-pool traffic), kTheory executions
// are untouched, and a revoked descriptor cools down through a grace
// period before reuse.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "wfl/wfl.hpp"

#include "test_plat.hpp"

namespace wfl {

using test::TestPlat;
namespace {

using Table = LockTable<RealPlat>;
using SimTable = LockTable<TestPlat>;

LockConfig off_cfg(std::uint32_t kappa, std::uint32_t max_locks = 2,
                   std::uint32_t thunk_steps = 8) {
  LockConfig cfg;
  cfg.kappa = kappa;
  cfg.max_locks = max_locks;
  cfg.max_thunk_steps = thunk_steps;
  cfg.delay_mode = DelayMode::kOff;
  return cfg;
}

// --- fast-path basics (RealPlat) -----------------------------------------

// A warm uncontended single-lock workload must decide every attempt via
// the thin word: fastpath_hits tracks attempts 1:1, no shard's descriptor
// pool is ever touched, the shared freelists see zero transactions, and
// nothing is revoked.
TEST(FastPath, UncontendedHitsAndZeroPoolTraffic) {
  Table t(off_cfg(2, 1), 2, 16, SpaceSizing{.shards = 4});
  ASSERT_TRUE(t.fast_path_enabled());
  auto proc = t.register_process();
  Cell<RealPlat> c{0};
  // Pool construction pushes every slot through the freelist; the attempt
  // window below must add ZERO on top of that.
  const std::uint64_t fl0 = t.freelist_ops();
  const int kAttempts = 500;
  for (int a = 0; a < kAttempts; ++a) {
    const std::uint32_t ids[] = {static_cast<std::uint32_t>(a % 16)};
    ASSERT_TRUE(t.try_locks(proc, ids, [&c](IdemCtx<RealPlat>& m) {
      m.store(c, m.load(c) + 1);
    }));
  }
  const LockStats s = t.stats();
  EXPECT_EQ(s.attempts, static_cast<std::uint64_t>(kAttempts));
  EXPECT_EQ(s.wins, static_cast<std::uint64_t>(kAttempts));
  EXPECT_EQ(s.fastpath_hits, static_cast<std::uint64_t>(kAttempts));
  EXPECT_EQ(s.fastpath_revocations, 0u);
  EXPECT_EQ(c.peek(), static_cast<std::uint32_t>(kAttempts));
  EXPECT_EQ(t.freelist_ops(), fl0) << "fast path touched a shared freelist";
  for (std::uint32_t sh = 0; sh < t.num_shards(); ++sh) {
    EXPECT_EQ(t.shard_desc_free(sh), t.shard_desc_capacity(sh))
        << "fast path allocated a descriptor in shard " << sh;
  }
  for (std::uint32_t id = 0; id < 16; ++id) {
    EXPECT_EQ(t.thin_word_peek(id), 0u) << "thin word leaked on lock " << id;
  }
}

// kTheory executions are bit-identical to the pre-fast-path tree: the
// switch is hard-gated on DelayMode::kOff.
TEST(FastPath, DisabledUnderTheoryDelays) {
  LockConfig cfg = off_cfg(2, 1);
  cfg.delay_mode = DelayMode::kTheory;
  cfg.c0 = 4.0;
  cfg.c1 = 4.0;
  Table t(cfg, 2, 8);
  EXPECT_FALSE(t.fast_path_enabled());
  EXPECT_FALSE(t.cooperative_help_enabled());
  auto proc = t.register_process();
  Cell<RealPlat> c{0};
  const std::uint32_t ids[] = {3};
  ASSERT_TRUE(t.try_locks(proc, ids, [&c](IdemCtx<RealPlat>& m) {
    m.store(c, m.load(c) + 1);
  }));
  EXPECT_EQ(t.stats().fastpath_hits, 0u);
}

TEST(FastPath, DisabledByConfigKnob) {
  LockConfig cfg = off_cfg(2, 1);
  cfg.fast_path = false;
  Table t(cfg, 2, 8);
  EXPECT_FALSE(t.fast_path_enabled());
  auto proc = t.register_process();
  Cell<RealPlat> c{0};
  const std::uint32_t ids[] = {0};
  ASSERT_TRUE(t.try_locks(proc, ids, [&c](IdemCtx<RealPlat>& m) {
    m.store(c, m.load(c) + 1);
  }));
  EXPECT_EQ(t.stats().fastpath_hits, 0u);
  EXPECT_LT(t.shard_desc_free(0), t.shard_desc_capacity(0))
      << "descriptor path not taken";
}

// Multi-lock attempts always take the descriptor path; the fast path is a
// single-lock specialization.
TEST(FastPath, MultiLockAttemptsTakeDescriptorPath) {
  Table t(off_cfg(2, 2), 2, 8);
  auto proc = t.register_process();
  Cell<RealPlat> c{0};
  const std::uint32_t ids[] = {1, 2};
  ASSERT_TRUE(t.try_locks(proc, ids, [&c](IdemCtx<RealPlat>& m) {
    m.store(c, m.load(c) + 1);
  }));
  EXPECT_EQ(t.stats().fastpath_hits, 0u);
  EXPECT_EQ(t.stats().wins, 1u);
}

// --- revocation races under the simulator --------------------------------

struct SimRunResult {
  std::uint64_t wins_recorded = 0;       // survivor + victim returned wins
  std::uint64_t victim_recorded = 0;
  std::uint64_t counted = 0;             // critical-section counter
  std::uint64_t flag_violations = 0;     // CS overlap detector
  std::uint64_t fastpath_hits = 0;
  std::uint64_t fastpath_revocations = 0;
  std::uint64_t help_claim_skips = 0;
  bool survivors_finished = false;
};

// `procs` processes hammer ONE lock with single-lock kOff attempts (all of
// them fast-path candidates: whoever publishes first forces the rest onto
// the descriptor path, which must observe/revoke the thin word). When
// crash_slot > 0, the last process is crashed there — including, across
// the sweep, mid-thunk with the thin word held, the interleaving the
// revocation protocol exists for.
SimRunResult run_contended_sim(int procs, int attempts,
                               std::uint64_t crash_slot, std::uint64_t seed) {
  auto space = std::make_unique<SimTable>(
      off_cfg(static_cast<std::uint32_t>(procs), 1), procs, 4);
  auto busy = std::make_unique<Cell<TestPlat>>(0u);
  auto cnt = std::make_unique<Cell<TestPlat>>(0u);
  std::vector<std::uint64_t> wins(static_cast<std::size_t>(procs), 0);
  std::uint64_t violations = 0;
  const int victim = crash_slot > 0 ? procs - 1 : -1;
  typename SimTable::Process victim_proc{};

  Simulator sim(seed);
  for (int p = 0; p < procs; ++p) {
    sim.add_process([&, p] {
      auto proc = space->register_process();
      if (p == victim) victim_proc = proc;
      int won_count = 0;
      // Retry until `attempts` wins so every process exercises both the
      // fast and the (contended) descriptor path many times.
      while (won_count < attempts) {
        const std::uint32_t ids[] = {0};
        Cell<TestPlat>* flag = busy.get();
        Cell<TestPlat>* counter = cnt.get();
        std::uint64_t* viol = &violations;
        const bool won = space->try_locks(
            proc, ids, [flag, counter, viol](IdemCtx<TestPlat>& m) {
              if (m.load(*flag) != 0) ++*viol;
              m.store(*flag, 1);
              m.store(*counter, m.load(*counter) + 1);
              m.store(*flag, 0);
            });
        if (won) {
          ++won_count;
          ++wins[static_cast<std::size_t>(p)];
        }
      }
    });
  }

  UniformSchedule inner(procs, seed);
  SimRunResult res;
  if (victim >= 0) {
    CrashSchedule sched(inner, procs, {{victim, crash_slot}}, seed ^ 0xBEEF);
    for (;;) {
      bool survivors_done = true;
      for (int p = 0; p < procs - 1; ++p) {
        survivors_done = survivors_done && sim.is_finished(p);
      }
      if (survivors_done) {
        res.survivors_finished = true;
        break;
      }
      if (!sim.run(sched, 400'000'000, sim.finished_count() + 1)) break;
    }
    if (victim_proc.ebr_pid >= 0 && !sim.is_finished(victim)) {
      space->abandon_process(victim_proc);
    }
  } else {
    res.survivors_finished = sim.run(inner, 400'000'000);
  }

  for (int p = 0; p < procs; ++p) {
    res.wins_recorded += wins[static_cast<std::size_t>(p)];
    if (p == victim) res.victim_recorded = wins[static_cast<std::size_t>(p)];
  }
  res.counted = cnt->peek();
  res.flag_violations = violations;
  const LockStats s = space->stats();
  res.fastpath_hits = s.fastpath_hits;
  res.fastpath_revocations = s.fastpath_revocations;
  res.help_claim_skips = s.help_claim_skips;
  return res;
}

// Crash-free contention: every won attempt's critical section runs exactly
// once (counter == wins), sections never overlap, and the sweep actually
// exercised both the fast path and revocations.
TEST(FastPath, ContendedSimConservesAndRevokes) {
  std::uint64_t total_hits = 0;
  std::uint64_t total_revocations = 0;
  std::uint64_t total_claim_skips = 0;
  for (const std::uint64_t seed : {7ull, 21ull, 1234ull}) {
    const SimRunResult r = run_contended_sim(3, 12, 0, seed);
    ASSERT_TRUE(r.survivors_finished);
    EXPECT_EQ(r.flag_violations, 0u) << "overlapping critical sections";
    EXPECT_EQ(r.counted, r.wins_recorded) << "lost or duplicated update";
    total_hits += r.fastpath_hits;
    total_revocations += r.fastpath_revocations;
    total_claim_skips += r.help_claim_skips;
  }
  EXPECT_GT(total_hits, 0u) << "fast path never engaged under the sweep";
  EXPECT_GT(total_revocations, 0u)
      << "contenders never revoked a thin word under the sweep";
  EXPECT_GT(total_claim_skips, 0u)
      << "cooperative helping never ceded a drive to the claim holder";
}

// Determinism: the fast path must not perturb simulator reproducibility.
TEST(FastPath, ContendedSimIsDeterministic) {
  const SimRunResult a = run_contended_sim(3, 8, 0, 99);
  const SimRunResult b = run_contended_sim(3, 8, 0, 99);
  EXPECT_EQ(a.counted, b.counted);
  EXPECT_EQ(a.fastpath_hits, b.fastpath_hits);
  EXPECT_EQ(a.fastpath_revocations, b.fastpath_revocations);
  EXPECT_EQ(a.help_claim_skips, b.help_claim_skips);
}

// The revocation-race sweep: the victim crashes at slots chosen to land
// before, inside, and after its attempts — including holding the thin word
// with its thunk half-run, where a contender must revoke, replay the
// winner's thunk through the idempotence log, and move on. Survivors must
// always finish (no wedge) with exact accounting up to the single
// in-flight attempt.
class FastPathCrashSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(FastPathCrashSweep, SurvivorsFinishAndStayExact) {
  const std::uint64_t crash_slot = std::get<0>(GetParam());
  const auto seed = static_cast<std::uint64_t>(std::get<1>(GetParam()));
  const SimRunResult r = run_contended_sim(3, 10, crash_slot, seed);
  EXPECT_TRUE(r.survivors_finished)
      << "a crashed thin-word owner wedged the lock";
  EXPECT_EQ(r.flag_violations, 0u) << "overlapping critical sections";
  // The victim's one in-flight attempt may have been completed by a
  // helper after the crash (counted but not recorded).
  EXPECT_GE(r.counted, r.wins_recorded);
  EXPECT_LE(r.counted, r.wins_recorded + 1);
}

INSTANTIATE_TEST_SUITE_P(
    PhaseAndSeed, FastPathCrashSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 25, 120, 600,
                                                        3'000, 15'000),
                       ::testing::Values(1, 2, 5)),
    [](const ::testing::TestParamInfo<FastPathCrashSweep::ParamType>& info) {
      return "slot" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// After a revocation the embedded descriptor cools down through a grace
// period — and once it expires, the fast path RESUMES (the cooldown is a
// pause, not a permanent demotion).
TEST(FastPath, CooldownResumesAfterGrace) {
  auto space = std::make_unique<SimTable>(off_cfg(2, 1), 2, 4);
  auto c = std::make_unique<Cell<TestPlat>>(0u);
  std::uint64_t hits_after_contention = 0;

  Simulator sim(31);
  sim.add_process([&] {
    auto proc = space->register_process();
    // Phase 1: contended window (proc 1 racing on the same lock).
    for (int a = 0; a < 200; ++a) {
      const std::uint32_t ids[] = {0};
      space->try_locks(proc, ids, [&](IdemCtx<TestPlat>& m) {
        m.store(*c, m.load(*c) + 1);
      });
    }
    // Phase 2: alone. Descriptor-path attempts keep retiring into the EBR
    // pipeline, so any pending cooldown token drains and the fast path
    // must come back.
    const std::uint64_t hits_before = space->stats().fastpath_hits;
    for (int a = 0; a < 400; ++a) {
      const std::uint32_t ids[] = {0};
      space->try_locks(proc, ids, [&](IdemCtx<TestPlat>& m) {
        m.store(*c, m.load(*c) + 1);
      });
    }
    hits_after_contention = space->stats().fastpath_hits - hits_before;
  });
  sim.add_process([&] {
    auto proc = space->register_process();
    for (int a = 0; a < 150; ++a) {
      const std::uint32_t ids[] = {0};
      space->try_locks(proc, ids, [&](IdemCtx<TestPlat>& m) {
        m.store(*c, m.load(*c) + 1);
      });
    }
  });
  UniformSchedule sched(2, 31);
  ASSERT_TRUE(sim.run(sched, 400'000'000));
  EXPECT_GT(hits_after_contention, 0u)
      << "fast path never resumed after cooldown";
}

// --- cooperative helping --------------------------------------------------

// Under real-thread contention the claim protocol must engage (helpers
// skip redundant drives) while conservation stays exact — the claim is
// advisory and can never change an outcome.
TEST(HelpClaim, EngagesUnderContentionAndConserves) {
  const int threads = 4;
  const int per_thread = 400;
  auto t = std::make_unique<Table>(off_cfg(threads, 1), threads, 2);
  ASSERT_TRUE(t->cooperative_help_enabled());
  Cell<RealPlat> cnt{0};
  std::atomic<std::uint64_t> wins{0};
  std::vector<std::thread> ts;
  for (int k = 0; k < threads; ++k) {
    ts.emplace_back([&, k] {
      RealPlat::seed_rng(0x5EED + static_cast<std::uint64_t>(k));
      auto proc = t->register_process();
      std::uint64_t local = 0;
      for (int a = 0; a < per_thread; ++a) {
        const std::uint32_t ids[] = {0};
        local += t->try_locks(proc, ids, [&cnt](IdemCtx<RealPlat>& m) {
          m.store(cnt, m.load(cnt) + 1);
        });
      }
      wins.fetch_add(local);
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(cnt.peek(), wins.load()) << "lost or duplicated update";
  // Engagement (helps/skips/revocations > 0) is NOT asserted here: on a
  // single-core runner the OS can serialize the threads so completely that
  // no attempt ever overlaps another. The deterministic engagement
  // assertions live in the sim tests above/below.
}

// A crashed process that may hold help claims (it is helping others
// whenever it runs) must not stall anyone: patience-bounded revocation
// means survivors always finish. The contended crash sweep above already
// crashes claimers at arbitrary points; this adds more processes so claims
// are plentiful.
TEST(HelpClaim, CrashedClaimerIsRevoked) {
  for (const std::uint64_t crash_slot : {400ull, 2'000ull, 9'000ull}) {
    const SimRunResult r = run_contended_sim(4, 8, crash_slot, 13);
    EXPECT_TRUE(r.survivors_finished)
        << "a dead claimer wedged the competition at slot " << crash_slot;
    EXPECT_EQ(r.flag_violations, 0u);
    EXPECT_GE(r.counted, r.wins_recorded);
    EXPECT_LE(r.counted, r.wins_recorded + 1);
  }
}

// --- batched submission ---------------------------------------------------

struct BatchSimOut {
  std::uint64_t steps = 0;
  std::uint64_t wins = 0;
  std::uint32_t counters[3] = {};
};

// One process, three single-lock ops over three cells, submitted either as
// a loop of submit() calls or as one submit_batch. The batch's pre-entered
// guard is outside the step model, so the two executions must be
// step-for-step identical.
BatchSimOut run_batch_sim(bool batched, std::uint64_t seed) {
  BatchSimOut out;
  auto space = std::make_unique<SimTable>(off_cfg(2, 2), 2, 8);
  std::vector<std::unique_ptr<Cell<TestPlat>>> cells;
  for (int i = 0; i < 3; ++i) {
    cells.push_back(std::make_unique<Cell<TestPlat>>(0u));
  }
  Simulator sim(seed);
  sim.add_process([&] {
    BasicSession<SimTable> session(*space);
    using Op = PreparedOp<TestPlat>;
    std::vector<Op> ops;
    for (std::uint32_t i = 0; i < 3; ++i) {
      Cell<TestPlat>* cell = cells[i].get();
      const StaticLockSet<1> locks{i};
      ops.push_back(Op(locks, [cell](IdemCtx<TestPlat>& m) {
        m.store(*cell, m.load(*cell) + 1);
      }));
    }
    for (int round = 0; round < 8; ++round) {
      if (batched) {
        const BatchOutcome o = submit_batch(
            session, std::span<const Op>(ops.data(), ops.size()),
            Policy::retry());
        out.wins += o.wins;
      } else {
        for (const Op& op : ops) {
          const Outcome o =
              submit(session, op.locks(), op.armed(), Policy::retry());
          out.wins += o.won ? 1 : 0;
        }
      }
    }
  });
  RoundRobinSchedule sched(1);
  EXPECT_TRUE(sim.run(sched, 100'000'000));
  out.steps = sim.steps_of(0);
  for (int i = 0; i < 3; ++i) out.counters[i] = cells[i]->peek();
  return out;
}

TEST(Batch, StepForStepEquivalentToSubmitLoop) {
  const BatchSimOut loop = run_batch_sim(false, 2022);
  const BatchSimOut batch = run_batch_sim(true, 2022);
  EXPECT_EQ(loop.steps, batch.steps)
      << "submit_batch changed the op-visible step sequence";
  EXPECT_EQ(loop.wins, batch.wins);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(loop.counters[i], batch.counters[i]);
  }
}

TEST(Batch, PerOpOutcomesAndAggregates) {
  Table t(off_cfg(2, 2), 2, 8);
  BasicSession<Table> session(t);
  Cell<RealPlat> a{0}, b{0};
  using Op = PreparedOp<RealPlat>;
  const StaticLockSet<1> la{1};
  const StaticLockSet<2> lab{1, 2};
  Cell<RealPlat>* ap = &a;
  Cell<RealPlat>* bp = &b;
  const Op ops[] = {
      Op(la, [ap](IdemCtx<RealPlat>& m) { m.store(*ap, m.load(*ap) + 1); }),
      Op(lab,
         [ap, bp](IdemCtx<RealPlat>& m) {
           m.store(*ap, m.load(*ap) + 1);
           m.store(*bp, m.load(*bp) + 1);
         }),
      Op(la, [ap](IdemCtx<RealPlat>& m) { m.store(*ap, m.load(*ap) + 2); }),
  };
  Outcome per_op[3];
  const BatchOutcome o =
      submit_batch(session, std::span<const Op>(ops, 3), Policy::retry(),
                   per_op);
  EXPECT_TRUE(static_cast<bool>(o));
  EXPECT_EQ(o.ops, 3u);
  EXPECT_EQ(o.wins, 3u);
  std::uint64_t attempts = 0, steps = 0;
  for (const Outcome& po : per_op) {
    EXPECT_TRUE(po.won);
    attempts += po.attempts;
    steps += po.total_steps;
  }
  EXPECT_EQ(o.attempts, attempts);
  EXPECT_EQ(o.total_steps, steps);
  EXPECT_EQ(a.peek(), 4u);
  EXPECT_EQ(b.peek(), 1u);
}

TEST(Batch, TxnBatchRunsPrograms) {
  Table t(off_cfg(2, 2, 8), 2, 8);
  Session<RealPlat> session(t);
  Cell<RealPlat> x{0}, y{0};
  const std::uint32_t lx[] = {0};
  const std::uint32_t ly[] = {1};
  std::vector<PreparedTxn<RealPlat>> txns;
  TxnBuilder<RealPlat> b1;
  b1.op(lx, [&x](IdemCtx<RealPlat>& m) { m.store(x, m.load(x) + 1); });
  txns.push_back(std::move(b1).build());
  TxnBuilder<RealPlat> b2;
  b2.op(ly, [&y](IdemCtx<RealPlat>& m) { m.store(y, m.load(y) + 10); });
  txns.push_back(std::move(b2).build());
  const BatchOutcome o = submit_txn_batch<RealPlat>(
      session, std::span<PreparedTxn<RealPlat>>(txns.data(), txns.size()),
      Policy::retry());
  EXPECT_EQ(o.wins, 2u);
  EXPECT_EQ(x.peek(), 1u);
  EXPECT_EQ(y.peek(), 10u);
}

// The Bank substrate's batch entry point conserves money under real-thread
// contention — the canonical lost/duplicated-update detector, now through
// submit_batch.
TEST(Batch, BankTransferBatchConserves) {
  const int threads = 4;
  const std::uint32_t accounts = 8;
  BackendConfig bc;
  bc.lock = off_cfg(threads, 2);
  bc.max_procs = threads;
  bc.num_locks = static_cast<int>(accounts);
  auto space = WflBackend<RealPlat>::make_space(bc);
  Bank<WflBackend<RealPlat>> bank(*space, accounts, 1000);
  std::vector<std::thread> ts;
  for (int k = 0; k < threads; ++k) {
    ts.emplace_back([&, k] {
      RealPlat::seed_rng(0xABCD + static_cast<std::uint64_t>(k));
      BasicSession<Table> session(*space);
      Xoshiro256 rng(17 * k + 5);
      using Transfer = Bank<WflBackend<RealPlat>>::Transfer;
      for (int round = 0; round < 40; ++round) {
        std::vector<Transfer> xs;
        for (int i = 0; i < 12; ++i) {
          const auto from =
              static_cast<std::uint32_t>(rng.next_below(accounts));
          auto to = static_cast<std::uint32_t>(rng.next_below(accounts));
          if (to == from) to = (to + 1) % accounts;
          xs.push_back(Transfer{
              from, to, static_cast<std::uint32_t>(rng.next_below(20))});
        }
        const BatchOutcome o = bank.transfer_batch(
            session, std::span<const Transfer>(xs.data(), xs.size()),
            Policy::retry());
        EXPECT_EQ(o.wins, o.ops);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(bank.total_balance(), bank.expected_total());
}

TEST(Batch, HashMapPutBatch) {
  BackendConfig bc;
  bc.lock = off_cfg(2, 2, LockedHashMap<RealPlat>::thunk_step_budget());
  bc.max_procs = 2;
  bc.num_locks = 8;
  auto space = WflBackend<RealPlat>::make_space(bc);
  LockedHashMap<WflBackend<RealPlat>> map(*space, 8, 256);
  BasicSession<Table> session(*space);
  using Put = LockedHashMap<WflBackend<RealPlat>>::Put;
  std::vector<Put> puts;
  for (std::uint64_t k = 0; k < 40; ++k) {
    puts.push_back(Put{k, static_cast<std::uint32_t>(100 + k)});
  }
  puts.push_back(Put{7, 999});  // duplicate key: must report kMapExists
  std::vector<std::uint32_t> results(puts.size(), kMapPending);
  const BatchOutcome o = map.put_batch(
      session, std::span<const Put>(puts.data(), puts.size()),
      results.data());
  EXPECT_EQ(o.wins, o.ops);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(results[i], kMapOk) << "put " << i;
  }
  EXPECT_EQ(results[40], kMapExists);
  std::uint32_t v = 0;
  EXPECT_EQ(map.get_locked(session, 7, &v), kMapOk);
  EXPECT_EQ(v, 999u);
  EXPECT_EQ(map.get_locked(session, 39, &v), kMapOk);
  EXPECT_EQ(v, 139u);
}

}  // namespace
}  // namespace wfl
