// LockedQueue: FIFO semantics, producer/consumer conservation, and the
// atomic cross-queue transfer (one critical section over two queues' locks
// — the op that would deadlock under naive two-lock queues).
#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "wfl/wfl.hpp"

namespace wfl {
namespace {

LockConfig queue_cfg(int procs) {
  LockConfig cfg;
  cfg.kappa = static_cast<std::uint32_t>(procs) + 1;
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 16;
  cfg.delay_mode = DelayMode::kOff;
  return cfg;
}

TEST(Queue, FifoOrderSingleProcess) {
  LockSpace<RealPlat> space(queue_cfg(1), 1, 2);
  LockedQueue<RealPlat> q(space, 0, 1, 64);
  BasicSession proc(space.table());
  for (std::uint32_t i = 1; i <= 10; ++i) q.enqueue(proc, i);
  EXPECT_EQ(q.snapshot().size(), 10u);
  for (std::uint32_t i = 1; i <= 10; ++i) {
    std::uint32_t v = 0;
    ASSERT_EQ(q.dequeue(proc, &v), kQueueOk);
    EXPECT_EQ(v, i);
  }
  std::uint32_t v = 0;
  EXPECT_EQ(q.dequeue(proc, &v), kQueueEmpty);
}

TEST(Queue, EmptyThenRefillKeepsDummyInvariant) {
  LockSpace<RealPlat> space(queue_cfg(1), 1, 2);
  LockedQueue<RealPlat> q(space, 0, 1, 64);
  BasicSession proc(space.table());
  std::uint32_t v = 0;
  EXPECT_EQ(q.dequeue(proc, &v), kQueueEmpty);
  q.enqueue(proc, 7);
  EXPECT_EQ(q.dequeue(proc, &v), kQueueOk);
  EXPECT_EQ(v, 7u);
  EXPECT_EQ(q.dequeue(proc, &v), kQueueEmpty);
  q.enqueue(proc, 8);
  q.enqueue(proc, 9);
  EXPECT_EQ(q.snapshot(), (std::vector<std::uint32_t>{8, 9}));
}

TEST(Queue, ConcurrentProducersConsumersConserveItems) {
  const int producers = 2, consumers = 2;
  const int per_producer = 300;
  LockSpace<RealPlat> space(queue_cfg(producers + consumers),
                            producers + consumers, 2);
  LockedQueue<RealPlat> q(space, 0, 1, 4096);
  std::atomic<std::uint64_t> consumed_sum{0};
  std::atomic<int> consumed_count{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < producers; ++t) {
    ts.emplace_back([&, t] {
      RealPlat::seed_rng(101 + static_cast<std::uint64_t>(t));
      BasicSession proc(space.table());
      for (int i = 1; i <= per_producer; ++i) {
        q.enqueue(proc, static_cast<std::uint32_t>(t * 10000 + i));
      }
    });
  }
  const int total = producers * per_producer;
  for (int t = 0; t < consumers; ++t) {
    ts.emplace_back([&, t] {
      RealPlat::seed_rng(201 + static_cast<std::uint64_t>(t));
      BasicSession proc(space.table());
      std::uint32_t v = 0;
      while (consumed_count.load(std::memory_order_relaxed) < total) {
        if (q.dequeue(proc, &v) == kQueueOk) {
          consumed_sum.fetch_add(v, std::memory_order_relaxed);
          consumed_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  std::uint64_t expect = 0;
  for (int t = 0; t < producers; ++t) {
    for (int i = 1; i <= per_producer; ++i) {
      expect += static_cast<std::uint64_t>(t * 10000 + i);
    }
  }
  EXPECT_EQ(consumed_sum.load(), expect);
  EXPECT_TRUE(q.snapshot().empty());
}

TEST(Queue, PerProducerOrderPreserved) {
  // FIFO per producer: a consumer must see each producer's items in
  // increasing order even when interleaved with the other producer's.
  const int producers = 2;
  const int per_producer = 200;
  LockSpace<RealPlat> space(queue_cfg(producers + 1), producers + 1, 2);
  LockedQueue<RealPlat> q(space, 0, 1, 2048);
  std::vector<std::thread> ts;
  for (int t = 0; t < producers; ++t) {
    ts.emplace_back([&, t] {
      RealPlat::seed_rng(11 + static_cast<std::uint64_t>(t));
      BasicSession proc(space.table());
      for (int i = 1; i <= per_producer; ++i) {
        q.enqueue(proc, static_cast<std::uint32_t>(t * 10000 + i));
      }
    });
  }
  for (auto& th : ts) th.join();
  BasicSession proc(space.table());
  std::vector<std::uint32_t> last(producers, 0);
  std::uint32_t v = 0;
  while (q.dequeue(proc, &v) == kQueueOk) {
    const int t = static_cast<int>(v / 10000);
    const std::uint32_t seq = v % 10000;
    EXPECT_GT(seq, last[static_cast<std::size_t>(t)]);
    last[static_cast<std::size_t>(t)] = seq;
  }
  for (int t = 0; t < producers; ++t) {
    EXPECT_EQ(last[static_cast<std::size_t>(t)],
              static_cast<std::uint32_t>(per_producer));
  }
}

TEST(Queue, TransferMovesFrontAtomically) {
  LockSpace<RealPlat> space(queue_cfg(1), 1, 4);
  LockedQueue<RealPlat> a(space, 0, 1, 64);
  LockedQueue<RealPlat> b(space, 2, 3, 64);
  BasicSession proc(space.table());
  a.enqueue(proc, 1);
  a.enqueue(proc, 2);
  EXPECT_EQ(LockedQueue<RealPlat>::transfer(proc, a, b), kQueueOk);
  EXPECT_EQ(a.snapshot(), (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(b.snapshot(), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(LockedQueue<RealPlat>::transfer(proc, a, b), kQueueOk);
  EXPECT_EQ(LockedQueue<RealPlat>::transfer(proc, a, b), kQueueEmpty);
  EXPECT_EQ(b.snapshot(), (std::vector<std::uint32_t>{1, 2}));
}

TEST(Queue, ConcurrentTransfersConserveTokens) {
  // A ring of queues with transfer workers shuffling tokens around:
  // the total token count and token value-sum must both be conserved —
  // any torn transfer (pop without push) breaks conservation.
  const int threads = 3;
  const int nqueues = 3;
  const int tokens = 30;
  LockSpace<RealPlat> space(queue_cfg(threads + 1), threads + 1,
                            2 * nqueues);
  std::vector<std::unique_ptr<LockedQueue<RealPlat>>> qs;
  for (int i = 0; i < nqueues; ++i) {
    qs.push_back(std::make_unique<LockedQueue<RealPlat>>(
        space, static_cast<std::uint32_t>(2 * i),
        static_cast<std::uint32_t>(2 * i + 1), 4096));
  }
  {
    BasicSession proc(space.table());
    for (int i = 1; i <= tokens; ++i) {
      qs[0]->enqueue(proc, static_cast<std::uint32_t>(i));
    }
  }
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      RealPlat::seed_rng(301 + static_cast<std::uint64_t>(t));
      BasicSession proc(space.table());
      Xoshiro256 rng(t * 5 + 1);
      for (int i = 0; i < 200; ++i) {
        const auto src = static_cast<std::size_t>(rng.next_below(nqueues));
        auto dst = static_cast<std::size_t>(rng.next_below(nqueues));
        if (dst == src) dst = (dst + 1) % nqueues;
        LockedQueue<RealPlat>::transfer(proc, *qs[src], *qs[dst]);
      }
    });
  }
  for (auto& th : ts) th.join();
  std::uint64_t sum = 0;
  std::size_t count = 0;
  for (auto& q : qs) {
    const auto snap = q->snapshot();
    count += snap.size();
    sum = std::accumulate(snap.begin(), snap.end(), sum);
  }
  EXPECT_EQ(count, static_cast<std::size_t>(tokens));
  EXPECT_EQ(sum, static_cast<std::uint64_t>(tokens) * (tokens + 1) / 2);
}

TEST(QueueSim, TransfersUnderSkewedScheduleConserve) {
  const int procs = 3;
  LockConfig cfg = queue_cfg(procs + 1);
  LockSpace<SimPlat> space(cfg, procs + 1, 4);
  LockedQueue<SimPlat> a(space, 0, 1, 512);
  LockedQueue<SimPlat> b(space, 2, 3, 512);
  {
    // Pre-fill outside the simulation (quiescent).
    BasicSession proc(space.table());
    for (int i = 1; i <= 12; ++i) a.enqueue(proc, static_cast<std::uint32_t>(i));
  }
  Simulator sim(9);
  for (int p = 0; p < procs; ++p) {
    sim.add_process([&, p] {
      BasicSession proc(space.table());
      for (int i = 0; i < 15; ++i) {
        if (p % 2 == 0) {
          LockedQueue<SimPlat>::transfer(proc, a, b);
        } else {
          LockedQueue<SimPlat>::transfer(proc, b, a);
        }
      }
    });
  }
  WeightedSchedule sched({1.0, 0.1, 0.6}, 41);
  ASSERT_TRUE(sim.run(sched, 2'000'000'000ull));
  const auto sa = a.snapshot();
  const auto sb = b.snapshot();
  EXPECT_EQ(sa.size() + sb.size(), 12u);
  std::uint64_t sum = std::accumulate(sa.begin(), sa.end(), 0ull);
  sum = std::accumulate(sb.begin(), sb.end(), sum);
  EXPECT_EQ(sum, 78ull);  // 1 + ... + 12
}

}  // namespace
}  // namespace wfl
