// Shared-memory placement + survivor-driven crash recovery (DESIGN.md §10).
//
// The crash tests here are REAL: fork() a worker into its own address
// space, let it park at a chosen point of the descriptor path (announced,
// revealed, or mid-thunk), SIGKILL it, and verify that a survivor's reap
// recovers exactly what the protocol promises — a revealed attempt is
// driven to its decided fate and a won thunk completes exactly once; an
// unrevealed attempt is eliminated; the victim's announcements vanish; and
// the victim's pid is never recycled. The full sweep with baselines under
// the same kill lives in bench/exp_crash_mp.cpp; these are the tier-1
// invariants.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <memory>

#include "wfl/wfl.hpp"

namespace wfl {
namespace {

LockConfig shm_cfg(int procs) {
  LockConfig cfg;
  cfg.kappa = static_cast<std::uint32_t>(procs);
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 8;
  cfg.delay_mode = DelayMode::kOff;
  return cfg;
}

TEST(ShmArenaTest, OffsetsRoundTrip) {
  ShmArena a = ShmArena::create_anon(1u << 20);
  ASSERT_TRUE(a.valid());
  const std::uint64_t off = a.create<std::uint64_t>(std::uint64_t{42});
  EXPECT_EQ(*a.at<std::uint64_t>(off), 42u);

  Offset<std::uint64_t> o{off};
  EXPECT_FALSE(o.null());
  EXPECT_EQ(*o.in(a), 42u);
  EXPECT_EQ(Offset<std::uint64_t>::of(a, a.at<std::uint64_t>(off)).raw, off);

  a.set_root(off);
  EXPECT_EQ(a.root(), off);
  EXPECT_GE(a.generation(), 1u);
}

TEST(ShmArenaTest, NamedCreateAttach) {
  char name[64];
  std::snprintf(name, sizeof(name), "/wfl_test_shm_%d", ::getpid());
  ShmArena owner = ShmArena::create_named(name, 1u << 20);
  const std::uint64_t off = owner.create<std::uint64_t>(std::uint64_t{7});
  owner.set_root(off);
  owner.publish_ready();

  ShmArena view = ShmArena::attach_named(name);
  ASSERT_TRUE(view.valid());
  EXPECT_EQ(view.root(), off);
  EXPECT_EQ(*view.at<std::uint64_t>(view.root()), 7u);
  EXPECT_EQ(view.generation(), 2u) << "attach must bump the generation";
}

TEST(ShmArenaTest, PidProbe) {
  EXPECT_TRUE(shm_pid_alive(static_cast<int>(::getpid())));
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) ::_exit(0);
  int st = 0;
  ASSERT_EQ(::waitpid(child, &st, 0), child);
  EXPECT_FALSE(shm_pid_alive(static_cast<int>(child)));
  EXPECT_FALSE(shm_pid_alive(0));
  EXPECT_FALSE(shm_pid_alive(-1));
}

// Single process, two locks, POD thunks: every win applies its program
// exactly once (both cells move together), losses apply nothing.
TEST(ShmTableTest, AttemptsApplyThunksExactlyOnce) {
  ShmArena a = ShmArena::create_anon(8u << 20);
  auto t = LockTable<RealPlat>::create_in(a, shm_cfg(2), 2, 4);
  auto s = t->open_session();

  const std::uint64_t c0 = a.create<Cell<RealPlat>>(0u);
  const std::uint64_t c1 = a.create<Cell<RealPlat>>(0u);

  ShmThunk th;
  th.op = ShmThunk::kAddCells;
  th.n_cells = 2;
  th.cells[0] = Offset<Cell<RealPlat>>{c0};
  th.cells[1] = Offset<Cell<RealPlat>>{c1};

  std::uint64_t wins = 0;
  const std::uint32_t ids[] = {1, 3};
  for (int i = 0; i < 200; ++i) {
    if (t->try_locks(*s, ids, th)) ++wins;
  }
  EXPECT_EQ(wins, 200u) << "uncontended attempts must all win";
  EXPECT_EQ(a.at<Cell<RealPlat>>(c0)->peek(), wins);
  EXPECT_EQ(a.at<Cell<RealPlat>>(c1)->peek(), wins);
  LockStats st;
  s->stats().accumulate_into(st);
  EXPECT_EQ(st.wins, wins);
  EXPECT_FALSE(t->any_holder(*s));
  t->close_session(*s);
}

// Pids are an audit trail, not a recyclable resource: a closed shm session
// never gets its pid reissued, and the in-process table does the same for
// a process released while parked in a guard.
TEST(ShmTableTest, RetiredPidNeverRecycledShm) {
  ShmArena a = ShmArena::create_anon(8u << 20);
  auto t = LockTable<RealPlat>::create_in(a, shm_cfg(4), 4, 2);

  auto s0 = t->open_session();
  const int pid0 = s0->pid();
  // Churn the pools so any slot reuse would surface before re-open.
  const std::uint64_t c0 = a.create<Cell<RealPlat>>(0u);
  ShmThunk th;
  th.op = ShmThunk::kAddCells;
  th.n_cells = 1;
  th.cells[0] = Offset<Cell<RealPlat>>{c0};
  const std::uint32_t ids[] = {0};
  for (int i = 0; i < 100; ++i) t->try_locks(*s0, ids, th);
  t->close_session(*s0);
  EXPECT_EQ(t->session_state(pid0), kSessClosed);

  auto s1 = t->open_session();
  EXPECT_NE(s1->pid(), pid0) << "closed pid must never be recycled";
  for (int i = 0; i < 100; ++i) t->try_locks(*s1, ids, th);
  EXPECT_EQ(a.at<Cell<RealPlat>>(c0)->peek(), 200u);
  t->close_session(*s1);
}

TEST(ShmTableTest, RetiredPidNeverRecycledInProcess) {
  LockConfig cfg = shm_cfg(3);
  cfg.fast_path = false;  // force the descriptor path through the pools
  LockTable<RealPlat> t(cfg, 3, 4);
  Cell<RealPlat> c{0};
  const std::uint32_t ids[] = {0};

  auto p0 = t.register_process();
  for (int i = 0; i < 200; ++i) {
    t.try_locks(p0, ids,
                [&c](IdemCtx<RealPlat>& m) { m.store(c, m.load(c) + 1); });
  }
  // Crash-parked shape: released while an EBR guard is held.
  t.ebr_enter(p0);
  t.release_process(p0);

  // Churn pool segments with a fresh process, then register again: the
  // parked pid must not come back even after its old slots were recycled.
  auto p1 = t.register_process();
  EXPECT_NE(p1.ebr_pid, p0.ebr_pid);
  for (int i = 0; i < 200; ++i) {
    t.try_locks(p1, ids,
                [&c](IdemCtx<RealPlat>& m) { m.store(c, m.load(c) + 1); });
  }
  t.release_process(p1);
  auto p2 = t.register_process();
  EXPECT_NE(p2.ebr_pid, p0.ebr_pid) << "parked pid recycled";
  EXPECT_EQ(p2.ebr_pid, p1.ebr_pid) << "orderly pid should be reused";
  t.release_process(p2);
}

struct ForkCrashRig {
  ShmArena arena = ShmArena::create_anon(16u << 20);
  std::unique_ptr<ShmLockTable> table;
  std::uint64_t c0 = 0, c1 = 0;
  std::uint64_t trap_flag = 0;  // Offset<std::atomic<uint32>>

  ForkCrashRig() {
    table = LockTable<RealPlat>::create_in(arena, shm_cfg(4), 4, 2);
    c0 = arena.create<Cell<RealPlat>>(0u);
    c1 = arena.create<Cell<RealPlat>>(0u);
    trap_flag = arena.create<std::atomic<std::uint32_t>>();
  }

  ShmThunk thunk(int trap_os_pid = 0) const {
    ShmThunk th;
    th.op = ShmThunk::kAddCells;
    th.n_cells = 2;
    th.cells[0] = Offset<Cell<RealPlat>>{c0};
    th.cells[1] = Offset<Cell<RealPlat>>{c1};
    th.trap_os_pid = trap_os_pid;
    th.trap_flag = Offset<std::atomic<std::uint32_t>>{trap_flag};
    return th;
  }

  std::uint64_t cell0() const { return arena.at<Cell<RealPlat>>(c0)->peek(); }
  std::uint64_t cell1() const { return arena.at<Cell<RealPlat>>(c1)->peek(); }
  std::atomic<std::uint32_t>& flag() const {
    return *arena.at<std::atomic<std::uint32_t>>(trap_flag);
  }

  // Confirm the child died by SIGKILL specifically.
  static void reap_os_child(pid_t child) {
    int st = 0;
    ASSERT_EQ(::waitpid(child, &st, 0), child);
    ASSERT_TRUE(WIFSIGNALED(st));
    ASSERT_EQ(WTERMSIG(st), SIGKILL);
  }
};

// Victim killed REVEALED but undriven (between its priority store and its
// run). The reaper must finish the competition on its behalf: alone on the
// lock, the victim's attempt won, so its thunk completes — exactly once —
// and the lock is free again for survivors.
TEST(ShmCrashTest, RevealedVictimIsDrivenToCompletion) {
  ForkCrashRig rig;
  auto parent = rig.table->open_session();  // pid 0, opened pre-fork

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    auto s = rig.table->open_session();
    s->trap_post_reveal = [] { ::raise(SIGKILL); };
    const std::uint32_t ids[] = {0, 1};
    rig.table->try_locks(*s, ids, rig.thunk());
    ::_exit(1);  // unreachable
  }
  ForkCrashRig::reap_os_child(child);

  EXPECT_EQ(rig.table->reap_dead(*parent), 1);
  EXPECT_EQ(rig.cell0(), 1u) << "victim's won thunk must be completed";
  EXPECT_EQ(rig.cell1(), 1u);
  EXPECT_FALSE(rig.table->any_holder(*parent)) << "lock wedged by corpse";

  // Survivors proceed: the victim's announcements are gone.
  const std::uint32_t ids[] = {0, 1};
  ASSERT_TRUE(rig.table->try_locks(*parent, ids, rig.thunk()));
  EXPECT_EQ(rig.cell0(), 2u);
  EXPECT_EQ(rig.cell1(), 2u);
  EXPECT_EQ(rig.table->reap_dead(*parent), 0) << "reap must be one-shot";
  rig.table->close_session(*parent);
}

// Victim killed ANNOUNCED but unrevealed (inserted, priority still
// pending). No getSet ever surfaced it, so elimination is the only sound
// fate: its thunk must NOT run, and the sets must come back clean.
TEST(ShmCrashTest, UnrevealedVictimIsEliminated) {
  ForkCrashRig rig;
  auto parent = rig.table->open_session();

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    auto s = rig.table->open_session();
    s->trap_pre_reveal = [] { ::raise(SIGKILL); };
    const std::uint32_t ids[] = {0, 1};
    rig.table->try_locks(*s, ids, rig.thunk());
    ::_exit(1);
  }
  ForkCrashRig::reap_os_child(child);

  EXPECT_EQ(rig.table->reap_dead(*parent), 1);
  EXPECT_EQ(rig.cell0(), 0u) << "unrevealed attempt must not be won for it";
  EXPECT_EQ(rig.cell1(), 0u);
  EXPECT_FALSE(rig.table->any_holder(*parent));

  const std::uint32_t ids[] = {0, 1};
  ASSERT_TRUE(rig.table->try_locks(*parent, ids, rig.thunk()));
  EXPECT_EQ(rig.cell0(), 1u);
  EXPECT_EQ(rig.cell1(), 1u);
  rig.table->close_session(*parent);
}

// Victim killed MID-THUNK: it won, applied cell 0 (logged), raised the
// trap flag, and froze until SIGKILL — a partially-applied, partially-
// logged program, with the EBR guard still held. The reaper's replay must
// complete cell 1 without double-applying cell 0 (the agreement log makes
// the replayed prefix write-identical), and the abandoned guard must stop
// pinning the epoch.
TEST(ShmCrashTest, MidThunkVictimCompletesExactlyOnce) {
  ForkCrashRig rig;
  auto parent = rig.table->open_session();

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    auto s = rig.table->open_session();
    const std::uint32_t ids[] = {0, 1};
    rig.table->try_locks(*s, ids,
                         rig.thunk(static_cast<int>(::getpid())));
    ::_exit(1);  // unreachable: the thunk traps and never returns
  }
  // Wait until the child is provably wedged inside its thunk, then kill.
  for (int spins = 0; rig.flag().load(std::memory_order_acquire) == 0;
       ++spins) {
    ASSERT_LT(spins, 200000) << "victim never reached the thunk trap";
    ::usleep(100);
  }
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  ForkCrashRig::reap_os_child(child);

  const std::uint64_t epoch_before = rig.table->epoch();
  EXPECT_EQ(rig.table->reap_dead(*parent), 1);
  EXPECT_EQ(rig.cell0(), 1u) << "logged prefix double-applied on replay";
  EXPECT_EQ(rig.cell1(), 1u) << "suffix of the victim's thunk lost";
  EXPECT_FALSE(rig.table->any_holder(*parent));

  // The corpse's guard no longer pins reclamation: churn must advance the
  // epoch past where the victim froze it.
  const std::uint32_t ids[] = {0, 1};
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(rig.table->try_locks(*parent, ids, rig.thunk()));
  }
  EXPECT_GT(rig.table->epoch(), epoch_before)
      << "abandoned victim still pins the EBR epoch";
  EXPECT_EQ(rig.cell0(), 301u);
  EXPECT_EQ(rig.cell1(), 301u);
  rig.table->close_session(*parent);
}

}  // namespace
}  // namespace wfl
