// HerlihyUniversal baseline: all operations serialize through the
// announce-then-agree frontier; helpers make every announced op complete
// regardless of the schedule (deterministic wait-freedom).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "wfl/wfl.hpp"

namespace wfl {
namespace {

TEST(Herlihy, SequentialOpsExecuteInOrder) {
  HerlihyUniversal<RealPlat> uc(1, 16);
  Cell<RealPlat> x{0};
  std::vector<std::uint64_t> idx;
  for (int i = 0; i < 5; ++i) {
    idx.push_back(uc.execute(0, [&x](IdemCtx<RealPlat>& m) {
      m.store(x, m.load(x) + 1);
    }));
  }
  EXPECT_EQ(x.peek(), 5u);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    EXPECT_EQ(idx[i], i);  // frontier positions are consecutive
  }
  EXPECT_EQ(uc.completed(), 5u);
}

TEST(Herlihy, ConcurrentIncrementsAllApplyExactlyOnce) {
  const int threads = 4;
  const int per_thread = 100;
  HerlihyUniversal<RealPlat> uc(threads,
                                static_cast<std::uint32_t>(per_thread));
  auto x = std::make_unique<Cell<RealPlat>>(0u);
  Cell<RealPlat>* xp = x.get();
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      RealPlat::seed_rng(501 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < per_thread; ++i) {
        uc.execute(t, [xp](IdemCtx<RealPlat>& m) {
          m.store(*xp, m.load(*xp) + 1);
        });
      }
    });
  }
  for (auto& th : ts) th.join();
  // Exactly-once: helpers may replay thunks, but the idempotent log makes
  // every operation count exactly one increment.
  EXPECT_EQ(x->peek(), static_cast<std::uint32_t>(threads * per_thread));
  EXPECT_EQ(uc.completed(), static_cast<std::uint64_t>(threads * per_thread));
}

TEST(Herlihy, LinearizationIndicesAreUnique) {
  const int threads = 3;
  const int per_thread = 50;
  HerlihyUniversal<RealPlat> uc(threads,
                                static_cast<std::uint32_t>(per_thread));
  auto x = std::make_unique<Cell<RealPlat>>(0u);
  Cell<RealPlat>* xp = x.get();
  std::vector<std::vector<std::uint64_t>> seen(threads);
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      RealPlat::seed_rng(601 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < per_thread; ++i) {
        seen[static_cast<std::size_t>(t)].push_back(
            uc.execute(t, [xp](IdemCtx<RealPlat>& m) {
              m.store(*xp, m.load(*xp) + 1);
            }));
      }
    });
  }
  for (auto& th : ts) th.join();
  std::set<std::uint64_t> all;
  for (auto& v : seen) {
    // Per-process linearization indices strictly increase (program order
    // is respected).
    for (std::size_t i = 1; i < v.size(); ++i) EXPECT_LT(v[i - 1], v[i]);
    all.insert(v.begin(), v.end());
  }
  EXPECT_EQ(all.size(), static_cast<std::size_t>(threads * per_thread));
}

TEST(Herlihy, ResetAllowsReuse) {
  HerlihyUniversal<RealPlat> uc(1, 4);
  Cell<RealPlat> x{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      uc.execute(0, [&x](IdemCtx<RealPlat>& m) {
        m.store(x, m.load(x) + 1);
      });
    }
    uc.reset();
  }
  EXPECT_EQ(x.peek(), 12u);
}

TEST(HerlihySim, StalledProcessGetsHelpedToCompletion) {
  // The defining property: a process starved by the scheduler still has
  // its announced op executed by others. Process 1 is scheduled with tiny
  // weight; its ops complete because 0 and 2 help the frontier past them.
  const int procs = 3;
  HerlihyUniversal<SimPlat> uc(procs, 64);
  auto x = std::make_unique<Cell<SimPlat>>(0u);
  Cell<SimPlat>* xp = x.get();
  Simulator sim(17);
  std::vector<int> done(procs, 0);
  for (int p = 0; p < procs; ++p) {
    sim.add_process([&, p] {
      for (int i = 0; i < 10; ++i) {
        uc.execute(p, [xp](IdemCtx<SimPlat>& m) {
          m.store(*xp, m.load(*xp) + 1);
        });
      }
      done[static_cast<std::size_t>(p)] = 1;
    });
  }
  WeightedSchedule sched({1.0, 0.01, 1.0}, 47);
  ASSERT_TRUE(sim.run(sched, 2'000'000'000ull));
  EXPECT_EQ(x->peek(), 30u);
  for (int p = 0; p < procs; ++p) EXPECT_EQ(done[static_cast<std::size_t>(p)], 1);
}

TEST(HerlihySim, DeterministicReplay) {
  auto run_once = [] {
    const int procs = 3;
    HerlihyUniversal<SimPlat> uc(procs, 32);
    auto x = std::make_unique<Cell<SimPlat>>(0u);
    Cell<SimPlat>* xp = x.get();
    Simulator sim(23);
    std::vector<std::uint64_t> firsts(procs, 0);
    for (int p = 0; p < procs; ++p) {
      sim.add_process([&, p] {
        firsts[static_cast<std::size_t>(p)] =
            uc.execute(p, [xp](IdemCtx<SimPlat>& m) {
              m.store(*xp, m.load(*xp) + 1);
            });
      });
    }
    UniformSchedule sched(procs, 29);
    EXPECT_TRUE(sim.run(sched, 2'000'000'000ull));
    return firsts;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace wfl
