// Crash-failure injection: the defining test of wait-freedom.
//
// A "crash" is the oblivious scheduler delaying a process forever
// (CrashSchedule) — the limit case of the model's "any process can be
// arbitrarily delayed". Wait-free locks must let every survivor finish every
// attempt in bounded own-steps no matter where the victim stopped: mid help
// phase, mid insert, pinned in a delay, or after winning with its thunk half
// run (helpers must finish that thunk for mutual exclusion to mean anything).
//
// Accounting across a crash: the victim records each *returned* attempt
// before its next shared-memory step (local code between steps is atomic
// under the simulator), so at most one attempt — the in-flight one — is
// unaccounted. Per-resource counters must match known wins up to that single
// in-flight attempt, and critical-section flags must never collide.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "wfl/wfl.hpp"

#include "test_plat.hpp"

namespace wfl {

using test::TestPlat;
namespace {

using Space = LockSpace<TestPlat>;

// Runs the simulation until every non-victim process finished (or the slot
// budget is exhausted). A plain `required_finishers = procs - victims` is
// not enough: a victim that happens to finish *before* its crash slot
// counts as a finisher and would let run() return while a live survivor is
// still working.
bool run_until_survivors_done(Simulator& sim, Schedule& sched,
                              std::uint64_t max_slots,
                              std::span<const int> victims) {
  for (;;) {
    bool survivors_done = true;
    for (int p = 0; p < sim.process_count(); ++p) {
      const bool is_victim =
          std::find(victims.begin(), victims.end(), p) != victims.end();
      if (!is_victim && !sim.is_finished(p)) survivors_done = false;
    }
    if (survivors_done) return true;
    if (!sim.run(sched, max_slots, sim.finished_count() + 1)) return false;
  }
}

LockConfig crash_cfg(std::uint32_t kappa, std::uint32_t max_locks) {
  LockConfig cfg;
  cfg.kappa = kappa;
  cfg.max_locks = max_locks;
  cfg.max_thunk_steps = 8;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  return cfg;
}

struct CrashRunResult {
  std::uint64_t survivor_wins = 0;
  std::uint64_t victim_recorded_wins = 0;
  std::uint64_t counted = 0;          // sum of per-resource counters
  std::uint64_t flag_violations = 0;
  bool survivors_finished = false;
};

// `procs` processes contend on a clique of `locks` locks (each attempt takes
// lock r and (r+1)%locks); the last process is crashed at `crash_slot`.
CrashRunResult run_with_crash(int procs, int locks, int attempts,
                              std::uint64_t crash_slot, std::uint64_t seed) {
  LockConfig cfg = crash_cfg(static_cast<std::uint32_t>(procs), 2);
  auto space = std::make_unique<Space>(cfg, procs, locks);
  std::vector<std::unique_ptr<Cell<TestPlat>>> busy;
  std::vector<std::unique_ptr<Cell<TestPlat>>> count;
  for (int i = 0; i < locks; ++i) {
    busy.push_back(std::make_unique<Cell<TestPlat>>(0u));
    count.push_back(std::make_unique<Cell<TestPlat>>(0u));
  }

  const int victim = procs - 1;
  std::vector<std::uint64_t> wins(static_cast<std::size_t>(procs), 0);
  std::vector<std::uint64_t> violations(static_cast<std::size_t>(locks), 0);
  typename Space::Process victim_proc{};  // ebr_pid = -1 until registered

  Simulator sim(seed);
  for (int p = 0; p < procs; ++p) {
    sim.add_process([&, p] {
      auto proc = space->register_process();
      if (p == victim) victim_proc = proc;
      Xoshiro256 rng(seed * 7919 + static_cast<std::uint64_t>(p));
      for (int a = 0; a < attempts; ++a) {
        const std::uint32_t r =
            static_cast<std::uint32_t>(rng.next_below(locks));
        const std::uint32_t ids[] = {r, (r + 1) % static_cast<std::uint32_t>(
                                            locks)};
        Cell<TestPlat>& flag = *busy[r];
        Cell<TestPlat>& cnt = *count[r];
        std::uint64_t* viol = &violations[r];
        const bool won = space->try_locks(
            proc, ids, [&flag, &cnt, viol](IdemCtx<TestPlat>& m) {
              if (m.load(flag) != 0) ++*viol;
              m.store(flag, 1);
              const std::uint32_t v = m.load(cnt);
              m.store(cnt, v + 1);
              m.store(flag, 0);
            });
        // Local bookkeeping: runs atomically with try_locks' return (no
        // shared-memory step in between), so a crash cannot split them.
        if (won) ++wins[static_cast<std::size_t>(p)];
      }
    });
  }

  UniformSchedule inner(procs, seed);
  CrashSchedule sched(inner, procs, {{victim, crash_slot}}, seed ^ 0xDEAD);
  const int victims[] = {victim};
  const bool ok = run_until_survivors_done(sim, sched, 600'000'000, victims);
  // The victim may be parked inside an EBR guard forever; release it on its
  // behalf so domain teardown (and any post-crash reclamation) can proceed.
  if (victim_proc.ebr_pid >= 0 && !sim.is_finished(victim)) {
    space->abandon_process(victim_proc);
  }

  CrashRunResult res;
  res.survivors_finished = ok;
  for (int p = 0; p < procs; ++p) {
    if (p == victim) {
      res.victim_recorded_wins = wins[static_cast<std::size_t>(p)];
    } else {
      res.survivor_wins += wins[static_cast<std::size_t>(p)];
      EXPECT_TRUE(sim.is_finished(p)) << "survivor " << p << " did not finish";
    }
  }
  for (int r = 0; r < locks; ++r) {
    res.counted += count[static_cast<std::size_t>(r)]->peek();
    res.flag_violations += violations[static_cast<std::size_t>(r)];
  }
  return res;
}

// Crash slots chosen to land in qualitatively different phases of an
// attempt: almost immediately, during early helping/insertion, around the
// first reveals, and deep into steady-state competition.
class CrashSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(CrashSweep, SurvivorsFinishAndStayMutuallyExcluded) {
  const std::uint64_t crash_slot = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  const CrashRunResult r =
      run_with_crash(/*procs=*/4, /*locks=*/3, /*attempts=*/12, crash_slot,
                     static_cast<std::uint64_t>(seed));
  EXPECT_TRUE(r.survivors_finished) << "wait-freedom violated by a crash";
  EXPECT_EQ(r.flag_violations, 0u) << "overlapping critical sections";
  // Exactly-once accounting with one in-flight attempt of slack: every
  // counted critical section corresponds to a known win, except possibly
  // the victim's un-returned attempt (which helpers may have completed).
  const std::uint64_t known = r.survivor_wins + r.victim_recorded_wins;
  EXPECT_GE(r.counted, known);
  EXPECT_LE(r.counted, known + 1);
  EXPECT_GT(r.survivor_wins, 0u) << "survivors made no progress";
}

INSTANTIATE_TEST_SUITE_P(
    PhaseAndSeed, CrashSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 50, 500, 5'000,
                                                        50'000, 500'000),
                       ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<CrashSweep::ParamType>& info) {
      return "slot" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// Two victims crashing at different times; the remaining processes must
// still finish everything and keep safety.
TEST(Crash, TwoSimultaneousCrashesTolerated) {
  const int procs = 6;
  LockConfig cfg = crash_cfg(6, 2);
  Space space(cfg, procs, 2);
  Cell<TestPlat> cnt(0u);
  std::vector<std::uint64_t> wins(static_cast<std::size_t>(procs), 0);
  std::vector<typename Space::Process> procs_of(
      static_cast<std::size_t>(procs));

  Simulator sim(11);
  for (int p = 0; p < procs; ++p) {
    sim.add_process([&, p] {
      auto proc = space.register_process();
      procs_of[static_cast<std::size_t>(p)] = proc;
      const std::uint32_t ids[] = {0, 1};
      for (int a = 0; a < 10; ++a) {
        const bool won =
            space.try_locks(proc, ids, [&cnt](IdemCtx<TestPlat>& m) {
              const std::uint32_t v = m.load(cnt);
              m.store(cnt, v + 1);
            });
        if (won) ++wins[static_cast<std::size_t>(p)];
      }
    });
  }
  UniformSchedule inner(procs, 11);
  CrashSchedule sched(inner, procs, {{4, 2'000}, {5, 40'000}}, 13);
  const int victims[] = {4, 5};
  ASSERT_TRUE(run_until_survivors_done(sim, sched, 600'000'000, victims));
  for (const int v : victims) {
    if (procs_of[static_cast<std::size_t>(v)].ebr_pid >= 0 &&
        !sim.is_finished(v)) {
      space.abandon_process(procs_of[static_cast<std::size_t>(v)]);
    }
  }

  std::uint64_t known = 0;
  for (int p = 0; p < procs; ++p) {
    if (p < procs - 2) {
      EXPECT_TRUE(sim.is_finished(p));
    }
    known += wins[static_cast<std::size_t>(p)];
  }
  EXPECT_GE(cnt.peek(), known);
  EXPECT_LE(cnt.peek(), known + 2);  // one in-flight attempt per victim
}

// The dining-philosophers headline: a crashed philosopher's neighbors are
// not starved. Every surviving philosopher completes all its attempts and
// eats at least once, even though the victim sits "hungry" forever between
// them. A blocking protocol cannot pass this test if the victim crashes
// while holding a chopstick; see exp_crash for that comparison.
TEST(Crash, PhilosopherNeighborsOfCrashedStillEat) {
  const int n = 6;
  LockConfig cfg = crash_cfg(2, 2);  // ring: kappa = 2 per chopstick
  Space space(cfg, n, n);
  std::vector<std::unique_ptr<Cell<TestPlat>>> meals;
  for (int i = 0; i < n; ++i) {
    meals.push_back(std::make_unique<Cell<TestPlat>>(0u));
  }
  std::vector<std::uint64_t> eaten(static_cast<std::size_t>(n), 0);
  std::vector<typename Space::Process> procs_of(static_cast<std::size_t>(n));

  Simulator sim(23);
  for (int p = 0; p < n; ++p) {
    sim.add_process([&, p] {
      auto proc = space.register_process();
      procs_of[static_cast<std::size_t>(p)] = proc;
      const auto left = static_cast<std::uint32_t>(p);
      const auto right = static_cast<std::uint32_t>((p + 1) % n);
      const std::uint32_t ids[] = {left, right};
      Cell<TestPlat>& my_meals = *meals[static_cast<std::size_t>(p)];
      for (int a = 0; a < 40; ++a) {
        const bool won =
            space.try_locks(proc, ids, [&my_meals](IdemCtx<TestPlat>& m) {
              const std::uint32_t v = m.load(my_meals);
              m.store(my_meals, v + 1);
            });
        if (won) ++eaten[static_cast<std::size_t>(p)];
      }
    });
  }
  const int victim = 2;
  UniformSchedule inner(n, 23);
  CrashSchedule sched(inner, n, {{victim, 30'000}}, 29);
  const int victims[] = {victim};
  ASSERT_TRUE(run_until_survivors_done(sim, sched, 900'000'000, victims));
  if (procs_of[victim].ebr_pid >= 0 && !sim.is_finished(victim)) {
    space.abandon_process(procs_of[victim]);
  }

  for (int p = 0; p < n; ++p) {
    if (p == victim) continue;
    EXPECT_TRUE(sim.is_finished(p)) << "philosopher " << p;
    EXPECT_GT(eaten[static_cast<std::size_t>(p)], 0u)
        << "philosopher " << p << " starved by the crash";
  }
}

// A crash inside a delay segment must be as harmless as one inside a work
// segment: the victim holds no EBR guard there, so reclamation keeps
// flowing and survivors' pools do not balloon. (The work-segment crash case
// is exercised by the sweep above; this pins the guard-release design
// decision documented in lock_space.hpp.)
TEST(Crash, CrashInsideDelayDoesNotStallReclamation) {
  const int procs = 4;
  LockConfig cfg = crash_cfg(4, 2);
  Space space(cfg, procs, 2);
  Cell<TestPlat> cnt(0u);

  std::vector<typename Space::Process> procs_of(
      static_cast<std::size_t>(procs));
  Simulator sim(31);
  for (int p = 0; p < procs; ++p) {
    sim.add_process([&, p] {
      auto proc = space.register_process();
      procs_of[static_cast<std::size_t>(p)] = proc;
      const std::uint32_t ids[] = {0, 1};
      const int rounds = p == procs - 1 ? 4 : 60;
      for (int a = 0; a < rounds; ++a) {
        space.try_locks(proc, ids, [&cnt](IdemCtx<TestPlat>& m) {
          const std::uint32_t v = m.load(cnt);
          m.store(cnt, v + 1);
        });
      }
    });
  }
  // T0 for this config is 8·16·4·8 = 4096 own-steps, so by global slot
  // 6000 the victim (scheduled ~1/4 of slots) is almost surely inside its
  // first or second delay segment. The exact phase does not matter for the
  // assertion; the sweep test covers the other phases.
  UniformSchedule inner(procs, 31);
  CrashSchedule sched(inner, procs, {{procs - 1, 6'000}}, 37);
  const int victims[] = {procs - 1};
  ASSERT_TRUE(run_until_survivors_done(sim, sched, 600'000'000, victims));
  if (procs_of[procs - 1].ebr_pid >= 0 && !sim.is_finished(procs - 1)) {
    space.abandon_process(procs_of[procs - 1]);
  }
  for (int p = 0; p < procs - 1; ++p) {
    EXPECT_TRUE(sim.is_finished(p));
  }
  EXPECT_GT(cnt.peek(), 0u);
}

// CrashSchedule itself must be oblivious and well-formed: decisions are a
// pure function of construction data and the slot index.
TEST(CrashSchedule, NeverSchedulesCrashedProcessAfterItsSlot) {
  UniformSchedule inner(5, 41);
  CrashSchedule sched(inner, 5, {{1, 100}, {3, 200}}, 43);
  for (std::uint64_t slot = 0; slot < 5'000; ++slot) {
    const int pick = sched.next();
    ASSERT_GE(pick, 0);
    ASSERT_LT(pick, 5);
    if (slot >= 100) ASSERT_NE(pick, 1) << "slot " << slot;
    if (slot >= 200) ASSERT_NE(pick, 3) << "slot " << slot;
  }
}

TEST(CrashSchedule, DeterministicReplay) {
  auto draw = [] {
    UniformSchedule inner(4, 7);
    CrashSchedule sched(inner, 4, {{0, 50}}, 9);
    std::vector<int> picks;
    for (int i = 0; i < 1'000; ++i) picks.push_back(sched.next());
    return picks;
  };
  EXPECT_EQ(draw(), draw());
}

}  // namespace
}  // namespace wfl
