// Test platform selector: the simulator test matrix is written against
// wfl::test::TestPlat, which is SimPlat by default and CheckedPlat when the
// target is compiled with -DWFL_TEST_CHECKED_PLAT (the `_checked` twins in
// tests/CMakeLists.txt). The checked twins re-run the same workloads, on the
// same seeds and schedules, under the vector-clock race and ordering-audit
// engine (check/race.hpp) — a listener fails any test whose run produced a
// finding, so "clean tree, zero findings" is enforced test-by-test.
#pragma once

#include "wfl/platform/checked.hpp"
#include "wfl/platform/sim.hpp"

#if defined(WFL_TEST_CHECKED_PLAT)

#include <gtest/gtest.h>

#include <iostream>

#include "wfl/check/race.hpp"

namespace wfl::test {

using TestPlat = CheckedPlat;

// One engine per test binary, installed at static init on the main thread
// (the thread that owns the simulator; see race.hpp's threading contract).
inline race::RaceEngine& checked_engine() {
  static race::RaceEngine engine;
  return engine;
}

class RaceListener : public ::testing::EmptyTestEventListener {
 public:
  explicit RaceListener(race::RaceEngine& e) : eng_(&e) {}

  void OnTestEnd(const ::testing::TestInfo&) override {
    if (eng_->findings().empty()) return;
    eng_->report(std::cerr);
    ADD_FAILURE() << "race/ordering engine reported "
                  << eng_->findings().size()
                  << " finding(s); see the [wfl-race] report above "
                  << "(reproduce with the printed seed)";
    eng_->clear_findings();
  }

 private:
  race::RaceEngine* eng_;
};

struct CheckedInit {
  CheckedInit() {
    checked_engine().install();
    ::testing::UnitTest::GetInstance()->listeners().Append(
        new RaceListener(checked_engine()));  // gtest takes ownership
  }
};
inline CheckedInit g_checked_init{};

}  // namespace wfl::test

#else  // !WFL_TEST_CHECKED_PLAT

namespace wfl::test {
using TestPlat = SimPlat;
}  // namespace wfl::test

#endif
