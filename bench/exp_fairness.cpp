// E2 — Theorem 6.9: every tryLock attempt succeeds with probability at
// least 1/C_p (C_p = Σ_{ℓ in lock set} κ_ℓ), against an oblivious scheduler
// and adaptive players.
//
// Workloads:
//   * clique(κ, L): κ processes repeatedly attempt the same L locks —
//     C_p = κ·L, the worst case the theorem prices;
//   * ring(n): dining-philosophers topology — κ = L = 2, C_p = 4, so the
//     floor is the paper's famous 1/4.
// Schedules: uniform random and stall-burst (both oblivious). The table
// reports the measured rate, its Wilson 99% interval, and the floor.
#include <cstdio>
#include <memory>
#include <vector>

#include "wfl/util/cli.hpp"
#include "wfl/util/table.hpp"
#include "wfl/wfl.hpp"

namespace {

using namespace wfl;
using Space = LockSpace<SimPlat>;

struct Row {
  std::string workload, schedule;
  std::uint32_t c_p;
  SuccessRate rate;
  std::uint64_t overruns;
};

Row run_clique(std::uint32_t kappa, std::uint32_t L, const char* sched_name,
               int attempts, std::uint64_t seed) {
  LockConfig cfg;
  cfg.kappa = kappa;
  cfg.max_locks = L;
  cfg.max_thunk_steps = 2;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  auto space = std::make_unique<Space>(cfg, static_cast<int>(kappa),
                                       static_cast<int>(L));
  Row row;
  row.workload = "clique k=" + std::to_string(kappa) + " L=" +
                 std::to_string(L);
  row.schedule = sched_name;
  row.c_p = kappa * L;

  Simulator sim(seed);
  std::vector<SuccessRate> per(kappa);
  for (std::uint32_t p = 0; p < kappa; ++p) {
    sim.add_process([&, p] {
      auto proc = space->register_process();
      std::vector<std::uint32_t> ids;
      for (std::uint32_t l = 0; l < L; ++l) ids.push_back(l);
      for (int a = 0; a < attempts; ++a) {
        per[p].add(space->try_locks(proc, ids, typename Space::Thunk{}));
      }
    });
  }
  std::unique_ptr<Schedule> sched;
  if (std::string(sched_name) == "uniform") {
    sched = std::make_unique<UniformSchedule>(static_cast<int>(kappa),
                                              seed ^ 0xBEEF);
  } else {
    sched = std::make_unique<StallBurstSchedule>(static_cast<int>(kappa),
                                                 seed ^ 0xBEEF, 4096);
  }
  WFL_CHECK(sim.run(*sched, 8'000'000'000ull));
  for (auto& pr : per) row.rate.merge(pr);
  const auto s = space->stats();
  row.overruns = s.t0_overruns + s.t1_overruns;
  return row;
}

Row run_ring(int n, const char* sched_name, int attempts,
             std::uint64_t seed) {
  LockConfig cfg;
  cfg.kappa = 2;
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 2;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  auto space = std::make_unique<Space>(cfg, n, n);
  Row row;
  row.workload = "ring n=" + std::to_string(n);
  row.schedule = sched_name;
  row.c_p = 4;

  Simulator sim(seed);
  std::vector<SuccessRate> per(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    sim.add_process([&, p] {
      auto proc = space->register_process();
      Xoshiro256 rng(seed + static_cast<std::uint64_t>(p) * 3 + 1);
      const auto [l, r] = forks_of(p, n);
      const std::uint32_t ids[] = {l, r};
      for (int a = 0; a < attempts; ++a) {
        per[static_cast<std::size_t>(p)].add(
            space->try_locks(proc, ids, typename Space::Thunk{}));
        const std::uint64_t think = rng.next_below(64);
        for (std::uint64_t s2 = 0; s2 < think; ++s2) SimPlat::step();
      }
    });
  }
  std::unique_ptr<Schedule> sched;
  if (std::string(sched_name) == "uniform") {
    sched = std::make_unique<UniformSchedule>(n, seed ^ 0xF00D);
  } else {
    sched = std::make_unique<StallBurstSchedule>(n, seed ^ 0xF00D, 4096);
  }
  WFL_CHECK(sim.run(*sched, 8'000'000'000ull));
  for (auto& pr : per) row.rate.merge(pr);
  const auto s = space->stats();
  row.overruns = s.t0_overruns + s.t1_overruns;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int attempts = static_cast<int>(cli.flag_int("attempts", 150));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.flag_int("seed", 7));
  cli.done();

  std::printf("E2: fairness — per-attempt success rate vs the 1/C_p floor "
              "(Theorem 6.9)\n\n");

  std::vector<Row> rows;
  rows.push_back(run_clique(2, 1, "uniform", attempts * 2, seed + 1));
  rows.push_back(run_clique(4, 1, "uniform", attempts * 2, seed + 2));
  rows.push_back(run_clique(8, 1, "uniform", attempts, seed + 3));
  rows.push_back(run_clique(4, 2, "uniform", attempts, seed + 4));
  rows.push_back(run_clique(4, 2, "stall-burst", attempts, seed + 5));
  rows.push_back(run_clique(8, 2, "uniform", attempts / 2, seed + 6));
  rows.push_back(run_ring(8, "uniform", attempts, seed + 7));
  rows.push_back(run_ring(8, "stall-burst", attempts, seed + 8));
  rows.push_back(run_ring(16, "uniform", attempts / 2, seed + 9));

  Table t({"workload", "schedule", "attempts", "rate", "wilson99-",
           "wilson99+", "floor 1/C_p", "floor held", "overruns"});
  bool all_ok = true;
  for (const auto& r : rows) {
    const double floor = 1.0 / r.c_p;
    // The floor "holds" when the Wilson upper bound clears it — i.e. the
    // data cannot refute rate >= floor at 99% confidence.
    const bool held = r.rate.wilson_upper() >= floor;
    all_ok = all_ok && held && r.overruns == 0;
    t.cell(r.workload).cell(r.schedule).cell(r.rate.trials())
        .cell(r.rate.rate(), 3).cell(r.rate.wilson_lower(), 3)
        .cell(r.rate.wilson_upper(), 3).cell(floor, 3)
        .cell(held ? "yes" : "NO").cell(r.overruns);
    t.end_row();
  }
  t.print();
  std::printf("\nE2 verdict: %s\n",
              all_ok ? "all floors held (and zero delay overruns)"
                     : "FLOOR VIOLATION — investigate");
  return all_ok ? 0 : 1;
}
