// E6 — Theorem 4.2: the idempotence simulation has *constant* overhead per
// memory operation.
//
// Measures raw atomic operations against the same operation sequence
// executed through IdemCtx (first run) and through a full helper replay
// (the helping path). The paper's claim is an O(1) factor; the measured
// factors are recorded in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <atomic>

#include "bench_json.hpp"
#include "wfl/idem/cell.hpp"
#include "wfl/idem/idem.hpp"
#include "wfl/platform/real.hpp"

namespace {

using wfl::Cell;
using wfl::IdemCtx;
using wfl::RealPlat;
using wfl::ThunkLog;

constexpr int kOpsPerThunk = 16;

// Baseline: the same mix (load, add, store) on a raw std::atomic.
void BM_RawAtomicOps(benchmark::State& state) {
  std::atomic<std::uint32_t> cell{0};
  for (auto _ : state) {
    for (int i = 0; i < kOpsPerThunk / 2; ++i) {
      const std::uint32_t v = cell.load(std::memory_order_seq_cst);
      cell.store(v + 1, std::memory_order_seq_cst);
    }
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerThunk);
}
BENCHMARK(BM_RawAtomicOps);

// Same mix through the idempotence construction (first/only run).
void BM_IdemFirstRun(benchmark::State& state) {
  Cell<RealPlat> cell{0};
  for (auto _ : state) {
    ThunkLog<RealPlat> log;
    IdemCtx<RealPlat> m(log, 1000);
    for (int i = 0; i < kOpsPerThunk / 2; ++i) {
      const std::uint32_t v = m.load(cell);
      m.store(cell, v + 1);
    }
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerThunk);
}
BENCHMARK(BM_IdemFirstRun);

// The helping path: replaying an already-finished thunk against its log
// (every agreement is already decided; physical ops all no-op).
void BM_IdemHelperReplay(benchmark::State& state) {
  Cell<RealPlat> cell{0};
  ThunkLog<RealPlat> log;
  {
    IdemCtx<RealPlat> m(log, 1000);
    for (int i = 0; i < kOpsPerThunk / 2; ++i) {
      const std::uint32_t v = m.load(cell);
      m.store(cell, v + 1);
    }
  }
  for (auto _ : state) {
    IdemCtx<RealPlat> m(log, 1000);
    for (int i = 0; i < kOpsPerThunk / 2; ++i) {
      const std::uint32_t v = m.load(cell);
      m.store(cell, v + 1);
    }
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerThunk);
}
BENCHMARK(BM_IdemHelperReplay);

// CAS through the construction (two log slots per op).
void BM_IdemCas(benchmark::State& state) {
  Cell<RealPlat> cell{0};
  std::uint32_t v = 0;
  for (auto _ : state) {
    ThunkLog<RealPlat> log;
    IdemCtx<RealPlat> m(log, 2000);
    for (int i = 0; i < kOpsPerThunk; ++i) {
      benchmark::DoNotOptimize(m.cas(cell, v, v + 1));
      ++v;
    }
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerThunk);
}
BENCHMARK(BM_IdemCas);

void BM_RawCas(benchmark::State& state) {
  std::atomic<std::uint32_t> cell{0};
  std::uint32_t v = 0;
  for (auto _ : state) {
    for (int i = 0; i < kOpsPerThunk; ++i) {
      std::uint32_t expect = v;
      benchmark::DoNotOptimize(cell.compare_exchange_strong(
          expect, v + 1, std::memory_order_seq_cst));
      ++v;
    }
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerThunk);
}
BENCHMARK(BM_RawCas);

}  // namespace

// Machine-comparable wfl-bench-v1 JSON on stdout (see bench_json.hpp).
WFL_BENCH_JSON_MAIN();
