// E14 — substrate micro-costs: the pool, reclamation and idempotence-log
// primitives every tryLock attempt is built from. These are the "constant
// factors" behind substitution #2 in DESIGN.md (pool/EBR operations are
// not counted as model steps); this table keeps us honest that they are
// in fact small constants, not hidden O(n) work.
#include <benchmark/benchmark.h>

#include <memory>

#include "wfl/idem/cell.hpp"
#include "wfl/idem/idem.hpp"
#include "wfl/mem/arena.hpp"
#include "wfl/mem/ebr.hpp"
#include "wfl/platform/real.hpp"

namespace {

using namespace wfl;  // NOLINT: bench file, local scope

void BM_PoolAllocFree(benchmark::State& state) {
  IndexPool<std::uint64_t> pool(1024);
  for (auto _ : state) {
    const std::uint32_t idx = pool.alloc();
    benchmark::DoNotOptimize(pool.at(idx));
    pool.free(idx);
  }
}
BENCHMARK(BM_PoolAllocFree);

void BM_PoolAllocFreeBatch64(benchmark::State& state) {
  // Batched alloc keeps 64 slots live — exercises freelist traffic beyond
  // the single-hot-slot case.
  IndexPool<std::uint64_t> pool(1024);
  std::uint32_t idx[64];
  for (auto _ : state) {
    for (auto& i : idx) i = pool.alloc();
    for (const auto i : idx) pool.free(i);
  }
}
BENCHMARK(BM_PoolAllocFreeBatch64);

void BM_PoolGrowthColdStart(benchmark::State& state) {
  // Cost of demand growth: drain a small pool far past its initial
  // capacity once per iteration.
  for (auto _ : state) {
    state.PauseTiming();
    IndexPool<std::uint64_t> pool(256);
    std::vector<std::uint32_t> held;
    held.reserve(4096);
    state.ResumeTiming();
    for (int i = 0; i < 4096; ++i) held.push_back(pool.alloc());
    benchmark::DoNotOptimize(held.data());
    state.PauseTiming();
    for (const auto i : held) pool.free(i);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_PoolGrowthColdStart)->Unit(benchmark::kMicrosecond);

void BM_EbrEnterExit(benchmark::State& state) {
  EbrDomain ebr(1);
  const int pid = ebr.register_participant();
  for (auto _ : state) {
    ebr.enter(pid);
    ebr.exit(pid);
  }
}
BENCHMARK(BM_EbrEnterExit);

void BM_EbrRetireCycle(benchmark::State& state) {
  IndexPool<std::uint64_t> pool(4096);
  EbrDomain ebr(1);
  const int pid = ebr.register_participant();
  static IndexPool<std::uint64_t>* gpool = nullptr;
  gpool = &pool;
  for (auto _ : state) {
    const std::uint32_t idx = pool.alloc();
    ebr.enter(pid);
    ebr.exit(pid);
    ebr.retire(
        pid, &pool, idx, +[](void* ctx, std::uint32_t h) {
          static_cast<IndexPool<std::uint64_t>*>(ctx)->free(h);
        });
  }
}
BENCHMARK(BM_EbrRetireCycle);

void BM_CellRawOps(benchmark::State& state) {
  Cell<RealPlat> cell{1};
  for (auto _ : state) {
    const std::uint64_t raw = cell.raw_load();
    benchmark::DoNotOptimize(raw);
    cell.raw_cas(raw, cell_pack(cell_value(raw) + 1, cell_tag(raw) + 1));
  }
}
BENCHMARK(BM_CellRawOps);

void BM_ThunkLogAgreeFresh(benchmark::State& state) {
  // First-arrival agreement: CAS + load per slot (the common case for the
  // owner's run).
  ThunkLog<RealPlat> log;
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.agree(i, 42));
    if (++i == kThunkLogCap) {
      state.PauseTiming();
      log.reset();
      i = 0;
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_ThunkLogAgreeFresh);

void BM_ThunkLogAgreeDecided(benchmark::State& state) {
  // Helper-replay agreement: slot already decided, pure load.
  ThunkLog<RealPlat> log;
  log.agree(0, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.agree(0, 43));
  }
}
BENCHMARK(BM_ThunkLogAgreeDecided);

}  // namespace

BENCHMARK_MAIN();
