// E3 — the dining philosophers special case (§1, §3): with wait-free locks
// each attempt to eat succeeds w.p. >= 1/4 in O(1) steps, *independent of
// the table size*, and neighbors of a starved philosopher are unaffected
// because they help it rather than wait for it.
//
// Two experiments:
//   (a) scaling: n ∈ {4..32}, uniform schedule — wflock's per-attempt
//       success rate and steps/meal must stay flat in n; Lehmann–Rabin's
//       rounds/meal stays flat too under a *fair* scheduler (this is not
//       where it breaks);
//   (b) starvation: philosopher 0 is scheduled 200x less often (oblivious
//       weighted schedule). Under Lehmann–Rabin its neighbor can block on a
//       fork the sleeping victim holds — steps-to-meal explodes. Under
//       wflock the neighbor helps the victim's attempt to a decision and
//       moves on: its steps/meal stay near the fair-schedule value. This is
//       the paper's core motivation, measured.
#include <cstdio>
#include <memory>
#include <vector>

#include "wfl/util/cli.hpp"
#include "wfl/util/table.hpp"
#include "wfl/wfl.hpp"

namespace {

using namespace wfl;
using Space = LockSpace<SimPlat>;

LockConfig phil_cfg() {
  LockConfig cfg;
  cfg.kappa = 2;
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 2;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  return cfg;
}

struct WflockResult {
  SuccessRate rate;
  RunningStat steps_per_meal;       // all philosophers
  RunningStat neighbor_steps;       // philosopher 1 only (starvation runs)
};

WflockResult run_wflock(int n, int meals, const std::vector<double>& weights,
                        std::uint64_t seed) {
  auto space = std::make_unique<Space>(phil_cfg(), n, n);
  WflockResult res;
  std::vector<PhilosopherReport> reports(static_cast<std::size_t>(n));
  Simulator sim(seed);
  for (int p = 0; p < n; ++p) {
    sim.add_process([&, p] {
      auto proc = space->register_process();
      const auto [l, r] = forks_of(p, n);
      run_philosopher_episodes<SimPlat>(
          p, meals, /*think_max=*/64, seed + static_cast<std::uint64_t>(p),
          [&](int) {
            const std::uint32_t ids[] = {l, r};
            return space->try_locks(proc, ids, typename Space::Thunk{});
          },
          reports[static_cast<std::size_t>(p)]);
    });
  }
  std::unique_ptr<Schedule> sched;
  if (weights.empty()) {
    sched = std::make_unique<UniformSchedule>(n, seed ^ 0x55);
  } else {
    sched = std::make_unique<WeightedSchedule>(weights, seed ^ 0x55);
  }
  WFL_CHECK(sim.run(*sched, 8'000'000'000ull));
  for (int p = 0; p < n; ++p) {
    const auto& r = reports[static_cast<std::size_t>(p)];
    for (std::uint64_t a = 0; a < r.attempts; ++a) {
      res.rate.add(a < r.meals);  // meals successes out of attempts
    }
    res.steps_per_meal.merge(r.steps_per_meal);
    if (p == 1) res.neighbor_steps.merge(r.steps_per_meal);
  }
  return res;
}

struct LrResult {
  RunningStat rounds_per_meal;   // all philosophers
  RunningStat neighbor_rounds;   // philosopher 1 only
  RunningStat neighbor_steps;    // philosopher 1 own steps per meal
  bool finished = true;
};

LrResult run_lr(int n, int meals, const std::vector<double>& weights,
                std::uint64_t seed, std::uint64_t max_slots) {
  LehmannRabinTable<SimPlat> table(n);
  LrResult res;
  std::vector<RunningStat> rounds(static_cast<std::size_t>(n));
  std::vector<RunningStat> steps(static_cast<std::size_t>(n));
  Simulator sim(seed);
  for (int p = 0; p < n; ++p) {
    sim.add_process([&, p] {
      Xoshiro256 rng(seed + 31 * static_cast<std::uint64_t>(p));
      for (int m = 0; m < meals; ++m) {
        const std::uint64_t before = SimPlat::steps();
        rounds[static_cast<std::size_t>(p)].add(
            static_cast<double>(table.dine(p, 1'000'000)));
        steps[static_cast<std::size_t>(p)].add(
            static_cast<double>(SimPlat::steps() - before));
        const std::uint64_t think = rng.next_below(64);
        for (std::uint64_t s = 0; s < think; ++s) SimPlat::step();
      }
    });
  }
  std::unique_ptr<Schedule> sched;
  if (weights.empty()) {
    sched = std::make_unique<UniformSchedule>(n, seed ^ 0x77);
  } else {
    sched = std::make_unique<WeightedSchedule>(weights, seed ^ 0x77);
  }
  res.finished = sim.run(*sched, max_slots);
  for (int p = 0; p < n; ++p) {
    res.rounds_per_meal.merge(rounds[static_cast<std::size_t>(p)]);
    if (p == 1) {
      res.neighbor_rounds.merge(rounds[static_cast<std::size_t>(p)]);
      res.neighbor_steps.merge(steps[static_cast<std::size_t>(p)]);
    }
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int meals = static_cast<int>(cli.flag_int("meals", 30));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.flag_int("seed", 11));
  cli.done();

  std::printf("E3a: table-size independence (uniform schedule)\n\n");
  Table ta({"n", "wfl rate", "wfl floor", "wfl steps/meal", "wfl p-max",
            "LR rounds/meal"});
  bool ok = true;
  std::vector<double> ns, wfl_steps;
  for (int n : {4, 8, 16, 32}) {
    const auto w = run_wflock(n, meals, {}, seed + static_cast<std::uint64_t>(n));
    const auto lr = run_lr(n, meals, {}, seed + 100 + n, 8'000'000'000ull);
    ok = ok && w.rate.wilson_upper() >= 0.25;
    ta.cell(n).cell(w.rate.rate(), 3).cell(0.25, 2)
        .cell(w.steps_per_meal.mean(), 1).cell(w.steps_per_meal.max(), 0)
        .cell(lr.rounds_per_meal.mean(), 2);
    ta.end_row();
    ns.push_back(n);
    wfl_steps.push_back(w.steps_per_meal.mean());
  }
  ta.print();
  const double n_exp = fit_log_log_slope(ns, wfl_steps);
  std::printf("\nfitted exponent of wflock steps/meal vs n: %.3f "
              "(paper: 0 — O(1) independent of n)\n", n_exp);
  ok = ok && n_exp < 0.3;

  std::printf("\nE3b: philosopher 0 starved 200x (oblivious weighted "
              "schedule), n=8 — neighbor's cost\n\n");
  {
    const int n = 8;
    std::vector<double> weights(n, 1.0);
    weights[0] = 0.005;
    const auto w_fair = run_wflock(n, meals, {}, seed + 900);
    const auto w_starve = run_wflock(n, meals, weights, seed + 901);
    const auto lr_fair = run_lr(n, meals, {}, seed + 902, 8'000'000'000ull);
    const auto lr_starve =
        run_lr(n, meals, weights, seed + 903, 8'000'000'000ull);

    Table tb({"system", "schedule", "neighbor steps/meal (mean)",
              "neighbor steps/meal (max)"});
    tb.cell("wflock").cell("fair").cell(w_fair.neighbor_steps.mean(), 1)
        .cell(w_fair.neighbor_steps.max(), 0);
    tb.end_row();
    tb.cell("wflock").cell("starved-0").cell(w_starve.neighbor_steps.mean(), 1)
        .cell(w_starve.neighbor_steps.max(), 0);
    tb.end_row();
    tb.cell("lehmann-rabin").cell("fair").cell(lr_fair.neighbor_steps.mean(), 1)
        .cell(lr_fair.neighbor_steps.max(), 0);
    tb.end_row();
    tb.cell("lehmann-rabin").cell("starved-0")
        .cell(lr_starve.neighbor_steps.mean(), 1)
        .cell(lr_starve.neighbor_steps.max(), 0);
    tb.end_row();
    tb.print();

    const double wfl_blowup =
        w_starve.neighbor_steps.max() / std::max(1.0, w_fair.neighbor_steps.max());
    const double lr_blowup = lr_starve.neighbor_steps.max() /
                             std::max(1.0, lr_fair.neighbor_steps.max());
    std::printf("\nneighbor worst-case blowup under starvation: wflock %.1fx,"
                " lehmann-rabin %.1fx\n", wfl_blowup, lr_blowup);
    std::printf("(wflock's bound is per-attempt and schedule-independent; "
                "LR's neighbor waits on the sleeping fork holder)\n");
    ok = ok && wfl_blowup < lr_blowup;
  }

  std::printf("\nE3 verdict: %s\n",
              ok ? "consistent with the paper (1/4 floor, O(1) steps, "
                   "helping shields neighbors)"
                 : "INCONSISTENT — investigate");
  return ok ? 0 : 1;
}
