// wfl-bench-v1 emission for the exp_* experiment binaries (which do not
// link Google Benchmark — bench_json.hpp serves the bench_* side).
//
// Same schema contract as bench_json.hpp: one JSON document on stdout,
//
//   {"schema": "wfl-bench-v1",
//    "benchmarks": [
//      {"name": "...", "threads": N, "ops_per_s": X, "p99_ns": Y,
//       "backend": "...", <extra numeric keys>}, ...]}
//
// so a BENCH_*.json capture from an experiment is directly comparable with
// the microbenchmark captures. `backend` names the lock discipline an
// entry measured (the LockBackend registry name); extra keys are additive
// (consumers must ignore unknown ones). Experiments that have no
// throughput/tail reading emit 0 for ops_per_s/p99_ns — the keys stay
// present so v1 consumers can rely on the shape.
//
// The human-readable tables these binaries always printed move to stderr,
// keeping stdout machine-clean:  ./exp_crash > EXP_crash.json
#pragma once

#include <cstdint>
#include <deque>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

namespace wfl_bench {

class ExpJson {
 public:
  class Entry {
   public:
    Entry(std::string name, std::string backend, int threads)
        : name_(std::move(name)),
          backend_(std::move(backend)),
          threads_(threads) {}

    Entry& ops_per_s(double v) {
      ops_per_s_ = v;
      return *this;
    }
    Entry& p99_ns(double v) {
      p99_ns_ = v;
      return *this;
    }
    Entry& field(const std::string& key, double v) {
      extras_.emplace_back(key, v);
      return *this;
    }

   private:
    friend class ExpJson;
    std::string name_;
    std::string backend_;
    int threads_;
    double ops_per_s_ = 0.0;
    double p99_ns_ = 0.0;
    std::vector<std::pair<std::string, double>> extras_;
  };

  // The returned reference stays valid across later add() calls (deque
  // storage), so callers may hold entries while building several rows.
  Entry& add(std::string name, std::string backend, int threads = 1) {
    entries_.emplace_back(std::move(name), std::move(backend), threads);
    return entries_.back();
  }

  void emit(std::ostream& o = std::cout) const {
    o << "{\"schema\": \"wfl-bench-v1\", \"benchmarks\": [\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      o << "  {\"name\": \"" << escape(e.name_) << "\""
        << ", \"threads\": " << e.threads_
        << ", \"ops_per_s\": " << e.ops_per_s_
        << ", \"p99_ns\": " << e.p99_ns_
        << ", \"backend\": \"" << escape(e.backend_) << "\"";
      for (const auto& [key, v] : e.extras_) {
        o << ", \"" << escape(key) << "\": " << v;
      }
      o << "}" << (i + 1 < entries_.size() ? "," : "") << "\n";
    }
    o << "]}\n";
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::deque<Entry> entries_;
};

}  // namespace wfl_bench
