// E4 — corollary to Theorem 1.1: retrying failed attempts gives wait-free
// locks with O(κ³L³T) expected steps per acquisition (attempts are
// independent, each succeeds w.p. >= 1/C_p, each costs O(κ²L²T) steps).
//
// Cliques of κ processes retry until success; the table reports the
// attempts-per-acquisition distribution (geometric-shaped, mean <= C_p)
// and the own-steps per acquisition, with fitted exponents vs κ and L
// (paper: <= 3 in each).
#include <cstdio>
#include <memory>
#include <vector>

#include "wfl/util/cli.hpp"
#include "wfl/util/table.hpp"
#include "wfl/wfl.hpp"

namespace {

using namespace wfl;
using Space = LockSpace<SimPlat>;

struct Result {
  RunningStat attempts_per_win;
  RunningStat steps_per_win;
};

Result run_clique(std::uint32_t kappa, std::uint32_t L, int wins_per_proc,
                  std::uint64_t seed) {
  LockConfig cfg;
  cfg.kappa = kappa;
  cfg.max_locks = L;
  cfg.max_thunk_steps = 2;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  auto space = std::make_unique<Space>(cfg, static_cast<int>(kappa),
                                       static_cast<int>(L));
  Result res;
  std::vector<RunningStat> att(kappa), steps(kappa);
  Simulator sim(seed);
  for (std::uint32_t p = 0; p < kappa; ++p) {
    sim.add_process([&, p] {
      auto proc = space->register_process();
      std::vector<std::uint32_t> ids;
      for (std::uint32_t l = 0; l < L; ++l) ids.push_back(l);
      for (int w = 0; w < wins_per_proc; ++w) {
        const std::uint64_t before = SimPlat::steps();
        std::uint64_t tries = 0;
        for (;;) {
          ++tries;
          WFL_CHECK(tries < 100000);
          if (space->try_locks(proc, ids, typename Space::Thunk{})) break;
        }
        att[p].add(static_cast<double>(tries));
        steps[p].add(static_cast<double>(SimPlat::steps() - before));
      }
    });
  }
  UniformSchedule sched(static_cast<int>(kappa), seed ^ 0x9999);
  WFL_CHECK(sim.run(sched, 16'000'000'000ull));
  for (std::uint32_t p = 0; p < kappa; ++p) {
    res.attempts_per_win.merge(att[p]);
    res.steps_per_win.merge(steps[p]);
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int wins = static_cast<int>(cli.flag_int("wins", 20));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.flag_int("seed", 5));
  cli.done();

  std::printf("E4: retry-until-success — expected attempts <= C_p, expected "
              "steps O(k^3 L^3 T)\n\n");

  Table t({"kappa", "L", "C_p", "acqs", "attempts/acq", "att max",
           "steps/acq", "steps max"});
  std::vector<double> kappas, steps_by_kappa, ls, steps_by_l;
  for (std::uint32_t kappa : {2u, 3u, 4u, 6u}) {
    const std::uint32_t L = 2;
    auto r = run_clique(kappa, L, wins, seed + kappa);
    t.cell(kappa).cell(L).cell(kappa * L).cell(r.attempts_per_win.count())
        .cell(r.attempts_per_win.mean(), 2).cell(r.attempts_per_win.max(), 0)
        .cell(r.steps_per_win.mean(), 0).cell(r.steps_per_win.max(), 0);
    t.end_row();
    kappas.push_back(kappa);
    steps_by_kappa.push_back(r.steps_per_win.mean());
    WFL_CHECK(r.attempts_per_win.mean() <= kappa * L + 1);
  }
  for (std::uint32_t L : {1u, 2u, 3u}) {
    const std::uint32_t kappa = 3;
    auto r = run_clique(kappa, L, wins, seed + 50 + L);
    t.cell(kappa).cell(L).cell(kappa * L).cell(r.attempts_per_win.count())
        .cell(r.attempts_per_win.mean(), 2).cell(r.attempts_per_win.max(), 0)
        .cell(r.steps_per_win.mean(), 0).cell(r.steps_per_win.max(), 0);
    t.end_row();
    ls.push_back(L);
    steps_by_l.push_back(r.steps_per_win.mean());
  }
  t.print();

  const double ek = fit_log_log_slope(kappas, steps_by_kappa);
  const double el = fit_log_log_slope(ls, steps_by_l);
  std::printf("\nfitted exponent of steps/acquisition: vs kappa = %.2f, "
              "vs L = %.2f (paper bound: <= 3 each)\n", ek, el);
  const bool ok = ek <= 3.3 && el <= 3.3;
  std::printf("\nE4 verdict: %s\n",
              ok ? "consistent with O(k^3 L^3 T) expected acquisition cost"
                 : "INCONSISTENT — investigate");
  return ok ? 0 : 1;
}
