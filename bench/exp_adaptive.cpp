// E8 — Theorem 6.10: without knowing κ and L, the guess-and-double variant
// keeps success probability Ω(1/(C_p · log(κLT))).
//
// Cliques of κ processes run under (a) the known-bounds Algorithm 3 and
// (b) the adaptive variant; the table compares their success rates against
// the known-bounds floor 1/C_p and the adaptive floor 1/(C_p·log2(κLT)),
// plus the rate ratio (paper: bounded by O(log κLT)) and how often the
// seer-eliminates rule fired (the cost of our TBD resolution, DESIGN.md
// substitution #4).
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "wfl/util/cli.hpp"
#include "wfl/util/table.hpp"
#include "wfl/wfl.hpp"

namespace {

using namespace wfl;

SuccessRate run_known(std::uint32_t kappa, std::uint32_t L, int attempts,
                      std::uint64_t seed) {
  LockConfig cfg;
  cfg.kappa = kappa;
  cfg.max_locks = L;
  cfg.max_thunk_steps = 2;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  auto space = std::make_unique<LockSpace<SimPlat>>(
      cfg, static_cast<int>(kappa), static_cast<int>(L));
  SuccessRate rate;
  std::vector<SuccessRate> per(kappa);
  Simulator sim(seed);
  for (std::uint32_t p = 0; p < kappa; ++p) {
    sim.add_process([&, p] {
      auto proc = space->register_process();
      std::vector<std::uint32_t> ids;
      for (std::uint32_t l = 0; l < L; ++l) ids.push_back(l);
      for (int a = 0; a < attempts; ++a) {
        per[p].add(space->try_locks(proc, ids,
                                    typename LockSpace<SimPlat>::Thunk{}));
      }
    });
  }
  UniformSchedule sched(static_cast<int>(kappa), seed ^ 0x1111);
  WFL_CHECK(sim.run(sched, 8'000'000'000ull));
  for (auto& pr : per) rate.merge(pr);
  return rate;
}

struct AdaptiveOut {
  SuccessRate rate;
  std::uint64_t tbd_elims = 0;
};

AdaptiveOut run_adaptive(std::uint32_t kappa, std::uint32_t L, int attempts,
                         std::uint64_t seed) {
  auto space = std::make_unique<AdaptiveLockSpace<SimPlat>>(
      static_cast<int>(kappa), static_cast<int>(L));
  AdaptiveOut out;
  std::vector<SuccessRate> per(kappa);
  Simulator sim(seed);
  for (std::uint32_t p = 0; p < kappa; ++p) {
    sim.add_process([&, p] {
      auto proc = space->register_process();
      std::vector<std::uint32_t> ids;
      for (std::uint32_t l = 0; l < L; ++l) ids.push_back(l);
      for (int a = 0; a < attempts; ++a) {
        per[p].add(space->try_locks(
            proc, ids, typename AdaptiveLockSpace<SimPlat>::Thunk{}));
      }
    });
  }
  UniformSchedule sched(static_cast<int>(kappa), seed ^ 0x2222);
  WFL_CHECK(sim.run(sched, 8'000'000'000ull));
  for (auto& pr : per) out.rate.merge(pr);
  out.tbd_elims = space->tbd_eliminations();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int attempts = static_cast<int>(cli.flag_int("attempts", 150));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.flag_int("seed", 13));
  cli.done();

  std::printf("E8: unknown bounds — adaptive variant vs known-bounds "
              "(Theorem 6.10)\n\n");

  Table t({"kappa", "L", "known rate", "adaptive rate", "ratio",
           "log2(kLT)", "adaptive floor", "floor held", "tbd-elims"});
  bool ok = true;
  for (auto [kappa, L] : {std::pair<std::uint32_t, std::uint32_t>{2, 2},
                          {4, 1},
                          {4, 2},
                          {8, 2}}) {
    const auto known = run_known(kappa, L, attempts, seed + kappa * 10 + L);
    const auto adap = run_adaptive(kappa, L, attempts, seed + kappa * 10 + L);
    const double log_factor =
        std::log2(static_cast<double>(kappa) * L * 2 + 2);
    const double floor = 1.0 / (static_cast<double>(kappa) * L * log_factor);
    const bool held = adap.rate.wilson_upper() >= floor;
    ok = ok && held;
    t.cell(kappa).cell(L).cell(known.rate(), 3).cell(adap.rate.rate(), 3)
        .cell(known.rate() / std::max(1e-9, adap.rate.rate()), 2)
        .cell(log_factor, 2).cell(floor, 3).cell(held ? "yes" : "NO")
        .cell(adap.tbd_elims);
    t.end_row();
  }
  t.print();
  std::printf("\nE8 verdict: %s\n",
              ok ? "adaptive variant stays within the log(kLT) band"
                 : "BAND VIOLATION — investigate");
  return ok ? 0 : 1;
}
