// fuzz_sched — the coverage-guided schedule-fuzzing campaign driver.
//
// Two modes, selected by the seeded fault:
//
//   * clean mode (no fault): the campaign runs its budget against the real
//     implementation. Exit 0 iff ZERO findings and zero watchdog overruns —
//     this is the "the tree is quiet" gate CI runs on every push.
//
//   * fault mode (--fault NAME or WFL_FUZZ_FAULT): a known bug is
//     re-introduced behind its fuzz-only hook (PR 6's lost-wake and
//     shutdown-hang, PR 7's engine-model race mutations) and the SAME
//     campaign budget must rediscover it. Exit 0 iff at least one finding
//     was produced (with its minimized, deterministically replayable
//     reproducer printed) — this is the mutation-testing gate that proves
//     the fuzzer can actually find the class of bug it exists for.
//
// Every knob has a flag and an env override (env wins), so CI YAML and a
// long soak invocation can both steer it without rebuilds:
//   WFL_FUZZ_ITERS  mutation budget            (default 400)
//   WFL_FUZZ_MS     wall-clock backstop, ms    (default 0 = off)
//   WFL_FUZZ_SEED   campaign RNG seed          (default 1)
//   WFL_FUZZ_FAULT  seeded fault name          (default none)
//   WFL_FUZZ_CORPUS extra seed-trace directory (default none)
//   WFL_FUZZ_OUT    reproducer output dir      (default none)
//   WFL_FUZZ_SOAK   nonzero = unbounded: keep fuzzing past findings until
//                   the iteration/wall budget ends (report-all mode)
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "wfl/fuzz/campaign.hpp"
#include "wfl/util/cli.hpp"

namespace {

std::string env_or(const char* name, std::string def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : def;
}

std::uint64_t env_or_u64(const char* name, std::uint64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : def;
}

}  // namespace

int main(int argc, char** argv) {
  wfl::Cli cli(argc, argv);
  wfl::fuzz::CampaignOptions opts;
  opts.iters = env_or_u64(
      "WFL_FUZZ_ITERS",
      static_cast<std::uint64_t>(cli.flag_int("iters", 400)));
  opts.max_ms = env_or_u64(
      "WFL_FUZZ_MS", static_cast<std::uint64_t>(cli.flag_int("ms", 0)));
  opts.seed = env_or_u64(
      "WFL_FUZZ_SEED", static_cast<std::uint64_t>(cli.flag_int("seed", 1)));
  opts.fault = env_or("WFL_FUZZ_FAULT", cli.flag_string("fault", ""));
  opts.corpus_in = env_or("WFL_FUZZ_CORPUS", cli.flag_string("corpus", ""));
  opts.out_dir = env_or("WFL_FUZZ_OUT", cli.flag_string("out", ""));
  const bool soak =
      env_or_u64("WFL_FUZZ_SOAK",
                 cli.flag_bool("soak", false) ? 1 : 0) != 0;
  opts.verbose = cli.flag_bool("verbose", false);
  cli.done();
  opts.stop_on_finding = !soak;

  const bool fault_mode = !opts.fault.empty();
  if (fault_mode && !wfl::fuzz::parse_fault(opts.fault).has_value()) {
    std::fprintf(stderr, "unknown fault name: %s\n", opts.fault.c_str());
    return 2;
  }
  std::fprintf(stderr,
               "fuzz_sched: %s campaign, iters=%llu ms=%llu seed=%llu%s%s\n",
               fault_mode ? opts.fault.c_str() : "clean",
               static_cast<unsigned long long>(opts.iters),
               static_cast<unsigned long long>(opts.max_ms),
               static_cast<unsigned long long>(opts.seed),
               soak ? " (soak: report-all)" : "",
               opts.corpus_in.empty() ? "" : " (+seed corpus)");

  const wfl::fuzz::CampaignResult r = wfl::fuzz::run_campaign(opts, std::cerr);

  std::fprintf(stderr,
               "fuzz_sched: %llu iters, corpus %zu, %zu coverage bits, "
               "%llu checked replays, %zu finding(s)\n",
               static_cast<unsigned long long>(r.iters_run), r.corpus_size,
               r.feature_bits,
               static_cast<unsigned long long>(r.checked_replays),
               r.findings.size());

  if (fault_mode) {
    // Mutation gate: the seeded bug must be rediscovered.
    if (r.findings.empty()) {
      std::fprintf(stderr,
                   "fuzz_sched: FAIL — seeded fault '%s' not detected "
                   "within budget\n",
                   opts.fault.c_str());
      return 1;
    }
    std::fprintf(stderr, "fuzz_sched: seeded fault '%s' detected\n",
                 opts.fault.c_str());
    return 0;
  }
  // Clean gate: a quiet tree stays quiet.
  if (!r.findings.empty()) {
    std::fprintf(stderr, "fuzz_sched: FAIL — %zu finding(s) on clean tree\n",
                 r.findings.size());
    return 1;
  }
  std::fprintf(stderr, "fuzz_sched: clean\n");
  return 0;
}
