// One shared JSON schema for the Google-Benchmark-based microbenchmarks.
//
// Every bench binary that uses WFL_BENCH_JSON_MAIN() emits, on stdout, a
// single JSON document:
//
//   {"schema": "wfl-bench-v1",
//    "benchmarks": [
//      {"name": "...", "threads": N, "ops_per_s": X, "p99_ns": Y}, ...]}
//
// so successive BENCH_*.json captures are directly comparable across
// binaries and across commits (same keys, same units, no console noise on
// stdout). Fields:
//
//   name      benchmark instance name (including /arg suffixes); one entry
//             per name — repetitions are folded into that entry
//   threads   ACTUAL worker-thread count of the run. Google Benchmark's
//             declared thread count by default; a benchmark that manages
//             its own workers overrides it by setting the reserved user
//             counter "wfl_threads" (consumed here, never emitted as an
//             extra key)
//   ops_per_s items/s when the benchmark calls SetItemsProcessed, else
//             iterations/s (mean across repetitions)
//   p99_ns    99th percentile of per-operation latency. Preferred source:
//             a per-thread latency reservoir the benchmark registered
//             through LatencyReservoirs (merged across threads and
//             repetitions — under multi-threaded runs the per-iteration
//             wall time is a thread-average, not a latency, so only a
//             reservoir gives a real tail). Fallback: per-iteration real
//             time across repetitions; with a single repetition that
//             degrades to the mean, flagged by "p99_is_mean": true. The
//             flag is DROPPED whenever a real distribution (reservoir)
//             backed the figure
//   p999_ns   99.9th percentile, same source rules as p99_ns. Only
//             emitted when a reservoir backed it: a fallback p999 from a
//             handful of per-repetition means is noise, not a tail, so
//             absent-key means "no real distribution was registered"
//             (v1-additive; consumers must ignore unknown keys)
//
// Additive (v1-compatible — consumers must ignore unknown keys): any
// user counter a benchmark registers through state.counters is emitted
// as an extra key on its entry (mean across repetitions). The wflock
// benches use this to surface the executor's unified Outcome accounting:
// "attempts_per_op" (tryLock attempts per logical operation, the
// executor's Outcome::attempts) and "win_rate" (1/attempts_per_op).
//
// Backend sweeps: a benchmark registered with a "/backend:NAME" segment in
// its name (the LockBackend registry convention — see
// wfl/baseline/backends.hpp) gets a `"backend": "NAME"` string key on its
// entry, so one capture holds directly comparable rows for every lock
// discipline. Likewise a "/contention:LEVEL" segment (bench_scaling's
// convention: "low" / "high") becomes a `"contention": "LEVEL"` key, so
// thread-sweep captures are filterable by regime.
//
// stdout carries only the JSON document, so
//   ./bench_apps > BENCH_apps.json
// captures a clean trajectory point. (Pass --benchmark_out=<file>
// --benchmark_out_format=json for Google Benchmark's own verbose schema.)
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace wfl_bench {

// Merged per-thread latency reservoirs, keyed by benchmark base name.
// Worker threads push sampled per-op latencies (each under the mutex, once
// per thread at loop exit); the reporter computes the entry's p99_ns from
// the merged distribution — matching entries by base-name prefix, so the
// "/real_time" / "/threads:N" suffixes Google Benchmark appends at report
// time need not be reconstructed by the benchmark.
class LatencyReservoirs {
 public:
  static LatencyReservoirs& instance() {
    static LatencyReservoirs r;
    return r;
  }

  void record(const std::string& base_name,
              const std::vector<double>& ns_samples) {
    std::lock_guard<std::mutex> lk(mu_);
    auto& dst = samples_[base_name];
    dst.insert(dst.end(), ns_samples.begin(), ns_samples.end());
  }

  // Longest base name that is a prefix of `entry_name` at a segment
  // boundary (exact match or followed by '/'); nullptr when none matched.
  const std::vector<double>* find(const std::string& entry_name) {
    std::lock_guard<std::mutex> lk(mu_);
    const std::vector<double>* best = nullptr;
    std::size_t best_len = 0;
    for (const auto& [base, samples] : samples_) {
      if (samples.empty() || base.size() < best_len) continue;
      if (entry_name.compare(0, base.size(), base) != 0) continue;
      if (entry_name.size() != base.size() &&
          entry_name[base.size()] != '/') {
        continue;
      }
      best = &samples;
      best_len = base.size();
    }
    return best;
  }

 private:
  std::mutex mu_;
  std::map<std::string, std::vector<double>> samples_;
};

inline double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(v.size())));
  if (idx == 0) idx = 1;
  if (idx > v.size()) idx = v.size();
  return v[idx - 1];
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

class JsonSchemaReporter : public benchmark::BenchmarkReporter {
 public:
  explicit JsonSchemaReporter(std::ostream& out = std::cout) : out_(&out) {}

  bool ReportContext(const Context&) override { return true; }

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run_failed(run)) continue;
      // Aggregates (mean/median/...) are derivable from the folded
      // repetition samples; only raw iteration runs are collected.
      if (run.run_type == Run::RT_Aggregate) continue;
      Entry& e = entry_for(run.benchmark_name(), run.threads);
      // Benchmarks that spin up their own workers report the ACTUAL
      // worker count through the reserved "wfl_threads" counter; it
      // overrides the declared count and never appears as an extra key.
      const auto wt = run.counters.find("wfl_threads");
      if (wt != run.counters.end() && wt->second.value >= 1.0) {
        e.threads = static_cast<int>(wt->second.value);
      }
      const double ns = per_op_ns(run);
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        e.ops_per_s_sum += it->second.value;
      } else {
        e.ops_per_s_sum += ns > 0 ? 1e9 / ns : 0.0;
      }
      e.per_op_ns_samples.push_back(ns);
      // Fold user counters (executor Outcome fields and friends) into
      // additive per-entry keys; items_per_second already feeds ops_per_s.
      for (const auto& [cname, counter] : run.counters) {
        if (cname == "items_per_second" || cname == "wfl_threads") continue;
        auto& agg = e.counters[cname];
        agg.first += counter.value;
        agg.second += 1;
      }
    }
  }

  void Finalize() override { emit(); }

  // The runner only calls Finalize() when at least one benchmark ran; an
  // empty filter match would otherwise leave stdout without a document.
  // Idempotent, so calling it after RunSpecifiedBenchmarks is always safe.
  void ensure_emitted() { emit(); }

 private:
  void emit() {
    if (emitted_) return;
    emitted_ = true;
    std::ostream& o = *out_;
    o << "{\"schema\": \"wfl-bench-v1\", \"benchmarks\": [\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      Entry& e = entries_[i];
      const std::size_t n = e.per_op_ns_samples.size();
      const double ops = n > 0 ? e.ops_per_s_sum / static_cast<double>(n) : 0;
      // p99 source, best first: a registered per-thread latency reservoir
      // (a real distribution — no degradation flag at all), then the
      // per-repetition samples (flagged p99_is_mean when a single
      // repetition reduces it to the mean).
      const std::vector<double>* reservoir =
          LatencyReservoirs::instance().find(e.name);
      double p99 = 0.0;
      if (reservoir != nullptr) {
        p99 = percentile(*reservoir, 0.99);
      } else if (n > 0) {
        p99 = percentile(e.per_op_ns_samples, 0.99);
      }
      o << "  {\"name\": \"" << json_escape(e.name) << "\""
        << ", \"threads\": " << e.threads
        << ", \"ops_per_s\": " << ops
        << ", \"p99_ns\": " << p99;
      if (reservoir == nullptr) {
        o << ", \"p99_is_mean\": " << (n > 1 ? "false" : "true");
      } else {
        // A real distribution also supports a deeper tail figure;
        // without one, p999 of a few repetition means would be noise.
        o << ", \"p999_ns\": " << percentile(*reservoir, 0.999);
      }
      const std::string backend = segment_of(e.name, "backend:");
      if (!backend.empty()) {
        o << ", \"backend\": \"" << json_escape(backend) << "\"";
      }
      const std::string contention = segment_of(e.name, "contention:");
      if (!contention.empty()) {
        o << ", \"contention\": \"" << json_escape(contention) << "\"";
      }
      for (const auto& [cname, agg] : e.counters) {
        if (agg.second == 0) continue;
        o << ", \"" << json_escape(cname)
          << "\": " << agg.first / static_cast<double>(agg.second);
      }
      o << "}" << (i + 1 < entries_.size() ? "," : "") << "\n";
    }
    o << "]}\n";
  }

  struct Entry {
    std::string name;
    int threads = 1;
    double ops_per_s_sum = 0.0;              // across repetitions
    std::vector<double> per_op_ns_samples;   // one per repetition
    // user counter -> (value sum, sample count); emitted as mean
    std::map<std::string, std::pair<double, int>> counters;
  };

  // "List_InsertErase/backend:turek/..." with key "backend:" -> "turek";
  // "" when the key segment is absent.
  static std::string segment_of(const std::string& name,
                                const std::string& key) {
    const std::size_t at = name.find(key);
    if (at == std::string::npos) return {};
    const std::size_t start = at + key.size();
    const std::size_t end = name.find('/', start);
    return name.substr(start,
                       end == std::string::npos ? end : end - start);
  }

  Entry& entry_for(const std::string& name, int threads) {
    for (Entry& e : entries_) {
      if (e.name == name && e.threads == threads) return e;
    }
    entries_.push_back(Entry{name, threads, 0.0, {}});
    return entries_.back();
  }

  // Run-failure check across Google Benchmark versions: 1.7 exposes
  // `bool error_occurred`, 1.8+ replaced it with the `skipped` enum.
  template <typename R>
  static bool run_failed(const R& run) {
    if constexpr (requires { run.error_occurred; }) {
      return run.error_occurred;
    } else if constexpr (requires { run.skipped; }) {
      return static_cast<int>(run.skipped) != 0;
    } else {
      return false;
    }
  }

  // Per-iteration wall time in nanoseconds, from the raw seconds counters
  // (unit-independent).
  static double per_op_ns(const Run& run) {
    if (run.iterations == 0) return 0.0;
    return run.real_accumulated_time * 1e9 /
           static_cast<double>(run.iterations);
  }

  std::ostream* out_;
  std::vector<Entry> entries_;
  bool emitted_ = false;
};

// `register_extra` runs after Initialize and before the run: the hook for
// runtime benchmark registration (backend-registry sweeps register one
// instance per backend through it).
template <typename Register>
int run_with_json_schema(int argc, char** argv, Register&& register_extra) {
  benchmark::Initialize(&argc, argv);
  register_extra();
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Sole display reporter: stdout carries exactly one JSON document. The
  // runner invokes Finalize() when the last benchmark completes.
  JsonSchemaReporter json(std::cout);
  json.SetOutputStream(&std::cerr);  // runner's own notes go to stderr
  json.SetErrorStream(&std::cerr);
  benchmark::RunSpecifiedBenchmarks(&json);
  json.ensure_emitted();  // zero matched benchmarks still emit "[]"
  benchmark::Shutdown();
  return 0;
}

inline int run_with_json_schema(int argc, char** argv) {
  return run_with_json_schema(argc, argv, [] {});
}

}  // namespace wfl_bench

#define WFL_BENCH_JSON_MAIN()                                 \
  int main(int argc, char** argv) {                           \
    return ::wfl_bench::run_with_json_schema(argc, argv);     \
  }

// Main with a runtime registration hook (backend-registry sweeps).
#define WFL_BENCH_JSON_MAIN_WITH(register_fn)                              \
  int main(int argc, char** argv) {                                        \
    return ::wfl_bench::run_with_json_schema(argc, argv, (register_fn));   \
  }
