// E13 — per-operation cost of the data-structure substrates on the
// wait-free locks (RealPlat, delays off = the flock-style practical mode),
// against ordered two-phase spin-locking running the same logical
// operation without idempotence.
//
// This is the "is it usable as a real lock?" sanity table of the §7
// discussion: the wflock column pays the descriptor + active-set + log
// machinery; the spin column is the bare metal floor. The interesting
// number is the ratio staying a modest constant across structures — the
// paper's claim that the machinery costs O(1) per operation, not O(n).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "wfl/wfl.hpp"

namespace {

using namespace wfl;  // NOLINT: bench file, local scope

LockConfig practical_cfg(std::uint32_t max_locks,
                         std::uint32_t thunk_steps) {
  LockConfig cfg;
  cfg.kappa = 2;
  cfg.max_locks = max_locks;
  cfg.max_thunk_steps = thunk_steps;
  cfg.delay_mode = DelayMode::kOff;
  return cfg;
}

// --- linked list ---------------------------------------------------------

void BM_List_WflInsertErase(benchmark::State& state) {
  LockSpace<RealPlat> space(practical_cfg(2, 8), 1, 512);
  LockedList<RealPlat> list(space, 512);
  Session<RealPlat> proc(space);
  for (std::uint32_t k = 2; k <= 64; k += 2) list.insert(proc, k);
  std::uint64_t attempts = 0;  // unified Outcome accounting, 2 ops/iter
  for (auto _ : state) {
    list.insert(proc, 33, &attempts);
    list.erase(proc, 33, &attempts);
    // Steady state includes reclamation (single-threaded here, so every
    // iteration is a quiescent point); without it the bounded pool is
    // exhausted after ~500 erases.
    list.quiescent_recycle();
  }
  const double ops = 2.0 * static_cast<double>(state.iterations());
  state.counters["attempts_per_op"] =
      ops > 0 ? static_cast<double>(attempts) / ops : 0.0;
  state.counters["win_rate"] =
      attempts > 0 ? ops / static_cast<double>(attempts) : 0.0;
}
BENCHMARK(BM_List_WflInsertErase);

void BM_List_SpinInsertErase(benchmark::State& state) {
  // The same sorted-list insert/erase under plain spin 2PL on {pred,curr}.
  struct Node {
    std::uint32_t key;
    std::uint32_t next;
  };
  std::vector<Node> nodes(512);
  Spin2PL<RealPlat> locks(512);
  // Build 2,4,...,64 list; slot i holds key-index mapping 1:1 for brevity.
  std::uint32_t head = 0;
  nodes[0] = {0, 1};
  std::uint32_t idx = 1;
  for (std::uint32_t k = 2; k <= 64; k += 2) {
    nodes[idx] = {k, idx + 1};
    ++idx;
  }
  nodes[idx - 1].next = 0xFFFFFFFFu;
  const std::uint32_t spare = idx;  // scratch node for 33
  for (auto _ : state) {
    // insert 33 between 32 and 34 (locate pred by walk, lock, link).
    std::uint32_t pred = head;
    while (nodes[pred].next != 0xFFFFFFFFu &&
           nodes[nodes[pred].next].key < 33) {
      pred = nodes[pred].next;
    }
    const std::uint32_t ids1[2] = {pred, nodes[pred].next};
    locks.locked(ids1, [&] {
      nodes[spare] = {33, nodes[pred].next};
      nodes[pred].next = spare;
    });
    const std::uint32_t ids2[2] = {pred, spare};
    locks.locked(ids2, [&] { nodes[pred].next = nodes[spare].next; });
    benchmark::DoNotOptimize(nodes.data());
  }
}
BENCHMARK(BM_List_SpinInsertErase);

// --- BST -----------------------------------------------------------------

void BM_Bst_WflInsertErase(benchmark::State& state) {
  LockSpace<RealPlat> space(practical_cfg(3, 16), 1, 1024);
  LockedBst<RealPlat> bst(space, 1024);
  Session<RealPlat> proc(space);
  for (std::uint32_t k = 10; k <= 300; k += 10) bst.insert(proc, k);
  for (auto _ : state) {
    bst.insert(proc, 155);
    bst.erase(proc, 155);
  }
}
// Each iteration permanently retires two BST nodes (no recycling by
// design); the iteration cap keeps total demand inside the 1024-node pool.
BENCHMARK(BM_Bst_WflInsertErase)->Iterations(400);

// --- hash map -------------------------------------------------------------

void BM_Map_WflPutGetErase(benchmark::State& state) {
  LockSpace<RealPlat> space(
      practical_cfg(2, LockedHashMap<RealPlat>::thunk_step_budget()), 1,
      64);
  LockedHashMap<RealPlat> map(space, 64, 512);
  Session<RealPlat> proc(space);
  for (std::uint64_t k = 1; k <= 100; ++k) {
    map.put(proc, k, static_cast<std::uint32_t>(k));
  }
  std::uint32_t v = 0;
  for (auto _ : state) {
    map.put(proc, 777, 1);
    map.get_locked(proc, 777, &v);
    map.erase(proc, 777);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_Map_WflPutGetErase)->Iterations(380);  // pool-bounded: 1 node retired per iteration

void BM_Map_WflSwap(benchmark::State& state) {
  LockSpace<RealPlat> space(
      practical_cfg(2, LockedHashMap<RealPlat>::thunk_step_budget()), 1,
      64);
  LockedHashMap<RealPlat> map(space, 64, 128);
  Session<RealPlat> proc(space);
  map.put(proc, 1, 10);
  map.put(proc, 2, 20);
  std::uint64_t attempts = 0;  // unified Outcome accounting
  for (auto _ : state) {
    map.swap(proc, 1, 2, &attempts);
  }
  const double ops = static_cast<double>(state.iterations());
  state.counters["attempts_per_op"] =
      ops > 0 ? static_cast<double>(attempts) / ops : 0.0;
  state.counters["win_rate"] =
      attempts > 0 ? ops / static_cast<double>(attempts) : 0.0;
}
BENCHMARK(BM_Map_WflSwap);

// --- queue -----------------------------------------------------------------

void BM_Queue_WflEnqDeq(benchmark::State& state) {
  LockSpace<RealPlat> space(practical_cfg(2, 16), 1, 2);
  Session<RealPlat> proc(space);
  // Pool must cover total enqueues in the bench run (nodes are retired,
  // not recycled); size generously and reset via fresh queue per chunk.
  for (auto _ : state) {
    state.PauseTiming();
    LockedQueue<RealPlat> q(space, 0, 1, 1u << 16);
    state.ResumeTiming();
    std::uint32_t v = 0;
    for (int i = 0; i < 1000; ++i) {
      q.enqueue(proc, static_cast<std::uint32_t>(i));
      q.dequeue(proc, &v);
    }
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_Queue_WflEnqDeq)->Unit(benchmark::kMicrosecond);

// --- graph -----------------------------------------------------------------

void BM_Graph_WflColourRing(benchmark::State& state) {
  const std::uint32_t n = 64;
  LockSpace<RealPlat> space(
      practical_cfg(3, LockedGraph<RealPlat>::thunk_step_budget(2)), 1,
      static_cast<int>(n));
  LockedGraph<RealPlat> g(space, LockedGraph<RealPlat>::ring(n));
  Session<RealPlat> proc(space);
  std::uint32_t v = 0;
  for (auto _ : state) {
    g.colour_vertex(proc, v);
    v = (v + 1) % n;
  }
}
BENCHMARK(BM_Graph_WflColourRing);

// --- transactions -----------------------------------------------------------

void BM_Txn_BuildAndRunTwoLegs(benchmark::State& state) {
  LockSpace<RealPlat> space(practical_cfg(4, 24), 1, 8);
  Session<RealPlat> proc(space);
  std::vector<std::unique_ptr<Cell<RealPlat>>> acct;
  for (int i = 0; i < 4; ++i) {
    acct.push_back(std::make_unique<Cell<RealPlat>>(1000u));
  }
  Cell<RealPlat>* a0 = acct[0].get();
  Cell<RealPlat>* a1 = acct[1].get();
  Cell<RealPlat>* a2 = acct[2].get();
  Cell<RealPlat>* a3 = acct[3].get();
  for (auto _ : state) {
    TxnBuilder<RealPlat> b;
    const std::uint32_t leg1[] = {0, 1};
    const std::uint32_t leg2[] = {2, 3};
    b.op(leg1, [a0, a1](IdemCtx<RealPlat>& m) {
      m.store(*a0, m.load(*a0) - 1);
      m.store(*a1, m.load(*a1) + 1);
    });
    b.op(leg2, [a2, a3](IdemCtx<RealPlat>& m) {
      m.store(*a2, m.load(*a2) - 1);
      m.store(*a3, m.load(*a3) + 1);
    });
    benchmark::DoNotOptimize(std::move(b).build().submit(proc, Policy::retry()));
  }
}
BENCHMARK(BM_Txn_BuildAndRunTwoLegs);

void BM_Txn_RunPrebuilt(benchmark::State& state) {
  LockSpace<RealPlat> space(practical_cfg(4, 24), 1, 8);
  Session<RealPlat> proc(space);
  auto cell = std::make_unique<Cell<RealPlat>>(0u);
  Cell<RealPlat>* cp = cell.get();
  TxnBuilder<RealPlat> b;
  const std::uint32_t ids[] = {0, 1};
  b.op(ids, [cp](IdemCtx<RealPlat>& m) { m.store(*cp, m.load(*cp) + 1); });
  auto txn = std::move(b).build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(txn.submit(proc, Policy::retry()));
  }
}
BENCHMARK(BM_Txn_RunPrebuilt);

}  // namespace

// Machine-comparable wfl-bench-v1 JSON on stdout (see bench_json.hpp).
WFL_BENCH_JSON_MAIN();
