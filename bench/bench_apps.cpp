// E13 — per-operation cost of the data-structure substrates, swept across
// the whole LockBackend registry (RealPlat, single thread): the wait-free
// locks in practical mode (delays off) against Turek-style helping locks
// and ordered two-phase locking (spin and std::mutex) running the *same*
// substrate code — each benchmark is one template instantiated per
// registry entry, registered at runtime with a "/backend:NAME" segment
// that bench_json.hpp surfaces as the wfl-bench-v1 "backend" key.
//
// This is the "is it usable as a real lock?" sanity table of the §7
// discussion: the wflock column pays the descriptor + active-set + log
// machinery; the 2PL columns are the bare-metal floor (their critical
// sections still run through IdemCtx, so the comparison isolates the
// *competition* machinery, not the instrumentation). The interesting
// number is the ratio staying a modest constant across structures — the
// paper's claim that the machinery costs O(1) per operation, not O(n).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "wfl/wfl.hpp"

namespace {

using namespace wfl;  // NOLINT: bench file, local scope

LockConfig practical_cfg(std::uint32_t max_locks,
                         std::uint32_t thunk_steps) {
  LockConfig cfg;
  cfg.kappa = 2;
  cfg.max_locks = max_locks;
  cfg.max_thunk_steps = thunk_steps;
  cfg.delay_mode = DelayMode::kOff;
  return cfg;
}

BackendConfig single_proc(std::uint32_t max_locks, std::uint32_t thunk_steps,
                          int num_locks) {
  BackendConfig bc;
  bc.lock = practical_cfg(max_locks, thunk_steps);
  bc.max_procs = 1;
  bc.num_locks = num_locks;
  return bc;
}

void report_attempts(benchmark::State& state, std::uint64_t attempts,
                     double ops) {
  state.counters["attempts_per_op"] =
      ops > 0 ? static_cast<double>(attempts) / ops : 0.0;
  state.counters["win_rate"] =
      attempts > 0 ? ops / static_cast<double>(attempts) : 0.0;
}

// --- bank ----------------------------------------------------------------

template <typename B>
void BM_Bank_Transfer(benchmark::State& state) {
  auto space = B::make_space(single_proc(2, 8, 16));
  Bank<B> bank(*space, 16, 1000);
  typename B::Session proc(*space);
  std::uint64_t attempts = 0;
  std::uint32_t i = 0;
  for (auto _ : state) {
    attempts +=
        bank.transfer(proc, i % 16, (i + 1) % 16, 1, Policy::retry())
            .attempts;
    ++i;
  }
  report_attempts(state, attempts, static_cast<double>(state.iterations()));
}

// --- linked list ---------------------------------------------------------

template <typename B>
void BM_List_InsertErase(benchmark::State& state) {
  auto space = B::make_space(single_proc(2, 8, 512));
  LockedList<B> list(*space, 512);
  typename B::Session proc(*space);
  for (std::uint32_t k = 2; k <= 64; k += 2) list.insert(proc, k);
  std::uint64_t attempts = 0;  // unified Outcome accounting, 2 ops/iter
  for (auto _ : state) {
    list.insert(proc, 33, &attempts);
    list.erase(proc, 33, &attempts);
    // Steady state includes reclamation (single-threaded here, so every
    // iteration is a quiescent point); without it the bounded pool is
    // exhausted after ~500 erases.
    list.quiescent_recycle();
  }
  report_attempts(state, attempts,
                  2.0 * static_cast<double>(state.iterations()));
}

// --- BST -----------------------------------------------------------------

template <typename B>
void BM_Bst_InsertErase(benchmark::State& state) {
  auto space = B::make_space(single_proc(3, 16, 1024));
  LockedBst<B> bst(*space, 1024);
  typename B::Session proc(*space);
  for (std::uint32_t k = 10; k <= 300; k += 10) bst.insert(proc, k);
  for (auto _ : state) {
    bst.insert(proc, 155);
    bst.erase(proc, 155);
  }
}

// --- hash map -------------------------------------------------------------

template <typename B>
void BM_Map_PutGetErase(benchmark::State& state) {
  auto space = B::make_space(
      single_proc(2, LockedHashMap<B>::thunk_step_budget(), 64));
  LockedHashMap<B> map(*space, 64, 512);
  typename B::Session proc(*space);
  for (std::uint64_t k = 1; k <= 100; ++k) {
    map.put(proc, k, static_cast<std::uint32_t>(k));
  }
  std::uint32_t v = 0;
  for (auto _ : state) {
    map.put(proc, 777, 1);
    map.get_locked(proc, 777, &v);
    map.erase(proc, 777);
    benchmark::DoNotOptimize(v);
  }
}

template <typename B>
void BM_Map_Swap(benchmark::State& state) {
  auto space = B::make_space(
      single_proc(2, LockedHashMap<B>::thunk_step_budget(), 64));
  LockedHashMap<B> map(*space, 64, 128);
  typename B::Session proc(*space);
  map.put(proc, 1, 10);
  map.put(proc, 2, 20);
  std::uint64_t attempts = 0;  // unified Outcome accounting
  for (auto _ : state) {
    map.swap(proc, 1, 2, &attempts);
  }
  report_attempts(state, attempts, static_cast<double>(state.iterations()));
}

// --- queue -----------------------------------------------------------------

template <typename B>
void BM_Queue_EnqDeq(benchmark::State& state) {
  auto space = B::make_space(single_proc(2, 16, 2));
  typename B::Session proc(*space);
  // Pool must cover total enqueues in the bench run (nodes are retired,
  // not recycled); size generously and reset via fresh queue per chunk.
  for (auto _ : state) {
    state.PauseTiming();
    LockedQueue<B> q(*space, 0, 1, 1u << 16);
    state.ResumeTiming();
    std::uint32_t v = 0;
    for (int i = 0; i < 1000; ++i) {
      q.enqueue(proc, static_cast<std::uint32_t>(i));
      q.dequeue(proc, &v);
    }
    benchmark::DoNotOptimize(v);
  }
}

// --- graph -----------------------------------------------------------------

template <typename B>
void BM_Graph_ColourRing(benchmark::State& state) {
  const std::uint32_t n = 64;
  auto space = B::make_space(single_proc(
      3, LockedGraph<B>::thunk_step_budget(2), static_cast<int>(n)));
  LockedGraph<B> g(*space, LockedGraph<B>::ring(n));
  typename B::Session proc(*space);
  std::uint32_t v = 0;
  for (auto _ : state) {
    g.colour_vertex(proc, v);
    v = (v + 1) % n;
  }
}

// --- registry sweep --------------------------------------------------------

// One registration per (substrate op, backend): every future combination
// is one line here, not a new benchmark function.
void register_backend_sweeps() {
  RealBackends::for_each([](auto tag) {
    using B = typename decltype(tag)::type;
    const std::string suffix = std::string("/backend:") + B::name();
    auto reg = [&suffix](const char* name, void (*fn)(benchmark::State&)) {
      return benchmark::RegisterBenchmark((name + suffix).c_str(), fn);
    };
    reg("Bank_Transfer", BM_Bank_Transfer<B>);
    reg("List_InsertErase", BM_List_InsertErase<B>);
    // Each iteration permanently retires nodes (no recycling by design);
    // the iteration caps keep total demand inside the bounded pools.
    reg("Bst_InsertErase", BM_Bst_InsertErase<B>)->Iterations(400);
    reg("Map_PutGetErase", BM_Map_PutGetErase<B>)->Iterations(380);
    reg("Map_Swap", BM_Map_Swap<B>);
    reg("Queue_EnqDeq", BM_Queue_EnqDeq<B>)
        ->Unit(benchmark::kMicrosecond);
    reg("Graph_ColourRing", BM_Graph_ColourRing<B>);
  });
}

// --- transactions (wait-free executor only: PreparedTxn is WFL-specific) ---

void BM_Txn_BuildAndRunTwoLegs(benchmark::State& state) {
  LockSpace<RealPlat> space(practical_cfg(4, 24), 1, 8);
  Session<RealPlat> proc(space);
  std::vector<std::unique_ptr<Cell<RealPlat>>> acct;
  for (int i = 0; i < 4; ++i) {
    acct.push_back(std::make_unique<Cell<RealPlat>>(1000u));
  }
  Cell<RealPlat>* a0 = acct[0].get();
  Cell<RealPlat>* a1 = acct[1].get();
  Cell<RealPlat>* a2 = acct[2].get();
  Cell<RealPlat>* a3 = acct[3].get();
  for (auto _ : state) {
    TxnBuilder<RealPlat> b;
    const std::uint32_t leg1[] = {0, 1};
    const std::uint32_t leg2[] = {2, 3};
    b.op(leg1, [a0, a1](IdemCtx<RealPlat>& m) {
      m.store(*a0, m.load(*a0) - 1);
      m.store(*a1, m.load(*a1) + 1);
    });
    b.op(leg2, [a2, a3](IdemCtx<RealPlat>& m) {
      m.store(*a2, m.load(*a2) - 1);
      m.store(*a3, m.load(*a3) + 1);
    });
    benchmark::DoNotOptimize(std::move(b).build().submit(proc, Policy::retry()));
  }
}
BENCHMARK(BM_Txn_BuildAndRunTwoLegs);

void BM_Txn_RunPrebuilt(benchmark::State& state) {
  LockSpace<RealPlat> space(practical_cfg(4, 24), 1, 8);
  Session<RealPlat> proc(space);
  auto cell = std::make_unique<Cell<RealPlat>>(0u);
  Cell<RealPlat>* cp = cell.get();
  TxnBuilder<RealPlat> b;
  const std::uint32_t ids[] = {0, 1};
  b.op(ids, [cp](IdemCtx<RealPlat>& m) { m.store(*cp, m.load(*cp) + 1); });
  auto txn = std::move(b).build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(txn.submit(proc, Policy::retry()));
  }
}
BENCHMARK(BM_Txn_RunPrebuilt);

}  // namespace

// Machine-comparable wfl-bench-v1 JSON on stdout (see bench_json.hpp);
// backend-swept entries carry the "backend" key.
WFL_BENCH_JSON_MAIN_WITH(register_backend_sweeps)
