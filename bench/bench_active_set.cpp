// E7 — Theorem 5.2: active-set step complexity is adaptive — insert/remove
// cost O(k) for k resident members, getSet cost O(1).
//
// The benchmark varies the resident set size k and times an insert+remove
// pair (expected ~linear in k: the slot probe walks past k owners and the
// climb rebuilds k-sized snapshots) and a getSet (expected flat).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "wfl/active/active_set.hpp"
#include "wfl/platform/real.hpp"

namespace {

using wfl::ActiveSet;
using wfl::EbrDomain;
using wfl::IndexPool;
using wfl::RealPlat;
using wfl::SetMem;
using wfl::SetSnap;

struct Item {
  int id = 0;
};

struct Fixture {
  IndexPool<SetSnap<Item*>> pool{8192};
  EbrDomain ebr{2};
  SetMem<Item*> mem{pool, ebr};
  std::vector<std::unique_ptr<Item>> items;

  Fixture() {
    for (int i = 0; i < 64; ++i) items.push_back(std::make_unique<Item>());
  }
};

void BM_InsertRemovePair(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  Fixture f;
  ActiveSet<RealPlat, Item*> set(64, f.mem);
  const int pid = f.ebr.register_participant();
  f.ebr.enter(pid);
  // Pre-populate k resident members in the low slots.
  for (std::uint32_t i = 0; i < k; ++i) {
    set.insert(f.items[i].get(), pid);
  }
  Item probe;
  for (auto _ : state) {
    const int slot = set.insert(&probe, pid);
    set.remove(slot, pid);
  }
  f.ebr.exit(pid);
  f.ebr.collect(pid);
  state.SetLabel("resident=" + std::to_string(k));
}
BENCHMARK(BM_InsertRemovePair)->Arg(0)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_GetSet(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  Fixture f;
  ActiveSet<RealPlat, Item*> set(64, f.mem);
  const int pid = f.ebr.register_participant();
  f.ebr.enter(pid);
  for (std::uint32_t i = 0; i < k; ++i) {
    set.insert(f.items[i].get(), pid);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.get_set());
  }
  f.ebr.exit(pid);
  state.SetLabel("resident=" + std::to_string(k));
}
BENCHMARK(BM_GetSet)->Arg(0)->Arg(4)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
