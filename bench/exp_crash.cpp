// E14 — availability under a crash: the motivation for wait-free locks,
// measured.
//
// Setup (identical across disciplines): 4 processes contend on a pair of
// locks; each performs attempts until it has done `rounds` of them. At a
// fixed slot, one process is crash-failed by the (oblivious) CrashSchedule
// — the model's "arbitrarily delayed" taken to the limit. We measure what
// happens to the survivors:
//
//   * wflock (this paper): attempts keep completing in bounded own-steps;
//     any won-but-unfinished thunk of the victim is completed by the first
//     overlapping attempt (celebrateIfWon), so the data stays consistent
//     and post-crash success rates stay at their fair level.
//   * spin-2PL try-lock: if the crash lands while the victim HOLDS a lock,
//     the lock is held forever; every later attempt on it fails. Attempts
//     still *terminate* (bounded patience), but post-crash success on the
//     contended pair drops to zero — blocked, in the way that matters.
//   * Turek-style lock-free locks: survivors help the victim's operation
//     to completion and release its locks on its behalf; post-crash
//     progress continues (lock-free), though with no fairness bound.
//
// Because whether the crash slot lands inside the victim's critical
// section is schedule luck, the experiment sweeps seeds and reports, per
// discipline: how many runs left a lock permanently held ("wedged"), the
// survivors' post-crash completed operations, and whether every survivor
// finished its loop.
#include <cstdio>
#include <memory>
#include <vector>

#include "wfl/baseline/spin2pl.hpp"
#include "wfl/baseline/turek.hpp"
#include "wfl/util/cli.hpp"
#include "wfl/util/stats.hpp"
#include "wfl/util/table.hpp"
#include "wfl/wfl.hpp"

namespace {

using namespace wfl;

constexpr int kProcs = 4;
constexpr int kVictim = kProcs - 1;

struct CrashOutcome {
  std::uint64_t pre_crash_successes = 0;   // survivors, slots <= crash
  std::uint64_t post_crash_successes = 0;  // survivors, slots > crash
  bool survivors_finished = false;
  bool wedged = false;  // some lock permanently unavailable at the end
};

// Shared workload driver: every process retries attempts on the same lock
// pair {0,1} for a fixed window of 2·crash_slot global slots; the victim is
// crashed halfway through. Successes are split into the pre-crash and
// post-crash halves (equal slot length), so post/pre is a per-discipline
// availability ratio that is meaningful even though the disciplines'
// attempts cost wildly different step counts.
template <typename AttemptFn>
CrashOutcome drive(Simulator& sim, Schedule& sched, std::uint64_t crash_slot,
              AttemptFn attempt_of) {
  const std::uint64_t end_slot = 2 * crash_slot;
  std::vector<std::uint64_t> pre(kProcs, 0), post(kProcs, 0);
  for (int p = 0; p < kProcs; ++p) {
    sim.add_process([&, p, attempt_of] {
      auto attempt = attempt_of(p);
      while (Simulator::current()->slots_used() < end_slot) {
        const bool won = attempt();
        if (won && p != kVictim) {
          if (Simulator::current()->slots_used() > crash_slot) {
            ++post[static_cast<std::size_t>(p)];
          } else {
            ++pre[static_cast<std::size_t>(p)];
          }
        }
      }
    });
  }
  CrashOutcome out;
  out.survivors_finished = true;
  for (;;) {
    bool done = true;
    for (int p = 0; p < kProcs; ++p) {
      if (p != kVictim && !sim.is_finished(p)) done = false;
    }
    if (done) break;
    if (!sim.run(sched, 64 * end_slot, sim.finished_count() + 1)) {
      out.survivors_finished = false;
      break;
    }
  }
  for (int p = 0; p < kProcs; ++p) {
    if (p == kVictim) continue;
    out.pre_crash_successes += pre[static_cast<std::size_t>(p)];
    out.post_crash_successes += post[static_cast<std::size_t>(p)];
  }
  return out;
}

CrashOutcome run_wflock(std::uint64_t seed, std::uint64_t crash_slot) {
  LockConfig cfg;
  cfg.kappa = kProcs;
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 4;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  auto space = std::make_unique<LockSpace<SimPlat>>(cfg, kProcs, 2);
  auto counter = std::make_unique<Cell<SimPlat>>(0u);

  Simulator sim(seed);
  UniformSchedule inner(kProcs, seed);
  CrashSchedule sched(inner, kProcs, {{kVictim, crash_slot}}, seed ^ 0xE14);
  Cell<SimPlat>* cnt = counter.get();
  LockSpace<SimPlat>::Process victim_proc{};
  CrashOutcome out = drive(sim, sched, crash_slot, [&](int p) {
    auto proc = space->register_process();
    if (p == kVictim) victim_proc = proc;
    const std::uint32_t ids[2] = {0, 1};
    return [proc, ids, cnt, &space]() mutable {
      return space->try_locks(proc, {ids, 2}, [cnt](IdemCtx<SimPlat>& m) {
        m.store(*cnt, m.load(*cnt) + 1);
      });
    };
  });
  // The victim may be parked inside an EBR guard; drop it on its behalf so
  // the space can be destroyed (the fiber never runs again).
  if (victim_proc.ebr_pid >= 0 && !sim.is_finished(kVictim)) {
    space->abandon_process(victim_proc);
  }
  out.wedged = false;  // nothing is ever held in wflock
  return out;
}

CrashOutcome run_spin2pl(std::uint64_t seed, std::uint64_t crash_slot) {
  auto locks = std::make_unique<Spin2PL<SimPlat>>(2);
  auto counter = std::make_unique<std::uint64_t>(0);

  Simulator sim(seed);
  UniformSchedule inner(kProcs, seed);
  CrashSchedule sched(inner, kProcs, {{kVictim, crash_slot}}, seed ^ 0xE14);
  std::uint64_t* cnt = counter.get();
  Spin2PL<SimPlat>* l = locks.get();
  CrashOutcome out = drive(sim, sched, crash_slot, [&](int) {
    const std::uint32_t ids[2] = {0, 1};
    return [ids, cnt, l] {
      // A short critical section with a few shared steps, so a crash can
      // land inside it (each SimPlat op is one schedulable slot).
      return l->try_locked({ids, 2}, [cnt] {
        SimPlat::step();
        ++*cnt;
        SimPlat::step();
      }, /*patience=*/4);
    };
  });
  // Wedged iff some flag is still set after all survivors drained: only
  // the crashed victim can still hold it.
  out.wedged = l->any_held();
  return out;
}

CrashOutcome run_turek(std::uint64_t seed, std::uint64_t crash_slot) {
  auto space = std::make_unique<TurekLockSpace<SimPlat>>(kProcs, 2);
  auto counter = std::make_unique<Cell<SimPlat>>(0u);

  Simulator sim(seed);
  UniformSchedule inner(kProcs, seed);
  CrashSchedule sched(inner, kProcs, {{kVictim, crash_slot}}, seed ^ 0xE14);
  Cell<SimPlat>* cnt = counter.get();
  TurekLockSpace<SimPlat>::Process victim_proc{};
  CrashOutcome out = drive(sim, sched, crash_slot, [&](int p) {
    auto proc = space->register_process();
    if (p == kVictim) victim_proc = proc;
    const std::uint32_t ids[2] = {0, 1};
    return [proc, ids, cnt, &space]() mutable {
      space->apply(proc, {ids, 2}, [cnt](IdemCtx<SimPlat>& m) {
        m.store(*cnt, m.load(*cnt) + 1);
      });
      return true;  // an operation, not an attempt: always completes
    };
  });
  if (victim_proc.ebr_pid >= 0 && !sim.is_finished(kVictim)) {
    space->abandon_process(victim_proc);
  }
  out.wedged = false;  // helpers release the victim's locks
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.flag_int("seeds", 12));
  const std::uint64_t crash_slot =
      static_cast<std::uint64_t>(cli.flag_int("crash-slot", 60'000));
  cli.done();

  std::printf(
      "E14: availability under a crash (4 processes, lock pair {0,1}, "
      "victim crashed at slot %llu of a %llu-slot window, %d seeds)\n\n",
      static_cast<unsigned long long>(crash_slot),
      static_cast<unsigned long long>(2 * crash_slot), seeds);

  Table t({"discipline", "survivors finished", "pre-crash wins",
           "post-crash wins", "post/pre", "wedged runs",
           "post in wedged runs", "verdict"});

  struct Row {
    const char* name;
    CrashOutcome (*run)(std::uint64_t, std::uint64_t);
    bool expect_progress;
  };
  const Row rows[] = {
      {"wflock (wait-free)", &run_wflock, true},
      {"spin-2PL try-lock (blocking)", &run_spin2pl, false},
      {"Turek lock-free locks", &run_turek, true},
  };

  bool ok = true;
  for (const Row& row : rows) {
    int finished = 0, wedged = 0;
    std::uint64_t pre = 0, post = 0, post_when_wedged = 0;
    for (int s = 0; s < seeds; ++s) {
      const CrashOutcome o = row.run(static_cast<std::uint64_t>(s) + 1, crash_slot);
      finished += o.survivors_finished ? 1 : 0;
      wedged += o.wedged ? 1 : 0;
      pre += o.pre_crash_successes;
      post += o.post_crash_successes;
      if (o.wedged) post_when_wedged += o.post_crash_successes;
    }
    const double ratio =
        pre == 0 ? 0.0 : static_cast<double>(post) / static_cast<double>(pre);
    // "Progress preserved" = the post-crash half of the window is at least
    // half as productive as the pre-crash half (it is usually *more*
    // productive: one less contender).
    const bool progressed = finished == seeds && ratio >= 0.5;
    char fbuf[32], wbuf[32];
    std::snprintf(fbuf, sizeof fbuf, "%d/%d", finished, seeds);
    std::snprintf(wbuf, sizeof wbuf, "%d/%d", wedged, seeds);
    t.cell(row.name)
        .cell(fbuf)
        .cell(pre)
        .cell(post)
        .cell(ratio, 2)
        .cell(wbuf)
        .cell(post_when_wedged)
        .cell(row.expect_progress
                  ? (progressed ? "progress preserved" : "STALLED (!)")
                  : (wedged > 0 ? "wedges when victim dies in CS"
                                : "crash missed the CS this sweep"));
    t.end_row();
    if (row.expect_progress && !progressed) ok = false;
    // In a wedged spin-2PL run the pair is held forever from the crash on:
    // post-crash successes there must be negligible (boundary attempts
    // that completed just after the crash slot are tolerated).
    if (!row.expect_progress && wedged > 0) {
      const double leak = static_cast<double>(post_when_wedged) /
                          static_cast<double>(pre == 0 ? 1 : pre);
      if (leak > 0.05) ok = false;
    }
  }
  t.print();

  std::printf(
      "\nE14 verdict: %s\n",
      ok ? "wait-free and lock-free disciplines keep survivors productive "
           "through a crash; blocking 2PL wedges when the victim dies "
           "holding a lock"
         : "UNEXPECTED — see table");
  return ok ? 0 : 1;
}
