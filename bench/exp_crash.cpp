// E14 — availability under a crash: the motivation for wait-free locks,
// measured.
//
// Setup (identical across disciplines — ONE driver, templated on the
// LockBackend registry): 4 processes contend on a pair of locks via
// one-shot submissions of the same counter-increment thunk; at a fixed
// slot, one process is crash-failed by the (oblivious) CrashSchedule — the
// model's "arbitrarily delayed" taken to the limit. We measure what
// happens to the survivors:
//
//   * wflock (this paper): attempts keep completing in bounded own-steps;
//     any won-but-unfinished thunk of the victim is completed by the first
//     overlapping attempt (celebrateIfWon), so the data stays consistent
//     and post-crash success rates stay at their fair level.
//   * turek (lock-free helping): survivors help the victim's operation to
//     completion and release its locks on its behalf; post-crash progress
//     continues (lock-free), though with no fairness bound.
//   * spin2pl try-lock: if the crash lands while the victim HOLDS a lock,
//     the lock is held forever; every later attempt on it fails. Attempts
//     still *terminate* (bounded patience), but post-crash success on the
//     contended pair drops to zero — blocked, in the way that matters.
//
// Because whether the crash slot lands inside the victim's critical
// section is schedule luck, the experiment sweeps seeds and reports, per
// backend: how many runs left a lock permanently held ("wedged"), the
// survivors' post-crash completed operations, and whether every survivor
// finished its loop.
//
// Output: human table on stderr; stdout carries one wfl-bench-v1 JSON
// document with a "backend" key per row (exp_json.hpp), which the CI
// smoke job parses.
#include <cstdio>
#include <memory>
#include <vector>

#include "exp_json.hpp"
#include "wfl/util/cli.hpp"
#include "wfl/util/stats.hpp"
#include "wfl/util/table.hpp"
#include "wfl/wfl.hpp"

namespace {

using namespace wfl;

constexpr int kProcs = 4;
constexpr int kVictim = kProcs - 1;

struct CrashOutcome {
  std::uint64_t pre_crash_successes = 0;   // survivors, slots <= crash
  std::uint64_t post_crash_successes = 0;  // survivors, slots > crash
  bool survivors_finished = false;
  bool wedged = false;  // some lock permanently unavailable at the end
};

// One seeded run of one backend: every process submits one-shot attempts
// on the same lock pair {0,1} for a fixed window of 2·crash_slot global
// slots; the victim is crashed halfway through. Successes are split into
// the pre-crash and post-crash halves (equal slot length), so post/pre is
// a per-backend availability ratio that is meaningful even though the
// disciplines' attempts cost wildly different step counts.
template <typename B>
CrashOutcome run_crash(std::uint64_t seed, std::uint64_t crash_slot) {
  BackendConfig bc;
  bc.lock.kappa = kProcs;
  bc.lock.max_locks = 2;
  bc.lock.max_thunk_steps = 4;
  bc.lock.c0 = 8.0;
  bc.lock.c1 = 8.0;
  bc.max_procs = kProcs;
  bc.num_locks = 2;
  auto space = B::make_space(bc);
  auto counter = std::make_unique<Cell<SimPlat>>(0u);
  Cell<SimPlat>* cnt = counter.get();

  Simulator sim(seed);
  UniformSchedule inner(kProcs, seed);
  CrashSchedule sched(inner, kProcs, {{kVictim, crash_slot}}, seed ^ 0xE14);

  // Sessions live on this frame, not the fibers: registration is off the
  // attempt path, and RAII release at scope exit abandons the crash-parked
  // victim's slot on its behalf (see BasicSession / the adapter sessions).
  std::vector<typename B::Session> sessions;
  sessions.reserve(kProcs);
  for (int p = 0; p < kProcs; ++p) sessions.emplace_back(*space);

  const std::uint64_t end_slot = 2 * crash_slot;
  std::vector<std::uint64_t> pre(kProcs, 0), post(kProcs, 0);
  for (int p = 0; p < kProcs; ++p) {
    sim.add_process([&, p] {
      const StaticLockSet<2> locks{0, 1};
      while (Simulator::current()->slots_used() < end_slot) {
        const Outcome o = B::submit(
            sessions[static_cast<std::size_t>(p)], locks,
            [cnt](IdemCtx<SimPlat>& m) { m.store(*cnt, m.load(*cnt) + 1); },
            Policy::one_shot());
        if (o.won && p != kVictim) {
          if (Simulator::current()->slots_used() > crash_slot) {
            ++post[static_cast<std::size_t>(p)];
          } else {
            ++pre[static_cast<std::size_t>(p)];
          }
        }
      }
    });
  }

  CrashOutcome out;
  out.survivors_finished = true;
  for (;;) {
    bool done = true;
    for (int p = 0; p < kProcs; ++p) {
      if (p != kVictim && !sim.is_finished(p)) done = false;
    }
    if (done) break;
    if (!sim.run(sched, 64 * end_slot, sim.finished_count() + 1)) {
      out.survivors_finished = false;
      break;
    }
  }
  for (int p = 0; p < kProcs; ++p) {
    if (p == kVictim) continue;
    out.pre_crash_successes += pre[static_cast<std::size_t>(p)];
    out.post_crash_successes += post[static_cast<std::size_t>(p)];
  }
  // Wedged iff the space still reports a held lock after all survivors
  // drained (only blocking backends expose the notion — nothing is ever
  // "held" across a crash in the helping/wait-free disciplines).
  if constexpr (requires { space->any_held(); }) {
    out.wedged = space->any_held();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.flag_int("seeds", 12));
  const std::uint64_t crash_slot =
      static_cast<std::uint64_t>(cli.flag_int("crash-slot", 60'000));
  cli.done();

  std::fprintf(
      stderr,
      "E14: availability under a crash (4 processes, lock pair {0,1}, "
      "victim crashed at slot %llu of a %llu-slot window, %d seeds)\n\n",
      static_cast<unsigned long long>(crash_slot),
      static_cast<unsigned long long>(2 * crash_slot), seeds);

  Table t({"backend", "progress", "survivors finished", "pre-crash wins",
           "post-crash wins", "post/pre", "wedged runs",
           "post in wedged runs", "verdict"});
  wfl_bench::ExpJson json;

  bool ok = true;
  SimBackends<SimPlat>::for_each([&](auto tag) {
    using B = typename decltype(tag)::type;
    const bool expect_progress = B::progress() != BackendProgress::kBlocking;
    int finished = 0, wedged = 0;
    std::uint64_t pre = 0, post = 0, post_when_wedged = 0;
    for (int s = 0; s < seeds; ++s) {
      const std::uint64_t seed = static_cast<std::uint64_t>(s) + 1;
      const CrashOutcome o = run_crash<B>(seed, crash_slot);
      finished += o.survivors_finished ? 1 : 0;
      wedged += o.wedged ? 1 : 0;
      pre += o.pre_crash_successes;
      post += o.post_crash_successes;
      if (o.wedged) post_when_wedged += o.post_crash_successes;
      if (o.wedged || !o.survivors_finished) {
        // Same one-line format the fuzz campaign prints, so any wedge seen
        // here can be replayed by hand with the same three coordinates.
        std::fprintf(stderr,
                     "  %s: [reproducer: seed=%llu slot=%llu pid=%d]\n",
                     B::name(), static_cast<unsigned long long>(seed),
                     static_cast<unsigned long long>(crash_slot), kVictim);
      }
    }
    const double ratio =
        pre == 0 ? 0.0 : static_cast<double>(post) / static_cast<double>(pre);
    // "Progress preserved" = the post-crash half of the window is at least
    // half as productive as the pre-crash half (it is usually *more*
    // productive: one less contender).
    const bool progressed = finished == seeds && ratio >= 0.5;
    char fbuf[32], wbuf[32];
    std::snprintf(fbuf, sizeof fbuf, "%d/%d", finished, seeds);
    std::snprintf(wbuf, sizeof wbuf, "%d/%d", wedged, seeds);
    t.cell(B::name())
        .cell(progress_name(B::progress()))
        .cell(fbuf)
        .cell(pre)
        .cell(post)
        .cell(ratio, 2)
        .cell(wbuf)
        .cell(post_when_wedged)
        .cell(expect_progress
                  ? (progressed ? "progress preserved" : "STALLED (!)")
                  : (wedged > 0 ? "wedges when victim dies in CS"
                                : "crash missed the CS this sweep"));
    t.end_row();
    json.add(std::string("crash_availability/") + B::name(), B::name())
        .field("pre_crash_wins", static_cast<double>(pre))
        .field("post_crash_wins", static_cast<double>(post))
        .field("post_pre_ratio", ratio)
        .field("wedged_runs", wedged)
        .field("survivors_finished_runs", finished)
        .field("seeds", seeds);
    if (expect_progress && !progressed) ok = false;
    // In a wedged blocking run the pair is held forever from the crash on:
    // post-crash successes there must be negligible (boundary attempts
    // that completed just after the crash slot are tolerated).
    if (!expect_progress && wedged > 0) {
      const double leak = static_cast<double>(post_when_wedged) /
                          static_cast<double>(pre == 0 ? 1 : pre);
      if (leak > 0.05) ok = false;
    }
  });
  t.print(stderr);

  std::fprintf(
      stderr, "\nE14 verdict: %s\n",
      ok ? "wait-free and lock-free disciplines keep survivors productive "
           "through a crash; blocking 2PL wedges when the victim dies "
           "holding a lock"
         : "UNEXPECTED — see table");
  json.emit();
  return ok ? 0 : 1;
}
