// E12 — two refinements of the fairness theorem that the headline
// experiments don't isolate:
//
// (a) Independence (Thm 1.1: an attempt succeeds "independently of p's
//     other attempts"). A victim process runs a long series of attempts
//     under steady symmetric contention; we test the outcome sequence for
//     serial dependence with a lag-1 contingency chi-square. Independence
//     predicts chi² ~ χ²(1): values below the 95% critical value 3.84 in
//     the typical seed (we report several seeds; occasional excursions are
//     expected at 5% rate).
//
// (b) Adaptivity (Thm 6.9 is stated per-descriptor: success >= 1/C_p where
//     C_p sums the *actual* per-lock contention bounds, not the global
//     worst case κ·L). We pin a victim on one lock and vary only how many
//     background processes share that lock; the victim's success rate must
//     track 1/(k+1) as k varies, even though the space-wide κ stays fixed
//     at its maximum — i.e. you pay for the contention you experience, not
//     for the bound you declared.
#include <cstdio>
#include <memory>
#include <vector>

#include "wfl/wfl.hpp"
#include "wfl/util/cli.hpp"
#include "wfl/util/stats.hpp"
#include "wfl/util/table.hpp"

namespace wfl {
namespace {

LockConfig one_lock_cfg(std::uint32_t kappa) {
  LockConfig cfg;
  cfg.kappa = kappa;
  cfg.max_locks = 1;
  cfg.max_thunk_steps = 2;
  cfg.delay_mode = DelayMode::kTheory;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  return cfg;
}

// --- (a) independence ----------------------------------------------------

struct Lag1 {
  // Transition counts between consecutive outcomes of the victim.
  std::uint64_t n[2][2] = {{0, 0}, {0, 0}};
  void add(bool prev, bool cur) { ++n[prev ? 1 : 0][cur ? 1 : 0]; }

  // Pearson chi-square on the 2x2 lag-1 contingency table, 1 dof.
  double chi2() const {
    const double a = static_cast<double>(n[0][0]);
    const double b = static_cast<double>(n[0][1]);
    const double c = static_cast<double>(n[1][0]);
    const double d = static_cast<double>(n[1][1]);
    const double N = a + b + c + d;
    const double denom = (a + b) * (c + d) * (a + c) * (b + d);
    if (denom == 0.0 || N == 0.0) return 0.0;
    const double det = a * d - b * c;
    return N * det * det / denom;
  }
};

struct IndepResult {
  SuccessRate rate;
  Lag1 lag;
};

IndepResult run_independence(int procs, int victim_attempts,
                             std::uint64_t seed) {
  const LockConfig cfg = one_lock_cfg(static_cast<std::uint32_t>(procs));
  LockSpace<SimPlat> space(cfg, procs, 1);
  auto counter = std::make_unique<Cell<SimPlat>>(0u);
  Cell<SimPlat>* cnt = counter.get();
  std::atomic<bool> stop{false};  // raw control flag, not model state
  IndepResult out;

  Simulator sim(seed);
  // Victim: process 0.
  sim.add_process([&] {
    auto proc = space.register_process();
    const std::uint32_t ids[1] = {0};
    bool have_prev = false;
    bool prev = false;
    for (int i = 0; i < victim_attempts; ++i) {
      const bool won = space.try_locks(proc, ids, [cnt](IdemCtx<SimPlat>& m) {
        m.store(*cnt, m.load(*cnt) + 1);
      });
      out.rate.add(won);
      if (have_prev) out.lag.add(prev, won);
      prev = won;
      have_prev = true;
    }
    stop.store(true, std::memory_order_relaxed);
  });
  // Steady background contention on the same lock.
  for (int p = 1; p < procs; ++p) {
    sim.add_process([&] {
      auto proc = space.register_process();
      const std::uint32_t ids[1] = {0};
      while (!stop.load(std::memory_order_relaxed)) {
        space.try_locks(proc, ids, [cnt](IdemCtx<SimPlat>& m) {
          m.store(*cnt, m.load(*cnt) + 1);
        });
      }
    });
  }
  UniformSchedule sched(procs, seed * 31 + 5);
  WFL_CHECK(sim.run(sched, 8'000'000'000ull));
  return out;
}

// --- (b) adaptivity ------------------------------------------------------

struct AdaptResult {
  SuccessRate rate;
};

// `procs_total` processes exist and κ is declared for all of them, but
// only `k` of them contend the victim's lock; the rest hammer a far-away
// lock. C_p for the victim is therefore k+1.
AdaptResult run_adaptivity(int procs_total, int k, int victim_attempts,
                           std::uint64_t seed) {
  const LockConfig cfg =
      one_lock_cfg(static_cast<std::uint32_t>(procs_total));
  LockSpace<SimPlat> space(cfg, procs_total, 2);
  auto c0 = std::make_unique<Cell<SimPlat>>(0u);
  auto c1 = std::make_unique<Cell<SimPlat>>(0u);
  Cell<SimPlat>* cell0 = c0.get();
  Cell<SimPlat>* cell1 = c1.get();
  std::atomic<bool> stop{false};
  AdaptResult out;

  Simulator sim(seed);
  sim.add_process([&] {
    auto proc = space.register_process();
    const std::uint32_t ids[1] = {0};
    for (int i = 0; i < victim_attempts; ++i) {
      out.rate.add(space.try_locks(proc, ids, [cell0](IdemCtx<SimPlat>& m) {
        m.store(*cell0, m.load(*cell0) + 1);
      }));
    }
    stop.store(true, std::memory_order_relaxed);
  });
  for (int p = 1; p < procs_total; ++p) {
    const bool contends = p <= k;
    sim.add_process([&, contends] {
      auto proc = space.register_process();
      const std::uint32_t mine[1] = {contends ? 0u : 1u};
      Cell<SimPlat>* cell = contends ? cell0 : cell1;
      while (!stop.load(std::memory_order_relaxed)) {
        space.try_locks(proc, mine, [cell](IdemCtx<SimPlat>& m) {
          m.store(*cell, m.load(*cell) + 1);
        });
      }
    });
  }
  UniformSchedule sched(procs_total, seed * 17 + 3);
  WFL_CHECK(sim.run(sched, 8'000'000'000ull));
  return out;
}

int main_impl(int argc, char** argv) {
  Cli cli(argc, argv);
  const int attempts = static_cast<int>(cli.flag_int("attempts", 400));
  const int seeds = static_cast<int>(cli.flag_int("seeds", 5));
  cli.done();

  std::printf(
      "E12(a): independence of a victim's consecutive attempt outcomes\n"
      "(3 processes on one lock, kappa=3; bound 1/3). chi2 is the lag-1\n"
      "contingency statistic; under independence it exceeds 3.84 only 5%%\n"
      "of the time.\n\n");
  Table ta({"seed", "attempts", "succ-rate", "wilson-lo", "bound",
            "lag1-chi2", "indep@95%"});
  int indep_pass = 0;
  for (int s = 0; s < seeds; ++s) {
    const IndepResult r =
        run_independence(3, attempts, 1000 + static_cast<std::uint64_t>(s));
    const double chi2 = r.lag.chi2();
    const bool ok = chi2 <= 3.841;
    indep_pass += ok ? 1 : 0;
    ta.cell(1000 + s)
        .cell(r.rate.trials())
        .cell(r.rate.rate(), 3)
        .cell(r.rate.wilson_lower(), 3)
        .cell(1.0 / 3.0, 3)
        .cell(chi2, 2)
        .cell(ok ? "yes" : "no");
    ta.end_row();
  }
  ta.print();
  std::printf("independent at 95%% in %d/%d seeds (expect ~95%%).\n\n",
              indep_pass, seeds);

  std::printf(
      "E12(b): adaptivity — victim success tracks its own C_p = k+1, not\n"
      "the declared space-wide kappa (7 processes exist; only k share the\n"
      "victim's lock).\n\n");
  Table tb({"k (sharers)", "C_p", "bound 1/C_p", "measured", "wilson-lo",
            "pass"});
  for (int k = 0; k <= 5; ++k) {
    const AdaptResult r = run_adaptivity(7, k, attempts, 40 + k);
    const double bound = 1.0 / (k + 1);
    // The Wilson lower confidence bound must not sit below the theorem's
    // guarantee by more than noise allows.
    const bool pass = r.rate.wilson_lower() >= bound * 0.92;
    tb.cell(k)
        .cell(k + 1)
        .cell(bound, 3)
        .cell(r.rate.rate(), 3)
        .cell(r.rate.wilson_lower(), 3)
        .cell(pass ? "yes" : "NO!");
    tb.end_row();
  }
  tb.print();
  std::printf(
      "\nReading: the measured success probability degrades with the\n"
      "victim's actual contention (column 4 ~ 1/C_p) while kappa stayed\n"
      "fixed — the bound is adaptive, as Thm 6.9 states it.\n");
  return 0;
}

}  // namespace
}  // namespace wfl

int main(int argc, char** argv) { return wfl::main_impl(argc, argv); }
