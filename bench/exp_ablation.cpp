// E9/E10 — why Algorithm 3 has a help phase and fixed delays.
//
// A scripted *adaptive player adversary* (the model's player: it sees the
// full history, including revealed priorities, and decides when the victim
// starts its attempt) attacks a victim on a single lock:
//
//   The victim polls the lock's active set and starts its attempt exactly
//   when it observes a revealed competitor with a top-decile priority.
//
// E10 (helping): with the help phase ON, the victim runs that strong
// competitor to completion *before* revealing its own priority (Lemma 6.4)
// — the attack is neutralized and the 1/C_p floor holds. With the help
// phase OFF the victim competes head-on against a priority it was chosen
// to lose to, and its success rate collapses below the floor.
//
// E9 (delays): with delays ON the victim's reveal sits at a fixed offset
// from its start (Observation 6.7); with delays OFF the reveal time leaks
// timing the adversary can steer around (footnote 4's stretching attack:
// flood the lock with filler attempts when the observed competitor is
// weak, stay quiet when it is strong). The delta is smaller than E10's —
// the paper introduces delays to close a leak, not a crater — and the
// table reports whatever the attack extracts.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "wfl/sim/player.hpp"
#include "wfl/util/cli.hpp"
#include "wfl/util/table.hpp"
#include "wfl/wfl.hpp"

namespace {

using namespace wfl;
using Space = LockSpace<SimPlat>;

constexpr std::int64_t kStrongThreshold =
    priority_top_fraction(0.125);  // top 12.5% of the priority range

struct ArmResult {
  SuccessRate overall;
  SuccessRate when_attack_landed;  // episodes started onto a strong rival
};

// One experiment arm. The victim is the adaptive player for its own start
// time; `stretch` additionally runs the E9 filler-flood strategy.
ArmResult run_arm(bool help_on, bool delays_on, bool stretch, int episodes,
                  std::uint64_t seed) {
  LockConfig cfg;
  cfg.kappa = 4;  // victim + blocker + 2 fillers
  cfg.max_locks = 1;
  // Long filler thunks are part of the E10 attack: a rival that celebrates
  // a recent winner's thunk mid-run() stays *active* for those T steps,
  // which is the window the victim races its own insert+reveal into. With
  // trivial thunks the window (~a dozen steps) closes before any detect-
  // then-start adversary can reveal, and the ambush cannot land at all.
  cfg.max_thunk_steps = 24;
  cfg.help_phase = help_on;
  cfg.delay_mode = delays_on ? DelayMode::kTheory : DelayMode::kOff;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  auto space = std::make_unique<Space>(cfg, 4, 1);
  // Scratch cells for the fillers' long thunks; guarded by lock 0 like
  // everything else in this single-lock arena.
  auto scratch0 = std::make_unique<Cell<SimPlat>>(0u);
  auto scratch1 = std::make_unique<Cell<SimPlat>>(0u);
  Cell<SimPlat>* scratch[2] = {scratch0.get(), scratch1.get()};

  ArmResult res;
  bool stop = false;       // plain: single-threaded sim
  bool want_filler = false;

  Simulator sim(seed);
  // Victim: the adaptive player. It polls the lock's field and starts its
  // attempt at the instant a *fresh* strong priority appears (edge
  // detection, not state detection: a strong rival is only dangerous for
  // the duration of its run(), so the attack must race into that window,
  // and every poll spent on an already-seen value wastes it).
  sim.add_process([&] {
    Session<SimPlat> session(space->table());
    auto proc = session.process();
    PlayerObserver<SimPlat> spy(session);
    const std::uint32_t ids[] = {0};
    std::int64_t last_strong = -1;
    for (int e = 0; e < episodes; ++e) {
      const bool strong_seen =
          spy.wait_for(0, 600, [&](const FieldView& v) {
            if (stretch && v.revealed_members > 0 &&
                v.strongest_priority <= kStrongThreshold) {
              // Weak rival revealed: flood (E9's stretching lever) and
              // keep waiting for a strong one.
              want_filler = true;
            }
            const bool fresh = v.strongest_priority > kStrongThreshold &&
                               v.strongest_priority != last_strong;
            if (fresh) last_strong = v.strongest_priority;
            return fresh;
          });
      const bool won =
          space->try_locks(proc, ids, typename Space::Thunk{});
      res.overall.add(won);
      if (strong_seen) res.when_attack_landed.add(won);
    }
    stop = true;
  });
  // Blocker: the rival the adversary watches. Attempts continuously.
  sim.add_process([&] {
    auto proc = space->register_process();
    const std::uint32_t ids[] = {0};
    Xoshiro256 rng(seed * 3 + 1);
    while (!stop) {
      space->try_locks(proc, ids, typename Space::Thunk{});
      const std::uint64_t think = rng.next_below(32);
      for (std::uint64_t s = 0; s < think; ++s) SimPlat::step();
    }
  });
  // Fillers: in the stretch arms they idle until the strategy calls for
  // contention; otherwise they attempt continuously with *long* thunks —
  // every filler win a rival celebrates mid-run() keeps that rival active
  // longer, which is the window the E10 race needs (see cfg comment).
  for (int f = 0; f < 2; ++f) {
    sim.add_process([&, f] {
      auto proc = space->register_process();
      const std::uint32_t ids[] = {0};
      Cell<SimPlat>* cell = scratch[f];
      Xoshiro256 rng(seed * 7 + 13 + static_cast<std::uint64_t>(f));
      const auto long_thunk = [cell](IdemCtx<SimPlat>& m) {
        for (int i = 0; i < 11; ++i) {
          m.store(*cell, m.load(*cell) + 1);
        }
      };
      while (!stop) {
        if (!stretch) {
          space->try_locks(proc, ids, long_thunk);
          const std::uint64_t think = rng.next_below(16);
          for (std::uint64_t s = 0; s < think; ++s) SimPlat::step();
        } else if (want_filler) {
          want_filler = false;
          space->try_locks(proc, ids, typename Space::Thunk{});
        } else {
          SimPlat::step();
        }
      }
    });
  }
  UniformSchedule sched(4, seed ^ 0xDEAD);
  WFL_CHECK(sim.run(sched, 16'000'000'000ull));
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int episodes = static_cast<int>(cli.flag_int("episodes", 400));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.flag_int("seed", 3));
  const std::string only = cli.flag_string("ablate", "all");
  cli.done();

  std::printf("E9/E10: ablations under a scripted adaptive player "
              "adversary (single lock, C_p = kappa = 4, floor = 1/4)\n\n");

  Table t({"arm", "overall rate", "attack-landed rate", "landed n",
           "floor 1/C_p", "verdict"});
  const double floor = 0.25;
  bool baseline_ok = true, help_collapses = false;
  double delays_on_rate = 0, delays_off_rate = 0;

  auto add_row = [&](const char* name, const ArmResult& r,
                     bool expect_floor) {
    const bool held = r.overall.wilson_upper() >= floor;
    t.cell(name).cell(r.overall.rate(), 3)
        .cell(r.when_attack_landed.rate(), 3)
        .cell(r.when_attack_landed.trials()).cell(floor, 2)
        .cell(expect_floor ? (held ? "floor held" : "FLOOR LOST")
                           : (held ? "floor held (!)" : "floor lost — "
                                                        "as predicted"));
    t.end_row();
    return held;
  };

  if (only == "all" || only == "help") {
    const auto base = run_arm(true, true, false, episodes, seed);
    baseline_ok = add_row("help ON, delays ON (paper)", base, true);
    const auto nohelp = run_arm(false, false, false, episodes, seed + 1);
    const bool held = add_row("help OFF (E10 attack)", nohelp, false);
    help_collapses = !held || nohelp.when_attack_landed.rate() <
                                  base.when_attack_landed.rate() * 0.7;
    const auto withhelp = run_arm(true, false, false, episodes, seed + 1);
    add_row("help ON, delays OFF (same attack)", withhelp, true);
  }
  if (only == "all" || only == "delays") {
    const auto d_on = run_arm(true, true, true, episodes, seed + 2);
    add_row("delays ON + stretch adversary (E9)", d_on, true);
    delays_on_rate = d_on.overall.rate();
    const auto d_off = run_arm(true, false, true, episodes, seed + 2);
    add_row("delays OFF + stretch adversary (E9)", d_off, true);
    delays_off_rate = d_off.overall.rate();
  }
  t.print();

  if (only == "all" || only == "delays") {
    std::printf("\nE9: stretch-adversary rate delta (on - off) = %+.3f — the"
                " delays close a timing side channel;\n    the paper's bound"
                " only *requires* them, the attack surface here is narrow.\n",
                delays_on_rate - delays_off_rate);
  }
  const bool ok = baseline_ok && ((only == "delays") || help_collapses);
  std::printf("\nE9/E10 verdict: %s\n",
              ok ? "helping is what defeats the known-priority ambush "
                   "(E10); baseline floors hold"
                 : "UNEXPECTED — baseline lost its floor or the ablation "
                   "showed no effect");
  return ok ? 0 : 1;
}
