// E5 — practicality (§7): throughput of the wait-free locks against the §3
// baselines on the bank-transfer workload, real threads.
//
// Strategies:
//   wflock        — Algorithm 3, practical mode (delays off, retry on fail)
//   wflock(fair)  — Algorithm 3 with the paper's delays (the fairness
//                   bounds' price tag, paid in the T0/T1 stalls)
//   turek         — lock-free locks with recursive helping
//   spin2pl       — test-and-set spinlocks, ordered 2PL, bounded trylock
//   mutex2pl      — std::mutex ordered 2PL (blocking)
//
// Numbers are machine-dependent (this table is about *shape*: wflock's
// practical mode should land within a small factor of the blocking
// baselines while keeping per-attempt bounds; the fair mode pays ~T0+T1
// spins per op).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "wfl/util/cli.hpp"
#include "wfl/util/table.hpp"
#include "wfl/wfl.hpp"

namespace {

using namespace wfl;
using Plat = RealPlat;

constexpr int kAccounts = 16;
constexpr std::uint32_t kInitial = 1000;

struct RunOut {
  double ops_per_sec = 0;
  bool conserved = false;
};

// Drives `op(thread, a, b, amount)` from `threads` threads for `secs`.
template <typename Op, typename Audit>
RunOut drive(int threads, double secs, Op&& op, Audit&& audit,
             std::uint64_t expected) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      Plat::seed_rng(4000 + static_cast<std::uint64_t>(t));
      Xoshiro256 rng(t * 7 + 3);
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto a = static_cast<std::uint32_t>(rng.next_below(kAccounts));
        auto b = static_cast<std::uint32_t>(rng.next_below(kAccounts));
        if (b == a) b = (b + 1) % kAccounts;
        op(t, a, b, static_cast<std::uint32_t>(rng.next_below(10)));
        ++local;
      }
      ops.fetch_add(local, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(secs));
  stop.store(true);
  for (auto& th : ts) th.join();
  RunOut out;
  out.ops_per_sec = static_cast<double>(ops.load()) / secs;
  out.conserved = audit() == expected;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double secs = cli.flag_double("secs", 0.4);
  cli.done();
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kInitial) * kAccounts;

  std::printf("E5: bank-transfer throughput (ops/s), %d accounts, "
              "2 locks/op, real threads\n\n", kAccounts);

  Table t({"strategy", "threads", "ops/s", "total conserved"});
  for (int threads : {1, 2, 4}) {
    {  // wflock practical
      LockConfig cfg;
      cfg.kappa = static_cast<std::uint32_t>(threads);
      cfg.max_locks = 2;
      cfg.max_thunk_steps = 8;
      cfg.delay_mode = DelayMode::kOff;
      LockSpace<Plat> space(cfg, threads, kAccounts);
      Bank<Plat> bank(space, kAccounts, kInitial);
      std::vector<Session<Plat>> sessions;
      for (int i = 0; i < threads; ++i) {
        sessions.emplace_back(space);
      }
      auto out = drive(
          threads, secs,
          [&](int tt, std::uint32_t a, std::uint32_t b, std::uint32_t amt) {
            while (!bank.try_transfer(sessions[static_cast<std::size_t>(tt)], a,
                                      b, amt)) {
            }
          },
          [&] { return bank.total_balance(); }, expected);
      t.cell("wflock S" + std::to_string(space.num_shards()))
          .cell(threads).cell(format_si(out.ops_per_sec))
          .cell(out.conserved ? "yes" : "NO");
      t.end_row();
    }
    {  // wflock fair (theory delays)
      LockConfig cfg;
      cfg.kappa = static_cast<std::uint32_t>(threads);
      cfg.max_locks = 2;
      cfg.max_thunk_steps = 8;
      cfg.delay_mode = DelayMode::kTheory;
      cfg.c0 = 4.0;
      cfg.c1 = 4.0;
      LockSpace<Plat> space(cfg, threads, kAccounts);
      Bank<Plat> bank(space, kAccounts, kInitial);
      std::vector<Session<Plat>> sessions;
      for (int i = 0; i < threads; ++i) {
        sessions.emplace_back(space);
      }
      auto out = drive(
          threads, secs,
          [&](int tt, std::uint32_t a, std::uint32_t b, std::uint32_t amt) {
            while (!bank.try_transfer(sessions[static_cast<std::size_t>(tt)], a,
                                      b, amt)) {
            }
          },
          [&] { return bank.total_balance(); }, expected);
      t.cell("wflock(fair) S" + std::to_string(space.num_shards()))
          .cell(threads).cell(format_si(out.ops_per_sec))
          .cell(out.conserved ? "yes" : "NO");
      t.end_row();
    }
    {  // turek
      TurekLockSpace<Plat> space(threads, kAccounts);
      std::vector<std::unique_ptr<Cell<Plat>>> accounts;
      for (int i = 0; i < kAccounts; ++i) {
        accounts.push_back(std::make_unique<Cell<Plat>>(kInitial));
      }
      std::vector<typename TurekLockSpace<Plat>::Process> procs;
      for (int i = 0; i < threads; ++i) {
        procs.push_back(space.register_process());
      }
      auto out = drive(
          threads, secs,
          [&](int tt, std::uint32_t a, std::uint32_t b, std::uint32_t amt) {
            Cell<Plat>& src = *accounts[a];
            Cell<Plat>& dst = *accounts[b];
            const std::uint32_t ids[] = {a, b};
            space.apply(procs[static_cast<std::size_t>(tt)], ids,
                        [&src, &dst, amt](IdemCtx<Plat>& m) {
                          const std::uint32_t s = m.load(src);
                          if (s >= amt) {
                            m.store(src, s - amt);
                            m.store(dst, m.load(dst) + amt);
                          }
                        });
          },
          [&] {
            std::uint64_t sum = 0;
            for (const auto& a : accounts) sum += a->peek();
            return sum;
          },
          expected);
      t.cell("turek").cell(threads).cell(format_si(out.ops_per_sec))
          .cell(out.conserved ? "yes" : "NO");
      t.end_row();
    }
    {  // spin2pl (try + retry)
      Spin2PL<Plat> locks(kAccounts);
      std::vector<std::uint32_t> balances(kAccounts, kInitial);
      auto out = drive(
          threads, secs,
          [&](int, std::uint32_t a, std::uint32_t b, std::uint32_t amt) {
            const std::uint32_t ids[] = {a, b};
            while (!locks.try_locked(ids, [&] {
              if (balances[a] >= amt) {
                balances[a] -= amt;
                balances[b] += amt;
              }
            })) {
            }
          },
          [&] {
            std::uint64_t sum = 0;
            for (auto v : balances) sum += v;
            return sum;
          },
          expected);
      t.cell("spin2pl").cell(threads).cell(format_si(out.ops_per_sec))
          .cell(out.conserved ? "yes" : "NO");
      t.end_row();
    }
    {  // mutex2pl
      Mutex2PL locks(kAccounts);
      std::vector<std::uint32_t> balances(kAccounts, kInitial);
      auto out = drive(
          threads, secs,
          [&](int, std::uint32_t a, std::uint32_t b, std::uint32_t amt) {
            const std::uint32_t ids[] = {a, b};
            locks.locked(ids, [&] {
              if (balances[a] >= amt) {
                balances[a] -= amt;
                balances[b] += amt;
              }
            });
          },
          [&] {
            std::uint64_t sum = 0;
            for (auto v : balances) sum += v;
            return sum;
          },
          expected);
      t.cell("mutex2pl").cell(threads).cell(format_si(out.ops_per_sec))
          .cell(out.conserved ? "yes" : "NO");
      t.end_row();
    }
  }
  t.print();
  std::printf("\n(one physical core on this machine: threads>1 measures "
              "oversubscription behavior, which is where blocking "
              "strategies suffer preemption-holding-lock stalls)\n");
  return 0;
}
