// E5 — practicality (§7): throughput of the wait-free locks against the §3
// baselines on the bank-transfer workload, real threads.
//
// One driver, every discipline: the Bank substrate is templated on a
// LockBackend, so each row is the registry entry's backend running the
// SAME substrate code under Policy::retry() —
//
//   wflock        — Algorithm 3, practical mode (delays off, retry on fail)
//   turek         — lock-free locks with recursive helping
//   spin2pl       — test-and-set spinlocks, ordered 2PL, bounded trylock
//   mutex2pl      — std::mutex ordered 2PL (blocking)
//
// plus one off-registry configuration row, wflock(fair): Algorithm 3 with
// the paper's delays — the fairness bounds' price tag, paid in T0/T1
// stalls. (Same backend, different BackendConfig; delay modes are config,
// not discipline.)
//
// Output: the human table goes to stderr; stdout carries one wfl-bench-v1
// JSON document (exp_json.hpp) whose entries have a "backend" key, so
//   ./exp_throughput > EXP_throughput.json
// captures machine-comparable rows per (backend, threads).
//
// Numbers are machine-dependent (this table is about *shape*: wflock's
// practical mode should land within a small factor of the blocking
// baselines while keeping per-attempt bounds; the fair mode pays ~T0+T1
// spins per op).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "exp_json.hpp"
#include "wfl/util/cli.hpp"
#include "wfl/util/table.hpp"
#include "wfl/wfl.hpp"

namespace {

using namespace wfl;
using Plat = RealPlat;

constexpr int kAccounts = 16;
constexpr std::uint32_t kInitial = 1000;

struct RunOut {
  double ops_per_sec = 0;
  double attempts_per_op = 0;
  bool conserved = false;
  std::string note;  // table-only annotation (e.g. wflock shard count)
};

// Drives `op(thread, a, b, amount) -> attempts` from `threads` threads for
// `secs`, then audits conservation.
template <typename Op, typename Audit>
RunOut drive(int threads, double secs, Op&& op, Audit&& audit,
             std::uint64_t expected) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint64_t> attempts{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      Plat::seed_rng(4000 + static_cast<std::uint64_t>(t));
      Xoshiro256 rng(t * 7 + 3);
      std::uint64_t local = 0, local_attempts = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto a = static_cast<std::uint32_t>(rng.next_below(kAccounts));
        auto b = static_cast<std::uint32_t>(rng.next_below(kAccounts));
        if (b == a) b = (b + 1) % kAccounts;
        local_attempts +=
            op(t, a, b, static_cast<std::uint32_t>(rng.next_below(10)));
        ++local;
      }
      ops.fetch_add(local, std::memory_order_relaxed);
      attempts.fetch_add(local_attempts, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(secs));
  stop.store(true);
  for (auto& th : ts) th.join();
  RunOut out;
  const auto total_ops = ops.load();
  out.ops_per_sec = static_cast<double>(total_ops) / secs;
  out.attempts_per_op =
      total_ops > 0
          ? static_cast<double>(attempts.load()) / static_cast<double>(total_ops)
          : 0.0;
  out.conserved = audit() == expected;
  return out;
}

BackendConfig bank_cfg(int threads) {
  BackendConfig bc;
  bc.lock.kappa = static_cast<std::uint32_t>(threads);
  bc.lock.max_locks = 2;
  bc.lock.max_thunk_steps = 8;
  bc.lock.delay_mode = DelayMode::kOff;
  bc.max_procs = threads;
  bc.num_locks = kAccounts;
  return bc;
}

// The batch row: the same wflock space and substrate, but the inner loop
// submits chunks of 16 transfers through Bank::transfer_batch — the PR-5
// batch entry point that amortizes EBR guard entry and lock-set
// validation instead of re-validating a fresh StaticLockSet per transfer.
RunOut run_bank_batch(int threads, double secs, const BackendConfig& bc) {
  using B = WflBackend<Plat>;
  constexpr int kBatch = 16;
  auto space = B::make_space(bc);
  Bank<B> bank(*space, kAccounts, kInitial);
  std::vector<typename B::Session> sessions;
  sessions.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) sessions.emplace_back(*space);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint64_t> attempts{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      Plat::seed_rng(4000 + static_cast<std::uint64_t>(t));
      Xoshiro256 rng(t * 7 + 3);
      using Transfer = typename Bank<B>::Transfer;
      std::uint64_t local = 0, local_attempts = 0;
      std::vector<Transfer> xs(kBatch);
      while (!stop.load(std::memory_order_relaxed)) {
        for (Transfer& x : xs) {
          x.from = static_cast<std::uint32_t>(rng.next_below(kAccounts));
          x.to = static_cast<std::uint32_t>(rng.next_below(kAccounts));
          if (x.to == x.from) x.to = (x.to + 1) % kAccounts;
          x.amount = static_cast<std::uint32_t>(rng.next_below(10));
        }
        const BatchOutcome o = bank.transfer_batch(
            sessions[static_cast<std::size_t>(t)],
            std::span<const Transfer>(xs.data(), xs.size()),
            Policy::retry());
        local += o.ops;
        local_attempts += o.attempts;
      }
      ops.fetch_add(local, std::memory_order_relaxed);
      attempts.fetch_add(local_attempts, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(secs));
  stop.store(true);
  for (auto& th : ts) th.join();
  RunOut out;
  const auto total_ops = ops.load();
  out.ops_per_sec = static_cast<double>(total_ops) / secs;
  out.attempts_per_op =
      total_ops > 0 ? static_cast<double>(attempts.load()) /
                          static_cast<double>(total_ops)
                    : 0.0;
  out.conserved = bank.total_balance() ==
                  static_cast<std::uint64_t>(kInitial) * kAccounts;
  out.note = " S" + std::to_string(space->num_shards()) + " B" +
             std::to_string(kBatch);
  return out;
}

// One (backend, config, threads) measurement through the generic substrate.
template <typename B>
RunOut run_bank(int threads, double secs, const BackendConfig& bc) {
  auto space = B::make_space(bc);
  Bank<B> bank(*space, kAccounts, kInitial);
  std::vector<typename B::Session> sessions;
  sessions.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) sessions.emplace_back(*space);
  RunOut out = drive(
      threads, secs,
      [&](int tt, std::uint32_t a, std::uint32_t b, std::uint32_t amt) {
        return bank
            .transfer(sessions[static_cast<std::size_t>(tt)], a, b, amt,
                      Policy::retry())
            .attempts;
      },
      [&] { return bank.total_balance(); },
      static_cast<std::uint64_t>(kInitial) * kAccounts);
  if constexpr (requires { space->num_shards(); }) {
    out.note = " S" + std::to_string(space->num_shards());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double secs = cli.flag_double("secs", 0.4);
  cli.done();

  std::fprintf(stderr,
               "E5: bank-transfer throughput (ops/s), %d accounts, "
               "2 locks/op, real threads\n\n", kAccounts);

  Table t({"strategy", "threads", "ops/s", "attempts/op", "total conserved"});
  wfl_bench::ExpJson json;
  auto record = [&](const std::string& label, const char* backend,
                    int threads, const RunOut& out) {
    t.cell(label + out.note)
        .cell(threads)
        .cell(format_si(out.ops_per_sec))
        .cell(out.attempts_per_op, 2)
        .cell(out.conserved ? "yes" : "NO");
    t.end_row();
    json.add("bank_transfer/" + label, backend, threads)
        .ops_per_s(out.ops_per_sec)
        .field("attempts_per_op", out.attempts_per_op)
        .field("total_conserved", out.conserved ? 1 : 0);
  };

  for (int threads : {1, 2, 4}) {
    // The registry sweep: every lock discipline, same substrate, same cfg.
    RealBackends::for_each([&](auto tag) {
      using B = typename decltype(tag)::type;
      record(B::name(), B::name(), threads,
             run_bank<B>(threads, secs, bank_cfg(threads)));
    });
    {  // wflock(fair): the same backend under the paper's theory delays.
      BackendConfig bc = bank_cfg(threads);
      bc.lock.delay_mode = DelayMode::kTheory;
      bc.lock.c0 = 4.0;
      bc.lock.c1 = 4.0;
      record("wflock_fair", "wflock", threads,
             run_bank<WflBackend<Plat>>(threads, secs, bc));
    }
    // wflock(batch): practical mode through Bank::transfer_batch.
    record("wflock_batch", "wflock", threads,
           run_bank_batch(threads, secs, bank_cfg(threads)));
  }
  t.print(stderr);
  std::fprintf(stderr,
               "\n(one physical core on this machine: threads>1 measures "
               "oversubscription behavior, which is where blocking "
               "strategies suffer preemption-holding-lock stalls)\n");
  json.emit();
  return 0;
}
