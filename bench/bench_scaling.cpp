// Contended-path scaling, pinned: wfl-bench-v1 thread sweeps for the
// regime the paper's headline property lives in — wait-free progress
// under contention — which every other pinned capture runs at one thread.
//
// Scenarios (x threads 1..max(4, hardware_concurrency), powers of two;
// on a single-core CI-class container the >1-thread rows measure
// oversubscription, where preempted-attempt helping and the claim
// protocol matter most):
//
//   Scaling_SingleLock/contention:low    each thread owns a private lock —
//                                        the thin-word fast path's steady
//                                        state (fastpath_hits_per_attempt
//                                        must sit at ~1.0)
//   Scaling_SingleLock/contention:high   every thread hammers ONE lock —
//                                        revocation + cooperative-helping
//                                        territory
//   Scaling_MultiLock/contention:low     L=2 attempts inside a per-thread
//                                        private region (descriptor path,
//                                        uncontended)
//   Scaling_MultiLock/contention:high    L=2 attempts over a 4-lock pool
//   Scaling_BatchSubmit/contention:low   batches of 32 single-lock
//                                        PreparedOps through submit_batch
//                                        (guard amortization) — absent
//                                        when built against a pre-batch
//                                        tree (WFL_HAS_SUBMIT_BATCH)
//
// Counters (additive wfl-bench-v1 keys):
//   attempts_per_op            tryLock attempts per completed operation
//   fastpath_hits_per_attempt  thin-word decisions per attempt (table-wide
//                              delta across the timed region)
//   fastpath_revocations_per_attempt, help_claim_skips_per_attempt
//   wfl_threads                reserved: actual worker count (consumed by
//                              the reporter into the "threads" field)
//
// p99_ns comes from merged per-thread latency reservoirs (every 64th op
// is timed end-to-end), NOT from per-iteration wall-time means — see
// bench_json.hpp. Delays run in kOff mode (the practical configuration):
// kTheory's fixed spins would drown exactly the costs this bench watches.
//
// The stats probes are `if constexpr`-guarded so this exact file also
// builds against the pre-overhaul tree — that is how the "baseline" half
// of BENCH_scaling.json was captured.
#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "wfl/wfl.hpp"

namespace {

using wfl::BasicSession;
using wfl::Cell;
using wfl::IdemCtx;
using wfl::LockConfig;
using wfl::LockStats;
using wfl::Outcome;
using wfl::Policy;
using wfl::RealPlat;
using wfl::SpaceSizing;
using wfl::StaticLockSet;
using Table = wfl::LockTable<RealPlat>;

// --- capability probes (compat with the pre-overhaul tree) ----------------

template <typename Stats>
double stats_fastpath_hits(const Stats& s) {
  if constexpr (requires { s.fastpath_hits; }) {
    return static_cast<double>(s.fastpath_hits);
  } else {
    return 0.0;
  }
}
template <typename Stats>
double stats_fastpath_revocations(const Stats& s) {
  if constexpr (requires { s.fastpath_revocations; }) {
    return static_cast<double>(s.fastpath_revocations);
  } else {
    return 0.0;
  }
}
template <typename Stats>
double stats_help_claim_skips(const Stats& s) {
  if constexpr (requires { s.help_claim_skips; }) {
    return static_cast<double>(s.help_claim_skips);
  } else {
    return 0.0;
  }
}
template <typename Stats>
constexpr bool kHasFastpathStats = requires(const Stats& s) {
  s.fastpath_hits;
};

constexpr int kNumLocks = 64;
constexpr int kSampleEvery = 64;  // one latency sample per 64 ops

// Spacing between per-thread private locks/regions: 8 apart up to 8
// threads (the regime the pinned BENCH_scaling.json was captured in),
// shrinking so the assignment stays collision-free up to kNumLocks
// threads instead of silently wrapping "low contention" into shared
// locks on wide machines.
std::uint32_t thread_stride(int threads) {
  const int t = threads < 8 ? 8 : threads;
  const std::uint32_t stride =
      static_cast<std::uint32_t>(kNumLocks / t);
  return stride > 0 ? stride : 1;
}

LockConfig scaling_cfg(int threads, std::uint32_t max_locks) {
  LockConfig cfg;
  // κ is capped at the announcement-array limit; the sweep itself is also
  // capped at kMaxSetCap threads (max_threads below) so the promise holds.
  const auto k = static_cast<std::uint32_t>(threads < 2 ? 2 : threads);
  cfg.kappa = k > wfl::kMaxSetCap ? wfl::kMaxSetCap : k;
  cfg.max_locks = max_locks;
  cfg.max_thunk_steps = 8;
  cfg.delay_mode = wfl::DelayMode::kOff;
  return cfg;
}

// Shared fixture across one benchmark's threads (the mutex-guarded
// refcount pattern of bench_hotpath: first arrival builds, last tears
// down).
struct Shared {
  std::mutex mu;
  int active = 0;
  std::unique_ptr<Table> table;
  std::vector<std::unique_ptr<Cell<RealPlat>>> cells;
  LockStats before;

  void enter(int threads, std::uint32_t max_locks) {
    std::lock_guard<std::mutex> lk(mu);
    if (active++ == 0) {
      table = std::make_unique<Table>(scaling_cfg(threads, max_locks),
                                      threads, kNumLocks,
                                      SpaceSizing{.shards = 4});
      cells.clear();
      for (int i = 0; i < kNumLocks; ++i) {
        cells.push_back(std::make_unique<Cell<RealPlat>>(0u));
      }
      before = table->stats();
    }
  }

  // Returns true for the LAST thread out (it owns the delta counters).
  bool exit() {
    std::lock_guard<std::mutex> lk(mu);
    return --active == 0;
  }

  void teardown() {
    std::lock_guard<std::mutex> lk(mu);
    cells.clear();
    table.reset();
  }
};

Shared g_shared;

struct OpSums {
  std::uint64_t ops = 0;
  std::uint64_t attempts = 0;
};

// Common reporting: throughput, attempts/op, fast-path counter deltas
// (last thread out), the latency reservoir, and the actual worker count.
void report(benchmark::State& state, const std::string& base_name,
            const OpSums& sums, std::vector<double>& lat_ns) {
  state.SetItemsProcessed(static_cast<std::int64_t>(sums.ops));
  using C = benchmark::Counter;
  state.counters["attempts_per_op"] =
      C(static_cast<double>(sums.attempts) /
            static_cast<double>(sums.ops ? sums.ops : 1),
        C::kAvgThreads);
  // kAvgThreads: Google Benchmark sums counters across worker threads at
  // merge time; averaging restores the actual count.
  state.counters["wfl_threads"] =
      C(static_cast<double>(state.threads()), C::kAvgThreads);
  // Key the reservoir by the REPORTED instance name (UseRealTime +
  // explicit Threads() registration append these two segments), so each
  // thread count keeps its own latency distribution.
  wfl_bench::LatencyReservoirs::instance().record(
      base_name + "/real_time/threads:" + std::to_string(state.threads()),
      lat_ns);
  lat_ns.clear();
  if (g_shared.exit()) {
    if constexpr (kHasFastpathStats<LockStats>) {
      const LockStats now = g_shared.table->stats();
      const double attempts =
          static_cast<double>(now.attempts - g_shared.before.attempts);
      const double denom = attempts > 0 ? attempts : 1;
      state.counters["fastpath_hits_per_attempt"] =
          C((stats_fastpath_hits(now) -
             stats_fastpath_hits(g_shared.before)) / denom);
      state.counters["fastpath_revocations_per_attempt"] =
          C((stats_fastpath_revocations(now) -
             stats_fastpath_revocations(g_shared.before)) / denom);
      state.counters["help_claim_skips_per_attempt"] =
          C((stats_help_claim_skips(now) -
             stats_help_claim_skips(g_shared.before)) / denom);
    }
    g_shared.teardown();
  }
}

// One op per iteration: a single-lock submission on a scenario-chosen
// lock, Policy::retry() so contended ops run to completion.
void single_lock_bench(benchmark::State& state, const std::string& base_name,
                       bool high_contention) {
  g_shared.enter(state.threads(), 2);
  RealPlat::seed_rng(0x5CA1106F + static_cast<std::uint64_t>(
                                     state.thread_index()));
  OpSums sums;
  std::vector<double> lat_ns;
  lat_ns.reserve(1 << 14);
  {
    // Scoped: the session must release its slot before report() may tear
    // the shared table down (last thread out).
    BasicSession<Table> session(*g_shared.table);
    const std::uint32_t lock =
        high_contention ? 0
                        : (static_cast<std::uint32_t>(state.thread_index()) *
                           thread_stride(state.threads())) %
                              static_cast<std::uint32_t>(kNumLocks);
    Cell<RealPlat>* cell = g_shared.cells[lock].get();
    const StaticLockSet<1> locks{lock};
    int until_sample = 1;
    for (auto _ : state) {
      const bool sample = --until_sample == 0;
      std::chrono::steady_clock::time_point t0;
      if (sample) t0 = std::chrono::steady_clock::now();
      const Outcome o = wfl::submit(
          session, locks,
          [cell](IdemCtx<RealPlat>& m) {
            m.store(*cell, m.load(*cell) + 1);
          },
          Policy::retry());
      if (sample) {
        const auto t1 = std::chrono::steady_clock::now();
        lat_ns.push_back(
            std::chrono::duration<double, std::nano>(t1 - t0).count());
        until_sample = kSampleEvery;
      }
      ++sums.ops;
      sums.attempts += o.attempts;
    }
  }
  report(state, base_name, sums, lat_ns);
}

void multi_lock_bench(benchmark::State& state, const std::string& base_name,
                      bool high_contention) {
  g_shared.enter(state.threads(), 2);
  RealPlat::seed_rng(0x5CA12070 + static_cast<std::uint64_t>(
                                     state.thread_index()));
  OpSums sums;
  std::vector<double> lat_ns;
  lat_ns.reserve(1 << 14);
  {
    BasicSession<Table> session(*g_shared.table);
    wfl::Xoshiro256 rng(41 * state.thread_index() + 13);
    // High contention: pairs from a 4-lock pool every thread shares. Low:
    // pairs inside a per-thread private region (8 locks up to 8 threads,
    // shrinking with the stride so regions stay disjoint on wide hosts).
    const std::uint32_t stride = thread_stride(state.threads());
    const std::uint32_t region_base =
        high_contention
            ? 0
            : (static_cast<std::uint32_t>(state.thread_index()) * stride) %
                  static_cast<std::uint32_t>(kNumLocks);
    const std::uint32_t region_size =
        high_contention ? 4 : (stride > 1 ? stride : 2);
    int until_sample = 1;
    for (auto _ : state) {
      const auto a = static_cast<std::uint32_t>(rng.next_below(region_size));
      auto b = static_cast<std::uint32_t>(rng.next_below(region_size));
      if (b == a) b = (b + 1) % region_size;
      const StaticLockSet<2> locks{region_base + a, region_base + b};
      Cell<RealPlat>* ca = g_shared.cells[region_base + a].get();
      Cell<RealPlat>* cb = g_shared.cells[region_base + b].get();
      const bool sample = --until_sample == 0;
      std::chrono::steady_clock::time_point t0;
      if (sample) t0 = std::chrono::steady_clock::now();
      const Outcome o = wfl::submit(
          session, locks,
          [ca, cb](IdemCtx<RealPlat>& m) {
            m.store(*ca, m.load(*ca) + 1);
            m.store(*cb, m.load(*cb) + 1);
          },
          Policy::retry());
      if (sample) {
        const auto t1 = std::chrono::steady_clock::now();
        lat_ns.push_back(
            std::chrono::duration<double, std::nano>(t1 - t0).count());
        until_sample = kSampleEvery;
      }
      ++sums.ops;
      sums.attempts += o.attempts;
    }
  }
  report(state, base_name, sums, lat_ns);
}

#ifdef WFL_HAS_SUBMIT_BATCH
// Batches of 32 single-lock PreparedOps per iteration through
// submit_batch: the guard-amortized path. Ops/s counts individual ops, so
// the entry is directly comparable with Scaling_SingleLock.
void batch_submit_bench(benchmark::State& state,
                        const std::string& base_name) {
  g_shared.enter(state.threads(), 2);
  RealPlat::seed_rng(0x5CA13071 + static_cast<std::uint64_t>(
                                     state.thread_index()));
  OpSums sums;
  std::vector<double> lat_ns;
  lat_ns.reserve(1 << 14);
  {
    BasicSession<Table> session(*g_shared.table);
    using Op = wfl::PreparedOp<RealPlat>;
    constexpr std::size_t kBatch = 32;
    const std::uint32_t lock =
        (static_cast<std::uint32_t>(state.thread_index()) *
         thread_stride(state.threads())) %
        static_cast<std::uint32_t>(kNumLocks);
    Cell<RealPlat>* cell = g_shared.cells[lock].get();
    const StaticLockSet<1> locks{lock};
    std::vector<Op> ops;
    ops.reserve(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      ops.push_back(Op(locks, [cell](IdemCtx<RealPlat>& m) {
        m.store(*cell, m.load(*cell) + 1);
      }));
    }
    int until_sample = 1;
    for (auto _ : state) {
      const bool sample = --until_sample == 0;
      std::chrono::steady_clock::time_point t0;
      if (sample) t0 = std::chrono::steady_clock::now();
      const wfl::BatchOutcome o = wfl::submit_batch(
          session, std::span<const Op>(ops.data(), ops.size()),
          Policy::retry());
      if (sample) {
        const auto t1 = std::chrono::steady_clock::now();
        // Per-op latency: the batch took t1-t0 for kBatch ops.
        lat_ns.push_back(
            std::chrono::duration<double, std::nano>(t1 - t0).count() /
            static_cast<double>(kBatch));
        until_sample = kSampleEvery / 8 > 0 ? kSampleEvery / 8 : 1;
      }
      sums.ops += o.ops;
      sums.attempts += o.attempts;
    }
  }
  report(state, base_name, sums, lat_ns);
}
#endif  // WFL_HAS_SUBMIT_BATCH

int max_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  int cap = static_cast<int>(hw > 0 ? hw : 1);
  if (cap < 4) cap = 4;  // single-core boxes still sweep to 4
  // κ (and the per-lock announcement arrays) cap at kMaxSetCap: the
  // high-contention scenarios put every thread on ONE lock, so sweeping
  // wider would abort on the point-contention contract.
  if (cap > static_cast<int>(wfl::kMaxSetCap)) {
    cap = static_cast<int>(wfl::kMaxSetCap);
  }
  return cap;
}

void register_scaling_benchmarks() {
  struct Named {
    const char* name;
    void (*fn)(benchmark::State&, const std::string&, bool);
    bool high;
  };
  const Named named[] = {
      {"Scaling_SingleLock/contention:low", single_lock_bench, false},
      {"Scaling_SingleLock/contention:high", single_lock_bench, true},
      {"Scaling_MultiLock/contention:low", multi_lock_bench, false},
      {"Scaling_MultiLock/contention:high", multi_lock_bench, true},
  };
  for (const Named& n : named) {
    auto* b = benchmark::RegisterBenchmark(
        n.name,
        [fn = n.fn, high = n.high, name = std::string(n.name)](
            benchmark::State& st) { fn(st, name, high); });
    b->UseRealTime();
    for (int t = 1; t <= max_threads(); t *= 2) b->Threads(t);
  }
#ifdef WFL_HAS_SUBMIT_BATCH
  {
    const std::string name = "Scaling_BatchSubmit/contention:low";
    auto* b = benchmark::RegisterBenchmark(
        name.c_str(),
        [name](benchmark::State& st) { batch_submit_bench(st, name); });
    b->UseRealTime();
    for (int t = 1; t <= max_threads(); t *= 2) b->Threads(t);
  }
#endif
}

}  // namespace

WFL_BENCH_JSON_MAIN_WITH(register_scaling_benchmarks)
