// E1 — Theorems 1.1/6.1: a tryLock attempt takes O(κ²L²T) steps.
//
// Under the simulator, cliques of κ processes contend on the same L locks
// and we measure the *work* segments of every attempt exactly (pre-reveal:
// help + multiInsert; post-reveal: run + multiRemove), excluding the delay
// padding. The table reports:
//   * max/mean pre- and post-reveal work per configuration,
//   * the minimum feasible delay constants c0 = max_pre/(κ²L²T) and
//     c1 = max_post/(κLT) — the constants Algorithm 3's delays must beat,
//   * fitted log-log exponents of max work vs κ and vs L (paper: <= 2).
// A second pass runs the default (theory) constants and asserts zero delay
// overruns — the property Observation 6.7 needs.
#include <cstdio>
#include <memory>
#include <vector>

#include "wfl/util/cli.hpp"
#include "wfl/util/table.hpp"
#include "wfl/wfl.hpp"

namespace {

using namespace wfl;
using Space = LockSpace<SimPlat>;

struct ConfigResult {
  std::uint32_t kappa, locks, thunk;
  RunningStat pre, post;
  std::uint64_t overruns = 0;
};

ConfigResult run_config(std::uint32_t kappa, std::uint32_t locks_per,
                        std::uint32_t thunk_ops, int attempts,
                        DelayMode mode, double c, std::uint64_t seed) {
  LockConfig cfg;
  cfg.kappa = kappa;
  cfg.max_locks = locks_per;
  cfg.max_thunk_steps = thunk_ops;
  cfg.delay_mode = mode;
  cfg.c0 = c;
  cfg.c1 = c;
  auto space = std::make_unique<Space>(cfg, static_cast<int>(kappa),
                                       static_cast<int>(locks_per));
  auto shared = std::make_unique<Cell<SimPlat>>(0u);

  ConfigResult res;
  res.kappa = kappa;
  res.locks = locks_per;
  res.thunk = thunk_ops;

  Simulator sim(seed);
  std::vector<std::vector<AttemptInfo>> infos(kappa);
  for (std::uint32_t p = 0; p < kappa; ++p) {
    sim.add_process([&, p] {
      auto proc = space->register_process();
      std::vector<std::uint32_t> ids;
      for (std::uint32_t l = 0; l < locks_per; ++l) ids.push_back(l);
      Cell<SimPlat>& c2 = *shared;
      for (int a = 0; a < attempts; ++a) {
        AttemptInfo info;
        space->try_locks(
            proc, ids,
            [&c2, thunk_ops](IdemCtx<SimPlat>& m) {
              // Burn exactly `thunk_ops` instrumented steps.
              for (std::uint32_t i = 0; i + 1 < thunk_ops; i += 2) {
                m.store(c2, m.load(c2) + 1);
              }
            },
            &info);
        infos[p].push_back(info);
      }
    });
  }
  UniformSchedule sched(static_cast<int>(kappa), seed ^ 0xABCD);
  WFL_CHECK(sim.run(sched, 4'000'000'000ull));
  for (auto& v : infos) {
    for (const auto& i : v) {
      res.pre.add(static_cast<double>(i.pre_reveal_work));
      res.post.add(static_cast<double>(i.post_reveal_work));
    }
  }
  const auto s = space->stats();
  res.overruns = s.t0_overruns + s.t1_overruns;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int attempts = static_cast<int>(cli.flag_int("attempts", 60));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.flag_int("seed", 42));
  cli.done();

  std::printf("E1: step bound O(k^2 L^2 T) — work per attempt, sim, clique\n");
  std::printf("    (delays off: measures the raw work the T0/T1 budgets "
              "must dominate)\n\n");

  Table t({"kappa", "L", "T", "attempts", "pre.mean", "pre.max", "post.mean",
           "post.max", "min c0", "min c1"});
  std::vector<double> kappas, pre_by_kappa, ls, pre_by_l;
  const std::uint32_t thunk_ops = 4;

  for (std::uint32_t kappa : {1u, 2u, 4u, 6u, 8u}) {
    const std::uint32_t L = 2;
    auto r = run_config(kappa, L, thunk_ops, attempts, DelayMode::kOff, 1.0,
                        seed + kappa);
    const double k2l2t =
        static_cast<double>(kappa) * kappa * L * L * thunk_ops;
    const double klt = static_cast<double>(kappa) * L * thunk_ops;
    t.cell(kappa).cell(L).cell(thunk_ops).cell(r.pre.count())
        .cell(r.pre.mean(), 1).cell(r.pre.max(), 0)
        .cell(r.post.mean(), 1).cell(r.post.max(), 0)
        .cell(r.pre.max() / k2l2t, 2).cell(r.post.max() / klt, 2);
    t.end_row();
    kappas.push_back(kappa);
    pre_by_kappa.push_back(r.pre.max());
  }
  for (std::uint32_t L : {1u, 2u, 3u, 4u}) {
    const std::uint32_t kappa = 4;
    auto r = run_config(kappa, L, thunk_ops, attempts, DelayMode::kOff, 1.0,
                        seed + 100 + L);
    const double k2l2t =
        static_cast<double>(kappa) * kappa * L * L * thunk_ops;
    const double klt = static_cast<double>(kappa) * L * thunk_ops;
    t.cell(kappa).cell(L).cell(thunk_ops).cell(r.pre.count())
        .cell(r.pre.mean(), 1).cell(r.pre.max(), 0)
        .cell(r.post.mean(), 1).cell(r.post.max(), 0)
        .cell(r.pre.max() / k2l2t, 2).cell(r.post.max() / klt, 2);
    t.end_row();
    ls.push_back(L);
    pre_by_l.push_back(r.pre.max());
  }
  t.print();

  const double exp_kappa = fit_log_log_slope(kappas, pre_by_kappa);
  const double exp_l = fit_log_log_slope(ls, pre_by_l);
  std::printf("\nfitted exponent of max pre-reveal work:  vs kappa = %.2f "
              "(paper bound: <= 2)\n", exp_kappa);
  std::printf("fitted exponent of max pre-reveal work:  vs L     = %.2f "
              "(paper bound: <= 2)\n", exp_l);

  // Pass 2: theory mode with the library defaults — overruns must be zero,
  // and total attempt length must be pinned to T0 + T1 (+reveal).
  std::printf("\ntheory-mode validation (default c0=c1=24):\n");
  bool ok = true;
  for (std::uint32_t kappa : {2u, 4u}) {
    auto r = run_config(kappa, 2, thunk_ops, attempts / 2, DelayMode::kTheory,
                        24.0, seed + 500 + kappa);
    std::printf("  kappa=%u L=2: overruns=%llu %s\n", kappa,
                static_cast<unsigned long long>(r.overruns),
                r.overruns == 0 ? "(ok)" : "(VIOLATION)");
    ok = ok && r.overruns == 0;
  }
  std::printf("\nE1 verdict: %s\n",
              ok && exp_kappa <= 2.3 && exp_l <= 2.3
                  ? "consistent with O(k^2 L^2 T)"
                  : "INCONSISTENT — investigate");
  return ok ? 0 : 1;
}
