// Open-loop Zipfian KV service bench: the paper's tail-latency claim
// measured the way serving systems measure it.
//
// Every other bench in this repo is a closed loop: the next request waits
// for the previous one, so a slow op silently throttles the offered load
// and the tail hides (coordinated omission). Here a dispatcher thread
// paces a Poisson arrival process at a FIXED rate, each request's latency
// is measured from its *scheduled arrival time* to its completion, and a
// request that arrives while the service is stuck still counts its
// queueing delay — the service does not get to slow the clock down.
//
//   Service_OpenLoop/backend:NAME/<rate>   one row per (backend, rate/s)
//
// The service is a KV front end over LockedHashMap (apps/hashmap.hpp):
// reads are prepared_get, writes are prepared_update — both single-bucket
// PreparedOps (the PR-5 building block), pre-built per key so dispatch is
// a memcpy + submit. Keys are drawn Zipfian (exponent s: hot-key skew
// concentrates contention on a few bucket locks), with a configurable
// read/write mix.
//
// Backends (the LockBackend registry, wfl/baseline/backends.hpp):
//   wflock    async: arrivals map to AsyncExecutor::async_submit on a
//             fixed worker pool; losers park on per-lock wait lists.
//             Completion is stamped inside the thunk, on the worker, as
//             the critical section ends (helper replays can only
//             re-stamp later — inflation, never deflation).
//   turek / spin2pl / mutex2pl   sync: a service pool of the same number
//             of threads claims requests from the arrival queue in FIFO
//             order and runs B::submit(.., Policy::retry()); completion
//             is stamped when submit returns, queueing delay included.
//
// Reported per row (wfl-bench-v1, bench_json.hpp):
//   ops_per_s       sustained completion throughput over the whole run
//   p99_ns/p999_ns  reservoir-backed latency percentiles (scheduled
//                   arrival -> completion)
//   arrival_rate    the nominal offered rate (requests/s)
//   achieved_rate   requests actually dispatched per second — must track
//                   arrival_rate, or the row measured a slower open loop
//                   than it claims
//   slo_p99_ok / slo_p999_ok   1 when the row meets the fixed SLOs
//                   (p99 <= 200us, p999 <= 1ms); "throughput at SLO" for
//                   a backend is the highest swept rate with both = 1
//   steals_per_op / wake_skip_ratio   (wflock only) lock-free scheduler
//                   gauges: Chase-Lev cross-worker steals per op and the
//                   wake-coalescing futex-skip rate
//
// Knobs (environment, since Google Benchmark owns argv):
//   WFL_SERVICE_MS       run length per row in ms of offered load (400)
//   WFL_SERVICE_SKEW     Zipf exponent s (0.99)
//   WFL_SERVICE_READS    read percentage of the mix (90)
//   WFL_SERVICE_THREADS  service pool size (4)
//   WFL_SERVICE_RATES    comma-separated rates/s (50000,200000,400000)
//   WFL_SERVICE_DUMP     1 = print slow requests (>500us), late dispatch
//                        and slow submits to stderr — separates "the
//                        service was slow" from "the load generator was
//                        descheduled" when triaging a bad row
//
// Expected shape: at low rates all backends meet both SLOs. As the rate
// climbs toward the hot bucket's service capacity, the blocking backends'
// tail blows up first — a preempted or delayed lock holder convoys every
// queued arrival behind it — while wflock's helping keeps the tail flat
// until genuine saturation. That ordering (wflock sustains a higher rate
// at the p999 SLO, most visibly at high skew) is the pinned claim of
// BENCH_service.json.
//
// Reading a noisy row: open-loop percentiles measure the whole machine.
// On a small/shared host, multi-ms guest descheduling lands in every
// backend's tail as bursts (latency decays linearly over the ~rate x
// stall arrivals that queued behind the stall); WFL_SERVICE_DUMP
// attributes them (LATE-DISPATCH = the generator stalled, not the
// service). The pinned comparison should come from a quiet interval —
// the CI gate deliberately checks only ops_per_s with wide slack.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "wfl/wfl.hpp"

namespace {

using namespace wfl;  // NOLINT: bench file, local scope

constexpr std::uint32_t kBuckets = 512;
constexpr std::uint32_t kKeys = 1024;
constexpr std::uint64_t kSloP99Ns = 200'000;     // 200 us
constexpr std::uint64_t kSloP999Ns = 1'000'000;  // 1 ms

using Clock = std::chrono::steady_clock;

double env_double(const char* name, double dflt) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atof(v) : dflt;
}

int env_int(const char* name, int dflt) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atoi(v) : dflt;
}

// A fixed pool of 4 service threads, deliberately NOT clamped to the
// core count: oversubscription is part of the experiment. A service
// thread preempted while holding a bucket lock is exactly the
// "arbitrarily delayed process" the paper's wait-freedom is for, and on
// a small machine the kernel supplies those preemptions for free. The
// blocking backends convoy every queued arrival behind the preempted
// holder for a timeslice; wflock's helping completes the stuck op and
// keeps serving.
constexpr int kServiceThreads = 4;

LockConfig service_cfg() {
  LockConfig cfg;
  cfg.kappa = 8;
  cfg.max_locks = 2;
  cfg.max_thunk_steps = LockedHashMap<WflBackend<RealPlat>>::thunk_step_budget();
  cfg.delay_mode = DelayMode::kOff;
  return cfg;
}

// One precomputed request stream: open-loop means the arrival process is
// fixed before the run and never consults the service.
struct Workload {
  std::vector<std::uint32_t> key_idx;   // index into the live-key table
  std::vector<std::uint8_t> is_read;
  std::vector<std::int64_t> sched_ns;   // arrival offset from run start
};

Workload make_workload(std::size_t n, double rate_per_s, double skew,
                       int read_pct, std::size_t n_keys,
                       std::uint64_t seed) {
  // Zipf CDF over the key table: weight(i) = 1/(i+1)^s, sampled by
  // binary search on a uniform draw.
  std::vector<double> cdf(n_keys);
  double acc = 0.0;
  for (std::size_t i = 0; i < n_keys; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf[i] = acc;
  }
  for (double& c : cdf) c /= acc;

  Workload w;
  w.key_idx.reserve(n);
  w.is_read.reserve(n);
  w.sched_ns.reserve(n);
  Xoshiro256 rng(seed);
  const double mean_gap_ns = 1e9 / rate_per_s;
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.next_double();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    w.key_idx.push_back(static_cast<std::uint32_t>(it - cdf.begin()));
    w.is_read.push_back(rng.next_below(100) <
                                static_cast<std::uint64_t>(read_pct)
                            ? 1
                            : 0);
    // Poisson arrivals: exponential inter-arrival gaps.
    t += -mean_gap_ns * std::log(1.0 - rng.next_double());
    w.sched_ns.push_back(static_cast<std::int64_t>(t));
  }
  return w;
}

std::int64_t since_ns(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}

// Waits until `sched` ns past `start`; returns immediately when the
// dispatcher is running late (the lateness lands in the request's
// measured latency — that is the open-loop contract). Cooperative, not
// a busy spin: on a small machine the dispatcher shares cores with the
// service it is measuring, and spinning here would starve the service
// and measure the OS scheduler instead.
void pace(Clock::time_point start, std::int64_t sched) {
  for (;;) {
    const std::int64_t now = since_ns(start);
    if (now >= sched) return;
    const std::int64_t left = sched - now;
    if (left > 200'000) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(left - 100'000));
    } else {
      std::this_thread::yield();
    }
  }
}

template <typename B>
void BM_ServiceOpenLoop(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0));
  const int workers = env_int("WFL_SERVICE_THREADS", kServiceThreads);
  const double skew = env_double("WFL_SERVICE_SKEW", 0.99);
  const int read_pct = env_int("WFL_SERVICE_READS", 90);
  const int dur_ms = env_int("WFL_SERVICE_MS", 400);
  const auto n =
      static_cast<std::size_t>(rate * static_cast<double>(dur_ms) / 1000.0);

  using Plat = typename B::Platform;
  BackendConfig bc;
  bc.lock = service_cfg();
  bc.max_procs = workers + 2;
  bc.num_locks = static_cast<int>(kBuckets);
  auto space = B::make_space(bc);
  LockedHashMap<B> map(*space, kBuckets, kKeys + 64);

  // Pre-populate; a key whose chain fills drops out of the sampled table
  // (kMaxChain bounds the critical section, not the key space).
  std::vector<std::uint64_t> live_keys;
  {
    typename B::Session init(*space);
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      if (map.put(init, k, static_cast<std::uint32_t>(k)) != kMapFull) {
        live_keys.push_back(k);
      }
    }
  }

  // Per-key prepared ops, built once: dispatch arms a memcpy, not a
  // lock-set validation.
  std::vector<PreparedOp<Plat>> gets;
  std::vector<PreparedOp<Plat>> updates;
  gets.reserve(live_keys.size());
  updates.reserve(live_keys.size());
  for (const std::uint64_t k : live_keys) {
    gets.push_back(map.prepared_get(k));
    updates.push_back(map.prepared_update(k, static_cast<std::uint32_t>(k)));
  }

  const Workload w =
      make_workload(n, rate, skew, read_pct, live_keys.size(),
                    0xC0FFEE + static_cast<std::uint64_t>(rate));

  std::vector<double> lat_ns(n, 0.0);
  double dispatch_span_s = 0.0;
  double steals_per_op = -1.0;
  double wake_skip_ratio = -1.0;

  for (auto _ : state) {
    if constexpr (AsyncCapableBackend<B>) {
      // --- async service: arrivals -> async_submit ---
      // Completion is stamped INSIDE the thunk (on the worker, as the
      // critical section ends): an observer thread polling tickets would
      // add its own scheduling delay to every wflock sample on a small
      // machine. A helper replay can re-stamp a little later; that only
      // ever inflates the recorded latency, never deflates it. Tickets
      // are dropped at submission (ops complete and self-free); the
      // executor's completed() gauge ends the drain.
      auto exec = B::make_async(*space, {.workers = workers});
      typename B::Session session(*space);
      AsyncClient<Plat> client(session);
      std::vector<std::atomic<std::int64_t>> done_ns(n);

      const bool dump = env_int("WFL_SERVICE_DUMP", 0) != 0;
      const Clock::time_point start = Clock::now();
      for (std::size_t i = 0; i < n; ++i) {
        pace(start, w.sched_ns[i]);
        if (dump) {
          const std::int64_t late = since_ns(start) - w.sched_ns[i];
          if (late > 500'000) {
            std::fprintf(stderr, "LATE-DISPATCH i=%zu late_us=%lld\n", i,
                         static_cast<long long>(late / 1000));
          }
        }
        const PreparedOp<Plat>& op =
            w.is_read[i] ? gets[w.key_idx[i]] : updates[w.key_idx[i]];
        // async_submit wraps its callable in a fresh PreparedOp; hand it
        // a pointer to the long-lived armed closure, not the closure
        // itself (which would not fit the inline storage again).
        const typename PreparedOp<Plat>::Armed* armed = &op.armed();
        std::atomic<std::int64_t>* slot = &done_ns[i];
        const std::int64_t sub0 = dump ? since_ns(start) : 0;
        exec->async_submit(
            client, op.locks(),
            [armed, slot, start](IdemCtx<Plat>& m) {
              (*armed)(m);
              slot->store(since_ns(start), std::memory_order_relaxed);
            },
            Policy::retry());
        if (dump) {
          const std::int64_t sub = since_ns(start) - sub0;
          if (sub > 500'000) {
            std::fprintf(stderr, "SLOW-SUBMIT i=%zu sub_us=%lld\n", i,
                         static_cast<long long>(sub / 1000));
          }
        }
      }
      dispatch_span_s = static_cast<double>(since_ns(start)) * 1e-9;
      while (exec->completed() < n) std::this_thread::yield();
      for (std::size_t i = 0; i < n; ++i) {
        lat_ns[i] = static_cast<double>(
            done_ns[i].load(std::memory_order_relaxed) - w.sched_ns[i]);
      }
      const double done = static_cast<double>(n);
      steals_per_op = static_cast<double>(exec->steals()) / done;
      const double posts = static_cast<double>(exec->wake_posts());
      const double skips = static_cast<double>(exec->wake_skips());
      wake_skip_ratio = posts + skips > 0 ? skips / (posts + skips) : 0.0;
    } else {
      // --- sync service: a fixed pool claims the arrival queue FIFO ---
      std::atomic<std::size_t> published{0};
      std::atomic<std::size_t> next{0};
      std::atomic<bool> closed{false};
      const Clock::time_point start = Clock::now();
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(workers));
      for (int t = 0; t < workers; ++t) {
        pool.emplace_back([&] {
          typename B::Session sess(*space);
          for (;;) {
            std::size_t i = next.load(std::memory_order_relaxed);
            if (i >= published.load(std::memory_order_acquire)) {
              if (closed.load(std::memory_order_acquire) && i >= n) return;
              std::this_thread::yield();
              continue;
            }
            if (!next.compare_exchange_weak(i, i + 1,
                                            std::memory_order_acq_rel)) {
              continue;
            }
            const PreparedOp<Plat>& op =
                w.is_read[i] ? gets[w.key_idx[i]] : updates[w.key_idx[i]];
            B::submit(sess, op.locks(), op.armed(), Policy::retry());
            lat_ns[i] =
                static_cast<double>(since_ns(start) - w.sched_ns[i]);
          }
        });
      }
      const bool dump = env_int("WFL_SERVICE_DUMP", 0) != 0;
      for (std::size_t i = 0; i < n; ++i) {
        pace(start, w.sched_ns[i]);
        if (dump) {
          const std::int64_t late = since_ns(start) - w.sched_ns[i];
          if (late > 500'000) {
            std::fprintf(stderr, "LATE-DISPATCH i=%zu late_us=%lld\n", i,
                         static_cast<long long>(late / 1000));
          }
        }
        published.store(i + 1, std::memory_order_release);
      }
      dispatch_span_s = static_cast<double>(since_ns(start)) * 1e-9;
      closed.store(true, std::memory_order_release);
      for (std::thread& t : pool) t.join();
    }
  }

  if (env_int("WFL_SERVICE_DUMP", 0) != 0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (lat_ns[i] > 500'000.0) {
        std::fprintf(stderr, "SLOW i=%zu sched_us=%lld lat_us=%.0f\n", i,
                     static_cast<long long>(w.sched_ns[i] / 1000),
                     lat_ns[i] / 1000.0);
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
  state.counters["arrival_rate"] = rate;
  state.counters["achieved_rate"] =
      dispatch_span_s > 0 ? static_cast<double>(n) / dispatch_span_s : 0.0;
  const double p99 = wfl_bench::percentile(lat_ns, 0.99);
  const double p999 = wfl_bench::percentile(lat_ns, 0.999);
  // p50 as a counter (the reservoir only emits p99/p999): separates "the
  // whole distribution moved" from "the tail moved".
  state.counters["p50_ns"] = wfl_bench::percentile(lat_ns, 0.50);
  state.counters["slo_p99_ok"] =
      p99 <= static_cast<double>(kSloP99Ns) ? 1.0 : 0.0;
  state.counters["slo_p999_ok"] =
      p999 <= static_cast<double>(kSloP999Ns) ? 1.0 : 0.0;
  if (steals_per_op >= 0.0) {
    state.counters["steals_per_op"] = steals_per_op;
    state.counters["wake_skip_ratio"] = wake_skip_ratio;
  }
  state.counters["wfl_threads"] = workers;
  wfl_bench::LatencyReservoirs::instance().record(
      std::string("Service_OpenLoop/backend:") + B::name() + "/" +
          std::to_string(state.range(0)),
      lat_ns);
}

std::vector<std::int64_t> swept_rates() {
  const char* v = std::getenv("WFL_SERVICE_RATES");
  if (v == nullptr || *v == '\0') return {50000, 200000, 400000};
  std::vector<std::int64_t> rates;
  for (const char* p = v; *p != '\0';) {
    char* end = nullptr;
    const long long r = std::strtoll(p, &end, 10);
    if (end == p) break;
    if (r > 0) rates.push_back(r);
    p = (*end == ',') ? end + 1 : end;
  }
  return rates.empty() ? std::vector<std::int64_t>{50000, 200000, 400000}
                       : rates;
}

void register_service_sweeps() {
  RealBackends::for_each([](auto tag) {
    using B = typename decltype(tag)::type;
    const std::string name =
        std::string("Service_OpenLoop/backend:") + B::name();
    auto* bm = benchmark::RegisterBenchmark(name.c_str(),
                                            BM_ServiceOpenLoop<B>);
    for (const std::int64_t r : swept_rates()) bm->Arg(r);
    bm->Iterations(1)
        ->UseRealTime()  // the dispatcher sleeps between arrivals
        ->Unit(benchmark::kMillisecond);
  });
}

}  // namespace

WFL_BENCH_JSON_MAIN_WITH(register_service_sweeps)
