// The attempt hot path, pinned: wfl-bench-v1 numbers for the per-attempt
// costs the paper's step model does NOT count — pool traffic, thunk-log
// reset, EBR guard entry — plus the per-phase step counters it does.
//
//   Hotpath_SingleLock_Uncontended   the steady-state cost of one
//                                    uncontended single-lock attempt
//                                    (alloc + insert + compete + remove +
//                                    retire, all shard-local)
//   Hotpath_MultiShard_Uncontended   the same attempt straddling two
//                                    shards (two EBR domains per segment,
//                                    refcounted retire)
//   Hotpath_SingleLock_Contended     κ processes hammering one lock
//   Hotpath_IdemReplay/N             descriptor reinit + owner run +
//                                    helper replay of an N-op thunk — the
//                                    lazy-log-reset microcost in isolation
//   Hotpath_MultiLock_RawSpan        L=8 attempt through the raw-span
//   Hotpath_MultiLock_View           overload vs the validated
//                                    LockSetView path (the release-build
//                                    duplicate-scan delta)
//
// Counters (additive wfl-bench-v1 keys, per-attempt means unless noted):
//   attempts_per_sec             also the entry's ops_per_s
//   pre_reveal_steps             help + multiInsert own steps (AttemptInfo)
//   post_reveal_steps            run + multiRemove own steps
//   total_steps                  whole attempt
//   freelist_ops_per_attempt     shared-freelist transactions (pops/pushes,
//                                single or batched) per attempt — 0 in the
//                                cached steady state
//   log_slots_reset_per_attempt  thunk-log slots re-inited by reinit —
//                                O(ops used) under the lazy reset,
//                                kThunkLogCap before it
//
// The capability probes (`if constexpr (requires ...)`) let this exact
// file also build against the pre-overhaul tree, which is how the
// "before" half of BENCH_hotpath.json was captured.
//
// Delays run in kOff mode (the flock-style practical configuration, as in
// exp_throughput): with kTheory delays every attempt costs a fixed
// c0·κ²L²·T spin and the memory-path costs this bench exists to watch
// would vanish into it.
#include <benchmark/benchmark.h>

#include <concepts>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "bench_json.hpp"
#include "wfl/wfl.hpp"

namespace {

using wfl::AttemptInfo;
using wfl::Cell;
using wfl::IdemCtx;
using wfl::LockConfig;
using wfl::LockStats;
using wfl::RealPlat;
using wfl::SpaceSizing;
using Table = wfl::LockTable<RealPlat>;

LockConfig hot_cfg(std::uint32_t kappa, std::uint32_t max_locks,
                   std::uint32_t thunk_steps = 8) {
  LockConfig cfg;
  cfg.kappa = kappa;
  cfg.max_locks = max_locks;
  cfg.max_thunk_steps = thunk_steps;
  cfg.delay_mode = wfl::DelayMode::kOff;
  return cfg;
}

// --- capability probes (compat with the pre-overhaul tree) ---------------

template <typename T>
std::uint64_t table_freelist_ops(const T& t) {
  if constexpr (requires { t.freelist_ops(); }) {
    return t.freelist_ops();
  } else {
    return 0;  // pre-overhaul: counter absent; key omitted below
  }
}

template <typename T>
constexpr bool kHasFreelistCounter = requires(const T& t) {
  t.freelist_ops();
};

template <typename Stats>
std::uint64_t stats_log_resets(const Stats& s) {
  if constexpr (requires { s.log_slot_resets; }) {
    return s.log_slot_resets;
  } else {
    return 0;
  }
}

template <typename Stats>
constexpr bool kHasLogResets = requires(const Stats& s) {
  s.log_slot_resets;
};
constexpr bool kHasLogResetCounter = kHasLogResets<LockStats>;

template <typename LogT>
void note_used_compat(LogT& log, std::uint32_t ops) {
  if constexpr (requires { log.note_used(ops); }) {
    log.note_used(ops);
  }
}

// Measures what reinit actually re-initialized: the lazy reset reports its
// slot count; the pre-overhaul void reinit unconditionally re-inited the
// whole log.
template <typename DescT>
std::uint32_t reinit_count(DescT& d, std::uint64_t serial) {
  if constexpr (requires {
                  { d.reinit(serial) } -> std::same_as<std::uint32_t>;
                }) {
    return d.reinit(serial);
  } else {
    d.reinit(serial);
    return wfl::kThunkLogCap;
  }
}

// --- shared driver --------------------------------------------------------

struct PhaseSums {
  std::uint64_t attempts = 0;
  std::uint64_t pre = 0;
  std::uint64_t post = 0;
  std::uint64_t total = 0;
};

// One attempt per iteration over a fixed lock list; accumulates the
// AttemptInfo phase counters.
template <typename Ids>
PhaseSums run_attempts(benchmark::State& state, Table& table,
                       Table::Process proc, const Ids& ids,
                       Cell<RealPlat>& cell) {
  PhaseSums sums;
  for (auto _ : state) {
    AttemptInfo info;
    const bool won =
        table.try_locks(proc, ids, [&cell](IdemCtx<RealPlat>& m) {
          m.store(cell, m.load(cell) + 1);
        }, &info);
    benchmark::DoNotOptimize(won);
    ++sums.attempts;
    sums.pre += info.pre_reveal_work;
    sums.post += info.post_reveal_work;
    sums.total += info.total_steps;
  }
  return sums;
}

void report(benchmark::State& state, const PhaseSums& sums,
            double freelist_delta, double log_reset_delta,
            bool have_freelist, bool have_log_resets) {
  const auto n = static_cast<double>(sums.attempts ? sums.attempts : 1);
  state.SetItemsProcessed(static_cast<std::int64_t>(sums.attempts));
  state.counters["attempts_per_sec"] = benchmark::Counter(
      static_cast<double>(sums.attempts), benchmark::Counter::kIsRate);
  using C = benchmark::Counter;
  const auto avg = C::kAvgThreads;
  state.counters["pre_reveal_steps"] = C(static_cast<double>(sums.pre) / n, avg);
  state.counters["post_reveal_steps"] =
      C(static_cast<double>(sums.post) / n, avg);
  state.counters["total_steps"] = C(static_cast<double>(sums.total) / n, avg);
  if (have_freelist) {
    state.counters["freelist_ops_per_attempt"] = C(freelist_delta / n, avg);
  }
  if (have_log_resets) {
    state.counters["log_slots_reset_per_attempt"] = C(log_reset_delta / n, avg);
  }
}

// --- benchmarks -----------------------------------------------------------

void Hotpath_SingleLock_Uncontended(benchmark::State& state) {
  Table table(hot_cfg(2, 2), 2, 16, SpaceSizing{.shards = 4});
  auto proc = table.register_process();
  RealPlat::seed_rng(0xB0A710ADULL);
  Cell<RealPlat> cell{0};
  // Warm the slot caches and the EBR pipeline out of the timed region so
  // the counters show the steady state, not the cold start.
  for (int i = 0; i < 512; ++i) {
    const std::uint32_t ids[] = {static_cast<std::uint32_t>(i % 16)};
    table.try_locks(proc, ids, [&cell](IdemCtx<RealPlat>& m) {
      m.store(cell, m.load(cell) + 1);
    });
  }
  const std::uint64_t fl0 = table_freelist_ops(table);
  const std::uint64_t lr0 = stats_log_resets(table.stats());
  const std::uint32_t ids[] = {0};
  const PhaseSums sums = run_attempts(state, table, proc, ids, cell);
  report(state, sums,
         static_cast<double>(table_freelist_ops(table) - fl0),
         static_cast<double>(stats_log_resets(table.stats()) - lr0),
         kHasFreelistCounter<Table>, kHasLogResetCounter);
}
BENCHMARK(Hotpath_SingleLock_Uncontended);

void Hotpath_MultiShard_Uncontended(benchmark::State& state) {
  Table table(hot_cfg(2, 2), 2, 16, SpaceSizing{.shards = 4});
  auto proc = table.register_process();
  RealPlat::seed_rng(0xB0A710ADULL);
  Cell<RealPlat> cell{0};
  for (int i = 0; i < 512; ++i) {
    const std::uint32_t warm[] = {1, 2};
    table.try_locks(proc, warm, [&cell](IdemCtx<RealPlat>& m) {
      m.store(cell, m.load(cell) + 1);
    });
  }
  const std::uint64_t fl0 = table_freelist_ops(table);
  const std::uint64_t lr0 = stats_log_resets(table.stats());
  const std::uint32_t ids[] = {1, 2};  // shards 1 and 2 under mask routing
  const PhaseSums sums = run_attempts(state, table, proc, ids, cell);
  report(state, sums,
         static_cast<double>(table_freelist_ops(table) - fl0),
         static_cast<double>(stats_log_resets(table.stats()) - lr0),
         kHasFreelistCounter<Table>, kHasLogResetCounter);
}
BENCHMARK(Hotpath_MultiShard_Uncontended);

// κ processes on one lock. Table shared across the benchmark's threads;
// the mutex-guarded refcount builds it for the first arrival and tears it
// down with the last (works on every Google Benchmark version).
void Hotpath_SingleLock_Contended(benchmark::State& state) {
  static std::mutex mu;
  static std::unique_ptr<Table> table;
  static std::unique_ptr<Cell<RealPlat>> cell;
  static int active = 0;
  {
    std::lock_guard<std::mutex> lk(mu);
    if (active++ == 0) {
      table = std::make_unique<Table>(hot_cfg(8, 2), 8, 16,
                                      SpaceSizing{.shards = 4});
      cell = std::make_unique<Cell<RealPlat>>(0);
    }
  }
  RealPlat::seed_rng(0xC047E57ULL +
                     static_cast<std::uint64_t>(state.thread_index()));
  auto proc = table->register_process();
  const std::uint32_t ids[] = {0};
  const PhaseSums sums = run_attempts(state, *table, proc, ids, *cell);
  report(state, sums, 0.0, 0.0, false, false);
  table->release_process(proc);
  {
    std::lock_guard<std::mutex> lk(mu);
    if (--active == 0) {
      cell.reset();
      table.reset();
    }
  }
}
BENCHMARK(Hotpath_SingleLock_Contended)->Threads(4)->UseRealTime();

// Descriptor reinit + owner run + helper replay of an N-op thunk, no lock
// machinery: isolates what the lazy log reset buys. Before the overhaul,
// every reinit re-initialized all kThunkLogCap slots regardless of N.
void Hotpath_IdemReplay(benchmark::State& state) {
  const auto ops = static_cast<std::uint32_t>(state.range(0));
  auto d = std::make_unique<wfl::Descriptor<RealPlat>>();
  std::vector<std::unique_ptr<Cell<RealPlat>>> cells;
  for (std::uint32_t i = 0; i < ops; ++i) {
    cells.push_back(std::make_unique<Cell<RealPlat>>(0));
  }
  std::uint64_t serial = 1;
  std::uint64_t runs = 0;
  std::uint64_t slots_reset = 0;
  std::uint64_t reinits = 0;
  for (auto _ : state) {
    slots_reset += reinit_count(*d, serial++);
    ++reinits;
    for (int run = 0; run < 2; ++run) {  // owner, then one helper replay
      IdemCtx<RealPlat> m(d->log, d->tag_base);
      for (std::uint32_t i = 0; i < ops; ++i) {
        m.store(*cells[i], static_cast<std::uint32_t>(serial & 0xFFFF));
      }
      note_used_compat(d->log, m.ops_used());
      ++runs;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(runs));
  // Measured, not assumed: a regression back to O(kThunkLogCap) shows up
  // here (and trips the CI perf-smoke bound on the uncontended bench).
  state.counters["log_slots_reset_per_attempt"] = benchmark::Counter(
      static_cast<double>(slots_reset) /
      static_cast<double>(reinits ? reinits : 1));
}
BENCHMARK(Hotpath_IdemReplay)->Arg(2)->Arg(32);

// The raw-span overload vs the validated LockSetView path at the L budget
// (the O(L²) duplicate scan demotion's observable face).
void Hotpath_MultiLock_RawSpan(benchmark::State& state) {
  Table table(hot_cfg(2, 8), 2, 8);
  auto proc = table.register_process();
  RealPlat::seed_rng(0xB0A710ADULL);
  Cell<RealPlat> cell{0};
  const std::uint32_t ids[] = {0, 1, 2, 3, 4, 5, 6, 7};
  const PhaseSums sums = run_attempts(state, table, proc, ids, cell);
  report(state, sums, 0.0, 0.0, false, false);
}
BENCHMARK(Hotpath_MultiLock_RawSpan);

void Hotpath_MultiLock_View(benchmark::State& state) {
  Table table(hot_cfg(2, 8), 2, 8);
  auto proc = table.register_process();
  RealPlat::seed_rng(0xB0A710ADULL);
  Cell<RealPlat> cell{0};
  const wfl::StaticLockSet<8> locks({0, 1, 2, 3, 4, 5, 6, 7});
  const PhaseSums sums = run_attempts(state, table, proc, locks, cell);
  report(state, sums, 0.0, 0.0, false, false);
}
BENCHMARK(Hotpath_MultiLock_View);

}  // namespace

WFL_BENCH_JSON_MAIN()
