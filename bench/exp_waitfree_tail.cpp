// E11 — wait-freedom under adversarial stalls (the claim that names the
// paper: attempts complete in a *bounded* number of the caller's own steps
// "in a context in which any process can be arbitrarily delayed").
//
// Setup: a 6-process ring (dining-philosophers conflict graph: process p
// needs locks {p, p+1 mod n}), driven by an oblivious StallBurst schedule
// that periodically freezes one process for `burst` consecutive slots —
// including, eventually, mid-critical-section. Sweep the burst length and
// record the distribution of caller-steps per submission for every
// backend in the simulator registry (ONE driver, templated on the
// LockBackend concept):
//
//   wflock     one-shot submissions (Algorithm 3, theory delays). The
//              paper bounds every attempt by O(κ²L²T) regardless of
//              schedule — the measured max must sit exactly at T0+T1+O(1)
//              and must NOT grow with the burst length.
//   turek      one-shot submissions are whole operations (recursive
//              helping): they always complete, but a single op can do
//              unbounded helping work; lock-free, not wait-free.
//   spin2pl    Policy::retry() submissions (the discipline's honest unit
//              of work): a waiter behind the frozen lock holder keeps
//              burning patience-bounded attempts for the whole burst —
//              caller steps grow linearly with it, the failure mode
//              wait-freedom exists to kill.
//
// The one-line verdict of the experiment: as burst grows 30x, wflock's max
// stays flat at its delay budget while spin2pl's max tracks the burst.
#include <cstdio>
#include <memory>
#include <vector>

#include "exp_json.hpp"
#include "wfl/util/cli.hpp"
#include "wfl/util/stats.hpp"
#include "wfl/util/table.hpp"
#include "wfl/wfl.hpp"

namespace wfl {
namespace {

constexpr int kProcs = 6;

LockConfig ring_cfg() {
  LockConfig cfg;
  cfg.kappa = 2;  // a ring lock is shared by exactly two neighbours
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 4;
  cfg.delay_mode = DelayMode::kTheory;
  return cfg;
}

struct Collector {
  RunningStat steps;
  Histogram hist{400000.0, 4000};
  void add(std::uint64_t s) {
    steps.add(static_cast<double>(s));
    hist.add(static_cast<double>(s));
  }
};

// Runs one backend over the ring workload. The unit of measurement is one
// submission's Outcome::total_steps: a single attempt for the bounded
// disciplines (wait-free / helping), a full retry-until-success operation
// for the blocking one — its own honest unit, since a lost blocking
// "attempt" is just the patience knob, not the discipline.
template <typename B>
Collector run_backend(std::uint64_t burst, int ops_per_proc,
                      std::uint64_t seed) {
  Collector out;
  BackendConfig bc;
  bc.lock = ring_cfg();
  bc.max_procs = kProcs;
  bc.num_locks = kProcs;
  auto space = B::make_space(bc);

  std::vector<std::unique_ptr<Cell<SimPlat>>> plates;
  for (int i = 0; i < kProcs; ++i) {
    plates.push_back(std::make_unique<Cell<SimPlat>>(0u));
  }

  const Policy policy = B::progress() == BackendProgress::kBlocking
                            ? Policy::retry()
                            : Policy::one_shot();

  Simulator sim(seed);
  std::vector<typename B::Session> sessions;
  sessions.reserve(kProcs);
  for (int p = 0; p < kProcs; ++p) sessions.emplace_back(*space);
  for (int p = 0; p < kProcs; ++p) {
    sim.add_process([&, p] {
      Cell<SimPlat>* plate = plates[static_cast<std::size_t>(p)].get();
      const StaticLockSet<2> forks{
          static_cast<std::uint32_t>(p),
          static_cast<std::uint32_t>((p + 1) % kProcs)};
      // Built once, armed per submission (PR-5 batch building block): the
      // lock set's invariants and the thunk marshalling are not re-done on
      // every iteration of the measurement loop.
      const PreparedOp<SimPlat> op(forks,
                                   [plate](IdemCtx<SimPlat>& m) {
                                     m.store(*plate, m.load(*plate) + 1);
                                   });
      int done = 0;
      while (done < ops_per_proc) {
        const Outcome o = B::submit(sessions[static_cast<std::size_t>(p)],
                                    op.locks(), op.armed(), policy);
        out.add(o.total_steps);
        if (o.won) ++done;
      }
    });
  }
  StallBurstSchedule sched(kProcs, seed * 13 + 7, burst);
  WFL_CHECK(sim.run(sched, 8'000'000'000ull));
  return out;
}

int main_impl(int argc, char** argv) {
  Cli cli(argc, argv);
  const int ops = static_cast<int>(cli.flag_int("ops", 40));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.flag_int("seed", 2022));
  cli.done();

  const LockConfig cfg = ring_cfg();
  const std::uint64_t budget = cfg.t0_steps() + cfg.t1_steps();
  std::fprintf(
      stderr,
      "E11: per-submission caller-steps under StallBurst schedules, %d-proc "
      "ring (kappa=2, L=2, T=4). wflock per-attempt budget T0+T1 = %llu.\n"
      "Wait-freedom: wflock max must stay ~flat as bursts grow; blocking "
      "2PL max must track the burst length.\n\n",
      kProcs, static_cast<unsigned long long>(budget));

  Table t({"backend", "burst", "n", "mean", "p50", "p99", "max",
           "max/burst", "bounded"});
  wfl_bench::ExpJson json;
  for (const std::uint64_t burst : {3000ull, 30000ull, 90000ull}) {
    SimBackends<SimPlat>::for_each([&](auto tag) {
      using B = typename decltype(tag)::type;
      const Collector c = run_backend<B>(burst, ops, seed);
      const double mx = c.steps.max();
      const bool wait_free = B::progress() == BackendProgress::kWaitFree;
      t.cell(B::name())
          .cell(burst)
          .cell(c.steps.count())
          .cell(c.steps.mean(), 1)
          .cell(c.hist.percentile(50), 0)
          .cell(c.hist.percentile(99), 0)
          .cell(mx, 0)
          .cell(mx / static_cast<double>(burst), 2)
          .cell(wait_free
                    ? (mx <= static_cast<double>(budget) + 64.0 ? "yes"
                                                                : "NO!")
                    : "n/a");
      t.end_row();
      json.add(std::string("waitfree_tail/") + B::name() + "/burst:" +
                   std::to_string(burst),
               B::name())
          .p99_ns(0)
          .field("burst", static_cast<double>(burst))
          .field("steps_mean", c.steps.mean())
          .field("steps_p99", c.hist.percentile(99))
          .field("steps_max", mx)
          .field("budget", static_cast<double>(budget));
    });
  }
  t.print(stderr);
  std::fprintf(
      stderr,
      "\nReading: wflock rows keep the same max across bursts (the delay\n"
      "budget dominates every attempt, win or lose). spin2pl's max grows\n"
      "with the burst (a waiter burns attempts while the frozen neighbour\n"
      "holds the lock). turek completes via helping but pays helping\n"
      "chains.\n");
  json.emit();
  return 0;
}

}  // namespace
}  // namespace wfl

int main(int argc, char** argv) { return wfl::main_impl(argc, argv); }
