// E11 — wait-freedom under adversarial stalls (the claim that names the
// paper: attempts complete in a *bounded* number of the caller's own steps
// "in a context in which any process can be arbitrarily delayed").
//
// Setup: a 6-process ring (dining-philosophers conflict graph: process p
// needs locks {p, p+1 mod n}), driven by an oblivious StallBurst schedule
// that periodically freezes one process for `burst` consecutive slots —
// including, eventually, mid-critical-section. Sweep the burst length and
// record the distribution of caller-steps per operation for:
//
//   wflock     one tryLock attempt (Algorithm 3, theory delays). The paper
//              bounds every attempt by O(κ²L²T) regardless of schedule —
//              the measured max must sit exactly at T0+T1+O(1) and must
//              NOT grow with the burst length.
//   turek      Turek/Shasha/Prakash-style lock-free locks (recursive
//              helping): operations always complete, but a single op can
//              do unbounded helping work; lock-free, not wait-free.
//   spin-2pl   blocking ordered two-phase locking: a waiter behind the
//              frozen lock holder spins for the whole burst — caller
//              steps grow linearly with the burst, the failure mode
//              wait-freedom exists to kill.
//
// The one-line verdict of the experiment: as burst grows 30x, wflock's max
// stays flat at its delay budget while spin-2pl's max tracks the burst.
#include <cstdio>
#include <memory>
#include <vector>

#include "wfl/wfl.hpp"
#include "wfl/util/cli.hpp"
#include "wfl/util/stats.hpp"
#include "wfl/util/table.hpp"

namespace wfl {
namespace {

constexpr int kProcs = 6;

LockConfig ring_cfg() {
  LockConfig cfg;
  cfg.kappa = 2;  // a ring lock is shared by exactly two neighbours
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 4;
  cfg.delay_mode = DelayMode::kTheory;
  return cfg;
}

struct Collector {
  RunningStat steps;
  Histogram hist{400000.0, 4000};
  void add(std::uint64_t s) {
    steps.add(static_cast<double>(s));
    hist.add(static_cast<double>(s));
  }
};

// Runs one provider over the ring workload and fills `out`.
// provider: 0 = wflock, 1 = turek, 2 = spin2pl(blocking).
Collector run_provider(int provider, std::uint64_t burst, int ops_per_proc,
                       std::uint64_t seed) {
  Collector out;
  const LockConfig cfg = ring_cfg();

  std::vector<std::unique_ptr<Cell<SimPlat>>> plates;
  for (int i = 0; i < kProcs; ++i) {
    plates.push_back(std::make_unique<Cell<SimPlat>>(0u));
  }

  std::unique_ptr<LockSpace<SimPlat>> wspace;
  std::unique_ptr<TurekLockSpace<SimPlat>> tspace;
  std::unique_ptr<Spin2PL<SimPlat>> sspace;
  if (provider == 0) {
    wspace = std::make_unique<LockSpace<SimPlat>>(cfg, kProcs, kProcs);
  } else if (provider == 1) {
    tspace = std::make_unique<TurekLockSpace<SimPlat>>(kProcs, kProcs);
  } else {
    sspace = std::make_unique<Spin2PL<SimPlat>>(kProcs);
  }

  Simulator sim(seed);
  for (int p = 0; p < kProcs; ++p) {
    sim.add_process([&, p, provider] {
      Cell<SimPlat>* plate = plates[static_cast<std::size_t>(p)].get();
      const std::uint32_t ids[2] = {
          static_cast<std::uint32_t>(p),
          static_cast<std::uint32_t>((p + 1) % kProcs)};
      if (provider == 0) {
        auto proc = wspace->register_process();
        int done = 0;
        while (done < ops_per_proc) {
          AttemptInfo info;
          const bool won = wspace->try_locks(
              proc, ids,
              [plate](IdemCtx<SimPlat>& m) {
                m.store(*plate, m.load(*plate) + 1);
              },
              &info);
          out.add(info.total_steps);
          if (won) ++done;
        }
      } else if (provider == 1) {
        auto proc = tspace->register_process();
        for (int i = 0; i < ops_per_proc; ++i) {
          const std::uint64_t before = SimPlat::steps();
          tspace->apply(proc, ids, [plate](IdemCtx<SimPlat>& m) {
            m.store(*plate, m.load(*plate) + 1);
          });
          out.add(SimPlat::steps() - before);
        }
      } else {
        for (int i = 0; i < ops_per_proc; ++i) {
          const std::uint64_t before = SimPlat::steps();
          sspace->locked(ids, [plate] {
            // Equivalent critical section: RMW on the plate (uninstru-
            // mented cell ops; the spin provider has no idempotence).
            plate->init(plate->peek() + 1);
            SimPlat::step();  // account the critical section's work
            SimPlat::step();
          });
          out.add(SimPlat::steps() - before);
        }
      }
    });
  }
  StallBurstSchedule sched(kProcs, seed * 13 + 7, burst);
  WFL_CHECK(sim.run(sched, 8'000'000'000ull));
  return out;
}

int main_impl(int argc, char** argv) {
  Cli cli(argc, argv);
  const int ops = static_cast<int>(cli.flag_int("ops", 40));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.flag_int("seed", 2022));
  cli.done();

  const LockConfig cfg = ring_cfg();
  const std::uint64_t budget = cfg.t0_steps() + cfg.t1_steps();
  std::printf(
      "E11: per-operation caller-steps under StallBurst schedules, %d-proc "
      "ring (kappa=2, L=2, T=4). wflock per-attempt budget T0+T1 = %llu.\n"
      "Wait-freedom: wflock max must stay ~flat as bursts grow; blocking "
      "2PL max must track the burst length.\n\n",
      kProcs, static_cast<unsigned long long>(budget));

  Table t({"provider", "burst", "n", "mean", "p50", "p99", "max",
           "max/burst", "bounded"});
  const char* names[3] = {"wflock", "turek-lf", "spin-2pl"};
  for (const std::uint64_t burst : {3000ull, 30000ull, 90000ull}) {
    for (int prov = 0; prov < 3; ++prov) {
      const Collector c = run_provider(prov, burst, ops, seed);
      const double mx = c.steps.max();
      t.cell(names[prov])
          .cell(burst)
          .cell(c.steps.count())
          .cell(c.steps.mean(), 1)
          .cell(c.hist.percentile(50), 0)
          .cell(c.hist.percentile(99), 0)
          .cell(mx, 0)
          .cell(mx / static_cast<double>(burst), 2)
          .cell(prov == 0
                    ? (mx <= static_cast<double>(budget) + 64.0 ? "yes"
                                                                : "NO!")
                    : "n/a");
      t.end_row();
    }
  }
  t.print();
  std::printf(
      "\nReading: wflock rows keep the same max across bursts (the delay\n"
      "budget dominates every attempt, win or lose). spin-2pl's max grows\n"
      "with the burst (a waiter spins while the frozen neighbour holds the\n"
      "lock). turek completes via helping but pays helping chains.\n");
  return 0;
}

}  // namespace
}  // namespace wfl

int main(int argc, char** argv) { return wfl::main_impl(argc, argv); }
