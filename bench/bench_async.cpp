// Async submission pinned: wfl-bench-v1 numbers for the AsyncExecutor
// (core/async_executor.hpp) — the fiber-multiplexed path that carries
// far more in-flight submissions than the machine has threads.
//
//   Async_InFlightChurn/N   the headline: N submissions held in flight
//                           on a fixed worker pool (N >> workers; the
//                           default arg is 100k). Each iteration reaps
//                           one completion and resubmits, so the pool
//                           sustains ~N in-flight for the whole run.
//                           Throughput = completions/s through the
//                           executor under that load.
//   Async_RoundTrip         latency shape: one async_submit + wait()
//                           round trip through the worker pool,
//                           uncontended. Every round trip is timed into
//                           a LatencyReservoirs distribution, so the
//                           pinned p99_ns/p999_ns are real percentiles
//                           (no p99_is_mean degradation)
//   Async_SyncBaseline      the same submission through plain submit()
//                           on the caller's thread — the executor's
//                           overhead reference point
//
// Counters (additive wfl-bench-v1 keys):
//   in_flight_sessions   live session records held by the executor
//                        (submitted, Outcome not yet consumed) — the
//                        sampled FLOOR across all timed iterations, so
//                        the reported level was sustained, not peaked
//   queued_sessions      submitted-and-not-yet-completed at run end
//                        (how far the pool's completion wave trails the
//                        reaper; informational, machine-dependent)
//   backoff_spin_steps   total own steps idled in backoff by completed
//                        ops — MUST be 0: parking replaces spinning
//   parks_per_op         park events per completed op
//   wakes_per_op         release-event wakeups per completed op
//   steals_per_op        Chase-Lev cross-worker steals per completed op
//   wake_skip_ratio      wake requests resolved WITHOUT a futex syscall
//                        (target already awake/signalled) over all wake
//                        requests — the wake-coalescing hit rate
//   fiber_reuse_ratio    pool reuses / (creates + reuses) — stack
//                        recycling across quanta
//   wfl_threads          actual worker count (reserved key: overrides
//                        the entry's thread count)
//
// Workers default to hardware_concurrency clamped to [1, 4]: the gauge
// being pinned is submissions >> threads, not thread scaling (that is
// bench_scaling's job).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "wfl/wfl.hpp"

namespace {

using wfl::AsyncClient;
using wfl::AsyncExecutor;
using wfl::Cell;
using wfl::IdemCtx;
using wfl::LockConfig;
using wfl::Policy;
using wfl::RealPlat;
using Table = wfl::LockTable<RealPlat>;

LockConfig async_cfg() {
  LockConfig cfg;
  cfg.kappa = 8;
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 8;
  cfg.delay_mode = wfl::DelayMode::kOff;
  return cfg;
}

int pool_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 1;
  return static_cast<int>(hw < 4 ? hw : 4);
}

void Async_InFlightChurn(benchmark::State& state) {
  const auto target = static_cast<std::size_t>(state.range(0));
  const int workers = pool_workers();
  constexpr int kLocks = 256;

  const LockConfig cfg = async_cfg();
  Table space(cfg, workers + 2, kLocks);
  AsyncExecutor<RealPlat> exec(space, {.workers = workers});
  wfl::Session<RealPlat> session(space);
  AsyncClient<RealPlat> client(session);
  std::vector<std::unique_ptr<Cell<RealPlat>>> cells;
  for (int i = 0; i < kLocks; ++i) {
    cells.push_back(std::make_unique<Cell<RealPlat>>(0u));
  }

  wfl::Xoshiro256 rng(0xA51FC);
  auto submit_one = [&] {
    const auto id = static_cast<std::uint32_t>(rng.next_below(kLocks));
    Cell<RealPlat>& cell = *cells[id];
    const wfl::StaticLockSet<1> locks{id};
    return exec.async_submit(
        client, locks,
        [&cell](IdemCtx<RealPlat>& m) { m.store(cell, m.load(cell) + 1); },
        Policy::retry());
  };

  // Prime the pool to the target in-flight level before timing starts.
  std::vector<AsyncExecutor<RealPlat>::Ticket> ring;
  ring.reserve(target);
  for (std::size_t i = 0; i < target; ++i) ring.push_back(submit_one());

  std::uint64_t completions = 0;
  std::uint64_t backoff_spin = 0;
  std::uint64_t live_floor = ~std::uint64_t{0};
  std::size_t idx = 0;
  for (auto _ : state) {
    // Reap one completion, resubmit to hold the in-flight level; yield
    // to the workers when a full scan finds nothing done yet.
    std::size_t scanned = 0;
    for (;;) {
      const wfl::Outcome* o = ring[idx].poll();
      if (o != nullptr) {
        backoff_spin += o->backoff_steps;
        ++completions;
        ring[idx] = submit_one();
        idx = (idx + 1) % ring.size();
        break;
      }
      idx = (idx + 1) % ring.size();
      if (++scanned == ring.size()) {
        scanned = 0;
        std::this_thread::yield();
      }
    }
    // The headline gauge, sampled every iteration and reported as the
    // floor: the executor held at least this many live session records
    // at every reap point of the run.
    const std::uint64_t live = exec.live_ops();
    if (live < live_floor) live_floor = live;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(completions));

  const double done = completions > 0 ? static_cast<double>(completions) : 1;
  state.counters["in_flight_sessions"] = static_cast<double>(live_floor);
  state.counters["queued_sessions"] =
      static_cast<double>(exec.in_flight());
  state.counters["backoff_spin_steps"] = static_cast<double>(backoff_spin);
  state.counters["parks_per_op"] = static_cast<double>(exec.parks()) / done;
  state.counters["wakes_per_op"] = static_cast<double>(exec.wakes()) / done;
  // Lock-free scheduler core gauges: cross-worker steals per completed op
  // and the fraction of wake requests the coalescer resolved without a
  // futex syscall (target already awake or signalled).
  state.counters["steals_per_op"] = static_cast<double>(exec.steals()) / done;
  const double posts = static_cast<double>(exec.wake_posts());
  const double skips = static_cast<double>(exec.wake_skips());
  state.counters["wake_skip_ratio"] =
      posts + skips > 0 ? skips / (posts + skips) : 0.0;
  const double created = static_cast<double>(exec.fibers_created());
  const double reused = static_cast<double>(exec.fibers_reused());
  state.counters["fiber_reuse_ratio"] =
      created + reused > 0 ? reused / (created + reused) : 0.0;
  state.counters["wfl_threads"] = workers;

  // Teardown: the remaining in-flight ring is torn down as cancelled work
  // (the executor's drain) rather than attempted to completion.
  client.crash();
}
BENCHMARK(Async_InFlightChurn)
    ->Arg(100000)
    ->Iterations(20000)
    ->Unit(benchmark::kMicrosecond);

void Async_RoundTrip(benchmark::State& state) {
  const LockConfig cfg = async_cfg();
  Table space(cfg, 4, 16);
  AsyncExecutor<RealPlat> exec(space, {.workers = 1});
  wfl::Session<RealPlat> session(space);
  AsyncClient<RealPlat> client(session);
  Cell<RealPlat> cell{0};
  const wfl::StaticLockSet<1> locks{3};

  // One sample per round trip: each iteration IS one latency, so the
  // reservoir holds the full distribution, not a thread-average.
  std::vector<double> lat_ns;
  lat_ns.reserve(1 << 16);
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    auto t = exec.async_submit(
        client, locks,
        [&cell](IdemCtx<RealPlat>& m) { m.store(cell, m.load(cell) + 1); },
        Policy::retry());
    benchmark::DoNotOptimize(t.wait().won);
    const auto t1 = std::chrono::steady_clock::now();
    lat_ns.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["wfl_threads"] = 1;
  wfl_bench::LatencyReservoirs::instance().record("Async_RoundTrip", lat_ns);
}
BENCHMARK(Async_RoundTrip);

void Async_SyncBaseline(benchmark::State& state) {
  const LockConfig cfg = async_cfg();
  Table space(cfg, 4, 16);
  wfl::Session<RealPlat> session(space);
  Cell<RealPlat> cell{0};
  const wfl::StaticLockSet<1> locks{3};

  for (auto _ : state) {
    const wfl::Outcome o = wfl::submit(
        session, locks,
        [&cell](IdemCtx<RealPlat>& m) { m.store(cell, m.load(cell) + 1); },
        Policy::retry());
    benchmark::DoNotOptimize(o.won);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(Async_SyncBaseline);

}  // namespace

WFL_BENCH_JSON_MAIN()
