// E15 — availability under a REAL process crash: kill -9, not a scheduler
// fiction.
//
// exp_crash (E14) crashes a simulator fiber; the strongest objection to it
// is that "crash" there is a schedule the library could in principle peek
// at. Here there is nothing to peek at: the harness fork()s 4 real worker
// processes onto one shared-memory arena (core/shm_table.hpp), lets them
// contend on a lock pair, and SIGKILLs the victim MID-ATTEMPT at a point
// swept across seeds. The victim's address space is gone; whatever it
// published in the arena is all the survivors have.
//
// The victim is parked at one of three points of the wflock descriptor
// path before the kill lands (the sweep's `phase` axis):
//
//   * insert — announced in every lock's active set, priority unrevealed;
//   * reveal — priority published, competition undriven;
//   * thunk  — it WON, and dies with its thunk half-applied and
//     half-logged, EBR guard held (the nastiest point there is).
//
// Survivors call reap_dead() as they go: the first to observe the dead
// pid claims the corpse, abandons its EBR guard, drives a revealed attempt
// to its decided fate (celebrate-if-won completes the thunk EXACTLY once,
// by the agreement log), eliminates an unrevealed one, and clears its
// announcements. The gate: zero wedged runs, post-crash throughput at
// fair level, and the two thunk cells never disagree (conservation).
//
// The baselines get the honest equivalent of the same kill — the victim
// dies inside its critical section, locks held:
//
//   * spin2pl — try-lock words owned by a dead pid stay owned forever;
//     every later attempt on the pair fails. Wedged, and torn: the victim
//     updated one counter of two.
//   * mutex2pl — a non-robust PTHREAD_PROCESS_SHARED mutex held by a
//     corpse is held forever (timedlock keeps the harness itself alive).
//     Same wedge, same torn data.
//
// Output: human table on stderr, wfl-bench-v1 JSON on stdout (rows
// crash_mp/<backend>/phase=<ph>), parsed by the crash-mp-smoke CI job.
#include <pthread.h>
#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "exp_json.hpp"
#include "wfl/util/cli.hpp"
#include "wfl/util/table.hpp"
#include "wfl/wfl.hpp"

namespace {

using namespace wfl;

constexpr int kProcs = 4;  // forked workers; the last one is the victim
constexpr int kVictim = kProcs - 1;

double now_s() {
  timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

// Per-worker result slot, single-writer (the worker), read by the parent
// after waitpid. finished: 0 running, 1 done, 2 gave up at its deadline.
struct WorkerSlot {
  std::atomic<std::uint64_t> pre{0};
  std::atomic<std::uint64_t> post{0};
  std::atomic<std::uint32_t> finished{0};
};

struct Ctl {
  std::atomic<std::uint32_t> start{0};
  std::atomic<std::uint32_t> crashed{0};       // parent sets after waitpid
  std::atomic<std::uint32_t> victim_ready{0};  // victim parked at the trap
  WorkerSlot slots[kProcs];
  // Baseline shared state: two try-lock words (owner = OS pid), one
  // process-shared mutex pair, and the two counters their critical
  // sections guard (plain — that is the point of the torn-data check).
  std::atomic<std::uint32_t> word[2];
  pthread_mutex_t mtx[2];
  std::uint64_t plain_c0;
  std::uint64_t plain_c1;
};

struct RunResult {
  std::uint64_t pre = 0;
  std::uint64_t post = 0;
  bool victim_sigkilled = false;
  bool survivors_finished = false;
  bool wedged = false;
  bool torn = false;  // counters disagree at the end
};

enum Phase { kPhaseInsert, kPhaseReveal, kPhaseThunk, kPhaseCs };

const char* phase_name(int ph) {
  switch (ph) {
    case kPhaseInsert: return "insert";
    case kPhaseReveal: return "reveal";
    case kPhaseThunk: return "thunk";
    default: return "cs";
  }
}

bool wait_flag(const std::atomic<std::uint32_t>& f, double secs) {
  const double deadline = now_s() + secs;
  while (f.load(std::memory_order_acquire) == 0) {
    if (now_s() > deadline) return false;
    ::usleep(200);
  }
  return true;
}

// SIGKILL the victim and confirm via waitpid that the kill — not an
// assertion or a clean exit — is what ended it.
bool kill_and_confirm(pid_t os_pid) {
  if (::kill(os_pid, SIGKILL) != 0) return false;
  int st = 0;
  if (::waitpid(os_pid, &st, 0) != os_pid) return false;
  return WIFSIGNALED(st) && WTERMSIG(st) == SIGKILL;
}

// Collect the survivors: poll with WNOHANG against a deadline, SIGKILL
// stragglers (a wedge in a BLOCKING backend must wedge the row, never the
// harness). Returns true iff all survivors exited cleanly on their own.
bool collect_survivors(const pid_t* pids, double secs) {
  const double deadline = now_s() + secs;
  bool clean = true;
  for (int w = 0; w < kProcs; ++w) {
    if (w == kVictim) continue;
    for (;;) {
      int st = 0;
      const pid_t r = ::waitpid(pids[w], &st, WNOHANG);
      if (r == pids[w]) {
        clean = clean && WIFEXITED(st) && WEXITSTATUS(st) == 0;
        break;
      }
      if (now_s() > deadline) {
        ::kill(pids[w], SIGKILL);
        ::waitpid(pids[w], &st, 0);
        clean = false;
        break;
      }
      ::usleep(500);
    }
  }
  return clean;
}

// ---------------------------------------------------------------------------
// wflock: the shm table under the kill.
// ---------------------------------------------------------------------------

struct WflRig {
  ShmArena arena;
  std::unique_ptr<ShmLockTable> table;
  Ctl* ctl = nullptr;
  std::uint64_t c0 = 0, c1 = 0, ctl_off = 0;

  WflRig() : arena(ShmArena::create_anon(32u << 20)) {
    LockConfig cfg;
    cfg.kappa = kProcs + 1;  // workers + the parent's probe session
    cfg.max_locks = 2;
    cfg.max_thunk_steps = 8;
    cfg.delay_mode = DelayMode::kOff;
    table = LockTable<RealPlat>::create_in(arena, cfg, 2 * kProcs, 2);
    c0 = arena.create<Cell<RealPlat>>(0u);
    c1 = arena.create<Cell<RealPlat>>(0u);
    ctl_off = arena.create<Ctl>();
    ctl = arena.at<Ctl>(ctl_off);
  }

  ShmThunk thunk() const {
    ShmThunk th;
    th.op = ShmThunk::kAddCells;
    th.n_cells = 2;
    th.cells[0] = Offset<Cell<RealPlat>>{c0};
    th.cells[1] = Offset<Cell<RealPlat>>{c1};
    return th;
  }
  std::uint64_t cell0() const { return arena.at<Cell<RealPlat>>(c0)->peek(); }
  std::uint64_t cell1() const { return arena.at<Cell<RealPlat>>(c1)->peek(); }
};

[[noreturn]] void wfl_worker(WflRig& rig, int widx, int phase,
                             std::uint64_t crash_op, int post_quota,
                             double worker_secs) {
  auto s = rig.table->open_session();
  Ctl& ctl = *rig.ctl;
  WorkerSlot& slot = ctl.slots[widx];
  const std::uint32_t ids[2] = {0, 1};
  while (ctl.start.load(std::memory_order_acquire) == 0) ::usleep(100);

  if (widx == kVictim) {
    // Contend normally until the swept op, then arm the phase's trap on
    // every later attempt (a thunk trap only fires on a WIN, so it may
    // take a few attempts to spring) and wait for the kill.
    auto freeze = [&ctl] {
      ctl.victim_ready.store(1, std::memory_order_release);
      for (;;) ::usleep(500);
    };
    for (std::uint64_t op = 0;; ++op) {
      ShmThunk th = rig.thunk();
      if (op >= crash_op) {
        if (phase == kPhaseThunk) {
          th.trap_os_pid = static_cast<int>(::getpid());
          th.trap_flag = Offset<std::atomic<std::uint32_t>>{
              rig.arena.offset_of(&ctl.victim_ready)};
        } else if (phase == kPhaseInsert) {
          s->trap_pre_reveal = freeze;
        } else {
          s->trap_post_reveal = freeze;
        }
      }
      if (rig.table->try_locks(*s, ids, th)) {
        slot.pre.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  // Survivor: run until post_quota attempts LANDED after the crash (wins
  // or not — a wedged discipline would fail them all, and that is data,
  // not a hang). Reap as we go, like any long-lived attacher would.
  const double deadline = now_s() + worker_secs;
  const ShmThunk th = rig.thunk();
  int post_attempts = 0;
  std::uint64_t ops = 0;
  while (post_attempts < post_quota) {
    if (now_s() > deadline) {
      slot.finished.store(2, std::memory_order_release);
      ::_exit(0);
    }
    const bool was_post = ctl.crashed.load(std::memory_order_acquire) != 0;
    const bool won = rig.table->try_locks(*s, ids, th);
    if (won) {
      (was_post ? slot.post : slot.pre).fetch_add(1, std::memory_order_relaxed);
    }
    if (was_post) ++post_attempts;
    if ((++ops & 15) == 0) rig.table->reap_dead(*s);
  }
  slot.finished.store(1, std::memory_order_release);
  ::_exit(0);
}

RunResult run_wfl(int phase, std::uint64_t crash_op, int post_quota,
                  double worker_secs) {
  WflRig rig;
  auto probe = rig.table->open_session();  // parent's own session, pid 0

  pid_t pids[kProcs];
  for (int w = 0; w < kProcs; ++w) {
    const pid_t pid = ::fork();
    WFL_CHECK_MSG(pid >= 0, "fork failed");
    if (pid == 0) wfl_worker(rig, w, phase, crash_op, post_quota, worker_secs);
    pids[w] = pid;
  }

  RunResult r;
  rig.ctl->start.store(1, std::memory_order_release);
  if (wait_flag(rig.ctl->victim_ready, worker_secs)) {
    r.victim_sigkilled = kill_and_confirm(pids[kVictim]);
  } else {
    ::kill(pids[kVictim], SIGKILL);
    ::waitpid(pids[kVictim], nullptr, 0);
  }
  rig.ctl->crashed.store(1, std::memory_order_release);
  r.survivors_finished = collect_survivors(pids, worker_secs + 5.0);
  for (int w = 0; w < kProcs; ++w) {
    if (w == kVictim) continue;
    r.survivors_finished =
        r.survivors_finished &&
        rig.ctl->slots[w].finished.load(std::memory_order_acquire) == 1;
    r.pre += rig.ctl->slots[w].pre.load(std::memory_order_relaxed);
    r.post += rig.ctl->slots[w].post.load(std::memory_order_relaxed);
  }

  // End-state audit from the parent's session: reap anything the workers
  // missed, then the wedge probe — the pair must still be winnable and no
  // revealed-active corpse may remain announced.
  rig.table->reap_dead(*probe);
  const std::uint32_t ids[2] = {0, 1};
  const bool probe_won = rig.table->try_locks(*probe, ids, rig.thunk());
  r.wedged = !probe_won || rig.table->any_holder(*probe);
  r.torn = rig.cell0() != rig.cell1();
  return r;
}

// ---------------------------------------------------------------------------
// Baselines under the same kill: the victim dies holding both locks.
// ---------------------------------------------------------------------------

constexpr int kSpinPatience = 60000;  // bounded try-lock spin, ~ms scale

bool spin_acquire(std::atomic<std::uint32_t>& w, std::uint32_t self) {
  for (int i = 0; i < kSpinPatience; ++i) {
    std::uint32_t expect = 0;
    if (w.load(std::memory_order_relaxed) == 0 &&
        w.compare_exchange_strong(expect, self, std::memory_order_acquire)) {
      return true;
    }
    if ((i & 1023) == 1023) ::usleep(50);
  }
  return false;
}

bool timed_acquire(pthread_mutex_t& m) {
  timespec ts;
  ::clock_gettime(CLOCK_REALTIME, &ts);
  ts.tv_nsec += 2'000'000;  // 2ms
  if (ts.tv_nsec >= 1'000'000'000) {
    ts.tv_sec += 1;
    ts.tv_nsec -= 1'000'000'000;
  }
  return ::pthread_mutex_timedlock(&m, &ts) == 0;
}

template <bool kMutex>
[[noreturn]] void baseline_worker(Ctl& ctl, int widx, std::uint64_t crash_op,
                                  int post_quota, double worker_secs) {
  WorkerSlot& slot = ctl.slots[widx];
  const auto self = static_cast<std::uint32_t>(::getpid());
  while (ctl.start.load(std::memory_order_acquire) == 0) ::usleep(100);

  auto acquire = [&](int i) {
    if constexpr (kMutex) {
      return timed_acquire(ctl.mtx[i]);
    } else {
      return spin_acquire(ctl.word[i], self);
    }
  };
  auto release = [&](int i) {
    if constexpr (kMutex) {
      ::pthread_mutex_unlock(&ctl.mtx[i]);
    } else {
      ctl.word[i].store(0, std::memory_order_release);
    }
  };

  const double deadline = now_s() + worker_secs;
  int post_attempts = 0;
  for (std::uint64_t op = 0;; ++op) {
    if (widx != kVictim && now_s() > deadline) {
      slot.finished.store(2, std::memory_order_release);
      ::_exit(0);
    }
    const bool was_post = ctl.crashed.load(std::memory_order_acquire) != 0;
    bool won = false;
    if (acquire(0)) {
      if (acquire(1)) {
        ctl.plain_c0 += 1;
        if (widx == kVictim && op >= crash_op) {
          // Die in the critical section, one counter of two applied: the
          // real-world shape of a kill -9 inside locked code.
          ctl.victim_ready.store(1, std::memory_order_release);
          for (;;) ::usleep(500);
        }
        ctl.plain_c1 += 1;
        won = true;
        release(1);
      }
      release(0);
    }
    if (widx != kVictim) {
      if (won) {
        (was_post ? slot.post : slot.pre)
            .fetch_add(1, std::memory_order_relaxed);
      }
      if (was_post && ++post_attempts >= post_quota) {
        slot.finished.store(1, std::memory_order_release);
        ::_exit(0);
      }
    }
  }
}

template <bool kMutex>
RunResult run_baseline(std::uint64_t crash_op, int post_quota,
                       double worker_secs) {
  ShmArena arena = ShmArena::create_anon(1u << 20);
  Ctl* ctl = arena.at<Ctl>(arena.create<Ctl>());
  if constexpr (kMutex) {
    pthread_mutexattr_t at;
    ::pthread_mutexattr_init(&at);
    ::pthread_mutexattr_setpshared(&at, PTHREAD_PROCESS_SHARED);
    for (auto& m : ctl->mtx) ::pthread_mutex_init(&m, &at);
    ::pthread_mutexattr_destroy(&at);
  }

  pid_t pids[kProcs];
  for (int w = 0; w < kProcs; ++w) {
    const pid_t pid = ::fork();
    WFL_CHECK_MSG(pid >= 0, "fork failed");
    if (pid == 0) {
      baseline_worker<kMutex>(*ctl, w, crash_op, post_quota, worker_secs);
    }
    pids[w] = pid;
  }

  RunResult r;
  ctl->start.store(1, std::memory_order_release);
  if (wait_flag(ctl->victim_ready, worker_secs)) {
    r.victim_sigkilled = kill_and_confirm(pids[kVictim]);
  } else {
    ::kill(pids[kVictim], SIGKILL);
    ::waitpid(pids[kVictim], nullptr, 0);
  }
  ctl->crashed.store(1, std::memory_order_release);
  r.survivors_finished = collect_survivors(pids, worker_secs + 5.0);
  for (int w = 0; w < kProcs; ++w) {
    if (w == kVictim) continue;
    r.survivors_finished =
        r.survivors_finished &&
        ctl->slots[w].finished.load(std::memory_order_acquire) == 1;
    r.pre += ctl->slots[w].pre.load(std::memory_order_relaxed);
    r.post += ctl->slots[w].post.load(std::memory_order_relaxed);
  }
  // Wedge probe: can the parent take the pair right now?
  if constexpr (kMutex) {
    if (timed_acquire(ctl->mtx[0])) {
      if (timed_acquire(ctl->mtx[1])) {
        ::pthread_mutex_unlock(&ctl->mtx[1]);
      } else {
        r.wedged = true;
      }
      ::pthread_mutex_unlock(&ctl->mtx[0]);
    } else {
      r.wedged = true;
    }
  } else {
    r.wedged = ctl->word[0].load() != 0 || ctl->word[1].load() != 0;
  }
  r.torn = ctl->plain_c0 != ctl->plain_c1;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.flag_int("seeds", 8));
  const int post_quota = static_cast<int>(cli.flag_int("post-ops", 200));
  const auto crash_base =
      static_cast<std::uint64_t>(cli.flag_int("crash-op-base", 30));
  const double worker_secs = cli.flag_double("worker-secs", 10.0);
  cli.done();

  std::fprintf(stderr,
               "E15: availability under kill -9 (4 forked processes, lock "
               "pair {0,1}, victim SIGKILLed mid-attempt; %d seeds, %d "
               "post-crash attempts per survivor)\n\n",
               seeds, post_quota);

  struct Row {
    const char* backend;
    int phase;
  };
  const Row rows[] = {
      {"wflock", kPhaseInsert}, {"wflock", kPhaseReveal},
      {"wflock", kPhaseThunk},  {"spin2pl", kPhaseCs},
      {"mutex2pl", kPhaseCs},
  };

  Table t({"backend", "crash phase", "sigkilled", "survivors finished",
           "pre-crash wins", "post-crash wins", "post/pre", "wedged runs",
           "torn runs", "verdict"});
  wfl_bench::ExpJson json;
  bool ok = true;

  for (const Row& row : rows) {
    const bool is_wfl = std::string(row.backend) == "wflock";
    int sigkilled = 0, finished = 0, wedged = 0, torn = 0;
    std::uint64_t pre = 0, post = 0, post_when_wedged = 0;
    for (int s = 0; s < seeds; ++s) {
      // The swept kill point: vary where in its own history the victim is
      // trapped, so the crash lands against different set/pool states.
      const std::uint64_t crash_op =
          crash_base + static_cast<std::uint64_t>(s) * 17u;
      const RunResult r =
          is_wfl ? run_wfl(row.phase, crash_op, post_quota, worker_secs)
          : (std::string(row.backend) == "mutex2pl"
                 ? run_baseline<true>(crash_op, post_quota, worker_secs)
                 : run_baseline<false>(crash_op, post_quota, worker_secs));
      sigkilled += r.victim_sigkilled ? 1 : 0;
      finished += r.survivors_finished ? 1 : 0;
      wedged += r.wedged ? 1 : 0;
      torn += r.torn ? 1 : 0;
      pre += r.pre;
      post += r.post;
      if (r.wedged) post_when_wedged += r.post;
      const bool anomaly = is_wfl ? (r.wedged || r.torn ||
                                     !r.survivors_finished ||
                                     !r.victim_sigkilled)
                                  : !r.victim_sigkilled;
      if (anomaly) {
        std::fprintf(stderr,
                     "  %s: [reproducer: seed=%d crash-op=%llu phase=%s]\n",
                     row.backend, s,
                     static_cast<unsigned long long>(crash_op),
                     phase_name(row.phase));
      }
    }
    const double ratio =
        pre == 0 ? 0.0 : static_cast<double>(post) / static_cast<double>(pre);

    char kb[32], fb[32], wb[32], tb[32];
    std::snprintf(kb, sizeof kb, "%d/%d", sigkilled, seeds);
    std::snprintf(fb, sizeof fb, "%d/%d", finished, seeds);
    std::snprintf(wb, sizeof wb, "%d/%d", wedged, seeds);
    std::snprintf(tb, sizeof tb, "%d/%d", torn, seeds);
    t.cell(row.backend)
        .cell(phase_name(row.phase))
        .cell(kb)
        .cell(fb)
        .cell(pre)
        .cell(post)
        .cell(ratio, 2)
        .cell(wb)
        .cell(tb)
        .cell(is_wfl ? (wedged == 0 && torn == 0 && finished == seeds
                            ? "recovered: survivors completed victim's work"
                            : "FAILED TO RECOVER (!)")
                     : (wedged == seeds ? "wedged forever; data torn"
                                        : "UNEXPECTEDLY survived (!)"));
    t.end_row();

    json.add(std::string("crash_mp/") + row.backend +
                 "/phase=" + phase_name(row.phase),
             row.backend, kProcs)
        .field("pre_crash_wins", static_cast<double>(pre))
        .field("post_crash_wins", static_cast<double>(post))
        .field("post_pre_ratio", ratio)
        .field("wedged_runs", wedged)
        .field("torn_runs", torn)
        .field("survivors_finished_runs", finished)
        .field("victim_sigkilled_runs", sigkilled)
        .field("seeds", seeds);

    if (sigkilled != seeds) ok = false;
    if (is_wfl) {
      // The tentpole gate: every run recovered — no wedges, no torn data,
      // every survivor finished. Finishing IS the productivity claim:
      // survivors each complete their full fixed post-crash quota inside
      // the run budget, so post_crash_wins == quota by construction. The
      // post/pre ratio stays a report-only column — pre-crash wins scale
      // with how long the victim takes to reach its swept crash op, so a
      // ratio threshold would gate on the sweep's timing, not recovery.
      if (wedged != 0 || torn != 0 || finished != seeds) {
        ok = false;
      }
    } else {
      // The baseline must actually demonstrate the failure mode (victim
      // dies holding both locks by construction), and a wedged run's
      // post-crash wins must be negligible.
      if (wedged != seeds) ok = false;
      const double leak = static_cast<double>(post_when_wedged) /
                          static_cast<double>(pre == 0 ? 1 : pre);
      if (leak > 0.05) ok = false;
    }
  }
  t.print(stderr);

  std::fprintf(
      stderr, "\nE15 verdict: %s\n",
      ok ? "kill -9 mid-attempt: wflock survivors reap the corpse, complete "
           "its published thunk exactly once, and keep the pair available; "
           "both blocking baselines wedge forever with torn data"
         : "UNEXPECTED — see table");
  json.emit();
  return ok ? 0 : 1;
}
