// Example: a tiny transactional key-value store on wait-free locks.
//
// LockedHashMap gives per-bucket locking (put/get/erase lock one bucket,
// swap locks two) on top of LockSpace. This example runs a mixed workload
// from several threads — inserts, lookups, deletes, and atomic two-key
// swaps — and then audits two invariants a torn multi-key operation would
// break:
//
//   * the multiset of values reachable through the "inventory" keys is
//     exactly what the initial population plus completed puts imply
//     (swaps only permute values, so they must conserve the multiset);
//   * per-key accounting from each thread's successful operations matches
//     final membership.
//
// Build & run:  ./examples/kv_store
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "wfl/wfl.hpp"

int main() {
  using Plat = wfl::RealPlat;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kInventoryKeys = 24;
  constexpr int kOpsPerThread = 3000;

  wfl::LockConfig cfg;
  cfg.kappa = kThreads + 1;  // workers + the main-thread populator
  cfg.max_locks = 2;         // swap touches two buckets
  cfg.max_thunk_steps = wfl::LockedHashMap<Plat>::thunk_step_budget();
  cfg.delay_mode = wfl::DelayMode::kOff;  // practical mode

  wfl::LockSpace<Plat> space(cfg, kThreads + 1, 256);
  wfl::LockedHashMap<Plat> store(space, 256, 4096);

  // Populate: inventory slot i holds value 1000 + i. The scoped session
  // releases its process slot at the end of the block, so the populator's
  // slot is reused by the first worker thread.
  {
    wfl::Session<Plat> session(space);
    for (std::uint64_t k = 1; k <= kInventoryKeys; ++k) {
      if (store.put(session, k, static_cast<std::uint32_t>(1000 + k)) !=
          wfl::kMapOk) {
        std::fprintf(stderr, "populate failed\n");
        return 1;
      }
    }
  }

  // Mixed workload: swaps permute inventory values; puts/erases churn a
  // disjoint per-thread scratch key range (no cross-thread accounting
  // needed there, which keeps the audit exact).
  std::vector<std::thread> workers;
  std::vector<std::uint64_t> swaps_done(kThreads, 0);
  std::vector<std::int64_t> scratch_net(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Plat::seed_rng(42 + static_cast<std::uint64_t>(t));
      wfl::Session<Plat> session(space);
      wfl::Xoshiro256 rng(7 + static_cast<std::uint64_t>(t));
      const std::uint64_t scratch_base = 1000 + 100 * t;
      for (int i = 0; i < kOpsPerThread; ++i) {
        switch (rng.next_below(4)) {
          case 0: {  // atomic two-key swap inside the inventory
            const std::uint64_t a = 1 + rng.next_below(kInventoryKeys);
            std::uint64_t b = 1 + rng.next_below(kInventoryKeys);
            if (b == a) b = 1 + (b % kInventoryKeys);
            if (store.swap(session, a, b) == wfl::kMapOk) {
              ++swaps_done[static_cast<std::size_t>(t)];
            }
            break;
          }
          case 1: {  // scratch put
            const std::uint64_t k = scratch_base + rng.next_below(50);
            const auto r = store.put(session, k, static_cast<std::uint32_t>(i));
            if (r == wfl::kMapOk) ++scratch_net[static_cast<std::size_t>(t)];
            break;
          }
          case 2: {  // scratch erase
            const std::uint64_t k = scratch_base + rng.next_below(50);
            if (store.erase(session, k) == wfl::kMapOk) {
              --scratch_net[static_cast<std::size_t>(t)];
            }
            break;
          }
          default: {  // lookup (locked, so it linearizes with updates)
            const std::uint64_t k = 1 + rng.next_below(kInventoryKeys);
            std::uint32_t v = 0;
            if (store.get_locked(session, k, &v) != wfl::kMapOk) {
              std::fprintf(stderr, "inventory key %llu vanished!\n",
                           static_cast<unsigned long long>(k));
              std::exit(1);
            }
          }
        }
      }
    });
  }
  for (auto& th : workers) th.join();

  // Audit 1: swaps conserve the inventory value multiset.
  std::map<std::uint32_t, int> histogram;
  for (std::uint64_t k = 1; k <= kInventoryKeys; ++k) {
    std::uint32_t v = 0;
    if (!store.get(k, &v)) {
      std::fprintf(stderr, "FAIL: inventory key %llu missing\n",
                   static_cast<unsigned long long>(k));
      return 1;
    }
    ++histogram[v];
  }
  bool multiset_ok = histogram.size() == kInventoryKeys;
  for (std::uint64_t k = 1; k <= kInventoryKeys && multiset_ok; ++k) {
    multiset_ok = histogram[static_cast<std::uint32_t>(1000 + k)] == 1;
  }

  // Audit 2: scratch membership equals per-thread net accounting.
  std::int64_t scratch_total = 0;
  std::uint64_t scratch_present = 0;
  for (int t = 0; t < kThreads; ++t) {
    scratch_total += scratch_net[static_cast<std::size_t>(t)];
    for (std::uint64_t k = 1000 + 100 * t; k < 1000 + 100 * t + 50; ++k) {
      std::uint32_t v = 0;
      if (store.get(k, &v)) ++scratch_present;
    }
  }

  std::uint64_t total_swaps = 0;
  for (const auto s : swaps_done) total_swaps += s;
  std::printf("kv_store: %d threads x %d ops, %llu atomic swaps\n", kThreads,
              kOpsPerThread, static_cast<unsigned long long>(total_swaps));
  std::printf("  inventory multiset conserved: %s\n",
              multiset_ok ? "yes" : "NO — torn swap!");
  std::printf("  scratch membership %llu == net accounting %lld: %s\n",
              static_cast<unsigned long long>(scratch_present),
              static_cast<long long>(scratch_total),
              scratch_present == static_cast<std::uint64_t>(scratch_total)
                  ? "yes"
                  : "NO");
  const bool ok = multiset_ok &&
                  scratch_present == static_cast<std::uint64_t>(scratch_total);
  std::printf("kv_store: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
