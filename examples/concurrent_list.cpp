// Fine-grained locking on a data structure — the paper's motivating use
// case (§1): "operations on linked lists ... that require taking a lock on
// a node and its neighbors for the purpose of making a local update."
//
// Four threads hammer a sorted-list set with inserts and erases; every
// mutation tryLocks {predecessor, current} and re-validates inside the
// critical section. The final list is audited against the per-key net
// insertion counts.
//
// Build & run:  ./examples/concurrent_list
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "wfl/wfl.hpp"

int main() {
  using Plat = wfl::RealPlat;
  constexpr int kThreads = 4;
  constexpr int kKeys = 64;
  constexpr int kOpsPerThread = 4000;
  constexpr std::uint32_t kCapacity = 16384;

  wfl::LockConfig cfg;
  cfg.kappa = kThreads + 1;
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 8;
  cfg.delay_mode = wfl::DelayMode::kOff;

  wfl::LockSpace<Plat> space(cfg, kThreads, kCapacity);
  wfl::LockedList<Plat> list(space, kCapacity);

  std::atomic<int> net[kKeys] = {};
  std::atomic<std::uint64_t> total_attempts{0};
  std::atomic<std::uint64_t> total_ops{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Plat::seed_rng(42 + t);
      wfl::Session<Plat> session(space);  // RAII: registered for the scope
      wfl::Xoshiro256 rng(77 + t);
      std::uint64_t attempts = 0;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint32_t key =
            static_cast<std::uint32_t>(1 + rng.next_below(kKeys));
        if (rng.next_below(2) == 0) {
          if (list.insert(session, key, &attempts)) ++net[key - 1];
        } else {
          if (list.erase(session, key, &attempts)) --net[key - 1];
        }
      }
      total_attempts.fetch_add(attempts);
      total_ops.fetch_add(kOpsPerThread);
    });
  }
  for (auto& w : workers) w.join();

  const auto keys = list.keys();
  bool ok = true;
  for (std::uint32_t k = 1; k <= kKeys; ++k) {
    const bool present = std::find(keys.begin(), keys.end(), k) != keys.end();
    const int n = net[k - 1].load();
    if (n != (present ? 1 : 0)) {
      std::printf("MISMATCH at key %u: net=%d present=%d\n", k, n, present);
      ok = false;
    }
  }
  std::printf("final set size: %zu keys (sorted & tombstone-free: checked)\n",
              keys.size());
  std::printf("ops: %llu, tryLock attempts: %llu (%.2f attempts/op)\n",
              static_cast<unsigned long long>(total_ops.load()),
              static_cast<unsigned long long>(total_attempts.load()),
              static_cast<double>(total_attempts.load()) / total_ops.load());
  const auto s = space.stats();
  std::printf("lock stats: attempts=%llu wins=%llu helps=%llu\n",
              static_cast<unsigned long long>(s.attempts),
              static_cast<unsigned long long>(s.wins),
              static_cast<unsigned long long>(s.helps));
  std::printf("%s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
