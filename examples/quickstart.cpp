// Quickstart: the one-pager for wflock.
//
//   * create a LockSpace (a family of locks with configured κ/L/T bounds),
//   * open a Session per thread — RAII: registration on construction,
//     automatic release of the process slot on destruction,
//   * build a StaticLockSet — sorted, deduplicated and budget-checked at
//     construction, not deep inside the lock path,
//   * submit(session, locks, thunk, Policy) — one entry point for
//     one-shot, capped and retry-until-success acquisition, returning the
//     unified Outcome accounting (won / attempts / own steps).
//
// The thunk is a *critical section in idempotent memory*: it reads/writes
// Cell values through the IdemCtx handle, because under the hood other
// threads may help execute it — that's what makes the locks wait-free.
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "wfl/wfl.hpp"

int main() {
  using Plat = wfl::RealPlat;
  constexpr int kThreads = 4;
  constexpr int kLocks = 8;
  constexpr std::uint32_t kOps = 10000;

  wfl::LockConfig cfg;
  cfg.kappa = kThreads;       // promise: <= 4 concurrent attempts per lock
  cfg.max_locks = 2;          // promise: <= 2 locks per attempt
  cfg.max_thunk_steps = 8;    // promise: <= 8 shared-memory ops per thunk
  cfg.delay_mode = wfl::DelayMode::kOff;  // practical mode (see README)

  wfl::LockSpace<Plat> space(cfg, kThreads, kLocks);

  // Two shared counters, each guarded by one lock id.
  wfl::Cell<Plat> even_count{0};
  wfl::Cell<Plat> odd_count{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Plat::seed_rng(1000 + t);
      wfl::Session<Plat> session(space);  // RAII: one per thread
      const wfl::StaticLockSet<2> locks({0, 1}, cfg);  // both counters
      std::uint64_t attempts = 0;
      for (std::uint32_t i = 0; i < kOps; ++i) {
        // Retry-until-success: each attempt is wait-free, and a failed
        // attempt is retried with fresh randomness (attempts win
        // independently with probability >= 1/(κL)).
        const wfl::Outcome o = wfl::submit(
            session, locks,
            [&](wfl::IdemCtx<Plat>& m) {
              // Critical section: atomic across BOTH counters.
              const auto e = m.load(even_count);
              const auto o_ = m.load(odd_count);
              m.store(even_count, e + 2);
              m.store(odd_count, o_ + 1);
            },
            wfl::Policy::retry());
        attempts += o.attempts;
      }
      std::printf("thread %d: %u wins / %llu attempts (%.1f%% win rate)\n",
                  t, kOps, static_cast<unsigned long long>(attempts),
                  100.0 * kOps / static_cast<double>(attempts));
    });
  }
  for (auto& w : workers) w.join();

  // Every increment happened exactly once, atomically across both cells.
  std::printf("even_count = %u (expected %u)\n", even_count.peek(),
              2 * kThreads * kOps);
  std::printf("odd_count  = %u (expected %u)\n", odd_count.peek(),
              kThreads * kOps);
  const bool ok = even_count.peek() == 2u * kThreads * kOps &&
                  odd_count.peek() == 1u * kThreads * kOps;
  std::printf("%s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
