// Quickstart: the one-pager for wflock.
//
//   * create a LockSpace (a family of locks with configured κ/L/T bounds),
//   * register each thread once,
//   * tryLocks(lock set, thunk): the thunk runs iff every lock was won.
//
// The thunk is a *critical section in idempotent memory*: it reads/writes
// Cell values through the IdemCtx handle, because under the hood other
// threads may help execute it — that's what makes the locks wait-free.
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "wfl/wfl.hpp"

int main() {
  using Plat = wfl::RealPlat;
  constexpr int kThreads = 4;
  constexpr int kLocks = 8;

  wfl::LockConfig cfg;
  cfg.kappa = kThreads;       // promise: <= 4 concurrent attempts per lock
  cfg.max_locks = 2;          // promise: <= 2 locks per attempt
  cfg.max_thunk_steps = 8;    // promise: <= 8 shared-memory ops per thunk
  cfg.delay_mode = wfl::DelayMode::kOff;  // practical mode (see README)

  wfl::LockSpace<Plat> space(cfg, kThreads, kLocks);

  // Two shared counters, each guarded by one lock id.
  wfl::Cell<Plat> even_count{0};
  wfl::Cell<Plat> odd_count{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Plat::seed_rng(1000 + t);
      auto proc = space.register_process();  // once per thread
      int wins = 0, attempts = 0;
      for (int i = 0; i < 10000; ++i) {
        const std::uint32_t ids[] = {0, 1};  // both counters' locks
        ++attempts;
        const bool won = space.try_locks(
            proc, ids, [&](wfl::IdemCtx<Plat>& m) {
              // Critical section: atomic across BOTH counters.
              const auto e = m.load(even_count);
              const auto o = m.load(odd_count);
              m.store(even_count, e + 2);
              m.store(odd_count, o + 1);
            });
        if (won) ++wins;
        // tryLocks may fail under contention — that's the deal that buys
        // the per-attempt step bound. Retry (attempts are independent).
        if (!won) --i;
      }
      std::printf("thread %d: %d wins / %d attempts (%.1f%% win rate)\n", t,
                  wins, attempts, 100.0 * wins / attempts);
    });
  }
  for (auto& w : workers) w.join();

  // Every increment happened exactly once, atomically across both cells.
  std::printf("even_count = %u (expected %u)\n", even_count.peek(),
              2 * kThreads * 10000);
  std::printf("odd_count  = %u (expected %u)\n", odd_count.peek(),
              kThreads * 10000);
  const bool ok = even_count.peek() == 2u * kThreads * 10000 &&
                  odd_count.peek() == 1u * kThreads * 10000;
  std::printf("%s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
