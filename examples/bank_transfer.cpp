// Multi-lock transactions: bank transfers under four locking strategies.
//
// Moves money between accounts with atomic two-lock critical sections and
// audits conservation of the total. Runs the same workload over:
//   * wflock        — this paper's wait-free locks (practical mode),
//   * wflock(fair)  — with the paper's fixed delays (theory mode),
//   * turek         — lock-free locks with recursive helping (§3 baseline),
//   * mutex2pl      — ordered two-phase locking over std::mutex.
//
// Build & run:  ./examples/bank_transfer
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

#include "wfl/wfl.hpp"

namespace {

constexpr int kThreads = 4;
constexpr int kAccounts = 16;
constexpr int kOpsPerThread = 3000;
constexpr std::uint32_t kInitial = 1000;

template <typename RunOp>
double run_workload(const char* name, RunOp&& run_op,
                    std::uint64_t expected_total,
                    const std::function<std::uint64_t()>& audit) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      wfl::RealPlat::seed_rng(500 + t);
      wfl::Xoshiro256 rng(t * 13 + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto a = static_cast<std::uint32_t>(rng.next_below(kAccounts));
        auto b = static_cast<std::uint32_t>(rng.next_below(kAccounts));
        if (b == a) b = (b + 1) % kAccounts;
        const auto amount = static_cast<std::uint32_t>(rng.next_below(10));
        run_op(t, a, b, amount);
      }
    });
  }
  for (auto& th : ts) th.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const std::uint64_t total = audit();
  std::printf("%-14s %8.0f ops/s   total=%llu %s\n", name,
              kThreads * kOpsPerThread / secs,
              static_cast<unsigned long long>(total),
              total == expected_total ? "(conserved)" : "(LOST MONEY!)");
  return secs;
}

}  // namespace

int main() {
  using Plat = wfl::RealPlat;
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kInitial) * kAccounts;

  {  // wflock, practical mode — retry failed attempts
    wfl::LockConfig cfg;
    cfg.kappa = kThreads;
    cfg.max_locks = 2;
    cfg.max_thunk_steps = 8;
    cfg.delay_mode = wfl::DelayMode::kOff;
    wfl::LockSpace<Plat> space(cfg, kThreads, kAccounts);
    wfl::Bank<Plat> bank(space, kAccounts, kInitial);
    std::vector<wfl::Session<Plat>> sessions;
    for (int t = 0; t < kThreads; ++t) sessions.emplace_back(space);
    run_workload(
        "wflock",
        [&](int t, std::uint32_t a, std::uint32_t b, std::uint32_t amt) {
          while (!bank.try_transfer(sessions[t], a, b, amt)) {
          }
        },
        expected, [&] { return bank.total_balance(); });
  }
  {  // wflock, theory mode (paper delays: fairness bounds hold; slower)
    wfl::LockConfig cfg;
    cfg.kappa = kThreads;
    cfg.max_locks = 2;
    cfg.max_thunk_steps = 8;
    cfg.delay_mode = wfl::DelayMode::kTheory;
    cfg.c0 = 4.0;
    cfg.c1 = 4.0;
    wfl::LockSpace<Plat> space(cfg, kThreads, kAccounts);
    wfl::Bank<Plat> bank(space, kAccounts, kInitial);
    std::vector<wfl::Session<Plat>> sessions;
    for (int t = 0; t < kThreads; ++t) sessions.emplace_back(space);
    run_workload(
        "wflock(fair)",
        [&](int t, std::uint32_t a, std::uint32_t b, std::uint32_t amt) {
          while (!bank.try_transfer(sessions[t], a, b, amt)) {
          }
        },
        expected, [&] { return bank.total_balance(); });
  }
  {  // Turek-style lock-free locks
    wfl::TurekLockSpace<Plat> space(kThreads, kAccounts);
    std::vector<std::unique_ptr<wfl::Cell<Plat>>> accounts;
    for (int i = 0; i < kAccounts; ++i) {
      accounts.push_back(std::make_unique<wfl::Cell<Plat>>(kInitial));
    }
    std::vector<wfl::BasicSession<wfl::TurekLockSpace<Plat>>> sessions;
    for (int t = 0; t < kThreads; ++t) sessions.emplace_back(space);
    run_workload(
        "turek",
        [&](int t, std::uint32_t a, std::uint32_t b, std::uint32_t amt) {
          wfl::Cell<Plat>& src = *accounts[a];
          wfl::Cell<Plat>& dst = *accounts[b];
          const std::uint32_t ids[] = {a, b};
          space.apply(sessions[t].process(), ids,
                      [&src, &dst, amt](wfl::IdemCtx<Plat>& m) {
                        const std::uint32_t s = m.load(src);
                        if (s >= amt) {
                          m.store(src, s - amt);
                          m.store(dst, m.load(dst) + amt);
                        }
                      });
        },
        expected, [&] {
          std::uint64_t sum = 0;
          for (const auto& a : accounts) sum += a->peek();
          return sum;
        });
  }
  {  // std::mutex ordered 2PL
    wfl::Mutex2PL locks(kAccounts);
    std::vector<std::uint32_t> balances(kAccounts, kInitial);
    run_workload(
        "mutex2pl",
        [&](int, std::uint32_t a, std::uint32_t b, std::uint32_t amt) {
          const std::uint32_t ids[] = {a, b};
          locks.locked(ids, [&] {
            if (balances[a] >= amt) {
              balances[a] -= amt;
              balances[b] += amt;
            }
          });
        },
        expected, [&] {
          std::uint64_t sum = 0;
          for (auto v : balances) sum += v;
          return sum;
        });
  }
  return 0;
}
