// Neighborhood-atomic graph updates — the paper's GraphLab motivation
// (§1): "it captures operations on ... graphs that require taking a lock
// on a node and its neighbors for the purpose of making a local update."
//
// Greedy distributed graph coloring: each step locks a vertex *and its
// whole neighborhood* (L = 1 + degree) and recolors the vertex with the
// smallest color unused by its neighbors. Because the update is atomic
// over the neighborhood, the invariant "no edge is monochrome once both
// endpoints were colored" holds at every quiescent point — validated at
// the end. tryLock failures (neighborhood contention) simply retry.
//
// Build & run:  ./examples/graph_update
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "wfl/wfl.hpp"

namespace {

constexpr int kThreads = 4;
constexpr std::uint32_t kVertices = 48;
constexpr std::uint32_t kMaxDegree = 5;  // L = 1 + degree <= 6 <= 8

// A random graph with bounded degree (ring + chords).
std::vector<std::vector<std::uint32_t>> make_graph(std::uint64_t seed) {
  std::vector<std::vector<std::uint32_t>> adj(kVertices);
  auto connect = [&](std::uint32_t a, std::uint32_t b) {
    if (a == b) return;
    if (adj[a].size() >= kMaxDegree - 1 || adj[b].size() >= kMaxDegree - 1) {
      return;
    }
    for (auto x : adj[a]) {
      if (x == b) return;
    }
    adj[a].push_back(b);
    adj[b].push_back(a);
  };
  for (std::uint32_t v = 0; v < kVertices; ++v) connect(v, (v + 1) % kVertices);
  wfl::Xoshiro256 rng(seed);
  for (int i = 0; i < 60; ++i) {
    connect(static_cast<std::uint32_t>(rng.next_below(kVertices)),
            static_cast<std::uint32_t>(rng.next_below(kVertices)));
  }
  return adj;
}

}  // namespace

int main() {
  using Plat = wfl::RealPlat;
  const auto adj = make_graph(4242);

  wfl::LockConfig cfg;
  cfg.kappa = kThreads + 2;
  cfg.max_locks = 1 + kMaxDegree;
  cfg.max_thunk_steps = 2 * (1 + kMaxDegree) + 4;
  cfg.delay_mode = wfl::DelayMode::kOff;
  // +1 process slot: the main thread registers for the final stabilization
  // sweeps after the workers join.
  wfl::LockSpace<Plat> space(cfg, kThreads + 1, kVertices);

  // color[v] == 0 means uncolored; colors are 1..kMaxDegree+1.
  std::vector<std::unique_ptr<wfl::Cell<Plat>>> color;
  for (std::uint32_t v = 0; v < kVertices; ++v) {
    color.push_back(std::make_unique<wfl::Cell<Plat>>(0u));
  }

  std::atomic<std::uint64_t> recolors{0}, attempts{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Plat::seed_rng(100 + t);
      wfl::Session<Plat> session(space);
      wfl::Xoshiro256 rng(7 + t);
      // Each thread sweeps vertices until every vertex it sees is properly
      // colored (greedy coloring converges: each atomic step fixes one
      // vertex with respect to its neighborhood).
      for (int round = 0; round < 6; ++round) {
        for (std::uint32_t v0 = 0; v0 < kVertices; ++v0) {
          const std::uint32_t v =
              (v0 + static_cast<std::uint32_t>(rng.next_below(kVertices))) %
              kVertices;
          wfl::StaticLockSet<1 + kMaxDegree> locks{v};
          for (auto u : adj[v]) locks.insert(u);
          // Captured BY VALUE: helpers may replay the thunk after this
          // iteration's locals are gone, so the capture must be
          // self-contained (see README thunk rule #2).
          struct Hood {
            wfl::Cell<Plat>* self;
            wfl::Cell<Plat>* nbr[kMaxDegree];
            std::uint32_t n;
          } hood{};
          hood.self = color[v].get();
          hood.n = static_cast<std::uint32_t>(adj[v].size());
          for (std::uint32_t i = 0; i < hood.n; ++i) {
            hood.nbr[i] = color[adj[v][i]].get();
          }
          // One submission, retry policy: the executor owns the loop and
          // reports the attempts it spent.
          const wfl::Outcome o = wfl::submit(
              session, locks,
              [hood](wfl::IdemCtx<Plat>& m) {
                // Smallest color not used in the neighborhood.
                std::uint32_t used = 0;  // bitmask of colors 1..31
                for (std::uint32_t i = 0; i < hood.n; ++i) {
                  const std::uint32_t c = m.load(*hood.nbr[i]);
                  if (c > 0 && c < 32) used |= 1u << c;
                }
                std::uint32_t pick = 1;
                while (used & (1u << pick)) ++pick;
                if (m.load(*hood.self) != pick) m.store(*hood.self, pick);
              },
              wfl::Policy::retry());
          attempts.fetch_add(o.attempts, std::memory_order_relaxed);
          recolors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  // Concurrent greedy recoloring may leave a few vertices stale (a
  // neighbor changed after they were fixed). Stabilize with sequential
  // sweeps through the same locked path until a full sweep changes
  // nothing, then audit.
  {
    wfl::Session<Plat> session(space);
    wfl::Cell<Plat> changed_cell{0};
    for (int sweep = 0; sweep < 20; ++sweep) {
      bool changed = false;
      for (std::uint32_t v = 0; v < kVertices; ++v) {
        wfl::StaticLockSet<1 + kMaxDegree> locks{v};
        for (auto u : adj[v]) locks.insert(u);
        struct Hood {
          wfl::Cell<Plat>* self;
          wfl::Cell<Plat>* nbr[kMaxDegree];
          wfl::Cell<Plat>* changed;
          std::uint32_t n;
        } hood{};
        hood.self = color[v].get();
        hood.changed = &changed_cell;
        hood.n = static_cast<std::uint32_t>(adj[v].size());
        for (std::uint32_t i = 0; i < hood.n; ++i) {
          hood.nbr[i] = color[adj[v][i]].get();
        }
        wfl::submit(
            session, locks,
            [hood](wfl::IdemCtx<Plat>& m) {
              std::uint32_t used = 0;
              for (std::uint32_t i = 0; i < hood.n; ++i) {
                const std::uint32_t c = m.load(*hood.nbr[i]);
                if (c > 0 && c < 32) used |= 1u << c;
              }
              std::uint32_t pick = 1;
              while (used & (1u << pick)) ++pick;
              if (m.load(*hood.self) != pick) {
                m.store(*hood.self, pick);
                m.store(*hood.changed, 1);
              }
            },
            wfl::Policy::retry());
        if (changed_cell.peek() == 1) {
          changed = true;
          changed_cell.init(0);
        }
      }
      if (!changed) break;
    }
  }

  // Audit: proper coloring, bounded palette.
  bool proper = true;
  std::uint32_t max_color = 0;
  for (std::uint32_t v = 0; v < kVertices; ++v) {
    const std::uint32_t cv = color[v]->peek();
    max_color = std::max(max_color, cv);
    if (cv == 0) proper = false;
    for (auto u : adj[v]) {
      if (color[u]->peek() == cv) proper = false;
    }
  }
  std::printf("vertices=%u maxdeg=%u  colors used: %u (bound: maxdeg+1=%u)\n",
              kVertices, kMaxDegree, max_color, kMaxDegree + 1);
  std::printf("recolor wins: %llu, tryLock attempts: %llu\n",
              static_cast<unsigned long long>(recolors.load()),
              static_cast<unsigned long long>(attempts.load()));
  std::printf("%s\n", proper && max_color <= kMaxDegree + 1
                          ? "OK: proper coloring via neighborhood-atomic "
                            "updates"
                          : "MISMATCH: improper coloring");
  return proper ? 0 : 1;
}
