// The paper's running example: dining philosophers with wait-free locks.
//
// Each philosopher needs both adjacent forks (κ = L = 2), so the paper
// guarantees every *attempt* to eat succeeds with probability >= 1/4 and
// takes O(1) steps — independent of the table size. This example runs the
// table under the deterministic simulator with an adversarial (weighted)
// schedule: philosopher 0 is scheduled 100x less often than everyone else
// and still gets fed, because attempts are bounded in its own steps and
// neighbors help it finish.
//
// Build & run:  ./examples/dining_philosophers [n]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "wfl/wfl.hpp"

int main(int argc, char** argv) {
  using Plat = wfl::SimPlat;
  const int n = argc > 1 ? std::atoi(argv[1]) : 8;
  const int meals = 20;

  wfl::LockConfig cfg;
  cfg.kappa = 2;  // at most two philosophers per fork — by topology
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 4;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;

  auto space = std::make_unique<wfl::LockSpace<Plat>>(cfg, n, n);
  std::vector<std::unique_ptr<wfl::Cell<Plat>>> meals_eaten;
  for (int i = 0; i < n; ++i) {
    meals_eaten.push_back(std::make_unique<wfl::Cell<Plat>>(0u));
  }

  std::vector<wfl::PhilosopherReport> reports(n);
  wfl::Simulator sim(2024);
  for (int p = 0; p < n; ++p) {
    sim.add_process([&, p] {
      wfl::Session<Plat> session(*space);  // RAII: one per fiber
      const auto [left, right] = wfl::forks_of(p, n);
      wfl::Cell<Plat>& my_meals = *meals_eaten[p];
      const wfl::StaticLockSet<2> forks{left, right};
      wfl::run_philosopher_episodes<Plat>(
          p, meals, /*think_max=*/64, /*rng_seed=*/7000 + p,
          [&](int) {
            return wfl::submit(session, forks,
                               [&my_meals](wfl::IdemCtx<Plat>& m) {
                                 m.store(my_meals, m.load(my_meals) + 1);
                               })
                .won;
          },
          reports[p]);
    });
  }

  // Adversarial-but-oblivious schedule: starve philosopher 0.
  std::vector<double> weights(n, 1.0);
  weights[0] = 0.01;
  wfl::WeightedSchedule sched(weights, 99);
  const bool done = sim.run(sched, 4'000'000'000ull);
  std::printf("table of %d, %d meals each, philosopher 0 starved 100x%s\n\n",
              n, meals, done ? "" : " (slot budget hit!)");

  std::printf("%-6s %-8s %-10s %-12s %-14s\n", "phil", "meals", "attempts",
              "success", "steps/meal");
  for (int p = 0; p < n; ++p) {
    const auto& r = reports[p];
    std::printf("%-6d %-8llu %-10llu %-12.3f %-14.1f\n", p,
                static_cast<unsigned long long>(r.meals),
                static_cast<unsigned long long>(r.attempts),
                static_cast<double>(r.meals) / r.attempts,
                r.steps_per_meal.mean());
  }
  const auto s = space->stats();
  std::printf("\nhelps=%llu eliminations=%llu thunk_runs=%llu overruns=%llu\n",
              static_cast<unsigned long long>(s.helps),
              static_cast<unsigned long long>(s.eliminations),
              static_cast<unsigned long long>(s.thunk_runs),
              static_cast<unsigned long long>(s.t0_overruns + s.t1_overruns));
  bool ok = done;
  for (int p = 0; p < n; ++p) {
    ok = ok && meals_eaten[p]->peek() == static_cast<std::uint32_t>(meals);
  }
  std::printf("%s\n", ok ? "OK: everyone ate exactly their meals"
                         : "MISMATCH");
  return ok ? 0 : 1;
}
