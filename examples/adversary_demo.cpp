// Example: playing the adversary — the simulator as a public API.
//
// The theorems in the paper quantify over *schedules*, so checking them
// needs control over scheduling that OS threads cannot give. This example
// shows the deterministic-simulator side of the library on the classic
// dining-philosophers workload (κ = L = 2 ⇒ per-attempt success ≥ 1/4):
//
//   1. a fair round-robin schedule — everyone eats at the same rate;
//   2. a weighted schedule that slows one philosopher 100x — the paper's
//      "arbitrarily delayed" process: it still finishes (wait-freedom),
//      and the *others* are not dragged down while it starves;
//   3. a CrashSchedule that kills one philosopher outright mid-run — its
//      neighbors keep eating, which no blocking protocol can promise.
//
// Build & run:  ./examples/adversary_demo
#include <cstdio>
#include <memory>
#include <vector>

#include "wfl/wfl.hpp"

namespace {

using Plat = wfl::SimPlat;
using Space = wfl::LockSpace<Plat>;

constexpr int kPhilosophers = 5;
constexpr int kAttemptsEach = 40;

struct RunResult {
  std::vector<std::uint64_t> meals;     // successful attempts ("ate")
  std::vector<std::uint64_t> attempts;  // attempts completed
  std::vector<bool> finished;
};

// One dinner party: philosopher i tryLocks chopsticks {i, (i+1)%n}.
// Sessions are owned by this frame (registration happens off the fibers —
// it is not on the attempt path), so a philosopher crash-parked mid-run
// needs no manual cleanup: the Session destructor drops the victim's EBR
// guards on its behalf when the party ends, exactly the abandon semantics
// the crash model requires.
RunResult dine(wfl::Simulator& sim, wfl::Schedule& sched, Space& space,
               int crash_victim = -1) {
  const int n = kPhilosophers;
  RunResult res;
  res.meals.assign(n, 0);
  res.attempts.assign(n, 0);
  res.finished.assign(n, false);
  std::vector<wfl::Session<Plat>> sessions;
  for (int p = 0; p < n; ++p) sessions.emplace_back(space);

  for (int p = 0; p < n; ++p) {
    sim.add_process([&, p] {
      wfl::Session<Plat>& session = sessions[static_cast<std::size_t>(p)];
      const auto left = static_cast<std::uint32_t>(p);
      const auto right = static_cast<std::uint32_t>((p + 1) % n);
      const wfl::StaticLockSet<2> chopsticks{left, right};
      for (int a = 0; a < kAttemptsEach; ++a) {
        // "Eating" is the critical section; a no-op thunk keeps the demo
        // focused on the lock dynamics.
        const wfl::Outcome o =
            wfl::submit(session, chopsticks, [](wfl::IdemCtx<Plat>&) {});
        ++res.attempts[static_cast<std::size_t>(p)];
        if (o.won) ++res.meals[static_cast<std::size_t>(p)];
      }
    });
  }

  // Run until everyone who can finish has finished.
  for (;;) {
    bool done = true;
    for (int p = 0; p < n; ++p) {
      if (p != crash_victim && !sim.is_finished(p)) done = false;
    }
    if (done) break;
    if (!sim.run(sched, 8'000'000'000ull, sim.finished_count() + 1)) break;
  }
  for (int p = 0; p < n; ++p) {
    res.finished[static_cast<std::size_t>(p)] = sim.is_finished(p);
  }
  return res;
}

Space make_space() {
  wfl::LockConfig cfg;
  cfg.kappa = 2;      // each chopstick is wanted by exactly two neighbors
  cfg.max_locks = 2;  // two chopsticks per meal
  cfg.max_thunk_steps = 1;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  return Space(cfg, kPhilosophers, kPhilosophers);
}

void print_table(const char* title, const RunResult& r, int victim = -1) {
  std::printf("%s\n", title);
  std::printf("  philosopher |");
  for (int p = 0; p < kPhilosophers; ++p) std::printf(" %5d", p);
  std::printf("\n  meals       |");
  for (int p = 0; p < kPhilosophers; ++p) {
    std::printf(" %5llu",
                static_cast<unsigned long long>(
                    r.meals[static_cast<std::size_t>(p)]));
  }
  std::printf("\n  success %%   |");
  for (int p = 0; p < kPhilosophers; ++p) {
    const auto at = r.attempts[static_cast<std::size_t>(p)];
    if (at == 0) {
      std::printf("     -");
    } else {
      std::printf(" %4.0f%%", 100.0 *
                                  static_cast<double>(
                                      r.meals[static_cast<std::size_t>(p)]) /
                                  static_cast<double>(at));
    }
  }
  std::printf("\n  status      |");
  for (int p = 0; p < kPhilosophers; ++p) {
    std::printf(" %5s", p == victim               ? "dead"
                        : r.finished[static_cast<std::size_t>(p)] ? "done"
                                                                  : "live");
  }
  std::printf("\n\n");
}

}  // namespace

int main() {
  std::printf(
      "adversary_demo: %d dining philosophers, %d attempts each "
      "(kappa = L = 2 => per-attempt success floor 1/4)\n\n",
      kPhilosophers, kAttemptsEach);

  {  // 1. Fair schedule.
    Space space = make_space();
    wfl::Simulator sim(101);
    wfl::RoundRobinSchedule sched(kPhilosophers);
    const RunResult r = dine(sim, sched, space);
    print_table("1) round-robin schedule (fair)", r);
  }

  {  // 2. One philosopher delayed 100x.
    Space space = make_space();
    wfl::Simulator sim(202);
    std::vector<double> w(kPhilosophers, 1.0);
    w[2] = 0.01;
    wfl::WeightedSchedule sched(std::move(w), 202);
    const RunResult r = dine(sim, sched, space);
    print_table(
        "2) philosopher 2 scheduled 100x more rarely (still finishes — "
        "wait-freedom; neighbors unharmed)",
        r);
  }

  {  // 3. One philosopher crashed outright.
    Space space = make_space();
    wfl::Simulator sim(303);
    wfl::UniformSchedule inner(kPhilosophers, 303);
    wfl::CrashSchedule sched(inner, kPhilosophers, {{2, 20'000}}, 307);
    const RunResult r = dine(sim, sched, space, /*crash_victim=*/2);
    print_table(
        "3) philosopher 2 crash-failed mid-run (neighbors keep eating — "
        "no blocking protocol can promise this)",
        r, /*victim=*/2);
    for (int p = 0; p < kPhilosophers; ++p) {
      if (p != 2 && r.meals[static_cast<std::size_t>(p)] == 0) {
        std::printf("adversary_demo: FAILED (philosopher %d starved)\n", p);
        return 1;
      }
    }
  }

  std::printf("adversary_demo: OK\n");
  return 0;
}
