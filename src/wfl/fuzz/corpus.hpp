// Corpus: the retained set of interesting traces.
//
// Retention policy lives in the campaign (a trace is added when its run
// set a fresh feature-map bit or failed an oracle); the corpus itself is
// storage + selection. Selection is mildly recency-biased — newer
// entries opened new coverage, so their neighborhoods are where the
// frontier is — but never starves the old tail (plain uniform with
// probability 1/2), which keeps the sampler ergodic over everything
// retained. Deduplication hashes the canonical serialized form.
//
// On-disk layout: one `<stem>.trace` text file (Trace::save) per entry in
// a flat directory. That same format is what tests/fuzz_corpus/ checks
// in: a minimized reproducer IS a corpus file, and load_dir() is the
// regression tests' ingestion path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "wfl/fuzz/trace.hpp"
#include "wfl/util/rng.hpp"

namespace wfl::fuzz {

class Corpus {
 public:
  // Returns false on duplicates (already-known serialized form).
  bool add(const Trace& t) {
    if (!seen_.insert(t.save_string()).second) return false;
    entries_.push_back(t);
    return true;
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const Trace& at(std::size_t i) const { return entries_[i]; }

  const Trace& pick(Xoshiro256& rng) const {
    const std::size_t n = entries_.size();
    if (n == 1 || rng.next_below(2) == 0) {
      return entries_[rng.next_below(n)];
    }
    // Recency bias: uniform over the newest quarter (rounded up).
    const std::size_t recent = (n + 3) / 4;
    return entries_[n - recent + rng.next_below(recent)];
  }

  // Writes every entry as <dir>/<prefix><index>.trace. Returns the number
  // written (0 on directory-creation failure).
  std::size_t save_dir(const std::filesystem::path& dir,
                       const std::string& prefix = "t") const {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) return 0;
    std::size_t written = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::ofstream os(dir / (prefix + std::to_string(i) + ".trace"));
      if (!os) continue;
      entries_[i].save(os);
      if (os.good()) ++written;
    }
    return written;
  }

  // Loads every *.trace under dir (sorted by filename for determinism);
  // malformed files are skipped. Returns the number ingested.
  std::size_t load_dir(const std::filesystem::path& dir) {
    std::error_code ec;
    std::vector<std::filesystem::path> files;
    for (std::filesystem::directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (it->path().extension() == ".trace") files.push_back(it->path());
    }
    std::sort(files.begin(), files.end());
    std::size_t n = 0;
    for (const auto& f : files) {
      std::ifstream is(f);
      Trace t;
      if (is && t.load(is) && add(t)) ++n;
    }
    return n;
  }

 private:
  std::vector<Trace> entries_;
  std::unordered_set<std::string> seen_;
};

}  // namespace wfl::fuzz
