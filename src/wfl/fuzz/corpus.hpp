// Corpus: the retained set of interesting traces.
//
// Retention policy lives in the campaign (a trace is added when its run
// set a fresh feature-map bit or failed an oracle); the corpus itself is
// storage + selection. Selection is mildly recency-biased — newer
// entries opened new coverage, so their neighborhoods are where the
// frontier is — but never starves the old tail (plain uniform with
// probability 1/2), which keeps the sampler ergodic over everything
// retained. Deduplication hashes the canonical serialized form.
//
// On-disk layout: one `<stem>.trace` text file (Trace::save) per entry in
// a flat directory. That same format is what tests/fuzz_corpus/ checks
// in: a minimized reproducer IS a corpus file, and load_dir() is the
// regression tests' ingestion path.
//
// Durability: a campaign is exactly the kind of process that dies mid-write
// (crash oracles abort, CI walls kill), and a half-written .trace poisons
// every later ingestion of the directory. Writes therefore go through a
// same-directory temp file and a rename — readers only ever see absent or
// complete — and the raw-fd I/O loops handle EINTR and short transfers,
// which buffered iostreams silently mishandle on signal-heavy hosts.
#pragma once

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "wfl/fuzz/trace.hpp"
#include "wfl/util/rng.hpp"

namespace wfl::fuzz {

// Writes `data` to `path` atomically: temp file in the same directory (so
// the rename cannot cross filesystems), short-write/EINTR loop, fsync,
// rename over the target. Returns false (target untouched) on any error.
inline bool write_file_atomic(const std::filesystem::path& path,
                              const std::string& data) {
  const std::filesystem::path tmp =
      path.string() + ".tmp." + std::to_string(::getpid());
  int fd;
  do {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < data.size()) {
    const ::ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  // fsync before rename: the rename must not become durable ahead of the
  // bytes it publishes.
  if (::fsync(fd) != 0 || ::close(fd) != 0 ||
      ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

// Reads all of `path` into `out` with an EINTR/short-read loop. Returns
// false on open or read failure (out is then unspecified).
inline bool read_file_all(const std::filesystem::path& path,
                          std::string& out) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return false;
  out.clear();
  char buf[1 << 16];
  for (;;) {
    const ::ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}

class Corpus {
 public:
  // Returns false on duplicates (already-known serialized form).
  bool add(const Trace& t) {
    if (!seen_.insert(t.save_string()).second) return false;
    entries_.push_back(t);
    return true;
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const Trace& at(std::size_t i) const { return entries_[i]; }

  const Trace& pick(Xoshiro256& rng) const {
    const std::size_t n = entries_.size();
    if (n == 1 || rng.next_below(2) == 0) {
      return entries_[rng.next_below(n)];
    }
    // Recency bias: uniform over the newest quarter (rounded up).
    const std::size_t recent = (n + 3) / 4;
    return entries_[n - recent + rng.next_below(recent)];
  }

  // Writes every entry as <dir>/<prefix><index>.trace. Returns the number
  // written (0 on directory-creation failure).
  std::size_t save_dir(const std::filesystem::path& dir,
                       const std::string& prefix = "t") const {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) return 0;
    std::size_t written = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const std::filesystem::path target =
          dir / (prefix + std::to_string(i) + ".trace");
      if (write_file_atomic(target, entries_[i].save_string())) ++written;
    }
    return written;
  }

  // Loads every *.trace under dir (sorted by filename for determinism);
  // malformed files are skipped. Returns the number ingested.
  std::size_t load_dir(const std::filesystem::path& dir) {
    std::error_code ec;
    std::vector<std::filesystem::path> files;
    for (std::filesystem::directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (it->path().extension() == ".trace") files.push_back(it->path());
    }
    std::sort(files.begin(), files.end());
    std::size_t n = 0;
    std::string raw;
    for (const auto& f : files) {
      if (!read_file_all(f, raw)) continue;
      std::istringstream is(raw);
      Trace t;
      if (t.load(is) && add(t)) ++n;
    }
    return n;
  }

 private:
  std::vector<Trace> entries_;
  std::unordered_set<std::string> seen_;
};

}  // namespace wfl::fuzz
