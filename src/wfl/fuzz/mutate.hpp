// NodeFz-style trace mutation (SNIPPETS.md Snippet 3: fuzz the scheduler's
// freedom, not the program's inputs).
//
// Every operator edits the Trace genome only — grants, crashes, tail
// stream — never execution state, so a mutant is exactly as oblivious as
// its parent: the full schedule is fixed before the replay observes
// anything. Crash edits are first-class operators (inject/move/remove)
// because the campaign's highest-value targets are crashes landing inside
// narrow windows — mid-attempt, mid-fast-path-publish, mid-help-claim,
// mid-async-cancel — and moving an existing crash slot by small deltas is
// how a mutant walks the crash point through such a window one slot at a
// time.
//
// mutate() is a pure function of (parent, mutation_seed): the campaign
// logs only seeds, yet any mutant can be re-derived; test_fuzz pins this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "wfl/fuzz/trace.hpp"
#include "wfl/util/rng.hpp"

namespace wfl::fuzz {

inline Trace mutate(const Trace& parent, std::uint64_t mutation_seed) {
  Trace t = parent;
  Xoshiro256 rng(mutation_seed);
  const auto procs = static_cast<std::uint64_t>(t.procs);
  auto rand_pid = [&] {
    return static_cast<std::uint16_t>(rng.next_below(procs));
  };
  // A slot index near the action: inside the prefix, or just past it.
  auto rand_slot = [&]() -> std::uint64_t {
    return rng.next_below(t.grants.size() + 64);
  };

  // Stack 1-4 operators; small stacks keep the parent's coverage
  // neighborhood reachable, occasional larger ones jump basins.
  const int ops = 1 + static_cast<int>(rng.next_below(4));
  for (int k = 0; k < ops; ++k) {
    switch (rng.next_below(11)) {
      case 0: {  // swap two prefix grants
        if (t.grants.size() < 2) break;
        const std::size_t a = rng.next_below(t.grants.size());
        const std::size_t b = rng.next_below(t.grants.size());
        std::swap(t.grants[a], t.grants[b]);
        break;
      }
      case 1: {  // point mutation: re-aim one grant
        if (t.grants.empty()) break;
        t.grants[rng.next_below(t.grants.size())] = rand_pid();
        break;
      }
      case 2: {  // stall-burst insertion: one pid monopolizes 4-64 slots
                 // (equivalently: everyone else stalls)
        const std::uint16_t pid = rand_pid();
        const std::size_t at =
            t.grants.empty() ? 0 : rng.next_below(t.grants.size() + 1);
        const std::size_t len = 4 + rng.next_below(61);
        t.grants.insert(t.grants.begin() + static_cast<std::ptrdiff_t>(at),
                        len, pid);
        break;
      }
      case 3: {  // extend the explicit prefix with random grants
        const std::size_t len = 8 + rng.next_below(121);
        for (std::size_t i = 0; i < len; ++i) t.grants.push_back(rand_pid());
        break;
      }
      case 4: {  // truncate the prefix tail (earlier divergence into the
                 // uniform tail stream)
        if (t.grants.empty()) break;
        t.grants.resize(rng.next_below(t.grants.size()));
        break;
      }
      case 5: {  // crash injection (keep >= 1 survivor)
        if (t.crashes.size() + 1 >= static_cast<std::size_t>(t.procs)) break;
        CrashSchedule::Crash c{};
        c.pid = static_cast<int>(rng.next_below(procs));
        bool dup = false;
        for (const auto& e : t.crashes) dup = dup || e.pid == c.pid;
        if (dup) break;
        // Half the injections land near the prefix, half anywhere in a
        // full run's slot range — late phases (the async quiet tail) sit
        // thousands of slots past any realistic prefix.
        c.slot = rng.next_below(2) == 0 ? rand_slot()
                                        : rng.next_below(10000);
        t.crashes.push_back(c);
        break;
      }
      case 6: {  // crash move: walk a crash slot by a small signed delta
        if (t.crashes.empty()) break;
        auto& c = t.crashes[rng.next_below(t.crashes.size())];
        const std::uint64_t delta = 1 + rng.next_below(32);
        if (rng.next_below(2) == 0) {
          c.slot += delta;
        } else {
          c.slot = c.slot > delta ? c.slot - delta : 0;
        }
        break;
      }
      case 7: {  // crash removal
        if (t.crashes.empty()) break;
        const std::size_t at = rng.next_below(t.crashes.size());
        t.crashes.erase(t.crashes.begin() +
                        static_cast<std::ptrdiff_t>(at));
        break;
      }
      case 8: {  // reroll the uniform tail stream
        t.tail_seed = rng.next();
        break;
      }
      case 9: {  // reroll the sim seed (new per-process RNG streams): a
                 // big jump, but the campaign's only source of sim-seed
                 // diversity — faults whose trigger needs a rare
                 // conjunction (a park coinciding with a dropped baton)
                 // are found by sampling seeds, not by perturbing grants
                 // around one
        t.seed = rng.next();
        break;
      }
      case 10: {  // deep divergence: materialize the parent's own uniform
                  // tail draws into the explicit prefix up to a random
                  // depth, then reroll the tail stream. Replay is
                  // bit-identical to the parent UP TO the new prefix end
                  // and diverges exactly there — the only way a single
                  // mutation can re-steer the schedule thousands of slots
                  // in (late-phase windows like the async workload's quiet
                  // tail are unreachable by prefix edits alone). Stacked
                  // burst/point operators then edit near the splice.
        if (t.grants.size() >= 12000) break;  // bound generational growth
        const std::size_t depth = 64 + rng.next_below(9000);
        Xoshiro256 tail(t.tail_seed);
        for (std::size_t i = 0; i < depth; ++i) {
          t.grants.push_back(static_cast<std::uint16_t>(
              tail.next_below(procs)));
        }
        t.tail_seed = rng.next();
        break;
      }
      default:
        break;
    }
  }
  return t;
}

// A mutated trace, directly usable as a Schedule: derives the mutant at
// construction and replays it. Non-copyable (the replay engine points at
// the owned mutant).
class FuzzSchedule final : public Schedule {
 public:
  FuzzSchedule(const Trace& parent, std::uint64_t mutation_seed)
      : mutant_(mutate(parent, mutation_seed)), replay_(mutant_) {}
  FuzzSchedule(const FuzzSchedule&) = delete;
  FuzzSchedule& operator=(const FuzzSchedule&) = delete;

  int next() override { return replay_.next(); }
  const Trace& trace() const { return mutant_; }

 private:
  Trace mutant_;
  TraceSchedule replay_;
};

}  // namespace wfl::fuzz
