// Coverage signal for the schedule fuzzer.
//
// No compiler instrumentation: the repo already meters itself. A run's
// "behavior" is summarized by a fixed-layout feature vector assembled
// from (a) LockStats deltas — the striped StatsSlab counters are exact at
// quiescence and each one names a protocol path (fast-path hit vs.
// revocation, helping vs. claim-ceding, lazy log resets), (b) the
// WFL_FUZZ_SITE rare-branch taps (fuzz/sites.hpp), and (c) executor
// gauges for the async workload (parks/wakes/signals). Each (feature
// index, AFL-style log2 bucket of its value) pair hashes to a bit in a
// 64 Kbit map; a run that sets any never-seen bit is "interesting" and
// its trace enters the corpus. Bucketing by magnitude rather than exact
// value is what makes the signal a gradient: 0 -> 1 -> "a few" -> "many"
// hits of a rare branch are distinct features, but 37 vs. 38 are not.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "wfl/core/config.hpp"
#include "wfl/fuzz/sites.hpp"

namespace wfl::fuzz {

// One run's outcome: the oracle verdict and the feature counters.
struct RunResult {
  bool ok = true;
  std::string failure;        // first oracle violation, empty if ok
  std::uint64_t slots = 0;    // slots consumed (wedge signal)
  bool wedged = false;        // watchdog fired (report mode)
  std::vector<std::uint64_t> features;  // fixed layout, see below

  // Layout: [LockStats fields..., site hits..., workload extras...].
  static void append_stats(std::vector<std::uint64_t>& v,
                           const LockStats& s) {
    v.push_back(s.attempts);
    v.push_back(s.wins);
    v.push_back(s.helps);
    v.push_back(s.eliminations);
    v.push_back(s.thunk_runs);
    v.push_back(s.log_slot_resets);
    v.push_back(s.fastpath_hits);
    v.push_back(s.fastpath_revocations);
    v.push_back(s.help_claim_skips);
  }
  static void append_sites(std::vector<std::uint64_t>& v,
                           const SiteTable& t) {
    for (int s = 0; s < kSiteCount; ++s) v.push_back(t.hit_count(s));
  }
};

// AFL-style magnitude bucket: 0,1,2,3,4-7,8-15,... -> small dense codes.
inline std::uint32_t bucket(std::uint64_t v) {
  if (v <= 3) return static_cast<std::uint32_t>(v);
  std::uint32_t b = 4;
  for (v >>= 3; v != 0; v >>= 1) ++b;
  return b;
}

class FeatureMap {
 public:
  static constexpr std::size_t kBits = 1u << 16;

  // Folds a run's features in; returns how many NEW bits were set.
  int add(const RunResult& r) {
    int fresh = 0;
    for (std::size_t i = 0; i < r.features.size(); ++i) {
      const std::uint32_t h = mix(static_cast<std::uint32_t>(i),
                                  bucket(r.features[i]));
      const std::size_t bit = h % kBits;
      const std::uint64_t mask = 1ULL << (bit & 63);
      std::uint64_t& word = words_[bit >> 6];
      if ((word & mask) == 0) {
        word |= mask;
        ++fresh;
      }
    }
    return fresh;
  }

  std::size_t bits_set() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) {
      n += static_cast<std::size_t>(__builtin_popcountll(w));
    }
    return n;
  }

 private:
  static std::uint32_t mix(std::uint32_t idx, std::uint32_t b) {
    std::uint64_t x = (static_cast<std::uint64_t>(idx) << 32) | b;
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    return static_cast<std::uint32_t>(x);
  }

  std::array<std::uint64_t, kBits / 64> words_{};
};

}  // namespace wfl::fuzz
