// Serializable schedule traces: the fuzzer's genome.
//
// A simulated execution is a pure function of (seed, grant sequence): the
// Simulator consults its Schedule once per slot and everything else —
// per-process RNG streams, step counts, memory effects — follows
// deterministically. A Trace captures exactly that pair plus the workload
// shape, so any execution the campaign ever saw (random exploration,
// mutant, shrunk reproducer) is a small text artifact that replays
// bit-identically on any machine, under SimPlat or CheckedPlat alike.
//
// Replay semantics (TraceSchedule): slot i takes grants[i] while the
// explicit prefix lasts, then falls back to uniform draws from a
// dedicated Xoshiro(tail_seed) stream. The fallback matters for two
// reasons: mutants may truncate or extend the prefix freely without the
// schedule running dry mid-run, and the shrinker exploits it — deleting
// grants from the tail is always legal. Crash entries are applied the
// same way CrashSchedule applies them (bounded redraw, then a
// deterministic scan), so a trace subsumes the crash-injection model and
// stays a pure function of construction data + slot index: the replayed
// adversary is still oblivious.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "wfl/sim/sim.hpp"
#include "wfl/util/rng.hpp"

namespace wfl::fuzz {

// Which harness replays the trace (fuzz/workload.hpp).
enum class WorkloadKind : std::uint8_t {
  kEngine = 0,     // direct submit() rounds: fast path, helping, crashes
  kAsync,          // AsyncExecutor inline mode: park/wake, cancellation
  kEngineSharded,  // sharded-table engine rounds: shard-straddling lock
                   // sets (refcounted multi-shard retire), own-lane
                   // fast-path reuse (cooldown expiry), hot-lock helping
                   // bursts (stale-claim revocation)
};

inline const char* workload_name(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kAsync: return "async";
    case WorkloadKind::kEngineSharded: return "engine_sharded";
    default: return "engine";
  }
}

struct Trace {
  static constexpr const char* kMagic = "wfl-fuzz-trace-v1";

  WorkloadKind workload = WorkloadKind::kEngine;
  int procs = 4;
  int locks = 2;
  std::uint64_t seed = 1;       // Simulator seed (per-process RNG streams)
  std::uint64_t tail_seed = 1;  // uniform fallback beyond the grant prefix
  std::uint64_t slot_cap = 200000;  // replay budget; overrun = wedge finding
  std::string fault;                // seeded-fault name, "" = clean tree
  std::vector<CrashSchedule::Crash> crashes;
  std::vector<std::uint16_t> grants;  // explicit slot->pid prefix

  bool operator==(const Trace& o) const {
    if (workload != o.workload || procs != o.procs || locks != o.locks ||
        seed != o.seed || tail_seed != o.tail_seed ||
        slot_cap != o.slot_cap || fault != o.fault ||
        grants != o.grants || crashes.size() != o.crashes.size()) {
      return false;
    }
    for (std::size_t i = 0; i < crashes.size(); ++i) {
      if (crashes[i].pid != o.crashes[i].pid ||
          crashes[i].slot != o.crashes[i].slot) {
        return false;
      }
    }
    return true;
  }

  // Line-oriented text; field order fixed so serialization is canonical
  // (corpus dedup hashes the serialized form).
  void save(std::ostream& os) const {
    os << kMagic << "\n"
       << "workload " << workload_name(workload) << "\n"
       << "procs " << procs << "\n"
       << "locks " << locks << "\n"
       << "seed " << seed << "\n"
       << "tail_seed " << tail_seed << "\n"
       << "slot_cap " << slot_cap << "\n";
    if (!fault.empty()) os << "fault " << fault << "\n";
    for (const auto& c : crashes) {
      os << "crash " << c.pid << " " << c.slot << "\n";
    }
    os << "grants";
    for (std::uint16_t g : grants) os << " " << g;
    os << "\n";
  }

  std::string save_string() const {
    std::ostringstream os;
    save(os);
    return os.str();
  }

  // Returns false (leaving *this unspecified) on malformed input.
  bool load(std::istream& is) {
    *this = Trace{};
    grants.clear();
    crashes.clear();
    fault.clear();
    std::string line;
    if (!std::getline(is, line) || line != kMagic) return false;
    bool saw_grants = false;
    while (std::getline(is, line)) {
      if (line.empty()) continue;
      std::istringstream ls(line);
      std::string key;
      ls >> key;
      if (key == "workload") {
        std::string v;
        ls >> v;
        if (v == "engine") {
          workload = WorkloadKind::kEngine;
        } else if (v == "async") {
          workload = WorkloadKind::kAsync;
        } else if (v == "engine_sharded") {
          workload = WorkloadKind::kEngineSharded;
        } else {
          return false;
        }
      } else if (key == "procs") {
        if (!(ls >> procs) || procs < 1 || procs > 1024) return false;
      } else if (key == "locks") {
        if (!(ls >> locks) || locks < 1 || locks > 65536) return false;
      } else if (key == "seed") {
        if (!(ls >> seed)) return false;
      } else if (key == "tail_seed") {
        if (!(ls >> tail_seed)) return false;
      } else if (key == "slot_cap") {
        if (!(ls >> slot_cap) || slot_cap == 0) return false;
      } else if (key == "fault") {
        if (!(ls >> fault)) return false;
      } else if (key == "crash") {
        CrashSchedule::Crash c{};
        if (!(ls >> c.pid >> c.slot)) return false;
        crashes.push_back(c);
      } else if (key == "grants") {
        unsigned g = 0;
        while (ls >> g) grants.push_back(static_cast<std::uint16_t>(g));
        saw_grants = true;
      } else {
        return false;  // unknown key: refuse rather than mis-replay
      }
    }
    if (!saw_grants) return false;
    for (std::uint16_t g : grants) {
      if (static_cast<int>(g) >= procs) return false;
    }
    for (const auto& c : crashes) {
      if (c.pid < 0 || c.pid >= procs) return false;
    }
    return crashes.size() < static_cast<std::size_t>(procs);
  }

  bool load_string(const std::string& s) {
    std::istringstream is(s);
    return load(is);
  }
};

// Replays a Trace's grant prefix, then uniform tail draws; applies crash
// entries with CrashSchedule's own redraw discipline.
class TraceSchedule final : public Schedule {
 public:
  // `apply_crashes = false` replays the grant stream WITHOUT the crash
  // filter: the async workload interprets the trace's crashes
  // cooperatively (the victim must keep running to cancel itself), so
  // filtering the victim out of the schedule would strand it mid-cycle —
  // a wedge with no bug. The engine workload keeps the filter (paper's
  // crash model: the victim simply never runs again).
  explicit TraceSchedule(const Trace& t, bool apply_crashes = true)
      : trace_(&t), apply_crashes_(apply_crashes), tail_rng_(t.tail_seed),
        crash_rng_(t.tail_seed ^ kCrashStream) {}

  int next() override {
    const std::uint64_t slot = slot_++;
    int pick;
    if (slot < trace_->grants.size()) {
      pick = static_cast<int>(trace_->grants[slot]);
    } else {
      pick = static_cast<int>(tail_rng_.next_below(
          static_cast<std::uint64_t>(trace_->procs)));
    }
    // Same bounded-redraw-then-scan as CrashSchedule: stays a pure
    // function of (trace, slot), i.e. oblivious.
    for (int tries = 0; crashed_at(pick, slot) && tries < trace_->procs;
         ++tries) {
      pick = static_cast<int>(crash_rng_.next_below(
          static_cast<std::uint64_t>(trace_->procs)));
    }
    for (int off = 0; crashed_at(pick, slot) && off < trace_->procs; ++off) {
      pick = (pick + 1) % trace_->procs;
    }
    return pick;
  }

 private:
  static constexpr std::uint64_t kCrashStream = 0x9E3779B97F4A7C15ULL;

  bool crashed_at(int pid, std::uint64_t slot) const {
    if (!apply_crashes_) return false;
    for (const auto& c : trace_->crashes) {
      if (c.pid == pid && slot >= c.slot) return true;
    }
    return false;
  }

  const Trace* trace_;
  bool apply_crashes_;
  Xoshiro256 tail_rng_;
  Xoshiro256 crash_rng_;
  std::uint64_t slot_ = 0;
};

// Wraps any schedule and records every grant, turning an exploratory run
// (uniform, stall-burst, crash-composed) into a replayable Trace prefix.
class TraceRecorder final : public Schedule {
 public:
  explicit TraceRecorder(Schedule& inner) : inner_(&inner) {}

  int next() override {
    const int pid = inner_->next();
    grants_.push_back(static_cast<std::uint16_t>(pid));
    return pid;
  }

  const std::vector<std::uint16_t>& grants() const { return grants_; }

 private:
  Schedule* inner_;
  std::vector<std::uint16_t> grants_;
};

}  // namespace wfl::fuzz
