// Fuzz-campaign instrumentation points: site taps and fault hooks.
//
// Two global registries, both designed around the same cost contract as
// the analysis layer's hooks (check/race.hpp): when no campaign is active
// every call is one relaxed load and a predicted not-taken branch, so
// RealPlat builds and benches pay effectively nothing.
//
//   * WFL_FUZZ_SITE(site) — a coverage tap at a RARE branch. The striped
//     StatsSlab counters already give the fuzzer a cheap per-run feature
//     vector (fastpath_hits/revocations, help_claim_skips,
//     log_slot_resets, ...), but the branches the campaign most wants to
//     steer into — a revocation losing its race, a help claim expiring, a
//     cooldown resuming under traffic, a rival draining a foreign inbox —
//     either fold into those aggregates or have no counter at all. A tap
//     gives each of them its own feature-map dimension.
//
//   * wfl::fuzz::fault_on(f) — seeded-fault gates for mutation-testing
//     the campaign itself (DESIGN.md §9.4). A fault re-introduces a real,
//     previously-shipped bug behind a flag that only the fuzz driver and
//     the reproducer regression tests ever raise; the CI gate requires
//     the bounded campaign to find each one. The hooks guard the FIXED
//     code, so a clean tree with no fault enabled runs the exact shipped
//     logic.
//
// This header is include-light on purpose (only <atomic>/<cstdint>): it
// is pulled into core headers (lock_table/attempt/process/work_queue/
// async_executor) that must not grow dependencies.
#pragma once

#include <atomic>
#include <cstdint>

namespace wfl::fuzz {

// Coverage sites. Order is part of the on-disk feature layout only in the
// sense that RunResult snapshots hits by index; renumbering just reshuffles
// feature hashes (the corpus re-learns), it breaks nothing persistent.
enum Site : int {
  kSiteThinRevocation = 0,  // fast-path release CAS lost to a rival's
                            // observed bit (lock_table.hpp)
  kSiteClaimExpiry,         // a foreign help claim went stale and was
                            // revoked by an impatient helper (attempt.hpp)
  kSiteCooldownResume,      // a fast-path cooldown token's grace period
                            // expired and re-armed the embedded
                            // descriptor (process.hpp)
  kSiteDrainAllRival,       // drain_all() took a non-empty chain — the
                            // thief/shutdown rescue path of the MPSC
                            // injector (work_queue.hpp)
  kSiteAsyncSignalOnDone,   // complete() observed a pending kSignalled on
                            // its kDone transition and re-delivered it
                            // (async_executor.hpp — the PR 6 lost-wake
                            // fix's re-post branch)
  kSiteAsyncCancelSweep,    // a cancellation sweep claimed a parked op
                            // (async_executor.hpp)
  kSiteMultiShardRetire,    // a multi-shard descriptor's retire dropped a
                            // non-final reference — another shard's grace
                            // period still pins it (lock_table.hpp)
  kSiteCount
};

inline const char* site_name(int s) {
  switch (s) {
    case kSiteThinRevocation: return "thin_revocation";
    case kSiteClaimExpiry: return "claim_expiry";
    case kSiteCooldownResume: return "cooldown_resume";
    case kSiteDrainAllRival: return "drain_all_rival";
    case kSiteAsyncSignalOnDone: return "async_signal_on_done";
    case kSiteAsyncCancelSweep: return "async_cancel_sweep";
    case kSiteMultiShardRetire: return "multi_shard_retire";
    default: return "?";
  }
}

// Per-run hit counts. Single-writer-ish by construction under the
// simulator (one OS thread); under real threads the load-then-store bump
// is racy-but-advisory, exactly like StatsSlab (coverage is a heuristic
// signal, never a correctness input).
struct SiteTable {
  std::atomic<std::uint64_t> hits[kSiteCount] = {};

  void reset() {
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  }
  std::uint64_t hit_count(int s) const {
    return hits[s].load(std::memory_order_relaxed);
  }
};

inline std::atomic<SiteTable*> g_sites{nullptr};

// RAII installer; the campaign scopes one table per run.
class SiteScope {
 public:
  explicit SiteScope(SiteTable& t) {
    t.reset();
    g_sites.store(&t, std::memory_order_relaxed);
  }
  ~SiteScope() { g_sites.store(nullptr, std::memory_order_relaxed); }
  SiteScope(const SiteScope&) = delete;
  SiteScope& operator=(const SiteScope&) = delete;
};

inline void site_hit(Site s) {
  SiteTable* t = g_sites.load(std::memory_order_relaxed);
  if (t == nullptr) return;  // predicted: no campaign active
  std::atomic<std::uint64_t>& c = t->hits[s];
  c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

// Seeded faults (one at a time; the campaign runs one gate per process).
enum class Fault : std::uint8_t {
  kNone = 0,
  // PR 6 lost-wake: complete() stores kDone unconditionally instead of
  // exchanging, swallowing a kSignalled delivery whose re-post is what
  // keeps the wake-one baton alive when the signalled op never retries.
  kLostWake,
  // PR 6 shutdown hang: the cancellation sweep claims a parked op but
  // the dispatch lands on a pool whose workers already exited, so the
  // claimed, cancelled work never runs and the in-flight drain spins
  // forever. The armed fault diverts sweep-claimed ops to a limbo stack
  // that only drains once the fault is disarmed.
  kShutdownHang,
};

inline std::atomic<Fault> g_fault{Fault::kNone};

inline bool fault_on(Fault f) {
  return g_fault.load(std::memory_order_relaxed) == f;
}

class FaultScope {
 public:
  explicit FaultScope(Fault f) { g_fault.store(f, std::memory_order_relaxed); }
  ~FaultScope() { g_fault.store(Fault::kNone, std::memory_order_relaxed); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
};

}  // namespace wfl::fuzz

// Zero-cost-when-idle coverage tap; keep at RARE branches only — a tap on
// a hot path would still be cheap, but its feature would saturate and
// carry no signal.
#define WFL_FUZZ_SITE(site) ::wfl::fuzz::site_hit(::wfl::fuzz::site)
