// Campaign driver: seed -> mutate -> replay -> oracle -> retain/shrink.
//
// The loop is the classic coverage-guided shape (AFL / NodeFz), specialized
// to schedules: the corpus holds Traces, the mutator edits grant/crash
// genomes, coverage is the feature map over StatsSlab deltas + rare-branch
// site taps, and the oracles are the repo's own checkers. Everything is
// deterministic given CampaignOptions::seed: the RNG stream is one
// Xoshiro, mutants are pure functions of (parent, seed draw), replays are
// pure functions of the trace. Re-running a campaign re-finds the same
// findings in the same order.
//
// Checked replay: every corpus-retained trace (and every minimized
// reproducer) is re-run bit-identically on CheckedPlat with the
// vector-clock race auditor attached. For the race_* seeded faults this IS
// the detector — the fault arms a PR 7-style engine-model mutation
// (dropped fence / downgraded order) that only the happens-before audit
// can see; the plain SimPlat replay is oblivious to it by construction.
//
// Wall-clock budget (max_ms) uses steady_clock and is therefore the one
// intentionally nondeterministic knob; CI uses it only as a backstop on
// top of a deterministic iteration budget.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "wfl/check/race.hpp"
#include "wfl/fuzz/corpus.hpp"
#include "wfl/fuzz/coverage.hpp"
#include "wfl/fuzz/mutate.hpp"
#include "wfl/fuzz/shrink.hpp"
#include "wfl/fuzz/trace.hpp"
#include "wfl/fuzz/workload.hpp"
#include "wfl/platform/checked.hpp"
#include "wfl/util/rng.hpp"

namespace wfl::fuzz {

// Bit-identical CheckedPlat replay with the race auditor attached. Arms the
// trace's engine-model mutation (race_* faults) for the duration; any
// findings the auditor raises are folded into the oracle verdict. Reuses an
// already-installed engine (the _checked test binaries install one at
// startup) or lazily installs a campaign-local one.
inline RunResult run_trace_checked(const Trace& t) {
  race::RaceEngine* eng = race::engine();
  if (eng == nullptr) {
    static race::RaceEngine local;
    local.install();
    eng = &local;
  }
  const std::optional<FaultSpec> f = parse_fault(t.fault);
  if (f.has_value() && f->engine_mutation) eng->set_mutation(f->mutation);
  eng->clear_findings();
  RunResult r = run_trace<CheckedPlat>(t);
  if (!eng->findings().empty()) {
    std::ostringstream os;
    eng->report(os);
    detail::fail(r, "race auditor findings in checked replay:\n" + os.str());
    r.ok = false;
  }
  eng->set_mutation({});
  eng->clear_findings();
  return r;
}

struct CampaignOptions {
  std::uint64_t iters = 400;     // mutation-loop budget (deterministic)
  std::uint64_t max_ms = 0;      // wall-clock backstop, 0 = none
  std::uint64_t seed = 1;        // campaign RNG seed
  std::string fault;             // seeded fault name, "" = clean campaign
  std::string corpus_in;         // extra seed traces (directory), optional
  std::string out_dir;           // minimized reproducers written here
  bool stop_on_finding = true;   // CI mode: first finding ends the run
  int shrink_budget = 250;       // predicate replays per minimization
  bool verbose = false;
};

struct Finding {
  Trace reproducer;              // minimized
  std::string failure;           // first oracle violation
  std::uint64_t found_at_iter = 0;
  int shrink_evals = 0;
};

struct CampaignResult {
  std::uint64_t iters_run = 0;
  std::uint64_t checked_replays = 0;
  std::size_t corpus_size = 0;
  std::size_t feature_bits = 0;
  std::vector<Finding> findings;
};

namespace detail {

// Built-in seed traces: the schedule families the existing suites already
// exercise (uniform, stall-burst, crash-at-slot), expressed as genomes.
// TraceSchedule's uniform tail means an empty prefix IS a UniformSchedule;
// bursts and crashes are literal genome entries.
inline std::vector<Trace> seed_traces(const std::string& fault) {
  // Seeds carry a slot cap ~3x a typical run: generous enough that no live
  // schedule trips it, small enough that a wedged replay (and each failing
  // shrink candidate after one) costs milliseconds, not the file-format
  // default.
  constexpr std::uint64_t kSeedSlotCap = 30000;
  std::vector<Trace> seeds;
  // Fault campaigns seed only the workload family that can express the
  // fault: mutators never change a trace's workload kind, so seeds from
  // unrelated families just dilute the mutation budget — enough that the
  // lost_wake gate stopped converging when the sharded family landed.
  // Clean campaigns (and soak) keep the full pool.
  std::vector<WorkloadKind> kinds = {WorkloadKind::kEngine,
                                     WorkloadKind::kAsync,
                                     WorkloadKind::kEngineSharded};
  if (const std::optional<FaultSpec> f = parse_fault(fault); f.has_value()) {
    if (f->hook != Fault::kNone) {
      kinds = {WorkloadKind::kAsync};  // executor wake-path hooks
    } else if (f->engine_mutation) {
      kinds = {WorkloadKind::kEngine, WorkloadKind::kEngineSharded};
    }
  }
  // Sharded seeds spread over 8 locks (2 per shard): enough lanes that
  // the own-lane beat really is per-process, while the straddling pairs
  // still cross every shard boundary.
  auto shape_locks = [](WorkloadKind wk) {
    return wk == WorkloadKind::kEngineSharded ? 8 : 2;
  };
  // Sharded seeds also run wider (6 procs): the hot-lock beat needs
  // enough simultaneous helpers that claim tenures overlap at all.
  auto shape_procs = [](WorkloadKind wk) {
    return wk == WorkloadKind::kEngineSharded ? 6 : 4;
  };
  for (const WorkloadKind wk : kinds) {
    for (std::uint64_t s = 1; s <= 3; ++s) {  // plain uniform, 3 streams
      Trace t;
      t.workload = wk;
      t.locks = shape_locks(wk);
      t.procs = shape_procs(wk);
      t.fault = fault;
      t.seed = s;
      t.tail_seed = s * 0x9E3779B97F4A7C15ULL + 1;
      t.slot_cap = kSeedSlotCap;
      seeds.push_back(t);
    }
    {  // stall-burst prefix: each pid monopolizes a 24-slot burst
      Trace t;
      t.workload = wk;
      t.locks = shape_locks(wk);
      t.procs = shape_procs(wk);
      t.fault = fault;
      t.seed = 7;
      t.tail_seed = 0xD1B54A32D192ED03ULL;
      t.slot_cap = kSeedSlotCap;
      for (int p = 0; p < t.procs; ++p) {
        for (int i = 0; i < 24; ++i) {
          t.grants.push_back(static_cast<std::uint16_t>(p));
        }
      }
      seeds.push_back(t);
    }
    // Crash slots: early/mid/late in the round traffic, plus one deep in
    // the async workload's quiet-tail window (where the victim's parked
    // tail op is what the cancellation sweep must claim).
    for (const std::uint64_t slot : {40ULL, 400ULL, 2000ULL, 7000ULL}) {
      Trace t;
      t.workload = wk;
      t.locks = shape_locks(wk);
      t.procs = shape_procs(wk);
      t.fault = fault;
      t.seed = 11;
      t.tail_seed = slot * 0xBF58476D1CE4E5B9ULL + 3;
      t.slot_cap = kSeedSlotCap;
      t.crashes.push_back({static_cast<int>(t.procs - 1), slot});
      seeds.push_back(t);
    }
  }
  return seeds;
}

// Failure class: the message up to the first ':' or newline. Shrinking
// preserves the class, not the full text — a candidate that fails a
// DIFFERENT oracle is a different bug and must not hijack the
// minimization (classic ddmin slippage).
inline std::string failure_kind(const std::string& failure) {
  const std::size_t cut = failure.find_first_of(":\n");
  return cut == std::string::npos ? failure : failure.substr(0, cut);
}

inline void log_finding(std::ostream& log, const Finding& f) {
  log << "FINDING (iter " << f.found_at_iter << "): " << f.failure << "\n"
      << "minimized reproducer (" << f.shrink_evals << " shrink evals):\n"
      << f.reproducer.save_string()
      << "[reproducer: seed=" << f.reproducer.seed
      << " slot=" << (f.reproducer.crashes.empty()
                          ? f.reproducer.slot_cap
                          : f.reproducer.crashes.front().slot)
      << " pid=" << (f.reproducer.crashes.empty()
                         ? -1
                         : f.reproducer.crashes.front().pid)
      << "]\n";
}

}  // namespace detail

class Campaign {
 public:
  explicit Campaign(const CampaignOptions& opts, std::ostream& log)
      : opts_(opts), log_(log), rng_(opts.seed) {}

  CampaignResult run() {
    const auto start = std::chrono::steady_clock::now();
    auto out_of_time = [&] {
      if (opts_.max_ms == 0) return false;
      const auto el = std::chrono::steady_clock::now() - start;
      return std::chrono::duration_cast<std::chrono::milliseconds>(el)
                 .count() >= static_cast<long>(opts_.max_ms);
    };

    // Seeding: built-in families plus any user corpus; every seed is
    // evaluated like a mutant (so failing seeds are found immediately and
    // their coverage primes the map).
    Corpus user;
    if (!opts_.corpus_in.empty()) user.load_dir(opts_.corpus_in);
    std::vector<Trace> seeds = detail::seed_traces(opts_.fault);
    for (std::size_t i = 0; i < user.size(); ++i) {
      Trace t = user.at(i);
      t.fault = opts_.fault;  // campaign fault overrides the file's
      seeds.push_back(t);
    }
    for (const Trace& t : seeds) {
      evaluate(t, /*iter=*/0);
      if ((opts_.stop_on_finding && !result_.findings.empty()) ||
          out_of_time()) {
        return finish();
      }
    }
    if (corpus_.empty()) corpus_.add(seeds.front());  // can't happen; belt

    // Mutation loop.
    for (std::uint64_t i = 1; i <= opts_.iters; ++i) {
      if (out_of_time()) break;
      const Trace& parent = corpus_.pick(rng_);
      Trace m = mutate(parent, rng_.next());
      m.fault = opts_.fault;
      result_.iters_run = i;
      evaluate(m, i);
      if (opts_.stop_on_finding && !result_.findings.empty()) break;
    }
    return finish();
  }

 private:
  CampaignResult finish() {
    result_.corpus_size = corpus_.size();
    result_.feature_bits = map_.bits_set();
    return result_;
  }

  void evaluate(const Trace& t, std::uint64_t iter) {
    const RunResult plain = run_trace<SimPlat>(t);
    const int fresh = map_.add(plain);
    std::string failure = plain.failure;
    bool failed = !plain.ok;

    if (!failed && fresh > 0) {
      // Interesting: retain, then audit the retained trace bit-identically
      // on CheckedPlat (this is also where race_* faults are caught).
      corpus_.add(t);
      const RunResult checked = run_trace_checked(t);
      ++result_.checked_replays;
      if (!checked.ok) {
        failed = true;
        failure = checked.failure;
      }
      if (opts_.verbose) {
        log_ << "iter " << iter << ": +" << fresh << " bits, corpus "
             << corpus_.size() << "\n";
      }
    }
    if (!failed) return;

    // Shrink against the layer that actually detected the failure, and
    // only accept candidates failing with the SAME failure class.
    const bool via_checked = plain.ok;
    const std::string kind = detail::failure_kind(failure);
    FailPredicate pred = [via_checked, kind, this](const Trace& c) {
      RunResult r;
      if (via_checked) {
        r = run_trace_checked(c);
        ++result_.checked_replays;
      } else {
        r = run_trace<SimPlat>(c);
      }
      return !r.ok && detail::failure_kind(r.failure) == kind;
    };
    ShrinkStats st;
    Finding f;
    f.reproducer = shrink(t, pred, opts_.shrink_budget, &st,
                          /*shrink_slot_cap=*/kind != "wedge");
    f.found_at_iter = iter;
    f.shrink_evals = st.evals;
    // Re-derive the minimized trace's failure string (the message the
    // regression test will assert on), preferring the detecting layer.
    const RunResult rmin =
        via_checked ? run_trace_checked(f.reproducer)
                    : run_trace<SimPlat>(f.reproducer);
    f.failure = rmin.failure.empty() ? failure : rmin.failure;
    if (via_checked) {
      ++result_.checked_replays;
    } else {
      // Every failing trace also gets the bit-identical audited replay:
      // the race engine sees the same schedule the finding came from.
      run_trace_checked(f.reproducer);
      ++result_.checked_replays;
    }
    detail::log_finding(log_, f);
    if (!opts_.out_dir.empty()) {
      std::filesystem::path dir(opts_.out_dir);
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      const std::string name =
          "repro_" + std::to_string(result_.findings.size()) + ".trace";
      std::ofstream os(dir / name);
      if (os) {
        f.reproducer.save(os);
        log_ << "wrote " << (dir / name).string() << "\n";
      }
    }
    result_.findings.push_back(std::move(f));
  }

  CampaignOptions opts_;
  std::ostream& log_;
  Xoshiro256 rng_;
  Corpus corpus_;
  FeatureMap map_;
  CampaignResult result_;
};

inline CampaignResult run_campaign(const CampaignOptions& opts,
                                   std::ostream& log) {
  return Campaign(opts, log).run();
}

}  // namespace wfl::fuzz
