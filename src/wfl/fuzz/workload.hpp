// Fuzz workload harnesses: replay a Trace, evaluate the oracles, report
// features.
//
// Three workloads cover the runtime stacks the campaign targets:
//
//   * kEngine — direct submit() rounds over a small lock clique under
//     DelayMode::kOff with the fast path and cooperative helping on:
//     thin-word publish/revoke, expiring help claims, and EBR cooldowns
//     all live here. Trace crashes are applied at the SCHEDULE level
//     (the victim's fiber simply never runs again), which is the paper's
//     crash model verbatim — mid-attempt, mid-fast-path-publish and
//     mid-help-claim crash points fall out of slot granularity.
//
//   * kEngineSharded — the same engine harness over a 4-shard table with
//     deliberately small per-shard pools and a three-beat lock pattern:
//     own-lane singles (fast-path publish/release, then a re-acquire that
//     lands inside or just past the EBR cooldown — kSiteCooldownResume),
//     shard-straddling pairs {l, l+1} (refcounted descriptor retire where
//     a sibling shard's grace period still holds a reference —
//     kSiteMultiShardRetire), and all-procs hot-lock beats run at
//     claim_patience 2, where overlapping help-claim tenures go stale
//     inside a run — kSiteClaimExpiry (see EngineShape::claim_patience for
//     why the production threshold is out of reach of any bounded
//     schedule). The plain engine workload runs single-shard by
//     construction (2 locks, 4 procs), so these branches were dead weight
//     in the feature map until this config.
//
//   * kAsync — AsyncExecutor inline mode (workers = 0, the
//     sim-deterministic configuration): park/wake, wake-one signal
//     delivery, and cancellation sweeps. Crashes here are COOPERATIVE: a
//     victim checks its crash slot between pipeline rounds, then stops
//     submitting, abandons its outstanding tickets, and cancel_client()s
//     itself mid-traffic. Schedule-level crashes would be unsound for
//     this workload: in inline mode any fiber may be driving another
//     client's cycle when it stops being scheduled, which strands that
//     op's inline latch — a wedge with no bug, i.e. a false positive.
//     The cooperative model keeps every cancellation path (including the
//     post-run drain the kShutdownHang fault sabotages) honestly
//     reachable, while the slot-granular crash point still rides the
//     trace.
//
// Oracles, in the order they are consulted:
//   1. wedge — the Simulator watchdog (report mode) at the trace's
//      slot_cap: survivors/waiters failing to finish is a finding, never
//      a ctest hang;
//   2. MutexAudit — Definition 4.3 mutual exclusion + idempotence, with
//      crash slack exactly as the crash suites apply it;
//   3. conservation — shared counter vs. reported wins;
//   4. linearizability — LinChecker over the per-round register
//      increments (crash-free runs with histories inside the DFS budget);
//   5. (separately, fuzz/campaign.hpp) a bit-identical CheckedPlat
//      replay of retained/failing traces with the full race auditor.
//
// Everything lives on the harness main frame — sessions, clients,
// tickets, result slots. Fiber stacks hold only PODs and references, so
// a run that ends with suspended fibers (a schedule-level crash victim,
// or a wedge finding) still tears down leak-free: RAII on the main frame
// abandons crash-parked slots and drains in-flight ops.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "wfl/check/linchk.hpp"
#include "wfl/check/mutex_audit.hpp"
#include "wfl/core/async_executor.hpp"
#include "wfl/core/executor.hpp"
#include "wfl/core/lock_table.hpp"
#include "wfl/core/session.hpp"
#include "wfl/fuzz/coverage.hpp"
#include "wfl/fuzz/sites.hpp"
#include "wfl/fuzz/trace.hpp"
#include "wfl/idem/cell.hpp"
#include "wfl/sim/sim.hpp"

namespace wfl::fuzz {

// Seeded faults a trace may carry (the `fault` line). The two g_fault
// hooks live in async_executor.hpp; the race_* entries arm PR 7-style
// engine-model mutations during the CheckedPlat replay instead.
struct FaultSpec {
  Fault hook = Fault::kNone;
  bool engine_mutation = false;
  race::RaceEngine::Mutation mutation{};
};

inline std::optional<FaultSpec> parse_fault(const std::string& name) {
  FaultSpec f;
  if (name.empty()) return f;
  if (name == "lost_wake") {
    f.hook = Fault::kLostWake;
    return f;
  }
  if (name == "shutdown_hang") {
    f.hook = Fault::kShutdownHang;
    return f;
  }
  using Mutation = race::RaceEngine::Mutation;
  if (name == "race_drop_fence") {
    f.engine_mutation = true;
    f.mutation = {Mutation::Kind::kDropFence, race::Site::kEbrPublishFence,
                  std::memory_order_relaxed};
    return f;
  }
  if (name == "race_downgrade_thin") {
    f.engine_mutation = true;
    f.mutation = {Mutation::Kind::kDowngradeOrder, race::Site::kThinPublish,
                  std::memory_order_relaxed};
    return f;
  }
  if (name == "race_downgrade_ebr_exit") {
    f.engine_mutation = true;
    f.mutation = {Mutation::Kind::kDowngradeOrder, race::Site::kEbrExit,
                  std::memory_order_relaxed};
    return f;
  }
  return std::nullopt;
}

// Simulator::run checks its own slot budget BEFORE the watchdog prologue,
// so the harness always runs "unbounded" and lets the armed watchdog (at
// the trace's slot_cap) be the real bound — that way a wedge produces the
// dump instead of a silent budget exit.
inline constexpr std::uint64_t kNoSlotCap = ~std::uint64_t{0};

namespace detail {

inline LockConfig fuzz_cfg(int procs) {
  LockConfig cfg;
  cfg.kappa = static_cast<std::uint32_t>(procs);
  cfg.max_locks = 2;
  cfg.max_thunk_steps = 16;
  cfg.c0 = 8.0;
  cfg.c1 = 8.0;
  cfg.delay_mode = DelayMode::kOff;  // fast path + helping + async live here
  cfg.fast_path = true;
  cfg.cooperative_help = true;
  return cfg;
}

inline void fail(RunResult& r, const std::string& what) {
  if (r.ok) {
    r.ok = false;
    r.failure = what;
  }
}

// Per-round lock-set choice plus the table geometry it runs against; the
// engine harness body is shared between the plain and sharded configs.
// `pick` writes up to 2 ascending ids and returns the count.
struct EngineShape {
  int rounds;
  int locks;
  SpaceSizing sizing;
  std::uint32_t (*pick)(int p, int r, int locks, std::uint32_t* ids);
  // Per-round acquisition policy. The sharded config retries its hot-lock
  // beat until it wins: claim tenures only ever overlap (the precondition
  // for skip accumulation and eventually kSiteClaimExpiry) when rivals
  // restart attempts densely enough to observe each other mid-drive, and
  // a bounded attempts() budget under a hostile schedule never gets
  // there.
  Policy (*policy)(int r);
  // Help-claim patience for this config (LockConfig::claim_patience).
  // The production default (16) makes kSiteClaimExpiry structurally
  // unreachable in a bounded run: expiry needs one claim tenure to absorb
  // patience+1 foreign observations, but every observer that skips also
  // duels the claimed descriptor with a fresh uniform priority afterwards,
  // so the descriptor dies (or the claimer finishes) an order of magnitude
  // earlier — measured across >10k adversarial grant genomes the best
  // single tenure absorbed 8. The sharded config runs patience 2 so the
  // revoke-and-drive branch is under real coverage pressure; the branch
  // body is identical at every threshold.
  std::uint32_t claim_patience;
};

// Plain clique: odd rounds take the {0,1} pair, even rounds spread.
inline std::uint32_t pick_engine_plain(int p, int r, int locks,
                                       std::uint32_t* ids) {
  if (r % 2 == 1 && locks >= 2) {
    ids[0] = 0;
    ids[1] = 1;
    return 2;
  }
  ids[0] = static_cast<std::uint32_t>((p + r) % locks);
  return 1;
}

// Sharded three-beat (see header): own lane, straddling pair, hot lock.
// Pairs use l in [0, locks-2] so ids stay ascending without wrapping.
// The hot beat is FOUR consecutive rounds, not one: a lone hot round ends
// as soon as each proc wins once, so help-claim tenures barely overlap;
// sustained single-lock pressure is what stacks a second and third
// observation onto a live claim before its holder finishes the drive.
inline std::uint32_t pick_engine_sharded(int p, int r, int locks,
                                         std::uint32_t* ids) {
  switch (r % 6) {
    case 0:
      ids[0] = static_cast<std::uint32_t>(p % locks);
      return 1;
    case 1: {
      const std::uint32_t l =
          static_cast<std::uint32_t>((p + r) % (locks - 1));
      ids[0] = l;
      ids[1] = l + 1;
      return 2;
    }
    default:
      ids[0] = 0;
      return 1;
  }
}

inline Policy policy_attempts4(int) { return Policy::attempts(4); }
inline Policy policy_sharded(int r) {
  return r % 6 >= 2 ? Policy::retry() : Policy::attempts(4);
}

inline EngineShape plain_shape(const Trace& t) {
  return {/*rounds=*/6, /*locks=*/t.locks, SpaceSizing{},
          &pick_engine_plain, &policy_attempts4, /*claim_patience=*/16};
}

inline EngineShape sharded_shape(const Trace& t) {
  EngineShape sh;
  sh.rounds = 12;  // two full own/pair/hot*4 beats (see pick_engine_sharded)
  // Every shard must own at least one lock and the pair pattern needs
  // locks >= 2 per shard boundary; 4 is the floor, seeds use 8.
  sh.locks = std::max(4, t.locks);
  // Small per-shard pools: reclamation pressure is what walks the EBR
  // epochs fast enough for cooldown tokens to expire inside a run.
  sh.sizing.snap_pool_capacity = 320;
  sh.sizing.desc_pool_capacity = 96;
  sh.sizing.shards = 4;
  sh.pick = &pick_engine_sharded;
  sh.policy = &policy_sharded;
  sh.claim_patience = 2;  // see EngineShape — keeps expiry reachable
  return sh;
}

}  // namespace detail

// --- engine workload --------------------------------------------------------

template <typename Plat>
RunResult run_engine_shape(const Trace& t, const detail::EngineShape& sh) {
  const int kRounds = sh.rounds;
  const int procs = t.procs;
  const int locks = sh.locks;
  LockConfig cfg = detail::fuzz_cfg(procs);
  cfg.claim_patience = sh.claim_patience;

  RunResult result;
  SiteTable sites;
  SiteScope site_scope(sites);

  LockTable<Plat> space(cfg, procs, locks, sh.sizing);
  MutexAudit<Plat> audit(locks);
  // One register per lock, indexed by an op's FIRST lock id: every writer
  // of regs[l] holds lock l (single-lock ops on l, or a pair whose lowest
  // lock is l), so each register individually sees a mutually excluded
  // writer set. One shared register would NOT be protected — a lock-0-only
  // op and a lock-1-only op are allowed to run concurrently.
  std::deque<Cell<Plat>> regs;
  for (int l = 0; l < locks; ++l) regs.emplace_back(0u);

  // Main-frame result slots (plain memory; written between model steps).
  const std::size_t nops = static_cast<std::size_t>(procs) * kRounds;
  std::vector<std::uint8_t> op_won(nops, 0);
  std::vector<std::uint32_t> op_first_lock(nops, 0);
  std::vector<std::uint32_t> op_val(nops, 0);
  std::vector<std::uint64_t> op_invoke(nops, 0), op_response(nops, 0);
  // Per-op lock-id storage that outlives the SUBMIT, not just the fiber
  // frame: a helper that pinned the descriptor may replay the thunk after
  // the owner's attempt returned and its stack slots were reused for the
  // next round — a replay reading reused ids would guard the WRONG cells
  // (and its single-shot stores can land, since fresh cells share the
  // initial word). The audit would then report a phantom collision.
  std::vector<std::uint32_t> op_ids(nops * 2, 0);

  // Sessions on the main frame: a schedule-crashed victim's slot is
  // abandoned by ~Session, not by a destructor on a suspended stack.
  std::deque<Session<Plat>> sessions;
  for (int p = 0; p < procs; ++p) sessions.emplace_back(space);

  Simulator sim(t.seed);
  for (int p = 0; p < procs; ++p) {
    sim.add_process([&, p] {
      for (int r = 0; r < kRounds; ++r) {
        const std::size_t slot =
            static_cast<std::size_t>(p) * kRounds + static_cast<std::size_t>(r);
        std::uint32_t* ids = &op_ids[slot * 2];
        const std::uint32_t n = sh.pick(p, r, locks, ids);
        op_first_lock[slot] = ids[0];
        StaticLockSet<2> ls(std::span<const std::uint32_t>(ids, n), cfg);
        MutexAudit<Plat>* aud = &audit;
        Cell<Plat>* reg = &regs[ids[0]];
        std::uint32_t* val_out = &op_val[slot];
        const std::uint32_t* idp = ids;  // stable for late helped replays
        const std::uint32_t idn = n;
        op_invoke[slot] = sim.slots_used();
        const Outcome out = submit(
            sessions[static_cast<std::size_t>(p)], ls,
            [aud, reg, val_out, idp, idn](IdemCtx<Plat>& m) {
              aud->guard(m, {idp, idn});
              const std::uint32_t v = m.load(*reg);
              m.store(*reg, v + 1);
              *val_out = v;  // idempotent: replays rewrite the agreed value
            },
            sh.policy(r));
        op_response[slot] = sim.slots_used();
        op_won[slot] = out.won ? 1 : 0;
      }
    });
  }

  sim.enable_watchdog(t.slot_cap, /*fail_hard=*/false);
  TraceSchedule sched(t);
  for (;;) {
    bool survivors_done = true;
    for (int p = 0; p < procs; ++p) {
      bool victim = false;
      for (const auto& c : t.crashes) victim = victim || c.pid == p;
      if (!victim && !sim.is_finished(p)) survivors_done = false;
    }
    if (survivors_done) break;
    if (sim.watchdog_fired() ||
        !sim.run(sched, kNoSlotCap, sim.finished_count() + 1)) {
      result.wedged = true;
      detail::fail(result, "wedge: survivors unfinished at slot cap\n" +
                               sim.watchdog_dump());
      break;
    }
  }
  result.slots = sim.slots_used();

  // --- oracles ---
  std::vector<std::uint64_t> wins_by_first_lock(
      static_cast<std::size_t>(locks), 0);
  std::uint64_t total_wins = 0;
  for (std::size_t i = 0; i < nops; ++i) {
    if (op_won[i] != 0) {
      ++wins_by_first_lock[op_first_lock[i]];
      ++total_wins;
    }
  }
  const std::uint64_t slack = t.crashes.size();  // <= 1 in-flight per victim
  const auto rep = audit.audit(wins_by_first_lock, slack,
                               /*allow_inflight_flags=*/true);
  if (rep.flag_violations != 0) {
    detail::fail(result, "mutual exclusion violated (busy-flag collision)");
  }
  if (rep.lost_updates != 0) detail::fail(result, "lost critical sections");
  if (rep.duplicated_runs != 0) {
    detail::fail(result, "duplicated critical sections");
  }
  const std::uint64_t max_raised = t.crashes.empty() ? 0 : 2 * slack;
  if (rep.raised_flags > max_raised) {
    detail::fail(result, "busy flags raised beyond crash in-flight bound");
  }
  // Conservation, per register: one increment per win on that register's
  // lock, plus (globally) at most one unrecorded in-flight win per victim.
  std::uint64_t excess = 0;
  for (int l = 0; l < locks; ++l) {
    const std::uint64_t counted = regs[static_cast<std::size_t>(l)].peek();
    const std::uint64_t wins_l = wins_by_first_lock[static_cast<std::size_t>(l)];
    if (counted < wins_l) {
      detail::fail(result, "register conservation violated (lost increment)");
    } else {
      excess += counted - wins_l;
    }
  }
  if (excess > slack) {
    detail::fail(result, "register conservation violated (extra increments)");
  }
  // Linearizability of register 0's won increments (complete histories
  // only; all writers of regs[0] hold lock 0).
  const std::uint64_t wins0 = wins_by_first_lock[0];
  if (result.ok && t.crashes.empty() && wins0 > 0 && wins0 <= 63) {
    std::vector<LinOp> hist;
    for (std::size_t i = 0; i < nops; ++i) {
      if (op_won[i] == 0 || op_first_lock[i] != 0) continue;
      LinOp op;
      op.proc = static_cast<int>(i) / kRounds;
      op.invoke = op_invoke[i];
      op.response = op_response[i];
      op.kind = RegisterModel::kCas;
      op.arg = op_val[i];
      op.arg2 = op_val[i] + 1;
      op.ret = 1;
      hist.push_back(op);
    }
    LinChecker<RegisterModel> chk;
    if (!chk.check(hist)) {
      detail::fail(result, "increment history not linearizable");
    }
  }

  RunResult::append_stats(result.features, space.stats());
  RunResult::append_sites(result.features, sites);
  result.features.push_back(result.slots);
  result.features.push_back(result.wedged ? 1 : 0);
  result.features.push_back(0);  // async-only lanes stay fixed-width
  result.features.push_back(0);
  result.features.push_back(0);
  return result;
}

template <typename Plat>
RunResult run_engine_trace(const Trace& t) {
  return run_engine_shape<Plat>(t, detail::plain_shape(t));
}

template <typename Plat>
RunResult run_engine_sharded_trace(const Trace& t) {
  return run_engine_shape<Plat>(t, detail::sharded_shape(t));
}

// --- async workload ---------------------------------------------------------

template <typename Plat>
RunResult run_async_trace(const Trace& t) {
  constexpr int kRounds = 3;
  constexpr int kPipeline = 3;
  // Quiet-tail phase (after a barrier, so no round traffic overlaps): each
  // survivor submits one ONE-SHOT op and one retry op on the hot lock, then
  // drives a short parking window before its crash point. The tail is what
  // makes the seeded wake-path faults observable at all: with retry-only
  // traffic every op eventually wins and its own release event wakes the
  // next parked waiter, so a dropped re-delivery (kLostWake) is always
  // surplus. A one-shot op, though, can exhaust its policy WHILE holding an
  // absorbed signal — complete()'s re-delivery is then the last baton on
  // the lock, and dropping it strands a parked waiter with no rescue
  // traffic behind it. Likewise a victim crashing here can leave a PARKED
  // op for cancel_client to claim — the exact sweep kShutdownHang skips.
  constexpr int kTail = 3;  // two one-shot ops + one retry op
  constexpr int kParkWindow = 96;
  constexpr int kCrashHold = 160;  // max slots a due crash waits for a park
  const int procs = t.procs;
  const int locks = t.locks;
  const LockConfig cfg = detail::fuzz_cfg(procs);

  RunResult result;
  SiteTable sites;
  SiteScope site_scope(sites);

  LockTable<Plat> space(cfg, procs, locks);
  MutexAudit<Plat> audit(locks);
  // One register per lock, indexed by an op's FIRST lock id (same scheme
  // as the engine workload): cold-lock-only round ops have a writer set
  // disjoint from the lock-0 ops', so a single shared register would not
  // be mutually excluded.
  std::deque<Cell<Plat>> regs;
  for (int l = 0; l < locks; ++l) regs.emplace_back(0u);

  const std::size_t per_proc =
      static_cast<std::size_t>(kRounds) * kPipeline + 1 + kTail;
  const std::size_t nops = static_cast<std::size_t>(procs) * per_proc;
  std::vector<std::uint8_t> op_won(nops, 0), op_waited(nops, 0);
  std::vector<std::uint8_t> op_once(nops, 0);
  std::vector<std::uint32_t> op_first_lock(nops, 0), op_val(nops, 0);
  std::vector<std::uint64_t> op_invoke(nops, 0), op_response(nops, 0);
  std::vector<std::uint8_t> crashed(static_cast<std::size_t>(procs), 0);
  // Per-op lock-id storage that outlives fibers (audit spans point here).
  std::vector<std::uint32_t> op_ids(nops * 2, 0);

  std::deque<Session<Plat>> sessions;
  std::deque<AsyncClient<Plat>> clients;
  for (int p = 0; p < procs; ++p) {
    sessions.emplace_back(space);
    clients.emplace_back(sessions.back());
  }
  // Executor after sessions, tickets after executor: tickets die first.
  AsyncExecutor<Plat> exec(space, {.workers = 0});
  std::vector<typename AsyncExecutor<Plat>::Ticket> tickets(nops);

  Simulator sim(t.seed);
  // Fiber stacks hold only a frame pointer + two scalars: the fiber
  // FixedFunction has 128 bytes of inline capture storage, far less than
  // the ~18 references this harness needs.
  struct Frame {
    Simulator* sim;
    AsyncExecutor<Plat>* exec;
    std::deque<AsyncClient<Plat>>* clients;
    std::vector<typename AsyncExecutor<Plat>::Ticket>* tickets;
    MutexAudit<Plat>* audit;
    std::deque<Cell<Plat>>* regs;
    std::uint8_t* op_won;
    std::uint8_t* op_waited;
    std::uint8_t* op_once;
    std::uint32_t* op_first_lock;
    std::uint32_t* op_val;
    std::uint64_t* op_invoke;
    std::uint64_t* op_response;
    std::uint8_t* crashed;
    std::uint32_t* op_ids;
    const LockConfig* cfg;
    int locks;
    int procs;
    std::size_t per_proc;
    // Quiet-tail barrier: every fiber bumps this exactly once (on crash or
    // on finishing its rounds); tails begin only when all have. Plain
    // atomic — harness bookkeeping, not model state.
    std::atomic<int> arrived{0};
    // Second barrier between the cold flurry and the hot tail.
    std::atomic<int> arrived2{0};
  };
  Frame frame{&sim,          &exec,
              &clients,      &tickets,
              &audit,        &regs,
              op_won.data(), op_waited.data(),
              op_once.data(),
              op_first_lock.data(), op_val.data(),
              op_invoke.data(),     op_response.data(),
              crashed.data(),       op_ids.data(),
              &cfg,          locks,
              procs,         per_proc};
  for (int p = 0; p < procs; ++p) {
    std::uint64_t crash_slot = ~std::uint64_t{0};
    for (const auto& c : t.crashes) {
      if (c.pid == p) crash_slot = c.slot;
    }
    sim.add_process([fr = &frame, p, crash_slot] {
      auto& client = (*fr->clients)[static_cast<std::size_t>(p)];
      bool arrived_done = false;   // barrier bumps owed unless already paid
      bool arrived2_done = false;
      auto crash_now = [fr, p, &client, &arrived_done, &arrived2_done] {
        fr->crashed[static_cast<std::size_t>(p)] = 1;
        if (!arrived_done) {
          fr->arrived.fetch_add(1, std::memory_order_relaxed);
          arrived_done = true;
        }
        if (!arrived2_done) {
          fr->arrived2.fetch_add(1, std::memory_order_relaxed);
          arrived2_done = true;
        }
        fr->exec->cancel_client(client);
      };
      // Crash hold: once past its crash slot the victim steps WITHOUT
      // driving cycles (running its own ops to completion would destroy
      // the state under test) until the executor shows a parked op, then
      // cancels — landing the sweep's parked-claim (the branch the
      // kShutdownHang fault skips) on the window it exists for. Parks are
      // rare transients, so an unconditional crash nearly always lands on
      // queued/running ops; the hold is bounded, crashing anyway after
      // the grace expires.
      auto crash_due = [fr, crash_slot, &crash_now] {
        if (fr->sim->slots_used() < crash_slot) return false;
        for (int g = 0; g < kCrashHold; ++g) {
          if (fr->exec->parks() > fr->exec->wakes()) break;
          Plat::step();
        }
        crash_now();
        return true;
      };
      for (int r = 0; r < kRounds; ++r) {
        // Cooperative crash: stop submitting, abandon outstanding
        // tickets, cancel pending work mid-traffic (see header).
        if (crash_due()) return;
        const std::size_t base = static_cast<std::size_t>(p) * fr->per_proc +
                                 static_cast<std::size_t>(r) * kPipeline;
        for (int j = 0; j < kPipeline; ++j) {
          const std::size_t slot = base + static_cast<std::size_t>(j);
          std::uint32_t* ids = &fr->op_ids[slot * 2];
          std::uint32_t n;
          if ((p + r + j) % 3 == 2 && fr->locks >= 2) {
            ids[0] = 0;
            ids[1] = 1;
            n = 2;
          } else if ((p + r + j) % 3 == 1 && fr->locks >= 2) {
            // Cold-lock-only ops: their wait nodes hear NOTHING from the
            // hot lock, so once cold-lock round traffic dries up there is
            // no rescue for a stranded cold waiter. A crashed client's
            // parked cold op that the sweep fails to claim (kShutdownHang)
            // later swallows the final cold baton and the live waiter
            // behind it wedges — on lock 0 the all-hot quiet tail would
            // always re-rescue it.
            ids[0] = 1;
            n = 1;
          } else {
            ids[0] = 0;  // hot lock: park/wake chains form here
            n = 1;
          }
          fr->op_first_lock[slot] = ids[0];
          StaticLockSet<2> ls(std::span<const std::uint32_t>(ids, n),
                              *fr->cfg);
          MutexAudit<Plat>* aud = fr->audit;
          Cell<Plat>* reg = &(*fr->regs)[ids[0]];
          std::uint32_t* val_out = &fr->op_val[slot];
          const std::uint32_t* idp = ids;
          const std::uint32_t idn = n;
          // Cold-only ops get a LONG critical section (padding loads). An
          // op parks only when its losing attempt reaches the park CAS
          // before the holder's release event lands — short bodies make
          // that window nearly unhittable (the release arrives mid-help
          // and converts the park into an immediate retry). Long cold
          // holds make cold losers park routinely, which is the raw
          // material for every parked-claim scenario the sweep owns.
          const int pad = (n == 1 && ids[0] == 1) ? 8 : 0;
          fr->op_invoke[slot] = fr->sim->slots_used();
          (*fr->tickets)[slot] = fr->exec->async_submit(
              client, ls,
              [aud, reg, val_out, idp, idn, pad](IdemCtx<Plat>& m) {
                aud->guard(m, {idp, idn});
                const std::uint32_t v = m.load(*reg);
                for (int x = 0; x < pad; ++x) (void)m.load(*reg);
                m.store(*reg, v + 1);
                *val_out = v;
              },
              Policy::retry());
        }
        // The mid-pipeline crash point: submitted-but-unawaited ops may
        // be queued or parked right now — exactly the work the
        // cancellation sweep must rescue (and the kShutdownHang fault
        // strands).
        if (crash_due()) return;
        for (int j = 0; j < kPipeline; ++j) {
          // Crash point between waits: ops of this client may be PARKED
          // right now (they lost to round traffic while we waited on an
          // earlier ticket) — the state the cancellation sweep's
          // parked-claim exists for.
          if (crash_due()) return;
          const std::size_t slot = base + static_cast<std::size_t>(j);
          const Outcome& out = (*fr->tickets)[slot].wait();
          fr->op_response[slot] = fr->sim->slots_used();
          fr->op_won[slot] = out.won ? 1 : 0;
          fr->op_waited[slot] = 1;
        }
      }
      // Quiet-tail barrier: wait for every fiber (crashed ones counted at
      // their crash point) so no round traffic can rescue a stranded tail
      // waiter. Spinning drives leftover cycles rather than burning slots.
      fr->arrived.fetch_add(1, std::memory_order_relaxed);
      arrived_done = true;
      while (fr->arrived.load(std::memory_order_relaxed) < fr->procs) {
        // Crash point: a fast fiber spends thousands of slots here while
        // stragglers finish rounds — without a check, every crash slot
        // in that span would collapse onto the first tail-window check.
        if (fr->sim->slots_used() >= crash_slot) {
          crash_now();
          return;
        }
        if (fr->exec->run_ready(1) == 0) Plat::step();
      }
      // Cold flurry: one long-critical-section cold op per survivor,
      // submitted together right after the barrier — the LAST cold-lock
      // traffic in the run. Long holds make the losers park densely; a
      // victim crashing here holds its cancellation until ITS OWN op is
      // parked (Ticket::parked), leaving exactly the state the sweep's
      // parked-claim must rescue. Once the flurry resolves nothing ever
      // posts a cold-lock event again, so a wake swallowed by an
      // unclaimed dead op (kShutdownHang skips the claim; the woken dead
      // op cancel-completes without re-posting) permanently strands the
      // parked waiter behind it — and that waiter's flurry wait below
      // wedges the run at the watchdog.
      const std::size_t fslot = static_cast<std::size_t>(p) * fr->per_proc +
                                static_cast<std::size_t>(kRounds) * kPipeline;
      if (fr->locks >= 2) {
        std::uint32_t* ids = &fr->op_ids[fslot * 2];
        ids[0] = 1;
        fr->op_first_lock[fslot] = 1;
        StaticLockSet<2> ls(std::span<const std::uint32_t>(ids, 1),
                            *fr->cfg);
        MutexAudit<Plat>* aud = fr->audit;
        Cell<Plat>* reg = &(*fr->regs)[1];
        std::uint32_t* val_out = &fr->op_val[fslot];
        const std::uint32_t* idp = ids;
        fr->op_invoke[fslot] = fr->sim->slots_used();
        (*fr->tickets)[fslot] = fr->exec->async_submit(
            client, ls,
            [aud, reg, val_out, idp](IdemCtx<Plat>& m) {
              aud->guard(m, {idp, 1});
              const std::uint32_t v = m.load(*reg);
              for (int x = 0; x < 8; ++x) (void)m.load(*reg);
              m.store(*reg, v + 1);
              *val_out = v;
            },
            Policy::retry());
        for (int s = 0; s < kParkWindow; ++s) {
          if (fr->sim->slots_used() >= crash_slot) {
            if ((*fr->tickets)[fslot].parked()) {
              crash_now();
              return;
            }
            Plat::step();
            continue;
          }
          if (fr->exec->run_ready(1) == 0) Plat::step();
        }
        if (fr->sim->slots_used() >= crash_slot) {
          crash_now();
          return;
        }
        const Outcome& fout = (*fr->tickets)[fslot].wait();
        fr->op_response[fslot] = fr->sim->slots_used();
        fr->op_won[fslot] = fout.won ? 1 : 0;
        fr->op_waited[fslot] = 1;
      }
      // Second barrier: the hot tail begins only after every cold-flurry
      // wait resolves, so no hot-tail traffic overlaps a cold strand.
      fr->arrived2.fetch_add(1, std::memory_order_relaxed);
      arrived2_done = true;
      while (fr->arrived2.load(std::memory_order_relaxed) < fr->procs) {
        if (fr->sim->slots_used() >= crash_slot) {
          crash_now();
          return;
        }
        if (fr->exec->run_ready(1) == 0) Plat::step();
      }
      const std::size_t tb = static_cast<std::size_t>(p) * fr->per_proc +
                             static_cast<std::size_t>(kRounds) * kPipeline + 1;
      for (int k = 0; k < kTail; ++k) {
        const std::size_t slot = tb + static_cast<std::size_t>(k);
        std::uint32_t* ids = &fr->op_ids[slot * 2];
        ids[0] = 0;  // everyone on the hot lock: the wake chain under test
        fr->op_first_lock[slot] = 0;
        fr->op_once[slot] = (k + 1 < kTail) ? 1 : 0;
        StaticLockSet<2> ls(std::span<const std::uint32_t>(ids, 1), *fr->cfg);
        MutexAudit<Plat>* aud = fr->audit;
        Cell<Plat>* reg = &(*fr->regs)[0];
        std::uint32_t* val_out = &fr->op_val[slot];
        const std::uint32_t* idp = ids;
        fr->op_invoke[slot] = fr->sim->slots_used();
        (*fr->tickets)[slot] = fr->exec->async_submit(
            client, ls,
            [aud, reg, val_out, idp](IdemCtx<Plat>& m) {
              aud->guard(m, {idp, 1});
              const std::uint32_t v = m.load(*reg);
              m.store(*reg, v + 1);
              *val_out = v;
            },
            k + 1 < kTail ? Policy::one_shot() : Policy::retry());
      }
      // Parking window: let the tail ops lose and park under contention.
      // A crashing client holds its cancellation until the executor
      // actually has a parked op: past its crash slot it stops driving
      // cycles (running its own retry op to completion would destroy the
      // very state under test) and steps until a park is visible, then
      // cancels — landing the sweep's parked-claim (and the kShutdownHang
      // fault that skips it) exactly on the window it exists for. The
      // hold is bounded by the window; the ticket waits below keep the
      // unconditional fallback so a pending crash always lands.
      for (int s = 0; s < kParkWindow; ++s) {
        if (fr->sim->slots_used() >= crash_slot) {
          if (fr->exec->parks() > fr->exec->wakes()) {
            crash_now();
            return;
          }
          Plat::step();
          continue;
        }
        if (fr->exec->run_ready(1) == 0) Plat::step();
      }
      for (int k = 0; k < kTail; ++k) {
        if (fr->sim->slots_used() >= crash_slot) {
          crash_now();
          return;
        }
        const std::size_t slot = tb + static_cast<std::size_t>(k);
        const Outcome& out = (*fr->tickets)[slot].wait();
        fr->op_response[slot] = fr->sim->slots_used();
        fr->op_won[slot] = out.won ? 1 : 0;
        fr->op_waited[slot] = 1;
      }
    });
  }

  sim.enable_watchdog(t.slot_cap, /*fail_hard=*/false);
  TraceSchedule sched(t, /*apply_crashes=*/false);  // cooperative crashes
  if (!sim.run(sched, kNoSlotCap)) {
    result.wedged = true;
    detail::fail(result, "wedge: async waiters unfinished at slot cap\n" +
                             sim.watchdog_dump());
  }
  result.slots = sim.slots_used();

  // Post-run drain: a crashed client's leftovers must cancel out within
  // a bounded number of sweeps — the kShutdownHang detector. (Runs with
  // the trace's fault still armed; the caller owns the FaultScope.)
  for (int p = 0; p < procs; ++p) {
    if (crashed[static_cast<std::size_t>(p)] != 0) {
      exec.cancel_client(clients[static_cast<std::size_t>(p)]);
    }
  }
  for (int iter = 0; iter < 64 && exec.in_flight() != 0; ++iter) {
    exec.run_ready(0);
    for (int p = 0; p < procs; ++p) {
      if (crashed[static_cast<std::size_t>(p)] != 0) {
        exec.cancel_client(clients[static_cast<std::size_t>(p)]);
      }
    }
  }
  if (!result.wedged && exec.in_flight() != 0) {
    detail::fail(result,
                 "async drain wedged: " + std::to_string(exec.in_flight()) +
                     " ops still in flight after cancellation sweeps");
  }

  // --- oracles ---
  std::vector<std::uint64_t> wins_by_first_lock(
      static_cast<std::size_t>(locks), 0);
  std::uint64_t total_wins = 0;
  bool any_crash = false;
  for (int p = 0; p < procs; ++p) any_crash |= crashed[p] != 0;
  for (std::size_t i = 0; i < nops; ++i) {
    // A retry-policy op that was waited must have won; abandoned or
    // undrained ops may be cancelled, and one-shot tail ops may lose.
    if (op_waited[i] != 0 && op_won[i] == 0 && op_once[i] == 0 &&
        !result.wedged) {
      detail::fail(result, "awaited retry-policy submission lost");
    }
    if (op_won[i] != 0) {
      ++wins_by_first_lock[op_first_lock[i]];
      ++total_wins;
    }
  }
  if (!result.wedged) {
    // Thunks may also have run for abandoned ops (cancellation raced a
    // win) — those are wins the ticket side never recorded. Bound the
    // slack by the victims' possible outstanding ops.
    const std::uint64_t slack =
        any_crash ? static_cast<std::uint64_t>(t.crashes.size()) * per_proc
                  : 0;
    const auto rep = audit.audit(wins_by_first_lock, slack,
                                 /*allow_inflight_flags=*/true);
    if (rep.flag_violations != 0) {
      detail::fail(result, "mutual exclusion violated (busy-flag collision)");
    }
    if (rep.lost_updates != 0) detail::fail(result, "lost critical sections");
    if (rep.duplicated_runs != 0) {
      detail::fail(result, "duplicated critical sections");
    }
    if (!any_crash && rep.raised_flags != 0) {
      detail::fail(result, "busy flag raised after quiescent drain");
    }
    for (int l = 0; l < locks; ++l) {
      const std::uint64_t counted = regs[static_cast<std::size_t>(l)].peek();
      const std::uint64_t wins = wins_by_first_lock[static_cast<std::size_t>(l)];
      if (counted < wins || counted > wins + slack) {
        detail::fail(result, "register conservation violated");
      }
    }
    if (result.ok && !any_crash && total_wins > 0 && total_wins <= 63) {
      // Linearizability of register 0's increments only: every writer of
      // regs[0] holds lock 0; cold-lock ops write their own register.
      std::vector<LinOp> hist;
      for (std::size_t i = 0; i < nops; ++i) {
        if (op_won[i] == 0 || op_waited[i] == 0 || op_first_lock[i] != 0) {
          continue;
        }
        LinOp op;
        op.proc = static_cast<int>(i / per_proc);
        op.invoke = op_invoke[i];
        op.response = op_response[i];
        op.kind = RegisterModel::kCas;
        op.arg = op_val[i];
        op.arg2 = op_val[i] + 1;
        op.ret = 1;
        hist.push_back(op);
      }
      LinChecker<RegisterModel> chk;
      if (!chk.check(hist)) {
        detail::fail(result, "increment history not linearizable");
      }
    }
  }

  RunResult::append_stats(result.features, space.stats());
  RunResult::append_sites(result.features, sites);
  result.features.push_back(result.slots);
  result.features.push_back(result.wedged ? 1 : 0);
  result.features.push_back(exec.parks());
  result.features.push_back(exec.wakes());
  result.features.push_back(exec.signals());

  // Teardown safety: whatever happened above (including a wedge with
  // suspended fibers), complete every op before tickets/executor die.
  // The seeded fault must not gate this final drain — it is cleanup, not
  // oracle — so suspend it for the rest of this scope.
  const Fault armed = g_fault.exchange(Fault::kNone);
  for (auto& c : clients) exec.cancel_client(c);
  for (int iter = 0; iter < 64 && exec.in_flight() != 0; ++iter) {
    exec.run_ready(0);
    for (auto& c : clients) exec.cancel_client(c);
  }
  if (exec.in_flight() != 0) {
    // A wedged run left ops stranded on suspended fibers (kRunning
    // mid-cycle, or waiters spinning in Ticket::wait). run_ready cannot
    // reach those from here — only the fibers themselves can. Resume the
    // simulation with the fault disarmed and every client cancelled:
    // each stranded cycle concludes its attempt, sees its dead client,
    // and cancel-completes; each waiter's op goes kDone and the wait
    // returns. Bounded, because cancellation needs no lock-table
    // progress. Without this, ~AsyncExecutor's shutdown drain would spin
    // forever and a wedge finding could never be torn down.
    RoundRobinSchedule rescue(procs);
    sim.run(rescue, sim.slots_used() + 16 * t.slot_cap + 65536);
    for (int iter = 0; iter < 64 && exec.in_flight() != 0; ++iter) {
      exec.run_ready(0);
      for (auto& c : clients) exec.cancel_client(c);
    }
    WFL_CHECK_MSG(exec.in_flight() == 0,
                  "async rescue drain failed: executor teardown would hang");
  }
  g_fault.store(armed);
  return result;
}

// --- dispatch + checked replay ---------------------------------------------

// Plain replay: arms the trace's g_fault hook (if any) for the duration.
template <typename Plat>
RunResult run_trace(const Trace& t) {
  const std::optional<FaultSpec> f = parse_fault(t.fault);
  if (!f.has_value()) {
    RunResult r;
    detail::fail(r, "unknown fault name: " + t.fault);
    return r;
  }
  FaultScope scope(f->hook);
  switch (t.workload) {
    case WorkloadKind::kAsync: return run_async_trace<Plat>(t);
    case WorkloadKind::kEngineSharded:
      return run_engine_sharded_trace<Plat>(t);
    default: return run_engine_trace<Plat>(t);
  }
}

}  // namespace wfl::fuzz
