// Deterministic delta-debugging shrinker.
//
// Given a failing Trace and a predicate "does this trace still fail?",
// shrink() searches for a smaller trace with the same verdict. Because a
// TraceSchedule backfills past the explicit prefix with uniform tail
// draws, *every* candidate edit yields a complete, runnable schedule —
// there is no "trace too short" failure mode, which is what makes plain
// ddmin applicable to schedules at all.
//
// Passes (each iterated to fixpoint, whole sequence repeated while any
// pass improved and budget remains):
//   1. crash removal — drop whole crash entries (coarsest first: a
//      reproducer that needs no crash is categorically simpler);
//   2. grant-chunk deletion — ddmin over the prefix: try deleting chunks
//      of half the prefix, then quarters, ... down to single grants;
//   3. crash-slot minimization — binary-search each crash slot downward
//      (earlier crash = shorter interesting prefix next pass);
//   4. slot-cap tightening — halve/step the replay budget down while the
//      failure persists, so wedge reproducers replay fast.
//
// The shrinker is RNG-free: candidate order is a pure function of the
// input trace, so the same failure always minimizes to the same
// reproducer byte-for-byte (test_fuzz pins this). Every predicate call
// replays a full simulation; `budget` caps those calls, and the best
// trace so far is returned when it runs out. The result is 1-minimal
// with respect to the passes above when the budget was not exhausted.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>

#include "wfl/fuzz/trace.hpp"

namespace wfl::fuzz {

using FailPredicate = std::function<bool(const Trace&)>;

struct ShrinkStats {
  int evals = 0;        // predicate calls spent
  int improvements = 0; // accepted smaller candidates
};

// `shrink_slot_cap` gates pass 4: for wedge findings the caller must
// disable it — ANY trace "fails to finish" under a tiny slot cap, so
// cap-tightening would minimize a genuine wedge into a meaningless
// not-enough-budget artifact. (The kind-preserving predicate alone cannot
// tell the two apart: both read "unfinished at slot cap".)
inline Trace shrink(const Trace& failing, const FailPredicate& still_fails,
                    int budget = 300, ShrinkStats* stats_out = nullptr,
                    bool shrink_slot_cap = true) {
  Trace best = failing;
  ShrinkStats st;
  auto try_candidate = [&](const Trace& cand) {
    if (st.evals >= budget) return false;
    ++st.evals;
    if (!still_fails(cand)) return false;
    best = cand;
    ++st.improvements;
    return true;
  };

  bool improved = true;
  while (improved && st.evals < budget) {
    improved = false;

    // Pass 1: drop crash entries, last first (stable candidate order).
    for (std::size_t i = best.crashes.size(); i-- > 0;) {
      Trace cand = best;
      cand.crashes.erase(cand.crashes.begin() +
                         static_cast<std::ptrdiff_t>(i));
      improved |= try_candidate(cand);
    }

    // Pass 2: ddmin over the grant prefix. Chunk size halves from n/2
    // down to 1; within a size, scan back-to-front so accepted deletions
    // do not invalidate the indices still to be tried.
    for (std::size_t chunk = best.grants.size() / 2; chunk >= 1;
         chunk /= 2) {
      bool any = true;
      while (any && st.evals < budget) {
        any = false;
        const std::size_t n = best.grants.size();
        if (n == 0) break;
        const std::size_t nchunks = (n + chunk - 1) / chunk;
        for (std::size_t ci = nchunks; ci-- > 0 && st.evals < budget;) {
          const std::size_t start = ci * chunk;
          if (start >= best.grants.size()) continue;
          Trace cand = best;
          const std::size_t end =
              std::min(start + chunk, cand.grants.size());
          cand.grants.erase(
              cand.grants.begin() + static_cast<std::ptrdiff_t>(start),
              cand.grants.begin() + static_cast<std::ptrdiff_t>(end));
          if (try_candidate(cand)) {
            any = true;
            improved = true;
          }
        }
      }
      if (chunk == 1) break;
    }

    // Pass 3: binary-search each crash slot toward 0.
    for (std::size_t i = 0; i < best.crashes.size(); ++i) {
      std::uint64_t lo = 0, hi = best.crashes[i].slot;
      while (lo < hi && st.evals < budget) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        Trace cand = best;
        cand.crashes[i].slot = mid;
        if (try_candidate(cand)) {
          hi = mid;
          improved = true;
        } else {
          lo = mid + 1;
        }
      }
    }

    // Pass 4: tighten the replay budget (fast reproducers). Skipped for
    // wedge findings — see the parameter note above.
    while (shrink_slot_cap && best.slot_cap > 64 && st.evals < budget) {
      Trace cand = best;
      cand.slot_cap = best.slot_cap / 2;
      if (!try_candidate(cand)) break;
      improved = true;
    }
  }

  if (stats_out != nullptr) *stats_out = st;
  return best;
}

}  // namespace wfl::fuzz
