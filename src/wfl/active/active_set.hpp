// Algorithm 1: linearizable active set with adaptive step complexity.
//
// A C-slot announcement array; each slot holds an owner item and a pointer
// to an immutable *snapshot* — the set of owners of this slot and every
// slot above it. insert() claims the first ownerless slot with one CAS and
// climbs; remove() clears its slot and climbs; climb(i) walks from slot i
// down to slot 0, twice per slot, rebuilding `set[j] = set[j+1] + owner[j]`
// with a CAS. The double pass is the usual helping trick that makes a
// concurrent climber's stale CAS harmless. getSet() is one load of
// slot 0's snapshot pointer — O(1), as Theorem 5.2 requires; insert/remove
// are O(set size + contention).
//
// The pseudocode's corner case (`announcements[C].set` above the top slot)
// is realized as a permanently-empty sentinel snapshot, which is what makes
// removals at the top slot actually drain: the top slot's snapshot is
// rebuilt from {} + its own owner.
//
// Snapshots are immutable once published; replaced snapshots are retired
// through EBR (readers hold a guard across their use of getSet results).
#pragma once

#include <cstdint>

#include "wfl/mem/arena.hpp"
#include "wfl/mem/ebr.hpp"
#include "wfl/util/align.hpp"
#include "wfl/util/assert.hpp"

namespace wfl {

// Upper bound on members of one snapshot; also bounds the announcement
// array capacity C. 64 covers every experiment in this repo (κ per lock for
// the known-bounds algorithm, P for the adaptive variant).
inline constexpr std::uint32_t kMaxSetCap = 64;

template <typename T>
struct SetSnap {
  std::uint32_t count = 0;
  std::uint32_t self_index = 0;  // pool slot, recorded at allocation
  T items[kMaxSetCap];

  bool contains(T x) const {
    for (std::uint32_t i = 0; i < count; ++i) {
      if (items[i] == x) return true;
    }
    return false;
  }
};

// Shared memory-management context for all active sets of one lock space.
template <typename T>
struct SetMem {
  IndexPool<SetSnap<T>>& pool;
  EbrDomain& ebr;
  // Optional per-process snapshot-slot caches, indexed by EBR pid and owned
  // by the lock space. When present, climb() allocates and retires snapshot
  // slots through the calling process's cache, so a steady-state attempt
  // touches no shared freelist line (lock spaces install these; standalone
  // sets — baselines, unit tests — run directly against the pool).
  CachePadded<SlotCache<SetSnap<T>>>* caches = nullptr;

  SlotCache<SetSnap<T>>* cache(int pid) {
    return caches == nullptr ? nullptr : &*caches[pid];
  }

  static void free_snap(void* ctx, std::uint32_t handle) {
    static_cast<IndexPool<SetSnap<T>>*>(ctx)->free(handle);
  }
};

template <typename Plat, typename T>
class ActiveSet {
 public:
  using Snap = SetSnap<T>;

  ActiveSet(std::uint32_t capacity, SetMem<T>& mem)
      : capacity_(capacity), mem_(mem), slots_(capacity) {
    WFL_CHECK(capacity > 0 && capacity <= kMaxSetCap);
    empty_.count = 0;
    for (auto& s : slots_) {
      s.owner.init(T{});
      s.set.init(&empty_);
    }
  }

  ActiveSet(const ActiveSet&) = delete;
  ActiveSet& operator=(const ActiveSet&) = delete;

  std::uint32_t capacity() const { return capacity_; }

  // Claims a slot for `item` and propagates. Returns the slot index (the
  // caller passes it back to remove()). Caller must hold an EBR guard for
  // `ebr_pid`. Aborts if the capacity contract (point contention <= C) is
  // violated beyond any transient amount.
  int insert(T item, int ebr_pid) {
    WFL_DASSERT(item != T{});
    // One pass almost always suffices under the contention contract; a CAS
    // can lose to a racing insert whose owner then frees a slot behind our
    // scan position, hence the bounded retry. The bound keeps wait-freedom
    // structural: exceeding it means the κ contract was violated.
    for (int pass = 0; pass < kMaxInsertPasses; ++pass) {
      for (std::uint32_t i = 0; i < capacity_; ++i) {
        if (slots_[i].owner.load() == T{} && slots_[i].owner.cas(T{}, item)) {
          climb(static_cast<int>(i), ebr_pid);
          return static_cast<int>(i);
        }
      }
    }
    WFL_CHECK_MSG(false,
                  "ActiveSet::insert found no free slot: point contention "
                  "exceeds the configured bound (kappa)");
    return -1;
  }

  // Clears the slot claimed by the previous insert and propagates.
  void remove(int slot, int ebr_pid) {
    WFL_CHECK(slot >= 0 && slot < static_cast<int>(capacity_));
    slots_[static_cast<std::size_t>(slot)].owner.store(T{});
    climb(slot, ebr_pid);
  }

  // O(1): returns the current slot-0 snapshot. Valid while the caller's EBR
  // guard (entered before this call) remains held.
  const Snap* get_set() { return slots_[0].set.load(); }

 private:
  static constexpr int kMaxInsertPasses = 8;
  static constexpr std::uint32_t kPoolLowWater = 64;

  struct Slot {
    typename Plat::template Atomic<T> owner;
    typename Plat::template Atomic<Snap*> set;
  };

  // Rebuilds snapshots from slot i down to slot 0 (two attempts per slot).
  void climb(int i, int ebr_pid) {
    // Backpressure: when the snapshot pool runs low (e.g. a preempted
    // process is pinning the epoch), try to reclaim before allocating.
    if (mem_.pool.free_count() < kPoolLowWater) {
      mem_.ebr.collect(ebr_pid);
    }
    SlotCache<Snap>* cache = mem_.cache(ebr_pid);
    for (int j = i; j >= 0; --j) {
      for (int k = 0; k < 2; ++k) {
        Snap* cur = slots_[static_cast<std::size_t>(j)].set.load();
        Snap* above = (j + 1 == static_cast<int>(capacity_))
                          ? &empty_
                          : slots_[static_cast<std::size_t>(j) + 1].set.load();
        const T member = slots_[static_cast<std::size_t>(j)].owner.load();
        const std::uint32_t idx =
            cache != nullptr ? cache->alloc() : mem_.pool.alloc();
        Snap& fresh = mem_.pool.at(idx);
        fresh.self_index = idx;
        build(fresh, *above, member);
        if (slots_[static_cast<std::size_t>(j)].set.cas(cur, &fresh)) {
          retire(cur, ebr_pid);
        } else {
          // Never published: straight back to the caller's cache.
          if (cache != nullptr) {
            cache->free(idx);
          } else {
            mem_.pool.free(idx);
          }
        }
      }
    }
  }

  void build(Snap& out, const Snap& above, T member) {
    WFL_CHECK(above.count <= kMaxSetCap);
    out.count = 0;
    for (std::uint32_t i = 0; i < above.count; ++i) {
      if (above.items[i] != member) out.items[out.count++] = above.items[i];
    }
    if (member != T{}) {
      WFL_CHECK_MSG(out.count < kMaxSetCap, "set snapshot overflow");
      out.items[out.count++] = member;
    }
  }

  void retire(Snap* snap, int ebr_pid) {
    if (snap == &empty_) return;  // the sentinel is never reclaimed
    // With caches installed the expired slot comes back to the retiring
    // process's own cache (deleters run on the retiring participant — see
    // EbrDomain::retire/collect — or under quiescent domain teardown).
    SlotCache<Snap>* cache = mem_.cache(ebr_pid);
    if (cache != nullptr) {
      mem_.ebr.retire(ebr_pid, cache, snap->self_index,
                      &SlotCache<Snap>::free_to_cache);
    } else {
      mem_.ebr.retire(ebr_pid, &mem_.pool, snap->self_index,
                      &SetMem<T>::free_snap);
    }
  }

  std::uint32_t capacity_;
  SetMem<T>& mem_;
  std::vector<Slot> slots_;
  Snap empty_;
};

}  // namespace wfl
