// Algorithm 2: a set-regular multi active set from linearizable active sets.
//
// Items carry a *flag*; multiInsert clears the flag, inserts the item into
// every set, then sets the flag (for lock descriptors, setting the flag IS
// the reveal step — it assigns the random priority, Algorithm 3 line 10).
// multiRemove unsets the flag first, then removes from every set. getSet
// filters out unflagged members, so:
//   * a getSet invoked after a multiInsert's flag-set sees the item,
//   * a getSet responding before it does not,
//   * overlapping getSets may or may not — *set regularity* (Theorem 5.1),
//     deliberately weaker than linearizability, and all the lock algorithm
//     needs.
//
// Item is a pointer type exposing flag()/set_flag()/clear_flag().
#pragma once

#include <cstdint>

#include "wfl/active/active_set.hpp"
#include "wfl/util/assert.hpp"

namespace wfl {

// Fixed-capacity result of a filtered getSet (no allocation on read paths).
template <typename T>
struct MemberList {
  std::uint32_t count = 0;
  T items[kMaxSetCap];

  void push(T x) {
    WFL_CHECK(count < kMaxSetCap);
    items[count++] = x;
  }
  const T* begin() const { return items; }
  const T* end() const { return items + count; }
};

// Inserts `item` into sets[0..n), then sets its flag (the reveal step).
// Writes the claimed slot index of sets[i] into slots_out[i].
template <typename Plat, typename T, typename SetT>
void multi_insert(T item, SetT* const* sets, int* slots_out, std::uint32_t n,
                  int ebr_pid) {
  item->clear_flag();
  for (std::uint32_t i = 0; i < n; ++i) {
    slots_out[i] = sets[i]->insert(item, ebr_pid);
  }
  item->set_flag();
}

// Removes `item` from the sets of its previous multi_insert.
template <typename Plat, typename T, typename SetT>
void multi_remove(T item, SetT* const* sets, const int* slots,
                  std::uint32_t n, int ebr_pid) {
  item->clear_flag();
  for (std::uint32_t i = 0; i < n; ++i) {
    sets[i]->remove(slots[i], ebr_pid);
  }
}

// Filtered getSet on one of the sets: only flagged members are returned.
// Caller holds an EBR guard spanning this call and any use of the members.
template <typename Plat, typename T, typename SetT>
void multi_get_set(SetT& set, MemberList<T>& out) {
  out.count = 0;
  const auto* snap = set.get_set();
  for (std::uint32_t i = 0; i < snap->count; ++i) {
    T item = snap->items[i];
    if (item->flag()) out.push(item);
  }
}

}  // namespace wfl
