#include "wfl/sim/sim.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "wfl/check/race.hpp"
#include "wfl/util/assert.hpp"

namespace wfl {

namespace {
thread_local Simulator* g_current_sim = nullptr;

// WFL_SIM_WATCHDOG_SLOTS: when set to a positive integer, every Simulator
// arms a fail-hard watchdog at that cumulative slot bound. Parsed once.
std::uint64_t env_watchdog_slots() {
  static const std::uint64_t cached = [] {
    const char* v = std::getenv("WFL_SIM_WATCHDOG_SLOTS");
    if (v == nullptr || *v == '\0') return std::uint64_t{0};
    return static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
  }();
  return cached;
}
}  // namespace

WeightedSchedule::WeightedSchedule(std::vector<double> weights,
                                   std::uint64_t seed)
    : rng_(seed) {
  WFL_CHECK(!weights.empty());
  double sum = 0;
  for (double w : weights) {
    WFL_CHECK_MSG(w >= 0, "weights must be non-negative");
    sum += w;
    cumulative_.push_back(sum);
  }
  WFL_CHECK_MSG(sum > 0, "at least one weight must be positive");
}

int WeightedSchedule::next() {
  const double r = rng_.next_double() * cumulative_.back();
  // Linear scan: schedules have few processes and this keeps the draw
  // obviously deterministic.
  for (std::size_t i = 0; i < cumulative_.size(); ++i) {
    if (r < cumulative_[i]) return static_cast<int>(i);
  }
  return static_cast<int>(cumulative_.size()) - 1;
}

int StallBurstSchedule::next() {
  if (remaining_ == 0) {
    victim_ = static_cast<int>(rng_.next_below(n_));
    remaining_ = burst_len_;
  }
  --remaining_;
  if (n_ == 1) return 0;
  // Uniform over everyone except the current victim.
  const int pick = static_cast<int>(rng_.next_below(n_ - 1));
  return pick >= victim_ ? pick + 1 : pick;
}

CrashSchedule::CrashSchedule(Schedule& inner, int n,
                             std::vector<Crash> crashes, std::uint64_t seed)
    : inner_(&inner), n_(n), crashes_(std::move(crashes)), rng_(seed) {
  WFL_CHECK(n >= 1);
  for (const Crash& c : crashes_) {
    WFL_CHECK(c.pid >= 0 && c.pid < n);
  }
  WFL_CHECK_MSG(crashes_.size() < static_cast<std::size_t>(n),
                "at least one process must survive");
}

bool CrashSchedule::crashed_at(int pid, std::uint64_t slot) const {
  for (const Crash& c : crashes_) {
    if (c.pid == pid && slot >= c.slot) return true;
  }
  return false;
}

int CrashSchedule::next() {
  const std::uint64_t slot = slot_++;
  int pick = inner_->next();
  // Bounded redraw: at most n attempts, then a deterministic linear scan —
  // the schedule stays a pure function of (construction data, slot index).
  for (int tries = 0; crashed_at(pick, slot) && tries < n_; ++tries) {
    pick = static_cast<int>(rng_.next_below(n_));
  }
  for (int off = 0; crashed_at(pick, slot) && off < n_; ++off) {
    pick = (pick + 1) % n_;
  }
  return pick;
}

Simulator::Simulator(std::uint64_t seed) : seed_(seed) {
  if (const std::uint64_t cap = env_watchdog_slots(); cap > 0) {
    enable_watchdog(cap, /*fail_hard=*/true);
  }
}

Simulator::~Simulator() = default;

int Simulator::add_process(Fiber::Body body, std::size_t stack_bytes) {
  WFL_CHECK_MSG(!in_run_, "add_process during run()");
  auto proc = std::make_unique<Proc>();
  const int pid = static_cast<int>(procs_.size());
  SplitMix64 sm(seed_ ^ (0xA5A5A5A5ULL + static_cast<std::uint64_t>(pid)));
  proc->rng.reseed(sm.next());
  proc->fiber = std::make_unique<Fiber>(std::move(body), stack_bytes);
  procs_.push_back(std::move(proc));
  return pid;
}

bool Simulator::run(Schedule& sched, std::uint64_t max_slots,
                    int required_finishers) {
  WFL_CHECK_MSG(!in_run_, "nested run()");
  WFL_CHECK_MSG(g_current_sim == nullptr, "another simulator is running");
  const int required = required_finishers >= 0
                           ? required_finishers
                           : static_cast<int>(procs_.size());
  WFL_CHECK(required <= static_cast<int>(procs_.size()));
  in_run_ = true;
  g_current_sim = this;
  // Analysis-layer boundary: setup happens-before everything in the run.
  race::run_boundary(/*entering=*/true, seed_);

  while (finished_ < required && slots_used_ < max_slots) {
    if (watchdog_slots_ > 0 && slots_used_ >= watchdog_slots_ &&
        !watchdog_fired_) {
      watchdog_fired_ = true;
      watchdog_dump_ = build_watchdog_dump();
      if (watchdog_fail_hard_) {
        std::fputs(watchdog_dump_.c_str(), stderr);
        WFL_CHECK_MSG(false, "simulator wedge watchdog fired");
      }
      break;  // report mode: end the run, let the driver inspect the dump
    }
    const int pid = sched.next();
    WFL_CHECK(pid >= 0 && pid < static_cast<int>(procs_.size()));
    if (watchdog_slots_ > 0) {
      trace_ring_[slots_used_ % kTraceRing] = pid;
    }
    ++slots_used_;
    Proc& p = *procs_[pid];
    if (p.done) continue;  // wasted slot: oblivious scheduler can't know
    running_pid_ = pid;
    p.fiber->resume();
    running_pid_ = -1;
    if (p.fiber->finished()) {
      p.done = true;
      ++finished_;
    }
  }

  // Everything in the run happens-before teardown on the main context.
  race::run_boundary(/*entering=*/false, seed_);
  g_current_sim = nullptr;
  in_run_ = false;
  return finished_ >= required;
}

void Simulator::enable_watchdog(std::uint64_t max_total_slots,
                                bool fail_hard) {
  WFL_CHECK_MSG(max_total_slots > 0, "watchdog bound must be positive");
  watchdog_slots_ = max_total_slots;
  watchdog_fail_hard_ = fail_hard;
  watchdog_fired_ = false;
  watchdog_dump_.clear();
}

std::string Simulator::build_watchdog_dump() const {
  std::ostringstream os;
  os << "=== simulator wedge watchdog ===\n"
     << "cumulative slots " << slots_used_ << " reached bound "
     << watchdog_slots_ << " with " << finished_ << "/" << procs_.size()
     << " processes finished\n";
  for (std::size_t pid = 0; pid < procs_.size(); ++pid) {
    const Proc& p = *procs_[pid];
    os << "  pid " << pid << ": steps=" << p.steps
       << (p.done ? " done" : " LIVE") << "\n";
  }
  const std::uint64_t shown =
      slots_used_ < kTraceRing ? slots_used_ : kTraceRing;
  os << "  last " << shown << " grants (slot:pid):";
  for (std::uint64_t i = slots_used_ - shown; i < slots_used_; ++i) {
    os << " " << i << ":" << trace_ring_[i % kTraceRing];
  }
  os << "\n[reproducer: seed=" << seed_ << " slot=" << slots_used_ << "]\n";
  return os.str();
}

std::uint64_t Simulator::steps_of(int pid) const {
  WFL_CHECK(pid >= 0 && pid < static_cast<int>(procs_.size()));
  return procs_[pid]->steps;
}

bool Simulator::is_finished(int pid) const {
  WFL_CHECK(pid >= 0 && pid < static_cast<int>(procs_.size()));
  return procs_[pid]->done;
}

Simulator* Simulator::current() { return g_current_sim; }

void Simulator::count_step_and_yield() {
  WFL_CHECK_MSG(running_pid_ >= 0, "step outside a scheduled process");
  ++procs_[running_pid_]->steps;
  Fiber::yield();
}

std::uint64_t Simulator::rand_u64() {
  WFL_CHECK_MSG(running_pid_ >= 0, "rand outside a scheduled process");
  return procs_[running_pid_]->rng.next();
}

std::uint64_t Simulator::current_steps() const {
  WFL_CHECK_MSG(running_pid_ >= 0, "steps outside a scheduled process");
  return procs_[running_pid_]->steps;
}

int Simulator::current_pid() const { return running_pid_; }

}  // namespace wfl
