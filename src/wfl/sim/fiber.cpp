#include "wfl/sim/fiber.hpp"

#include <cstdint>

#include "wfl/util/assert.hpp"

namespace wfl {

namespace {
thread_local Fiber* g_current_fiber = nullptr;
}  // namespace

Fiber* Fiber::current() { return g_current_fiber; }

Fiber::Fiber(Body body, std::size_t stack_bytes)
    : body_(std::move(body)), stack_(new char[stack_bytes]) {
  WFL_CHECK(body_ != nullptr);
  WFL_CHECK(getcontext(&ctx_) == 0);
  ctx_.uc_stack.ss_sp = stack_.get();
  ctx_.uc_stack.ss_size = stack_bytes;
  ctx_.uc_link = &return_ctx_;  // body return falls back to the resumer
  // makecontext only passes ints; smuggle the this-pointer as two halves.
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xFFFFFFFFu));
}

Fiber::~Fiber() {
  // Destroying a suspended (unfinished) fiber leaks whatever its stack owns;
  // the simulator only destroys fibers after run() drains them or at
  // process teardown, where that is acceptable by construction.
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  const auto self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  self->run_body();
}

void Fiber::run_body() {
  body_();
  finished_ = true;
  // uc_link returns to return_ctx_ (the most recent resume()).
}

void Fiber::resume() {
  WFL_CHECK_MSG(!finished_, "resume() on a finished fiber");
  Fiber* prev = g_current_fiber;
  g_current_fiber = this;
  started_ = true;
  WFL_CHECK(swapcontext(&return_ctx_, &ctx_) == 0);
  g_current_fiber = prev;
}

void Fiber::yield() {
  Fiber* self = g_current_fiber;
  WFL_CHECK_MSG(self != nullptr, "Fiber::yield() outside a fiber");
  WFL_CHECK(swapcontext(&self->ctx_, &self->return_ctx_) == 0);
}

}  // namespace wfl
