// Deterministic execution simulator for the paper's model (§4).
//
// A logical process is a fiber; a *step* is one shared-memory operation (or
// one explicit delay step). The scheduler grants steps one at a time
// according to a Schedule that is computed purely from a seed — i.e., the
// schedule is fixed before the execution observes anything, which is exactly
// the paper's *oblivious scheduler adversary*. Weighted and stall-burst
// schedules express "a process can be delayed arbitrarily".
//
// The *adaptive player adversary* is expressed in experiment code: process
// bodies may inspect any shared state (including revealed priorities) when
// deciding when to start an attempt — the model allows this and our fairness
// experiments exploit it (see bench/exp_ablation.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "wfl/util/fiber.hpp"
#include "wfl/util/rng.hpp"

namespace wfl {

// A schedule maps successive time slots to process ids. Implementations must
// derive every decision from construction-time data (seed, weights) only —
// never from execution state — to remain oblivious.
class Schedule {
 public:
  virtual ~Schedule() = default;
  virtual int next() = 0;
};

class RoundRobinSchedule final : public Schedule {
 public:
  explicit RoundRobinSchedule(int n) : n_(n) {}
  int next() override { return pos_ = (pos_ + 1) % n_; }

 private:
  int n_;
  int pos_ = -1;
};

class UniformSchedule final : public Schedule {
 public:
  UniformSchedule(int n, std::uint64_t seed) : n_(n), rng_(seed) {}
  int next() override { return static_cast<int>(rng_.next_below(n_)); }

 private:
  int n_;
  Xoshiro256 rng_;
};

// Processes are picked with the given weights; a near-zero weight models a
// process the adversary delays for a very long time.
class WeightedSchedule final : public Schedule {
 public:
  WeightedSchedule(std::vector<double> weights, std::uint64_t seed);
  int next() override;

 private:
  std::vector<double> cumulative_;
  Xoshiro256 rng_;
};

// Uniform schedule, except that periodically one process (chosen by seed) is
// completely starved for a burst of slots — an oblivious pattern that still
// produces highly skewed interleavings.
class StallBurstSchedule final : public Schedule {
 public:
  StallBurstSchedule(int n, std::uint64_t seed, std::uint64_t burst_len)
      : n_(n), burst_len_(burst_len), rng_(seed) {}
  int next() override;

 private:
  int n_;
  std::uint64_t burst_len_;
  Xoshiro256 rng_;
  int victim_ = -1;
  std::uint64_t remaining_ = 0;
};

// Wraps an inner schedule and crash-fails chosen processes: after a victim's
// crash slot has passed, slots the inner schedule would grant to it are
// re-drawn uniformly among the other processes. A crashed process simply
// never runs again — the model's "arbitrarily delayed" taken to the limit,
// which is exactly the failure mode wait-freedom must tolerate. All
// decisions derive from construction-time data (victims, slots, seed) plus
// the slot index, so the composite schedule remains oblivious.
class CrashSchedule final : public Schedule {
 public:
  struct Crash {
    int pid;
    std::uint64_t slot;  // first slot at which the process no longer runs
  };

  CrashSchedule(Schedule& inner, int n, std::vector<Crash> crashes,
                std::uint64_t seed);
  int next() override;

 private:
  bool crashed_at(int pid, std::uint64_t slot) const;

  Schedule* inner_;
  int n_;
  std::vector<Crash> crashes_;
  Xoshiro256 rng_;
  std::uint64_t slot_ = 0;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Registers a logical process. All processes must be added before run().
  // The body is a Fiber::Body (inline-storage FixedFunction): capture packs
  // beyond its capacity belong in a struct the lambda references.
  int add_process(Fiber::Body body, std::size_t stack_bytes = 128 * 1024);

  // Grants steps per `sched` until every process body returned or max_slots
  // slots were consumed. Returns true iff all processes finished. Slots
  // granted to finished processes are wasted (the oblivious scheduler does
  // not know who is done).
  //
  // `required_finishers` supports crash experiments: when >= 0, run()
  // returns true as soon as that many processes have finished (a crashed
  // process never finishes, so waiting for all of them would spin until
  // max_slots).
  bool run(Schedule& sched, std::uint64_t max_slots,
           int required_finishers = -1);

  // Wedge watchdog. Harness loops around run() (exp_crash, the fuzz
  // campaign, any run-until-survivors retry loop) traditionally pass a
  // huge max_slots and rely on forward progress; a wedge then hangs ctest
  // with no diagnostics. enable_watchdog() arms a CUMULATIVE bound on
  // slots_used(): crossing it inside run() captures a dump — per-process
  // step counts and done flags, the most recent slot grants, and a
  // `[reproducer: seed=S slot=N]` line — then either aborts via the
  // assertion machinery (fail_hard, the default: the test fails loudly
  // instead of spinning) or ends the run() early with watchdog_fired()
  // set so a driver (the fuzzer) can treat the overrun as a finding.
  //
  // Every Simulator also arms a fail-hard watchdog from the
  // WFL_SIM_WATCHDOG_SLOTS env var when set, so existing suites inherit
  // hang protection with no code changes.
  void enable_watchdog(std::uint64_t max_total_slots, bool fail_hard = true);
  bool watchdog_fired() const { return watchdog_fired_; }
  const std::string& watchdog_dump() const { return watchdog_dump_; }

  int process_count() const { return static_cast<int>(procs_.size()); }
  int finished_count() const { return finished_; }
  bool is_finished(int pid) const;
  std::uint64_t steps_of(int pid) const;
  std::uint64_t slots_used() const { return slots_used_; }
  std::uint64_t seed() const { return seed_; }

  // --- hooks used by SimPlat (valid only while run() is active) ---
  static Simulator* current();
  // Counts one step for the running process, then yields to the scheduler.
  void count_step_and_yield();
  std::uint64_t rand_u64();          // running process's deterministic PRNG
  std::uint64_t current_steps() const;  // running process's step count
  int current_pid() const;

 private:
  struct Proc {
    std::unique_ptr<Fiber> fiber;
    std::uint64_t steps = 0;
    Xoshiro256 rng{0};
    bool done = false;
  };

  std::string build_watchdog_dump() const;

  std::uint64_t seed_;
  std::vector<std::unique_ptr<Proc>> procs_;
  int running_pid_ = -1;
  int finished_ = 0;
  std::uint64_t slots_used_ = 0;
  bool in_run_ = false;

  // Watchdog state (see enable_watchdog).
  static constexpr int kTraceRing = 64;
  std::uint64_t watchdog_slots_ = 0;  // 0 = disarmed
  bool watchdog_fail_hard_ = true;
  bool watchdog_fired_ = false;
  std::string watchdog_dump_;
  int trace_ring_[kTraceRing] = {};  // recent grants, indexed by slot
};

}  // namespace wfl
