// Compatibility shim: the fiber runtime moved to util/fiber.hpp when the
// async executor started sharing it with the simulator. Include that
// directly in new code.
#pragma once

#include "wfl/util/fiber.hpp"  // IWYU pragma: export
