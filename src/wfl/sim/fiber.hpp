// Minimal stackful fiber on ucontext.
//
// The simulator runs every logical process as a fiber on one OS thread, so a
// "schedule" is simply the order in which fibers are resumed; execution is
// bit-for-bit deterministic given the schedule, which is what lets us play
// the paper's oblivious adversarial scheduler exactly.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>

namespace wfl {

class Fiber {
 public:
  using Body = std::function<void()>;

  explicit Fiber(Body body, std::size_t stack_bytes = 128 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Switches into the fiber; returns when the fiber yields or its body
  // returns. Must not be called on a finished fiber.
  void resume();

  // Called from inside a running fiber: suspends it and returns control to
  // the resume() caller.
  static void yield();

  bool finished() const { return finished_; }

  // The fiber currently executing on this thread, or nullptr.
  static Fiber* current();

 private:
  static void trampoline(unsigned hi, unsigned lo);
  void run_body();

  Body body_;
  std::unique_ptr<char[]> stack_;
  ucontext_t ctx_{};
  ucontext_t return_ctx_{};
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace wfl
