// Scripted adaptive *player adversary* harness (§2, §4 of the paper).
//
// The model splits adversarial power in two: the scheduler adversary is
// oblivious (Schedule objects are pure functions of their seeds), but the
// player adversary is adaptive — it sees the full history, including every
// revealed priority, and chooses when each process starts its next attempt
// and on which locks. In this library the player adversary is ordinary
// process-body code: bodies may inspect any shared state before calling
// try_locks. This header packages the inspection patterns the fairness
// experiments (exp_ablation, exp_fairness) and tests share, so an attack
// script reads like the strategy it implements.
//
// Everything here is *attacker-side* instrumentation: it holds EBR guards
// correctly but deliberately reads other attempts' descriptors — exactly
// what the model's adaptive player is allowed to do, and nothing an
// application should ever include.
#pragma once

#include <cstdint>

#include "wfl/core/lock_table.hpp"
#include "wfl/core/session.hpp"
#include "wfl/platform/sim.hpp"

namespace wfl {

// A view of one lock's competition state, as the adaptive player sees it.
struct FieldView {
  std::int64_t strongest_priority = -1;  // max over active, revealed members
  int active_members = 0;                // status == active
  int revealed_members = 0;              // priority > 0
};

// Adversary-side observer through the player's Session: all inspection
// happens under the session's scoped EbrGuard, so the observer holds no
// raw process handles and issues no manual ebr_enter/ebr_exit pairs.
template <typename Plat>
class PlayerObserver {
 public:
  using Table = LockTable<Plat>;
  using Sess = Session<Plat>;

  explicit PlayerObserver(Sess& session) : session_(&session) {}

  // Snapshot the competition on lock `id`. Takes steps (getSet + scan) —
  // the player pays for its spying like any other code.
  FieldView observe(std::uint32_t id) {
    FieldView v;
    auto guard = session_->guard();
    const auto* snap = session_->space().lock_set(id).get_set();
    for (std::uint32_t i = 0; i < snap->count; ++i) {
      auto* q = snap->items[i];
      if (q->status.load() != kStatusActive) continue;
      ++v.active_members;
      const std::int64_t pri = q->priority.load();
      if (pri > 0) {
        ++v.revealed_members;
        if (pri > v.strongest_priority) v.strongest_priority = pri;
      }
    }
    return v;
  }

  // Polls `id` until pred(view) holds or `budget` polls elapse, idling one
  // step between polls (the player chooses its own start time by waiting).
  // Returns true if the predicate fired.
  template <typename Pred>
  bool wait_for(std::uint32_t id, int budget, Pred pred) {
    for (int i = 0; i < budget; ++i) {
      if (pred(observe(id))) return true;
      Plat::step();
    }
    return false;
  }

 private:
  Sess* session_;
};

// Priority threshold helpers: priorities are uniform in (0, 2^62], so the
// top fraction `f` of the range starts at (1 - f)·2^62.
constexpr std::int64_t priority_top_fraction(double f) {
  return static_cast<std::int64_t>(
      (1.0 - f) * static_cast<double>(1ull << 62));
}

}  // namespace wfl
