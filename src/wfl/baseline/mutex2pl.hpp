// Baseline: ordered two-phase locking over std::mutex (OS-blocking).
// RealPlat-only comparator for the throughput benchmark: what most systems
// actually deploy for multi-lock critical sections.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "wfl/core/descriptor.hpp"
#include "wfl/util/assert.hpp"

namespace wfl {

class Mutex2PL {
 public:
  explicit Mutex2PL(int num_locks) {
    WFL_CHECK(num_locks > 0);
    locks_.reserve(static_cast<std::size_t>(num_locks));
    for (int i = 0; i < num_locks; ++i) {
      locks_.push_back(std::make_unique<std::mutex>());
    }
  }

  int num_locks() const { return static_cast<int>(locks_.size()); }

  template <typename Fn>
  void locked(std::span<const std::uint32_t> ids, Fn&& fn) {
    std::uint32_t sorted[kMaxLocksPerAttempt];
    WFL_CHECK_MSG(ids.size() <= kMaxLocksPerAttempt,
                  "lock set exceeds the shared per-attempt budget");
    std::copy(ids.begin(), ids.end(), sorted);
    std::sort(sorted, sorted + ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) locks_[sorted[i]]->lock();
    fn();
    for (std::size_t i = ids.size(); i > 0; --i) {
      locks_[sorted[i - 1]]->unlock();
    }
  }

  template <typename Fn>
  bool try_locked(std::span<const std::uint32_t> ids, Fn&& fn) {
    std::uint32_t sorted[kMaxLocksPerAttempt];
    WFL_CHECK_MSG(ids.size() <= kMaxLocksPerAttempt,
                  "lock set exceeds the shared per-attempt budget");
    std::copy(ids.begin(), ids.end(), sorted);
    std::sort(sorted, sorted + ids.size());
    std::size_t held = 0;
    for (; held < ids.size(); ++held) {
      if (!locks_[sorted[held]]->try_lock()) break;
    }
    if (held != ids.size()) {
      for (std::size_t i = held; i > 0; --i) locks_[sorted[i - 1]]->unlock();
      return false;
    }
    fn();
    for (std::size_t i = ids.size(); i > 0; --i) {
      locks_[sorted[i - 1]]->unlock();
    }
    return true;
  }

 private:
  std::vector<std::unique_ptr<std::mutex>> locks_;
};

}  // namespace wfl
