// Baseline: a deterministic wait-free universal construction in the style
// of Herlihy's (§3 "The Need for Randomization": "the problem can be solved
// in O(n) steps deterministically using, for example, Herlihy's universal
// wait-free construction ... announce when they are hungry and then try to
// help all others, using a shared pointer to the philosopher currently
// being helped").
//
// Shape: announce-then-agree. A process publishes its operation record in
// its announce slot, then repeatedly helps the completion frontier: at
// frontier position c, every helper scans the announce slots round-robin
// starting at c mod P, proposes the first pending record it finds by
// CASing it into chosen[c], executes the agreed record's thunk through the
// record's own idempotence log, marks it done, and advances the frontier.
//
// Wait-freedom is deterministic: once announced, an operation is the
// round-robin-first candidate within at most P frontier positions, so it
// is chosen after at most O(P) other operations; each costs O(P + T)
// steps (scan + thunk), giving O(P(P+T)) steps per operation regardless of
// the schedule — the Θ(P)-factor cost the paper's randomized algorithm
// removes, which is exactly what exp_philosophers quantifies.
//
// Being a universal construction, it ignores conflict structure entirely:
// ALL operations serialize, even ones touching disjoint data. Records are
// never recycled within a run (a straggling helper may replay a record's
// thunk long after completion; reuse would hand it another op's log), so
// the construction is sized for the run and reset() is quiescent-only —
// an accepted cost of a baseline harness, not a production artifact.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "wfl/idem/idem.hpp"
#include "wfl/util/assert.hpp"
#include "wfl/util/fixed_function.hpp"

namespace wfl {

template <typename Plat>
class HerlihyUniversal {
 public:
  using Thunk = FixedFunction<void(IdemCtx<Plat>&), 64>;

  // `procs` processes, each executing at most `max_ops_per_proc` before
  // the next quiescent reset().
  HerlihyUniversal(int procs, std::uint32_t max_ops_per_proc)
      : procs_(procs), ops_cap_(max_ops_per_proc) {
    WFL_CHECK(procs >= 1 && max_ops_per_proc >= 1);
    const std::size_t total =
        static_cast<std::size_t>(procs) * max_ops_per_proc;
    records_.resize(total);
    for (auto& r : records_) r = std::make_unique<Record>();
    chosen_.resize(total + 1);
    for (auto& c : chosen_) {
      c = std::make_unique<typename Plat::template Atomic<std::uint32_t>>();
      c->init(kNone);
    }
    pending_.resize(static_cast<std::size_t>(procs));
    for (auto& p : pending_) {
      p = std::make_unique<typename Plat::template Atomic<std::uint32_t>>();
      p->init(kNone);
    }
    used_.assign(static_cast<std::size_t>(procs), 0);
    completed_.init(0);
  }

  // Executes `thunk` wait-free on behalf of process `pid`; returns the
  // linearization index (frontier position at which it was chosen).
  std::uint64_t execute(int pid, Thunk thunk) {
    WFL_CHECK(pid >= 0 && pid < procs_);
    const std::uint32_t seq = used_[static_cast<std::size_t>(pid)]++;
    WFL_CHECK_MSG(seq < ops_cap_,
                  "HerlihyUniversal per-process op budget exhausted");
    const std::uint32_t rid =
        static_cast<std::uint32_t>(pid) * ops_cap_ + seq;
    Record& mine = *records_[rid];
    mine.thunk = std::move(thunk);
    mine.done.init(0);
    mine.linearized.init(0);
    // Announce: from here on any helper can execute us.
    pending_[static_cast<std::size_t>(pid)]->store(rid);
    while (mine.done.load() == 0) advance();
    // Un-announce (benign race: helpers re-reading a done record skip it).
    pending_[static_cast<std::size_t>(pid)]->store(kNone);
    return mine.linearized.load() - 1;
  }

  std::uint64_t completed() const { return completed_.peek(); }

  // Quiescent-only.
  void reset() {
    for (auto& r : records_) {
      r->done.init(0);
      r->thunk.reset();
      r->log.reset();
      r->linearized.init(0);
    }
    for (auto& c : chosen_) c->init(kNone);
    for (auto& p : pending_) p->init(kNone);
    for (auto& u : used_) u = 0;
    completed_.init(0);
  }

 private:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  struct Record {
    Thunk thunk;
    ThunkLog<Plat> log;
    typename Plat::template Atomic<std::uint32_t> done{0};
    // First-writer-wins (stored as c+1; 0 = unset): a stale helper that
    // proposes an already-done record at a later frontier position must
    // not be able to move the linearization index.
    typename Plat::template Atomic<std::uint64_t> linearized{0};
  };

  // One helping round at the current frontier: agree on a record for this
  // position (round-robin scan), execute it, advance. Completes at least
  // one operation whenever any operation is pending.
  void advance() {
    const std::uint64_t c = completed_.load();
    WFL_CHECK_MSG(c < chosen_.size(), "chosen history exhausted");
    auto& slot = *chosen_[c];
    std::uint32_t rid = slot.load();
    if (rid == kNone) {
      // Propose the round-robin-first pending record. All helpers scan in
      // the same cyclic order, so proposals rarely conflict and no
      // announced record is bypassed more than P frontier positions.
      const int start = static_cast<int>(c % static_cast<std::uint64_t>(
                                                 procs_));
      std::uint32_t cand = kNone;
      for (int k = 0; k < procs_; ++k) {
        const int p = (start + k) % procs_;
        const std::uint32_t r =
            pending_[static_cast<std::size_t>(p)]->load();
        if (r != kNone && records_[r]->done.load() == 0) {
          cand = r;
          break;
        }
      }
      if (cand == kNone) return;  // nothing pending anywhere
      slot.cas(kNone, cand);
      rid = slot.load();
      if (rid == kNone) return;
    }
    Record& rec = *records_[rid];
    if (rec.done.load() == 0) {
      rec.linearized.cas(0, c + 1);
      if (rec.thunk) {
        IdemCtx<Plat> ctx(rec.log, rid * kMaxThunkOps);
        rec.thunk(ctx);
      }
      rec.done.store(1);
    }
    completed_.cas(c, c + 1);
  }

  int procs_;
  std::uint32_t ops_cap_;
  std::vector<std::unique_ptr<Record>> records_;
  std::vector<std::unique_ptr<typename Plat::template Atomic<std::uint32_t>>>
      chosen_;
  std::vector<std::unique_ptr<typename Plat::template Atomic<std::uint32_t>>>
      pending_;
  std::vector<std::uint32_t> used_;  // owner-private op counters
  typename Plat::template Atomic<std::uint64_t> completed_;
};

}  // namespace wfl
