// The backend registry: every lock discipline in the repo, as a
// compile-time list experiment drivers sweep with BackendList::for_each.
//
// Adding a backend here (and nothing else) puts it into bench_apps,
// exp_throughput, exp_crash, exp_waitfree_tail and the backend-equivalence
// tests — one line of registration instead of a bespoke driver per
// experiment.
#pragma once

#include "wfl/baseline/mutex2pl_backend.hpp"
#include "wfl/baseline/spin2pl_backend.hpp"
#include "wfl/baseline/turek_backend.hpp"
#include "wfl/core/adaptive_backend.hpp"
#include "wfl/core/backend.hpp"
#include "wfl/platform/real.hpp"
#include "wfl/platform/sim.hpp"

namespace wfl {

static_assert(LockBackend<WflBackend<SimPlat>>);
static_assert(LockBackend<WflBackend<RealPlat>>);
static_assert(LockBackend<TurekBackend<SimPlat>>);
static_assert(LockBackend<TurekBackend<RealPlat>>);
static_assert(LockBackend<Spin2plBackend<SimPlat>>);
static_assert(LockBackend<Spin2plBackend<RealPlat>>);
static_assert(LockBackend<Mutex2plBackend>);
// The §6.2 unknown-bounds variant also satisfies the concept (it is kept
// out of the sweep registries below — see core/adaptive_backend.hpp).
static_assert(LockBackend<AdaptiveWflBackend<SimPlat>>);
static_assert(LockBackend<AdaptiveWflBackend<RealPlat>>);

// Deterministic-simulator sweeps: every discipline that can run as fibers.
// (Mutex2PL blocks the OS thread all fibers share, so it is real-only.)
template <typename Plat>
using SimBackends =
    BackendList<WflBackend<Plat>, TurekBackend<Plat>, Spin2plBackend<Plat>>;

// Real-thread sweeps: everything.
using RealBackends =
    BackendList<WflBackend<RealPlat>, TurekBackend<RealPlat>,
                Spin2plBackend<RealPlat>, Mutex2plBackend>;

}  // namespace wfl
