// Baseline: lock-free locks with recursive helping, in the style of
// Turek–Shasha–Prakash (PODS '92) and Barnes (SPAA '93) as recounted in §3
// of the paper.
//
// Each lock holds a pointer to the descriptor of its current owner. An
// operation acquires its (sorted) lock set left to right with CAS; when it
// finds a lock held, it *helps*: it runs the owner's whole operation
// (recursively helping whatever that owner is blocked on), then retries.
// Critical sections are executed through the same idempotence construction
// the wait-free locks use, so helpers replaying a thunk are harmless.
//
// Properties (faithful to the originals): lock-free — some operation always
// completes; NOT wait-free — a given operation can help forever and lose
// every race (no priorities, no fairness bound). This is the comparison
// point that motivates the paper.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "wfl/core/descriptor.hpp"
#include "wfl/idem/idem.hpp"
#include "wfl/mem/arena.hpp"
#include "wfl/mem/ebr.hpp"
#include "wfl/util/assert.hpp"
#include "wfl/util/fixed_function.hpp"

namespace wfl {

template <typename Plat>
class TurekLockSpace {
 public:
  struct Desc {
    using Thunk = FixedFunction<void(IdemCtx<Plat>&), 64>;
    std::uint32_t lock_ids[kMaxLocksPerAttempt] = {};  // sorted
    std::uint32_t lock_count = 0;
    Thunk thunk;
    std::uint32_t tag_base = 0;
    typename Plat::template Atomic<std::uint32_t> done;
    ThunkLog<Plat> log;

    void reinit(std::uint64_t serial) {
      lock_count = 0;
      thunk.reset();
      tag_base = idem_tag_base(serial);  // never-zero, wrap-safe (idem.hpp)
      done.init(0);
      log.reset();
    }
  };
  using Thunk = typename Desc::Thunk;

  struct Process {
    int ebr_pid = -1;
  };

  TurekLockSpace(int max_procs, int num_locks)
      : desc_pool_(std::max(1024, max_procs * 128)), ebr_(max_procs) {
    WFL_CHECK(max_procs > 0 && num_locks > 0);
    owners_.resize(static_cast<std::size_t>(num_locks));
    for (auto& o : owners_) o = std::make_unique<OwnerCell>();
  }

  Process register_process() { return Process{ebr_.register_participant()}; }

  int num_locks() const { return static_cast<int>(owners_.size()); }

  // Executes `thunk` under the given locks. Always succeeds (it is an
  // operation, not an attempt) but may take unboundedly many of the
  // caller's steps under contention — the lock-free-not-wait-free deal.
  void apply(Process proc, std::span<const std::uint32_t> lock_ids,
             Thunk thunk) {
    WFL_CHECK(proc.ebr_pid >= 0);
    WFL_CHECK_MSG(lock_ids.size() <= kMaxLocksPerAttempt,
                  "lock set exceeds the shared per-attempt budget");
    const std::uint32_t didx = desc_pool_.alloc();
    Desc& d = desc_pool_.at(didx);
    d.reinit(serial_.fetch_add(1, std::memory_order_relaxed));
    d.lock_count = static_cast<std::uint32_t>(lock_ids.size());
    for (std::size_t i = 0; i < lock_ids.size(); ++i) {
      WFL_CHECK(lock_ids[i] < owners_.size());
      d.lock_ids[i] = lock_ids[i];
    }
    std::sort(d.lock_ids, d.lock_ids + d.lock_count);
    for (std::uint32_t i = 1; i < d.lock_count; ++i) {
      WFL_CHECK_MSG(d.lock_ids[i] != d.lock_ids[i - 1], "duplicate lock");
    }
    d.thunk = std::move(thunk);

    ebr_.enter(proc.ebr_pid);
    help(d, 0);
    ebr_.exit(proc.ebr_pid);
    ebr_.retire(proc.ebr_pid, this, didx, &free_descriptor);
  }

  std::uint64_t helps() const {
    return helps_.load(std::memory_order_relaxed);
  }

  // Crash-harness support: release `p`'s EBR guard on its behalf. Legal
  // ONLY when the process provably takes no further steps. See
  // EbrDomain::abandon.
  void abandon_process(Process p) { ebr_.abandon(p.ebr_pid); }

  // Orderly end-of-session (BasicSession's destructor). Turek pids are not
  // recycled; releasing just drops any guard held at teardown.
  void release_process(Process p) { ebr_.abandon(p.ebr_pid); }

 private:
  struct OwnerCell {
    typename Plat::template Atomic<Desc*> owner{nullptr};
  };

  static void free_descriptor(void* ctx, std::uint32_t handle) {
    static_cast<TurekLockSpace*>(ctx)->desc_pool_.free(handle);
  }

  // Drives `d` to completion: acquire remaining locks in order, helping
  // (recursively) any current owner encountered. Depth is bounded by the
  // number of processes — the helping chain d1→d2→… follows strictly
  // increasing lock ids (each owner blocks on a lock above the ones it
  // holds), so it cannot cycle.
  void help(Desc& d, int depth) {
    WFL_CHECK_MSG(depth < kMaxHelpDepth, "helping chain exceeded bound");
    while (d.done.load() == 0) {
      for (std::uint32_t i = 0; i < d.lock_count && d.done.load() == 0; ++i) {
        auto& cell = owners_[d.lock_ids[i]]->owner;
        for (;;) {
          Desc* cur = cell.load();
          if (cur == &d) break;  // already ours (possibly via a helper)
          if (d.done.load() != 0) break;
          if (cur == nullptr) {
            if (cell.cas(nullptr, &d)) break;
            continue;  // lost the race; re-read
          }
          // Occupied: recursively help the owner finish, then retry. While
          // d's status is not done, nothing releases locks already held for
          // d (owner cells change only null→x and x→null-after-done), so
          // held locks stay held across the helping excursion.
          helps_.fetch_add(1, std::memory_order_relaxed);
          help(*cur, depth + 1);
        }
      }
      if (d.done.load() == 0) {
        if (d.thunk) {
          IdemCtx<Plat> m(d.log, d.tag_base);
          d.thunk(m);
        }
        d.done.store(1);
      }
    }
    // Release: anyone (owner or helper) may clear; CAS keeps it exact.
    for (std::uint32_t i = 0; i < d.lock_count; ++i) {
      owners_[d.lock_ids[i]]->owner.cas(&d, nullptr);
    }
  }

  static constexpr int kMaxHelpDepth = 128;

  IndexPool<Desc> desc_pool_;
  EbrDomain ebr_;
  std::vector<std::unique_ptr<OwnerCell>> owners_;
  std::atomic<std::uint64_t> serial_{1};
  std::atomic<std::uint64_t> helps_{0};
};

}  // namespace wfl
