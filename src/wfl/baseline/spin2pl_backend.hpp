// LockBackend adapter over Spin2PL: blocking ordered two-phase locking
// with test-and-set spinlocks, behind the unified submit() shape.
//
// Policy mapping (the honest reading of an attempt-shaped blocking
// discipline):
//   * one attempt = try_locked with the space's bounded per-lock patience:
//     it either acquires the whole sorted set or releases what it got and
//     reports a loss — so attempts always terminate, but a *held* lock
//     fails every attempt for as long as its holder sits on it (forever,
//     if the holder crashed — the wedge exp_crash measures);
//   * Policy::retry() keeps attempting with no bound: termination depends
//     on the other holders, which is exactly the blocking semantics;
//   * the backoff knob idles Plat::step()s between failed attempts.
//
// Critical sections run exactly once under mutual exclusion, but still
// through IdemCtx (one private per-pid log, fresh tag base per
// submission), so the same substrate thunks run unmodified and the
// idempotent Cells observe the same tagged-word protocol every other
// backend uses. This is the measured cost of the construction when nobody
// can help — the bench_apps ratio column.
#pragma once

#include <cstdint>
#include <memory>

#include "wfl/baseline/spin2pl.hpp"
#include "wfl/core/backend.hpp"

namespace wfl {

template <typename Plat>
struct Spin2plBackend {
  using Platform = Plat;

  class Space {
   public:
    using Inner = Spin2PL<Plat>;

    explicit Space(const BackendConfig& cfg)
        : cfg_(cfg.lock),
          max_procs_(cfg.max_procs),
          patience_(cfg.patience),
          inner_(cfg.num_locks),
          slots_(cfg.max_procs),
          idem_(cfg.max_procs) {
      cfg_.validate();
      WFL_CHECK(patience_ >= 1);
    }

    int num_locks() const { return inner_.num_locks(); }
    int max_procs() const { return max_procs_; }
    const LockConfig& config() const { return cfg_; }
    int patience() const { return patience_; }

    Inner& inner() { return inner_; }
    // Crash audit: a held flag after all live processes drained belongs to
    // a process that died inside its critical section.
    bool any_held() const { return inner_.any_held(); }

    int acquire_pid() { return slots_.acquire(); }
    void release_pid(int pid) { slots_.release(pid); }

    IdemCtx<Plat> ctx_for(int pid) { return idem_.ctx_for(pid); }

   private:
    LockConfig cfg_;
    int max_procs_;
    int patience_;
    Inner inner_;
    ProcSlots slots_;
    ExclusiveIdem<Plat> idem_;
  };

  using Session = SlotSession<Space>;

  static const char* name() { return "spin2pl"; }
  static BackendProgress progress() { return BackendProgress::kBlocking; }

  static std::unique_ptr<Space> make_space(const BackendConfig& cfg) {
    return std::make_unique<Space>(cfg);
  }

  template <typename F>
  static Outcome submit(Session& session, LockSetView locks, const F& f,
                        Policy policy = Policy::one_shot()) {
    Space& space = session.space();
    WFL_CHECK_MSG(locks.size() <= space.config().max_locks,
                  "lock set exceeds the configured L bound");
    const std::uint64_t before = Plat::steps();
    Outcome out;
    for (;;) {
      ++out.attempts;
      const bool won = space.inner().try_locked(
          locks,
          [&] {
            IdemCtx<Plat> m = space.ctx_for(session.pid());
            f(m);
          },
          space.patience());
      if (won) {
        out.won = true;
        break;
      }
      if (policy.max_attempts != 0 && out.attempts >= policy.max_attempts) {
        break;
      }
      out.backoff_steps += policy_backoff<Plat>(policy, out.attempts);
    }
    out.total_steps = Plat::steps() - before;
    return out;
  }
};

}  // namespace wfl
