// Baseline: blocking two-phase locking over test-and-set spinlocks.
//
// The classic practice the paper's locks are measured against: sort the
// lock set (deadlock freedom by global order), spin-acquire each, run the
// critical section directly (no helping, no idempotence — mutual exclusion
// is by blocking), release in reverse. Also provides a try_locked variant
// (acquire with bounded patience, back off on failure) so benchmarks can
// compare attempt-shaped APIs.
//
// Not wait-free, not fair: a preempted (or starved) lock holder blocks
// everyone behind it — exactly the failure mode wait-free locks remove.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "wfl/core/descriptor.hpp"
#include "wfl/util/align.hpp"
#include "wfl/util/assert.hpp"

namespace wfl {

template <typename Plat>
class Spin2PL {
 public:
  explicit Spin2PL(int num_locks) : flags_(static_cast<std::size_t>(num_locks)) {
    WFL_CHECK(num_locks > 0);
    for (auto& f : flags_) f->init(0);
  }

  Spin2PL(const Spin2PL&) = delete;
  Spin2PL& operator=(const Spin2PL&) = delete;

  int num_locks() const { return static_cast<int>(flags_.size()); }

  // Blocking: acquires all locks (sorted order), runs fn, releases.
  template <typename Fn>
  void locked(std::span<const std::uint32_t> ids, Fn&& fn) {
    std::uint32_t sorted[kMaxIds];
    const std::uint32_t n = sort_ids(ids, sorted);
    for (std::uint32_t i = 0; i < n; ++i) acquire(sorted[i]);
    fn();
    for (std::uint32_t i = n; i > 0; --i) release(sorted[i - 1]);
  }

  // Attempt-shaped: try each lock up to `patience` spins; on failure release
  // everything and report false (caller backs off / retries).
  template <typename Fn>
  bool try_locked(std::span<const std::uint32_t> ids, Fn&& fn,
                  int patience = 1) {
    std::uint32_t sorted[kMaxIds];
    const std::uint32_t n = sort_ids(ids, sorted);
    std::uint32_t held = 0;
    for (; held < n; ++held) {
      if (!try_acquire(sorted[held], patience)) break;
    }
    if (held != n) {
      for (std::uint32_t i = held; i > 0; --i) release(sorted[i - 1]);
      return false;
    }
    fn();
    for (std::uint32_t i = n; i > 0; --i) release(sorted[i - 1]);
    return true;
  }

  // Diagnostic (quiescent or crash-audit use): true if any lock is held.
  // After all live processes drained, a held flag can only belong to a
  // process that died inside its critical section — the blocking failure
  // mode exp_crash measures.
  bool any_held() const {
    for (const auto& f : flags_) {
      if (f->peek() != 0) return true;
    }
    return false;
  }

 private:
  // Shared per-attempt lock budget, so lock-set capacity agrees with
  // every other backend (core/descriptor.hpp).
  static constexpr std::uint32_t kMaxIds = kMaxLocksPerAttempt;

  static std::uint32_t sort_ids(std::span<const std::uint32_t> ids,
                                std::uint32_t* out) {
    WFL_CHECK(ids.size() <= kMaxIds);
    std::copy(ids.begin(), ids.end(), out);
    std::sort(out, out + ids.size());
    for (std::size_t i = 1; i < ids.size(); ++i) {
      WFL_CHECK_MSG(out[i] != out[i - 1], "duplicate lock in lock set");
    }
    return static_cast<std::uint32_t>(ids.size());
  }

  void acquire(std::uint32_t id) {
    auto& f = *flags_[id];
    for (;;) {
      if (f.load() == 0 && f.cas(0, 1)) return;
    }
  }

  bool try_acquire(std::uint32_t id, int patience) {
    auto& f = *flags_[id];
    for (int s = 0; s < patience; ++s) {
      if (f.load() == 0 && f.cas(0, 1)) return true;
    }
    return false;
  }

  void release(std::uint32_t id) { flags_[id]->store(0); }

  std::vector<CachePadded<typename Plat::template Atomic<std::uint32_t>>>
      flags_;
};

}  // namespace wfl
