// LockBackend adapter over TurekLockSpace: the §3 lock-free helping
// baseline behind the unified submit() shape.
//
// Policy mapping (the honest reading of a lock-free discipline):
//   * a Turek apply() is an *operation*, not an attempt — it always
//     completes (possibly by being helped), so every submission reports
//     won=true with attempts=1 and any max_attempts >= 1 is trivially
//     satisfied; backoff never engages;
//   * what is NOT bounded is the caller's own work: total_steps counts the
//     recursive helping excursions, which is exactly the quantity the
//     wait-free comparison experiments plot. pre/post_reveal_work stay 0 —
//     there is no reveal step in this discipline.
//
// Sessions recycle the underlying EBR participants: TurekLockSpace never
// recycles pids on its own (registration is monotonic up to max_procs), so
// the adapter registers each slot's process lazily, once, and hands the
// same handle to every later session on that slot. Releasing a slot drops
// any guard held on the process's behalf (legal for the same reason
// EbrDomain::abandon is: a destroyed session takes no further steps).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "wfl/baseline/turek.hpp"
#include "wfl/core/backend.hpp"

namespace wfl {

template <typename Plat>
struct TurekBackend {
  using Platform = Plat;

  class Space {
   public:
    using Inner = TurekLockSpace<Plat>;
    using Process = typename Inner::Process;

    explicit Space(const BackendConfig& cfg)
        : cfg_(cfg.lock),
          max_procs_(cfg.max_procs),
          inner_(cfg.max_procs, cfg.num_locks),
          slots_(cfg.max_procs),
          procs_(static_cast<std::size_t>(cfg.max_procs)) {
      cfg_.validate();
    }

    int num_locks() const { return inner_.num_locks(); }
    int max_procs() const { return max_procs_; }
    const LockConfig& config() const { return cfg_; }

    Inner& inner() { return inner_; }
    std::uint64_t helps() const { return inner_.helps(); }

    int acquire_pid() {
      const int pid = slots_.acquire();
      std::lock_guard<std::mutex> g(reg_mu_);
      Process& p = procs_[static_cast<std::size_t>(pid)];
      if (p.ebr_pid < 0) p = inner_.register_process();
      return pid;
    }

    void release_pid(int pid) {
      // Drop any guard the slot's process may still hold (no-op when the
      // session ended in an orderly way); the slot then becomes reusable —
      // the previous holder provably takes no further steps.
      inner_.release_process(process_of(pid));
      slots_.release(pid);
    }

    Process process_of(int pid) const {
      return procs_[static_cast<std::size_t>(pid)];
    }

   private:
    LockConfig cfg_;
    int max_procs_;
    Inner inner_;
    ProcSlots slots_;
    std::mutex reg_mu_;
    std::vector<Process> procs_;
  };

  using Session = SlotSession<Space>;

  static const char* name() { return "turek"; }
  static BackendProgress progress() { return BackendProgress::kLockFree; }

  static std::unique_ptr<Space> make_space(const BackendConfig& cfg) {
    return std::make_unique<Space>(cfg);
  }

  template <typename F>
  static Outcome submit(Session& session, LockSetView locks, const F& f,
                        Policy policy = Policy::one_shot()) {
    (void)policy;  // always one winning operation; see header comment
    Space& space = session.space();
    WFL_CHECK_MSG(locks.size() <= space.config().max_locks,
                  "lock set exceeds the configured L bound");
    const std::uint64_t before = Plat::steps();
    typename Space::Inner::Thunk thunk{F(f)};
    space.inner().apply(space.process_of(session.pid()), locks,
                        std::move(thunk));
    Outcome out;
    out.won = true;
    out.attempts = 1;
    out.total_steps = Plat::steps() - before;
    return out;
  }

  // Crash-harness hook: release the parked process's EBR guard on its
  // behalf (legal only when it provably takes no further steps).
  static void abandon(Space& space, const Session& session) {
    space.inner().abandon_process(space.process_of(session.pid()));
  }
};

}  // namespace wfl
