// Baseline: the Lehmann–Rabin randomized dining philosophers protocol
// (POPL '81), as discussed in §3 of the paper.
//
// A hungry philosopher flips a fair coin to pick a first fork, *waits*
// (blocking) until that fork is free and takes it, then checks the other
// fork: if free, takes it and eats; otherwise puts the first fork back and
// re-flips. Symmetric, deadlock-free with probability 1 — but with no
// bound on the steps until eating (the paper's Lynch–Saias–Segala
// discussion), no helping, and progress that degrades under adversarial
// scheduling. The exp_philosophers experiment contrasts its steps-to-eat
// tail with the wait-free locks' fixed bound.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "wfl/util/assert.hpp"

namespace wfl {

template <typename Plat>
class LehmannRabinTable {
 public:
  explicit LehmannRabinTable(int n_philosophers)
      : n_(n_philosophers), forks_(static_cast<std::size_t>(n_philosophers)) {
    WFL_CHECK(n_philosophers >= 2);
    for (auto& f : forks_) {
      f = std::make_unique<typename Plat::template Atomic<std::uint32_t>>();
      f->init(0);
    }
  }

  int size() const { return n_; }

  // One full hungry→eating episode for philosopher `p`. Returns the number
  // of coin-flip rounds it took (the re-flip count is the protocol's
  // instability measure). Blocking: only returns once the philosopher ate.
  // `max_rounds` is a safety valve for simulation harnesses.
  std::uint64_t dine(int p, std::uint64_t max_rounds = ~0ull) {
    const std::uint32_t left = static_cast<std::uint32_t>(p);
    const std::uint32_t right = static_cast<std::uint32_t>((p + 1) % n_);
    std::uint64_t rounds = 0;
    for (;;) {
      ++rounds;
      WFL_CHECK_MSG(rounds <= max_rounds,
                    "Lehmann-Rabin exceeded the simulation round budget");
      const bool left_first = (Plat::rand_u64() & 1) == 0;
      const std::uint32_t first = left_first ? left : right;
      const std::uint32_t second = left_first ? right : left;
      // Wait for the first fork (blocking), then grab it.
      for (;;) {
        if (forks_[first]->load() == 0 && forks_[first]->cas(0, 1)) break;
      }
      // Second fork: take it if free, else put the first back and re-flip.
      if (forks_[second]->load() == 0 && forks_[second]->cas(0, 1)) {
        // Eating: the caller's critical section runs here conceptually.
        forks_[second]->store(0);
        forks_[first]->store(0);
        return rounds;
      }
      forks_[first]->store(0);
    }
  }

 private:
  int n_;
  std::vector<std::unique_ptr<typename Plat::template Atomic<std::uint32_t>>>
      forks_;
};

}  // namespace wfl
