// LockBackend adapter over Mutex2PL: ordered two-phase locking on
// std::mutex — what most deployed systems actually do for multi-lock
// critical sections — behind the unified submit() shape.
//
// RealPlat only: an OS mutex blocks the *thread*, so parking a simulator
// fiber on it would wedge every fiber sharing that thread. The registries
// in baseline/backends.hpp therefore list this backend only for RealPlat.
//
// Policy mapping (the honest reading of an OS-blocking discipline):
//   * Policy::retry() (and any unlimited submission) maps to ONE blocking
//     locked() acquisition — attempts=1, won=true. That single "attempt"
//     may sleep unboundedly on a held mutex; reporting it as many failed
//     probes would misstate what the discipline does;
//   * a bounded Policy (max_attempts = n) maps to n try_lock passes over
//     the sorted set, with the policy's backoff between failures — the
//     attempt-shaped comparison the crash/tail experiments need.
//
// Critical sections run exactly once under mutual exclusion, through a
// private IdemCtx (same reasoning as Spin2plBackend).
//
// total_steps counts Plat::steps() like every backend, but an OS mutex
// sleeps without stepping, so blocked time is invisible to it —
// wall-clock benches (exp_throughput) are where this backend is measured.
#pragma once

#include <cstdint>
#include <memory>

#include "wfl/baseline/mutex2pl.hpp"
#include "wfl/core/backend.hpp"
#include "wfl/platform/real.hpp"

namespace wfl {

struct Mutex2plBackend {
  using Platform = RealPlat;

  class Space {
   public:
    using Inner = Mutex2PL;

    explicit Space(const BackendConfig& cfg)
        : cfg_(cfg.lock),
          max_procs_(cfg.max_procs),
          inner_(cfg.num_locks),
          slots_(cfg.max_procs),
          idem_(cfg.max_procs) {
      cfg_.validate();
    }

    int num_locks() const { return inner_.num_locks(); }
    int max_procs() const { return max_procs_; }
    const LockConfig& config() const { return cfg_; }

    Inner& inner() { return inner_; }

    int acquire_pid() { return slots_.acquire(); }
    void release_pid(int pid) { slots_.release(pid); }

    IdemCtx<RealPlat> ctx_for(int pid) { return idem_.ctx_for(pid); }

   private:
    LockConfig cfg_;
    int max_procs_;
    Inner inner_;
    ProcSlots slots_;
    ExclusiveIdem<RealPlat> idem_;
  };

  using Session = SlotSession<Space>;

  static const char* name() { return "mutex2pl"; }
  static BackendProgress progress() { return BackendProgress::kBlocking; }

  static std::unique_ptr<Space> make_space(const BackendConfig& cfg) {
    return std::make_unique<Space>(cfg);
  }

  template <typename F>
  static Outcome submit(Session& session, LockSetView locks, const F& f,
                        Policy policy = Policy::one_shot()) {
    Space& space = session.space();
    WFL_CHECK_MSG(locks.size() <= space.config().max_locks,
                  "lock set exceeds the configured L bound");
    const std::uint64_t before = RealPlat::steps();
    Outcome out;
    auto run = [&] {
      IdemCtx<RealPlat> m = space.ctx_for(session.pid());
      f(m);
    };
    if (policy.max_attempts == 0) {
      space.inner().locked(locks, run);
      out.won = true;
      out.attempts = 1;
    } else {
      for (;;) {
        ++out.attempts;
        if (space.inner().try_locked(locks, run)) {
          out.won = true;
          break;
        }
        if (out.attempts >= policy.max_attempts) break;
        out.backoff_steps += policy_backoff<RealPlat>(policy, out.attempts);
      }
    }
    out.total_steps = RealPlat::steps() - before;
    return out;
  }
};

}  // namespace wfl
