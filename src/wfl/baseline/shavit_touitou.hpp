// Baseline: software transactional memory in the style of Shavit–Touitou
// (PODC '95), as characterized in §3 of the paper: *selfish* (non-
// recursive) helping over static transactions.
//
// A transaction acquires per-lock ownerships in sorted order. On finding a
// lock owned by another transaction T:
//   * if T has already committed (acquired everything and is executing),
//     help it finish and release — bounded work, no recursion;
//   * otherwise, *abort* T (CAS its status acquiring→aborted), release the
//     ownerships T held, and retry — never recursively help an acquiring
//     transaction (the Turek/Barnes behavior this scheme rejects).
//
// Properties per the paper's discussion: lock-free but not wait-free, no
// priorities and hence no fairness bound, and the worst case admits long
// chains of aborted transactions ("as long as the size of memory") — the
// abort counter exposes exactly that pathology to the benchmarks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "wfl/core/descriptor.hpp"
#include "wfl/idem/idem.hpp"
#include "wfl/mem/arena.hpp"
#include "wfl/mem/ebr.hpp"
#include "wfl/util/assert.hpp"
#include "wfl/util/fixed_function.hpp"

namespace wfl {

template <typename Plat>
class ShavitTouitouSpace {
 public:
  enum : std::uint32_t {
    kStAcquiring = 0,
    kStCommitted = 1,
    kStAborted = 2,
    kStDone = 3,
  };

  struct Desc {
    using Thunk = FixedFunction<void(IdemCtx<Plat>&), 64>;
    std::uint32_t lock_ids[kMaxLocksPerAttempt] = {};  // sorted
    std::uint32_t lock_count = 0;
    Thunk thunk;
    std::uint32_t tag_base = 0;
    typename Plat::template Atomic<std::uint32_t> status;
    ThunkLog<Plat> log;

    void reinit(std::uint64_t serial) {
      lock_count = 0;
      thunk.reset();
      tag_base = idem_tag_base(serial);  // never-zero, wrap-safe (idem.hpp)
      status.init(kStAcquiring);
      log.reset();
    }
  };
  using Thunk = typename Desc::Thunk;

  struct Process {
    int ebr_pid = -1;
  };

  ShavitTouitouSpace(int max_procs, int num_locks)
      : desc_pool_(std::max(1024, max_procs * 64)), ebr_(max_procs) {
    WFL_CHECK(max_procs > 0 && num_locks > 0);
    owners_.resize(static_cast<std::size_t>(num_locks));
    for (auto& o : owners_) o = std::make_unique<OwnerCell>();
  }

  Process register_process() { return Process{ebr_.register_participant()}; }

  int num_locks() const { return static_cast<int>(owners_.size()); }

  // Executes `thunk` under the given locks; retries internally until the
  // transaction commits. Lock-free: some transaction always commits, but
  // *this* one can be aborted unboundedly often.
  void apply(Process proc, std::span<const std::uint32_t> lock_ids,
             Thunk thunk) {
    WFL_CHECK(proc.ebr_pid >= 0);
    WFL_CHECK_MSG(lock_ids.size() <= kMaxLocksPerAttempt,
                  "lock set exceeds the shared per-attempt budget");
    ebr_.enter(proc.ebr_pid);
    for (;;) {
      const std::uint32_t didx = desc_pool_.alloc();
      Desc& d = desc_pool_.at(didx);
      d.reinit(serial_.fetch_add(1, std::memory_order_relaxed));
      d.lock_count = static_cast<std::uint32_t>(lock_ids.size());
      for (std::size_t i = 0; i < lock_ids.size(); ++i) {
        WFL_CHECK(lock_ids[i] < owners_.size());
        d.lock_ids[i] = lock_ids[i];
      }
      std::sort(d.lock_ids, d.lock_ids + d.lock_count);
      d.thunk = std::move(thunk);

      if (acquire_all(d)) {
        // Committed: execute + release; helpers may race us harmlessly.
        finish(d);
        ebr_.exit(proc.ebr_pid);
        ebr_.retire(proc.ebr_pid, this, didx, &free_descriptor);
        return;
      }
      // Aborted: our ownerships were (or will be) cleaned by the aborter;
      // release whatever is still ours, recycle, retry with a new serial.
      aborts_.fetch_add(1, std::memory_order_relaxed);
      release_all(d);
      thunk = std::move(d.thunk);  // take the closure back for the retry
      ebr_.retire(proc.ebr_pid, this, didx, &free_descriptor);
    }
  }

  std::uint64_t aborts() const {
    return aborts_.load(std::memory_order_relaxed);
  }

 private:
  struct OwnerCell {
    typename Plat::template Atomic<Desc*> owner{nullptr};
  };

  static void free_descriptor(void* ctx, std::uint32_t handle) {
    static_cast<ShavitTouitouSpace*>(ctx)->desc_pool_.free(handle);
  }

  // Returns true if d committed, false if d was aborted.
  bool acquire_all(Desc& d) {
    for (std::uint32_t i = 0; i < d.lock_count; ++i) {
      auto& cell = owners_[d.lock_ids[i]]->owner;
      for (;;) {
        if (d.status.load() == kStAborted) return false;
        Desc* cur = cell.load();
        if (cur == &d) break;
        if (cur == nullptr) {
          if (cell.cas(nullptr, &d)) break;
          continue;
        }
        const std::uint32_t st = cur->status.load();
        if (st == kStCommitted || st == kStDone) {
          finish(*cur);  // bounded, selfish help: run + release
        } else {
          // Acquiring (or already aborted): try to abort it. The CAS can
          // lose to a concurrent commit — re-check before touching its
          // locks, because force-releasing a *committed* transaction's
          // ownerships would break mutual exclusion.
          cur->status.cas(kStAcquiring, kStAborted);
          if (cur->status.load() == kStAborted) {
            release_all(*cur);
          } else {
            finish(*cur);
          }
        }
      }
    }
    return d.status.cas(kStAcquiring, kStCommitted);
  }

  // Runs a committed transaction's thunk (idempotently) and releases.
  void finish(Desc& d) {
    if (d.status.load() == kStCommitted) {
      if (d.thunk) {
        IdemCtx<Plat> m(d.log, d.tag_base);
        d.thunk(m);
      }
      d.status.cas(kStCommitted, kStDone);
    }
    if (d.status.load() == kStDone) release_all(d);
  }

  void release_all(Desc& d) {
    for (std::uint32_t i = 0; i < d.lock_count; ++i) {
      owners_[d.lock_ids[i]]->owner.cas(&d, nullptr);
    }
  }

  IndexPool<Desc> desc_pool_;
  EbrDomain ebr_;
  std::vector<std::unique_ptr<OwnerCell>> owners_;
  std::atomic<std::uint64_t> serial_{1};
  std::atomic<std::uint64_t> aborts_{0};
};

}  // namespace wfl
