// Sessions: RAII ownership of a registered process.
//
// Before this layer existed, every caller juggled the raw `Process` value
// protocol by hand: register_process() once per thread/fiber, remember to
// never let the value outlive the space, call abandon_process() from crash
// harnesses, and bracket any inspection of shared descriptors with
// ebr_enter/ebr_exit. All four were easy to forget and none was enforced.
//
// A BasicSession owns exactly one registered process of one space:
//
//   * construction registers (reusing a released slot when one exists);
//   * destruction releases the slot — guards are dropped on the process's
//     behalf and, if the process ended in an orderly way, the pid becomes
//     available to the next session (a process crash-parked inside a
//     guarded attempt segment is abandoned instead and its slot retired —
//     see LockTable::release_process). This is safe for the same reason
//     EbrDomain::abandon is: a destroyed session can, by construction,
//     take no further steps with that process;
//   * moveable-not-copyable, so ownership of the registration is unique
//     and transfers explicitly;
//   * guard() hands out a scoped EbrGuard for inspector-style reads
//     (PlayerObserver, adversary harnesses) — re-entrant, because the
//     underlying per-shard guard depths are.
//
// BasicSession is parameterized over the space type so the same RAII shape
// serves the known-bounds LockTable and the §6.2 AdaptiveLockSpace (and
// the LockSpace facade, which forwards the registration API). `Session<
// Plat>` is the alias virtually all code wants.
#pragma once

#include <utility>

#include "wfl/core/lock_set.hpp"
#include "wfl/core/lock_table.hpp"

namespace wfl {

// Space requirements (duck-typed): Process register_process();
// release_process(Process); ebr_enter(Process); ebr_exit(Process);
// try_locks(Process, LockSetView, Thunk, AttemptInfo*).
template <typename Space>
class BasicSession {
 public:
  using Process = typename Space::Process;
  using Thunk = typename Space::Thunk;

  explicit BasicSession(Space& space)
      : space_(&space), proc_(space.register_process()) {}

  ~BasicSession() {
    if (space_ != nullptr) space_->release_process(proc_);
  }

  BasicSession(const BasicSession&) = delete;
  BasicSession& operator=(const BasicSession&) = delete;

  BasicSession(BasicSession&& other) noexcept
      : space_(std::exchange(other.space_, nullptr)), proc_(other.proc_) {}
  BasicSession& operator=(BasicSession&& other) noexcept {
    if (this != &other) {
      if (space_ != nullptr) space_->release_process(proc_);
      space_ = std::exchange(other.space_, nullptr);
      proc_ = other.proc_;
    }
    return *this;
  }

  // False only for a moved-from shell.
  bool active() const { return space_ != nullptr; }

  Space& space() const {
    WFL_DASSERT(space_ != nullptr);
    return *space_;
  }
  Process process() const { return proc_; }
  int pid() const { return proc_.ebr_pid; }

  // One tryLock attempt through this session (see LockTable::try_locks).
  // Most callers want executor.hpp's submit(), which adds the retry
  // policies and unified accounting on top of this.
  bool try_locks(LockSetView locks, Thunk thunk,
                 AttemptInfo* info = nullptr) {
    return space().try_locks(proc_, locks, std::move(thunk), info);
  }

  // Scoped reclamation protection for inspector-style reads of shared
  // descriptors/snapshots (the adaptive-player pattern). Nesting is fine:
  // guard acquisition is re-entrant per shard.
  class EbrGuard {
   public:
    explicit EbrGuard(BasicSession& session) : session_(&session) {
      session.space().ebr_enter(session.process());
    }
    ~EbrGuard() {
      if (session_ != nullptr) {
        session_->space().ebr_exit(session_->process());
      }
    }
    EbrGuard(const EbrGuard&) = delete;
    EbrGuard& operator=(const EbrGuard&) = delete;

   private:
    BasicSession* session_;
  };

  EbrGuard guard() { return EbrGuard(*this); }

 private:
  Space* space_;
  Process proc_{};
};

template <typename Space>
BasicSession(Space&) -> BasicSession<Space>;

// The session type for the known-bounds lock table. A LockSpace facade
// converts implicitly to LockTable&, so `Session<Plat> s(space)` works
// for either.
template <typename Plat>
using Session = BasicSession<LockTable<Plat>>;

}  // namespace wfl
