// The LockBackend concept: one submission shape over every lock
// implementation in the repo.
//
// The paper's headline claims are comparative — wait-free tryLocks
// (Algorithm 3) against Turek/Shasha/Prakash-style helping locks and
// against blocking two-phase locking — yet each implementation used to
// expose its own ad-hoc interface (try_locks vs apply vs locked /
// try_locked), so every comparison was a bespoke driver and every
// substrate was hard-wired to LockTable. A backend packages one lock
// discipline behind the PR-2 submit() shape:
//
//   * `Platform` — the step-counting platform the backend runs on;
//   * `Space`    — the lock universe. Uniformly constructible from a
//     BackendConfig (via make_space) and uniformly inspectable:
//     num_locks(), max_procs(), config() — non-WFL spaces carry the
//     declared workload bounds (L, T) too, and enforce L honestly;
//   * `Session`  — RAII registration of one logical process (move-only,
//     pid() < max_procs, space()); slots are recycled across sessions;
//   * `submit(session, LockSetView, thunk, Policy) -> Outcome` — one
//     bounded critical-section submission. Thunks always take
//     IdemCtx<Platform>& so the same substrate code runs replay-safe
//     under helping backends and exactly-once under blocking ones.
//
// Progress semantics are reported, not papered over: progress() says what
// an attempt/operation really guarantees, and each adapter documents how
// Policy maps onto its discipline (a blocking backend may satisfy
// Policy::retry() with one unbounded acquisition; a helping backend's
// single "attempt" may do unbounded work on others' behalf).
//
// Application substrates (apps/*.hpp) are templated on a backend, with a
// platform shorthand: `Bank<SimPlat>` means `Bank<WflBackend<SimPlat>>`
// (resolve_backend_t below), so existing wait-free call sites read
// unchanged while `Bank<TurekBackend<SimPlat>>` swaps the discipline.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "wfl/core/async_executor.hpp"
#include "wfl/core/config.hpp"
#include "wfl/core/executor.hpp"
#include "wfl/core/lock_set.hpp"
#include "wfl/core/lock_table.hpp"
#include "wfl/core/session.hpp"
#include "wfl/idem/idem.hpp"
#include "wfl/util/assert.hpp"

namespace wfl {

// What one submission guarantees about the caller's own steps.
enum class BackendProgress {
  kWaitFree,  // every attempt completes in bounded own steps (Theorem 1.1)
  kLockFree,  // operations always complete; own-step work is unbounded
  kBlocking,  // a stalled lock holder stalls the caller
};

inline const char* progress_name(BackendProgress p) {
  switch (p) {
    case BackendProgress::kWaitFree: return "wait-free";
    case BackendProgress::kLockFree: return "lock-free";
    case BackendProgress::kBlocking: return "blocking";
  }
  return "?";
}

// Uniform construction knobs. Every backend space is buildable from this
// one struct, which is what lets experiment drivers sweep a registry of
// backends instead of hand-rolling per-backend setup:
//   * `lock` — the declared workload bounds. WFL uses all of κ/L/T and the
//     delay mode; the baselines honor the L budget (submissions above it
//     abort, same as WFL) and ignore the bounds their disciplines lack;
//   * `patience` — per-lock bounded spin for attempt-shaped acquisition in
//     the blocking backends' try path (their analogue of "one attempt").
struct BackendConfig {
  LockConfig lock;
  int max_procs = 1;
  int num_locks = 1;
  int patience = 4;
};

// A no-capture thunk usable in unevaluated concept checks.
template <typename Plat>
struct NoopThunk {
  void operator()(IdemCtx<Plat>&) const {}
};

template <typename B>
concept LockBackend = requires(typename B::Space& space,
                               typename B::Session& session,
                               const BackendConfig& cfg) {
  typename B::Platform;
  typename B::Space;
  typename B::Session;
  { B::name() } -> std::convertible_to<const char*>;
  { B::progress() } -> std::same_as<BackendProgress>;
  { B::make_space(cfg) } -> std::same_as<std::unique_ptr<typename B::Space>>;
  { space.num_locks() } -> std::convertible_to<int>;
  { space.max_procs() } -> std::convertible_to<int>;
  { space.config() } -> std::convertible_to<const LockConfig&>;
  { session.space() } -> std::same_as<typename B::Space&>;
  { session.pid() } -> std::convertible_to<int>;
  { B::submit(session, LockSetView{}, NoopThunk<typename B::Platform>{},
              Policy{}) } -> std::same_as<Outcome>;
};

// ---------------------------------------------------------------------------
// The wait-free backend: the existing LockTable / Session / submit() stack,
// restated as a LockBackend. Zero adaptation — the concept was shaped on it.
// ---------------------------------------------------------------------------

template <typename Plat>
struct WflBackend {
  using Platform = Plat;
  using Space = LockTable<Plat>;
  using Session = BasicSession<Space>;

  static const char* name() { return "wflock"; }
  static BackendProgress progress() { return BackendProgress::kWaitFree; }

  static std::unique_ptr<Space> make_space(const BackendConfig& cfg) {
    return std::make_unique<Space>(cfg.lock, cfg.max_procs, cfg.num_locks);
  }

  template <typename F>
  static Outcome submit(Session& session, LockSetView locks, const F& f,
                        Policy policy = Policy::one_shot()) {
    return ::wfl::submit(session, locks, f, policy);
  }

  // Native batch submission (guard amortization; core/executor.hpp).
  static BatchOutcome submit_batch(Session& session,
                                   std::span<const PreparedOp<Plat>> ops,
                                   Policy policy = Policy::one_shot(),
                                   Outcome* per_op = nullptr) {
    return ::wfl::submit_batch(session, ops, policy, per_op);
  }

  // Crash-harness hook: see LockTable::abandon_process.
  static void abandon(Space& space, const Session& session) {
    space.abandon_process(session.process());
  }

  // Async submission capability (core/async_executor.hpp): multiplex
  // unbounded in-flight submissions onto a fixed worker pool, parking
  // losers on per-lock wait lists instead of spinning backoff.
  using AsyncExec = AsyncExecutor<Plat>;
  static std::unique_ptr<AsyncExec> make_async(
      Space& space, typename AsyncExec::Options opt = {}) {
    return std::make_unique<AsyncExec>(space, opt);
  }
};

// Capability probe for async submission. The baselines do not (and
// mostly cannot) provide it — a blocking backend's attempt pins its
// thread inside the acquisition, so there is nothing to park. Drivers
// that sweep backends branch on this and fall back to synchronous
// B::submit, which preserves semantics at the cost of one OS thread per
// concurrent submission:
//
//   if constexpr (AsyncCapableBackend<B>) { ...B::make_async(space)... }
//   else                                  { ...B::submit(session, ...)... }
template <typename B>
concept AsyncCapableBackend = requires(typename B::Space& space) {
  typename B::AsyncExec;
  { B::make_async(space) } ->
      std::same_as<std::unique_ptr<typename B::AsyncExec>>;
};

// Defaulted batch submission over any LockBackend: backends that expose a
// native submit_batch (the WFL stack, with its guard amortization) use it;
// every other backend gets the loop-of-submits semantics automatically, so
// registry sweeps and batch-shaped drivers run against all baselines
// without each adapter growing a bespoke method.
template <typename B>
BatchOutcome backend_submit_batch(
    typename B::Session& session,
    std::span<const PreparedOp<typename B::Platform>> ops,
    Policy policy = Policy::one_shot(), Outcome* per_op = nullptr) {
  if constexpr (requires { B::submit_batch(session, ops, policy, per_op); }) {
    return B::submit_batch(session, ops, policy, per_op);
  } else {
    BatchOutcome out;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const Outcome o = B::submit(session, ops[i].locks(), ops[i].armed(),
                                  policy);
      out.add(o);
      if (per_op != nullptr) per_op[i] = o;
    }
    return out;
  }
}

// Substrate shorthand resolution: a bare platform names the wait-free
// backend; anything exposing the backend member types is used as-is.
template <typename T>
concept BackendShaped = requires {
  typename T::Platform;
  typename T::Space;
  typename T::Session;
};

template <typename T>
using resolve_backend_t =
    std::conditional_t<BackendShaped<T>, T, WflBackend<T>>;

// ---------------------------------------------------------------------------
// Adapter plumbing shared by the baseline backends.
// ---------------------------------------------------------------------------

// Bounded process-slot allocator with reuse, for spaces whose underlying
// implementation has no (or non-recycling) registration. Registration is
// off every attempt path, so a plain mutex is fine (and is outside the
// step model for the same reason reclamation is — DESIGN.md #2).
class ProcSlots {
 public:
  explicit ProcSlots(int max_procs) {
    WFL_CHECK(max_procs > 0);
    free_.reserve(static_cast<std::size_t>(max_procs));
    for (int i = max_procs; i-- > 0;) free_.push_back(i);
  }

  int acquire() {
    std::lock_guard<std::mutex> g(mu_);
    WFL_CHECK_MSG(!free_.empty(),
                  "live sessions exceed the space's max_procs");
    const int pid = free_.back();
    free_.pop_back();
    return pid;
  }

  void release(int pid) {
    std::lock_guard<std::mutex> g(mu_);
    free_.push_back(pid);
  }

 private:
  std::mutex mu_;
  std::vector<int> free_;
};

// The RAII session every baseline adapter uses: owns one pid slot of one
// adapter space (acquire_pid/release_pid), mirroring BasicSession's
// move-only shape.
template <typename SpaceT>
class SlotSession {
 public:
  explicit SlotSession(SpaceT& space)
      : space_(&space), pid_(space.acquire_pid()) {}

  ~SlotSession() {
    if (space_ != nullptr) space_->release_pid(pid_);
  }

  SlotSession(const SlotSession&) = delete;
  SlotSession& operator=(const SlotSession&) = delete;

  SlotSession(SlotSession&& other) noexcept
      : space_(std::exchange(other.space_, nullptr)), pid_(other.pid_) {}
  SlotSession& operator=(SlotSession&& other) noexcept {
    if (this != &other) {
      if (space_ != nullptr) space_->release_pid(pid_);
      space_ = std::exchange(other.space_, nullptr);
      pid_ = other.pid_;
    }
    return *this;
  }

  bool active() const { return space_ != nullptr; }
  SpaceT& space() const {
    WFL_DASSERT(space_ != nullptr);
    return *space_;
  }
  int pid() const { return pid_; }

 private:
  SpaceT* space_;
  int pid_ = -1;
};

// Per-submission idempotence context for backends whose critical sections
// run exactly once under mutual exclusion (no helpers). The log lives in
// stable per-pid storage owned by the space; the tag base is drawn from a
// space-wide serial so installed words stay unique across submissions
// (the IdemCtx ctor contract).
template <typename Plat>
class ExclusiveIdem {
 public:
  explicit ExclusiveIdem(int max_procs) {
    logs_.reserve(static_cast<std::size_t>(max_procs));
    for (int i = 0; i < max_procs; ++i) {
      logs_.push_back(std::make_unique<ThunkLog<Plat>>());
    }
  }

  IdemCtx<Plat> ctx_for(int pid) {
    ThunkLog<Plat>& log = *logs_[static_cast<std::size_t>(pid)];
    log.reset();  // exclusive: nobody else can be replaying this log
    const std::uint64_t serial =
        serial_.fetch_add(1, std::memory_order_relaxed);
    return IdemCtx<Plat>(log, idem_tag_base(serial));
  }

 private:
  std::vector<std::unique_ptr<ThunkLog<Plat>>> logs_;
  std::atomic<std::uint64_t> serial_{1};
};

// ---------------------------------------------------------------------------
// Registry: a compile-time backend list experiment drivers sweep, so a new
// substrate x backend x platform combination is one line of registration
// instead of a bespoke driver.
// ---------------------------------------------------------------------------

template <typename B>
struct BackendTag {
  using type = B;
};

template <typename... Bs>
struct BackendList {
  static constexpr std::size_t size = sizeof...(Bs);

  // f is invoked once per backend with a BackendTag<B> value:
  //   list::for_each([&](auto tag) { using B = typename decltype(tag)::type; ... });
  template <typename F>
  static void for_each(F&& f) {
    (f(BackendTag<Bs>{}), ...);
  }
};

}  // namespace wfl
