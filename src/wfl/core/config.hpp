// Configuration for the wait-free lock algorithm.
#pragma once

#include <cstdint>

#include "wfl/util/assert.hpp"

namespace wfl {

// The fixed delays are what make the reveal time of an attempt a pure
// function of its start time (Observation 6.7) — the linchpin of the
// fairness proof. kTheory is the paper's Algorithm 3. kOff removes the
// delays (and with them the fairness bound, NOT safety); it is the
// "flock-style" practical mode used by the throughput benchmark and the
// delay-ablation experiment.
enum class DelayMode { kTheory, kOff };

struct LockConfig {
  // κ: promised upper bound on the point contention of any single lock
  // (live attempts whose lock set contains the lock). Sizes the
  // announcement arrays and the delays.
  std::uint32_t kappa = 4;
  // L: promised upper bound on locks per tryLock attempt.
  std::uint32_t max_locks = 2;
  // T: promised upper bound on instrumented steps per thunk.
  std::uint32_t max_thunk_steps = 4;

  // Delay constants: T0 = c0·κ²L²·T steps from attempt start to the reveal
  // step, T1 = c1·κLT steps from the reveal step to attempt end (§6
  // "Delays"). Any sufficiently large constant works; defaults are
  // validated empirically by exp_step_bound (overruns must be zero).
  double c0 = 24.0;
  double c1 = 24.0;

  DelayMode delay_mode = DelayMode::kTheory;

  // Ablation switch for experiment E10: disables the pre-insert helping
  // phase (tryLocks lines 17–20). Fairness-breaking; safety preserved.
  bool help_phase = true;

  // Practical-mode (DelayMode::kOff only) contended-path optimizations
  // (DESIGN.md §5). Neither changes kTheory executions at all — with the
  // paper's delays on, both switches are ignored so the reveal-timing
  // argument (Observation 6.7) and the helping discipline (Lemma 6.4)
  // stay exactly the paper's.
  //
  //   * fast_path — uncontended single-lock attempts publish through a
  //     per-lock thin word instead of allocating a descriptor and climbing
  //     the active set; contenders revoke the word and compete against the
  //     owner's embedded descriptor (safety argument in DESIGN.md §5.1).
  //   * cooperative_help — the pre-insert help phase lets one helper at a
  //     time drive a stalled attempt through a revocable per-descriptor
  //     claim; the rest settle for celebrate-if-won and move on
  //     (starvation-freedom argument in DESIGN.md §5.2).
  bool fast_path = true;
  bool cooperative_help = true;
  // How many foreign observations a help claim survives before the next
  // observer revokes it and drives the attempt itself (DESIGN.md §5.2).
  // Bounds the celebrate-only delay any single stalled claimer can impose;
  // wait-freedom holds for every value >= 1 (the revoke path degenerates
  // to everyone-drives). Small values trade redundant drives for shorter
  // stalls — the schedule fuzzer runs one to keep the expiry/revoke branch
  // under coverage pressure.
  std::uint32_t claim_patience = 16;

  std::uint64_t t0_steps() const {
    const double k = kappa, l = max_locks, t = max_thunk_steps;
    return static_cast<std::uint64_t>(c0 * k * k * l * l * t);
  }
  std::uint64_t t1_steps() const {
    const double k = kappa, l = max_locks, t = max_thunk_steps;
    return static_cast<std::uint64_t>(c1 * k * l * t);
  }

  void validate() const {
    WFL_CHECK(kappa >= 1);
    WFL_CHECK(max_locks >= 1);
    WFL_CHECK(max_thunk_steps >= 1);
    WFL_CHECK(c0 > 0 && c1 > 0);
    WFL_CHECK(claim_patience >= 1);
  }
};

// Counters exported by a lock space; raw atomics, not part of the step
// model. Cheap enough to keep always-on.
struct LockStats {
  std::uint64_t attempts = 0;
  std::uint64_t wins = 0;
  std::uint64_t helps = 0;          // run(p') calls on others' descriptors
  std::uint64_t eliminations = 0;   // successful status CASes to lost
  std::uint64_t thunk_runs = 0;     // celebrateIfWon executions that ran code
  std::uint64_t t0_overruns = 0;    // pre-reveal work exceeded T0 (must be 0)
  std::uint64_t t1_overruns = 0;    // post-reveal work exceeded T1 (must be 0)
  std::uint64_t log_slot_resets = 0;  // thunk-log slots re-inited by reinit
                                      // (lazy reset: O(ops used) per attempt)
  // Contended-path optimizations (DESIGN.md §5; all 0 under kTheory):
  std::uint64_t fastpath_hits = 0;         // attempts decided via thin word
  std::uint64_t fastpath_revocations = 0;  // thin words observed by rivals
  std::uint64_t help_claim_skips = 0;      // help-phase drives ceded to the
                                           // current claim holder
};

}  // namespace wfl
