// The executor: one submission API over every acquisition path.
//
// The library used to expose four divergent entry points for "run this
// bounded thunk under these locks": LockTable::try_locks (one attempt),
// retry_until_success (loop until a win), PreparedTxn::try_run/run (the
// same two again, for composed transactions) and AdaptiveLockSpace's own
// try_locks — each with its own accounting struct. submit() collapses them
// into a single shape:
//
//   Outcome o = submit(session, locks, thunk, Policy::retry());
//
// where Policy picks one-shot / capped / until-success (plus an optional
// backoff knob for DelayMode::kOff deployments) and Outcome unifies
// AttemptInfo and RetryStats: every path reports attempts, own steps and
// the last attempt's pre/post-reveal work the same way, so experiment
// harnesses and applications stop translating between accounting schemes.
//
// Progress semantics are inherited, not invented here: a single attempt is
// wait-free in O(κ²L²T) own steps (Theorem 1.1), and the until-success
// policy is the randomized wait-free corollary — attempts win w.p. >=
// 1/(κL) independently, so the attempt count is geometric with mean <= κL.
// The deterministic escape hatch is Policy::attempts(n).
//
// Thunk contract (same as try_locks, restated because submit re-arms the
// thunk per attempt): `f` must be copyable — each attempt's descriptor
// stores its own copy — and must capture by value or point only at state
// that outlives the space's reclamation grace period; a straggling helper
// may replay the thunk after submit() returns.
#pragma once

#include <cstdint>

#include "wfl/core/config.hpp"
#include "wfl/core/lock_set.hpp"
#include "wfl/core/session.hpp"

namespace wfl {

// What submit() should do when an attempt loses its locks.
struct Policy {
  // Attempt budget: 0 = retry until an attempt wins (randomized wait-free;
  // terminates w.p. 1 with geometric tail), n >= 1 = at most n attempts.
  std::uint64_t max_attempts = 1;

  // Backoff knob for DelayMode::kOff deployments: after the k-th failed
  // attempt, idle min(backoff_base << (k-1), backoff_cap) own steps before
  // re-attempting. Ignored (with the steps it would burn) when the space
  // runs the paper's fixed delays — kTheory mode owns an attempt's timing
  // and backoff would perturb the reveal-time argument for no gain.
  std::uint64_t backoff_base = 0;
  std::uint64_t backoff_cap = 0;

  static constexpr Policy one_shot() { return Policy{1, 0, 0}; }
  static constexpr Policy retry() { return Policy{0, 0, 0}; }
  static constexpr Policy attempts(std::uint64_t n) {
    return Policy{n, 0, 0};
  }
  constexpr Policy with_backoff(std::uint64_t base,
                                std::uint64_t cap = 0) const {
    Policy p = *this;
    p.backoff_base = base;
    p.backoff_cap = cap != 0 ? cap : base << 10;
    return p;
  }
};

// Unified accounting: AttemptInfo + RetryStats in one struct. One-shot
// submissions fill it exactly like try_locks fills AttemptInfo; retrying
// submissions accumulate exactly like retry_until_success.
struct Outcome {
  bool won = false;               // did any attempt win all its locks?
  std::uint64_t attempts = 0;     // attempts consumed, including the winner
  std::uint64_t total_steps = 0;  // own steps across all attempts + backoff
  // The final attempt's work segments (the T0/T1-bounded quantities).
  std::uint64_t pre_reveal_work = 0;
  std::uint64_t post_reveal_work = 0;
  std::uint64_t backoff_steps = 0;  // own steps idled between attempts

  explicit operator bool() const { return won; }
};

// One inter-attempt backoff pause under `policy`, after `failed_attempts`
// failures: idle min(base << (k-1), cap) own steps (shift clamped so the
// doubling cannot overflow). Shared by every LockBackend's submit so the
// backoff accounting is identical across disciplines. Returns the steps
// idled (0 when the policy has no backoff).
template <typename Plat>
std::uint64_t policy_backoff(const Policy& policy,
                             std::uint64_t failed_attempts) {
  if (policy.backoff_base == 0 || failed_attempts == 0) return 0;
  const std::uint64_t shift =
      failed_attempts - 1 < 24 ? failed_attempts - 1 : 24;
  std::uint64_t pause = policy.backoff_base << shift;
  if (policy.backoff_cap != 0 && pause > policy.backoff_cap) {
    pause = policy.backoff_cap;
  }
  for (std::uint64_t i = 0; i < pause; ++i) Plat::step();
  return pause;
}

// Submits `f` on `locks` through `session` under `policy`. The lock-set
// invariants (sorted, deduplicated, within capacity) are carried by the
// LockSetView type; the configured L budget was enforced when the set was
// built against the config (or here, once, for spaces that expose one) —
// nothing is re-validated per attempt.
template <typename Space, typename F>
Outcome submit(BasicSession<Space>& session, LockSetView locks, const F& f,
               Policy policy = Policy::one_shot()) {
  using Plat = typename Space::Platform;
  Space& space = session.space();
  bool theory_delays = false;
  if constexpr (requires { space.config(); }) {
    WFL_CHECK_MSG(locks.size() <= space.config().max_locks,
                  "lock set exceeds the configured L bound");
    theory_delays = space.config().delay_mode == DelayMode::kTheory;
  }

  Outcome out;
  for (;;) {
    AttemptInfo info;
    typename Space::Thunk thunk{F(f)};
    const bool won =
        space.try_locks(session.process(), locks, std::move(thunk), &info);
    ++out.attempts;
    out.total_steps += info.total_steps;
    out.pre_reveal_work = info.pre_reveal_work;
    out.post_reveal_work = info.post_reveal_work;
    if (won) {
      out.won = true;
      return out;
    }
    if (policy.max_attempts != 0 && out.attempts >= policy.max_attempts) {
      return out;
    }
    if (!theory_delays) {
      const std::uint64_t pause = policy_backoff<Plat>(policy, out.attempts);
      out.backoff_steps += pause;
      out.total_steps += pause;
    }
  }
}

}  // namespace wfl
