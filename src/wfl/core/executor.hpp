// The executor: one submission API over every acquisition path.
//
// The library used to expose four divergent entry points for "run this
// bounded thunk under these locks": LockTable::try_locks (one attempt),
// retry_until_success (loop until a win), PreparedTxn::try_run/run (the
// same two again, for composed transactions) and AdaptiveLockSpace's own
// try_locks — each with its own accounting struct. submit() collapses them
// into a single shape:
//
//   Outcome o = submit(session, locks, thunk, Policy::retry());
//
// where Policy picks one-shot / capped / until-success (plus an optional
// backoff knob for DelayMode::kOff deployments) and Outcome unifies
// AttemptInfo and RetryStats: every path reports attempts, own steps and
// the last attempt's pre/post-reveal work the same way, so experiment
// harnesses and applications stop translating between accounting schemes.
//
// Progress semantics are inherited, not invented here: a single attempt is
// wait-free in O(κ²L²T) own steps (Theorem 1.1), and the until-success
// policy is the randomized wait-free corollary — attempts win w.p. >=
// 1/(κL) independently, so the attempt count is geometric with mean <= κL.
// The deterministic escape hatch is Policy::attempts(n).
//
// Thunk contract (same as try_locks, restated because submit re-arms the
// thunk per attempt): `f` must be copyable — each attempt's descriptor
// stores its own copy — and must capture by value or point only at state
// that outlives the space's reclamation grace period; a straggling helper
// may replay the thunk after submit() returns.
#pragma once

#include <cstdint>
#include <cstring>
#include <new>
#include <span>
#include <type_traits>

#include "wfl/core/config.hpp"
#include "wfl/core/lock_set.hpp"
#include "wfl/core/session.hpp"

// Feature-test macro for capability-probed benchmarks (bench_scaling
// builds against trees with and without the batch API to capture
// before/after pairs).
#define WFL_HAS_SUBMIT_BATCH 1

namespace wfl {

// What submit() should do when an attempt loses its locks.
struct Policy {
  // Attempt budget: 0 = retry until an attempt wins (randomized wait-free;
  // terminates w.p. 1 with geometric tail), n >= 1 = at most n attempts.
  std::uint64_t max_attempts = 1;

  // Backoff knob for DelayMode::kOff deployments: after the k-th failed
  // attempt, idle min(backoff_base << (k-1), backoff_cap) own steps before
  // re-attempting. Ignored (with the steps it would burn) when the space
  // runs the paper's fixed delays — kTheory mode owns an attempt's timing
  // and backoff would perturb the reveal-time argument for no gain.
  std::uint64_t backoff_base = 0;
  std::uint64_t backoff_cap = 0;

  static constexpr Policy one_shot() { return Policy{1, 0, 0}; }
  static constexpr Policy retry() { return Policy{0, 0, 0}; }
  static constexpr Policy attempts(std::uint64_t n) {
    return Policy{n, 0, 0};
  }
  constexpr Policy with_backoff(std::uint64_t base,
                                std::uint64_t cap = 0) const {
    Policy p = *this;
    p.backoff_base = base;
    // Default cap: 1024x the base, saturating — `base << 10` silently
    // overflowed for base >= 2^54, leaving a cap SMALLER than the base
    // (or zero, i.e. uncapped).
    constexpr std::uint64_t kMax = ~std::uint64_t{0};
    p.backoff_cap = cap != 0         ? cap
                    : base > kMax >> 10 ? kMax
                                        : base << 10;
    return p;
  }
};

// Unified accounting: AttemptInfo + RetryStats in one struct. One-shot
// submissions fill it exactly like try_locks fills AttemptInfo; retrying
// submissions accumulate exactly like retry_until_success.
struct Outcome {
  bool won = false;               // did any attempt win all its locks?
  std::uint64_t attempts = 0;     // attempts consumed, including the winner
  std::uint64_t total_steps = 0;  // own steps across all attempts + backoff
  // The final attempt's work segments (the T0/T1-bounded quantities).
  std::uint64_t pre_reveal_work = 0;
  std::uint64_t post_reveal_work = 0;
  std::uint64_t backoff_steps = 0;  // own steps idled between attempts

  explicit operator bool() const { return won; }
};

// One inter-attempt backoff pause under `policy`, after `failed_attempts`
// failures: idle min(base << (k-1), cap) own steps (shift clamped so the
// doubling cannot overflow). Shared by every LockBackend's submit so the
// backoff accounting is identical across disciplines. Returns the steps
// idled (0 when the policy has no backoff).
template <typename Plat>
std::uint64_t policy_backoff(const Policy& policy,
                             std::uint64_t failed_attempts) {
  if (policy.backoff_base == 0 || failed_attempts == 0) return 0;
  const std::uint64_t shift =
      failed_attempts - 1 < 24 ? failed_attempts - 1 : 24;
  std::uint64_t pause = policy.backoff_base << shift;
  if (policy.backoff_cap != 0 && pause > policy.backoff_cap) {
    pause = policy.backoff_cap;
  }
  for (std::uint64_t i = 0; i < pause; ++i) Plat::step();
  return pause;
}

// A prepared submission: one validated lock set plus a re-armable thunk,
// the unit of submit_batch. Construction captures the lock ids BY VALUE
// (so the op outlives whatever StaticLockSet built the view) and copies
// the callable into inline storage. The callable must be trivially
// copyable and fit kInlineBytes — which every lock thunk in this repo
// already satisfies (they capture pointers and scalars; that is also what
// the replay-after-return contract forces them towards). Non-trivial
// state belongs behind a pointer the caller keeps alive through the
// space's grace period, exactly as for submit().
//
// armed() hands out a self-contained trivially-copyable closure that any
// LockBackend's submit() accepts as `f` — arming per attempt is a memcpy,
// so a PreparedOp built once amortizes lock-set validation and thunk
// marshalling across every attempt and every batch it is submitted in.
template <typename Plat>
class PreparedOp {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  struct Armed {
    alignas(std::max_align_t) unsigned char bytes[kInlineBytes];
    void (*invoke)(const void*, IdemCtx<Plat>&);
    void operator()(IdemCtx<Plat>& m) const { invoke(bytes, m); }
  };

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, PreparedOp> &&
             std::is_invocable_v<std::decay_t<F>&, IdemCtx<Plat>&>)
  PreparedOp(LockSetView locks, F f) {  // NOLINT: two-arg, no confusion
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineBytes,
                  "PreparedOp callable exceeds inline storage");
    static_assert(std::is_trivially_copyable_v<Fn>,
                  "PreparedOp callables must be trivially copyable");
    WFL_CHECK(locks.size() <= kMaxLocksPerAttempt);
    n_locks_ = locks.size();
    for (std::uint32_t i = 0; i < n_locks_; ++i) ids_[i] = locks[i];
    ::new (static_cast<void*>(armed_.bytes)) Fn(std::move(f));
    armed_.invoke = [](const void* s, IdemCtx<Plat>& m) {
      (*static_cast<const Fn*>(s))(m);
    };
  }

  LockSetView locks() const {
    return LockSetView::presorted({ids_, n_locks_});
  }
  const Armed& armed() const { return armed_; }
  void operator()(IdemCtx<Plat>& m) const { armed_(m); }

 private:
  std::uint32_t ids_[kMaxLocksPerAttempt] = {};
  std::uint32_t n_locks_ = 0;
  Armed armed_;
};

// Aggregate accounting for one batch submission.
struct BatchOutcome {
  std::uint64_t ops = 0;            // ops submitted
  std::uint64_t wins = 0;           // ops whose final attempt won
  std::uint64_t attempts = 0;       // attempts across all ops
  std::uint64_t total_steps = 0;    // own steps across all ops
  std::uint64_t backoff_steps = 0;  // own steps idled between attempts

  explicit operator bool() const { return wins == ops; }

  // The single accumulation points every batch path shares (executor,
  // backend fallback, txn batches, substrate entry points) — a new
  // Outcome field gets folded in exactly here or nowhere.
  void add(const Outcome& o) {
    ops += 1;
    wins += o.won ? 1 : 0;
    attempts += o.attempts;
    total_steps += o.total_steps;
    backoff_steps += o.backoff_steps;
  }
  BatchOutcome& operator+=(const BatchOutcome& o) {
    ops += o.ops;
    wins += o.wins;
    attempts += o.attempts;
    total_steps += o.total_steps;
    backoff_steps += o.backoff_steps;
    return *this;
  }
};

// One tryLock attempt folded into an Outcome: the per-attempt core every
// submission loop shares. submit() wraps it in a backoff-spin retry loop;
// async_submit (core/async_executor.hpp) wraps the SAME core in a
// park/wake loop — an attempt that loses suspends its submission instead
// of idling `policy_backoff` steps on an OS thread. Returns out.won.
template <typename Space, typename F>
bool submit_attempt(BasicSession<Space>& session, LockSetView locks,
                    const F& f, Outcome& out) {
  AttemptInfo info;
  typename Space::Thunk thunk{F(f)};
  const bool won = session.space().try_locks(session.process(), locks,
                                             std::move(thunk), &info);
  ++out.attempts;
  out.total_steps += info.total_steps;
  out.pre_reveal_work = info.pre_reveal_work;
  out.post_reveal_work = info.post_reveal_work;
  out.won = won;
  return won;
}

// True when `policy` has no attempts left after `out`'s. Shared by the
// sync and async submission loops so the budget accounting cannot drift.
inline bool policy_exhausted(const Policy& policy, const Outcome& out) {
  return policy.max_attempts != 0 && out.attempts >= policy.max_attempts;
}

// Submits `f` on `locks` through `session` under `policy`. The lock-set
// invariants (sorted, deduplicated, within capacity) are carried by the
// LockSetView type; the configured L budget was enforced when the set was
// built against the config (or here, once, for spaces that expose one) —
// nothing is re-validated per attempt.
template <typename Space, typename F>
Outcome submit(BasicSession<Space>& session, LockSetView locks, const F& f,
               Policy policy = Policy::one_shot()) {
  using Plat = typename Space::Platform;
  Space& space = session.space();
  bool theory_delays = false;
  if constexpr (requires { space.config(); }) {
    WFL_CHECK_MSG(locks.size() <= space.config().max_locks,
                  "lock set exceeds the configured L bound");
    theory_delays = space.config().delay_mode == DelayMode::kTheory;
  }

  Outcome out;
  for (;;) {
    if (submit_attempt(session, locks, f, out)) return out;
    if (policy_exhausted(policy, out)) return out;
    if (!theory_delays) {
      const std::uint64_t pause = policy_backoff<Plat>(policy, out.attempts);
      out.backoff_steps += pause;
      out.total_steps += pause;
    }
  }
}

// RAII guard-amortization primitive shared by submit_batch and
// submit_txn_batch: add() every lock id of the batch, then enter() once;
// the destructor exits whatever was entered. On spaces with shard routing
// (the LockTable surface: shard_of + guard_shard_enter/exit) exactly the
// batch's shard footprint is covered, leaving reclamation everywhere else
// untouched; other spaces fall back to the whole-space inspector guard.
template <typename Space>
class BatchShardGuard {
  static constexpr bool kSharded =
      requires(Space& s, typename Space::Process p) {
        s.shard_of(std::uint32_t{0});
        s.guard_shard_enter(p, std::uint32_t{0});
        s.guard_shard_exit(p, std::uint32_t{0});
      };

 public:
  BatchShardGuard(Space& space, typename Space::Process proc)
      : space_(space), proc_(proc) {}

  ~BatchShardGuard() {
    if (!entered_) return;
    if constexpr (kSharded) {
      for (std::uint32_t j = 0; j < n_; ++j) {
        space_.guard_shard_exit(proc_, shards_[j]);
      }
    } else {
      space_.ebr_exit(proc_);
    }
  }

  BatchShardGuard(const BatchShardGuard&) = delete;
  BatchShardGuard& operator=(const BatchShardGuard&) = delete;

  void add(std::uint32_t lock_id) {
    WFL_DASSERT(!entered_);
    if constexpr (kSharded) {
      const std::uint32_t s = space_.shard_of(lock_id);
      for (std::uint32_t j = 0; j < n_; ++j) {
        if (shards_[j] == s) return;
      }
      WFL_DASSERT(n_ < kMaxShards);
      shards_[n_++] = s;
    }
  }

  void enter() {
    if constexpr (kSharded) {
      for (std::uint32_t j = 0; j < n_; ++j) {
        space_.guard_shard_enter(proc_, shards_[j]);
      }
    } else {
      space_.ebr_enter(proc_);
    }
    entered_ = true;
  }

 private:
  Space& space_;
  typename Space::Process proc_;
  std::uint32_t shards_[kMaxShards] = {};
  std::uint32_t n_ = 0;
  bool entered_ = false;
};

// Submits every op of `ops` in order through `session` under one `policy`,
// amortizing the per-op fixed costs across the batch:
//
//   * lock-set validation — each PreparedOp carries its invariants from
//     construction; only the L budget is checked, once per op, up front;
//   * thunk marshalling — arming an attempt is a memcpy of the op's
//     inline closure;
//   * EBR guard entry — in DelayMode::kOff the guards of the shards the
//     batch's lock sets touch (only those — reclamation elsewhere keeps
//     flowing) are pre-entered once around the whole batch, so every
//     per-attempt guard acquisition inside collapses to a re-entrancy
//     depth bump (plain private increment) instead of a fence + seq_cst
//     epoch validation. Spaces without shard routing fall back to the
//     whole-space inspector guard. The guards are NOT pre-entered in
//     kTheory mode: there an attempt deliberately releases them across
//     its delay segments to keep reclamation flowing, and a batch-held
//     guard would defeat that.
//
// Op-visible semantics are identical to a loop of submit() calls — the
// pre-entered guard is invisible to the step model (reclamation is outside
// it, DESIGN.md #2): an uncontended batch is step-for-step equivalent to
// the loop (asserted by test_fastpath's sim test; under contention only
// reclamation timing — never an outcome — can differ). Reclamation in the
// touched shards stalls for the duration of the batch; callers pick batch
// sizes accordingly (tens to hundreds, not millions).
//
// `per_op`, when non-null, must point at ops.size() Outcomes and receives
// each op's individual accounting.
template <typename Space>
BatchOutcome submit_batch(BasicSession<Space>& session,
                          std::span<const PreparedOp<typename Space::Platform>> ops,
                          Policy policy = Policy::one_shot(),
                          Outcome* per_op = nullptr) {
  Space& space = session.space();
  bool hold_guards = false;
  if constexpr (requires { space.config(); }) {
    for (const auto& op : ops) {
      WFL_CHECK_MSG(op.locks().size() <= space.config().max_locks,
                    "batch op lock set exceeds the configured L bound");
    }
    hold_guards =
        space.config().delay_mode == DelayMode::kOff && ops.size() > 1;
  }

  BatchShardGuard<Space> guard(space, session.process());
  if (hold_guards) {
    for (const auto& op : ops) {
      for (const std::uint32_t id : op.locks()) guard.add(id);
    }
    guard.enter();
  }

  BatchOutcome out;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Outcome o = submit(session, ops[i].locks(), ops[i].armed(), policy);
    out.add(o);
    if (per_op != nullptr) per_op[i] = o;
  }
  return out;
}

}  // namespace wfl
