// The lock table: sharded storage + orchestration for Algorithm 3.
//
// A LockTable owns a family of locks, each represented by one active set
// (Algorithm 1); together they form the multi active set (Algorithm 2) the
// attempts are inserted into. try_locks(lockList, thunk) is Algorithm 3
// line-for-line:
//
//   1. Help phase (lines 17–20): getSet every lock in the list; run() every
//      revealed descriptor found. Any competitor whose priority the player
//      adversary could have seen before starting us is forced to finish
//      before we pick our own priority (Lemma 6.4).
//   2. multiInsert (line 21): insert our descriptor into every lock's set;
//      then the *reveal step* — after delaying until exactly T0 = c0·κ²L²·T
//      of our own steps have elapsed since the attempt started, store a
//      uniformly random priority. The fixed delay makes the reveal time a
//      pure function of the start time (Observation 6.7), which is what
//      denies the adversary any priority-dependent timing leverage.
//   3. run(p) (lines 26–37): the attempt engine's competition core — see
//      core/attempt.hpp, which owns the safety-critical celebrate-before-
//      decide ordering (Definition 4.3).
//   4. multiRemove (line 23) and the trailing delay to T1 = c1·κLT own
//      steps after the reveal, fixing the attempt's end time as well.
//
// Wait-freedom is structural: every loop on the attempt path is bounded by
// κ, L, or T. There are no unbounded retries anywhere.
//
// --- Sharding -------------------------------------------------------------
//
// Locks are distributed over S = 2^k independent shards (lock id & (S-1)).
// Each shard owns a descriptor pool, a snapshot pool, and an EBR domain of
// its own, so the memory-management traffic of an attempt — pool freelist
// CASes, snapshot churn, epoch advancement — stays inside the shards its
// lock set touches. A single-lock attempt is routed entirely through its
// home shard: it allocates, competes, and reclaims there and writes no
// other shard's cachelines. The per-process counters that the monolith
// shared globally (serial, stats) are striped into ProcessHandles
// (core/process.hpp), so the only cross-shard communication left is the
// algorithm's own descriptor CASes — which the competition semantics
// require and the paper's step bounds already price in.
//
// A multi-lock attempt whose locks straddle shards works unchanged: the
// descriptor (homed in the shard of its first lock) is inserted into every
// lock's set, and the shared-descriptor competition proceeds exactly as in
// the monolith. Two things make that safe:
//
//   * guard coverage — every read of a shard's snapshots/descriptors
//     happens under *that shard's* EBR guard. The attempt enters the guards
//     of all shards its lock set touches around each work segment, and the
//     engine's run() (which may be helping a descriptor whose lock set
//     touches other shards) re-enters whatever extra shards it needs
//     through the handle's re-entrant depth counters.
//   * refcounted retire — a descriptor that was visible in k shards is
//     retired into all k domains with a k-valued refcount; the pool slot is
//     freed by the last domain whose grace period expires, so a helper
//     parked inside any one shard's guard keeps the descriptor alive.
//
// EBR guards are held across the two *work* segments (help+insert, and
// run+remove) and released across the delay segments, which dominate an
// attempt's steps; this keeps reclamation flowing while a slow process
// stalls in a delay. Releasing the guard there is safe: during a delay the
// process holds no borrowed references (its own descriptor is not retired
// until the end of the attempt).
//
// --- Thin-word fast path (DelayMode::kOff only) ----------------------------
//
// Every lock carries a *thin word*. An uncontended single-lock attempt
// CASes an encoding of (owner pid, attempt serial) into it, competes
// through the handle's embedded descriptor — which the word logically
// publishes, exactly as an active-set insert would — and CASes the word
// back to free. The steady state is two thin-word CASes plus the
// competition reads: zero descriptor-pool traffic, zero snapshot climbs,
// zero EBR retires.
//
// On conflict a contender *revokes* the publication: it sets the word's
// observed bit (announcing that it holds a reference to the embedded
// descriptor) and then duels/helps that descriptor through the ordinary
// Algorithm-3 machinery — eliminate, celebrate-if-won, thunk replay via
// the idempotence log — so helping semantics and the step bound are
// preserved verbatim. The owner, finding its release CAS failed, clears
// the word and *cools down*: the embedded descriptor may not be reused
// until a grace period of the publishing shard's EBR domain has passed
// (a cooldown token retired into that domain flips the handle's
// fast_ready flag back), because the observer may still be reading it.
// Until then the process's single-lock attempts take the descriptor path.
// Safety argument in DESIGN.md §5.1.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <vector>

#include "wfl/active/active_set.hpp"
#include "wfl/active/multi_set.hpp"
#include "wfl/core/attempt.hpp"
#include "wfl/core/config.hpp"
#include "wfl/core/descriptor.hpp"
#include "wfl/core/lock_set.hpp"
#include "wfl/core/process.hpp"
#include "wfl/fuzz/sites.hpp"
#include "wfl/idem/idem.hpp"
#include "wfl/mem/arena.hpp"
#include "wfl/mem/ebr.hpp"
#include "wfl/util/assert.hpp"

namespace wfl {

// Capacity/layout overrides; 0 means "auto from process count".
struct SpaceSizing {
  std::uint32_t snap_pool_capacity = 0;  // initial snapshots per shard
  std::uint32_t desc_pool_capacity = 0;  // initial descriptors per shard
  std::uint32_t shards = 0;              // shard count (power of two)
  std::uint32_t serial_block = 0;        // serials per per-process block
};

inline constexpr std::uint32_t kMaxShards = 16;

// Release-event sink: a runtime (the async executor) installs one to learn
// when a lock's competition state changed — a descriptor left the lock's
// active set (multiRemove, win or loss) or a thin-word publication was
// released/revoked — i.e. exactly the moments a blocked submission may
// have become runnable. Notifications are advisory (spurious ones are
// fine; the executor's park protocol re-checks), posted OUTSIDE the step
// model (like reclamation, DESIGN.md #2), and only ever posted while a
// sink is installed — which the async executor gates on DelayMode::kOff,
// so kTheory executions stay bit-identical.
// `origin_pid` is the process whose attempt posted the event — the sink
// uses it to skip that attempt's own submission when picking a waiter to
// wake (an op must not consume its own release events; that would turn
// every losing attempt into a hot self-retry). It is a pid rather than a
// thread-identity because under SimPlat many logical processes interleave
// mid-attempt on one OS thread.
class WakeSink {
 public:
  virtual void on_release(std::uint32_t lock_id, int origin_pid) = 0;

 protected:
  ~WakeSink() = default;
};

class ShmLockTable;  // core/shm_table.hpp: cross-process placement

template <typename Plat>
class LockTable {
 public:
  using Platform = Plat;
  using Desc = Descriptor<Plat>;
  using Thunk = typename Desc::Thunk;
  using Set = ActiveSet<Plat, Desc*>;
  using Handle = ProcessHandle<Plat, Desc>;

  // Shared-memory placement factories (defined in core/shm_table.hpp,
  // which callers include to use them). The shm table is a distinct type —
  // offset-addressed, POD thunks, single shard — not this class placed in
  // a mapping; these exist so "give me a lock table in that arena" reads
  // at the same API surface as the in-process constructor. RealPlat only.
  static std::unique_ptr<ShmLockTable> create_in(ShmArena& shm,
                                                 const LockConfig& cfg,
                                                 int max_procs,
                                                 int num_locks);
  static std::unique_ptr<ShmLockTable> attach(ShmArena& shm);

  // A per-logical-process name (dense id; also the participant id in every
  // shard's EBR domain). Cheap value type; each OS thread / sim fiber
  // registers once and passes it to try_locks.
  struct Process {
    int ebr_pid = -1;
  };

  LockTable(const LockConfig& cfg, int max_procs, int num_locks,
            SpaceSizing sizing = {})
      : cfg_(cfg),
        max_procs_(max_procs),
        num_shards_(sizing.shards != 0 ? sizing.shards
                                       : auto_shards(max_procs, num_locks)),
        serial_block_(sizing.serial_block != 0 ? sizing.serial_block
                                               : kDefaultSerialBlock),
        thin_(static_cast<std::size_t>(std::max(num_locks, 1))),
        handles_(static_cast<std::size_t>(std::max(max_procs, 1))) {
    cfg_.validate();
    WFL_CHECK(max_procs > 0 && num_locks > 0);
    WFL_CHECK_MSG(max_procs < (1 << 15),
                  "thin-word owner encoding caps max_procs at 2^15 - 1");
    WFL_CHECK(cfg_.max_locks <= kMaxLocksPerAttempt);
    WFL_CHECK(cfg_.max_thunk_steps <= kMaxThunkOps);
    WFL_CHECK(cfg_.kappa <= kMaxSetCap);
    WFL_CHECK_MSG(num_shards_ >= 1 && num_shards_ <= kMaxShards &&
                      (num_shards_ & (num_shards_ - 1)) == 0,
                  "shard count must be a power of two in [1, kMaxShards]");

    const std::uint32_t snap_cap =
        sizing.snap_pool_capacity != 0
            ? sizing.snap_pool_capacity
            : per_shard(auto_snap_capacity(max_procs), 512);
    const std::uint32_t desc_cap =
        sizing.desc_pool_capacity != 0
            ? sizing.desc_pool_capacity
            : per_shard(auto_desc_capacity(max_procs), 128);

    mem_.reserve(num_shards_);
    caches_.reserve(num_shards_);
    ebr_.reserve(num_shards_);
    set_mem_.reserve(num_shards_);
    for (std::uint32_t s = 0; s < num_shards_; ++s) {
      mem_.push_back(std::make_unique<ShardMem>(snap_cap, desc_cap));
      caches_.push_back(std::make_unique<ShardCaches>(
          static_cast<std::size_t>(max_procs), *mem_[s]));
      ebr_.push_back(std::make_unique<EbrDomain>(max_procs));
      set_mem_.push_back(SetMem<Desc*>{mem_[s]->snap_pool, *ebr_[s],
                                       caches_[s]->snap.data()});
    }
    locks_.reserve(static_cast<std::size_t>(num_locks));
    for (int i = 0; i < num_locks; ++i) {
      locks_.push_back(std::make_unique<Set>(
          cfg_.kappa, set_mem_[shard_of(static_cast<std::uint32_t>(i))]));
    }
    // The practical-mode optimizations are hard-gated on kOff: with the
    // paper's delays on, every execution is bit-identical to the pre-
    // fast-path tree (the thin words are never published, and the slow
    // path's probes are skipped entirely).
    fast_enabled_ = cfg_.delay_mode == DelayMode::kOff && cfg_.fast_path;
    cooperative_ =
        cfg_.delay_mode == DelayMode::kOff && cfg_.cooperative_help;
  }

  // Registers the calling logical process: one participant slot in every
  // shard's EBR domain (all under one id) plus a ProcessHandle carrying its
  // striped hot state. A slot released by a destroyed Session is reused
  // (its handle — stats, serial block, scratch — carries over, so table-
  // level stats stay monotone across session generations). Not on the
  // attempt path; serialized by a mutex so the per-shard participant ids
  // stay aligned.
  Process register_process() {
    std::lock_guard<std::mutex> lk(reg_mutex_);
    if (!free_pids_.empty()) {
      const int pid = free_pids_.back();
      free_pids_.pop_back();
      return Process{pid};
    }
    int pid = -1;
    for (std::uint32_t s = 0; s < num_shards_; ++s) {
      const int p = ebr_[s]->register_participant();
      WFL_CHECK_MSG(s == 0 || p == pid,
                    "shard EBR domains disagree on participant id");
      pid = p;
    }
    WFL_CHECK(pid >= 0 && pid < static_cast<int>(handles_.size()));
    handles_[static_cast<std::size_t>(pid)] = std::make_unique<Handle>(
        pid, num_shards_, serial_hwm_, serial_block_,
        /*with_fast_desc=*/true);
    registered_.store(pid + 1, std::memory_order_release);
    return Process{pid};
  }

  int num_locks() const { return static_cast<int>(locks_.size()); }
  int max_procs() const { return max_procs_; }
  std::uint32_t num_shards() const { return num_shards_; }
  const LockConfig& config() const { return cfg_; }

  std::uint32_t shard_of(std::uint32_t lock_id) const {
    return lock_id & (num_shards_ - 1);
  }

  // Installs (or clears, with nullptr) the release-event sink. Callers
  // install before submitting any traffic they want notifications for;
  // the async executor clears it only after its workers have drained.
  void set_wake_sink(WakeSink* sink) {
    wake_sink_.store(sink, std::memory_order_release);
    WFL_CHK_ATOMIC(&wake_sink_, kStore, release, kWakeSinkInstall,
                   reinterpret_cast<std::uintptr_t>(sink));
  }

  // True iff `p` currently holds any shard's EBR guard. Attempts exit all
  // guards before returning, so this is false between attempts — the
  // async executor asserts it before parking a submission (a parked
  // session holding a guard would stall reclamation indefinitely).
  bool any_guard_held(Process p) { return handle(p).any_guard_depth(); }

  Handle& handle(Process proc) {
    WFL_CHECK(proc.ebr_pid >= 0 &&
              proc.ebr_pid < static_cast<int>(handles_.size()) &&
              handles_[static_cast<std::size_t>(proc.ebr_pid)] != nullptr);
    return *handles_[static_cast<std::size_t>(proc.ebr_pid)];
  }

  // One tryLock attempt on `lock_ids` running `thunk` if all locks are
  // acquired. Returns success. Never blocks on other processes: completes
  // in O(κ²L²T) of the caller's own steps regardless of the schedule.
  //
  // The raw-span overload re-validates the set (budget + duplicate scan)
  // on every call; the LockSetView overload skips both, because the view
  // type's construction already established them (core/lock_set.hpp).
  bool try_locks(Process proc, std::span<const std::uint32_t> lock_ids,
                 Thunk thunk, AttemptInfo* info = nullptr) {
    WFL_CHECK_MSG(lock_ids.size() <= cfg_.max_locks,
                  "lock set exceeds the configured L bound");
    // Debug-only duplicate scan: LockSetView is the validated path, so the
    // O(L²) scan no longer taxes release-build raw-span callers
    // (bench_hotpath reports the residual overload delta).
#ifndef NDEBUG
    for (std::size_t i = 0; i < lock_ids.size(); ++i) {
      for (std::size_t j = i + 1; j < lock_ids.size(); ++j) {
        WFL_DASSERT(lock_ids[i] != lock_ids[j]);
      }
    }
#endif
    return attempt(proc, lock_ids, std::move(thunk), info);
  }

  // Templated so braced initializer lists keep resolving to the span
  // overload above (a braced list cannot deduce ViewT); accepts
  // LockSetView and anything carrying its invariants (StaticLockSet).
  template <typename ViewT>
    requires std::is_convertible_v<const ViewT&, LockSetView>
  bool try_locks(Process proc, const ViewT& lock_ids, Thunk thunk,
                 AttemptInfo* info = nullptr) {
    const LockSetView view = lock_ids;
    WFL_DASSERT(view.size() <= cfg_.max_locks);
    return attempt(proc, view.span(), std::move(thunk), info);
  }

 private:
  bool attempt(Process proc, std::span<const std::uint32_t> lock_ids,
               Thunk thunk, AttemptInfo* info) {
    Handle& h = handle(proc);
    for (std::size_t i = 0; i < lock_ids.size(); ++i) {
      WFL_CHECK(lock_ids[i] < locks_.size());
    }
    h.stats().add_attempt();

    if (lock_ids.empty()) {
      // Degenerate attempt: nothing to contend on; run the thunk alone on
      // the handle's private scratch log (reused + lazily reset across
      // attempts — no 1KB of slot re-init per call).
      if (thunk) {
        ThunkLog<Plat>& local_log = h.local_log();
        IdemCtx<Plat> ctx(local_log, 0);
        thunk(ctx);
        local_log.note_used(ctx.ops_used());
        h.stats().add_log_slot_resets(local_log.reset_used());
        h.stats().add_thunk_run();
      }
      h.stats().add_win();
      return true;
    }

    // Thin-word fast path: a single-lock attempt whose embedded descriptor
    // is warm tries to decide through the lock's thin word. A contended or
    // cooling-down attempt falls through to the descriptor path below with
    // the thunk intact.
    if (fast_enabled_ && lock_ids.size() == 1 && h.fast_ready()) {
      bool won = false;
      if (fast_attempt(h, lock_ids[0], thunk, info, won)) return won;
    }

    const std::uint64_t start_steps = Plat::steps();

    // The attempt's shard footprint. `home` (the first lock's shard) hosts
    // the descriptor; for a single-lock attempt the footprint is exactly
    // {home} and nothing below touches any other shard.
    std::uint32_t att_shards[kMaxLocksPerAttempt];
    const std::uint32_t n_att_shards = shard_footprint(lock_ids, att_shards);
    const std::uint32_t home = shard_of(lock_ids[0]);
    ShardMem& hm = *mem_[home];

    // Descriptor slots flow through the process's home-shard cache: alloc
    // pops it here and the EBR deleter pushes the slot back to it, so a
    // steady-state attempt never touches the shared freelist (arena.hpp).
    SlotCache<Desc>& dcache =
        *caches_[home]->desc[static_cast<std::size_t>(h.pid())];
    const std::uint32_t didx = dcache.alloc();
    Desc& d = hm.desc_pool.at(didx);
    h.stats().add_log_slot_resets(d.reinit(h.next_serial()));
    d.lock_count = static_cast<std::uint32_t>(lock_ids.size());
    for (std::size_t i = 0; i < lock_ids.size(); ++i) {
      d.lock_ids[i] = lock_ids[i];
    }
    d.thunk = std::move(thunk);
    // Line group A is complete; the set insert below publishes it.
    WFL_PLAIN_WRITE(&d, kDescPlain);
    d.retire_refs.store(n_att_shards, std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&d.retire_refs, kStore, relaxed, kRetireRefsInit,
                   n_att_shards);

    AttemptCtx cx{*this, h};

    // --- work segment 1: help phase + multiInsert (lines 17-21) ---
    enter_shards(h, att_shards, n_att_shards);
    if (cfg_.help_phase) {
      MemberList<Desc*>& members = h.help_scratch();
      for (std::uint32_t i = 0; i < d.lock_count; ++i) {
        multi_get_set<Plat>(*locks_[d.lock_ids[i]], members);
        for (Desc* q : members) {
          h.stats().add_help();
          Engine::help(cx, *q);
        }
        // A thin-word publication on this lock is a revealed competitor
        // like any set member: drive it too (fast-path owners are helped,
        // not just dueled).
        if (Desc* r = cx.thin_rival(d.lock_ids[i])) {
          h.stats().add_help();
          Engine::help(cx, *r);
        }
      }
    }
    for (std::uint32_t i = 0; i < d.lock_count; ++i) {
      d.slot_of_lock[i] = locks_[d.lock_ids[i]]->insert(&d, h.pid());
    }
    exit_shards(h, att_shards, n_att_shards);
    const std::uint64_t pre_reveal_work = Plat::steps() - start_steps;

    // --- the reveal step, pinned to exactly T0 own steps (lines 10-11) ---
    Engine::delay_until(cfg_.delay_mode, start_steps, cfg_.t0_steps(),
                        [&h] { h.stats().add_t0_overrun(); });
    d.priority.store(draw_priority<Plat>());
    const std::uint64_t reveal_steps = Plat::steps();

    // --- work segment 2: compete, then multiRemove (lines 22-23) ---
    enter_shards(h, att_shards, n_att_shards);
    Engine::run(cx, d);
    d.clear_flag();
    for (std::uint32_t i = 0; i < d.lock_count; ++i) {
      locks_[d.lock_ids[i]]->remove(d.slot_of_lock[i], h.pid());
    }
    exit_shards(h, att_shards, n_att_shards);
    const std::uint64_t post_reveal_work = Plat::steps() - reveal_steps;

    // The descriptor left every lock's set: waiters parked on those locks
    // may now be able to win — post the release events (no-op without a
    // sink; never reached with one under kTheory).
    notify_release(lock_ids, h.pid());

    // --- trailing delay pins the attempt's end time (line 24) ---
    Engine::delay_until(cfg_.delay_mode, reveal_steps, cfg_.t1_steps(),
                        [&h] { h.stats().add_t1_overrun(); });

    const bool won = d.status.load() == kStatusWon;
    if (won) h.stats().add_win();
    // Retire into every shard the descriptor was visible in; the slot is
    // recycled — back into this process's home-shard cache — by the last
    // grace period to expire (see retire_refs).
    for (std::uint32_t s = 0; s < n_att_shards; ++s) {
      ebr_[att_shards[s]]->retire(h.pid(), &dcache, didx,
                                  &release_descriptor);
    }
    if (info != nullptr) {
      info->won = won;
      info->pre_reveal_work = pre_reveal_work;
      info->post_reveal_work = post_reveal_work;
      info->total_steps = Plat::steps() - start_steps;
    }
    return won;
  }

  // --- thin-word fast path (see the header comment and DESIGN.md §5.1) ---

  // Thin-word encoding: bit 0 = observed (a rival holds a reference to the
  // publication), bits 1..15 = owner pid + 1, bits 16..63 = attempt serial.
  // pid+1 keeps 0 meaning "free"; the serial makes (pid, serial) reuse —
  // the only ABA that could confuse a rival's CAS — require a 2^48 serial
  // wrap inside one rival's bounded probe window.
  static constexpr std::uint64_t kThinObserved = 1;
  static std::uint64_t thin_encode(int pid, std::uint64_t serial) {
    return (static_cast<std::uint64_t>(pid + 1) << 1) | (serial << 16);
  }
  static int thin_pid(std::uint64_t word) {
    return static_cast<int>((word >> 1) & 0x7FFF) - 1;
  }

  // One fast-path attempt on `lock_id`. Returns true when the attempt was
  // decided here (won_out holds the outcome); false when the thin word was
  // already held — the thunk is moved back out and the caller proceeds on
  // the descriptor path. The embedded descriptor is fully formed BEFORE
  // the publish CAS, so a rival that observes the word immediately after
  // reads a complete, revealed (priority > 0) Algorithm-3 descriptor.
  bool fast_attempt(Handle& h, std::uint32_t lock_id, Thunk& thunk,
                    AttemptInfo* info, bool& won_out) {
    Desc& fd = h.fast_desc();
    const std::uint64_t start_steps = Plat::steps();
    h.stats().add_log_slot_resets(fd.reinit(h.next_serial()));
    fd.lock_count = 1;
    fd.lock_ids[0] = lock_id;
    fd.thunk = std::move(thunk);
    fd.priority.init(draw_priority<Plat>());  // revealed by the publish CAS
    WFL_PLAIN_WRITE(&fd, kDescPlain);  // complete before the publish CAS
    const std::uint64_t enc = thin_encode(h.pid(), fd.serial);
    ThinWord& w = *thin_[lock_id];
    WFL_CHK_TAG(kThinPublish);  // contract: the publish CAS must stay seq_cst
    if (!w.cas(0, enc)) {
      // Held by someone else: this attempt is contended, take the
      // descriptor path (which duels/helps the holder via thin_rival).
      thunk = std::move(fd.thunk);
      return false;
    }
    const std::uint64_t pre_reveal_work = Plat::steps() - start_steps;

    // Compete exactly as a slow-path attempt would: the engine reads the
    // lock's set members AND the thin word (skipping our own publication)
    // under the shard's guard, then decides and celebrates.
    AttemptCtx cx{*this, h};
    const std::uint64_t reveal_steps = Plat::steps();
    Engine::run(cx, fd);

    WFL_CHK_TAG(kThinRelease);
    bool released = w.cas(enc, 0);
    if (!released) {
      // A rival set the observed bit (the only transition a non-owner
      // makes) and may still be reading the embedded descriptor; clear the
      // word, then cool the descriptor down through a grace period of this
      // lock's shard before any reuse. Rivals that probe from here on see
      // 0 — and any attempt that started after our publication already
      // found us through the word or will see our effects as decided.
      WFL_CHK_TAG(kThinRelease);
      WFL_FUZZ_SITE(kSiteThinRevocation);
      w.store(0);
      h.begin_fast_cooldown();
      ebr_[shard_of(lock_id)]->retire(h.pid(), &h, 0,
                                      &Handle::fast_cooldown_expired);
      h.stats().add_fastpath_revocation();
    }
    // Publication gone (released or revoked+cleared): post the release
    // event for parked waiters either way.
    notify_release({&lock_id, 1}, h.pid());
    const std::uint64_t post_reveal_work = Plat::steps() - reveal_steps;

    const bool won = fd.status.load() == kStatusWon;
    if (won) h.stats().add_win();
    h.stats().add_fastpath_hit();
    if (info != nullptr) {
      info->won = won;
      info->pre_reveal_work = pre_reveal_work;
      info->post_reveal_work = post_reveal_work;
      info->total_steps = Plat::steps() - start_steps;
    }
    won_out = won;
    return true;
  }

  // The observe protocol, called by the engine (under the shard's guard —
  // every call site covers shard_of(lock_id)). Returns the lock's current
  // fast-path publication as a duel-able descriptor, or nullptr when the
  // word is free, owned by the caller, or too unstable to pin.
  //
  // Setting the observed bit BEFORE dereferencing is what makes the
  // returned pointer stable: once the bit is set the owner's release CAS
  // fails, so the owner clears the word and cools the descriptor through a
  // grace period of this shard — which cannot expire while the caller
  // holds the shard's guard. Giving up after two changed-word passes is
  // safe: the word changing means the previous publication completed
  // (decided and released), and any NEWER publication's competition scan
  // happens after its publish CAS — which is after our own set insert —
  // so the newer owner is guaranteed to see and duel us instead.
  Desc* thin_rival(Handle& h, std::uint32_t lock_id) {
    if (!fast_enabled_) return nullptr;
    ThinWord& w = *thin_[lock_id];
    for (int pass = 0; pass < 2; ++pass) {
      const std::uint64_t v = w.load();
      if (v == 0) return nullptr;
      const int pid = thin_pid(v);
      if (pid == h.pid()) return nullptr;  // own publication
      if ((v & kThinObserved) != 0 || w.cas(v, v | kThinObserved)) {
        return &handles_[static_cast<std::size_t>(pid)]->fast_desc();
      }
    }
    return nullptr;
  }

 public:
  // Aggregates the striped per-process slabs. Exact whenever the processes
  // are quiescent (the only time the tests compare totals); otherwise a
  // racy-but-monotone snapshot.
  LockStats stats() const {
    LockStats s;
    const int n = registered_.load(std::memory_order_acquire);
    for (int i = 0; i < n; ++i) {
      const auto& h = handles_[static_cast<std::size_t>(i)];
      if (h != nullptr) h->stats().accumulate_into(s);
    }
    return s;
  }

  // Test/diagnostic visibility into per-shard pool occupancy: a shard no
  // attempt touched has every slot free, which is how test_lock_table
  // checks that single-lock attempts stay shard-local.
  std::uint32_t shard_desc_capacity(std::uint32_t s) const {
    return mem_[s]->desc_pool.capacity();
  }
  std::uint32_t shard_desc_free(std::uint32_t s) const {
    return mem_[s]->desc_pool.free_count();
  }
  std::uint32_t shard_snap_capacity(std::uint32_t s) const {
    return mem_[s]->snap_pool.capacity();
  }
  std::uint32_t shard_snap_free(std::uint32_t s) const {
    return mem_[s]->snap_pool.free_count();
  }

  // Shared-freelist transactions (pops/pushes, single or batched) against
  // one shard's pools. The allocation-locality tests assert this stays
  // flat across a steady-state uncontended window; bench_hotpath reports
  // it per attempt.
  std::uint64_t shard_freelist_ops(std::uint32_t s) const {
    return mem_[s]->desc_pool.freelist_ops() + mem_[s]->snap_pool.freelist_ops();
  }
  std::uint64_t freelist_ops() const {
    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < num_shards_; ++s) {
      total += shard_freelist_ops(s);
    }
    return total;
  }

  // Slots currently parked in `p`'s per-shard caches (descriptors +
  // snapshots). Quiescent-only diagnostic: the caches are owner-private.
  std::uint32_t cached_slots(Process p) const {
    const auto pidx = static_cast<std::size_t>(p.ebr_pid);
    std::uint32_t total = 0;
    for (std::uint32_t s = 0; s < num_shards_; ++s) {
      total += caches_[s]->desc[pidx]->size();
      total += caches_[s]->snap[pidx]->size();
    }
    return total;
  }

  // Test/diagnostic access to a lock's active set. An inspector must hold
  // an EBR guard (ebr_enter/ebr_exit) across get_set() and any use of the
  // returned snapshot. The adversary harness in exp_ablation uses this to
  // play the model's adaptive player, which may see all of history.
  Set& lock_set(std::uint32_t id) { return *locks_[id]; }

  // Batch support (executor::submit_batch): pre-enter/exit ONE shard's
  // guard through the handle's re-entrant depth counters, so a batch can
  // cover exactly its lock sets' shard footprint instead of the whole
  // table.
  void guard_shard_enter(Process p, std::uint32_t shard) {
    WFL_DASSERT(shard < num_shards_);
    shard_guard_enter(handle(p), shard);
  }
  void guard_shard_exit(Process p, std::uint32_t shard) {
    WFL_DASSERT(shard < num_shards_);
    shard_guard_exit(handle(p), shard);
  }

  // Inspector guard over the whole table (all shards): the player adversary
  // may look at any lock, so it gets reclamation protection everywhere.
  void ebr_enter(Process p) {
    Handle& h = handle(p);
    for (std::uint32_t s = 0; s < num_shards_; ++s) shard_guard_enter(h, s);
  }
  void ebr_exit(Process p) {
    Handle& h = handle(p);
    for (std::uint32_t s = 0; s < num_shards_; ++s) shard_guard_exit(h, s);
  }

  // Crash-harness support: release `p`'s EBR guards on its behalf. Legal
  // ONLY when the process provably takes no further steps (a fiber parked
  // forever by a CrashSchedule). See EbrDomain::abandon. The pid stays
  // retired — a crashed process's slot is never handed to a new session.
  void abandon_process(Process p) {
    WFL_CHECK(p.ebr_pid >= 0);
    for (std::uint32_t s = 0; s < num_shards_; ++s) {
      ebr_[s]->abandon(p.ebr_pid);
    }
  }

  // End-of-session (Session's destructor): drops any EBR guards on the
  // process's behalf. Legal for the same reason abandon_process is: the
  // caller guarantees the process takes no further steps under this
  // registration. Two cases:
  //
  //   * orderly end (no guard held — the process finished outside any
  //     attempt): the pid joins the registration free list and the slot —
  //     participant id, handle, striped stats — is reused by the next
  //     register_process();
  //   * crash-parked mid-attempt (a CrashSchedule stopped the fiber inside
  //     one of the attempt's guarded work segments, so its re-entrancy
  //     depths are still nonzero): the guards are force-dropped exactly
  //     like abandon_process, and the slot is retired forever — the stale
  //     depth counters mean the handle can never re-enter a guard
  //     correctly, so it must not be handed to a new session.
  void release_process(Process p) {
    WFL_CHECK(p.ebr_pid >= 0);
    Handle& h = handle(p);
    bool parked_in_guard = false;
    for (std::uint32_t s = 0; s < num_shards_; ++s) {
      parked_in_guard = parked_in_guard || h.guard_depth(s) != 0;
      ebr_[s]->abandon(p.ebr_pid);
    }
    // Spill the process's slot caches back to the shared pools in both
    // cases — in particular a crash-parked process must not leak its
    // cached slots (its pid is retired forever, so nothing would ever
    // reuse them). Safe to do from the releasing thread: the caller
    // guarantees the process takes no further steps.
    const auto pidx = static_cast<std::size_t>(p.ebr_pid);
    for (std::uint32_t s = 0; s < num_shards_; ++s) {
      caches_[s]->desc[pidx]->drain();
      caches_[s]->snap[pidx]->drain();
    }
    if (parked_in_guard) return;
    std::lock_guard<std::mutex> lk(reg_mutex_);
    free_pids_.push_back(p.ebr_pid);
  }

 public:
  // Diagnostics for the fast path (tests, bench_scaling).
  bool fast_path_enabled() const { return fast_enabled_; }
  bool cooperative_help_enabled() const { return cooperative_; }
  // Quiescent-only peek at a lock's thin word (0 = free).
  std::uint64_t thin_word_peek(std::uint32_t lock_id) const {
    return thin_[lock_id]->peek();
  }

 private:
  struct AttemptCtx;
  using Engine = AttemptEngine<Plat, AttemptCtx>;
  using ThinWord = typename Plat::template Atomic<std::uint64_t>;
  static constexpr std::uint32_t kDefaultSerialBlock = 1024;

  struct ShardMem {
    IndexPool<SetSnap<Desc*>> snap_pool;
    IndexPool<Desc> desc_pool;
    ShardMem(std::uint32_t snap_cap, std::uint32_t desc_cap)
        : snap_pool(snap_cap), desc_pool(desc_cap) {}
  };

  // Per-process slot caches fronting one shard's pools (indexed by EBR
  // pid). Declared before ebr_ so EBR teardown can still push retired
  // slots into them; line-padded so neighbouring processes' caches never
  // share a line.
  struct ShardCaches {
    std::vector<CachePadded<SlotCache<Desc>>> desc;
    std::vector<CachePadded<SlotCache<SetSnap<Desc*>>>> snap;
    ShardCaches(std::size_t procs, ShardMem& mem) : desc(procs), snap(procs) {
      for (auto& c : desc) c->bind(&mem.desc_pool);
      for (auto& c : snap) c->bind(&mem.snap_pool);
    }
  };

  // RAII guard coverage for one descriptor's shard footprint, on top of the
  // handle's re-entrant depth counters. Returned by value from
  // AttemptCtx::lock_guards (guaranteed elision); neither copyable nor
  // movable.
  class GuardScope {
   public:
    GuardScope(LockTable& t, Handle& h, const Desc& p) : t_(t), h_(h) {
      n_ = t_.shard_footprint({p.lock_ids, p.lock_count}, shards_);
      t_.enter_shards(h_, shards_, n_);
    }
    ~GuardScope() { t_.exit_shards(h_, shards_, n_); }
    GuardScope(const GuardScope&) = delete;
    GuardScope& operator=(const GuardScope&) = delete;

   private:
    LockTable& t_;
    Handle& h_;
    std::uint32_t shards_[kMaxLocksPerAttempt];
    std::uint32_t n_ = 0;
  };

  // The engine's memory/stats context (see core/attempt.hpp).
  struct AttemptCtx {
    LockTable& t;
    Handle& h;
    using Desc = LockTable::Desc;

    Set& set(std::uint32_t lock_id) { return *t.locks_[lock_id]; }
    StatsSlab& stats() { return h.stats(); }
    MemberList<Desc*>& run_scratch() { return h.run_scratch(); }
    GuardScope lock_guards(Desc& p) { return GuardScope(t, h, p); }
    Desc* thin_rival(std::uint32_t lock_id) {
      return t.thin_rival(h, lock_id);
    }
    int pid() { return h.pid(); }
    bool cooperative() { return t.cooperative_; }
    std::uint32_t claim_patience() { return t.cfg_.claim_patience; }
  };
  friend struct AttemptCtx;

  // Initial sizes only: the pools grow on demand (reclamation can stall for
  // as long as any process is preempted inside an EBR guard, so no static
  // bound is safe — see arena.hpp).
  static std::uint32_t auto_snap_capacity(int procs) {
    return std::max<std::uint32_t>(4096,
                                   static_cast<std::uint32_t>(procs) * 256);
  }
  static std::uint32_t auto_desc_capacity(int procs) {
    return std::max<std::uint32_t>(512,
                                   static_cast<std::uint32_t>(procs) * 32);
  }
  std::uint32_t per_shard(std::uint32_t total, std::uint32_t floor) const {
    return std::max(floor, total / num_shards_);
  }

  // Largest power of two <= min(max_procs, num_locks, kMaxShards): enough
  // shards that processes spread out, never more shards than locks (a
  // shard without locks is pure overhead), and 1 for the single-process
  // spaces the unit tests build by the hundreds.
  static std::uint32_t auto_shards(int max_procs, int num_locks) {
    std::uint32_t s = 1;
    while (s * 2 <= kMaxShards && static_cast<int>(s * 2) <= max_procs &&
           static_cast<int>(s * 2) <= num_locks) {
      s *= 2;
    }
    return s;
  }

  // Distinct shards of an attempt's lock set, home shard first. At most
  // L <= kMaxLocksPerAttempt entries.
  std::uint32_t shard_footprint(std::span<const std::uint32_t> lock_ids,
                                std::uint32_t* out) const {
    std::uint32_t n = 0;
    for (std::size_t i = 0; i < lock_ids.size(); ++i) {
      const std::uint32_t s = shard_of(lock_ids[i]);
      bool seen = false;
      for (std::uint32_t j = 0; j < n; ++j) seen = seen || out[j] == s;
      if (!seen) out[n++] = s;
    }
    return n;
  }

  // Posts release events to the installed sink, if any. One relaxed load
  // on the hot path when no sink is installed; the sink's own ordering
  // obligations are the executor's (its park protocol re-validates under
  // its wait-list locks, so advisory ordering here suffices).
  void notify_release(std::span<const std::uint32_t> lock_ids,
                      int origin_pid) {
    WakeSink* sink = wake_sink_.load(std::memory_order_acquire);
    WFL_CHK_ATOMIC(&wake_sink_, kLoad, acquire, kWakeSinkLoad,
                   reinterpret_cast<std::uintptr_t>(sink));
    if (sink == nullptr) return;
    for (const std::uint32_t id : lock_ids) sink->on_release(id, origin_pid);
  }

  void shard_guard_enter(Handle& h, std::uint32_t s) {
    if (h.guard_depth(s)++ == 0) ebr_[s]->enter(h.pid());
  }
  void shard_guard_exit(Handle& h, std::uint32_t s) {
    WFL_DASSERT(h.guard_depth(s) > 0);
    if (--h.guard_depth(s) == 0) ebr_[s]->exit(h.pid());
  }
  void enter_shards(Handle& h, const std::uint32_t* shards, std::uint32_t n) {
    for (std::uint32_t j = 0; j < n; ++j) shard_guard_enter(h, shards[j]);
  }
  void exit_shards(Handle& h, const std::uint32_t* shards, std::uint32_t n) {
    for (std::uint32_t j = 0; j < n; ++j) shard_guard_exit(h, shards[j]);
  }

  // EBR deleter for descriptors: drop one shard's reference; the last one
  // returns the pool slot to the owner's home-shard cache. ctx is that
  // cache (deleters run on the retiring participant, or under quiescent
  // domain teardown — single-owner either way).
  static void release_descriptor(void* ctx, std::uint32_t handle) {
    auto* cache = static_cast<SlotCache<Desc>*>(ctx);
    Desc& d = cache->pool().at(handle);
    const std::uint32_t prev =
        d.retire_refs.fetch_sub(1, std::memory_order_acq_rel);
    WFL_CHK_ATOMIC(&d.retire_refs, kFetchAdd, acq_rel, kRetireRefsDrop,
                   prev - 1);
    if (prev == 1) {
      cache->free(handle);
    } else {
      // Multi-shard descriptor: another shard's grace period still holds a
      // reference. Only reachable when the attempt's lock set spans shards.
      WFL_FUZZ_SITE(kSiteMultiShardRetire);
    }
  }

  LockConfig cfg_;
  int max_procs_;
  std::uint32_t num_shards_;
  std::uint32_t serial_block_;
  bool fast_enabled_ = false;
  bool cooperative_ = false;
  // One thin word per lock, line-padded: under contention rivals hammer a
  // lock's word with observe CASes and the owner with publish/release
  // CASes — neighbouring locks must not share that line.
  std::vector<CachePadded<ThinWord>> thin_;
  // Order matters: each EbrDomain's destructor drains retired objects back
  // into the per-process caches and pools — possibly of *other* shards
  // (cross-shard descriptors) — and runs any pending fast-path cooldown
  // deleters against their handles, so every pool, cache AND handle must
  // outlive every domain: mem_, caches_ and handles_ are declared before
  // ebr_ (members are destroyed in reverse order), and locks_/set_mem_
  // (which reference both) come after.
  std::vector<std::unique_ptr<ShardMem>> mem_;
  std::vector<std::unique_ptr<ShardCaches>> caches_;
  std::vector<std::unique_ptr<Handle>> handles_;  // indexed by pid; fixed size
  std::vector<std::unique_ptr<EbrDomain>> ebr_;
  std::vector<SetMem<Desc*>> set_mem_;
  std::vector<std::unique_ptr<Set>> locks_;

  std::atomic<std::uint64_t> serial_hwm_{1};
  // Raw atomic (not Plat::Atomic): loads of the sink are runtime plumbing,
  // not steps of the paper's model — installing one must not perturb step
  // accounting. Null whenever no async executor is attached.
  std::atomic<WakeSink*> wake_sink_{nullptr};
  std::mutex reg_mutex_;
  std::vector<int> free_pids_;  // released slots awaiting reuse (reg_mutex_)
  std::atomic<int> registered_{0};
};

}  // namespace wfl
