// Cross-process lock table: Algorithm 3 in a shared-memory arena
// (DESIGN.md §10).
//
// ShmLockTable is the pointer-free sibling of LockTable: every piece of
// shared state — descriptors, set snapshots, announcement slots, EBR
// participants, session records — lives in a ShmArena and is addressed by
// pool handle or byte offset, so independent OS processes can attach the
// same table at different base addresses. The competition core is the SAME
// AttemptEngine the in-process table runs (core/attempt.hpp is duck-typed
// over its context); what changes is the context: sets are read through a
// handle-resolving view, thunks are interpretable POD programs instead of
// closures, and there is no thin-word fast path or cooperative helping
// (both are single-address-space optimizations; the descriptor path is the
// paper's algorithm and needs neither).
//
// The honest part of the paper's fault model lives here. A "crashed
// process" is a real SIGKILL, and recovery is SURVIVOR-DRIVEN:
//
//   * each session binds its OS pid and heartbeats a lease word in its
//     shared EBR participant on every attempt;
//   * any attacher that observes a dead pid (kill(0) probe) or a stalled
//     lease claims the victim's session record with one CAS (kLive ->
//     kReaping, exactly one reaper wins) and recovers:
//       - the victim's EBR guard is abandoned (legal: the SIGKILL evidence
//         is the no-further-steps proof EbrDomain::abandon requires),
//         un-pinning the global epoch;
//       - a REVEALED in-flight descriptor (priority > 0) is driven through
//         Engine::run — decide + celebrate-if-won completes the victim's
//         thunk exactly once via the idempotence log, the same replay any
//         helper performs;
//       - an UNREVEALED one (priority still pending) is eliminated: no
//         getSet ever surfaced it (the flag filter), so no helper can have
//         depended on it winning, and losing is the only sound fate;
//       - the victim's announcement slots are cleared by owner-scan and
//         re-climbed, removing it from every lock's set;
//   * the victim's pool slots — its in-flight descriptor, anything parked
//     in its private SlotCache, its pending local retirements — leak
//     forever, bounded per crash and priced into the fixed pool sizing.
//     Its pid is never recycled to a new session.
//
// Survivors' wait-freedom is preserved: recovery adds a bounded amount of
// work (one run() + L·C owner scans per crash), and everything a survivor
// waits on — status CASes, set climbs — is the bounded competition the
// paper already prices in. A crashed winner's lock is released the moment
// any survivor celebrates its thunk and the reaper removes it from the
// sets; nothing blocks on the corpse.
#pragma once

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>

#include "wfl/active/active_set.hpp"
#include "wfl/active/multi_set.hpp"
#include "wfl/core/attempt.hpp"
#include "wfl/core/config.hpp"
#include "wfl/core/descriptor.hpp"
#include "wfl/core/lock_table.hpp"
#include "wfl/core/process.hpp"
#include "wfl/idem/cell.hpp"
#include "wfl/idem/idem.hpp"
#include "wfl/mem/arena.hpp"
#include "wfl/mem/ebr.hpp"
#include "wfl/platform/real.hpp"
#include "wfl/util/shm.hpp"

namespace wfl {

namespace shm_detail {
// The thunk interpreter needs an arena to resolve cell offsets, but
// Engine::celebrate_if_won calls thunks with only an IdemCtx — so the
// attached arena is registered process-globally. One arena per process is
// the supported shape (the experiments and tests need exactly one); a
// second, different registration is a loud failure, not a silent misread.
inline std::atomic<const ShmArena*> g_thunk_arena{nullptr};

inline void register_thunk_arena(const ShmArena* a) {
  const ShmArena* cur = g_thunk_arena.load(std::memory_order_acquire);
  WFL_CHECK_MSG(cur == nullptr || cur == a,
                "one ShmArena per process: a different arena is registered");
  g_thunk_arena.store(a, std::memory_order_release);
}
inline void unregister_thunk_arena(const ShmArena* a) {
  const ShmArena* cur = g_thunk_arena.load(std::memory_order_acquire);
  if (cur == a) g_thunk_arena.store(nullptr, std::memory_order_release);
}
}  // namespace shm_detail

// The cross-process thunk: an interpretable program over arena-resident
// cells, not a closure. A FixedFunction captures pointers that are garbage
// in another address space; survivors must be able to REPLAY the victim's
// thunk, so the thunk itself has to be data. kAddCells covers the locked
// read-modify-write shape every crash experiment and test in this repo
// uses; the opcode space leaves room for richer programs.
//
// The trap fields are crash-harness hooks: when the interpreting process's
// OS pid matches trap_os_pid, the thunk raises trap_flag after its first
// cell op and freezes (awaiting SIGKILL) — wedging the victim MID-THUNK
// with a partially-applied, partially-logged program. Survivors replaying
// the thunk have a different pid, skip the trap, and complete it; the
// agreement log makes their replay of the already-applied prefix
// write-identical (idem/idem.hpp), so the program still applies exactly
// once.
struct ShmThunk {
  enum Op : std::uint32_t { kNone = 0, kAddCells };
  static constexpr std::uint32_t kMaxCells = 4;

  std::uint32_t op = kNone;
  std::uint32_t n_cells = 0;
  Offset<Cell<RealPlat>> cells[kMaxCells] = {};
  std::uint32_t delta = 1;
  int trap_os_pid = 0;
  Offset<std::atomic<std::uint32_t>> trap_flag = {};

  void reset() { *this = ShmThunk{}; }
  explicit operator bool() const { return op != kNone; }

  void operator()(IdemCtx<RealPlat>& m) const {
    if (op != kAddCells) return;
    const ShmArena* a =
        shm_detail::g_thunk_arena.load(std::memory_order_acquire);
    WFL_CHECK_MSG(a != nullptr, "ShmThunk run with no arena registered");
    for (std::uint32_t i = 0; i < n_cells; ++i) {
      Cell<RealPlat>& c = *cells[i].in(*a);
      m.store(c, m.load(c) + delta);
      if (i == 0 && trap_os_pid != 0 && trap_os_pid == ::getpid()) {
        // No IdemCtx ops inside the trap branch: the logged op sequence
        // must be identical for the victim and its replayers.
        if (auto* f = trap_flag.in(*a)) {
          f->store(1, std::memory_order_release);
        }
        for (;;) ::usleep(1000);  // hold the win; the harness SIGKILLs us
      }
    }
  }
};

using ShmDesc = Descriptor<RealPlat, ShmThunk>;

// One announcement slot of a shm active set: owner is a descriptor handle
// + 1 (0 = free), set is a snapshot handle in the table's snapshot pool.
// Same Algorithm 1 discipline as ActiveSet, minus the pointers.
struct ShmSetSlot {
  RealPlat::Atomic<std::uint32_t> owner;
  RealPlat::Atomic<std::uint32_t> set;
};

// Session lifecycle states (shared record). Pids move kFree -> kLive ->
// {kClosed, kReaping -> kReaped} and never back: a crashed or closed pid's
// slot is retired forever (its guard-depth/log state cannot be proven
// clean, and recycling it would let a stale announcement impersonate a new
// session).
enum : std::uint32_t {
  kSessFree = 0,
  kSessLive = 1,
  kSessReaping = 2,
  kSessReaped = 3,
  kSessClosed = 4,
};

struct alignas(kCacheLine) ShmSessionRec {
  std::atomic<std::uint32_t> state;
  // Handle+1 of the in-flight descriptor, 0 = none. Published (release)
  // after line group A is complete, so a reaper's acquire load sees a
  // fully-formed descriptor. This is the one piece of crash-recovery state
  // the in-process table never needed: there, the abandoning thread could
  // inspect the victim's stack; here the stack died with the process.
  std::atomic<std::uint32_t> cur_desc;
};

struct ShmTableHeader {
  LockConfig cfg;
  int max_procs = 0;
  std::uint32_t num_locks = 0;
  std::uint32_t set_cap = 0;
  std::uint32_t empty_snap = 0;  // reserved all-empty snapshot handle
  std::uint64_t desc_pool_off = 0;
  std::uint64_t snap_pool_off = 0;
  std::uint64_t ebr_off = 0;
  std::uint64_t sets_off = 0;      // ShmSetSlot[num_locks * set_cap]
  std::uint64_t sessions_off = 0;  // ShmSessionRec[max_procs]
  std::atomic<std::uint64_t> serial_hwm{1};
};

class ShmLockTable {
 public:
  using Desc = ShmDesc;
  using Snap = SetSnap<std::uint32_t>;  // members are owner words (handle+1)

  struct Sizing {
    std::uint32_t desc_pool_capacity;  // 0 = auto
    std::uint32_t snap_pool_capacity;  // 0 = auto
  };

  // A process-local member view of one lock's set: get_set() resolves the
  // current slot-0 snapshot's handles into descriptor pointers in THIS
  // process's mapping, into a persistent per-session buffer. Shaped so
  // multi_get_set's duck-typing (snap->count / snap->items / flag filter)
  // works unchanged. Caller holds the EBR guard across get_set() and every
  // use of the members, exactly as with ActiveSet.
  struct LocalSnap {
    std::uint32_t count = 0;
    Desc* items[kMaxSetCap];
  };

  class Session;

  class SetView {
   public:
    const LocalSnap* get_set() {
      t_->snapshot_members(lock_id_, *buf_);
      return buf_;
    }

   private:
    friend class ShmLockTable;
    ShmLockTable* t_ = nullptr;
    LocalSnap* buf_ = nullptr;
    std::uint32_t lock_id_ = 0;
  };

  // Per-process session state. The shared part is the EBR participant
  // (announcement + lease) and the ShmSessionRec; everything here — stats,
  // scratch, slot cache, serial block — is private to the owning process
  // and dies with it (the cached slots leak on a crash; see the header
  // comment).
  class Session {
   public:
    int pid() const { return pid_; }
    StatsSlab& stats() { return stats_; }

    // Crash-harness hooks: run at the two descriptor-path points a real
    // crash is most interesting (announced-but-unrevealed, and revealed-
    // but-undriven). The experiments park the process inside one and
    // SIGKILL it there.
    std::function<void()> trap_pre_reveal;
    std::function<void()> trap_post_reveal;

   private:
    friend class ShmLockTable;
    int pid_ = -1;
    std::uint32_t guard_depth_ = 0;
    std::uint64_t serial_next_ = 0;
    std::uint64_t serial_end_ = 0;
    StatsSlab stats_;
    MemberList<Desc*> help_scratch_;
    MemberList<Desc*> run_scratch_;
    LocalSnap snap_buf_;
    SlotCache<Desc, 64, ShmPool<Desc>> dcache_;
  };

  // --- construction --------------------------------------------------------

  // Builds a table inside the arena and publishes it as the arena root.
  // Creator-only; every other process (and the creator itself) talks to it
  // through the returned local accessor.
  static std::unique_ptr<ShmLockTable> create_in(ShmArena& shm,
                                                 const LockConfig& cfg,
                                                 int max_procs, int num_locks,
                                                 Sizing sizing = Sizing{0, 0}) {
    cfg.validate();
    WFL_CHECK(max_procs > 0 && num_locks > 0);
    WFL_CHECK(cfg.max_locks <= kMaxLocksPerAttempt);
    WFL_CHECK(cfg.max_thunk_steps <= kMaxThunkOps);
    WFL_CHECK(cfg.kappa <= kMaxSetCap);
    // The delays are step-counted in thread_locals that mean nothing across
    // address spaces, and the fairness argument they buy assumes a common
    // step clock; the cross-process table runs practical mode only.
    WFL_CHECK_MSG(cfg.delay_mode == DelayMode::kOff,
                  "ShmLockTable supports DelayMode::kOff only");

    const std::uint64_t header_off = shm.create<ShmTableHeader>();
    ShmTableHeader* h = shm.at<ShmTableHeader>(header_off);
    h->cfg = cfg;
    h->max_procs = max_procs;
    h->num_locks = static_cast<std::uint32_t>(num_locks);
    // Announcement capacity: κ live attempts per lock, plus slack for
    // dead-but-unreaped announcements (a crashed process's slot stays
    // claimed until a survivor reaps it, and that corpse does not count
    // against the liveness contract κ promises).
    h->set_cap = std::min(kMaxSetCap, cfg.kappa + kCrashSlackSlots);

    // Pool sizing: the steady-state demand bounds of the in-process table,
    // plus crash leakage — each crash retires forever at most one in-flight
    // descriptor, one SlotCache of cached slots, and one retirement
    // bucket's worth of snapshots.
    const auto procs = static_cast<std::uint32_t>(max_procs);
    const std::uint32_t desc_cap =
        sizing.desc_pool_capacity != 0
            ? sizing.desc_pool_capacity
            : std::max<std::uint32_t>(1024, procs * 256);
    // Snapshot demand is retire-rate times reclamation latency, and on an
    // oversubscribed host the latency is scheduling quanta (a preempted
    // guard holder pins the epoch for milliseconds), not instruction
    // counts — size for that, not for the quiescent steady state. The
    // backpressure path below makes undersizing degrade throughput rather
    // than abort, but headroom is what keeps the common case wait-free.
    const std::uint32_t snap_cap =
        sizing.snap_pool_capacity != 0
            ? sizing.snap_pool_capacity
            : std::max<std::uint32_t>(16384, procs * 2048);

    h->desc_pool_off = ShmPool<Desc>::create_in(shm, desc_cap);
    h->snap_pool_off = ShmPool<Snap>::create_in(shm, snap_cap);
    h->ebr_off = ShmEbrDomain::create_in(shm, max_procs);
    h->sessions_off =
        shm.create_array<ShmSessionRec>(static_cast<std::size_t>(max_procs));
    h->sets_off = shm.create_array<ShmSetSlot>(
        static_cast<std::size_t>(h->num_locks) * h->set_cap);

    auto t = std::unique_ptr<ShmLockTable>(new ShmLockTable());
    t->bind(shm, header_off);

    // Reserve the permanently-empty sentinel snapshot (the `set[C]` corner
    // case of Algorithm 1) and point every slot at it.
    const std::uint32_t empty = t->snap_pool_.alloc();
    Snap& es = t->snap_pool_.at(empty);
    es.count = 0;
    es.self_index = empty;
    h->empty_snap = empty;
    ShmSetSlot* slots = shm.at<ShmSetSlot>(h->sets_off);
    for (std::uint64_t i = 0;
         i < static_cast<std::uint64_t>(h->num_locks) * h->set_cap; ++i) {
      slots[i].owner.init(0);
      slots[i].set.init(empty);
    }

    shm.set_root(header_off);
    shm.publish_ready();
    return t;
  }

  // Joins an existing table (same process or another one). The arena must
  // outlive the returned accessor and every Session opened through it.
  static std::unique_ptr<ShmLockTable> attach(ShmArena& shm) {
    WFL_CHECK_MSG(shm.root() != ShmArena::kNullOffset,
                  "ShmLockTable::attach: arena has no table root");
    auto t = std::unique_ptr<ShmLockTable>(new ShmLockTable());
    t->bind(shm, shm.root());
    return t;
  }

  ~ShmLockTable() {
    if (arena_ != nullptr) shm_detail::unregister_thunk_arena(arena_);
  }

  ShmLockTable(const ShmLockTable&) = delete;
  ShmLockTable& operator=(const ShmLockTable&) = delete;

  const LockConfig& config() const { return h_->cfg; }
  int max_procs() const { return h_->max_procs; }
  std::uint32_t num_locks() const { return h_->num_locks; }

  // --- sessions ------------------------------------------------------------

  std::unique_ptr<Session> open_session() {
    auto s = std::make_unique<Session>();
    s->pid_ = ebr_.register_participant();
    s->dcache_.bind(&desc_pool_);
    ShmSessionRec& r = rec(s->pid_);
    std::uint32_t expect = kSessFree;
    WFL_CHECK_MSG(
        r.state.compare_exchange_strong(expect, kSessLive,
                                        std::memory_order_acq_rel),
        "session slot not fresh: pids are never recycled");
    r.cur_desc.store(0, std::memory_order_relaxed);
    ebr_.bind_os_pid(s->pid_, static_cast<int>(::getpid()));
    return s;
  }

  // Orderly end: spill the private cache back to the shared pool and mark
  // the slot closed. The pid is still not recycled — pool slots are the
  // recyclable resource, pids are the audit trail.
  void close_session(Session& s) {
    WFL_CHECK(s.guard_depth_ == 0);
    ebr_.abandon(s.pid_);
    s.dcache_.drain();
    rec(s.pid_).state.store(kSessClosed, std::memory_order_release);
  }

  void heartbeat(Session& s) { ebr_.heartbeat(s.pid_); }
  std::uint64_t lease(int pid) const { return ebr_.lease(pid); }
  int os_pid(int pid) const { return ebr_.os_pid(pid); }

  // --- the attempt path ----------------------------------------------------

  // One tryLock attempt. Mirrors LockTable::attempt minus the pieces that
  // do not cross address spaces: no thin-word fast path, no cooperative
  // claims, no theory delays (create_in enforces kOff), single EBR domain.
  bool try_locks(Session& s, std::span<const std::uint32_t> lock_ids,
                 const ShmThunk& thunk) {
    WFL_CHECK(!lock_ids.empty() &&
              lock_ids.size() <= h_->cfg.max_locks);
    for (std::size_t i = 0; i < lock_ids.size(); ++i) {
      WFL_CHECK(lock_ids[i] < h_->num_locks);
    }
    s.stats_.add_attempt();
    ebr_.heartbeat(s.pid_);

    const std::uint32_t didx = alloc_desc(s);
    Desc& d = desc_pool_.at(didx);
    s.stats_.add_log_slot_resets(d.reinit(next_serial(s)));
    d.lock_count = static_cast<std::uint32_t>(lock_ids.size());
    for (std::size_t i = 0; i < lock_ids.size(); ++i) {
      d.lock_ids[i] = lock_ids[i];
    }
    d.thunk = thunk;
    d.retire_refs.store(1, std::memory_order_relaxed);
    // Publish the in-flight handle for a potential reaper BEFORE the first
    // set insert: from here on a crash leaves recoverable state.
    rec(s.pid_).cur_desc.store(didx + 1, std::memory_order_release);

    AttemptCtx cx{this, &s};

    // --- work segment 1: help phase + multiInsert ---
    guard_enter(s);
    if (h_->cfg.help_phase) {
      for (std::uint32_t i = 0; i < d.lock_count; ++i) {
        multi_get_set<RealPlat>(cx.set(d.lock_ids[i]), s.help_scratch_);
        for (Desc* q : s.help_scratch_) {
          s.stats_.add_help();
          Engine::help(cx, *q);
        }
      }
    }
    for (std::uint32_t i = 0; i < d.lock_count; ++i) {
      d.slot_of_lock[i] = set_insert(d.lock_ids[i], didx + 1, s);
    }
    guard_exit(s);

    if (s.trap_pre_reveal) s.trap_pre_reveal();

    // --- the reveal step ---
    d.priority.store(draw_priority<RealPlat>());

    if (s.trap_post_reveal) s.trap_post_reveal();

    // --- work segment 2: compete, then multiRemove ---
    guard_enter(s);
    Engine::run(cx, d);
    d.clear_flag();
    for (std::uint32_t i = 0; i < d.lock_count; ++i) {
      set_remove(d.lock_ids[i], d.slot_of_lock[i], s);
    }
    guard_exit(s);

    rec(s.pid_).cur_desc.store(0, std::memory_order_release);
    const bool won = d.status.load() == kStatusWon;
    if (won) s.stats_.add_win();
    ebr_.retire(s.pid_, &s.dcache_, didx, &release_descriptor);
    return won;
  }

  // --- survivor-driven recovery --------------------------------------------

  // Probes every live session's OS pid and reaps the dead ones. Returns
  // the number reaped. Any session may call this at any time; the per-
  // victim claim CAS makes concurrent reapers race safely (one wins, the
  // rest skip).
  int reap_dead(Session& s) {
    int reaped = 0;
    const int n = ebr_.participant_count();
    for (int pid = 0; pid < n; ++pid) {
      if (pid == s.pid_) continue;
      if (rec(pid).state.load(std::memory_order_acquire) != kSessLive) {
        continue;
      }
      const int os = ebr_.os_pid(pid);
      if (os == 0 || shm_pid_alive(os)) continue;
      if (reap(s, pid)) ++reaped;
    }
    return reaped;
  }

  // Reaps one victim. The caller owns the liveness evidence: a dead-pid
  // probe (reap_dead), or a lease stalled past the harness's threshold —
  // abandon() is only legal against a process that takes no further steps,
  // and a false positive here is the ONE way this layer can corrupt
  // itself, so lease thresholds must be chosen against worst-case
  // preemption, not typical latency (DESIGN.md §10).
  bool reap(Session& s, int victim_pid) {
    WFL_CHECK(victim_pid >= 0 && victim_pid < h_->max_procs &&
              victim_pid != s.pid_);
    ShmSessionRec& r = rec(victim_pid);
    std::uint32_t expect = kSessLive;
    if (!r.state.compare_exchange_strong(expect, kSessReaping,
                                         std::memory_order_acq_rel)) {
      return false;  // already reaped (or being reaped) by someone else
    }
    // Drop the victim's guard first: reclamation un-stalls even while the
    // recovery below is still running.
    ebr_.abandon(victim_pid);

    guard_enter(s);
    AttemptCtx cx{this, &s};
    const std::uint32_t cd = r.cur_desc.load(std::memory_order_acquire);
    if (cd != 0) {
      Desc& d = desc_pool_.at(cd - 1);
      if (d.priority.load() > 0) {
        // Revealed: finish the victim's competition on its behalf —
        // celebrate-if-won replays its thunk to completion (exactly once,
        // by the agreement log).
        Engine::run(cx, d);
      } else if (d.status.cas(kStatusActive, kStatusLost)) {
        // Announced but never revealed: the flag filter means no getSet
        // surfaced it and nobody can have helped it win; eliminate.
        s.stats_.add_elimination();
      }
      d.clear_flag();
      // multiRemove on the victim's behalf. Its slot_of_lock is owner-
      // private state that may have died mid-update; the owner-scan is the
      // crash-safe equivalent (bounded: L · C slots).
      for (std::uint32_t i = 0; i < d.lock_count; ++i) {
        ShmSetSlot* slots = set_slots(d.lock_ids[i]);
        for (std::uint32_t j = 0; j < h_->set_cap; ++j) {
          if (slots[j].owner.load() == cd) {
            slots[j].owner.store(0);
            climb(d.lock_ids[i], static_cast<int>(j), s);
          }
        }
      }
      // The victim's descriptor slot is NOT retired to the pool: its
      // private cache state died with it, so the slot leaks — bounded at
      // one per crash, priced into create_in's sizing.
    }
    guard_exit(s);
    r.cur_desc.store(0, std::memory_order_release);
    r.state.store(kSessReaped, std::memory_order_release);
    return true;
  }

  // --- diagnostics ---------------------------------------------------------

  std::uint32_t desc_free() const { return desc_pool_.free_count(); }
  std::uint32_t snap_free() const { return snap_pool_.free_count(); }
  std::uint64_t snap_alloc_total() const { return snap_pool_.alloc_total(); }
  std::uint64_t snap_free_total() const { return snap_pool_.free_total(); }
  std::uint64_t epoch() const { return ebr_.epoch(); }
  std::size_t pending_retired(const Session& s) const {
    return ebr_.pending_retired(s.pid_);
  }
  std::uint32_t session_state(int pid) const {
    return rec(pid).state.load(std::memory_order_acquire);
  }
  int participant_count() const { return ebr_.participant_count(); }
  bool participant_active(int pid) const {
    return ebr_.participant_active(pid);
  }
  std::uint64_t participant_epoch(int pid) const {
    return ebr_.participant_epoch(pid);
  }
  int participant_os_pid(int pid) const { return ebr_.os_pid(pid); }

  // Quiescent-only wedge probe: true iff some lock's set still announces a
  // descriptor that is active-and-revealed (a holder nobody can finish) or
  // belongs to an unreaped corpse. Mirrors exp_crash's any_held probe.
  bool any_holder(Session& s) {
    bool held = false;
    guard_enter(s);
    for (std::uint32_t lock = 0; lock < h_->num_locks && !held; ++lock) {
      ShmSetSlot* slots = set_slots(lock);
      for (std::uint32_t j = 0; j < h_->set_cap && !held; ++j) {
        const std::uint32_t owner = slots[j].owner.load();
        if (owner == 0) continue;
        Desc& d = desc_pool_.at(owner - 1);
        held = d.status.load() == kStatusActive && d.priority.load() > 0;
      }
    }
    guard_exit(s);
    return held;
  }

 private:
  struct AttemptCtx;
  using Engine = AttemptEngine<RealPlat, AttemptCtx>;

  static constexpr std::uint32_t kCrashSlackSlots = 8;
  static constexpr std::uint32_t kPoolLowWater = 64;
  static constexpr std::uint64_t kSerialBlock = 1024;

  ShmLockTable() = default;

  void bind(ShmArena& shm, std::uint64_t header_off) {
    arena_ = &shm;
    h_ = shm.at<ShmTableHeader>(header_off);
    desc_pool_.attach(shm, h_->desc_pool_off);
    snap_pool_.attach(shm, h_->snap_pool_off);
    ebr_.attach(shm, h_->ebr_off);
    sessions_ = shm.at<ShmSessionRec>(h_->sessions_off);
    shm_detail::register_thunk_arena(&shm);
  }

  ShmSessionRec& rec(int pid) const { return sessions_[pid]; }

  ShmSetSlot* set_slots(std::uint32_t lock_id) const {
    return arena_->at<ShmSetSlot>(h_->sets_off) +
           static_cast<std::uint64_t>(lock_id) * h_->set_cap;
  }

  std::uint64_t next_serial(Session& s) {
    if (s.serial_next_ == s.serial_end_) {
      s.serial_next_ =
          h_->serial_hwm.fetch_add(kSerialBlock, std::memory_order_acq_rel);
      s.serial_end_ = s.serial_next_ + kSerialBlock;
    }
    return s.serial_next_++;
  }

  // Re-entrant single-domain guard (the engine's lock_guards nests inside
  // the attempt's work-segment guard, exactly like the sharded table's
  // depth counters).
  void guard_enter(Session& s) {
    if (s.guard_depth_++ == 0) ebr_.enter(s.pid_);
  }
  void guard_exit(Session& s) {
    WFL_DASSERT(s.guard_depth_ > 0);
    if (--s.guard_depth_ == 0) ebr_.exit(s.pid_);
  }

  class GuardScope {
   public:
    GuardScope(ShmLockTable& t, Session& s) : t_(t), s_(s) {
      t_.guard_enter(s_);
    }
    ~GuardScope() { t_.guard_exit(s_); }
    GuardScope(const GuardScope&) = delete;
    GuardScope& operator=(const GuardScope&) = delete;

   private:
    ShmLockTable& t_;
    Session& s_;
  };

  // The engine context (core/attempt.hpp's duck-typed contract). No thin
  // words and no cooperative claims in shm mode: thin_rival is always
  // null, cooperative() false (help() degenerates to run(), the paper's
  // everyone-drives discipline).
  struct AttemptCtx {
    ShmLockTable* t;
    Session* s;
    SetView view;
    using Desc = ShmLockTable::Desc;

    SetView& set(std::uint32_t lock_id) {
      view.t_ = t;
      view.buf_ = &s->snap_buf_;
      view.lock_id_ = lock_id;
      return view;
    }
    StatsSlab& stats() { return s->stats_; }
    MemberList<Desc*>& run_scratch() { return s->run_scratch_; }
    GuardScope lock_guards(Desc&) { return GuardScope(*t, *s); }
    Desc* thin_rival(std::uint32_t) { return nullptr; }
    int pid() { return s->pid_; }
    bool cooperative() { return false; }
    std::uint32_t claim_patience() { return ~std::uint32_t{0}; }  // unused
  };
  friend struct AttemptCtx;

  // Resolve the current slot-0 snapshot's handles into local pointers.
  // Caller holds the EBR guard (the snapshot cannot be reclaimed, so the
  // handles cannot be recycled, while we copy).
  void snapshot_members(std::uint32_t lock_id, LocalSnap& out) {
    ShmSetSlot* slots = set_slots(lock_id);
    const std::uint32_t snap_h = slots[0].set.load();
    const Snap& snap = snap_pool_.at(snap_h);
    out.count = 0;
    for (std::uint32_t i = 0; i < snap.count && i < kMaxSetCap; ++i) {
      const std::uint32_t owner = snap.items[i];
      if (owner != 0) out.items[out.count++] = desc_pool_.ptr(owner - 1);
    }
  }

  // Algorithm 1 over handles (ActiveSet's insert/remove/climb verbatim,
  // with pool indices in place of pointers and the reserved empty-snapshot
  // handle as the above-top sentinel).
  int set_insert(std::uint32_t lock_id, std::uint32_t owner_val, Session& s) {
    ShmSetSlot* slots = set_slots(lock_id);
    for (int pass = 0; pass < 8; ++pass) {
      for (std::uint32_t i = 0; i < h_->set_cap; ++i) {
        if (slots[i].owner.load() == 0 && slots[i].owner.cas(0, owner_val)) {
          climb(lock_id, static_cast<int>(i), s);
          return static_cast<int>(i);
        }
      }
    }
    WFL_CHECK_MSG(false,
                  "shm set insert found no free slot: point contention "
                  "exceeds kappa + crash slack (unreaped corpses?)");
    return -1;
  }

  void set_remove(std::uint32_t lock_id, int slot, Session& s) {
    ShmSetSlot* slots = set_slots(lock_id);
    slots[static_cast<std::uint32_t>(slot)].owner.store(0);
    climb(lock_id, slot, s);
  }

  void climb(std::uint32_t lock_id, int i, Session& s) {
    if (snap_pool_.free_count() < kPoolLowWater) ebr_.collect(s.pid_);
    ShmSetSlot* slots = set_slots(lock_id);
    for (int j = i; j >= 0; --j) {
      for (int k = 0; k < 2; ++k) {
        // Allocate BEFORE reading cur/above: alloc_snap may bounce the EBR
        // guard to wait out a reclamation stall, and no snapshot handle
        // read under the old guard may be used after re-entry.
        const std::uint32_t idx = alloc_snap(s);
        Snap& fresh = snap_pool_.at(idx);
        fresh.self_index = idx;
        const std::uint32_t cur =
            slots[static_cast<std::uint32_t>(j)].set.load();
        const std::uint32_t above =
            (j + 1 == static_cast<int>(h_->set_cap))
                ? h_->empty_snap
                : slots[static_cast<std::uint32_t>(j) + 1].set.load();
        const std::uint32_t member =
            slots[static_cast<std::uint32_t>(j)].owner.load();
        build(fresh, snap_pool_.at(above), member);
        if (slots[static_cast<std::uint32_t>(j)].set.cas(cur, idx)) {
          retire_snap(cur, s);
        } else {
          snap_pool_.free(idx);  // never published
        }
      }
    }
  }

  // --- allocation backpressure ---------------------------------------------
  //
  // The pools are fixed-size shared arrays, so the unbounded-memory
  // assumption behind the paper's wait-freedom does not literally hold
  // here: a process preempted (or killed) inside an EBR guard pins the
  // epoch, and while it is pinned every retirement stays pending and the
  // pools only drain. On an oversubscribed host a single scheduling
  // quantum is enough churn to empty a correctly-sized snapshot pool.
  // The honest response is backpressure, not abort: stop allocating, push
  // reclamation (collect), probe for corpses to reap (a SIGKILLed guard
  // holder pins the epoch forever until abandoned), and let the preempted
  // holder run. Progress during a stall degrades from wait-free to
  // blocking-on-reclamation; the paper's bounds resume as soon as
  // reclamation catches up (DESIGN.md §10).
  //
  // Deadlock-freedom: the waiter fully exits its own guard while waiting
  // (a waiter announced at epoch E otherwise pins global at E+1 and its
  // own current-epoch bucket — holding most of the pool after a long peer
  // stall — could never reach the E+2 drain bar). Callers therefore must
  // not hold any guard-protected pointer across an alloc_* call; climb()
  // is ordered alloc-first for exactly this reason.
  static constexpr std::uint32_t kAllocPatienceSpins = 100000;  // ~10 s

  template <typename TryAlloc>
  std::uint32_t alloc_backpressure(Session& s, TryAlloc&& try_alloc,
                                   const char* what) {
    const std::uint32_t depth = s.guard_depth_;
    if (depth > 0) {
      s.guard_depth_ = 0;
      ebr_.exit(s.pid_);
    }
    std::uint32_t idx = kNullIndex;
    for (std::uint32_t spin = 0; idx == kNullIndex; ++spin) {
      WFL_CHECK_MSG(spin < kAllocPatienceSpins,
                    "shm pool allocation stalled past patience: pool "
                    "undersized, or a live peer wedged inside a guard");
      ebr_.collect(s.pid_);
      idx = try_alloc();
      if (idx != kNullIndex) break;
      if ((spin & 63u) == 63u) reap_dead(s);
      ::usleep(100);
      (void)what;
    }
    if (depth > 0) {
      ebr_.enter(s.pid_);
      s.guard_depth_ = depth;
    }
    return idx;
  }

  std::uint32_t alloc_snap(Session& s) {
    const std::uint32_t idx = snap_pool_.try_alloc();
    if (idx != kNullIndex) return idx;
    return alloc_backpressure(
        s, [this] { return snap_pool_.try_alloc(); }, "snapshot");
  }

  std::uint32_t alloc_desc(Session& s) {
    const std::uint32_t idx = s.dcache_.try_alloc();
    if (idx != kNullIndex) return idx;
    return alloc_backpressure(
        s, [&s] { return s.dcache_.try_alloc(); }, "descriptor");
  }

  void build(Snap& out, const Snap& above, std::uint32_t member) {
    WFL_CHECK(above.count <= kMaxSetCap);
    out.count = 0;
    for (std::uint32_t i = 0; i < above.count; ++i) {
      if (above.items[i] != member) out.items[out.count++] = above.items[i];
    }
    if (member != 0) {
      WFL_CHECK_MSG(out.count < kMaxSetCap, "shm set snapshot overflow");
      out.items[out.count++] = member;
    }
  }

  void retire_snap(std::uint32_t snap_h, Session& s) {
    if (snap_h == h_->empty_snap) return;
    ebr_.retire(s.pid_, this, snap_h, &free_snap);
  }

  static void free_snap(void* ctx, std::uint32_t handle) {
    static_cast<ShmLockTable*>(ctx)->snap_pool_.free(handle);
  }

  // EBR deleter for an orderly attempt's descriptor (single domain, so
  // retire_refs is 1 and the slot goes straight back to the owner's
  // cache). Crashed descriptors never reach this — they leak by design.
  static void release_descriptor(void* ctx, std::uint32_t handle) {
    auto* cache = static_cast<SlotCache<Desc, 64, ShmPool<Desc>>*>(ctx);
    Desc& d = cache->pool().at(handle);
    const std::uint32_t prev =
        d.retire_refs.fetch_sub(1, std::memory_order_acq_rel);
    if (prev == 1) cache->free(handle);
  }

  const ShmArena* arena_ = nullptr;
  ShmTableHeader* h_ = nullptr;
  ShmPool<Desc> desc_pool_;
  ShmPool<Snap> snap_pool_;
  ShmEbrDomain ebr_;
  ShmSessionRec* sessions_ = nullptr;
};

// The placement factories declared on LockTable (the API callers reach
// first). Only the real platform can cross address spaces; simulated plats
// have no second process to attach from.
template <typename Plat>
std::unique_ptr<ShmLockTable> LockTable<Plat>::create_in(
    ShmArena& shm, const LockConfig& cfg, int max_procs, int num_locks) {
  static_assert(!Plat::kSimulated,
                "shared-memory placement requires RealPlat");
  return ShmLockTable::create_in(shm, cfg, max_procs, num_locks);
}

template <typename Plat>
std::unique_ptr<ShmLockTable> LockTable<Plat>::attach(ShmArena& shm) {
  static_assert(!Plat::kSimulated,
                "shared-memory placement requires RealPlat");
  return ShmLockTable::attach(shm);
}

}  // namespace wfl
