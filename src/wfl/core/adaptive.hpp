// §6.2: handling unknown bounds (Theorem 6.10).
//
// The known-bounds algorithm used κ and L twice: to size the announcement
// arrays and to compute the fixed delays. This variant removes both uses:
//
//   * announcement arrays are sized P (total processes), while set sizes —
//     and hence step costs — stay proportional to the true contention;
//   * the reveal is split: after inserting, a descriptor performs its
//     *participation-reveal* (priority := TBD — it is now visible as a
//     competitor, but its priority is still hidden), takes a local snapshot
//     of every lock's set, and only then its *priority-reveal*. After the
//     priority is revealed the active sets are never queried again on its
//     behalf: the competition runs against the stored snapshots, so the
//     adversary learns the priority only after the set of potential
//     threateners is frozen;
//   * instead of delaying to a κ,L-derived constant, the descriptor
//     measures its own pre-participation work w and pads it to the next
//     power of two — the guess-and-double trick that confines the adversary
//     to log(κLT) distinguishable reveal times, which is exactly where the
//     theorem's log(κLT) fairness loss comes from.
//
// One case the PODC text leaves to the full version: a snapshot member
// whose priority is still TBD when the competition examines it. Skipping
// such members is provably unsafe — two descriptors that each snapshot the
// other pre-priority-reveal could both win a shared lock:
//
//   p inserts, snapshots {..no q..}; q inserts, snapshots {..p(TBD)..};
//   if q skips p and p never sees q, both decide won.
//
// Since inserts complete before snapshots are taken, at least one of any
// conflicting pair sees the other (their insert/snapshot windows cannot
// both precede each other). We therefore adopt a *seer-eliminates* rule:
// re-read the member's priority once more; if it is still TBD, eliminate
// it. Elimination happens before either priority is known, so it cannot
// bias the priority distribution — it costs success probability, which
// experiment E8 measures and which stays inside the theorem's log factor.
// Safety then follows from the same celebrate-before-decide ordering as
// Algorithm 3.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "wfl/active/active_set.hpp"
#include "wfl/active/multi_set.hpp"
#include "wfl/core/attempt.hpp"
#include "wfl/core/config.hpp"
#include "wfl/core/descriptor.hpp"
#include "wfl/core/lock_table.hpp"
#include "wfl/core/process.hpp"
#include "wfl/core/session.hpp"
#include "wfl/idem/idem.hpp"
#include "wfl/mem/arena.hpp"
#include "wfl/mem/ebr.hpp"
#include "wfl/util/assert.hpp"
#include "wfl/util/fixed_function.hpp"

namespace wfl {

// Same cache-line segregation as Descriptor (core/descriptor.hpp): the
// helper-CAS'd competition words live on their own line, away from the
// owner's publication-time fields; the frozen snapshots and the thunk log
// each start fresh lines (written/CAS'd on their own schedules).
template <typename Plat>
struct alignas(kCacheLine) AdaptiveDescriptor {
  using Thunk = FixedFunction<void(IdemCtx<Plat>&), 64>;
  using Self = AdaptiveDescriptor<Plat>;

  // Written by the owner before publication; read-only afterwards.
  std::uint32_t lock_ids[kMaxLocksPerAttempt] = {};
  std::uint32_t lock_count = 0;
  Thunk thunk;
  std::uint32_t tag_base = 0;
  std::uint64_t serial = 0;

  // Owner-private.
  int slot_of_lock[kMaxLocksPerAttempt] = {};

  // Shared competition state. The snapshots are written by the owner
  // strictly between participation-reveal and priority-reveal; the
  // seq_cst store of the positive priority publishes them, so any reader
  // that observed a revealed priority reads frozen snapshots.
  alignas(kCacheLine) typename Plat::template Atomic<std::int64_t> priority;
  typename Plat::template Atomic<std::uint32_t> status;
  alignas(kCacheLine) MemberList<Self*> snaps[kMaxLocksPerAttempt];
  alignas(kCacheLine) ThunkLog<Plat> log;

  // Multi-active-set flag: *participation* is what makes a descriptor
  // visible here (TBD counts as flagged), unlike the known-bounds variant.
  bool flag() { return priority.load() != kPriorityPending; }
  void clear_flag() { priority.store(kPriorityPending); }

  // Returns the number of thunk-log slots re-initialized (lazy reset).
  std::uint32_t reinit(std::uint64_t new_serial) {
    lock_count = 0;
    thunk.reset();
    serial = new_serial;
    tag_base = idem_tag_base(new_serial);
    priority.init(kPriorityPending);
    status.init(kStatusActive);
    for (auto& s : snaps) s.count = 0;
    return log.reset_used();
  }
};

template <typename Plat>
class AdaptiveLockSpace {
 public:
  using Platform = Plat;
  using Desc = AdaptiveDescriptor<Plat>;
  using Thunk = typename Desc::Thunk;
  using Set = ActiveSet<Plat, Desc*>;
  using Handle = ProcessHandle<Plat, Desc>;

  struct Process {
    int ebr_pid = -1;
  };

  // No κ/L/T promises needed; `max_procs` (the paper's P) sizes the arrays.
  AdaptiveLockSpace(int max_procs, int num_locks, SpaceSizing sizing = {})
      : max_procs_(max_procs),
        snap_pool_(sizing.snap_pool_capacity != 0
                       ? sizing.snap_pool_capacity
                       : std::max<std::uint32_t>(
                             16384, static_cast<std::uint32_t>(max_procs) *
                                        1024)),
        desc_pool_(sizing.desc_pool_capacity != 0
                       ? sizing.desc_pool_capacity
                       : std::max<std::uint32_t>(
                             1024,
                             static_cast<std::uint32_t>(max_procs) * 128)),
        desc_caches_(static_cast<std::size_t>(std::max(max_procs, 1))),
        snap_caches_(static_cast<std::size_t>(std::max(max_procs, 1))),
        ebr_(max_procs),
        mem_{snap_pool_, ebr_, snap_caches_.data()},
        serial_block_(sizing.serial_block != 0 ? sizing.serial_block : 1024),
        handles_(static_cast<std::size_t>(std::max(max_procs, 1))) {
    WFL_CHECK(max_procs > 0 && num_locks > 0);
    WFL_CHECK(static_cast<std::uint32_t>(max_procs) <= kMaxSetCap);
    for (auto& c : desc_caches_) c->bind(&desc_pool_);
    for (auto& c : snap_caches_) c->bind(&snap_pool_);
    locks_.reserve(static_cast<std::size_t>(num_locks));
    for (int i = 0; i < num_locks; ++i) {
      locks_.push_back(std::make_unique<Set>(
          static_cast<std::uint32_t>(max_procs), mem_));
    }
  }

  // Same handle scheme as LockTable (core/process.hpp), with one shard:
  // striped stats and serial blocks, so this variant's hot path is also
  // free of process-shared counter writes. Slots released by destroyed
  // sessions are reused, handle and all (see LockTable::register_process).
  //
  // No embedded fast-path descriptor (with_fast_desc stays false): the
  // §5.1 thin-word protocol depends on an attempt's priority existing
  // before publication, while this variant's guess-and-double reveal
  // schedule is the whole point — and an AdaptiveDescriptor carries L
  // frozen snapshot lists, so the embedded copy would cost ~5KB per
  // handle for a path the space cannot take. Cooperative helping is
  // likewise not applied here: the §6.2 adaptivity argument leans on
  // every observer finishing revealed competitors, exactly like kTheory
  // mode (DESIGN.md §5.2).
  Process register_process() {
    std::lock_guard<std::mutex> lk(reg_mutex_);
    if (!free_pids_.empty()) {
      const int pid = free_pids_.back();
      free_pids_.pop_back();
      return Process{pid};
    }
    const int pid = ebr_.register_participant();
    WFL_CHECK(pid >= 0 && pid < static_cast<int>(handles_.size()));
    handles_[static_cast<std::size_t>(pid)] = std::make_unique<Handle>(
        pid, /*num_shards=*/1, serial_hwm_, serial_block_);
    registered_.store(pid + 1, std::memory_order_release);
    return Process{pid};
  }

  // Inspector guard (re-entrant through the handle's depth counter) and the
  // session lifecycle hooks — the same surface LockTable exposes, so
  // BasicSession serves both spaces.
  void ebr_enter(Process p) { guard_enter(handle(p)); }
  void ebr_exit(Process p) { guard_exit(handle(p)); }

  void abandon_process(Process p) {
    WFL_CHECK(p.ebr_pid >= 0);
    ebr_.abandon(p.ebr_pid);
  }

  // See LockTable::release_process: orderly ends recycle the slot; a
  // crash-parked process (nonzero guard depth) is abandoned and retired.
  // Either way the process's slot caches are spilled back to the shared
  // pools so a retired pid leaks nothing.
  void release_process(Process p) {
    WFL_CHECK(p.ebr_pid >= 0);
    Handle& h = handle(p);
    const bool parked_in_guard = h.guard_depth(0) != 0;
    ebr_.abandon(p.ebr_pid);
    const auto pidx = static_cast<std::size_t>(p.ebr_pid);
    desc_caches_[pidx]->drain();
    snap_caches_[pidx]->drain();
    if (parked_in_guard) return;
    std::lock_guard<std::mutex> lk(reg_mutex_);
    free_pids_.push_back(p.ebr_pid);
  }

  int num_locks() const { return static_cast<int>(locks_.size()); }
  int max_procs() const { return max_procs_; }

  bool try_locks(Process proc, std::span<const std::uint32_t> lock_ids,
                 Thunk thunk, AttemptInfo* info = nullptr) {
    Handle& h = handle(proc);
    WFL_CHECK(lock_ids.size() <= kMaxLocksPerAttempt);
    h.stats().add_attempt();
    if (lock_ids.empty()) {
      if (thunk) {
        ThunkLog<Plat>& local_log = h.local_log();
        IdemCtx<Plat> m(local_log, 0);
        thunk(m);
        local_log.note_used(m.ops_used());
        h.stats().add_log_slot_resets(local_log.reset_used());
      }
      h.stats().add_win();
      if (info != nullptr) *info = AttemptInfo{true, 0, 0, 0};
      return true;
    }

    const std::uint64_t start_steps = Plat::steps();
    SlotCache<Desc>& dcache =
        *desc_caches_[static_cast<std::size_t>(proc.ebr_pid)];
    const std::uint32_t didx = dcache.alloc();
    Desc& d = desc_pool_.at(didx);
    h.stats().add_log_slot_resets(d.reinit(h.next_serial()));
    d.lock_count = static_cast<std::uint32_t>(lock_ids.size());
    for (std::size_t i = 0; i < lock_ids.size(); ++i) {
      WFL_CHECK(lock_ids[i] < locks_.size());
      d.lock_ids[i] = lock_ids[i];
    }
    d.thunk = std::move(thunk);

    AdaptiveCtx cx{*this, h};

    // Help phase: finish everyone already visible on our locks. A member
    // still in its TBD window has no revealed priority yet, so it is not a
    // "known-priority" threat and is skipped (run() would defer on it
    // anyway); everyone revealed is driven to a decision.
    guard_enter(h);
    {
      MemberList<Desc*>& members = h.help_scratch();
      for (std::uint32_t i = 0; i < d.lock_count; ++i) {
        multi_get_set<Plat>(*locks_[d.lock_ids[i]], members);
        for (Desc* q : members) {
          if (q->priority.load() > 0) {
            h.stats().add_help();
            run(cx, *q);
          }
        }
      }
    }
    // Insert into every lock's set (still unflagged).
    for (std::uint32_t i = 0; i < d.lock_count; ++i) {
      d.slot_of_lock[i] = locks_[d.lock_ids[i]]->insert(&d, proc.ebr_pid);
    }
    guard_exit(h);
    const std::uint64_t pre_reveal_work = Plat::steps() - start_steps;

    // Guess-and-double: pad the variable-length pre-participation work to
    // the next power of two of our own steps, making the participation-
    // reveal time one of only log-many values the adversary can induce.
    pad_to_power_of_two(start_steps);
    d.priority.store(kPriorityTbd);  // participation-reveal

    // Freeze the competition: snapshot every lock's membership. These
    // snapshots fix the potential-threatener set *before* our priority
    // exists anywhere.
    guard_enter(h);
    for (std::uint32_t i = 0; i < d.lock_count; ++i) {
      multi_get_set<Plat>(*locks_[d.lock_ids[i]], d.snaps[i]);
    }
    guard_exit(h);

    d.priority.store(draw_priority<Plat>());  // priority-reveal
    const std::uint64_t reveal_steps = Plat::steps();

    guard_enter(h);
    run(cx, d);
    d.clear_flag();
    for (std::uint32_t i = 0; i < d.lock_count; ++i) {
      locks_[d.lock_ids[i]]->remove(d.slot_of_lock[i], proc.ebr_pid);
    }
    guard_exit(h);
    const std::uint64_t post_reveal_work = Plat::steps() - reveal_steps;

    // Pad the post-reveal segment the same way, fixing the attempt's end
    // time to one of log-many offsets from the reveal.
    pad_to_power_of_two(reveal_steps);

    const bool won = d.status.load() == kStatusWon;
    if (won) h.stats().add_win();
    ebr_.retire(proc.ebr_pid, &dcache, didx,
                &SlotCache<Desc>::free_to_cache);
    if (info != nullptr) {
      // Unified accounting (executor.hpp): the work segments exclude the
      // guess-and-double padding, mirroring the known-bounds table's
      // delay-exclusive pre/post reveal work.
      info->won = won;
      info->pre_reveal_work = pre_reveal_work;
      info->post_reveal_work = post_reveal_work;
      info->total_steps = Plat::steps() - start_steps;
    }
    return won;
  }

  // Aggregates the striped per-process slabs (see LockTable::stats()).
  LockStats stats() const {
    LockStats s;
    const int n = registered_.load(std::memory_order_acquire);
    for (int i = 0; i < n; ++i) {
      const auto& h = handles_[static_cast<std::size_t>(i)];
      if (h != nullptr) h->stats().accumulate_into(s);
    }
    return s;
  }

  std::uint64_t tbd_eliminations() const {
    std::uint64_t total = 0;
    const int n = registered_.load(std::memory_order_acquire);
    for (int i = 0; i < n; ++i) {
      const auto& h = handles_[static_cast<std::size_t>(i)];
      if (h != nullptr) {
        total += h->stats().tbd_eliminations.load(std::memory_order_relaxed);
      }
    }
    return total;
  }

 private:
  // The shared engine supplies decide/eliminate/celebrateIfWon (the
  // snapshot-driven competition loop below stays local: it is the §6.2
  // variant's difference from Algorithm 3, not a storage concern).
  struct AdaptiveCtx {
    AdaptiveLockSpace& s;
    Handle& h;
    using Desc = AdaptiveLockSpace::Desc;
    StatsSlab& stats() { return h.stats(); }
  };
  friend struct AdaptiveCtx;
  using Engine = AttemptEngine<Plat, AdaptiveCtx>;

  Handle& handle(Process proc) {
    WFL_CHECK(proc.ebr_pid >= 0 &&
              proc.ebr_pid < static_cast<int>(handles_.size()) &&
              handles_[static_cast<std::size_t>(proc.ebr_pid)] != nullptr);
    return *handles_[static_cast<std::size_t>(proc.ebr_pid)];
  }

  // Re-entrant guard over the single EBR domain, through the handle's
  // depth counter — so an inspector's EbrGuard can wrap a whole attempt.
  void guard_enter(Handle& h) {
    if (h.guard_depth(0)++ == 0) ebr_.enter(h.pid());
  }
  void guard_exit(Handle& h) {
    WFL_DASSERT(h.guard_depth(0) > 0);
    if (--h.guard_depth(0) == 0) ebr_.exit(h.pid());
  }

  // The competition, against the subject's frozen snapshots. Callable for
  // self (after priority-reveal) or as help for a revealed descriptor.
  void run(AdaptiveCtx& cx, Desc& p) {
    for (std::uint32_t i = 0; i < p.lock_count; ++i) {
      if (p.status.load() != kStatusActive) continue;
      const MemberList<Desc*>& snap = p.snaps[i];
      for (std::uint32_t k = 0; k < snap.count; ++k) {
        Desc* q = snap.items[k];
        if (q->status.load() == kStatusActive && q != &p) {
          const std::int64_t pp = p.priority.load();
          std::int64_t qp = q->priority.load();
          if (qp == kPriorityTbd) {
            qp = q->priority.load();  // defer once: it may just have landed
          }
          if (qp == kPriorityTbd) {
            // Seer-eliminates (see header comment): q is visible to us but
            // priorityless; exactly one of {p,q} sees the other, so one of
            // the pair must act or both could win. Priorities of neither
            // are involved — no bias, only a measured success-rate cost.
            cx.stats().add_tbd_elimination();
            Engine::eliminate(cx, *q);
          } else if (pp > qp) {
            Engine::eliminate(cx, *q);
          } else {
            Engine::eliminate(cx, p);
          }
        }
        Engine::celebrate_if_won(cx, *q);
      }
    }
    Engine::decide(p);
    Engine::celebrate_if_won(cx, p);
  }

  void pad_to_power_of_two(std::uint64_t base) {
    const std::uint64_t w = Plat::steps() - base;
    std::uint64_t target = 1;
    while (target < w) target <<= 1;
    while (Plat::steps() - base < target) Plat::step();
  }

  // Caches are declared before ebr_ (destroyed after it): EBR teardown
  // pushes retired slots through them. mem_ references snap_caches_.
  int max_procs_;
  IndexPool<SetSnap<Desc*>> snap_pool_;
  IndexPool<Desc> desc_pool_;
  std::vector<CachePadded<SlotCache<Desc>>> desc_caches_;
  std::vector<CachePadded<SlotCache<SetSnap<Desc*>>>> snap_caches_;
  EbrDomain ebr_;
  SetMem<Desc*> mem_;
  std::vector<std::unique_ptr<Set>> locks_;

  std::atomic<std::uint64_t> serial_hwm_{1};
  std::uint32_t serial_block_;
  std::mutex reg_mutex_;
  std::vector<std::unique_ptr<Handle>> handles_;
  std::vector<int> free_pids_;  // released slots awaiting reuse (reg_mutex_)
  std::atomic<int> registered_{0};
};

// RAII session over the adaptive space (see core/session.hpp); works with
// executor.hpp's submit() exactly like Session<Plat> does.
template <typename Plat>
using AdaptiveSession = BasicSession<AdaptiveLockSpace<Plat>>;

}  // namespace wfl
