// Per-process hot state for the lock table.
//
// Every mutable word a tryLock attempt touches outside the algorithm's own
// shared CASes lives here, on cachelines owned by exactly one process:
//
//   * StatsSlab — the striped statistics counters. The monolithic LockSpace
//     kept seven process-shared std::atomic counters that every attempt
//     fetch_add-ed; under contention those seven words were the hottest
//     cachelines in the system and had nothing to do with the algorithm.
//     Each process now bumps its own padded slab and LockTable::stats()
//     aggregates on demand (reads are racy-by-design snapshots, exact once
//     the workload quiesces — which is when the tests read them).
//   * serial block allocator — descriptor serials (which feed the
//     idempotence tag space) come from a per-process block carved off a
//     shared high-water mark once every kSerialBlock attempts, instead of a
//     global fetch_add on every attempt.
//   * scratch MemberLists — getSet results for the help phase and the
//     competition loop; fixed-capacity, reused across attempts.
//   * per-shard EBR guard depths — the table's shards have independent
//     reclamation domains; the depth counters make guard acquisition
//     re-entrant so a helper can pick up whatever extra shards a helped
//     descriptor's lock set needs without tracking what it already holds.
//   * an auxiliary RNG, seeded from the pid — for harness-side choices
//     (workload generators, shard-aware benches). The *algorithm's*
//     priority draws stay on Plat::rand_u64(), which is already
//     per-process on both platforms (a thread_local under RealPlat, the
//     per-fiber stream under SimPlat) and owns simulator determinism.
//
// Handles are created by LockTable::register_process and owned by the
// table; the cheap `Process` value (an index) is what travels through
// application code, exactly as before the decomposition.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "wfl/active/multi_set.hpp"
#include "wfl/check/race.hpp"
#include "wfl/core/config.hpp"
#include "wfl/fuzz/sites.hpp"
#include "wfl/idem/idem.hpp"
#include "wfl/util/align.hpp"
#include "wfl/util/assert.hpp"
#include "wfl/util/rng.hpp"

namespace wfl {

// One process's stripe of the lock-space statistics. Single writer (the
// owning process); concurrent readers (stats aggregation) see a relaxed
// snapshot. The unsynchronized load-then-store is deliberate: with one
// writer it is exact, and it keeps the hot path free of lock-prefixed
// read-modify-writes entirely.
struct StatsSlab {
  std::atomic<std::uint64_t> attempts{0};
  std::atomic<std::uint64_t> wins{0};
  std::atomic<std::uint64_t> helps{0};
  std::atomic<std::uint64_t> eliminations{0};
  std::atomic<std::uint64_t> thunk_runs{0};
  std::atomic<std::uint64_t> t0_overruns{0};
  std::atomic<std::uint64_t> t1_overruns{0};
  // Adaptive variant only (§6.2 seer-eliminates rule); unused by the
  // known-bounds table but striped the same way.
  std::atomic<std::uint64_t> tbd_eliminations{0};
  // Thunk-log slots re-initialized by descriptor reinit (the lazy-reset
  // figure: O(ops used) per attempt instead of O(kThunkLogCap)).
  std::atomic<std::uint64_t> log_slot_resets{0};
  // Contended-path optimization counters (DESIGN.md §5):
  std::atomic<std::uint64_t> fastpath_hits{0};
  std::atomic<std::uint64_t> fastpath_revocations{0};
  std::atomic<std::uint64_t> help_claim_skips{0};

  static void bump(std::atomic<std::uint64_t>& c) {
    const std::uint64_t nv = c.load(std::memory_order_relaxed) + 1;
    c.store(nv, std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&c, kStore, relaxed, kStatsBump, nv);
  }
  static void bump_by(std::atomic<std::uint64_t>& c, std::uint64_t n) {
    const std::uint64_t nv = c.load(std::memory_order_relaxed) + n;
    c.store(nv, std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&c, kStore, relaxed, kStatsBump, nv);
  }
  void add_attempt() { bump(attempts); }
  void add_win() { bump(wins); }
  void add_help() { bump(helps); }
  void add_elimination() { bump(eliminations); }
  void add_thunk_run() { bump(thunk_runs); }
  void add_t0_overrun() { bump(t0_overruns); }
  void add_t1_overrun() { bump(t1_overruns); }
  void add_tbd_elimination() { bump(tbd_eliminations); }
  void add_log_slot_resets(std::uint64_t n) { bump_by(log_slot_resets, n); }
  void add_fastpath_hit() { bump(fastpath_hits); }
  void add_fastpath_revocation() { bump(fastpath_revocations); }
  void add_help_claim_skip() { bump(help_claim_skips); }

  void accumulate_into(LockStats& s) const {
    s.attempts += attempts.load(std::memory_order_relaxed);
    s.wins += wins.load(std::memory_order_relaxed);
    s.helps += helps.load(std::memory_order_relaxed);
    s.eliminations += eliminations.load(std::memory_order_relaxed);
    s.thunk_runs += thunk_runs.load(std::memory_order_relaxed);
    s.t0_overruns += t0_overruns.load(std::memory_order_relaxed);
    s.t1_overruns += t1_overruns.load(std::memory_order_relaxed);
    s.log_slot_resets += log_slot_resets.load(std::memory_order_relaxed);
    s.fastpath_hits += fastpath_hits.load(std::memory_order_relaxed);
    s.fastpath_revocations +=
        fastpath_revocations.load(std::memory_order_relaxed);
    s.help_claim_skips += help_claim_skips.load(std::memory_order_relaxed);
  }
};

// One writer's slab plus padding; the slab itself must not straddle into a
// neighbour's stripe.
static_assert(sizeof(CachePadded<StatsSlab>) % kCacheLine == 0);

// Per-process handle; DescT is the descriptor type whose pointers the
// scratch lists carry (Descriptor<Plat> for the known-bounds table,
// AdaptiveDescriptor<Plat> for the adaptive space).
template <typename Plat, typename DescT>
class ProcessHandle {
 public:
  // `with_fast_desc` allocates the embedded fast-path descriptor (the
  // known-bounds LockTable wants it; the adaptive space, whose descriptors
  // carry kMaxLocksPerAttempt frozen snapshots each, does not pay for it).
  ProcessHandle(int pid, std::uint32_t num_shards,
                std::atomic<std::uint64_t>& serial_hwm,
                std::uint32_t serial_block, bool with_fast_desc = false)
      : pid_(pid),
        serial_block_(serial_block),
        serial_hwm_(&serial_hwm),
        fast_desc_(with_fast_desc ? std::make_unique<DescT>() : nullptr),
        guard_depth_(num_shards, 0),
        rng_(0x5EEDF00Du + static_cast<std::uint64_t>(pid) * 0x9E3779B9ULL) {
    WFL_CHECK(pid >= 0 && num_shards > 0 && serial_block > 0);
    // fast_ready_ is a raw std::atomic with hooked accessors; seed its
    // shadow and retire it in the dtor so heap reuse of the handle's
    // storage cannot alias stale tracked state from a prior object.
    race::created(&fast_ready_, 1);
  }

  ~ProcessHandle() { race::destroyed(&fast_ready_); }

  ProcessHandle(const ProcessHandle&) = delete;
  ProcessHandle& operator=(const ProcessHandle&) = delete;

  int pid() const { return pid_; }

  // Next descriptor serial, from the process's private block; refills from
  // the shared high-water mark once per `serial_block` attempts (the only
  // process-shared write on this path, amortized to ~nothing).
  std::uint64_t next_serial() {
    if (serial_next_ == serial_end_) {
      serial_next_ = serial_hwm_->fetch_add(serial_block_,
                                            std::memory_order_relaxed);
      WFL_CHK_ATOMIC(serial_hwm_, kFetchAdd, relaxed, kSerialRefill,
                     serial_next_ + serial_block_);
      serial_end_ = serial_next_ + serial_block_;
    }
    return serial_next_++;
  }

  StatsSlab& stats() { return *stats_; }
  const StatsSlab& stats() const { return *stats_; }

  // Scratch getSet results. Two distinct lists because the help phase
  // iterates one while the engine's run() (called per helped descriptor)
  // refills the other; run() is never reentered, so two suffice.
  MemberList<DescT*>& help_scratch() { return help_scratch_; }
  MemberList<DescT*>& run_scratch() { return run_scratch_; }

  // Private scratch thunk log for degenerate (empty-lock-set) attempts:
  // reused across attempts with the lazy reset instead of re-initializing
  // kThunkLogCap slots per call. Never shared — no helpers exist for a
  // descriptor-less run.
  ThunkLog<Plat>& local_log() { return local_log_; }

  // The embedded fast-path descriptor (DESIGN.md §5.1): uncontended
  // single-lock attempts publish it through the lock's thin word instead
  // of drawing a pooled descriptor, so the steady state performs zero pool
  // and active-set traffic. It is pool-free and never EBR-retired; reuse
  // safety comes from the thin-word observation protocol: the descriptor
  // may be re-initialized only while fast_ready() is true — either no
  // rival ever observed the previous publication (the release CAS
  // succeeded untouched), or a full grace period of the publishing shard
  // has passed since (the table retires a cooldown token whose deleter
  // calls end_fast_cooldown()). Allocated only when the owning space
  // requested it (with_fast_desc).
  DescT& fast_desc() {
    WFL_DASSERT(fast_desc_ != nullptr);
    return *fast_desc_;
  }
  bool fast_ready() const {
    const bool r = fast_ready_.load(std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&fast_ready_, kLoad, relaxed, kFastReadyLoad, r ? 1 : 0);
    return r;
  }
  void begin_fast_cooldown() {
    fast_ready_.store(false, std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&fast_ready_, kStore, relaxed, kFastReadyStore, 0);
  }
  void end_fast_cooldown() {
    fast_ready_.store(true, std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&fast_ready_, kStore, relaxed, kFastReadyStore, 1);
  }
  // EbrDomain deleter shape for the cooldown token; ctx is the handle.
  static void fast_cooldown_expired(void* ctx, std::uint32_t) {
    WFL_FUZZ_SITE(kSiteCooldownResume);
    static_cast<ProcessHandle*>(ctx)->end_fast_cooldown();
  }

  // Re-entrancy depth of this process's EBR guard on `shard`. The table
  // enters the shard's domain when the depth rises from 0 and exits when it
  // returns to 0; everything in between is a plain private increment.
  std::uint32_t& guard_depth(std::uint32_t shard) {
    WFL_DASSERT(shard < guard_depth_.size());
    return guard_depth_[shard];
  }

  // True if this process currently holds any shard's EBR guard. A fiber
  // must never suspend while this is true — a parked fiber would stall
  // reclamation for the whole shard. The async executor asserts this at
  // every park point.
  bool any_guard_depth() const {
    for (const std::uint32_t d : guard_depth_) {
      if (d != 0) return true;
    }
    return false;
  }

  // Harness-side randomness (workload generation, shard picking). NOT the
  // priority stream — see the header comment.
  Xoshiro256& rng() { return rng_; }

 private:
  int pid_;
  std::uint32_t serial_block_;
  std::uint64_t serial_next_ = 0;
  std::uint64_t serial_end_ = 0;
  std::atomic<std::uint64_t>* serial_hwm_;
  CachePadded<StatsSlab> stats_;
  MemberList<DescT*> help_scratch_;
  MemberList<DescT*> run_scratch_;
  ThunkLog<Plat> local_log_;
  std::unique_ptr<DescT> fast_desc_;
  // Raw atomic: flipped by the EBR cooldown deleter, which runs on the
  // owning participant or under quiescent domain teardown (another thread).
  std::atomic<bool> fast_ready_{true};
  std::vector<std::uint32_t> guard_depth_;
  Xoshiro256 rng_;
};

}  // namespace wfl
