// The attempt engine: Algorithm 3's competition core, and nothing else.
//
// This header owns the pure per-attempt procedures — run / decide /
// eliminate / celebrateIfWon (lines 26-37) and the fixed-delay spin
// (lines 10-11, 24) — parameterized over a *context* that supplies memory
// and accounting. The engine has no idea how locks are stored, how
// descriptors are pooled, or how statistics are aggregated; that is the
// LockTable's and ProcessHandle's business (core/lock_table.hpp,
// core/process.hpp). Keeping the competition core free of storage policy is
// what lets the same five procedures serve both the single-shard facade and
// the sharded table, and is what the proofs actually constrain.
//
// Context requirements (duck-typed; LockTable::AttemptCtx is the model):
//   using Desc = ...;                     // descriptor type (status/priority)
//   SetT&       set(std::uint32_t id);    // lock id -> active set
//   StatsT&     stats();                  // striped per-process counters
//   MemberList<Desc*>& run_scratch();     // scratch for run()'s getSets
//   GuardScopeT lock_guards(Desc& p);     // RAII: EBR guards covering every
//                                         // shard p's lock set touches
//   Desc* thin_rival(std::uint32_t id);   // the lock's thin-word publication
//                                         // (nullptr when free/own/absent);
//                                         // performs the observe protocol
//   int  pid();                           // caller's dense process id
//   bool cooperative();                   // claim-gated helping enabled?
//   std::uint32_t claim_patience();       // foreign observations a claim
//                                         // survives before revocation
//
// The stats object only needs add_elimination()/add_thunk_run(); it is the
// caller's striped slab, so nothing the engine does writes a cacheline
// shared between processes — the only shared-memory writes issued here are
// the algorithm's own status CASes, priority loads and set reads.
#pragma once

#include <atomic>
#include <cstdint>

#include "wfl/active/multi_set.hpp"
#include "wfl/check/race.hpp"
#include "wfl/core/config.hpp"
#include "wfl/core/descriptor.hpp"
#include "wfl/fuzz/sites.hpp"
#include "wfl/idem/idem.hpp"

namespace wfl {

// Per-attempt measurements (own steps of the calling process), filled by
// try_locks when requested. pre_reveal_work and post_reveal_work exclude
// delay spinning — they are the quantities the T0/T1 budgets must dominate
// for the fairness argument to hold (Observation 6.7).
struct AttemptInfo {
  bool won = false;
  std::uint64_t pre_reveal_work = 0;   // help + multiInsert steps
  std::uint64_t post_reveal_work = 0;  // run + multiRemove steps
  std::uint64_t total_steps = 0;       // whole attempt, delays included
};

template <typename Plat, typename Ctx>
struct AttemptEngine {
  using Desc = typename Ctx::Desc;

  // The core competition procedure (lines 26-37). `p` may be the caller's
  // own descriptor or one being helped; the code cannot tell and must not.
  // The guard scope covers every shard p's locks live in, so a helper that
  // wandered into another shard's territory still reads its snapshots and
  // descriptors under that shard's reclamation protection.
  //
  // Besides the set members, each lock's *thin word* (DESIGN.md §5.1) is
  // probed for a fast-path publication and dueled exactly like a member:
  // the thin word is a one-element extension of the lock's active set, and
  // the Dekker-style publish/scan ordering (fast publishes the word before
  // reading the set; slow inserts into the set before probing the word,
  // both seq_cst) guarantees two conflicting attempts cannot both miss
  // each other — the same visibility property Lemma 6.3 needs.
  static void run(Ctx& cx, Desc& p) {
    auto guards = cx.lock_guards(p);
    // Reads line group A (lock_ids/lock_count) — must be ordered after the
    // owner's publication writes.
    WFL_PLAIN_READ(&p, kDescPlain);
    auto& members = cx.run_scratch();
    for (std::uint32_t i = 0; i < p.lock_count; ++i) {
      multi_get_set<Plat>(cx.set(p.lock_ids[i]), members);
      if (p.status.load() != kStatusActive) continue;
      for (Desc* q : members) duel(cx, p, *q);
      if (Desc* r = cx.thin_rival(p.lock_ids[i])) duel(cx, p, *r);
    }
    decide(p);
    celebrate_if_won(cx, p);
  }

  // One pairwise competition step between `p` and an observed rival `q`
  // (set member or thin-word publication).
  static void duel(Ctx& cx, Desc& p, Desc& q) {
    if (q.status.load() == kStatusActive && &q != &p) {
      const std::int64_t pp = p.priority.load();
      const std::int64_t qp = q.priority.load();
      if (pp > qp) {
        eliminate(cx, q);
      } else {
        eliminate(cx, p);  // covers qp > pp and the tie (self loses)
      }
    }
    celebrate_if_won(cx, q);
  }

  // Help-phase drive of a revealed competitor (tryLocks lines 17-20).
  //
  // With cooperative helping off (kTheory, or the ablation knob) this is
  // exactly run(): every observer drives every stalled attempt, which is
  // what the fairness lemma's proof assumes. With it on, a per-descriptor
  // claim word lets ONE helper at a time do the full drive while everyone
  // else settles for celebrate-if-won — eliminating the herd of redundant
  // status/priority CASes on the helper-shared line. The claim is
  // advisory and revocable: after cfg.claim_patience observers found the
  // same claim in place, the next observer drives regardless, so a crashed
  // or preempted claimer delays any attempt by a bounded number of
  // observations and wait-freedom is untouched (worst case degenerates to
  // today's everyone-drives behavior). See DESIGN.md §5.2.

  static void help(Ctx& cx, Desc& q) {
    if (!cx.cooperative()) {
      run(cx, q);
      return;
    }
    if (q.status.load() != kStatusActive) {
      celebrate_if_won(cx, q);
      return;
    }
    const std::uint64_t mine = static_cast<std::uint64_t>(cx.pid()) + 1;
    const std::uint64_t claim = q.help_claim.load(std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&q.help_claim, kLoad, relaxed, kHelpClaimLoad, claim);
    if (claim != 0 && claim != mine) {
      const std::uint32_t skips =
          q.claim_skips.fetch_add(1, std::memory_order_relaxed);
      WFL_CHK_ATOMIC(&q.claim_skips, kFetchAdd, relaxed, kClaimSkipsBump,
                     skips + 1);
      if (skips < cx.claim_patience()) {
        cx.stats().add_help_claim_skip();
        celebrate_if_won(cx, q);
        return;
      }
      WFL_FUZZ_SITE(kSiteClaimExpiry);
    }
    // Unclaimed, or the claim went stale: take (or revoke) it and drive.
    // Plain store, not CAS — the claim is advisory, so the last writer
    // winning is fine; correctness never depends on who holds it.
    q.help_claim.store(mine, std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&q.help_claim, kStore, relaxed, kHelpClaimStore, mine);
    q.claim_skips.store(0, std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&q.claim_skips, kStore, relaxed, kClaimSkipsReset, 0);
    run(cx, q);
    std::uint64_t expect = mine;  // release unless someone revoked us
    const bool released = q.help_claim.compare_exchange_strong(
        expect, 0, std::memory_order_relaxed);
    if (released) {
      WFL_CHK_ATOMIC(&q.help_claim, kCasOk, relaxed, kHelpClaimRelease, 0);
    } else {
      WFL_CHK_ATOMIC(&q.help_claim, kCasFail, relaxed, kHelpClaimRelease,
                     expect);
    }
  }

  static void decide(Desc& p) { p.status.cas(kStatusActive, kStatusWon); }

  static void eliminate(Ctx& cx, Desc& p) {
    if (p.status.cas(kStatusActive, kStatusLost)) {
      cx.stats().add_elimination();
    }
  }

  static void celebrate_if_won(Ctx& cx, Desc& p) {
    if (p.status.load() != kStatusWon) return;
    // Replays the thunk and reads tag_base — line group A again.
    WFL_PLAIN_READ(&p, kDescPlain);
    cx.stats().add_thunk_run();
    if (p.thunk) {
      IdemCtx<Plat> m(p.log, p.tag_base);
      p.thunk(m);
      // Completed replay: record the exact slot high-water mark so the
      // post-grace reinit resets only the slots consumed (idem.hpp).
      p.log.note_used(m.ops_used());
    }
  }

  // Spins own steps until exactly `base + delta` steps have been taken.
  // Starting beyond the target is an overrun: the constants were too small
  // for the workload — counted (through the caller's striped slab, via
  // `on_overrun`), surfaced by exp_step_bound, asserted zero in tests with
  // default constants.
  template <typename OnOverrun>
  static void delay_until(DelayMode mode, std::uint64_t base,
                          std::uint64_t delta, OnOverrun&& on_overrun) {
    if (mode == DelayMode::kOff) return;
    const std::uint64_t target = base + delta;
    if (Plat::steps() > target) {
      on_overrun();
      return;
    }
    while (Plat::steps() < target) Plat::step();
  }
};

}  // namespace wfl
