// Typed lock sets: the API-boundary carrier for "which locks".
//
// The paper's tryLock takes a *set* of locks, but the implementation layers
// used to pass raw `std::span<const std::uint32_t>` everywhere, which made
// every boundary re-negotiate the set's invariants: try_locks ran an O(L²)
// duplicate scan on every attempt, TxnBuilder sorted+deduped privately, and
// substrates each hand-rolled their own `std::sort` + length juggling.
//
// StaticLockSet<N> establishes the invariants ONCE, at construction: the
// ids are sorted ascending and duplicate-free, and the count fits N (and,
// with the LockConfig overloads, the configured L bound). LockSetView is
// the cheap non-owning witness of those invariants that travels through
// API boundaries; the lock table's LockSetView overload of try_locks and
// the executor's submit() accept it and skip re-validation on the attempt
// path entirely.
//
// A LockSetView can only be produced by a StaticLockSet or by
// LockSetView::presorted (for callers like PreparedTxn that maintain the
// invariant themselves) — there is deliberately no public constructor from
// an arbitrary span.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <span>

#include "wfl/core/config.hpp"
#include "wfl/core/descriptor.hpp"
#include "wfl/util/assert.hpp"

namespace wfl {

// Non-owning view of a sorted, duplicate-free lock set. Trivially copyable;
// the backing ids must outlive every use of the view (a StaticLockSet on
// the caller's frame is the usual backing — safe because try_locks copies
// the ids into the descriptor before returning).
class LockSetView {
 public:
  constexpr LockSetView() = default;

  // Wraps ids the CALLER guarantees are sorted ascending and duplicate-
  // free (e.g. PreparedTxn's built lock set). Checked in debug builds.
  static LockSetView presorted(std::span<const std::uint32_t> ids) {
    for (std::size_t i = 1; i < ids.size(); ++i) {
      WFL_DASSERT(ids[i - 1] < ids[i]);
    }
    return LockSetView(Witness{}, ids.data(),
                       static_cast<std::uint32_t>(ids.size()));
  }

  constexpr const std::uint32_t* data() const { return data_; }
  constexpr std::uint32_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr std::uint32_t operator[](std::uint32_t i) const {
    return data_[i];
  }
  constexpr const std::uint32_t* begin() const { return data_; }
  constexpr const std::uint32_t* end() const { return data_ + size_; }

  constexpr std::span<const std::uint32_t> span() const {
    return {data_, size_};
  }
  // NOLINTNEXTLINE(google-explicit-constructor): views decay to spans
  constexpr operator std::span<const std::uint32_t>() const {
    return span();
  }

 private:
  template <std::uint32_t N>
  friend class StaticLockSet;

  // Tag keeps this constructor out of overload resolution for brace-init
  // from {pointer, count} (which must keep meaning std::span at call
  // sites) — only invariant-holding producers name the tag.
  struct Witness {};
  constexpr LockSetView(Witness, const std::uint32_t* data,
                        std::uint32_t size)
      : data_(data), size_(size) {}

  const std::uint32_t* data_ = nullptr;
  std::uint32_t size_ = 0;
};

// Fixed-capacity owning lock set; sorts and dedups on construction, so the
// invariants hold for its whole lifetime. N is a hard capacity (aborts on
// overflow, like every stated bound in this library); the overloads taking
// a LockConfig additionally enforce the configured per-attempt L budget at
// construction — the API boundary — instead of deep in the attempt path.
template <std::uint32_t N = kMaxLocksPerAttempt>
class StaticLockSet {
  static_assert(N >= 1 && N <= kMaxLocksPerAttempt,
                "StaticLockSet capacity must fit a single attempt");

 public:
  constexpr StaticLockSet() = default;

  StaticLockSet(std::initializer_list<std::uint32_t> ids) {
    assign({ids.begin(), ids.size()});
  }
  explicit StaticLockSet(std::span<const std::uint32_t> ids) { assign(ids); }

  StaticLockSet(std::initializer_list<std::uint32_t> ids,
                const LockConfig& cfg) {
    assign({ids.begin(), ids.size()});
    check_budget(cfg);
  }
  StaticLockSet(std::span<const std::uint32_t> ids, const LockConfig& cfg) {
    assign(ids);
    check_budget(cfg);
  }

  // Appends one id, keeping the set sorted and deduplicated (no-op if
  // already present). For incremental builders (graph neighbourhoods,
  // skiplist pred towers).
  void insert(std::uint32_t id) {
    std::uint32_t pos = 0;
    while (pos < size_ && ids_[pos] < id) ++pos;
    if (pos < size_ && ids_[pos] == id) return;
    WFL_CHECK_MSG(size_ < N, "lock set exceeds StaticLockSet capacity");
    for (std::uint32_t i = size_; i > pos; --i) ids_[i] = ids_[i - 1];
    ids_[pos] = id;
    ++size_;
  }

  constexpr std::uint32_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr std::uint32_t operator[](std::uint32_t i) const {
    return ids_[i];
  }
  constexpr const std::uint32_t* begin() const { return ids_; }
  constexpr const std::uint32_t* end() const { return ids_ + size_; }

  LockSetView view() const {
    return LockSetView(LockSetView::Witness{}, ids_, size_);
  }
  operator LockSetView() const { return view(); }  // NOLINT: by design

 private:
  void assign(std::span<const std::uint32_t> ids) {
    WFL_CHECK_MSG(ids.size() <= N,
                  "lock set exceeds StaticLockSet capacity");
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ids_[i] = ids[i];
    }
    size_ = static_cast<std::uint32_t>(ids.size());
    std::sort(ids_, ids_ + size_);
    size_ = static_cast<std::uint32_t>(
        std::unique(ids_, ids_ + size_) - ids_);
  }

  void check_budget(const LockConfig& cfg) const {
    WFL_CHECK_MSG(size_ <= cfg.max_locks,
                  "lock set exceeds the configured L bound");
  }

  std::uint32_t ids_[N] = {};
  std::uint32_t size_ = 0;
};

}  // namespace wfl
