// The tryLock attempt descriptor (Algorithm 3, struct Descriptor).
//
// A descriptor is the unit that lives in the active sets: it names the lock
// set, carries the thunk and its idempotence log, and holds the two pieces
// of shared state the competition is decided on:
//   * priority — doubles as the multi-active-set flag: -1 means unflagged
//     (pending), kPriorityTbd is the adaptive variant's participation-reveal
//     sentinel, positive values are revealed priorities;
//   * status — {active, won, lost}; transitions only by CAS, only away from
//     active, so a descriptor's fate is decided exactly once (the property
//     Lemma 6.3 leans on).
//
// Descriptors are pool-allocated and recycled only after an EBR grace
// period, so any helper that found one through a set snapshot can safely
// read it for the duration of its guard.
#pragma once

#include <atomic>
#include <cstdint>

#include "wfl/check/race.hpp"
#include "wfl/idem/idem.hpp"
#include "wfl/util/align.hpp"
#include "wfl/util/assert.hpp"
#include "wfl/util/fixed_function.hpp"

namespace wfl {

inline constexpr std::uint32_t kMaxLocksPerAttempt = 8;

inline constexpr std::int64_t kPriorityPending = -1;
inline constexpr std::int64_t kPriorityTbd = -2;  // adaptive variant only

enum : std::uint32_t {
  kStatusActive = 0,
  kStatusWon = 1,
  kStatusLost = 2,
};

// Field layout is cache-line segregated (DESIGN.md "Hot-path memory
// discipline"): helpers decide the competition by CAS-hammering `priority`
// and `status`, and that invalidation storm must not evict the owner's
// publication-time and bookkeeping fields (lock_ids, slot_of_lock, thunk,
// retire_refs) from the owner's cache. The thunk log gets its own line
// start too — it is CAS'd only during replays, on a different schedule
// than the status words. The struct itself is line-aligned so pool-array
// neighbours never share the boundary lines.
// ThunkT defaults to the in-process closure type. The shared-memory table
// (core/shm_table.hpp) instantiates Descriptor with a POD thunk *program*
// instead: a FixedFunction captures pointers, which are meaningless in
// another address space, so the cross-process thunk must be interpretable
// data (opcode + cell offsets). Any ThunkT needs reset(), operator bool,
// and operator()(IdemCtx<Plat>&).
template <typename Plat,
          typename ThunkT = FixedFunction<void(IdemCtx<Plat>&), 64>>
struct alignas(kCacheLine) Descriptor {
  using Thunk = ThunkT;

  // Lifetime hooks for the raw atomics below: descriptors sit in pool
  // segments whose heap addresses get reused across table generations, so
  // the analysis layer must see construction reset their shadow state.
  Descriptor() {
    race::created(&retire_refs, 0);
    race::created(&help_claim, 0);
    race::created(&claim_skips, 0);
  }
  ~Descriptor() {
    race::destroyed(&retire_refs);
    race::destroyed(&help_claim);
    race::destroyed(&claim_skips);
  }

  Descriptor(const Descriptor&) = delete;
  Descriptor& operator=(const Descriptor&) = delete;

  // --- line group A: written by the owner before publication, read-only
  // afterwards ---
  std::uint32_t lock_ids[kMaxLocksPerAttempt] = {};
  std::uint32_t lock_count = 0;
  Thunk thunk;
  std::uint32_t tag_base = 0;  // idem_tag_base(serial); see IdemCtx contract
  std::uint64_t serial = 0;

  // --- owner-private bookkeeping (never read by helpers) ---
  int slot_of_lock[kMaxLocksPerAttempt] = {};

  // --- reclamation bookkeeping (raw atomic: memory management is outside
  // the step model, DESIGN.md substitution #2) ---
  // A descriptor visible in k shards is retired into all k EBR domains;
  // each expiring grace period drops one reference and the last frees the
  // pool slot (see LockTable::release_descriptor). Set by the owner before
  // the first retire; untouched by reinit.
  std::atomic<std::uint32_t> retire_refs{0};

  // --- line group B: shared competition state, helper-CAS'd ---
  alignas(kCacheLine) typename Plat::template Atomic<std::int64_t> priority;
  typename Plat::template Atomic<std::uint32_t> status;

  // Cooperative-helping claim (DESIGN.md §5.2): while help_claim holds a
  // helper's pid+1, other helpers skip the full run() drive of this
  // descriptor (they still celebrate a win) — until claim_skips exceeds the
  // engine's patience, at which point the claim is revoked and the next
  // observer drives anyway, so a crashed claimer delays an attempt by a
  // bounded number of observations. Raw atomics: advisory scheduling state
  // outside the step model, same stance as reclamation (substitution #2).
  // Lives on the helper-hammered line — it is written on exactly the
  // schedule that line already absorbs.
  std::atomic<std::uint64_t> help_claim{0};
  std::atomic<std::uint32_t> claim_skips{0};

  // --- line group C: the thunk log, CAS'd during replays ---
  alignas(kCacheLine) ThunkLog<Plat> log;

  // Multi-active-set flag interface (Algorithm 3 lines 7-13; the delay that
  // precedes the reveal lives in LockSpace, which owns the step counting).
  bool flag() { return priority.load() > 0; }
  void clear_flag() { priority.store(kPriorityPending); }

  // Quiescent reset on (re)allocation from the pool. Returns the number of
  // thunk-log slots re-initialized (the lazy reset's O(ops used) figure,
  // surfaced through the lock-space stats).
  std::uint32_t reinit(std::uint64_t new_serial) {
    // The owner re-claims line group A; any helper of the previous
    // generation must be ordered before this point (EBR grace + retire_refs
    // chain — the analysis layer checks exactly that).
    WFL_PLAIN_WRITE(this, kDescPlain);
    lock_count = 0;
    thunk.reset();
    serial = new_serial;
    tag_base = idem_tag_base(new_serial);
    priority.init(kPriorityPending);
    status.init(kStatusActive);
    help_claim.store(0, std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&help_claim, kStore, relaxed, kHelpClaimStore, 0);
    claim_skips.store(0, std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&claim_skips, kStore, relaxed, kClaimSkipsReset, 0);
    return log.reset_used();
  }
};

// Draws a positive 62-bit priority. Uniqueness is probabilistic; ties are
// handled by the both-lose rule (paper footnote 3).
template <typename Plat>
std::int64_t draw_priority() {
  return static_cast<std::int64_t>(Plat::rand_u64() >> 2) + 1;
}

}  // namespace wfl
