// Static transactions: compose several lock-scoped sub-operations into one
// tryLock attempt.
//
// The paper's locks take their whole lock set up front ("these locks must
// be specified in advance and cannot be acquired from within a thunk",
// §7). That is exactly the *static transaction* regime Turek et al. support
// via ordered two-phase locking (§3) — except that with tryLocks no lock
// ordering discipline is needed at all and the attempt is wait-free. This
// header provides the builder: accumulate (lock-set fragment, sub-thunk)
// pairs, then build a PreparedTxn whose combined lock set is deduplicated
// and whose combined thunk runs the sub-thunks in sequence against one
// shared idempotence log.
//
// Lifetime: the combined thunk captures the op program through a
// shared_ptr, so a straggling helper replaying the thunk after the owner
// moved on keeps the program alive — the builder and the PreparedTxn may
// die freely. This is the one deliberately allocating path in the library
// (one allocation per *built program*, zero per attempt); the core lock
// path stays allocation-free.
//
// Budgets: the combined lock set must fit the space's max_locks and the
// summed sub-thunk step budgets (declared per op(), like every stated
// bound in the paper's model: L, T, κ are promises, not measurements) must
// fit max_thunk_steps — both are checked before every run.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "wfl/core/executor.hpp"
#include "wfl/core/lock_table.hpp"
#include "wfl/core/retry.hpp"
#include "wfl/core/session.hpp"
#include "wfl/util/assert.hpp"

namespace wfl {

template <typename Plat>
class PreparedTxn;

template <typename Plat>
class TxnBuilder {
 public:
  using SubThunk = FixedFunction<void(IdemCtx<Plat>&), 64>;

  TxnBuilder() : prog_(std::make_shared<Program>()) {}

  // Adds one sub-operation: `lock_ids` it needs, the code to run, and the
  // sub-thunk's instrumented step budget — the number of m.load/m.store
  // calls it may issue, a caller-stated bound exactly like the space's T.
  // The budgets sum across ops and are validated against max_thunk_steps
  // before every run. The sub-thunk obeys the usual capture contract (by
  // value, or pointers to structure-lifetime state).
  template <typename F>
  TxnBuilder& op(std::span<const std::uint32_t> lock_ids, F&& f,
                 std::uint32_t step_budget = 1) {
    WFL_CHECK_MSG(prog_ != nullptr, "builder already consumed by build()");
    WFL_CHECK(step_budget >= 1);
    for (std::uint32_t id : lock_ids) locks_.push_back(id);
    prog_->ops.emplace_back(std::forward<F>(f));
    step_budget_ += step_budget;
    return *this;
  }

  // Locks without code: reserve a lock in the combined set (e.g. to pin a
  // neighbour that the transaction reads only optimistically).
  TxnBuilder& touch(std::uint32_t lock_id) {
    WFL_CHECK_MSG(prog_ != nullptr, "builder already consumed by build()");
    locks_.push_back(lock_id);
    return *this;
  }

  // Finalizes: dedups + sorts the lock set, freezes the program. The
  // builder is consumed.
  PreparedTxn<Plat> build() && {
    WFL_CHECK_MSG(prog_ != nullptr, "builder already consumed by build()");
    WFL_CHECK_MSG(!prog_->ops.empty() || !locks_.empty(),
                  "empty transaction");
    std::sort(locks_.begin(), locks_.end());
    locks_.erase(std::unique(locks_.begin(), locks_.end()), locks_.end());
    return PreparedTxn<Plat>(std::move(locks_),
                             std::shared_ptr<const Program>(std::move(prog_)),
                             step_budget_);
  }

 private:
  friend class PreparedTxn<Plat>;
  struct Program {
    std::vector<SubThunk> ops;
  };

  std::vector<std::uint32_t> locks_;
  std::shared_ptr<Program> prog_;
  std::uint32_t step_budget_ = 0;
};

// An immutable, repeatedly-runnable transaction. Copyable (copies share
// the program).
template <typename Plat>
class PreparedTxn {
 public:
  using Table = LockTable<Plat>;
  using Process = typename Table::Process;
  using Program = typename TxnBuilder<Plat>::Program;

  // The primary entry point: submit the whole transaction through the
  // unified executor (core/executor.hpp). Default policy is one attempt;
  // Policy::retry() gives the randomized wait-free run-to-completion.
  Outcome submit(Session<Plat>& session, Policy policy = Policy::one_shot()) {
    check_budgets(session.space());
    std::shared_ptr<const Program> prog = prog_;  // captured by value
    return wfl::submit(
        session, LockSetView::presorted(locks_),
        [prog](IdemCtx<Plat>& m) {
          for (const auto& op : prog->ops) op(m);
        },
        policy);
  }

  // --- compatibility veneer over raw (table, process) pairs --------------

  // One tryLock attempt at the whole transaction. Takes the lock table
  // layer directly; a LockSpace converts implicitly.
  bool try_run(Table& table, Process proc, AttemptInfo* info = nullptr) {
    check_budgets(table);
    std::shared_ptr<const Program> prog = prog_;  // captured by value
    return table.try_locks(
        proc, LockSetView::presorted(locks_),
        [prog](IdemCtx<Plat>& m) {
          for (const auto& op : prog->ops) op(m);
        },
        info);
  }

  // Retry-until-success (Corollary of Thm 1.1); returns the accounting.
  RetryStats run(Table& table, Process proc, std::uint64_t max_attempts = 0) {
    check_budgets(table);
    std::shared_ptr<const Program> prog = prog_;
    return retry_until_success<Plat>(
        table, proc, locks_,
        [prog](IdemCtx<Plat>& m) {
          for (const auto& op : prog->ops) op(m);
        },
        max_attempts);
  }

  std::span<const std::uint32_t> lock_set() const { return locks_; }
  std::size_t op_count() const { return prog_->ops.size(); }
  std::uint32_t step_budget() const { return step_budget_; }

 private:
  friend class TxnBuilder<Plat>;
  PreparedTxn(std::vector<std::uint32_t> locks,
              std::shared_ptr<const Program> prog, std::uint32_t step_budget)
      : locks_(std::move(locks)),
        prog_(std::move(prog)),
        step_budget_(step_budget) {}

  // Both stated bounds are checked: the combined lock set against L and
  // the summed per-op step budgets against T.
  void check_budgets(const Table& table) const {
    WFL_CHECK_MSG(locks_.size() <= table.config().max_locks,
                  "combined txn lock set exceeds the configured L bound");
    WFL_CHECK_MSG(step_budget_ <= table.config().max_thunk_steps,
                  "combined txn step budget exceeds the configured T bound");
  }

  std::vector<std::uint32_t> locks_;
  std::shared_ptr<const Program> prog_;
  std::uint32_t step_budget_ = 0;
};

// Batch submission of several prepared transactions through one session:
// the same per-batch EBR guard amortization as executor::submit_batch
// (kOff mode only — see that function's contract), entering exactly the
// shards the transactions' combined lock sets touch. Each transaction's L
// and T budgets are still checked by its own submit() — once per
// submission, off the attempt path, same as a plain loop. Transactions
// keep their shared-program lifetime semantics, so helpers may replay a
// txn thunk after the batch returns.
template <typename Plat>
BatchOutcome submit_txn_batch(Session<Plat>& session,
                              std::span<PreparedTxn<Plat>> txns,
                              Policy policy = Policy::one_shot(),
                              Outcome* per_op = nullptr) {
  LockTable<Plat>& space = session.space();
  const bool hold_guards =
      space.config().delay_mode == DelayMode::kOff && txns.size() > 1;
  BatchShardGuard<LockTable<Plat>> guard(space, session.process());
  if (hold_guards) {
    for (const auto& txn : txns) {
      for (const std::uint32_t id : txn.lock_set()) guard.add(id);
    }
    guard.enter();
  }
  BatchOutcome out;
  for (std::size_t i = 0; i < txns.size(); ++i) {
    const Outcome o = txns[i].submit(session, policy);
    out.add(o);
    if (per_op != nullptr) per_op[i] = o;
  }
  return out;
}

}  // namespace wfl
