// LockBackend adapter over the §6.2 AdaptiveLockSpace: the unknown-bounds
// wait-free variant behind the unified submit() shape.
//
// The adaptive space deliberately takes no LockConfig — not knowing κ/L/T
// is its point — so the adapter carries the BackendConfig's declared
// bounds purely as the *submission-side* contract every backend shares
// (the L budget check in submit, the config() the substrates consult for
// their thunk-step budgets). The space itself never reads them.
//
// Not in the default sweep registries (baseline/backends.hpp): the
// adaptive variant is an algorithmic configuration of the wait-free
// locks, measured on its own terms by exp_adaptive (Theorem 6.10), not a
// distinct lock discipline to race the baselines against. It exists here
// so the same substrates and harnesses CAN be instantiated over it —
// `Bank<AdaptiveWflBackend<SimPlat>>` is one type name away.
#pragma once

#include <memory>
#include <utility>

#include "wfl/core/adaptive.hpp"
#include "wfl/core/backend.hpp"

namespace wfl {

template <typename Plat>
struct AdaptiveWflBackend {
  using Platform = Plat;

  class Space {
   public:
    using Inner = AdaptiveLockSpace<Plat>;

    explicit Space(const BackendConfig& cfg)
        : cfg_(cfg.lock),
          max_procs_(cfg.max_procs),
          inner_(cfg.max_procs, cfg.num_locks) {
      cfg_.validate();
    }

    int num_locks() const { return inner_.num_locks(); }
    int max_procs() const { return max_procs_; }
    const LockConfig& config() const { return cfg_; }

    Inner& inner() { return inner_; }

   private:
    LockConfig cfg_;
    int max_procs_;
    Inner inner_;
  };

  // Wraps the adaptive space's own RAII session (slot recycling and crash
  // abandonment included) and points it back at the adapter space.
  class Session {
   public:
    explicit Session(Space& space) : space_(&space), inner_(space.inner()) {}

    Session(Session&&) noexcept = default;
    Session& operator=(Session&&) noexcept = default;

    bool active() const { return inner_.active(); }
    Space& space() const { return *space_; }
    int pid() const { return inner_.pid(); }
    AdaptiveSession<Plat>& inner() { return inner_; }

   private:
    Space* space_;
    AdaptiveSession<Plat> inner_;
  };

  static const char* name() { return "wflock-adaptive"; }
  static BackendProgress progress() { return BackendProgress::kWaitFree; }

  static std::unique_ptr<Space> make_space(const BackendConfig& cfg) {
    return std::make_unique<Space>(cfg);
  }

  template <typename F>
  static Outcome submit(Session& session, LockSetView locks, const F& f,
                        Policy policy = Policy::one_shot()) {
    WFL_CHECK_MSG(locks.size() <= session.space().config().max_locks,
                  "lock set exceeds the configured L bound");
    return ::wfl::submit(session.inner(), locks, f, policy);
  }

  static void abandon(Space& space, Session& session) {
    space.inner().abandon_process(session.inner().process());
  }
};

}  // namespace wfl
