// AsyncExecutor: fiber-multiplexed submission — 100k+ in-flight sessions
// on a fixed worker pool.
//
// submit() burns an OS thread per in-flight submission: an attempt that
// loses its locks idles `policy_backoff` own steps on its thread and
// retries. That shape caps concurrency at "threads you can afford" and
// wastes every backoff step spinning. The async executor inverts it:
//
//   Ticket t = exec.async_submit(client, locks, thunk, policy);
//   ...                                  // 100k of these outstanding
//   const Outcome& o = t.wait();
//
// A submission becomes an AsyncOp — a small heap record (~300 B), not a
// thread and not a suspended stack. N worker threads (N ~ cores) pull
// ready ops from LOCK-FREE per-worker run queues (util/work_queue.hpp):
// external dispatch targets a per-worker MPSC inbox — preferring a
// worker that is already awake, falling back to round-robin when all are
// parked — each worker spills its inbox into its own Chase–Lev deque and
// self-pushes ops it wakes during its own cycles (owner push/take at the
// bottom), and idle peers steal from the top of peer deques AND from
// peer inboxes (drain_all): work never waits on a specific thread's
// timeslice — no mutex anywhere on the run-queue path. Inline mode funnels everything through one shared MPSC injector
// drained claim-or-skip by run_ready(). A worker with work draws a
// pooled fiber and runs ONE attempt cycle of the
// existing engine on it: link wait nodes, submit_attempt(), then either
// complete or park. Parking is returning: the fiber finishes and goes
// back to the pool, the op stays linked on its locks' wait lists, and the
// worker moves on. Zero own steps are spent backing off — the bench
// asserts backoff_spin_steps == 0 under full contention.
//
// Wake coalescing: each worker carries a state word (kWkAwake / kWkIdle /
// kWkSignalled). A producer that pushed into a worker's inbox posts the
// futex ONLY after winning the kWkIdle -> kWkSignalled CAS; a worker seen
// kWkAwake will re-probe its inbox before sleeping, and one seen
// kWkSignalled already owes a wake — both cases skip the syscall
// (counted in wake_skips()). Soundness is a seq_cst store-buffering
// Dekker: producer does push-then-read-state, worker does
// set-idle-then-probe-inbox; in the seq_cst total order one side must
// see the other, so either the producer posts or the worker's probe
// finds the push. Workers that wake ops into their OWN deque mid-cycle
// hand a steal target to one idle sibling (best-effort — a missed
// sibling wake costs parallelism for one cycle, never progress, because
// an owner drains its own deque before it can ever park).
//
// Wakes come from the lock table itself. LockTable::attempt() and the
// thin-word fast path post a release event (WakeSink::on_release) for
// every lock an attempt's descriptor left — on wins, losses, revocations
// and claim expiry alike. The executor is the sink: an event on lock X
// wakes one parked op from X's wait list (re-enqueueing it) or signals
// one op whose attempt is currently running.
//
// Lost-wake soundness (the prepare-to-wait argument):
//
//   1. An op links its wait nodes on ALL its locks BEFORE its attempt
//      reads any lock state, and stays linked until it completes.
//   2. After a losing attempt, the worker CASes the op kRunning ->
//      kParked. A release event delivered in between CASes kRunning ->
//      kSignalled instead; the park CAS then fails and the cycle retries
//      immediately. If instead that final attempt won (or exhausted its
//      policy), complete() observes the kSignalled on its kDone exchange
//      and re-delivers the wake across the op's locks — a signal
//      consumed by an op that will never retry is re-posted, not
//      swallowed. So every event that post-dates the node link either
//      wakes a parked op, converts into an immediate retry, or is
//      absorbed by an op that is already signalled — never dropped while
//      a waiter could need it. Events that PRE-date the link are covered
//      by the attempt that follows the link: it reads current lock state.
//   3. Wake-one does not strand later waiters: every attempt — including
//      a woken op's losing retry — ends by posting events on all its
//      locks (its multiRemove changed them), so the baton passes down the
//      list as long as any attempt is in flight. An op never parks
//      without having posted events as its final shared-memory act.
//      (Its own nodes are skipped during its own attempt's events — the
//      running_by_pid_ slot of the event's origin pid — so it cannot
//      signal itself into a hot self-retry loop.)
//
// Processes: attempts run under the WORKER's registered process, not the
// submitter's — κ in the engine's O(κ²L²T) bound scales with workers,
// not with in-flight submissions, and the thin-word pid encoding's
// max_procs cap (< 2^15) never meets the 100k+ op count. The submitting
// AsyncClient is liveness bookkeeping only: crash() makes its pending
// ops complete as cancelled instead of wedging their wait lists. In
// inline mode (workers == 0) there are no worker processes and cycles
// run under the CLIENT's session on whatever fiber drives run_ready() —
// which is what makes async_submit sim-deterministic and, uncontended,
// step-identical to submit() (asserted in test_async.cpp).
//
// Guard-drop rule: a cycle must end — park or complete — with no EBR
// guard held (a parked op holding a guard would stall reclamation for a
// whole shard indefinitely). The engine already brackets guards inside
// try_locks; the cycle WFL_CHECKs Space::any_guard_held on its way out.
//
// Modes: async submission is a DelayMode::kOff facility (checked at
// construction). kTheory timing is owned by the paper's delay schedule;
// parking would perturb the reveal-time argument, and bit-identical
// kTheory step traces are a hard regression gate. The executor's own
// plumbing (queues, wait lists, state CASes) is raw std::atomic/mutex,
// outside the step model, same as reclamation (DESIGN.md #2).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "wfl/check/race.hpp"
#include "wfl/core/executor.hpp"
#include "wfl/core/lock_set.hpp"
#include "wfl/core/session.hpp"
#include "wfl/fuzz/sites.hpp"
#include "wfl/util/align.hpp"
#include "wfl/util/assert.hpp"
#include "wfl/util/fiber.hpp"
#include "wfl/util/work_queue.hpp"

// Capability probe for drivers that sweep backends: baselines without an
// async executor fall back to synchronous B::submit (see backend.hpp).
#define WFL_HAS_ASYNC_SUBMIT 1

namespace wfl {

// Liveness handle for one logical submitter. An AsyncClient is NOT a
// registered process (that is the whole point — clients are cheap and
// unbounded); it is the cancellation scope its submissions complete
// under, plus the session inline mode runs them on. Must outlive its
// in-flight ops: wait on the tickets, or crash() and drain, before
// destroying it.
template <typename Space>
class BasicAsyncClient {
 public:
  explicit BasicAsyncClient(BasicSession<Space>& session)
      : session_(&session) {
    // Seed the analysis layer's shadow state and retire it on destruction:
    // live_ is annotated with WFL_CHK_ATOMIC at every access, so a client
    // constructed at a recycled heap address must not alias the previous
    // occupant's final (crashed) value.
    race::created(&live_, 1);
  }

  ~BasicAsyncClient() { race::destroyed(&live_); }

  BasicAsyncClient(const BasicAsyncClient&) = delete;
  BasicAsyncClient& operator=(const BasicAsyncClient&) = delete;

  bool live() const {
    const bool r = live_.load(std::memory_order_acquire);
    WFL_CHK_ATOMIC(&live_, kLoad, acquire, kAsyncClientLive, r ? 1 : 0);
    return r;
  }

  // Crash-harness hook: pending submissions complete as cancelled
  // (won == false) the next time a worker touches them; parked ones are
  // re-queued by AsyncExecutor::cancel_client. The session itself is the
  // caller's to abandon (WflBackend::abandon) — the two are independent
  // layers.
  void crash() {
    live_.store(false, std::memory_order_release);
    WFL_CHK_ATOMIC(&live_, kStore, release, kAsyncClientLive, 0);
  }

  BasicSession<Space>& session() const { return *session_; }

  // Inline-mode cycle latch: one registered process runs one attempt at
  // a time, so two fibers driving run_ready() must not both run cycles
  // under this client's session. Claim-or-skip, never block.
  bool try_acquire_inline() {
    bool expect = false;
    const bool ok = inline_busy_.compare_exchange_strong(
        expect, true, std::memory_order_acquire);
    // A lock in all but name; the analysis layer models it as one.
    if (ok) race::mutex_acquire(&inline_busy_);
    return ok;
  }
  void release_inline() {
    race::mutex_release(&inline_busy_);
    inline_busy_.store(false, std::memory_order_release);
  }

 private:
  BasicSession<Space>* session_;
  std::atomic<bool> live_{true};
  std::atomic<bool> inline_busy_{false};
};

template <typename Plat>
class AsyncExecutor {
 public:
  using Space = LockTable<Plat>;
  using Session = BasicSession<Space>;
  using Client = BasicAsyncClient<Space>;

  struct Options {
    // 0 = inline mode: no threads; cycles run on whoever calls
    // run_ready() / Ticket::wait(). Deterministic under SimPlat.
    int workers = 1;
    // Cycle stacks. Cycles are shallow (one attempt, no recursion into
    // user code beyond the thunk), so this is far below the simulator's
    // default.
    std::size_t stack_bytes = 64 * 1024;
    std::size_t max_idle_fibers = 64;
  };

 private:
  // The in-flight submission record. Everything a parked submission IS:
  // no stack, no thread, no registered process.
  struct AsyncOp {
    // Cycle ownership state machine (raw atomics; plumbing, not steps):
    //   kQueued    in a run queue, never yet attempted
    //   kRunning   a cycle owns it (attempting, or queued for re-attempt)
    //   kSignalled kRunning + a release event arrived: must re-attempt
    //   kParked    linked on its locks' wait lists, waiting for an event
    //   kDone      outcome final; ticket side may read out
    static constexpr std::uint32_t kQueued = 0;
    static constexpr std::uint32_t kRunning = 1;
    static constexpr std::uint32_t kSignalled = 2;
    static constexpr std::uint32_t kParked = 3;
    static constexpr std::uint32_t kDone = 4;

    AsyncOp(Client& c, LockSetView locks, typename PreparedOp<Plat>::Armed a,
            Policy p)
        : client(&c), policy(p), armed(a) {
      n_locks = locks.size();
      for (std::uint32_t i = 0; i < n_locks; ++i) ids[i] = locks[i];
      race::created(&state, kQueued);
      race::created(&refs, 2);
      race::created(&q_next, 0);
    }

    LockSetView locks() const {
      return LockSetView::presorted({ids, n_locks});
    }

    Client* client;
    Policy policy;
    typename PreparedOp<Plat>::Armed armed;
    std::uint32_t ids[kMaxLocksPerAttempt] = {};
    std::uint32_t n_locks = 0;
    bool linked = false;   // nodes in wait lists (cycle-owned, no races)
    bool cancelled = false;
    Outcome out;

    std::atomic<std::uint32_t> state{kQueued};
    // Two owners: the Ticket and the executor. Last one out deletes.
    std::atomic<std::uint32_t> refs{2};
    typename Plat::Wake done_wake;

    // Intrusive wait-list nodes, one per lock of the set. Touched only
    // under the owning list's latch (and `linked` only by the cycle).
    struct WaitNode {
      AsyncOp* op = nullptr;
      WaitNode* prev = nullptr;
      WaitNode* next = nullptr;
    };
    WaitNode nodes[kMaxLocksPerAttempt];

    // MPSC injector link (work_queue.hpp): written by the pushing thread
    // before the head CAS publishes it, read by the sole consumer.
    std::atomic<AsyncOp*> q_next{nullptr};

    // The owning executor's live-record gauge (see live_ops()).
    std::atomic<std::uint64_t>* live_gauge = nullptr;

    void unref() {
      const std::uint32_t prev = refs.fetch_sub(1, std::memory_order_acq_rel);
      WFL_CHK_ATOMIC(&refs, kFetchAdd, acq_rel, kAsyncRefsDrop, prev - 1);
      if (prev == 1) {
        live_gauge->fetch_sub(1, std::memory_order_relaxed);
        // Retire tracked addresses before the storage can be heap-reused.
        race::destroyed(&state);
        race::destroyed(&refs);
        race::destroyed(&q_next);
        race::destroyed(&out);
        delete this;
      }
    }
  };

 public:
  // Completion handle for one async submission. Move-only; dropping it
  // without wait() is fine (the op completes and self-frees). Tickets
  // must not outlive their executor: the op record references the
  // executor's live-record gauge until it is freed.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& o) noexcept
        : op_(std::exchange(o.op_, nullptr)),
          exec_(std::exchange(o.exec_, nullptr)) {}
    Ticket& operator=(Ticket&& o) noexcept {
      if (this != &o) {
        reset();
        op_ = std::exchange(o.op_, nullptr);
        exec_ = std::exchange(o.exec_, nullptr);
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { reset(); }

    bool valid() const { return op_ != nullptr; }
    bool done() const {
      if (op_ == nullptr) return false;
      const std::uint32_t s = op_->state.load(std::memory_order_acquire);
      WFL_CHK_ATOMIC(&op_->state, kLoad, acquire, kAsyncStateLoad, s);
      return s == AsyncOp::kDone;
    }
    // True while the submission is parked on its wait nodes (it lost an
    // attempt and no wake has arrived) — the state cancel_client's
    // parked-claim exists for. Introspection for tests and the schedule
    // fuzzer's crash targeting; racy by nature, use as a hint only.
    bool parked() const {
      if (op_ == nullptr) return false;
      const std::uint32_t s = op_->state.load(std::memory_order_acquire);
      WFL_CHK_ATOMIC(&op_->state, kLoad, acquire, kAsyncStateLoad, s);
      return s == AsyncOp::kParked;
    }

    // Blocks until the submission completes and returns its Outcome.
    // Worker mode blocks the calling thread (futex wait under RealPlat).
    // Inline mode DRIVES the executor from here — it runs ready cycles
    // on the caller, interleaving Plat::step() while idle so simulator
    // peers get scheduled.
    const Outcome& wait() {
      WFL_CHECK(op_ != nullptr);
      if (exec_->options_.workers == 0) {
        while (!done()) {
          if (exec_->run_ready(1) == 0) Plat::step();
        }
      } else {
        while (!done()) {
          const std::uint32_t seen = op_->done_wake.prepare();
          if (done()) break;
          op_->done_wake.wait(seen);
        }
      }
      WFL_PLAIN_READ(&op_->out, kAsyncOutcome);
      return op_->out;
    }

    // Non-blocking: the Outcome if complete, nullptr otherwise.
    const Outcome* poll() const {
      if (!done()) return nullptr;
      WFL_PLAIN_READ(&op_->out, kAsyncOutcome);
      return &op_->out;
    }

   private:
    friend class AsyncExecutor;
    Ticket(AsyncOp* op, AsyncExecutor* exec) : op_(op), exec_(exec) {}
    void reset() {
      if (op_ != nullptr) op_->unref();
      op_ = nullptr;
    }

    AsyncOp* op_ = nullptr;
    AsyncExecutor* exec_ = nullptr;
  };

  explicit AsyncExecutor(Space& space, Options opt = {})
      : space_(&space),
        options_(opt),
        fibers_(opt.stack_bytes, opt.max_idle_fibers),
        wait_lists_(static_cast<std::size_t>(space.num_locks())),
        running_by_pid_(static_cast<std::size_t>(space.max_procs())) {
    WFL_CHECK_MSG(space.config().delay_mode == DelayMode::kOff,
                  "async submission requires DelayMode::kOff — kTheory "
                  "owns an attempt's timing (see header)");
    // SimPlat's Wake::wait spins on Plat::step(), which yields into the
    // fiber scheduler — only valid on a simulator fiber. Worker OS
    // threads would drive the scheduler from foreign threads; the
    // simulator gets inline mode only (which is also what makes it
    // deterministic).
    WFL_CHECK_MSG(!Plat::kSimulated || options_.workers == 0,
                  "simulated platforms require workers == 0 (inline "
                  "mode): worker threads cannot drive the fiber "
                  "scheduler");
    sink_.exec = this;
    space_->set_wake_sink(&sink_);
    workers_.reserve(static_cast<std::size_t>(options_.workers));
    for (int w = 0; w < options_.workers; ++w) {
      workers_.push_back(std::make_unique<Worker>(*space_));
    }
    for (int w = 0; w < options_.workers; ++w) {
      workers_[static_cast<std::size_t>(w)]->thread =
          std::thread([this, w] { worker_main(w); });
    }
  }

  ~AsyncExecutor() { shutdown(); }

  AsyncExecutor(const AsyncExecutor&) = delete;
  AsyncExecutor& operator=(const AsyncExecutor&) = delete;

  // Submits `f` on `locks` for `client` under `policy`. Returns
  // immediately; the attempt cycles run on the worker pool (or on
  // whoever drives run_ready() in inline mode). Same thunk contract as
  // submit(): trivially copyable, <= PreparedOp inline capacity, capture
  // only state outliving the space's grace period.
  template <typename F>
  Ticket async_submit(Client& client, LockSetView locks, F f,
                      Policy policy = Policy::retry()) {
    WFL_CHECK(!stopping_.load(std::memory_order_acquire));
    WFL_CHECK_MSG(locks.size() <= space_->config().max_locks,
                  "lock set exceeds the configured L bound");
    const PreparedOp<Plat> prep(locks, std::move(f));
    auto* op = new AsyncOp(client, locks, prep.armed(), policy);
    op->live_gauge = &live_ops_;
    live_ops_.fetch_add(1, std::memory_order_relaxed);
    // acq_rel, matching the drain side: the shutdown loop's acquire load
    // must never observe a count weaker than the queue state it mirrors.
    const std::uint64_t now =
        in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
    WFL_CHK_ATOMIC(&in_flight_, kFetchAdd, acq_rel, kAsyncInFlight, now);
    enqueue(op);
    return Ticket(op, this);
  }

  // Inline-mode driver: run up to `max_cycles` ready cycles on the
  // caller (0 = drain everything ready). Returns cycles run; an op
  // whose client is mid-cycle on another fiber is requeued and the
  // drain returns (the caller steps and retries — see Ticket::wait).
  std::size_t run_ready(std::size_t max_cycles = 0) {
    fuzz_limbo_drain();
    std::size_t ran = 0;
    while (max_cycles == 0 || ran < max_cycles) {
      AsyncOp* op = inline_pop();
      if (op == nullptr) break;
      if (!op->client->try_acquire_inline()) {
        inline_inj_.push(op);
        break;
      }
      run_cycle(op, op->client->session());
      op->client->release_inline();
      ++ran;
    }
    return ran;
  }

  // Crash path: every pending submission of `client` completes as
  // cancelled. Running cycles are signalled (they re-check liveness and
  // cancel themselves); parked ops are claimed and re-queued so a worker
  // finishes them off. Waiters of OTHER clients on the same locks are
  // untouched — cancellation posts no lock-table events and unlinking
  // happens in the op's own final cycle.
  void cancel_client(Client& client) {
    client.crash();
    for (WaitList& wl : wait_lists_) {
      std::lock_guard<std::mutex> g(wl.mu);
      race::MutexScope chk(&wl.mu);
      for (typename AsyncOp::WaitNode* n = wl.head; n != nullptr;
           n = n->next) {
        AsyncOp* op = n->op;
        if (op->client != &client) continue;
        std::uint32_t expect = AsyncOp::kParked;
        if (op->state.compare_exchange_strong(expect, AsyncOp::kRunning,
                                              std::memory_order_acq_rel)) {
          WFL_CHK_ATOMIC(&op->state, kCasOk, acq_rel, kAsyncStateCas,
                         AsyncOp::kRunning);
          WFL_FUZZ_SITE(kSiteAsyncCancelSweep);
          if (fuzz::fault_on(fuzz::Fault::kShutdownHang)) {
            // Seeded fault (fuzz mutation gate): the PR 6 shutdown hang.
            // The sweep claims the crashed client's parked op, but its
            // dispatch lands on a pool whose workers already exited —
            // claimed, cancelled work no one will ever run, so the
            // in-flight drain spins forever. Modeled by diverting the
            // claimed op to a limbo stack that only drains once the
            // fault is disarmed (run_ready re-absorbs it, keeping the
            // harness teardown after a finding sound).
            fuzz_limbo_push(op);
          } else {
            enqueue_claimed(op);
          }
        } else {
          WFL_CHK_ATOMIC(&op->state, kCasFail, acquire, kAsyncStateCas,
                         expect);
          if (expect == AsyncOp::kRunning) {
            const bool sig = op->state.compare_exchange_strong(
                expect, AsyncOp::kSignalled, std::memory_order_acq_rel);
            if (sig) {
              WFL_CHK_ATOMIC(&op->state, kCasOk, acq_rel, kAsyncStateCas,
                             AsyncOp::kSignalled);
            } else {
              WFL_CHK_ATOMIC(&op->state, kCasFail, acquire, kAsyncStateCas,
                             expect);
            }
          }
        }
      }
    }
  }

  Space& space() const { return *space_; }
  int workers() const { return options_.workers; }

  // Submissions accepted and not yet complete (queued, attempting, or
  // parked).
  std::uint64_t in_flight() const {
    const std::uint64_t n = in_flight_.load(std::memory_order_acquire);
    WFL_CHK_ATOMIC(&in_flight_, kLoad, acquire, kAsyncInFlight, n);
    return n;
  }
  // Live session records: submitted and the Outcome not yet consumed
  // (the Ticket still open), whatever the op's state. This is the
  // bench's headline gauge — holding >= 100k of these on a fixed pool
  // is the point of the subsystem: a session costs ~300 B of heap, not
  // a thread, a stack, or a registered process.
  std::uint64_t live_ops() const {
    return live_ops_.load(std::memory_order_acquire);
  }
  std::uint64_t completed() const {
    return completed_.load(std::memory_order_acquire);
  }
  std::uint64_t parks() const { return sum_counter(&Counters::parks); }
  std::uint64_t wakes() const { return sum_counter(&Counters::wakes); }
  std::uint64_t signals() const { return sum_counter(&Counters::signals); }
  std::uint64_t steals() const { return sum_counter(&Counters::steals); }
  // Futex posts issued / elided by the coalescing word (see header).
  std::uint64_t wake_posts() const {
    return sum_counter(&Counters::wake_posts);
  }
  std::uint64_t wake_skips() const {
    return sum_counter(&Counters::wake_skips);
  }
  std::uint64_t fibers_created() const { return fibers_.created(); }
  std::uint64_t fibers_reused() const { return fibers_.reused(); }

 private:
  // One wait list per lock: intrusive doubly-linked, FIFO wake order
  // (wakers scan from head, links push at tail). A plain mutex, not a
  // Plat::Atomic spin: critical sections are a few pointer writes, and
  // the latch must not count as model steps.
  struct WaitList {
    std::mutex mu;
    typename AsyncOp::WaitNode* head = nullptr;
    typename AsyncOp::WaitNode* tail = nullptr;
  };

  // Per-context event counters, cache-padded so hot-path bumps never
  // share a line across workers (the shared fetch_add counters this
  // replaces were a measurable contention source at high churn). Pure
  // monotone gauges — intentionally unhooked (ordering_contracts.hpp
  // header: advisory telemetry carries no ordering obligation).
  struct alignas(kCacheLine) Counters {
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> wakes{0};
    std::atomic<std::uint64_t> signals{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> wake_posts{0};
    std::atomic<std::uint64_t> wake_skips{0};
  };

  // Wake-coalescing worker states (see header).
  static constexpr std::uint32_t kWkAwake = 0;
  static constexpr std::uint32_t kWkIdle = 1;
  static constexpr std::uint32_t kWkSignalled = 2;

  struct Worker {
    explicit Worker(Space& s) : session(s) {
      race::created(&state, kWkAwake);
    }
    ~Worker() { race::destroyed(&state); }

    Session session;  // the registered process attempts run under
    ChaseLevDeque<AsyncOp*> deque;  // owner push/take bottom, thieves top
    MpscInjector<AsyncOp> inbox;    // external dispatch lands here
    std::atomic<std::uint32_t> state{kWkAwake};
    typename Plat::Wake wake;
    Counters counters;
    std::thread thread;
  };

  // Worker identity for the dispatch fast path: a worker thread pushes
  // claimed/woken ops straight onto its OWN deque (the only legal
  // Chase–Lev producer) instead of round-robining them away.
  struct TlsWorker {
    AsyncExecutor* exec = nullptr;
    Worker* w = nullptr;
    int index = -1;
  };
  static TlsWorker& tls_worker() {
    static thread_local TlsWorker t;
    return t;
  }

  // Counter slot for the calling context: the owning worker's padded
  // line, or the executor-wide external slot (submitter/cancel paths,
  // inline mode — uncontended there by construction).
  Counters& counters_here() {
    TlsWorker& t = tls_worker();
    return (t.exec == this) ? t.w->counters : *external_counters_;
  }

  // The WakeSink the lock table calls from inside attempt teardown.
  // Member object (not base) so LockTable's header needs only the
  // abstract interface.
  struct Sink final : WakeSink {
    AsyncExecutor* exec = nullptr;
    void on_release(std::uint32_t lock_id, int origin_pid) override {
      exec->deliver_event(lock_id, origin_pid);
    }
  };

  // --- event delivery -----------------------------------------------------

  // Events are posted synchronously by the attempting context, so the
  // op to self-skip is whichever op is running under the origin pid —
  // keyed by pid, not thread identity, because under SimPlat many
  // cycles interleave mid-attempt on one OS thread.
  void deliver_event(std::uint32_t lock_id, int origin_pid) {
    AsyncOp* self =
        origin_pid >= 0
            ? running_by_pid_[static_cast<std::size_t>(origin_pid)].load(
                  std::memory_order_relaxed)
            : nullptr;
    WaitList& wl = wait_lists_[lock_id];
    std::lock_guard<std::mutex> g(wl.mu);
    race::MutexScope chk(&wl.mu);
    for (typename AsyncOp::WaitNode* n = wl.head; n != nullptr;
         n = n->next) {
      AsyncOp* op = n->op;
      if (op == self) continue;
      std::uint32_t s = op->state.load(std::memory_order_acquire);
      WFL_CHK_ATOMIC(&op->state, kLoad, acquire, kAsyncStateLoad, s);
      if (s == AsyncOp::kParked) {
        if (op->state.compare_exchange_strong(s, AsyncOp::kRunning,
                                              std::memory_order_acq_rel)) {
          WFL_CHK_ATOMIC(&op->state, kCasOk, acq_rel, kAsyncStateCas,
                         AsyncOp::kRunning);
          counters_here().wakes.fetch_add(1, std::memory_order_relaxed);
          enqueue_claimed(op);
          return;  // wake-one
        }
        WFL_CHK_ATOMIC(&op->state, kCasFail, acquire, kAsyncStateCas, s);
        s = op->state.load(std::memory_order_acquire);
        WFL_CHK_ATOMIC(&op->state, kLoad, acquire, kAsyncStateLoad, s);
      }
      if (s == AsyncOp::kRunning) {
        if (op->state.compare_exchange_strong(s, AsyncOp::kSignalled,
                                              std::memory_order_acq_rel)) {
          WFL_CHK_ATOMIC(&op->state, kCasOk, acq_rel, kAsyncStateCas,
                         AsyncOp::kSignalled);
          counters_here().signals.fetch_add(1, std::memory_order_relaxed);
          return;  // converted into that op's immediate retry
        }
        WFL_CHK_ATOMIC(&op->state, kCasFail, acquire, kAsyncStateCas, s);
      }
      if (s == AsyncOp::kSignalled) return;  // absorbed: a retry is owed
    }
    // Empty or self-only list: nobody to deliver to. Sound — any waiter
    // that links later attempts after linking and reads current state.
  }

  // --- run queues ---------------------------------------------------------

  void enqueue(AsyncOp* op) { dispatch(op); }

  // Enqueue an op already claimed kRunning (woken or cancel-claimed).
  void enqueue_claimed(AsyncOp* op) { dispatch(op); }

  // Fuzz-only (Fault::kShutdownHang): a claimed-but-undispatchable op —
  // the "dead worker pool" of the original shutdown hang. q_next is free
  // here precisely because a limbo op is not on any run queue.
  void fuzz_limbo_push(AsyncOp* op) {
    AsyncOp* head = fuzz_limbo_.load(std::memory_order_relaxed);
    do {
      op->q_next.store(head, std::memory_order_relaxed);
    } while (!fuzz_limbo_.compare_exchange_weak(
        head, op, std::memory_order_release, std::memory_order_relaxed));
  }

  // Re-absorb diverted ops once the fault is disarmed, so the harness can
  // still tear the executor down after reporting a finding. One relaxed
  // load on the clean tree.
  void fuzz_limbo_drain() {
    if (fuzz_limbo_.load(std::memory_order_relaxed) == nullptr) return;
    if (fuzz::fault_on(fuzz::Fault::kShutdownHang)) return;
    AsyncOp* op = fuzz_limbo_.exchange(nullptr, std::memory_order_acquire);
    while (op != nullptr) {
      AsyncOp* next = op->q_next.load(std::memory_order_relaxed);
      op->q_next.store(nullptr, std::memory_order_relaxed);
      enqueue_claimed(op);
      op = next;
    }
  }

  // Worker mode: a worker thread self-pushes onto its OWN Chase–Lev
  // deque (op wakes fired from its cycles stay cache-local; it is the
  // deque's only legal producer) and hands one idle sibling a steal
  // target when a backlog builds; any other thread targets a worker's
  // MPSC inbox and wakes it through the coalescing word.
  //
  // External target selection prefers a worker that is ALREADY awake
  // (round-robin start, first non-idle wins): on a machine with fewer
  // cores than workers, round-robining across parked workers pays a
  // futex wake plus a context switch per op while an awake worker sits
  // hot on a core — measured as ~40x median service latency at low rates
  // (bench_service). The scan is a heuristic only; delivery never
  // depends on it, because push-then-wake_worker re-reads the target's
  // state under the seq_cst sleep Dekker. Work conservation is the
  // worker's half: a drained inbox that spills backlog wakes one idle
  // sibling to come steal (worker_main), so coalescing onto the awake
  // worker cannot strand load behind it.
  //
  // Inline mode has no workers; everything funnels through the shared
  // injector that run_ready() drains.
  void dispatch(AsyncOp* op) {
    if (workers_.empty()) {
      inline_inj_.push(op);
      return;
    }
    TlsWorker& t = tls_worker();
    if (t.exec == this) {
      t.w->deque.push(op);
      // Self-pushed work is invisible to the inbox wake path: if anyone
      // is napping while we accumulate a backlog, hand them a steal
      // target. Best-effort (see header): a missed wake here costs one
      // cycle of parallelism, never progress.
      if (idle_workers_.load(std::memory_order_relaxed) > 0 &&
          t.w->deque.size_approx() > 1) {
        wake_one_idle(static_cast<std::size_t>(t.index));
      }
      return;
    }
    const std::size_t n = workers_.size();
    std::size_t pick =
        rr_.fetch_add(1, std::memory_order_relaxed) % n;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = (pick + i) % n;
      const std::uint32_t s =
          workers_[j]->state.load(std::memory_order_seq_cst);
      WFL_CHK_ATOMIC(&workers_[j]->state, kLoad, seq_cst, kWkrState, s);
      if (s != kWkIdle) {
        pick = j;
        break;
      }
    }
    Worker& tgt = *workers_[pick];
    tgt.inbox.push(op);
    wake_worker(tgt);
  }

  // Post the target's futex only if it is committed to sleeping. An
  // awake worker re-probes its inbox before sleeping (the seq_cst
  // Dekker with our push), and a signalled one already owes a wake —
  // both skip the syscall.
  void wake_worker(Worker& tgt) {
    std::uint32_t s = tgt.state.load(std::memory_order_seq_cst);
    WFL_CHK_ATOMIC(&tgt.state, kLoad, seq_cst, kWkrState, s);
    if (s == kWkIdle) {
      if (tgt.state.compare_exchange_strong(s, kWkSignalled,
                                            std::memory_order_seq_cst,
                                            std::memory_order_seq_cst)) {
        WFL_CHK_ATOMIC(&tgt.state, kCasOk, seq_cst, kWkrState, kWkSignalled);
        counters_here().wake_posts.fetch_add(1, std::memory_order_relaxed);
        tgt.wake.post();
        return;
      }
      WFL_CHK_ATOMIC(&tgt.state, kCasFail, seq_cst, kWkrState, s);
      // Lost the race: the worker woke by itself or another producer
      // signalled it; either absorbs our wake.
    }
    counters_here().wake_skips.fetch_add(1, std::memory_order_relaxed);
  }

  // Signal one idle sibling to come steal (self-push backlog path).
  void wake_one_idle(std::size_t self_index) {
    const std::size_t n = workers_.size();
    for (std::size_t i = 1; i < n; ++i) {
      Worker& v = *workers_[(self_index + i) % n];
      std::uint32_t s = v.state.load(std::memory_order_seq_cst);
      WFL_CHK_ATOMIC(&v.state, kLoad, seq_cst, kWkrState, s);
      if (s != kWkIdle) continue;
      if (v.state.compare_exchange_strong(s, kWkSignalled,
                                          std::memory_order_seq_cst,
                                          std::memory_order_seq_cst)) {
        WFL_CHK_ATOMIC(&v.state, kCasOk, seq_cst, kWkrState, kWkSignalled);
        counters_here().wake_posts.fetch_add(1, std::memory_order_relaxed);
        v.wake.post();
        return;
      }
      WFL_CHK_ATOMIC(&v.state, kCasFail, seq_cst, kWkrState, s);
    }
  }

  // Spill the whole inbox into the owner's deque, keeping the oldest for
  // immediate execution. Owner thread only.
  AsyncOp* drain_inbox(Worker& self) {
    AsyncOp* first = self.inbox.pop();
    if (first == nullptr) return nullptr;
    for (AsyncOp* op = self.inbox.pop(); op != nullptr;
         op = self.inbox.pop()) {
      self.deque.push(op);
    }
    return first;
  }

  // Steal from peers: their deques' FIFO end first, then their INBOXES.
  // An op in a parked (or descheduled) peer's inbox would otherwise wait
  // for that peer's next timeslice even while this worker idles — the
  // inbox is part of the run queue, so thieves must see it (the same
  // reason Go and Tokio steal from inject queues). drain_all() takes the
  // peer's whole shared chain in one exchange (disjoint from the owner's
  // private cache and from rival drains); the thief reverses it to FIFO,
  // runs the oldest, and spills the rest onto its OWN deque — where the
  // peer, once scheduled again, can steal them right back.
  AsyncOp* steal_from_peers(std::size_t thief) {
    const std::size_t n = workers_.size();
    Worker& self = *workers_[thief];
    for (std::size_t i = 1; i < n; ++i) {
      Worker& v = *workers_[(thief + i) % n];
      AsyncOp* op = v.deque.steal();
      if (op == nullptr) {
        AsyncOp* chain = v.inbox.drain_all();
        if (chain == nullptr) continue;
        // Chain is newest-first; reverse so the oldest runs now and the
        // rest land on the deque oldest-at-the-steal-end.
        AsyncOp* fifo = nullptr;
        while (chain != nullptr) {
          AsyncOp* next = chain->q_next.load(std::memory_order_relaxed);
          WFL_CHK_ATOMIC(&chain->q_next, kLoad, relaxed, kInjNext,
                         detail::ptr_bits(next));
          chain->q_next.store(fifo, std::memory_order_relaxed);
          WFL_CHK_ATOMIC(&chain->q_next, kStore, relaxed, kInjNext,
                         detail::ptr_bits(fifo));
          fifo = chain;
          chain = next;
        }
        op = fifo;
        AsyncOp* rest = fifo->q_next.load(std::memory_order_relaxed);
        WFL_CHK_ATOMIC(&fifo->q_next, kLoad, relaxed, kInjNext,
                       detail::ptr_bits(rest));
        op->q_next.store(nullptr, std::memory_order_relaxed);
        WFL_CHK_ATOMIC(&op->q_next, kStore, relaxed, kInjNext, 0);
        while (rest != nullptr) {
          AsyncOp* next = rest->q_next.load(std::memory_order_relaxed);
          WFL_CHK_ATOMIC(&rest->q_next, kLoad, relaxed, kInjNext,
                         detail::ptr_bits(next));
          rest->q_next.store(nullptr, std::memory_order_relaxed);
          WFL_CHK_ATOMIC(&rest->q_next, kStore, relaxed, kInjNext, 0);
          self.deque.push(rest);
          rest = next;
        }
      }
      self.counters.steals.fetch_add(1, std::memory_order_relaxed);
      return op;
    }
    return nullptr;
  }

  // Inline-mode pop: the MPSC consumer side needs a single consumer, but
  // run_ready() may be driven from several fibers (Ticket::wait). Claim
  // the consumer latch or skip — never block (the caller steps and
  // retries). Modeled as a lock for the analysis layer.
  AsyncOp* inline_pop() {
    bool expect = false;
    if (!inline_consumer_.compare_exchange_strong(
            expect, true, std::memory_order_acquire)) {
      return nullptr;
    }
    race::mutex_acquire(&inline_consumer_);
    AsyncOp* op = inline_inj_.pop();
    race::mutex_release(&inline_consumer_);
    inline_consumer_.store(false, std::memory_order_release);
    return op;
  }

  // --- wait-list link/unlink ----------------------------------------------

  void link_nodes(AsyncOp* op) {
    for (std::uint32_t i = 0; i < op->n_locks; ++i) {
      WaitList& wl = wait_lists_[op->ids[i]];
      typename AsyncOp::WaitNode& n = op->nodes[i];
      n.op = op;
      std::lock_guard<std::mutex> g(wl.mu);
      race::MutexScope chk(&wl.mu);
      n.prev = wl.tail;
      n.next = nullptr;
      if (wl.tail != nullptr) {
        wl.tail->next = &n;
      } else {
        wl.head = &n;
      }
      wl.tail = &n;
    }
    op->linked = true;
  }

  void unlink_nodes(AsyncOp* op) {
    if (!op->linked) return;
    for (std::uint32_t i = 0; i < op->n_locks; ++i) {
      WaitList& wl = wait_lists_[op->ids[i]];
      typename AsyncOp::WaitNode& n = op->nodes[i];
      std::lock_guard<std::mutex> g(wl.mu);
      race::MutexScope chk(&wl.mu);
      if (n.prev != nullptr) {
        n.prev->next = n.next;
      } else {
        wl.head = n.next;
      }
      if (n.next != nullptr) {
        n.next->prev = n.prev;
      } else {
        wl.tail = n.prev;
      }
      n.prev = n.next = nullptr;
    }
    op->linked = false;
  }

  // --- the attempt cycle --------------------------------------------------

  // One scheduling quantum of an op: attempt until it wins, exhausts its
  // policy, is cancelled, or loses with no pending signal — in which
  // case it parks and the cycle ENDS (the fiber running it finishes and
  // is recycled; the op's only residue is its linked wait nodes).
  void run_cycle(AsyncOp* op, Session& session) {
    std::atomic<AsyncOp*>& slot =
        running_by_pid_[static_cast<std::size_t>(session.pid())];
    // Exchange, not a plain store: a wake-one signal absorbed between
    // this op's enqueue and its cycle start (kRunning -> kSignalled in
    // deliver_event) must not be silently erased. An attempt fulfills the
    // owed retry; a cycle that cancels WITHOUT attempting does not, so
    // the signal is handed back to complete(), whose kSignalled-exchange
    // re-delivery puts the wake back on the lock — otherwise a parked
    // waiter on the same lock strands forever. (Found by the schedule
    // fuzzer: cancel_client claims a parked op, a release signals the
    // claimed op, its final cycle used to wipe the signal and cancel.)
    const std::uint32_t entry =
        op->state.exchange(AsyncOp::kRunning, std::memory_order_acq_rel);
    WFL_CHK_ATOMIC(&op->state, kExchange, acq_rel, kAsyncStateCas,
                   AsyncOp::kRunning);
    bool owed_signal = entry == AsyncOp::kSignalled;
    for (;;) {
      if (op->cancelled || !op->client->live()) {
        op->cancelled = true;
        if (owed_signal) {
          op->state.store(AsyncOp::kSignalled, std::memory_order_release);
          WFL_CHK_ATOMIC(&op->state, kStore, release, kAsyncStateStore,
                         AsyncOp::kSignalled);
        }
        complete(op);
        break;
      }
      if (!op->linked) link_nodes(op);
      slot.store(op, std::memory_order_relaxed);
      WFL_PLAIN_WRITE(&op->out, kAsyncOutcome);  // the attempt fills it
      const bool won = submit_attempt(session, op->locks(), op->armed,
                                      op->out);
      owed_signal = false;  // the attempt was the retry the signal owed
      slot.store(nullptr, std::memory_order_relaxed);
      // Guard-drop rule: parking (or finishing) with an EBR guard held
      // would stall a shard's reclamation behind a suspended op.
      WFL_CHECK(!space_->any_guard_held(session.process()));
      if (won || policy_exhausted(op->policy, op->out)) {
        complete(op);
        break;
      }
      // Re-check liveness before parking: a client cancelled mid-attempt
      // must not park an op no future event may wake (cancel_client's
      // sweep saw kRunning and signalled us, or will see kParked and
      // claim us — but if it has already swept, the loop top is the only
      // exit left).
      if (op->cancelled || !op->client->live()) continue;
      std::uint32_t expect = AsyncOp::kRunning;
      if (op->state.compare_exchange_strong(expect, AsyncOp::kParked,
                                            std::memory_order_acq_rel)) {
        WFL_CHK_ATOMIC(&op->state, kCasOk, acq_rel, kAsyncStateCas,
                       AsyncOp::kParked);
        counters_here().parks.fetch_add(1, std::memory_order_relaxed);
        break;  // parked: cycle over, wait nodes carry the wake
      }
      WFL_CHK_ATOMIC(&op->state, kCasFail, acquire, kAsyncStateCas, expect);
      // A release event landed mid-attempt (kSignalled): consume it and
      // re-attempt on this same quantum. Owed until that attempt happens —
      // the loop top may cancel first (same hand-back as the entry case).
      op->state.store(AsyncOp::kRunning, std::memory_order_release);
      WFL_CHK_ATOMIC(&op->state, kStore, release, kAsyncStateStore,
                     AsyncOp::kRunning);
      owed_signal = true;
    }
  }

  void complete(AsyncOp* op) {
    unlink_nodes(op);
    if (op->cancelled) {
      WFL_PLAIN_WRITE(&op->out, kAsyncOutcome);
      op->out.won = false;
    }
    std::uint32_t prev;
    if (fuzz::fault_on(fuzz::Fault::kLostWake)) {
      // Seeded fault (fuzz mutation gate): the original PR 6 bug — a
      // plain store that never learns it overwrote a kSignalled, so the
      // wake-one delivery it absorbed is silently dropped. The coverage
      // tap still observes the overwrite (without acting on it) so
      // fault-mode mutants are steered toward the absorbed-signal state
      // the drop needs.
      if (op->state.load(std::memory_order_relaxed) == AsyncOp::kSignalled) {
        WFL_FUZZ_SITE(kSiteAsyncSignalOnDone);
      }
      prev = AsyncOp::kRunning;
      op->state.store(AsyncOp::kDone, std::memory_order_release);
      WFL_CHK_ATOMIC(&op->state, kStore, release, kAsyncStateStore,
                     AsyncOp::kDone);
    } else {
      prev = op->state.exchange(AsyncOp::kDone, std::memory_order_acq_rel);
      WFL_CHK_ATOMIC(&op->state, kExchange, acq_rel, kAsyncStateCas,
                     AsyncOp::kDone);
    }
    // A release event that raced with this op's final attempt CASed
    // kRunning -> kSignalled and counted itself delivered (wake-one).
    // This op is not retrying, so re-post the wake or a parked waiter
    // on the same lock strands until unrelated traffic arrives. The
    // event does not record which lock fired, so re-deliver across the
    // whole set; our nodes are unlinked above, so this op cannot be its
    // own target.
    if (prev == AsyncOp::kSignalled) {
      WFL_FUZZ_SITE(kSiteAsyncSignalOnDone);
      for (std::uint32_t i = 0; i < op->n_locks; ++i) {
        deliver_event(op->ids[i], -1);
      }
    }
    const std::uint64_t left =
        in_flight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    WFL_CHK_ATOMIC(&in_flight_, kFetchAdd, acq_rel, kAsyncInFlight, left);
    completed_.fetch_add(1, std::memory_order_relaxed);
    op->done_wake.post_all();
    op->unref();
  }

  // --- workers ------------------------------------------------------------

  void worker_main(int index) {
    Worker& self = *workers_[static_cast<std::size_t>(index)];
    TlsWorker& tls = tls_worker();
    tls = TlsWorker{this, &self, index};
    for (;;) {
      // Own deque (LIFO, cache-warm), then the inbox (external FIFO
      // spill), then peers' deques and inboxes (the steal path).
      AsyncOp* op = self.deque.take();
      if (op == nullptr) {
        op = drain_inbox(self);
        // Work conservation for awake-preferring dispatch: external
        // pushes coalesce onto THIS worker while it is awake, so a
        // spilled backlog here is load no one else has been told about.
        // Hand one idle sibling a steal target (it will find the spill
        // on our deque, or our inbox via the steal path).
        if (op != nullptr && self.deque.size_approx() > 0 &&
            idle_workers_.load(std::memory_order_relaxed) > 0) {
          wake_one_idle(static_cast<std::size_t>(index));
        }
      }
      if (op == nullptr) op = steal_from_peers(static_cast<std::size_t>(index));
      if (op == nullptr) {
        // Exit only once stopping_ AND nothing is in flight: shutdown
        // sweeps parked ops back into the run queues as cancelled work,
        // and a worker that left on "queues momentarily empty" would
        // strand that work and wedge shutdown's in_flight_ drain.
        if (stopping_.load(std::memory_order_acquire)) {
          if (in_flight_.load(std::memory_order_acquire) == 0) break;
          std::this_thread::yield();  // sweep in progress; stay pollable
          continue;
        }
        park(self);
        continue;
      }
      // Each quantum runs on a pooled fiber: the cycle gets its own
      // bounded stack (cheap to account, reusable across quanta) and the
      // worker's frame stays flat no matter what the thunk does.
      std::unique_ptr<Fiber> fiber = fibers_.acquire(Fiber::Body(
          [this, op, &self] { run_cycle(op, self.session); }));
      fiber->resume();
      WFL_CHECK(fiber->finished());  // cycles end; they never suspend
      fibers_.release(std::move(fiber));
    }
    tls = TlsWorker{};
  }

  // Commit to sleep, then re-probe. The kWkIdle store and the inbox
  // probe are both seq_cst — the worker half of the sleep Dekker (see
  // wake_worker). Only the inbox needs re-probing: the own deque has no
  // producer but us, and work landing at a PEER wakes that peer;
  // stealing is load-shedding, not the wake path. The futex layer
  // beneath (prepare/wait vs. post) covers the signal-after-probe
  // window the same way it always has.
  void park(Worker& self) {
    self.state.store(kWkIdle, std::memory_order_seq_cst);
    WFL_CHK_ATOMIC(&self.state, kStore, seq_cst, kWkrState, kWkIdle);
    idle_workers_.fetch_add(1, std::memory_order_relaxed);
    const std::uint32_t seen = self.wake.prepare();
    if (self.inbox.empty() && !stopping_.load(std::memory_order_acquire)) {
      self.wake.wait(seen);
    }
    self.state.store(kWkAwake, std::memory_order_seq_cst);
    WFL_CHK_ATOMIC(&self.state, kStore, seq_cst, kWkrState, kWkAwake);
    idle_workers_.fetch_sub(1, std::memory_order_relaxed);
  }

  void shutdown() {
    stopping_.store(true, std::memory_order_release);
    if (options_.workers == 0) {
      // Inline: cancel whatever is still parked, then drain on this
      // thread. Clients may already be gone only if their ops are done
      // (documented lifetime), so live() reads here are safe.
      sweep_cancel_all();
      while (in_flight_.load(std::memory_order_acquire) != 0) {
        if (run_ready(0) == 0) sweep_cancel_all();
      }
    } else {
      // Workers drain the queues; parked ops are swept in as cancelled
      // work until nothing is left, then the pool is joined.
      while (in_flight_.load(std::memory_order_acquire) != 0) {
        sweep_cancel_all();
        std::this_thread::yield();
      }
      for (auto& w : workers_) w->wake.post_all();
      for (auto& w : workers_) {
        if (w->thread.joinable()) w->thread.join();
      }
    }
    space_->set_wake_sink(nullptr);
    // Preserve counter totals past worker teardown: accessors stay valid
    // for post-shutdown reads (benches report after episodes end).
    for (auto& w : workers_) fold_counters(w->counters);
    workers_.clear();
  }

  void fold_counters(const Counters& c) {
    auto fold = [this](std::atomic<std::uint64_t> Counters::* m,
                       const Counters& src) {
      ((*external_counters_).*m)
          .fetch_add((src.*m).load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    };
    fold(&Counters::parks, c);
    fold(&Counters::wakes, c);
    fold(&Counters::signals, c);
    fold(&Counters::steals, c);
    fold(&Counters::wake_posts, c);
    fold(&Counters::wake_skips, c);
  }

  std::uint64_t sum_counter(std::atomic<std::uint64_t> Counters::* m) const {
    std::uint64_t total =
        ((*external_counters_).*m).load(std::memory_order_relaxed);
    for (const auto& w : workers_) {
      total += (w->counters.*m).load(std::memory_order_relaxed);
    }
    return total;
  }

  // Claim every parked op (any client) and queue it; its next cycle
  // completes it as cancelled because shutdown marks no one live —
  // cycles re-check stopping_ via client liveness only, so force the
  // flag here.
  void sweep_cancel_all() {
    for (WaitList& wl : wait_lists_) {
      std::lock_guard<std::mutex> g(wl.mu);
      race::MutexScope chk(&wl.mu);
      for (typename AsyncOp::WaitNode* n = wl.head; n != nullptr;
           n = n->next) {
        AsyncOp* op = n->op;
        std::uint32_t expect = AsyncOp::kParked;
        if (op->state.compare_exchange_strong(expect, AsyncOp::kRunning,
                                              std::memory_order_acq_rel)) {
          WFL_CHK_ATOMIC(&op->state, kCasOk, acq_rel, kAsyncStateCas,
                         AsyncOp::kRunning);
          WFL_FUZZ_SITE(kSiteAsyncCancelSweep);
          op->cancelled = true;
          enqueue_claimed(op);
        } else {
          WFL_CHK_ATOMIC(&op->state, kCasFail, acquire, kAsyncStateCas,
                         expect);
        }
      }
    }
  }

  Space* space_;
  Options options_;
  Sink sink_;
  FiberPool fibers_;
  std::vector<WaitList> wait_lists_;
  // Which op is attempting under each registered process right now; the
  // event-delivery self-skip (see deliver_event).
  std::vector<std::atomic<AsyncOp*>> running_by_pid_;
  std::vector<std::unique_ptr<Worker>> workers_;

  // Inline mode's shared run queue + its claim-or-skip consumer latch.
  MpscInjector<AsyncOp> inline_inj_;
  std::atomic<bool> inline_consumer_{false};

  // Fuzz-only: ops diverted by the armed kShutdownHang fault (see
  // fuzz_limbo_push/fuzz_limbo_drain).
  std::atomic<AsyncOp*> fuzz_limbo_{nullptr};

  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> rr_{0};
  std::atomic<std::size_t> idle_workers_{0};  // advisory sibling-wake gate
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> live_ops_{0};
  std::atomic<std::uint64_t> completed_{0};
  // Non-worker contexts' counter slot + post-shutdown accumulator.
  CachePadded<Counters> external_counters_;
};

// The client type virtually all code wants (mirrors Session<Plat>).
template <typename Plat>
using AsyncClient = BasicAsyncClient<LockTable<Plat>>;

}  // namespace wfl
